GO ?= go

.PHONY: all build test lint chaos crash-restore serve-smoke restore-smoke bench bench-tree bench-ycsb bench-drift bench-scan bench-serve bench-restore bench-check figures clean

all: lint test build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...

# chaos is the fault-injection soak: seeded fault plans firing errors,
# stalls, and panics at every rebuild checkpoint under concurrent YCSB-style
# traffic, differentially verified against a plain rebuilt Index — plus the
# watchdog, breaker, panic-isolation, and Quiesce/Close robustness suite.
# Runs under the race detector with a hard time budget; a failing seed is
# printed by the fault plan's event log and replays deterministically.
chaos:
	$(GO) test -race -count=1 -timeout 15m -v \
		-run 'TestAdaptiveChaos|TestAdaptiveQuiesce|TestAdaptiveClose|TestAdaptiveWatchdog|TestAdaptivePanic|TestAdaptiveBreaker|TestAdaptiveAutoBackoff|TestAdaptiveSkew|TestAdaptiveAbortRestores' \
		.

# crash-restore is the persistence fault-injection soak: the snapshot
# round-trip matrix across every store shape, the kill-at-every-VFS-
# checkpoint crash matrix (a fired fault must either fail the snapshot or
# leave a fully committed generation — never a readable partial), the
# read-path fault refusals, the torn-generation fallback ladder, and the
# snapshot-under-concurrent-writers soak, all under the race detector.
crash-restore:
	$(GO) test -race -count=1 -timeout 15m -v \
		-run 'TestPersist|TestServerSnapshotOnDrain|TestServerDrainHookErrorSurfaces' \
		./...

# serve-smoke is the end-to-end network smoke: build the real hopeserve +
# hopeload binaries, serve a preloaded compressed store, drive an
# open-loop load at >=10k target QPS with zero tolerated protocol errors,
# then SIGTERM the server and require a clean graceful drain (exit 0).
serve-smoke:
	./scripts/serve_smoke.sh

# restore-smoke is the end-to-end crash-recovery smoke: build the real
# hopeserve binary, serve a compressed store with periodic snapshots,
# write through the wire protocol, SIGKILL the process mid-serve, restart
# it from the snapshot directory, and require every acknowledged-and-
# snapshotted key back plus a live hope_restore series on /metrics.
restore-smoke:
	./scripts/restore_smoke.sh

# bench records the encode-path performance trajectory: serial kernel vs
# parallel bulk EncodeAll per scheme, written to BENCH_encode.json so
# successive PRs can diff perf.
bench:
	$(GO) run ./cmd/hopebench -fig encode -dataset email -keys 200000 \
		-json BENCH_encode.json

# bench-tree records the end-to-end search-tree trajectory: hope.Index
# load / point / range-scan latency and bytes-per-key for every backend ×
# scheme, written to BENCH_tree.json (uploaded as a CI artifact alongside
# BENCH_encode.json).
bench-tree:
	$(GO) run ./cmd/hopebench -fig tree -dataset email -keys 50000 -ops 50000 \
		-json BENCH_tree.json

# bench-ycsb records the concurrent serving trajectory: ShardedIndex
# throughput per YCSB workload (A-F) × backend × scheme × goroutine count,
# written to BENCH_ycsb.json. Throughput medians are gated by bench-check.
bench-ycsb:
	$(GO) run ./cmd/hopebench -fig ycsb -dataset email -keys 30000 -ops 30000 \
		-threads 1,2,4,8 -json BENCH_ycsb.json

# bench-drift records the dictionary-drift adaptation trajectory:
# AdaptiveIndex throughput + rolling CPR across a distribution shift,
# with and without adaptation, written to BENCH_drift.json. The summary
# rows carry the post-adaptation CPR and its recovery ratio against a
# from-scratch dictionary; benchdiff -mode drift gates both.
bench-drift:
	$(GO) run ./cmd/hopebench -fig drift -keys 50000 -json BENCH_drift.json

# bench-scan records the scan-partitioning trajectory: YCSB-E throughput
# against hash- vs range-partitioned ShardedIndexes across shard counts,
# written to BENCH_scan.json. The range rows exercise the pruned planner
# and the single-shard merge-free fast path; benchdiff -mode scan gates
# the medians.
bench-scan:
	$(GO) run ./cmd/hopebench -fig scan -dataset email -keys 30000 -ops 20000 \
		-shards 1,4,8,16 -json BENCH_scan.json

# bench-serve records the network serving trajectory: open-loop latency
# percentiles (p50/p99/p999 per op) against an in-process hopeserve, over
# workload mix × connection count × {ShardedIndex, AdaptiveIndex} ×
# {Uncompressed, Double-Char}, written to BENCH_serve.json. benchdiff
# -mode serve gates the p99 medians.
bench-serve:
	$(GO) run ./cmd/hopeload -fig serve -dataset email -keys 50000 \
		-qps 12000 -connlist 2,8 -warmup 1s -duration 4s -json BENCH_serve.json

# bench-restore records the restart trajectory: cold boot (dictionary
# build + encode + bulk load) vs snapshot restore across schemes ×
# backends × corpus sizes, written to BENCH_restore.json. benchdiff
# -mode restore gates both boot times and the cold/restore speedup — the
# figure's claim that restarting from a snapshot beats a cold re-encode.
bench-restore:
	$(GO) run ./cmd/hopebench -fig restore -dataset email -keys 30000 \
		-json BENCH_restore.json

# bench-check is the perf-regression gate: regenerate the encode and YCSB
# records at their `make bench`/`make bench-ycsb` parameters and fail on a
# >15% median regression in any encode latency or YCSB throughput figure
# against the committed baselines. Same-machine only: the baselines must
# have been recorded on this box, or the comparison measures hardware, not
# code (CI instead reruns both benches for the PR head and its merge base
# on one runner).
bench-check:
	$(GO) run ./cmd/hopebench -fig encode -dataset email -keys 200000 \
		-json BENCH_encode.fresh.json
	$(GO) run ./cmd/benchdiff BENCH_encode.json BENCH_encode.fresh.json
	@rm -f BENCH_encode.fresh.json
	$(GO) run ./cmd/hopebench -fig ycsb -dataset email -keys 30000 -ops 30000 \
		-threads 1,2,4,8 -json BENCH_ycsb.fresh.json
	$(GO) run ./cmd/benchdiff -mode ycsb BENCH_ycsb.json BENCH_ycsb.fresh.json
	@rm -f BENCH_ycsb.fresh.json
	$(GO) run ./cmd/hopebench -fig drift -keys 50000 -json BENCH_drift.fresh.json
	$(GO) run ./cmd/benchdiff -mode drift BENCH_drift.json BENCH_drift.fresh.json
	@rm -f BENCH_drift.fresh.json
	$(GO) run ./cmd/hopebench -fig scan -dataset email -keys 30000 -ops 20000 \
		-shards 1,4,8,16 -json BENCH_scan.fresh.json
	$(GO) run ./cmd/benchdiff -mode scan BENCH_scan.json BENCH_scan.fresh.json
	@rm -f BENCH_scan.fresh.json
	$(GO) run ./cmd/hopeload -fig serve -dataset email -keys 50000 \
		-qps 12000 -connlist 2,8 -warmup 1s -duration 4s -json BENCH_serve.fresh.json
	$(GO) run ./cmd/benchdiff -mode serve BENCH_serve.json BENCH_serve.fresh.json
	@rm -f BENCH_serve.fresh.json
	$(GO) run ./cmd/hopebench -fig tree -dataset email -keys 50000 -ops 50000 \
		-json BENCH_tree.fresh.json
	$(GO) run ./cmd/benchdiff -mode tree BENCH_tree.json BENCH_tree.fresh.json
	@rm -f BENCH_tree.fresh.json
	$(GO) run ./cmd/hopebench -fig restore -dataset email -keys 30000 \
		-json BENCH_restore.fresh.json
	$(GO) run ./cmd/benchdiff -mode restore BENCH_restore.json BENCH_restore.fresh.json
	@rm -f BENCH_restore.fresh.json

# figures regenerates the paper's evaluation artifacts at laptop scale.
figures:
	$(GO) run ./cmd/hopebench -fig all -dataset email -keys 100000

clean:
	rm -f BENCH_encode.fresh.json BENCH_ycsb.fresh.json BENCH_drift.fresh.json \
		BENCH_scan.fresh.json BENCH_serve.fresh.json BENCH_tree.fresh.json \
		BENCH_restore.fresh.json
