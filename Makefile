GO ?= go

.PHONY: all build test lint bench figures clean

all: lint test build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...

# bench records the encode-path performance trajectory: serial kernel vs
# parallel bulk EncodeAll per scheme, written to BENCH_encode.json so
# successive PRs can diff perf.
bench:
	$(GO) run ./cmd/hopebench -fig encode -dataset email -keys 200000 \
		-json BENCH_encode.json

# figures regenerates the paper's evaluation artifacts at laptop scale.
figures:
	$(GO) run ./cmd/hopebench -fig all -dataset email -keys 100000

clean:
	rm -f BENCH_encode.json
