package hope

import (
	"bytes"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/telemetry"
)

// AdaptiveIndex automates the full dictionary lifecycle the paper leaves
// to the application (Section 5 / Appendix C): it wraps a sharded
// compressed index and (1) reservoir-samples live write traffic while
// tracking a rolling compression rate, (2) builds a new-generation
// dictionary in the background when the rate drifts below the build-time
// baseline (or on an explicit Rebuild), and (3) migrates the stored
// entries into the new generation incrementally — per-shard, per-batch —
// while reads and writes keep flowing. The lifecycle state machine
// (Sampling → Building → Migrating → Steady, with drift rebuilds looping
// back through Building) lives in internal/lifecycle; this type is the
// data plane.
//
// # Record store
//
// Search trees store only the padded encodings, and paddings make decoding
// ambiguous, so re-encoding under a new dictionary needs the original
// keys. The AdaptiveIndex therefore owns a per-shard, per-generation
// record store: trees map encoded keys to record ids, records hold the
// original key bytes and the caller's value. This mirrors how a DBMS
// integrates HOPE — the index entry points at a record that contains the
// full key — and it is what makes background re-encode and
// cross-generation scan merging possible at all. The memory cost (the
// original key bytes, retained) is the price of adaptivity; a DBMS would
// source them from its base table instead.
//
// Because the index owns original keys, scan callbacks receive the
// *original* key — unlike Index and ShardedIndex, which hand out stored
// encodings. Keys passed to callbacks are only valid during the callback.
//
// # Stripes versus tree shards
//
// The adaptive layer's unit of bookkeeping is the *stripe*: a fixed,
// generation-independent hash of the original key bytes (see shardHash)
// selects one adaptiveShard, whose lock guards that stripe's record slots
// in every generation and whose read/write pointers are the generation
// map. Each generation's ShardedIndex routes the same key to its *tree
// shards* by its own Partitioner — hash by default, or range with split
// points re-sampled from the lifecycle reservoir at every rebuild
// (AdaptiveOptions.Partition). Decoupling the two is what lets a rebuild
// change the key partition: records keep stable stripe-addressed ids
// while the trees re-balance underneath, so a drift migration doubles as
// shard re-balancing.
//
// # Migration protocol
//
// Stripe routing is identical in every generation (it never consults a
// dictionary or a partitioner), so one generation map per stripe
// suffices:
//
//   - Rebuild builds the new dictionary from a reservoir snapshot with no
//     locks held, then enters migration: every shard starts dual-writing
//     (writes apply to the old and new generations; reads stay on the
//     old).
//   - A background pass copies each shard's live records into the new
//     generation in bounded batches under the shard lock (writers to that
//     shard wait for at most one batch; all other shards flow). Records
//     appended after migration start need no copy — dual-writing already
//     landed them in both generations.
//   - As each shard finishes, its reads flip to the new generation; both
//     generations keep receiving writes, so a mid-migration index serves
//     some shards from each generation and scans merge old- and
//     new-generation cursors (the record store supplies original keys, the
//     only order the two dictionaries share).
//   - When every shard has flipped, the cutover drops the old generation.
//     Until that instant the old generation has seen every write, so an
//     abort — a failed build, a fault injected by tests — simply points
//     every shard back at it, intact.
//
// The bulk-only SuRF backend cannot dual-write; its rebuild takes the
// stop-the-world path: all shards lock, live records bulk-load into the
// new generation, and the swap is atomic.
//
// All methods are safe for concurrent use.
type AdaptiveIndex struct {
	backend Backend
	opts    AdaptiveOptions
	ctl     *lifecycle.Controller
	mask    uint64
	shards  []*adaptiveShard

	maxKeyLen atomic.Int64

	// rebuildMu serializes rebuilds and excludes Bulk's stop-the-world
	// load from overlapping a migration; rebuilding dedupes async
	// triggers.
	rebuildMu  sync.Mutex
	rebuilding atomic.Bool

	// genMu guards the generation pointers (ops never touch them — they
	// go through the per-shard generation map).
	genMu sync.Mutex
	cur   *generation
	next  *generation

	migrated atomic.Int32 // shards flipped in the current migration

	// injector, when set (tests and chaos harnesses), fires at every
	// rebuild checkpoint; an error it returns aborts the rebuild at that
	// point, a panic it raises is recovered and converted to
	// *ErrRebuildPanic, and a stall it imposes is subject to the watchdog.
	// Set it before any traffic and do not change it while a rebuild may
	// be running (fault.Plan.Disarm defuses one in place).
	injector fault.Injector

	// watch is the in-flight rebuild's cancellation scoreboard (nil when no
	// rebuild is running): the watchdog, Close, and interruptible stalls
	// all cancel through it; checkpoints observe it.
	watch atomic.Pointer[rebuildWatch]

	// lastStage/lastShard name the most recent checkpoint passed. They are
	// written and read only on the rebuilding goroutine (rebuildMu holder),
	// purely to attribute a recovered panic.
	lastStage string
	lastShard int

	// asyncWG tracks triggered background rebuild goroutines from the
	// moment the trigger wins its CAS — before the goroutine exists — so
	// Quiesce cannot miss one that has not yet reached rebuildMu.
	asyncWG sync.WaitGroup
	closed  atomic.Bool

	skewTick atomic.Int64 // inserts since construction, for ResplitAbove cadence

	// met instruments the public ops; trace is the structured rebuild
	// event ring (see observe.go). Both are always-on from construction.
	met   opMetrics
	trace *telemetry.EventTrace
}

// AdaptiveOptions configures an AdaptiveIndex. The zero value serves
// uncompressed while sampling, then builds a Single-Char dictionary after
// lifecycle defaults; set Scheme (and Build) for stronger compression.
type AdaptiveOptions struct {
	// Scheme is the compression scheme rebuilt dictionaries use.
	Scheme core.Scheme
	// Build tunes HOPE's build phase for every generation.
	Build core.Options
	// Encoder, when non-nil, is the generation-0 dictionary: the index
	// starts Steady and compressed instead of Sampling (generations count
	// completed rebuilds). The encoder is
	// captured as the build template (like NewShardedIndex) and must not
	// be used directly afterwards. Its drift baseline self-calibrates
	// from the first full window of live traffic.
	Encoder *core.Encoder
	// Shards is the shard count (rounded up to a power of two; <= 0
	// selects DefaultShards). Every generation uses the same count.
	Shards int
	// Partition selects each generation's tree-shard layout:
	// HashPartitioned (default) or RangePartitioned, which samples split
	// points from the lifecycle reservoir at every rebuild so short scans
	// stay confined to the overlapping shards and migrations re-balance
	// the partition. Before the first rebuild a range-partitioned index
	// seeded by Bulk partitions on the bulk corpus; one populated by Puts
	// alone serves from a single tree shard until the first rebuild
	// spreads it.
	Partition PartitionMode
	// MigrationBatch bounds how many records one migration step copies
	// while holding a shard's lock (default 512) — the writer-visible
	// pause ceiling.
	MigrationBatch int
	// MigrationTimeout is the watchdog's progress bound: a rebuild that
	// makes no checkpoint progress (build start, migration batch, shard
	// flip, cutover) for this long is cancelled and aborts with
	// ErrMigrationTimeout, restoring the old generation. It should
	// comfortably exceed the dictionary build time and one migration
	// batch. 0 disables the watchdog's progress check.
	MigrationTimeout time.Duration
	// RebuildDeadline caps one whole rebuild — build plus migration — the
	// same way. 0 disables the deadline.
	RebuildDeadline time.Duration
	// ResplitAbove arms skew-triggered re-balancing for range-partitioned
	// indexes: when the largest tree shard of the serving generation holds
	// more than this fraction of the keys (e.g. 0.5 on 8 shards), a rebuild
	// is triggered even without CPR drift, re-sampling split points from
	// the reservoir. Checked on the lifecycle's CheckEvery insert cadence
	// and gated by the same cooldown and failure backoff as drift rebuilds.
	// 0 disables; ignored unless Partition == RangePartitioned.
	ResplitAbove float64
	// Manual disables automatic rebuilds: the lifecycle still samples and
	// tracks drift, but only an explicit Rebuild call acts on it.
	Manual bool
	// Lifecycle tunes the sampling and drift policy (zero fields take
	// lifecycle defaults).
	Lifecycle lifecycle.Config
}

// Re-exported lifecycle states, so callers can switch on
// AdaptiveIndex.State without importing an internal package.
type LifecycleState = lifecycle.State

const (
	StateSampling  = lifecycle.Sampling
	StateSteady    = lifecycle.Steady
	StateBuilding  = lifecycle.Building
	StateMigrating = lifecycle.Migrating
)

// AdaptiveStats is a point-in-time snapshot of the lifecycle and
// migration progress.
type AdaptiveStats struct {
	lifecycle.Stats
	Backend        Backend
	Shards         int
	Partition      PartitionMode
	MigratedShards int // shards flipped in the in-flight migration (0 when steady)
}

// generation is one dictionary era: a sharded tree whose values are
// record ids, plus the per-shard record stores those ids resolve through.
type generation struct {
	idx  *ShardedIndex
	enc  *core.Encoder            // build template (nil = uncompressed)
	cenc *core.ConcurrentEncoder  // bound translation for scans (nil = uncompressed)
	recs []generationShardRecords // one per shard, guarded by the adaptiveShard lock
}

type generationShardRecords struct {
	recs []record
	live int
}

// record holds one original key and the caller's value. Slots are
// append-only within a generation (ids stored in trees stay valid); dead
// slots are reclaimed when their generation is dropped at cutover — a
// rebuild doubles as compaction.
type record struct {
	key  []byte
	val  uint64
	dead bool
}

// adaptiveShard is one stripe of the generation map: which generation
// serves this shard's reads, and which generation(s) — old first — its
// writes apply to. The lock also guards both generations' record stores
// for this shard. Lock order: adaptiveShard.mu before any tree lock.
type adaptiveShard struct {
	mu    sync.RWMutex
	read  *generation
	write []*generation
}

func recordID(shard, slot int) uint64 { return uint64(shard)<<32 | uint64(uint32(slot)) }
func slotOf(id uint64) int            { return int(uint32(id)) }

// NewAdaptiveIndex builds an adaptive index over the named backend. With
// opts.Encoder nil the index starts in the Sampling state, serving
// uncompressed until enough keys arrived for the first dictionary.
//
// Deprecated: use Open(backend, WithAdaptive(opts)), which returns the
// same index behind the unified Store interface.
func NewAdaptiveIndex(backend Backend, opts AdaptiveOptions) (*AdaptiveIndex, error) {
	return newAdaptiveIndexWithSplits(backend, opts, nil)
}

// newAdaptiveIndexWithSplits is the constructor proper. splits, when
// non-nil, seed generation 0's range partitioner — the restore path hands
// back the persisted split points so the restored trees keep the dumped
// partition instead of starting unseeded.
func newAdaptiveIndexWithSplits(backend Backend, opts AdaptiveOptions, splits [][]byte) (*AdaptiveIndex, error) {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards()
	}
	opts.Shards = ceilPow2(opts.Shards)
	if opts.MigrationBatch <= 0 {
		opts.MigrationBatch = 512
	}
	a := &AdaptiveIndex{
		backend: backend,
		opts:    opts,
		mask:    uint64(opts.Shards - 1),
		shards:  make([]*adaptiveShard, opts.Shards),
		met:     newOpMetrics(),
		trace:   telemetry.NewEventTrace(0),
	}
	initial := lifecycle.Sampling
	if opts.Encoder != nil {
		initial = lifecycle.Steady
	}
	a.ctl = lifecycle.NewController(opts.Lifecycle, initial)
	gen, err := a.newGeneration(opts.Encoder, splits)
	if err != nil {
		return nil, err
	}
	a.cur = gen
	for i := range a.shards {
		a.shards[i] = &adaptiveShard{read: gen, write: []*generation{gen}}
	}
	return a, nil
}

// newGeneration builds one dictionary era's sharded index. splits, when
// the index is range-partitioned, are the generation's split points
// (re-sampled from the reservoir at every rebuild); nil leaves a
// range partitioner unseeded (generation 0 before any bulk corpus
// exists — Bulk seeds it, or the first rebuild replaces it). The record
// stores are always stripe-indexed (opts.Shards stripes), regardless of
// how the partitioner lays out the trees.
func (a *AdaptiveIndex) newGeneration(enc *core.Encoder, splits [][]byte) (*generation, error) {
	var p Partitioner
	switch {
	case a.opts.Partition == RangePartitioned && splits != nil:
		p = NewRangePartitioner(splits)
	case a.opts.Partition == RangePartitioned:
		p = NewUnseededRangePartitioner(a.opts.Shards)
	default:
		p = NewHashPartitioner(a.opts.Shards)
	}
	idx, err := NewShardedIndexWithPartitioner(a.backend, enc, p)
	if err != nil {
		return nil, err
	}
	g := &generation{idx: idx, enc: enc, recs: make([]generationShardRecords, a.opts.Shards)}
	if enc != nil {
		g.cenc = core.NewConcurrentEncoder(enc.Clone())
	}
	return g, nil
}

// genShard routes a key to one generation's tree shard, reusing the
// stripe hash the caller already computed when the generation is
// hash-partitioned (the common case pays no second hash).
func genShard(g *generation, key []byte, h uint64) int {
	if hp, ok := g.idx.part.(*HashPartitioner); ok {
		return hp.shardOfHash(h)
	}
	return g.idx.part.Shard(key)
}

// routeRecord routes a record whose stripe is already known: for a
// hash-partitioned generation the tree shard IS the stripe (same FNV,
// same power-of-two count), so no hash at all is recomputed; range
// partitioners binary-search the key.
func routeRecord(g *generation, stripe int, key []byte) int {
	if _, ok := g.idx.part.(*HashPartitioner); ok {
		return stripe
	}
	return g.idx.part.Shard(key)
}

// Backend returns the wrapped tree's name.
func (a *AdaptiveIndex) Backend() Backend { return a.backend }

// NumShards returns the shard count (a power of two, fixed for life).
func (a *AdaptiveIndex) NumShards() int { return len(a.shards) }

// State returns the lifecycle state.
func (a *AdaptiveIndex) State() LifecycleState { return a.ctl.State() }

// Generation returns the serving dictionary generation — the number of
// completed rebuilds (generation 0 is the initial era: uncompressed, or
// opts.Encoder when one was supplied).
func (a *AdaptiveIndex) Generation() int { return a.ctl.Generation() }

// Encoder returns the serving generation's build template (nil while
// uncompressed). During a migration this is still the old generation's
// encoder — the one every shard's authoritative writes run through.
func (a *AdaptiveIndex) Encoder() *core.Encoder {
	a.genMu.Lock()
	defer a.genMu.Unlock()
	return a.cur.enc
}

// Stats snapshots the lifecycle counters and migration progress.
func (a *AdaptiveIndex) Stats() AdaptiveStats {
	return AdaptiveStats{
		Stats:          a.ctl.Stats(),
		Backend:        a.backend,
		Shards:         len(a.shards),
		Partition:      a.opts.Partition,
		MigratedShards: int(a.migrated.Load()),
	}
}

// ShardLens returns the serving generation's per-tree-shard key counts —
// the partition's skew profile (see ShardedIndex.ShardLens). After a
// range-mode rebuild this reflects the re-sampled split points.
func (a *AdaptiveIndex) ShardLens() []int {
	a.genMu.Lock()
	idx := a.cur.idx
	a.genMu.Unlock()
	return idx.ShardLens()
}

func (a *AdaptiveIndex) shardIdx(key []byte) int { return int(shardHash(key) & a.mask) }

func (a *AdaptiveIndex) trackLen(n int) {
	for {
		cur := a.maxKeyLen.Load()
		if int64(n) <= cur || a.maxKeyLen.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// Put inserts or overwrites one key. An overwrite only updates the record
// (both generations' trees already point at it); an insert appends a
// record and inserts into every write generation, so a migration in
// flight never loses it. Each generation is resolved in a single pass —
// one encode, one tree-lock hold — through ShardedIndex.upsertShard: the
// presence probe and the insert-if-absent share the work the old
// probe-then-put sequence paid twice.
func (a *AdaptiveIndex) Put(key []byte, val uint64) error {
	if a.closed.Load() {
		return ErrClosed
	}
	if a.backend == SuRF {
		return ErrImmutableBackend
	}
	a.trackLen(len(key))
	h := shardHash(key)
	i := int(h & a.mask)
	t := a.met.put.Begin(uint64(i))
	sh := a.shards[i]
	storedLen, inserted := 0, false
	sh.mu.Lock()
	for gi, g := range sh.write {
		slot := len(g.recs[i].recs)
		existing, existed, n, err := g.idx.upsertShard(genShard(g, key, h), key, recordID(i, slot))
		if err != nil {
			sh.mu.Unlock()
			a.met.put.End(t)
			return err
		}
		if existed {
			g.recs[i].recs[slotOf(existing)].val = val
			continue
		}
		g.recs[i].recs = append(g.recs[i].recs, record{key: append([]byte(nil), key...), val: val})
		g.recs[i].live++
		if gi == 0 {
			storedLen, inserted = n, true
		}
	}
	sh.mu.Unlock()
	a.met.put.End(t)
	if inserted {
		sig := a.ctl.Observe(key, storedLen)
		if !a.opts.Manual {
			if sig != lifecycle.None {
				a.triggerAsync(driftReason(sig), a.revalidateDrift)
			} else if a.skewCheck() {
				a.triggerAsync("skew", a.revalidateSkew)
			}
		}
	} else {
		// Overwrites are traffic for the reservoir but do not change the
		// stored bytes the rolling CPR measures.
		a.ctl.ObserveBulk(key)
	}
	return nil
}

// Get returns the value stored under key, consulting the shard's read
// generation.
func (a *AdaptiveIndex) Get(key []byte) (uint64, bool) {
	h := shardHash(key)
	i := int(h & a.mask)
	t := a.met.get.Begin(uint64(i))
	defer a.met.get.End(t)
	sh := a.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	g := sh.read
	id, ok := g.idx.getShard(genShard(g, key, h), key)
	if !ok {
		return 0, false
	}
	r := &g.recs[i].recs[slotOf(id)]
	if r.dead {
		return 0, false
	}
	return r.val, true
}

// Delete removes key from every write generation, reporting whether it
// was present.
func (a *AdaptiveIndex) Delete(key []byte) (bool, error) {
	if a.closed.Load() {
		return false, ErrClosed
	}
	if a.backend == SuRF {
		return false, ErrImmutableBackend
	}
	h := shardHash(key)
	i := int(h & a.mask)
	mt := a.met.del.Begin(uint64(i))
	sh := a.shards[i]
	found := false
	sh.mu.Lock()
	for gi, g := range sh.write {
		t := genShard(g, key, h)
		id, ok := g.idx.getShard(t, key)
		if ok {
			g.recs[i].recs[slotOf(id)].dead = true
			g.recs[i].live--
			if _, err := g.idx.deleteShard(t, key); err != nil {
				sh.mu.Unlock()
				a.met.del.End(mt)
				return false, err
			}
		}
		if gi == 0 {
			found = ok
		}
	}
	sh.mu.Unlock()
	a.met.del.End(mt)
	return found, nil
}

// Len returns the number of live keys (authoritative generation).
func (a *AdaptiveIndex) Len() int {
	n := 0
	for i, sh := range a.shards {
		sh.mu.RLock()
		n += sh.write[0].recs[i].live
		sh.mu.RUnlock()
	}
	return n
}

// MemoryUsage returns the modeled footprint in bytes: every serving
// generation's trees and dictionary, plus the record store (original keys
// and per-record overhead) — the honest total, since the record store is
// what buys background re-encode.
func (a *AdaptiveIndex) MemoryUsage() int {
	a.genMu.Lock()
	gens := []*generation{a.cur}
	if a.next != nil {
		gens = append(gens, a.next)
	}
	a.genMu.Unlock()
	m := 0
	for _, g := range gens {
		m += g.idx.MemoryUsage()
	}
	for i, sh := range a.shards {
		sh.mu.RLock()
		for _, g := range gens {
			for _, r := range g.recs[i].recs {
				m += len(r.key) + 33 // slice header + val + dead + padding
			}
		}
		sh.mu.RUnlock()
	}
	return m
}

// Bulk loads keys[i] -> vals[i] (nil vals assigns positions). It is the
// only way to populate a SuRF-backed index, and the fast path for an
// initial load elsewhere; on a non-empty mutable index it degrades to a
// Put loop (overwrite semantics). Bulk excludes rebuilds for its
// duration and must not run concurrently with other writers.
func (a *AdaptiveIndex) Bulk(keys [][]byte, vals []uint64) error {
	if a.closed.Load() {
		return ErrClosed
	}
	if vals != nil && len(vals) != len(keys) {
		return fmt.Errorf("hope: %d keys but %d values", len(keys), len(vals))
	}
	viaPuts, err := a.bulkLoad(keys, vals)
	if err != nil {
		return err
	}
	if !viaPuts {
		// The stop-the-world path bypasses Put, so the lifecycle has not
		// seen these keys yet; the Put-loop path already observed each one.
		for _, k := range keys {
			a.ctl.ObserveBulk(k)
		}
	}
	if !a.opts.Manual {
		if sig := a.ctl.Check(); sig != lifecycle.None {
			a.triggerAsync(driftReason(sig), a.revalidateDrift)
		}
	}
	return nil
}

// bulkLoad performs the load and reports whether it went through the Put
// loop (which feeds the lifecycle tracker itself).
func (a *AdaptiveIndex) bulkLoad(keys [][]byte, vals []uint64) (viaPuts bool, err error) {
	a.rebuildMu.Lock()
	defer a.rebuildMu.Unlock()
	if a.backend != SuRF && a.Len() > 0 {
		for i, k := range keys {
			v := uint64(i)
			if vals != nil {
				v = vals[i]
			}
			if err := a.Put(k, v); err != nil {
				return true, err
			}
		}
		return true, nil
	}
	// Stop-the-world load: lock every shard, append records, bulk-load the
	// trees through the parallel encode pipeline, release. For SuRF this
	// replaces the whole contents (the backend rebuilds its filter over
	// exactly the new run).
	for _, sh := range a.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range a.shards {
			sh.mu.Unlock()
		}
	}()
	g := a.shards[0].write[0]
	if a.backend == SuRF {
		for i := range g.recs {
			g.recs[i] = generationShardRecords{}
		}
	}
	// Last write wins on duplicate keys, matching Put-loop semantics.
	lastIdx := make(map[string]int, len(keys))
	for i, k := range keys {
		lastIdx[string(k)] = i
	}
	var loadKeys [][]byte
	var ids []uint64
	for i, k := range keys {
		if lastIdx[string(k)] != i {
			continue
		}
		a.trackLen(len(k))
		v := uint64(i)
		if vals != nil {
			v = vals[i]
		}
		w := a.shardIdx(k)
		slot := len(g.recs[w].recs)
		g.recs[w].recs = append(g.recs[w].recs, record{key: append([]byte(nil), k...), val: v})
		g.recs[w].live++
		loadKeys = append(loadKeys, k)
		ids = append(ids, recordID(w, slot))
	}
	return false, g.idx.Bulk(loadKeys, ids)
}

// ---------------------------------------------------------------------------
// Rebuild: build → migrate → cutover (or abort).
// ---------------------------------------------------------------------------

// Rebuild forces a full dictionary rebuild and migration now, blocking
// until the cutover (or the abort) completes. Traffic keeps flowing on
// mutable backends; the SuRF backend rebuilds stop-the-world. The drift
// detector triggers this same path automatically unless opts.Manual.
//
// Failures are typed: errors.Is(err, ErrMigrationTimeout) for a
// watchdog abort, errors.As(err, new(*ErrRebuildPanic)) for a recovered
// panic, errors.Is(err, ErrClosed) after Close. An explicit Rebuild is
// not gated by the failure backoff — it is how a degraded index is
// revived — but its failures still count toward the circuit breaker, and
// when the breaker is (or stays) open the returned error also matches
// ErrDegraded.
func (a *AdaptiveIndex) Rebuild() error {
	a.rebuildMu.Lock()
	defer a.rebuildMu.Unlock()
	a.trace.Emit("trigger", -1, 0, "explicit")
	err := a.rebuildLocked()
	if err != nil && !errors.Is(err, ErrClosed) && a.ctl.Degraded() {
		err = fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	return err
}

// Err reports the index's health: nil while healthy; an error matching
// ErrDegraded (wrapping the last rebuild failure) while the circuit
// breaker is open — the index still serves reads, writes, and scans on
// the frozen dictionary; ErrClosed after Close.
func (a *AdaptiveIndex) Err() error {
	if a.closed.Load() {
		return ErrClosed
	}
	if a.ctl.Degraded() {
		if last := a.ctl.LastError(); last != nil {
			return fmt.Errorf("%w (last failure: %w)", ErrDegraded, last)
		}
		return ErrDegraded
	}
	return nil
}

// Quiesce blocks until every background rebuild in flight — including one
// whose trigger fired but whose goroutine has not yet started running —
// has completed or aborted. On return, no background rebuild is running
// and none will start without a new trigger.
func (a *AdaptiveIndex) Quiesce() {
	a.asyncWG.Wait()
	a.rebuildMu.Lock()
	defer a.rebuildMu.Unlock()
}

// Close makes the index final: new rebuilds (explicit or automatic) and
// mutations (Put, Delete, Bulk) are refused with ErrClosed, an in-flight
// rebuild is cancelled at its next checkpoint (waking any interruptible
// stall) and aborts down the usual restore path, and Close blocks until
// the background goroutine has fully exited. Reads and scans keep serving
// the final contents — which is what lets a snapshot-on-drain serialize a
// closed-to-writes index. Close is idempotent and always returns nil.
func (a *AdaptiveIndex) Close() error {
	a.closed.Store(true)
	if w := a.watch.Load(); w != nil {
		w.fire(ErrClosed)
	}
	a.Quiesce()
	return nil
}

// triggerAsync starts one background rebuild; concurrent signals collapse
// into it. revalidate re-checks the trigger's reason once the goroutine
// holds rebuildMu — an explicit Rebuild may have serviced the signal, or
// a failure may have armed the retry backoff, while it waited. reason
// names the trigger for the event trace ("first-build", "drift", "skew")
// and is only recorded once revalidation confirms the rebuild will run.
func (a *AdaptiveIndex) triggerAsync(reason string, revalidate func() bool) {
	if a.closed.Load() {
		return
	}
	if !a.rebuilding.CompareAndSwap(false, true) {
		return
	}
	// Register with Quiesce before the goroutine exists: a Quiesce between
	// the CAS above and the goroutine's first instruction must still wait
	// for it (see TestAdaptiveQuiesceWaitsForTriggeredRebuild).
	a.asyncWG.Add(1)
	go func() {
		defer a.asyncWG.Done()
		a.rebuildMu.Lock()
		defer a.rebuildMu.Unlock()
		defer a.rebuilding.Store(false)
		if a.closed.Load() || !revalidate() {
			return
		}
		a.trace.Emit("trigger", -1, 0, reason)
		// Failures are recorded in the lifecycle health stats (LastError,
		// ConsecutiveFailures, NextRetryAt); background rebuilds have no
		// caller to return an error to.
		_ = a.rebuildLocked()
	}()
}

// revalidateDrift re-checks the lifecycle's own signals (first build,
// drift) under rebuildMu; the controller gates them through the failure
// backoff itself.
func (a *AdaptiveIndex) revalidateDrift() bool { return a.ctl.Check() != lifecycle.None }

// revalidateSkew re-checks the skew trigger under rebuildMu.
func (a *AdaptiveIndex) revalidateSkew() bool {
	return a.skewExceeded() && a.ctl.ResplitAllowed()
}

// skewCheck implements the ResplitAbove trigger on Put's insert path: on
// the lifecycle's CheckEvery cadence, measure the serving partition's
// skew and ask the controller whether a re-split rebuild may run (Steady,
// cooldown elapsed, failure backoff expired).
func (a *AdaptiveIndex) skewCheck() bool {
	if a.opts.ResplitAbove <= 0 || a.opts.Partition != RangePartitioned || len(a.shards) < 2 {
		return false
	}
	if a.skewTick.Add(1)%int64(a.ctl.Config().CheckEvery) != 0 {
		return false
	}
	return a.skewExceeded() && a.ctl.ResplitAllowed()
}

// skewExceeded reports whether the serving generation's largest tree
// shard exceeds the ResplitAbove fraction. A population below one
// CheckEvery window never counts as skewed — a handful of keys on one
// shard is noise, not skew.
func (a *AdaptiveIndex) skewExceeded() bool {
	a.genMu.Lock()
	idx := a.cur.idx
	a.genMu.Unlock()
	frac, total := idx.maxShardFrac()
	return total >= a.ctl.Config().CheckEvery && frac > a.opts.ResplitAbove
}

// MaxShardFrac returns the serving generation's largest tree-shard
// fraction (see ShardedIndex.MaxShardFrac) — the skew measure the
// ResplitAbove trigger acts on.
func (a *AdaptiveIndex) MaxShardFrac() float64 {
	a.genMu.Lock()
	idx := a.cur.idx
	a.genMu.Unlock()
	return idx.MaxShardFrac()
}

// sampleRecords draws up to capacity live original keys from the
// authoritative generation's record store, striding evenly so one shard's
// keys cannot dominate the sample.
func (a *AdaptiveIndex) sampleRecords(capacity int) [][]byte {
	live := a.Len()
	if live == 0 || capacity <= 0 {
		return nil
	}
	stride := (live + capacity - 1) / capacity
	var out [][]byte
	seen := 0
	for i, sh := range a.shards {
		sh.mu.RLock()
		for _, r := range sh.write[0].recs[i].recs {
			if r.dead {
				continue
			}
			if seen%stride == 0 && len(out) < capacity {
				out = append(out, append([]byte(nil), r.key...))
			}
			seen++
		}
		sh.mu.RUnlock()
	}
	return out
}

// rebuildWatch is one rebuild's cancellation scoreboard. fire is
// idempotent and first-reason-wins: it records why, marks the watch
// cancelled, and closes the cancel channel (waking any interruptible
// stall blocked in the injector). Checkpoints observe the cancellation
// and surface the reason as the rebuild's error, so the abort-restore
// path always runs on the rebuilding goroutine — the watchdog and Close
// never mutate index state themselves.
type rebuildWatch struct {
	cancel    chan struct{}
	cancelled atomic.Bool
	lastBeat  atomic.Int64 // UnixNano of the most recent checkpoint
	reason    atomic.Value // error
	once      sync.Once
}

func (w *rebuildWatch) progress() { w.lastBeat.Store(time.Now().UnixNano()) }

func (w *rebuildWatch) fire(reason error) {
	w.once.Do(func() {
		w.reason.Store(reason)
		w.cancelled.Store(true)
		close(w.cancel)
	})
}

func (w *rebuildWatch) err() error {
	if !w.cancelled.Load() {
		return nil
	}
	return w.reason.Load().(error)
}

// checkpoint marks rebuild progress at a named point, fires the fault
// injector (its error is returned unwrapped, so tests can assert
// identity), and observes cancellation — from the watchdog
// (ErrMigrationTimeout) or Close (ErrClosed). It runs only on the
// rebuilding goroutine.
func (a *AdaptiveIndex) checkpoint(stage string, shard int) error {
	a.lastStage, a.lastShard = stage, shard
	w := a.watch.Load()
	if w != nil {
		w.progress()
	}
	if inj := a.injector; inj != nil {
		if err := inj.Fire(stage, shard); err != nil {
			return err
		}
	}
	if a.closed.Load() {
		return ErrClosed
	}
	if w != nil {
		return w.err()
	}
	return nil
}

// startWatchdog polices the in-flight rebuild: MigrationTimeout bounds
// the gap between checkpoints, RebuildDeadline the whole rebuild. On a
// violation it fires the watch with ErrMigrationTimeout and the next
// checkpoint aborts the rebuild. The returned stop function waits for
// the watchdog goroutine to exit.
func (a *AdaptiveIndex) startWatchdog(w *rebuildWatch) (stop func()) {
	progress, deadline := a.opts.MigrationTimeout, a.opts.RebuildDeadline
	if progress <= 0 && deadline <= 0 {
		return func() {}
	}
	start := time.Now()
	tick := time.Hour
	if progress > 0 && progress/4 < tick {
		tick = progress / 4
	}
	if deadline > 0 && deadline/4 < tick {
		tick = deadline / 4
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-ticker.C:
				wedged := progress > 0 && now.UnixNano()-w.lastBeat.Load() > int64(progress)
				overdue := deadline > 0 && now.Sub(start) > deadline
				if wedged || overdue {
					w.fire(ErrMigrationTimeout)
					return
				}
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
	}
}

// recoveredErr converts a recovered panic value into the typed
// *ErrRebuildPanic, attributing it to the last checkpoint passed and
// capturing the stack while the panicking frames are still live.
func (a *AdaptiveIndex) recoveredErr(r any) error {
	if e, ok := r.(*ErrRebuildPanic); ok {
		return e // already converted by an inner recover
	}
	return &ErrRebuildPanic{Stage: a.lastStage, Shard: a.lastShard, Value: r, Stack: debug.Stack()}
}

func (a *AdaptiveIndex) rebuildLocked() (err error) {
	if a.closed.Load() {
		return ErrClosed
	}
	if err := a.ctl.BeginBuild(); err != nil {
		return err
	}
	a.lastStage, a.lastShard = "build-start", -1
	w := &rebuildWatch{cancel: make(chan struct{})}
	w.progress()
	a.watch.Store(w)
	if ca, ok := a.injector.(fault.CancelAware); ok {
		ca.SetCancel(w.cancel)
	}
	stopWatchdog := a.startWatchdog(w)
	start := time.Now()
	var buildCPR float64
	// Any failure from here on rolls the lifecycle back and feeds the
	// retry/breaker policy; any panic is isolated here (the shard maps
	// were already restored by migrateConcurrent's own recovery before
	// the panic converts to an error). The trace records the terminal
	// event — cutover on success; abort plus the resulting backoff or
	// breaker state on failure — so /debug/events tells the whole story.
	defer func() {
		if r := recover(); r != nil {
			err = a.recoveredErr(r)
		}
		stopWatchdog()
		a.watch.Store(nil)
		if err == nil {
			a.trace.Emit("cutover", -1, time.Since(start).Nanoseconds(),
				fmt.Sprintf("gen=%d cpr=%.3f", a.ctl.Generation(), buildCPR))
			return
		}
		a.trace.Emit("abort", a.lastShard, time.Since(start).Nanoseconds(), err.Error())
		_ = a.ctl.Abort()
		if !errors.Is(err, ErrClosed) {
			a.ctl.RecordFailure(err)
			st := a.ctl.Stats()
			if st.Degraded {
				a.trace.Emit("degraded", -1, 0, fmt.Sprintf("failures=%d", st.ConsecutiveFailures))
			} else {
				a.trace.Emit("backoff", -1, 0, fmt.Sprintf("failures=%d", st.ConsecutiveFailures))
			}
		}
	}()
	if err := a.checkpoint("build-start", -1); err != nil {
		return err
	}
	a.trace.Emit("build-start", -1, 0, "")
	samples := a.ctl.SampleSnapshot()
	if len(samples) == 0 {
		// A cutover resets the reservoir, so an explicit Rebuild issued
		// before new traffic arrives would have nothing to build from;
		// fall back to sampling the live records themselves.
		samples = a.sampleRecords(a.ctl.Config().ReservoirSize)
	}
	if len(samples) == 0 {
		return fmt.Errorf("hope: rebuild of an empty index with an empty reservoir")
	}
	enc, err := core.Build(a.opts.Scheme, samples, a.opts.Build)
	if err != nil {
		return err
	}
	buildCPR = enc.CompressionRate(samples)
	a.trace.Emit("build-done", -1, time.Since(start).Nanoseconds(),
		fmt.Sprintf("cpr=%.3f samples=%d", buildCPR, len(samples)))
	// Range mode re-samples split points from the same reservoir snapshot
	// the dictionary is built from: the migration that re-encodes every
	// record also re-balances the partition to current traffic.
	var splits [][]byte
	if a.opts.Partition == RangePartitioned {
		splits = RangeSplits(samples, a.opts.Shards, splitSeed)
	}
	next, err := a.newGeneration(enc, splits)
	if err != nil {
		return err
	}
	if err := a.ctl.BeginMigration(); err != nil {
		return err
	}
	if a.backend == SuRF {
		a.trace.Emit("migrate-start", -1, 0, "stop-the-world")
		err = a.migrateStopTheWorld(next)
	} else {
		a.trace.Emit("migrate-start", -1, 0, "concurrent")
		err = a.migrateConcurrent(next)
	}
	if err != nil {
		return err
	}
	return a.ctl.Cutover(buildCPR)
}

// migrateConcurrent runs the incremental protocol described on the type:
// dual-write everywhere, copy per shard in batches, flip reads per shard,
// cut over when all shards flipped. Any error — or any panic, recovered
// here so the restore runs before the error propagates — aborts by
// pointing every shard back at the old generation, which saw every write
// throughout.
func (a *AdaptiveIndex) migrateConcurrent(next *generation) (err error) {
	a.genMu.Lock()
	old := a.cur
	a.next = next
	a.genMu.Unlock()
	a.migrated.Store(0)

	defer func() {
		if r := recover(); r != nil {
			err = a.recoveredErr(r)
		}
		if err == nil {
			return
		}
		for _, sh := range a.shards {
			sh.mu.Lock()
			sh.read = old
			sh.write = []*generation{old}
			sh.mu.Unlock()
		}
		a.genMu.Lock()
		a.next = nil
		a.genMu.Unlock()
		a.migrated.Store(0)
	}()

	for _, sh := range a.shards {
		sh.mu.Lock()
		sh.write = []*generation{old, next}
		sh.mu.Unlock()
	}
	for i := range a.shards {
		copyStart := time.Now()
		if err := a.migrateShard(i, old, next); err != nil {
			return err
		}
		a.trace.Emit("shard-copied", i, time.Since(copyStart).Nanoseconds(), "")
		sh := a.shards[i]
		sh.mu.Lock()
		sh.read = next
		sh.mu.Unlock()
		a.migrated.Add(1)
		a.trace.Emit("shard-flipped", i, 0, "")
		if err := a.checkpoint("shard-flipped", i); err != nil {
			return err
		}
	}
	if err := a.checkpoint("cutover", -1); err != nil {
		return err
	}
	for _, sh := range a.shards {
		sh.mu.Lock()
		sh.read = next
		sh.write = []*generation{next}
		sh.mu.Unlock()
	}
	a.genMu.Lock()
	a.cur = next
	a.next = nil
	a.genMu.Unlock()
	a.migrated.Store(0)
	return nil
}

// migrateShard copies one stripe's live records into the next generation
// in MigrationBatch-bounded steps. Slots at or above the horizon snapshot
// were appended after dual-writing began and are already in both
// generations; slots below it that the dual-writer races in are caught by
// upsertShard's presence probe (a single encode-probe-insert pass per
// record). The next generation routes each key through its own
// partitioner, so a re-sampled range partition redistributes the records
// as a side effect of the copy.
func (a *AdaptiveIndex) migrateShard(stripe int, old, next *generation) error {
	sh := a.shards[stripe]
	sh.mu.Lock()
	horizon := len(old.recs[stripe].recs)
	sh.mu.Unlock()
	for start := 0; start < horizon; start += a.opts.MigrationBatch {
		end := start + a.opts.MigrationBatch
		if end > horizon {
			end = horizon
		}
		if err := a.copyBatch(sh, stripe, old, next, start, end); err != nil {
			return err
		}
		if err := a.checkpoint("batch", stripe); err != nil {
			return err
		}
	}
	return nil
}

// copyBatch copies slots [start, end) of one stripe under its lock. The
// unlock is deferred so an injected panic cannot leak the lock on its way
// to migrateConcurrent's recovery. The "mid-batch" checkpoint fires per
// record but only when an injector is armed — it exists to let fault
// plans abort with the stripe lock held and the batch half-copied, the
// worst possible instant.
func (a *AdaptiveIndex) copyBatch(sh *adaptiveShard, stripe int, old, next *generation, start, end int) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Gather the batch's live keys, re-encode them in ONE bulk call (the
	// word-parallel batch kernels), then probe-and-insert each stored form
	// under its shard lock. The per-record scratch encode the old loop
	// paid is the dominant migration cost for compressed generations.
	slots := make([]int, 0, end-start)
	keys := make([][]byte, 0, end-start)
	for slot := start; slot < end; slot++ {
		r := &old.recs[stripe].recs[slot]
		if r.dead {
			continue
		}
		slots = append(slots, slot)
		keys = append(keys, r.key)
	}
	encs := next.idx.encodeBatch(keys) // nil when next stores keys raw
	for bi, slot := range slots {
		r := &old.recs[stripe].recs[slot]
		enc := keys[bi]
		if encs != nil {
			enc = encs[bi]
		}
		nslot := len(next.recs[stripe].recs)
		_, existed, err := next.idx.upsertShardEncoded(
			routeRecord(next, stripe, r.key), r.key, enc, recordID(stripe, nslot))
		if err != nil {
			return err
		}
		if existed {
			continue // dual-written (or re-inserted) since the snapshot
		}
		next.recs[stripe].recs = append(next.recs[stripe].recs, record{key: r.key, val: r.val})
		next.recs[stripe].live++
		if a.injector != nil {
			if err := a.checkpoint("mid-batch", stripe); err != nil {
				return err
			}
		}
	}
	return nil
}

// migrateStopTheWorld is the bulk-only fallback (SuRF): with every shard
// locked, live records bulk-load into the next generation through the
// parallel encode pipeline and the swap is atomic. Reads and writes wait
// for the duration; nothing can race, so an error simply discards next.
func (a *AdaptiveIndex) migrateStopTheWorld(next *generation) error {
	for _, sh := range a.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range a.shards {
			sh.mu.Unlock()
		}
	}()
	old := a.shards[0].write[0]
	var keys [][]byte
	var ids []uint64
	for i := range a.shards {
		for _, r := range old.recs[i].recs {
			if r.dead {
				continue
			}
			slot := len(next.recs[i].recs)
			next.recs[i].recs = append(next.recs[i].recs, record{key: r.key, val: r.val})
			next.recs[i].live++
			keys = append(keys, r.key)
			ids = append(ids, recordID(i, slot))
		}
	}
	if err := next.idx.Bulk(keys, ids); err != nil {
		return err
	}
	// Same cutover checkpoint as the concurrent path, so fault plans and
	// the watchdog cover the stop-the-world rebuild too; the deferred
	// unlocks make an injected panic here safe.
	if err := a.checkpoint("cutover", -1); err != nil {
		return err
	}
	for _, sh := range a.shards {
		sh.read = next
		sh.write = []*generation{next}
	}
	a.genMu.Lock()
	a.cur = next
	a.genMu.Unlock()
	return nil
}

// ---------------------------------------------------------------------------
// Scans: per-shard cursors over each shard's read generation, merged in
// original-key order (the only order two dictionaries share).
// ---------------------------------------------------------------------------

// genBounds caches one generation's encoded translation of a scan's
// bounds; mid-migration a scan needs one per generation in play.
type genBounds struct {
	lo, hi []byte
	hiIncl bool
}

// Scan visits, in ascending original-key order, every stored key k with
// lo <= k < hi (bounds in original key space; nil hi is unbounded) and
// returns how many keys it visited. fn receives the original key — valid
// only during the callback — and may stop the scan by returning false.
// Like ShardedIndex, a scan is per-shard consistent (chunk snapshots)
// rather than a global snapshot. A scan overlapping a cutover keeps its
// per-generation cursors but re-validates every later chunk against the
// new serving generation — deletes and overwrites issued after the
// cutover are honored (TestAdaptiveScanSurvivesCutover); only keys
// *inserted* after the cutover may be missed for shards not yet reached,
// matching the insert semantics of any chunked concurrent scan.
func (a *AdaptiveIndex) Scan(lo, hi []byte, fn func(key []byte, val uint64) bool) int {
	bounds := func(g *generation) genBounds {
		if g.cenc == nil {
			return genBounds{lo: lo, hi: hi}
		}
		loEnc := g.cenc.EncodeBound(lo)
		if loEnc == nil {
			loEnc = []byte{}
		}
		return genBounds{lo: loEnc, hi: g.cenc.EncodeBound(hi)}
	}
	t := a.met.scan.Begin(0)
	n := a.mergeScan(bounds, fn)
	a.met.scan.End(t)
	return n
}

// ScanPrefix visits every stored key that starts with prefix, in
// ascending original-key order (see Scan for the callback contract).
// Bound translation follows Index.ScanPrefix per generation: exact lower
// bound, interval-ceiling upper bound.
func (a *AdaptiveIndex) ScanPrefix(prefix []byte, fn func(key []byte, val uint64) bool) int {
	maxLen := int(a.maxKeyLen.Load())
	if len(prefix) > maxLen {
		maxLen = len(prefix)
	}
	bounds := func(g *generation) genBounds {
		if g.cenc == nil {
			return genBounds{lo: prefix, hi: prefixSuccessor(prefix)}
		}
		lo, hi := g.cenc.EncodePrefix(prefix, maxLen)
		return genBounds{lo: lo, hi: hi, hiIncl: true}
	}
	t := a.met.scan.Begin(0)
	n := a.mergeScan(bounds, fn)
	a.met.scan.End(t)
	return n
}

// scanSnap pins one scan's view of the generation map: which generation
// serves each stripe's reads, captured once at scan start. Cursors filter
// every record through it, so a key dual-written into two generations is
// emitted by exactly one cursor, and a stripe flip mid-scan cannot
// duplicate or drop keys the snapshot covered.
type scanSnap struct {
	gens      []*generation // distinct read generations, discovery order
	stripeGen []*generation // per-stripe read generation at scan start
	multi     bool          // len(gens) > 1: stripe filter required
}

func (a *AdaptiveIndex) mergeScan(bounds func(*generation) genBounds, fn func(key []byte, val uint64) bool) int {
	snap := &scanSnap{stripeGen: make([]*generation, len(a.shards))}
	for i, sh := range a.shards {
		sh.mu.RLock()
		g := sh.read
		sh.mu.RUnlock()
		snap.stripeGen[i] = g
		seen := false
		for _, e := range snap.gens {
			if e == g {
				seen = true
				break
			}
		}
		if !seen {
			snap.gens = append(snap.gens, g)
		}
	}
	snap.multi = len(snap.gens) > 1

	// One cursor per tree shard of each generation in play, pruned to the
	// shards that generation's partitioner says can overlap the bounds
	// (range partitions prune; hash partitions span everything).
	var cursors []*adaptiveCursor
	for _, g := range snap.gens {
		b := bounds(g)
		first, last, ok := g.idx.scanSpan(b.lo, b.hi)
		if !ok {
			first, last = 0, len(g.idx.shards)-1
		}
		for w := first; w <= last; w++ {
			cursors = append(cursors, &adaptiveCursor{
				a: a, g: g, snap: snap, order: len(cursors), tshard: w,
				from: append([]byte(nil), b.lo...), hi: b.hi, hiIncl: b.hiIncl,
			})
		}
	}

	// Steady state over an ordered (range) partition: the cursors cover
	// disjoint ascending intervals of one generation — stream them in
	// shard order with no merge and no heap, the same fast path as
	// ShardedIndex.orderedScan.
	if !snap.multi && snap.gens[0].idx.part.Ordered() {
		count := 0
		for _, c := range cursors {
			for {
				k, ok := c.peek()
				if !ok {
					break
				}
				_, v := c.pop()
				count++
				if !fn(k, v) {
					return count
				}
			}
		}
		return count
	}

	heap := make([]*adaptiveCursor, 0, len(cursors))
	for _, c := range cursors {
		if _, ok := c.peek(); ok {
			heap = append(heap, c)
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(heap, i, adaptiveCursorLess)
	}
	count := 0
	for len(heap) > 0 {
		k, v := heap[0].pop()
		count++
		if !fn(k, v) {
			return count
		}
		if _, ok := heap[0].peek(); ok {
			siftDown(heap, 0, adaptiveCursorLess)
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			if len(heap) > 0 {
				siftDown(heap, 0, adaptiveCursorLess)
			}
		}
	}
	return count
}

// adaptiveCursor drains one tree shard of one generation in chunks. A
// fill is two phases with distinct lock domains: phase one drains a chunk
// of record ids from the tree under the tree-shard lock (record stores
// are guarded by stripe locks, which rank above tree locks — resolving
// inside the tree callback would invert the order); phase two resolves
// each id to (original key, live value) under its stripe's read lock,
// filtering through the scan snapshot. Emitted keys alias record storage
// — record key bytes are immutable for the record's lifetime — and are
// only valid during the scan callback. The encoded resume key
// (lastKey+0x00) tracks tree positions, including ones whose records died
// or were filtered mid-scan.
type adaptiveCursor struct {
	a      *AdaptiveIndex
	g      *generation
	snap   *scanSnap
	order  int // creation index; deterministic heap tie-break
	tshard int // tree shard within g's index
	from   []byte
	hi     []byte // shared, read-only
	hiIncl bool

	ids     []uint64
	keys    [][]byte // resolved original keys (alias record memory)
	vals    []uint64
	i       int
	chunk   int
	done    bool
	lastEnc []byte // reused resume scratch
}

func (c *adaptiveCursor) fill() {
	c.keys, c.vals, c.i = c.keys[:0], c.vals[:0], 0
	if c.done {
		return
	}
	if c.chunk == 0 {
		c.chunk = scanChunkInit
	}
	// Phase 1: one locked pass over the tree shard, ids only.
	n := 0
	c.ids = c.ids[:0]
	last := c.lastEnc[:0]
	c.g.idx.scanShard(c.tshard, c.from, c.hi, c.hiIncl, func(ek []byte, id uint64) bool {
		n++
		last = append(last[:0], ek...)
		c.ids = append(c.ids, id)
		return n < c.chunk
	})
	c.lastEnc = last
	if n < c.chunk {
		c.done = true
	} else {
		c.from = append(append(c.from[:0], last...), 0x00)
		if c.chunk < scanChunk {
			c.chunk *= 2
		}
	}
	// Phase 2: resolve ids against the record stores. The stripe lock is
	// held across runs of same-stripe ids — for a hash-partitioned
	// generation every id in this tree shard shares one stripe (tree
	// routing IS the stripe hash), so the whole chunk resolves under a
	// single lock hold; range-partitioned generations interleave stripes
	// and pay a lock transition per run.
	var sh *adaptiveShard
	curStripe, live := -1, false
	for _, id := range c.ids {
		stripe, slot := int(id>>32), slotOf(id)
		if stripe != curStripe {
			if sh != nil {
				sh.mu.RUnlock()
			}
			curStripe = stripe
			sh = c.a.shards[stripe]
			sh.mu.RLock()
			live = false
			for _, g := range sh.write {
				if g == c.g {
					live = true
					break
				}
			}
		}
		if c.snap.multi && c.snap.stripeGen[stripe] != c.g {
			// Another generation owns this stripe's reads for the scan;
			// its cursor will emit the key (dual-writes guarantee it holds
			// every live key of the stripe).
			continue
		}
		if live {
			r := &c.g.recs[stripe].recs[slot]
			if !r.dead {
				c.keys = append(c.keys, r.key)
				c.vals = append(c.vals, r.val)
			}
			continue
		}
		// The cursor's generation no longer receives writes — a cutover
		// (or an abort of the generation the snapshot pinned) completed
		// mid-scan — so its trees and records are frozen, and deletes and
		// overwrites land only in the serving generation. Re-validate
		// against the stripe's current read generation: drop keys it no
		// longer holds and take its values, so the scan never resurrects
		// a deleted key or emits a stale value. (Entries buffered in a
		// previous chunk are a snapshot, the same per-chunk semantics as
		// ShardedIndex.)
		k := c.g.recs[stripe].recs[slot].key
		cur := sh.read
		id2, ok := cur.idx.getShard(routeRecord(cur, stripe, k), k)
		if ok {
			if r2 := &cur.recs[stripe].recs[slotOf(id2)]; !r2.dead {
				c.keys = append(c.keys, r2.key)
				c.vals = append(c.vals, r2.val)
			}
		}
	}
	if sh != nil {
		sh.mu.RUnlock()
	}
}

// peek returns the cursor's current original key, refilling (and skipping
// all-dead or all-filtered chunks) as needed; ok is false when the shard
// is exhausted.
func (c *adaptiveCursor) peek() ([]byte, bool) {
	for c.i >= len(c.keys) {
		if c.done {
			return nil, false
		}
		c.fill()
	}
	return c.keys[c.i], true
}

func (c *adaptiveCursor) pop() ([]byte, uint64) {
	k, v := c.keys[c.i], c.vals[c.i]
	c.i++
	return k, v
}

// adaptiveCursorLess orders cursors by current original key — valid
// across generations, unlike encoded keys — breaking ties by creation
// order for determinism (ties cannot occur between emitting cursors: one
// generation's tree shards partition the keyspace, and across generations
// the snapshot filter gives every stripe exactly one emitting
// generation).
func adaptiveCursorLess(a, b *adaptiveCursor) bool {
	if c := bytes.Compare(a.keys[a.i], b.keys[b.i]); c != 0 {
		return c < 0
	}
	return a.order < b.order
}
