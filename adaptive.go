package hope

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/lifecycle"
)

// AdaptiveIndex automates the full dictionary lifecycle the paper leaves
// to the application (Section 5 / Appendix C): it wraps a sharded
// compressed index and (1) reservoir-samples live write traffic while
// tracking a rolling compression rate, (2) builds a new-generation
// dictionary in the background when the rate drifts below the build-time
// baseline (or on an explicit Rebuild), and (3) migrates the stored
// entries into the new generation incrementally — per-shard, per-batch —
// while reads and writes keep flowing. The lifecycle state machine
// (Sampling → Building → Migrating → Steady, with drift rebuilds looping
// back through Building) lives in internal/lifecycle; this type is the
// data plane.
//
// # Record store
//
// Search trees store only the padded encodings, and paddings make decoding
// ambiguous, so re-encoding under a new dictionary needs the original
// keys. The AdaptiveIndex therefore owns a per-shard, per-generation
// record store: trees map encoded keys to record ids, records hold the
// original key bytes and the caller's value. This mirrors how a DBMS
// integrates HOPE — the index entry points at a record that contains the
// full key — and it is what makes background re-encode and
// cross-generation scan merging possible at all. The memory cost (the
// original key bytes, retained) is the price of adaptivity; a DBMS would
// source them from its base table instead.
//
// Because the index owns original keys, scan callbacks receive the
// *original* key — unlike Index and ShardedIndex, which hand out stored
// encodings. Keys passed to callbacks are only valid during the callback.
//
// # Migration protocol
//
// Shard routing hashes original key bytes (see shardHash), so every
// generation with the same shard count routes a key identically, and one
// generation map per shard suffices:
//
//   - Rebuild builds the new dictionary from a reservoir snapshot with no
//     locks held, then enters migration: every shard starts dual-writing
//     (writes apply to the old and new generations; reads stay on the
//     old).
//   - A background pass copies each shard's live records into the new
//     generation in bounded batches under the shard lock (writers to that
//     shard wait for at most one batch; all other shards flow). Records
//     appended after migration start need no copy — dual-writing already
//     landed them in both generations.
//   - As each shard finishes, its reads flip to the new generation; both
//     generations keep receiving writes, so a mid-migration index serves
//     some shards from each generation and scans merge old- and
//     new-generation cursors (the record store supplies original keys, the
//     only order the two dictionaries share).
//   - When every shard has flipped, the cutover drops the old generation.
//     Until that instant the old generation has seen every write, so an
//     abort — a failed build, a fault injected by tests — simply points
//     every shard back at it, intact.
//
// The bulk-only SuRF backend cannot dual-write; its rebuild takes the
// stop-the-world path: all shards lock, live records bulk-load into the
// new generation, and the swap is atomic.
//
// All methods are safe for concurrent use.
type AdaptiveIndex struct {
	backend Backend
	opts    AdaptiveOptions
	ctl     *lifecycle.Controller
	mask    uint64
	shards  []*adaptiveShard

	maxKeyLen atomic.Int64

	// rebuildMu serializes rebuilds and excludes Bulk's stop-the-world
	// load from overlapping a migration; rebuilding dedupes async
	// triggers.
	rebuildMu  sync.Mutex
	rebuilding atomic.Bool

	// genMu guards the generation pointers (ops never touch them — they
	// go through the per-shard generation map).
	genMu sync.Mutex
	cur   *generation
	next  *generation

	migrated atomic.Int32 // shards flipped in the current migration

	// migrationHook, when set (tests only), runs at migration checkpoints;
	// returning an error aborts the rebuild at that point. Set it before
	// any traffic and do not change it while a rebuild may be running.
	migrationHook func(stage string, shard int) error
}

// AdaptiveOptions configures an AdaptiveIndex. The zero value serves
// uncompressed while sampling, then builds a Single-Char dictionary after
// lifecycle defaults; set Scheme (and Build) for stronger compression.
type AdaptiveOptions struct {
	// Scheme is the compression scheme rebuilt dictionaries use.
	Scheme core.Scheme
	// Build tunes HOPE's build phase for every generation.
	Build core.Options
	// Encoder, when non-nil, is the generation-0 dictionary: the index
	// starts Steady and compressed instead of Sampling (generations count
	// completed rebuilds). The encoder is
	// captured as the build template (like NewShardedIndex) and must not
	// be used directly afterwards. Its drift baseline self-calibrates
	// from the first full window of live traffic.
	Encoder *core.Encoder
	// Shards is the shard count (rounded up to a power of two; <= 0
	// selects DefaultShards). Every generation uses the same count.
	Shards int
	// MigrationBatch bounds how many records one migration step copies
	// while holding a shard's lock (default 512) — the writer-visible
	// pause ceiling.
	MigrationBatch int
	// Manual disables automatic rebuilds: the lifecycle still samples and
	// tracks drift, but only an explicit Rebuild call acts on it.
	Manual bool
	// Lifecycle tunes the sampling and drift policy (zero fields take
	// lifecycle defaults).
	Lifecycle lifecycle.Config
}

// Re-exported lifecycle states, so callers can switch on
// AdaptiveIndex.State without importing an internal package.
type LifecycleState = lifecycle.State

const (
	StateSampling  = lifecycle.Sampling
	StateSteady    = lifecycle.Steady
	StateBuilding  = lifecycle.Building
	StateMigrating = lifecycle.Migrating
)

// AdaptiveStats is a point-in-time snapshot of the lifecycle and
// migration progress.
type AdaptiveStats struct {
	lifecycle.Stats
	Backend        Backend
	Shards         int
	MigratedShards int // shards flipped in the in-flight migration (0 when steady)
}

// generation is one dictionary era: a sharded tree whose values are
// record ids, plus the per-shard record stores those ids resolve through.
type generation struct {
	idx  *ShardedIndex
	enc  *core.Encoder            // build template (nil = uncompressed)
	cenc *core.ConcurrentEncoder  // bound translation for scans (nil = uncompressed)
	recs []generationShardRecords // one per shard, guarded by the adaptiveShard lock
}

type generationShardRecords struct {
	recs []record
	live int
}

// record holds one original key and the caller's value. Slots are
// append-only within a generation (ids stored in trees stay valid); dead
// slots are reclaimed when their generation is dropped at cutover — a
// rebuild doubles as compaction.
type record struct {
	key  []byte
	val  uint64
	dead bool
}

// adaptiveShard is one stripe of the generation map: which generation
// serves this shard's reads, and which generation(s) — old first — its
// writes apply to. The lock also guards both generations' record stores
// for this shard. Lock order: adaptiveShard.mu before any tree lock.
type adaptiveShard struct {
	mu    sync.RWMutex
	read  *generation
	write []*generation
}

func recordID(shard, slot int) uint64 { return uint64(shard)<<32 | uint64(uint32(slot)) }
func slotOf(id uint64) int            { return int(uint32(id)) }

// NewAdaptiveIndex builds an adaptive index over the named backend. With
// opts.Encoder nil the index starts in the Sampling state, serving
// uncompressed until enough keys arrived for the first dictionary.
func NewAdaptiveIndex(backend Backend, opts AdaptiveOptions) (*AdaptiveIndex, error) {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards()
	}
	opts.Shards = ceilPow2(opts.Shards)
	if opts.MigrationBatch <= 0 {
		opts.MigrationBatch = 512
	}
	a := &AdaptiveIndex{
		backend: backend,
		opts:    opts,
		mask:    uint64(opts.Shards - 1),
		shards:  make([]*adaptiveShard, opts.Shards),
	}
	initial := lifecycle.Sampling
	if opts.Encoder != nil {
		initial = lifecycle.Steady
	}
	a.ctl = lifecycle.NewController(opts.Lifecycle, initial)
	gen, err := a.newGeneration(opts.Encoder)
	if err != nil {
		return nil, err
	}
	a.cur = gen
	for i := range a.shards {
		a.shards[i] = &adaptiveShard{read: gen, write: []*generation{gen}}
	}
	return a, nil
}

func (a *AdaptiveIndex) newGeneration(enc *core.Encoder) (*generation, error) {
	idx, err := NewShardedIndex(a.backend, enc, a.opts.Shards)
	if err != nil {
		return nil, err
	}
	g := &generation{idx: idx, enc: enc, recs: make([]generationShardRecords, a.opts.Shards)}
	if enc != nil {
		g.cenc = core.NewConcurrentEncoder(enc.Clone())
	}
	return g, nil
}

// Backend returns the wrapped tree's name.
func (a *AdaptiveIndex) Backend() Backend { return a.backend }

// NumShards returns the shard count (a power of two, fixed for life).
func (a *AdaptiveIndex) NumShards() int { return len(a.shards) }

// State returns the lifecycle state.
func (a *AdaptiveIndex) State() LifecycleState { return a.ctl.State() }

// Generation returns the serving dictionary generation — the number of
// completed rebuilds (generation 0 is the initial era: uncompressed, or
// opts.Encoder when one was supplied).
func (a *AdaptiveIndex) Generation() int { return a.ctl.Generation() }

// Encoder returns the serving generation's build template (nil while
// uncompressed). During a migration this is still the old generation's
// encoder — the one every shard's authoritative writes run through.
func (a *AdaptiveIndex) Encoder() *core.Encoder {
	a.genMu.Lock()
	defer a.genMu.Unlock()
	return a.cur.enc
}

// Stats snapshots the lifecycle counters and migration progress.
func (a *AdaptiveIndex) Stats() AdaptiveStats {
	return AdaptiveStats{
		Stats:          a.ctl.Stats(),
		Backend:        a.backend,
		Shards:         len(a.shards),
		MigratedShards: int(a.migrated.Load()),
	}
}

func (a *AdaptiveIndex) shardIdx(key []byte) int { return int(shardHash(key) & a.mask) }

func (a *AdaptiveIndex) trackLen(n int) {
	for {
		cur := a.maxKeyLen.Load()
		if int64(n) <= cur || a.maxKeyLen.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// Put inserts or overwrites one key. An overwrite only updates the record
// (both generations' trees already point at it); an insert appends a
// record and inserts into every write generation, so a migration in
// flight never loses it.
func (a *AdaptiveIndex) Put(key []byte, val uint64) error {
	if a.backend == SuRF {
		return ErrImmutableBackend
	}
	a.trackLen(len(key))
	i := a.shardIdx(key)
	sh := a.shards[i]
	storedLen, inserted := 0, false
	sh.mu.Lock()
	for gi, g := range sh.write {
		id, ok := g.idx.getShard(i, key)
		if ok {
			g.recs[i].recs[slotOf(id)].val = val
			continue
		}
		slot := len(g.recs[i].recs)
		g.recs[i].recs = append(g.recs[i].recs, record{key: append([]byte(nil), key...), val: val})
		g.recs[i].live++
		n, err := g.idx.putShard(i, key, recordID(i, slot))
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		if gi == 0 {
			storedLen, inserted = n, true
		}
	}
	sh.mu.Unlock()
	if inserted {
		if sig := a.ctl.Observe(key, storedLen); sig != lifecycle.None && !a.opts.Manual {
			a.triggerAsync()
		}
	} else {
		// Overwrites are traffic for the reservoir but do not change the
		// stored bytes the rolling CPR measures.
		a.ctl.ObserveBulk(key)
	}
	return nil
}

// Get returns the value stored under key, consulting the shard's read
// generation.
func (a *AdaptiveIndex) Get(key []byte) (uint64, bool) {
	i := a.shardIdx(key)
	sh := a.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	g := sh.read
	id, ok := g.idx.getShard(i, key)
	if !ok {
		return 0, false
	}
	r := &g.recs[i].recs[slotOf(id)]
	if r.dead {
		return 0, false
	}
	return r.val, true
}

// Delete removes key from every write generation, reporting whether it
// was present.
func (a *AdaptiveIndex) Delete(key []byte) (bool, error) {
	if a.backend == SuRF {
		return false, ErrImmutableBackend
	}
	i := a.shardIdx(key)
	sh := a.shards[i]
	found := false
	sh.mu.Lock()
	for gi, g := range sh.write {
		id, ok := g.idx.getShard(i, key)
		if ok {
			g.recs[i].recs[slotOf(id)].dead = true
			g.recs[i].live--
			if _, err := g.idx.deleteShard(i, key); err != nil {
				sh.mu.Unlock()
				return false, err
			}
		}
		if gi == 0 {
			found = ok
		}
	}
	sh.mu.Unlock()
	return found, nil
}

// Len returns the number of live keys (authoritative generation).
func (a *AdaptiveIndex) Len() int {
	n := 0
	for i, sh := range a.shards {
		sh.mu.RLock()
		n += sh.write[0].recs[i].live
		sh.mu.RUnlock()
	}
	return n
}

// MemoryUsage returns the modeled footprint in bytes: every serving
// generation's trees and dictionary, plus the record store (original keys
// and per-record overhead) — the honest total, since the record store is
// what buys background re-encode.
func (a *AdaptiveIndex) MemoryUsage() int {
	a.genMu.Lock()
	gens := []*generation{a.cur}
	if a.next != nil {
		gens = append(gens, a.next)
	}
	a.genMu.Unlock()
	m := 0
	for _, g := range gens {
		m += g.idx.MemoryUsage()
	}
	for i, sh := range a.shards {
		sh.mu.RLock()
		for _, g := range gens {
			for _, r := range g.recs[i].recs {
				m += len(r.key) + 33 // slice header + val + dead + padding
			}
		}
		sh.mu.RUnlock()
	}
	return m
}

// Bulk loads keys[i] -> vals[i] (nil vals assigns positions). It is the
// only way to populate a SuRF-backed index, and the fast path for an
// initial load elsewhere; on a non-empty mutable index it degrades to a
// Put loop (overwrite semantics). Bulk excludes rebuilds for its
// duration and must not run concurrently with other writers.
func (a *AdaptiveIndex) Bulk(keys [][]byte, vals []uint64) error {
	if vals != nil && len(vals) != len(keys) {
		return fmt.Errorf("hope: %d keys but %d values", len(keys), len(vals))
	}
	viaPuts, err := a.bulkLoad(keys, vals)
	if err != nil {
		return err
	}
	if !viaPuts {
		// The stop-the-world path bypasses Put, so the lifecycle has not
		// seen these keys yet; the Put-loop path already observed each one.
		for _, k := range keys {
			a.ctl.ObserveBulk(k)
		}
	}
	if !a.opts.Manual && a.ctl.Check() != lifecycle.None {
		a.triggerAsync()
	}
	return nil
}

// bulkLoad performs the load and reports whether it went through the Put
// loop (which feeds the lifecycle tracker itself).
func (a *AdaptiveIndex) bulkLoad(keys [][]byte, vals []uint64) (viaPuts bool, err error) {
	a.rebuildMu.Lock()
	defer a.rebuildMu.Unlock()
	if a.backend != SuRF && a.Len() > 0 {
		for i, k := range keys {
			v := uint64(i)
			if vals != nil {
				v = vals[i]
			}
			if err := a.Put(k, v); err != nil {
				return true, err
			}
		}
		return true, nil
	}
	// Stop-the-world load: lock every shard, append records, bulk-load the
	// trees through the parallel encode pipeline, release. For SuRF this
	// replaces the whole contents (the backend rebuilds its filter over
	// exactly the new run).
	for _, sh := range a.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range a.shards {
			sh.mu.Unlock()
		}
	}()
	g := a.shards[0].write[0]
	if a.backend == SuRF {
		for i := range g.recs {
			g.recs[i] = generationShardRecords{}
		}
	}
	// Last write wins on duplicate keys, matching Put-loop semantics.
	lastIdx := make(map[string]int, len(keys))
	for i, k := range keys {
		lastIdx[string(k)] = i
	}
	var loadKeys [][]byte
	var ids []uint64
	for i, k := range keys {
		if lastIdx[string(k)] != i {
			continue
		}
		a.trackLen(len(k))
		v := uint64(i)
		if vals != nil {
			v = vals[i]
		}
		w := a.shardIdx(k)
		slot := len(g.recs[w].recs)
		g.recs[w].recs = append(g.recs[w].recs, record{key: append([]byte(nil), k...), val: v})
		g.recs[w].live++
		loadKeys = append(loadKeys, k)
		ids = append(ids, recordID(w, slot))
	}
	return false, g.idx.Bulk(loadKeys, ids)
}

// ---------------------------------------------------------------------------
// Rebuild: build → migrate → cutover (or abort).
// ---------------------------------------------------------------------------

// Rebuild forces a full dictionary rebuild and migration now, blocking
// until the cutover (or the abort) completes. Traffic keeps flowing on
// mutable backends; the SuRF backend rebuilds stop-the-world. The drift
// detector triggers this same path automatically unless opts.Manual.
func (a *AdaptiveIndex) Rebuild() error {
	a.rebuildMu.Lock()
	defer a.rebuildMu.Unlock()
	return a.rebuildLocked()
}

// Quiesce blocks until any in-flight background rebuild completes.
func (a *AdaptiveIndex) Quiesce() {
	a.rebuildMu.Lock()
	defer a.rebuildMu.Unlock()
}

// triggerAsync starts one background rebuild; concurrent signals collapse
// into it.
func (a *AdaptiveIndex) triggerAsync() {
	if !a.rebuilding.CompareAndSwap(false, true) {
		return
	}
	go func() {
		a.rebuildMu.Lock()
		defer a.rebuildMu.Unlock()
		defer a.rebuilding.Store(false)
		// Re-validate under the lock: an explicit Rebuild may have
		// serviced the signal while this goroutine waited.
		if a.ctl.Check() == lifecycle.None {
			return
		}
		// The error is reflected in Stats().Aborts; background failures
		// have no caller to return to.
		_ = a.rebuildLocked()
	}()
}

// sampleRecords draws up to capacity live original keys from the
// authoritative generation's record store, striding evenly so one shard's
// keys cannot dominate the sample.
func (a *AdaptiveIndex) sampleRecords(capacity int) [][]byte {
	live := a.Len()
	if live == 0 || capacity <= 0 {
		return nil
	}
	stride := (live + capacity - 1) / capacity
	var out [][]byte
	seen := 0
	for i, sh := range a.shards {
		sh.mu.RLock()
		for _, r := range sh.write[0].recs[i].recs {
			if r.dead {
				continue
			}
			if seen%stride == 0 && len(out) < capacity {
				out = append(out, append([]byte(nil), r.key...))
			}
			seen++
		}
		sh.mu.RUnlock()
	}
	return out
}

func (a *AdaptiveIndex) hookErr(stage string, shard int) error {
	if a.migrationHook == nil {
		return nil
	}
	return a.migrationHook(stage, shard)
}

func (a *AdaptiveIndex) rebuildLocked() (err error) {
	if err := a.ctl.BeginBuild(); err != nil {
		return err
	}
	// Any failure from here on rolls the lifecycle back.
	defer func() {
		if err != nil {
			_ = a.ctl.Abort()
		}
	}()
	if err := a.hookErr("build-start", -1); err != nil {
		return err
	}
	samples := a.ctl.SampleSnapshot()
	if len(samples) == 0 {
		// A cutover resets the reservoir, so an explicit Rebuild issued
		// before new traffic arrives would have nothing to build from;
		// fall back to sampling the live records themselves.
		samples = a.sampleRecords(a.ctl.Config().ReservoirSize)
	}
	if len(samples) == 0 {
		return fmt.Errorf("hope: rebuild of an empty index with an empty reservoir")
	}
	enc, err := core.Build(a.opts.Scheme, samples, a.opts.Build)
	if err != nil {
		return err
	}
	buildCPR := enc.CompressionRate(samples)
	next, err := a.newGeneration(enc)
	if err != nil {
		return err
	}
	if err := a.ctl.BeginMigration(); err != nil {
		return err
	}
	if a.backend == SuRF {
		err = a.migrateStopTheWorld(next)
	} else {
		err = a.migrateConcurrent(next)
	}
	if err != nil {
		return err
	}
	return a.ctl.Cutover(buildCPR)
}

// migrateConcurrent runs the incremental protocol described on the type:
// dual-write everywhere, copy per shard in batches, flip reads per shard,
// cut over when all shards flipped. Any error aborts by pointing every
// shard back at the old generation, which saw every write throughout.
func (a *AdaptiveIndex) migrateConcurrent(next *generation) error {
	a.genMu.Lock()
	old := a.cur
	a.next = next
	a.genMu.Unlock()
	a.migrated.Store(0)

	abort := func() {
		for _, sh := range a.shards {
			sh.mu.Lock()
			sh.read = old
			sh.write = []*generation{old}
			sh.mu.Unlock()
		}
		a.genMu.Lock()
		a.next = nil
		a.genMu.Unlock()
		a.migrated.Store(0)
	}

	for _, sh := range a.shards {
		sh.mu.Lock()
		sh.write = []*generation{old, next}
		sh.mu.Unlock()
	}
	for i := range a.shards {
		if err := a.migrateShard(i, old, next); err != nil {
			abort()
			return err
		}
		sh := a.shards[i]
		sh.mu.Lock()
		sh.read = next
		sh.mu.Unlock()
		a.migrated.Add(1)
		if err := a.hookErr("shard-flipped", i); err != nil {
			abort()
			return err
		}
	}
	if err := a.hookErr("cutover", -1); err != nil {
		abort()
		return err
	}
	for _, sh := range a.shards {
		sh.mu.Lock()
		sh.read = next
		sh.write = []*generation{next}
		sh.mu.Unlock()
	}
	a.genMu.Lock()
	a.cur = next
	a.next = nil
	a.genMu.Unlock()
	a.migrated.Store(0)
	return nil
}

// migrateShard copies one shard's live records into the next generation in
// MigrationBatch-bounded steps. Slots at or above the horizon snapshot
// were appended after dual-writing began and are already in both
// generations; slots below it that the dual-writer races in are caught by
// the presence probe.
func (a *AdaptiveIndex) migrateShard(shard int, old, next *generation) error {
	sh := a.shards[shard]
	sh.mu.Lock()
	horizon := len(old.recs[shard].recs)
	sh.mu.Unlock()
	for start := 0; start < horizon; start += a.opts.MigrationBatch {
		end := start + a.opts.MigrationBatch
		if end > horizon {
			end = horizon
		}
		sh.mu.Lock()
		for slot := start; slot < end; slot++ {
			r := &old.recs[shard].recs[slot]
			if r.dead {
				continue
			}
			if _, ok := next.idx.getShard(shard, r.key); ok {
				continue // dual-written (or re-inserted) since the snapshot
			}
			nslot := len(next.recs[shard].recs)
			next.recs[shard].recs = append(next.recs[shard].recs, record{key: r.key, val: r.val})
			next.recs[shard].live++
			if _, err := next.idx.putShard(shard, r.key, recordID(shard, nslot)); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		sh.mu.Unlock()
		if err := a.hookErr("batch", shard); err != nil {
			return err
		}
	}
	return nil
}

// migrateStopTheWorld is the bulk-only fallback (SuRF): with every shard
// locked, live records bulk-load into the next generation through the
// parallel encode pipeline and the swap is atomic. Reads and writes wait
// for the duration; nothing can race, so an error simply discards next.
func (a *AdaptiveIndex) migrateStopTheWorld(next *generation) error {
	for _, sh := range a.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range a.shards {
			sh.mu.Unlock()
		}
	}()
	old := a.shards[0].write[0]
	var keys [][]byte
	var ids []uint64
	for i := range a.shards {
		for _, r := range old.recs[i].recs {
			if r.dead {
				continue
			}
			slot := len(next.recs[i].recs)
			next.recs[i].recs = append(next.recs[i].recs, record{key: r.key, val: r.val})
			next.recs[i].live++
			keys = append(keys, r.key)
			ids = append(ids, recordID(i, slot))
		}
	}
	if err := next.idx.Bulk(keys, ids); err != nil {
		return err
	}
	for _, sh := range a.shards {
		sh.read = next
		sh.write = []*generation{next}
	}
	a.genMu.Lock()
	a.cur = next
	a.genMu.Unlock()
	return nil
}

// ---------------------------------------------------------------------------
// Scans: per-shard cursors over each shard's read generation, merged in
// original-key order (the only order two dictionaries share).
// ---------------------------------------------------------------------------

// genBounds caches one generation's encoded translation of a scan's
// bounds; mid-migration a scan needs one per generation in play.
type genBounds struct {
	lo, hi []byte
	hiIncl bool
}

// Scan visits, in ascending original-key order, every stored key k with
// lo <= k < hi (bounds in original key space; nil hi is unbounded) and
// returns how many keys it visited. fn receives the original key — valid
// only during the callback — and may stop the scan by returning false.
// Like ShardedIndex, a scan is per-shard consistent (chunk snapshots)
// rather than a global snapshot. A scan overlapping a cutover keeps its
// per-generation cursors but re-validates every later chunk against the
// new serving generation — deletes and overwrites issued after the
// cutover are honored (TestAdaptiveScanSurvivesCutover); only keys
// *inserted* after the cutover may be missed for shards not yet reached,
// matching the insert semantics of any chunked concurrent scan.
func (a *AdaptiveIndex) Scan(lo, hi []byte, fn func(key []byte, val uint64) bool) int {
	bounds := func(g *generation) genBounds {
		if g.cenc == nil {
			return genBounds{lo: lo, hi: hi}
		}
		loEnc := g.cenc.EncodeBound(lo)
		if loEnc == nil {
			loEnc = []byte{}
		}
		return genBounds{lo: loEnc, hi: g.cenc.EncodeBound(hi)}
	}
	return a.mergeScan(bounds, fn)
}

// ScanPrefix visits every stored key that starts with prefix, in
// ascending original-key order (see Scan for the callback contract).
// Bound translation follows Index.ScanPrefix per generation: exact lower
// bound, interval-ceiling upper bound.
func (a *AdaptiveIndex) ScanPrefix(prefix []byte, fn func(key []byte, val uint64) bool) int {
	maxLen := int(a.maxKeyLen.Load())
	if len(prefix) > maxLen {
		maxLen = len(prefix)
	}
	bounds := func(g *generation) genBounds {
		if g.cenc == nil {
			return genBounds{lo: prefix, hi: prefixSuccessor(prefix)}
		}
		lo, hi := g.cenc.EncodePrefix(prefix, maxLen)
		return genBounds{lo: lo, hi: hi, hiIncl: true}
	}
	return a.mergeScan(bounds, fn)
}

func (a *AdaptiveIndex) mergeScan(bounds func(*generation) genBounds, fn func(key []byte, val uint64) bool) int {
	cache := map[*generation]genBounds{}
	heap := make([]*adaptiveCursor, 0, len(a.shards))
	for i, sh := range a.shards {
		sh.mu.RLock()
		g := sh.read
		sh.mu.RUnlock()
		b, ok := cache[g]
		if !ok {
			b = bounds(g)
			cache[g] = b
		}
		c := &adaptiveCursor{
			a: a, shard: i, g: g,
			from: append([]byte(nil), b.lo...), hi: b.hi, hiIncl: b.hiIncl,
		}
		if _, ok := c.peek(); ok {
			heap = append(heap, c)
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(heap, i, adaptiveCursorLess)
	}
	count := 0
	for len(heap) > 0 {
		k, v := heap[0].pop()
		count++
		if !fn(k, v) {
			return count
		}
		if _, ok := heap[0].peek(); ok {
			siftDown(heap, 0, adaptiveCursorLess)
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			if len(heap) > 0 {
				siftDown(heap, 0, adaptiveCursorLess)
			}
		}
	}
	return count
}

// adaptiveCursor drains one shard from its pinned generation in chunks,
// resolving record ids to (original key, live value) at fill time under
// the shard lock — so the merge can compare keys across generations
// without further locking. Dead records are skipped; the encoded resume
// key (lastKey+0x00) tracks tree positions, including ones whose records
// died mid-scan.
type adaptiveCursor struct {
	a      *AdaptiveIndex
	shard  int
	g      *generation
	from   []byte // inclusive encoded resume bound (owned)
	hi     []byte // shared, read-only
	hiIncl bool

	arena   []byte
	keys    [][]byte // original keys, copied into arena
	vals    []uint64
	i       int
	chunk   int
	done    bool
	lastEnc []byte // reused resume scratch
}

func (c *adaptiveCursor) fill() {
	c.arena, c.keys, c.vals, c.i = c.arena[:0], c.keys[:0], c.vals[:0], 0
	if c.done {
		return
	}
	if c.chunk == 0 {
		c.chunk = scanChunkInit
	}
	sh := c.a.shards[c.shard]
	n := 0
	last := c.lastEnc[:0]
	sh.mu.RLock()
	gr := &c.g.recs[c.shard]
	c.g.idx.scanShard(c.shard, c.from, c.hi, c.hiIncl, func(ek []byte, id uint64) bool {
		n++
		last = append(last[:0], ek...)
		r := &gr.recs[slotOf(id)]
		if !r.dead {
			start := len(c.arena)
			c.arena = append(c.arena, r.key...)
			c.keys = append(c.keys, c.arena[start:len(c.arena):len(c.arena)])
			c.vals = append(c.vals, r.val)
		}
		return n < c.chunk
	})
	// If the pinned generation no longer receives writes — a cutover (or
	// an abort of the generation this cursor pinned) completed mid-scan —
	// its trees and records are frozen, so deletes and overwrites land
	// only in the serving generation. Re-validate the chunk against the
	// shard's current read generation: drop keys it no longer holds and
	// take its values, so the merge never resurrects a deleted key or
	// emits a stale value. (Entries already buffered in a previous chunk
	// are a snapshot, the same per-chunk semantics as ShardedIndex.)
	live := false
	for _, g := range sh.write {
		if g == c.g {
			live = true
			break
		}
	}
	if !live {
		cur := sh.read
		w := 0
		for i, k := range c.keys {
			id, ok := cur.idx.getShard(c.shard, k)
			if !ok {
				continue
			}
			r := &cur.recs[c.shard].recs[slotOf(id)]
			if r.dead {
				continue
			}
			c.keys[w] = c.keys[i]
			c.vals[w] = r.val
			w++
		}
		c.keys, c.vals = c.keys[:w], c.vals[:w]
	}
	sh.mu.RUnlock()
	c.lastEnc = last
	if n < c.chunk {
		c.done = true
		return
	}
	c.from = append(append(c.from[:0], last...), 0x00)
	if c.chunk < scanChunk {
		c.chunk *= 2
	}
}

// peek returns the cursor's current original key, refilling (and skipping
// all-dead chunks) as needed; ok is false when the shard is exhausted.
func (c *adaptiveCursor) peek() ([]byte, bool) {
	for c.i >= len(c.keys) {
		if c.done {
			return nil, false
		}
		c.fill()
	}
	return c.keys[c.i], true
}

func (c *adaptiveCursor) pop() ([]byte, uint64) {
	k, v := c.keys[c.i], c.vals[c.i]
	c.i++
	return k, v
}

// adaptiveCursorLess orders cursors by current original key — valid
// across generations, unlike encoded keys — breaking ties by shard for
// determinism (ties cannot occur between live cursors: shards partition
// the original key space).
func adaptiveCursorLess(a, b *adaptiveCursor) bool {
	if c := bytes.Compare(a.keys[a.i], b.keys[b.i]); c != 0 {
		return c < 0
	}
	return a.shard < b.shard
}
