package hope

import (
	"errors"
	"fmt"
)

// Typed failure taxonomy for the adaptive rebuild machinery. Callers of
// Rebuild (and readers of AdaptiveStats.LastError) classify failures with
// errors.Is / errors.As instead of parsing message strings:
//
//   - ErrMigrationTimeout: the migration watchdog aborted a wedged rebuild
//     (no checkpoint progress within AdaptiveOptions.MigrationTimeout, or
//     the whole rebuild exceeded AdaptiveOptions.RebuildDeadline).
//   - *ErrRebuildPanic: a panic inside the rebuild/migration path was
//     recovered, converted to an error, and the abort-restore path ran.
//   - ErrDegraded: the circuit breaker is open — consecutive rebuild
//     failures reached Lifecycle.BreakerAfter and the index has fallen
//     back to frozen-dictionary serving. Reads and writes keep flowing on
//     the current generation; a successful Rebuild (explicit, or the
//     automatic half-open probe) closes the breaker.
//   - ErrClosed: Close was called. Every Store refuses mutations (Put,
//     Delete, Bulk) with it afterwards, the adaptive index additionally
//     refuses rebuilds, and a Persistent refuses Snapshot. Reads and scans
//     keep serving the closed store's final contents.
var (
	ErrMigrationTimeout = errors.New("hope: migration watchdog timed out")
	ErrDegraded         = errors.New("hope: adaptive index degraded, serving frozen dictionary")
	ErrClosed           = errors.New("hope: store is closed")
)

// ErrRebuildPanic reports a panic recovered inside a rebuild or migration:
// the panicking goroutine's work was rolled back by the abort-restore path
// and the old generation kept serving. Stage and Shard name the last
// checkpoint passed before the panic; Stack is captured at recovery, while
// the panicking frames are still live.
type ErrRebuildPanic struct {
	Stage string
	Shard int
	Value any
	Stack []byte
}

func (e *ErrRebuildPanic) Error() string {
	return fmt.Sprintf("hope: rebuild panic after checkpoint %s/%d: %v", e.Stage, e.Shard, e.Value)
}
