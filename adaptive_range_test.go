package hope

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lifecycle"
)

// rangeManualOpts is manualOpts with range-partitioned generations.
func rangeManualOpts(scheme core.Scheme, enc *core.Encoder) AdaptiveOptions {
	o := manualOpts(scheme, enc)
	o.Partition = RangePartitioned
	return o
}

// TestAdaptiveRangePartitionLifecycle walks a range-partitioned
// AdaptiveIndex through the full arc: generation 0 serves unseeded (every
// key in one tree shard), the first rebuild re-samples split points from
// the reservoir and spreads the data — re-balancing via migration — and
// every station along the way is byte-identical to the model reference.
func TestAdaptiveRangePartitionLifecycle(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	for _, backend := range []Backend{ART, BTree} {
		a, err := NewAdaptiveIndex(backend, rangeManualOpts(core.DoubleChar, encs[core.DoubleChar].Clone()))
		if err != nil {
			t.Fatal(err)
		}
		if a.Stats().Partition != RangePartitioned {
			t.Fatal("stats do not report the partition mode")
		}
		model := seedAdaptive(t, a, keys)
		label := fmt.Sprintf("%s/range gen0", backend)
		// Unseeded generation 0: everything in tree shard 0.
		if lens := a.ShardLens(); lens[0] != len(model) {
			t.Fatalf("%s: unseeded gen0 shard lens %v, want all %d in shard 0", label, lens, len(model))
		}
		checkDifferential(t, label, a, model)

		if err := a.Rebuild(); err != nil {
			t.Fatalf("%s: rebuild: %v", label, err)
		}
		label = fmt.Sprintf("%s/range gen1", backend)
		checkDifferential(t, label, a, model)
		lens := a.ShardLens()
		nonEmpty, maxLen := 0, 0
		for _, n := range lens {
			if n > 0 {
				nonEmpty++
			}
			if n > maxLen {
				maxLen = n
			}
		}
		// Re-sampled quantile splits must actually spread the corpus: a
		// majority of shards populated and no shard holding half the keys.
		if nonEmpty < len(lens)/2 || maxLen > len(model)/2 {
			t.Fatalf("%s: rebuild did not re-balance: shard lens %v", label, lens)
		}

		// Churn after the re-balance, then a second rebuild (range→range
		// migration with different split points both sides).
		for i, k := range keys {
			switch i % 4 {
			case 0:
				a.Put(k, uint64(i)+5000)
				model[string(k)] = uint64(i) + 5000
			case 1:
				a.Delete(k)
				delete(model, string(k))
			}
		}
		checkDifferential(t, label+" after churn", a, model)
		if err := a.Rebuild(); err != nil {
			t.Fatalf("%s: second rebuild: %v", label, err)
		}
		checkDifferential(t, fmt.Sprintf("%s/range gen2", backend), a, model)
	}
}

// TestAdaptiveRangeMidMigrationDifferential pauses a range-mode migration
// half-flipped — generation 0's single unseeded shard merging against
// generation 1's freshly split partition — and requires byte-identical
// results, through churn, until after the cutover. This is the stripe
// filter's acceptance test: every key is served by exactly one
// generation's cursors while the two partitions disagree about where it
// lives.
func TestAdaptiveRangeMidMigrationDifferential(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	for _, scheme := range []core.Scheme{core.SingleChar, core.DoubleChar} {
		a, err := NewAdaptiveIndex(BTree, rangeManualOpts(scheme, encs[scheme].Clone()))
		if err != nil {
			t.Fatal(err)
		}
		model := seedAdaptive(t, a, keys)

		pause := make(chan struct{})
		resume := make(chan struct{})
		half := a.NumShards() / 2
		a.injector = fault.Func(func(stage string, shard int) error {
			if stage == "shard-flipped" && shard == half {
				close(pause)
				<-resume
			}
			return nil
		})
		done := make(chan error, 1)
		go func() { done <- a.Rebuild() }()
		<-pause

		label := fmt.Sprintf("BTree/%v range mid-migration", scheme)
		if a.State() != StateMigrating {
			t.Fatalf("%s: state %v", label, a.State())
		}
		checkDifferential(t, label, a, model)

		for i, k := range keys {
			switch i % 5 {
			case 0:
				a.Put(k, uint64(i)+7000)
				model[string(k)] = uint64(i) + 7000
			case 1:
				a.Delete(k)
				delete(model, string(k))
			}
		}
		for i := 0; i < 30; i++ {
			k := []byte(fmt.Sprintf("mid-mig-range-%v-%03d", scheme, i))
			a.Put(k, uint64(8000+i))
			model[string(k)] = uint64(8000 + i)
		}
		checkDifferential(t, label+" after churn", a, model)

		close(resume)
		if err := <-done; err != nil {
			t.Fatalf("%s: rebuild: %v", label, err)
		}
		checkDifferential(t, label+" post-cutover", a, model)
	}
}

// TestAdaptiveRangeSuRFStopTheWorld: the bulk-only backend under range
// partitioning — the stop-the-world rebuild re-partitions too.
func TestAdaptiveRangeSuRFStopTheWorld(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	a, err := NewAdaptiveIndex(SuRF, rangeManualOpts(core.DoubleChar, encs[core.DoubleChar].Clone()))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}
	model := map[string]uint64{}
	for i, k := range keys {
		model[string(k)] = uint64(i)
	}
	// The bulk corpus seeds generation 0's split points.
	lens := a.ShardLens()
	maxLen := 0
	for _, n := range lens {
		if n > maxLen {
			maxLen = n
		}
	}
	if maxLen == len(model) && len(lens) > 1 {
		t.Fatalf("bulk did not seed gen0 splits: shard lens %v", lens)
	}
	checkDifferential(t, "SuRF/range gen0", a, model)
	if err := a.Rebuild(); err != nil {
		t.Fatal(err)
	}
	checkDifferential(t, "SuRF/range gen1", a, model)
}

// TestAdaptiveRangeRebuildRaceStress is the -race leg for the
// range-partitioned lifecycle: concurrent writers and scanning readers
// across repeated rebuilds, each of which re-samples split points and
// re-partitions the trees under traffic.
func TestAdaptiveRangeRebuildRaceStress(t *testing.T) {
	const (
		writers  = 4
		readers  = 2
		opsPerG  = 1000
		keySpace = 500
		rebuilds = 3
	)
	a, err := NewAdaptiveIndex(ART, AdaptiveOptions{
		Scheme: core.DoubleChar, Shards: 8, MigrationBatch: 32, Manual: true,
		Partition: RangePartitioned,
		Lifecycle: lifecycle.Config{ReservoirSize: 2048, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < writers; g++ {
		for i := 0; i < 50; i++ {
			a.Put([]byte(fmt.Sprintf("stress-%d-%04d", g, i)), uint64(i))
		}
	}
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		writeWG.Add(1)
		go func(g int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPerG; i++ {
				k := []byte(fmt.Sprintf("stress-%d-%04d", g, rng.Intn(keySpace)))
				switch rng.Intn(10) {
				case 0:
					a.Delete(k)
				default:
					a.Put(k, uint64(i))
				}
			}
		}(g)
	}
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a.Get([]byte(fmt.Sprintf("stress-%d-%04d", rng.Intn(writers), rng.Intn(keySpace))))
				prev := ""
				n := 0
				a.Scan([]byte("stress-"), nil, func(key []byte, _ uint64) bool {
					s := string(key)
					if prev != "" && s <= prev {
						t.Errorf("scan order violated: %q after %q", s, prev)
						return false
					}
					prev = s
					n++
					return n < 50
				})
			}
		}(r)
	}
	for i := 0; i < rebuilds; i++ {
		if err := a.Rebuild(); err != nil {
			t.Fatalf("rebuild %d: %v", i, err)
		}
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()

	if a.Generation() != rebuilds {
		t.Fatalf("generation %d want %d", a.Generation(), rebuilds)
	}
	n := 0
	a.Scan(nil, nil, func(k []byte, v uint64) bool {
		n++
		if got, ok := a.Get(append([]byte(nil), k...)); !ok || got != v {
			t.Fatalf("scan/get mismatch for %q: %d,%v vs %d", k, got, ok, v)
		}
		return true
	})
	if n != a.Len() {
		t.Fatalf("full scan saw %d keys, Len %d", n, a.Len())
	}
}

// TestAdaptivePutOverwriteZeroAlloc pins the folded Put path's allocation
// profile: an overwrite resolves through upsertShard's pooled scratch
// encode and updates the record in place — no owned encode, no record
// append, no tracker allocation in steady state (the striped reservoir is
// full and replacements recycle fixed-size buffers).
func TestAdaptivePutOverwriteZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under -race; zero-alloc steady state not reachable")
	}
	a, err := NewAdaptiveIndex(ART, AdaptiveOptions{
		Scheme: core.DoubleChar, Shards: 8, Manual: true,
		Lifecycle: lifecycle.Config{ReservoirSize: 256, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([][]byte, 512)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("com.user@%06d", i))
		if err := a.Put(keys[i], uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Saturate the reservoir stripes so Observe replacements recycle.
	for r := 0; r < 4; r++ {
		for i, k := range keys {
			if err := a.Put(k, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		a.Put(keys[i%len(keys)], uint64(i))
		i++
	})
	if allocs >= 0.5 {
		t.Fatalf("overwrite Put allocates %.2f/op in steady state, want 0", allocs)
	}
}
