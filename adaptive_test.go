package hope

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lifecycle"
)

// ---------------------------------------------------------------------------
// Helpers: a model-backed differential harness. The reference for every
// comparison is an uncompressed Index rebuilt from the model — its scan
// callbacks hand out original keys, exactly AdaptiveIndex's contract, so
// result streams must be byte-identical.
// ---------------------------------------------------------------------------

type kv struct {
	k string
	v uint64
}

func referenceIndex(t *testing.T, backend Backend, model map[string]uint64) *Index {
	t.Helper()
	ref, err := NewIndex(backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	if backend == SuRF {
		keys := make([][]byte, 0, len(model))
		vals := make([]uint64, 0, len(model))
		for k, v := range model {
			keys = append(keys, []byte(k))
			vals = append(vals, v)
		}
		if err := ref.Bulk(keys, vals); err != nil {
			t.Fatal(err)
		}
		return ref
	}
	for k, v := range model {
		if err := ref.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

func collectAdaptiveScan(a *AdaptiveIndex, lo, hi []byte) []kv {
	var out []kv
	a.Scan(lo, hi, func(k []byte, v uint64) bool {
		out = append(out, kv{string(k), v})
		return true
	})
	return out
}

func collectIndexScan(x *Index, lo, hi []byte) []kv {
	var out []kv
	x.Scan(lo, hi, func(k []byte, v uint64) bool {
		out = append(out, kv{string(k), v})
		return true
	})
	return out
}

func equalKV(a, b []kv) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkDifferential compares the adaptive index against an uncompressed
// reference rebuilt from the model: every Get (present and absent), every
// Scan over the bound sweep, and every ScanPrefix.
func checkDifferential(t *testing.T, label string, a *AdaptiveIndex, model map[string]uint64) {
	t.Helper()
	ref := referenceIndex(t, BTree, model)
	if a.Len() != len(model) {
		t.Fatalf("%s: Len %d want %d", label, a.Len(), len(model))
	}
	probes := make([][]byte, 0, len(model)+4)
	for k := range model {
		probes = append(probes, []byte(k))
	}
	probes = append(probes, []byte("absent"), []byte("zzzzzz"), []byte{0x03, 0x80}, []byte("com.gmail@nobody"))
	for _, k := range probes {
		wantV, wantOK := model[string(k)]
		gotV, gotOK := a.Get(k)
		if gotOK != wantOK || (wantOK && gotV != wantV) {
			t.Fatalf("%s: Get(%q) = %d,%v want %d,%v", label, k, gotV, gotOK, wantV, wantOK)
		}
	}
	bounds := scanBounds()
	pairs := [][2][]byte{{nil, nil}}
	for _, b := range bounds {
		pairs = append(pairs, [2][]byte{b, nil}, [2][]byte{nil, b})
	}
	for _, lo := range bounds {
		for _, hi := range bounds {
			pairs = append(pairs, [2][]byte{lo, hi})
		}
	}
	for _, p := range pairs {
		want := collectIndexScan(ref, p[0], p[1])
		got := collectAdaptiveScan(a, p[0], p[1])
		if !equalKV(want, got) {
			t.Fatalf("%s: Scan(%q, %q): ref %v != adaptive %v", label, p[0], p[1], want, got)
		}
	}
	prefixes := [][]byte{
		{}, []byte("a"), []byte("ap"), []byte("app"), []byte("apple"),
		[]byte("com."), []byte("com.gmail@"), []byte("com.gmail@bob"),
		{0x00}, {0xff}, {0xff, 0xff}, []byte("a\xff"), []byte("nosuchprefix"), []byte("z"),
	}
	for _, p := range prefixes {
		var want, got []kv
		ref.ScanPrefix(p, func(k []byte, v uint64) bool {
			want = append(want, kv{string(k), v})
			return true
		})
		a.ScanPrefix(p, func(k []byte, v uint64) bool {
			got = append(got, kv{string(k), v})
			return true
		})
		if !equalKV(want, got) {
			t.Fatalf("%s: ScanPrefix(%q): ref %v != adaptive %v", label, p, want, got)
		}
	}
}

// seedAdaptive puts the corpus with val i for key i and returns the model.
func seedAdaptive(t *testing.T, a *AdaptiveIndex, keys [][]byte) map[string]uint64 {
	t.Helper()
	model := map[string]uint64{}
	for i, k := range keys {
		if err := a.Put(k, uint64(i)); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
		model[string(k)] = uint64(i)
	}
	return model
}

// manualOpts returns options that never auto-rebuild, with a reservoir
// large enough to hold the whole corpus so rebuilt dictionaries see the
// same keys the original encoders were built from.
func manualOpts(scheme core.Scheme, enc *core.Encoder) AdaptiveOptions {
	opt := core.Options{DictLimit: 1 << 10, MaxPatternLen: 16}
	if scheme == core.DoubleChar {
		opt = core.Options{}
	}
	return AdaptiveOptions{
		Scheme:         scheme,
		Build:          opt,
		Encoder:        enc,
		Shards:         8,
		MigrationBatch: 16, // small batches: many checkpoints per shard
		Manual:         true,
		Lifecycle:      lifecycle.Config{ReservoirSize: 4096, Seed: 7},
	}
}

// ---------------------------------------------------------------------------
// Lifecycle basics.
// ---------------------------------------------------------------------------

// From empty: Sampling serves uncompressed and correct; an explicit
// rebuild moves to generation 1 and compresses; everything stays correct.
func TestAdaptiveSamplingToSteady(t *testing.T) {
	keys := adversarialCorpus()
	a, err := NewAdaptiveIndex(BTree, AdaptiveOptions{
		Scheme: core.DoubleChar, Shards: 4, Manual: true,
		Lifecycle: lifecycle.Config{ReservoirSize: 4096, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.State() != StateSampling || a.Generation() != 0 || a.Encoder() != nil {
		t.Fatalf("fresh index not Sampling/gen0: %v gen %d", a.State(), a.Generation())
	}
	model := seedAdaptive(t, a, keys)
	checkDifferential(t, "sampling", a, model)

	if err := a.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if a.State() != StateSteady || a.Generation() != 1 || a.Encoder() == nil {
		t.Fatalf("after rebuild: %v gen %d", a.State(), a.Generation())
	}
	if s := a.Stats(); s.Rebuilds != 1 || s.BuildCPR <= 1 {
		t.Fatalf("stats after rebuild: %+v", s)
	}
	checkDifferential(t, "steady gen1", a, model)

	// Post-rebuild traffic: overwrites, deletes, fresh inserts.
	for i, k := range keys {
		switch i % 3 {
		case 0:
			a.Put(k, uint64(i)+5000)
			model[string(k)] = uint64(i) + 5000
		case 1:
			a.Delete(k)
			delete(model, string(k))
		}
	}
	for i := 0; i < 40; i++ {
		k := []byte(fmt.Sprintf("post-rebuild-%03d", i))
		a.Put(k, uint64(9000+i))
		model[string(k)] = uint64(9000 + i)
	}
	checkDifferential(t, "steady gen1 after churn", a, model)
}

// Starting from a pre-built encoder: Steady at once, still rebuildable.
func TestAdaptivePrebuiltEncoderStart(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	a, err := NewAdaptiveIndex(ART, manualOpts(core.ThreeGrams, encs[core.ThreeGrams].Clone()))
	if err != nil {
		t.Fatal(err)
	}
	if a.State() != StateSteady || a.Encoder() == nil {
		t.Fatalf("prebuilt start: %v", a.State())
	}
	model := seedAdaptive(t, a, keys)
	checkDifferential(t, "prebuilt", a, model)
	if err := a.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if a.Generation() != 1 {
		t.Fatalf("generation %d", a.Generation())
	}
	checkDifferential(t, "prebuilt rebuilt", a, model)
}

func TestAdaptiveBulkAndLen(t *testing.T) {
	keys := adversarialCorpus()
	a, err := NewAdaptiveIndex(BTree, AdaptiveOptions{Scheme: core.SingleChar, Shards: 4, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Bulk(keys, make([]uint64, 1)); err == nil {
		t.Fatal("mismatched vals length accepted")
	}
	if err := a.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}
	model := map[string]uint64{}
	for i, k := range keys {
		model[string(k)] = uint64(i)
	}
	checkDifferential(t, "bulk", a, model)
	// Non-empty bulk degrades to the Put loop with overwrite semantics.
	extra := [][]byte{[]byte("bulk-x"), keys[3], []byte("bulk-y")}
	if err := a.Bulk(extra, []uint64{100, 101, 102}); err != nil {
		t.Fatal(err)
	}
	model["bulk-x"], model[string(keys[3])], model["bulk-y"] = 100, 101, 102
	checkDifferential(t, "bulk-overwrite", a, model)
}

// ---------------------------------------------------------------------------
// Mid-migration differential: the acceptance test. Migration pauses at a
// checkpoint with half the shards flipped to the new generation; Gets,
// Scans and prefix scans must be byte-identical to a plain rebuilt index,
// including for writes issued *during* the pause (dual-write protocol).
// ---------------------------------------------------------------------------

func TestAdaptiveMidMigrationDifferential(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	for _, backend := range Backends {
		if backend == SuRF {
			continue // bulk-only: covered by TestAdaptiveSuRFStopTheWorld
		}
		for _, scheme := range testSchemes {
			a, err := NewAdaptiveIndex(backend, manualOpts(scheme, encs[scheme].Clone()))
			if err != nil {
				t.Fatal(err)
			}
			model := seedAdaptive(t, a, keys)

			pause := make(chan struct{})
			resume := make(chan struct{})
			half := a.NumShards() / 2
			a.injector = fault.Func(func(stage string, shard int) error {
				if stage == "shard-flipped" && shard == half {
					close(pause)
					<-resume
				}
				return nil
			})
			done := make(chan error, 1)
			go func() { done <- a.Rebuild() }()
			<-pause

			label := fmt.Sprintf("%s/%v mid-migration", backend, scheme)
			if a.State() != StateMigrating {
				t.Fatalf("%s: state %v", label, a.State())
			}
			if got := a.Stats().MigratedShards; got != half+1 {
				t.Fatalf("%s: %d shards flipped, want %d", label, got, half+1)
			}
			checkDifferential(t, label, a, model)

			// Mutations while paused must land in both generations.
			for i, k := range keys {
				switch i % 5 {
				case 0:
					a.Put(k, uint64(i)+7000)
					model[string(k)] = uint64(i) + 7000
				case 1:
					a.Delete(k)
					delete(model, string(k))
				}
			}
			for i := 0; i < 30; i++ {
				k := []byte(fmt.Sprintf("mid-mig-%s-%03d", scheme, i))
				a.Put(k, uint64(8000+i))
				model[string(k)] = uint64(8000 + i)
			}
			checkDifferential(t, label+" after churn", a, model)

			close(resume)
			if err := <-done; err != nil {
				t.Fatalf("%s: rebuild: %v", label, err)
			}
			if a.Generation() != 1 || a.State() != StateSteady {
				t.Fatalf("%s: post-rebuild gen %d state %v", label, a.Generation(), a.State())
			}
			checkDifferential(t, label+" post-cutover", a, model)
		}
	}
}

// SuRF cannot dual-write; its rebuild is stop-the-world and must still be
// exact before and after.
func TestAdaptiveSuRFStopTheWorld(t *testing.T) {
	keys := adversarialCorpus()
	a, err := NewAdaptiveIndex(SuRF, AdaptiveOptions{
		Scheme: core.DoubleChar, Shards: 4, Manual: true,
		Lifecycle: lifecycle.Config{ReservoirSize: 4096, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put([]byte("k"), 1); err != ErrImmutableBackend {
		t.Fatalf("SuRF Put: %v", err)
	}
	if _, err := a.Delete([]byte("k")); err != ErrImmutableBackend {
		t.Fatalf("SuRF Delete: %v", err)
	}
	if err := a.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}
	model := map[string]uint64{}
	for i, k := range keys {
		model[string(k)] = uint64(i)
	}
	checkDifferential(t, "surf gen0", a, model)
	if err := a.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if a.Generation() != 1 {
		t.Fatalf("generation %d", a.Generation())
	}
	checkDifferential(t, "surf gen1", a, model)
}

// ---------------------------------------------------------------------------
// Abort: a rebuild that dies at any checkpoint must leave the old
// generation serving, intact, and a later rebuild must succeed.
// ---------------------------------------------------------------------------

func TestAdaptiveAbortRestoresOldGeneration(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	stages := []struct {
		stage string
		shard int
	}{
		{"build-start", -1},
		{"batch", 0},
		{"batch", 3},
		{"mid-batch", -1}, // first record copied, stripe lock held
		{"mid-batch", 5},  // deep into the copy of a later stripe
		{"shard-flipped", 2},
		{"shard-flipped", 7},
		{"cutover", -1},
	}
	for _, st := range stages {
		a, err := NewAdaptiveIndex(ART, manualOpts(core.DoubleChar, encs[core.DoubleChar].Clone()))
		if err != nil {
			t.Fatal(err)
		}
		model := seedAdaptive(t, a, keys)
		encBefore := a.Encoder()
		memBefore := a.MemoryUsage()
		boom := fmt.Errorf("injected at %s/%d", st.stage, st.shard)
		a.injector = fault.Func(func(stage string, shard int) error {
			if stage == st.stage && (st.shard < 0 || shard == st.shard) {
				return boom
			}
			return nil
		})
		if err := a.Rebuild(); err != boom {
			t.Fatalf("%s/%d: Rebuild returned %v, want injected error", st.stage, st.shard, err)
		}
		if a.State() != StateSteady || a.Generation() != 0 {
			t.Fatalf("%s/%d: state %v gen %d after abort", st.stage, st.shard, a.State(), a.Generation())
		}
		if a.Encoder() != encBefore {
			t.Fatalf("%s/%d: serving encoder changed across abort", st.stage, st.shard)
		}
		if s := a.Stats(); s.Aborts != 1 || s.Rebuilds != 0 || s.MigratedShards != 0 {
			t.Fatalf("%s/%d: stats %+v", st.stage, st.shard, s)
		}
		// The aborted next generation must be fully dropped: no trees, no
		// record copies, nothing still charged to the modeled footprint.
		if got := a.MemoryUsage(); got != memBefore {
			t.Fatalf("%s/%d: MemoryUsage %d after abort, want %d (next-generation leak)",
				st.stage, st.shard, got, memBefore)
		}
		checkDifferential(t, fmt.Sprintf("aborted at %s/%d", st.stage, st.shard), a, model)

		// Writes after the abort, then a clean rebuild.
		for i := 0; i < 20; i++ {
			k := []byte(fmt.Sprintf("post-abort-%02d", i))
			a.Put(k, uint64(i))
			model[string(k)] = uint64(i)
		}
		a.injector = nil
		if err := a.Rebuild(); err != nil {
			t.Fatalf("%s/%d: clean rebuild after abort: %v", st.stage, st.shard, err)
		}
		if a.Generation() != 1 {
			t.Fatalf("%s/%d: generation %d after clean rebuild", st.stage, st.shard, a.Generation())
		}
		checkDifferential(t, fmt.Sprintf("recovered from %s/%d", st.stage, st.shard), a, model)
	}
}

// An abort before the first dictionary returns to Sampling, and an
// empty-reservoir rebuild fails cleanly.
func TestAdaptiveAbortBeforeFirstBuild(t *testing.T) {
	a, err := NewAdaptiveIndex(BTree, AdaptiveOptions{Scheme: core.SingleChar, Shards: 2, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(); err == nil {
		t.Fatal("rebuild with empty reservoir succeeded")
	}
	if a.State() != StateSampling || a.Generation() != 0 {
		t.Fatalf("state %v gen %d", a.State(), a.Generation())
	}
	a.Put([]byte("now-there-is-data"), 1)
	if err := a.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if a.Generation() != 1 {
		t.Fatalf("generation %d", a.Generation())
	}
}

// ---------------------------------------------------------------------------
// Concurrency: rebuilds racing live traffic under the race detector.
// ---------------------------------------------------------------------------

func TestAdaptiveRebuildRaceStress(t *testing.T) {
	const (
		writers   = 4
		readers   = 2
		opsPerG   = 1500
		keySpace  = 600
		rebuilds  = 3
		keyFormat = "stress-%d-%04d"
	)
	a, err := NewAdaptiveIndex(ART, AdaptiveOptions{
		Scheme: core.DoubleChar, Shards: 8, MigrationBatch: 32, Manual: true,
		Lifecycle: lifecycle.Config{ReservoirSize: 2048, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up so the first rebuild has a reservoir.
	for g := 0; g < writers; g++ {
		for i := 0; i < 50; i++ {
			a.Put([]byte(fmt.Sprintf(keyFormat, g, i)), uint64(i))
		}
	}
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		writeWG.Add(1)
		go func(g int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPerG; i++ {
				k := []byte(fmt.Sprintf(keyFormat, g, rng.Intn(keySpace)))
				switch rng.Intn(10) {
				case 0:
					a.Delete(k)
				default:
					a.Put(k, uint64(i))
				}
			}
		}(g)
	}
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf(keyFormat, rng.Intn(writers), rng.Intn(keySpace)))
				a.Get(k)
				prev := ""
				n := 0
				a.Scan([]byte("stress-"), nil, func(key []byte, _ uint64) bool {
					s := string(key)
					if prev != "" && s <= prev {
						t.Errorf("scan order violated: %q after %q", s, prev)
						return false
					}
					prev = s
					n++
					return n < 50
				})
				a.ScanPrefix([]byte(fmt.Sprintf("stress-%d-", rng.Intn(writers))), func([]byte, uint64) bool {
					return true
				})
			}
		}(r)
	}
	for i := 0; i < rebuilds; i++ {
		if err := a.Rebuild(); err != nil {
			t.Fatalf("rebuild %d: %v", i, err)
		}
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()

	if a.Generation() != rebuilds {
		t.Fatalf("generation %d want %d", a.Generation(), rebuilds)
	}
	// Settled state must be internally consistent: every key a scan
	// reports must Get to the same value.
	n := 0
	a.Scan(nil, nil, func(k []byte, v uint64) bool {
		n++
		if got, ok := a.Get(append([]byte(nil), k...)); !ok || got != v {
			t.Fatalf("scan/get mismatch for %q: %d,%v vs %d", k, got, ok, v)
		}
		return true
	})
	if n != a.Len() {
		t.Fatalf("full scan saw %d keys, Len %d", n, a.Len())
	}
}

// ---------------------------------------------------------------------------
// Drift: degraded traffic triggers an automatic background rebuild that
// restores the compression rate.
// ---------------------------------------------------------------------------

func TestAdaptiveAutoDriftRebuild(t *testing.T) {
	a, err := NewAdaptiveIndex(BTree, AdaptiveOptions{
		Scheme: core.ThreeGrams,
		Build:  core.Options{DictLimit: 1 << 10},
		Shards: 4,
		Lifecycle: lifecycle.Config{
			ReservoirSize: 1024, Seed: 11, BuildAfter: 400,
			WindowSize: 256, CheckEvery: 64, Cooldown: 512, DriftThreshold: 0.15,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	baseKey := func(i int) []byte {
		return []byte(fmt.Sprintf("com.gmail@user.%04d.mailbox", i%800))
	}
	rng := rand.New(rand.NewSource(13))
	shiftKey := func() []byte {
		k := make([]byte, 24)
		for j := range k {
			k[j] = byte(0x80 + rng.Intn(0x70)) // byte range the base never uses
		}
		return k
	}
	// Phase 1: base distribution until the first build fires. The trigger
	// is asynchronous, so keep traffic flowing until the generation flips
	// (bounded by a deadline, not an iteration count).
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; a.Generation() == 0; i++ {
		a.Put(baseKey(i), uint64(i))
		if i%2000 == 1999 {
			a.Quiesce()
			if time.Now().After(deadline) {
				t.Fatalf("first build never fired: gen %d state %v stats %+v",
					a.Generation(), a.State(), a.Stats())
			}
		}
	}
	a.Quiesce()
	// Keep the base flowing so the baseline window fills, then shift.
	for i := 0; i < 1000; i++ {
		a.Put(baseKey(i), uint64(i))
	}
	degraded := a.Stats().RecentCPR
	for i := 0; a.Generation() < 2; i++ {
		a.Put(shiftKey(), uint64(i))
		if i == 600 {
			degraded = a.Stats().RecentCPR // window now mostly shifted keys
		}
		if i%2000 == 1999 {
			a.Quiesce()
			if time.Now().After(deadline) {
				t.Fatalf("drift rebuild never fired: gen %d, stats %+v", a.Generation(), a.Stats())
			}
		}
	}
	a.Quiesce()
	// Post-rebuild, shifted traffic must compress better than it did on
	// the stale dictionary.
	for i := 0; i < 600; i++ {
		a.Put(shiftKey(), uint64(i))
	}
	if rec := a.Stats().RecentCPR; rec <= degraded {
		t.Fatalf("CPR did not recover: %.3f (degraded) -> %.3f (post-rebuild)", degraded, rec)
	}
}

// A scan that overlaps a full cutover must honor deletes and overwrites
// issued after the cutover: the cursors stay pinned to the dropped
// generation's trees (the resume tokens live in its encoded space), but
// every chunk filled after the cutover is re-validated against the new
// serving generation. The mutation happens inside the scan callback, so
// the interleaving is deterministic.
func TestAdaptiveScanSurvivesCutover(t *testing.T) {
	a, err := NewAdaptiveIndex(BTree, AdaptiveOptions{
		Scheme: core.DoubleChar, Shards: 8, MigrationBatch: 16, Manual: true,
		Lifecycle: lifecycle.Config{ReservoirSize: 4096, Seed: 21},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 200 low keys ("a-...") and 200 high keys ("z-..."): every shard's
	// prefetched first chunk (scanChunkInit entries) is all low keys, so
	// mutating only high keys after the first emission is deterministic.
	var lows, highs [][]byte
	for i := 0; i < 200; i++ {
		lows = append(lows, []byte(fmt.Sprintf("a-%03d", i)))
		highs = append(highs, []byte(fmt.Sprintf("z-%03d", i)))
	}
	model := map[string]uint64{}
	for i, k := range append(append([][]byte{}, lows...), highs...) {
		if err := a.Put(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
		model[string(k)] = uint64(i)
	}
	// Precondition for determinism: each shard holds at least
	// scanChunkInit low keys (fixed hash, fixed key set — stable).
	perShard := map[int]int{}
	for _, k := range lows {
		perShard[a.shardIdx(k)]++
	}
	for s := 0; s < a.NumShards(); s++ {
		if perShard[s] < scanChunkInit {
			t.Fatalf("shard %d holds only %d low keys; test precondition broken", s, perShard[s])
		}
	}

	var got []kv
	mutated := false
	n := a.Scan(nil, nil, func(k []byte, v uint64) bool {
		if !mutated {
			mutated = true
			if err := a.Rebuild(); err != nil { // full cutover mid-scan
				t.Fatalf("rebuild inside scan: %v", err)
			}
			for i, hk := range highs {
				if i%2 == 0 {
					if _, err := a.Delete(hk); err != nil {
						t.Fatal(err)
					}
					delete(model, string(hk))
				} else {
					if err := a.Put(hk, uint64(i)+50000); err != nil {
						t.Fatal(err)
					}
					model[string(hk)] = uint64(i) + 50000
				}
			}
		}
		got = append(got, kv{string(k), v})
		return true
	})
	want := make([]kv, 0, len(model))
	for _, k := range lows {
		want = append(want, kv{string(k), model[string(k)]})
	}
	for i, hk := range highs {
		if i%2 == 1 {
			want = append(want, kv{string(hk), model[string(hk)]})
		}
	}
	if !equalKV(want, got) {
		t.Fatalf("scan across cutover: want %d rows, got %d; first divergence: %v",
			len(want), len(got), firstDiff(want, got))
	}
	if n != len(want) {
		t.Fatalf("Scan reported %d visits, want %d", n, len(want))
	}
}

func firstDiff(a, b []kv) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("index %d: want %v got %v", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}
