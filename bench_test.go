// Benchmarks regenerating every table and figure of the HOPE paper's
// evaluation, one Benchmark function per artifact (see DESIGN.md for the
// experiment index). Figure runners execute once per configuration and
// report their series through b.ReportMetric; raw encode throughput is
// additionally measured with conventional b.N loops.
//
// These run at CI scale; `go run ./cmd/hopebench -fig <n>` reproduces the
// same experiments at paper-style scale with full dictionary sizes.
package hope_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	hope "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ycsb"
)

// memo caches experiment results so timer calibration does not re-run
// multi-second experiment bodies.
var memo sync.Map

func once[T any](b *testing.B, key string, f func() (T, error)) T {
	b.Helper()
	if v, ok := memo.Load(key); ok {
		if err, bad := v.(error); bad {
			b.Fatal(err)
		}
		return v.(T)
	}
	v, err := f()
	if err != nil {
		memo.Store(key, err)
		b.Fatal(err)
	}
	memo.Store(key, v)
	return v
}

func spin(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
}

// tag sanitizes a label for use in a benchmark metric unit (no spaces).
func tag(s string) string { return strings.ReplaceAll(s, " ", "") }

func benchCfg(ds datagen.Kind) bench.Config {
	cfg := bench.QuickConfig(ds)
	cfg.NumKeys = 5000
	cfg.NumOps = 5000
	return cfg
}

// BenchmarkEncode measures raw per-key encode latency for every scheme on
// email keys — the substrate of Figure 8's second row.
func BenchmarkEncode(b *testing.B) {
	keys := datagen.Generate(datagen.Email, 20000, 1)
	samples := hope.SampleKeys(keys, 0.01, 42)
	for _, scheme := range hope.Schemes {
		b.Run(scheme.String(), func(b *testing.B) {
			enc := once(b, "enc/"+scheme.String(), func() (*hope.Encoder, error) {
				return hope.Build(scheme, samples, hope.Options{DictLimit: 1 << 12})
			})
			chars := 0
			var buf []byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[i%len(keys)]
				out, _ := enc.EncodeBits(buf, k)
				buf = out[:0]
				chars += len(k)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(chars), "ns/char")
		})
	}
}

// BenchmarkEncodeAll measures the public parallel bulk-encode path over a
// sorted email load — the tree-loading fast path. Throughput (MB/s of
// source keys) is the headline metric; compare against BenchmarkEncode
// for the per-key serial latency.
func BenchmarkEncodeAll(b *testing.B) {
	keys := datagen.Generate(datagen.Email, 20000, 1)
	samples := hope.SampleKeys(keys, 0.01, 42)
	total := 0
	for _, k := range keys {
		total += len(k)
	}
	for _, scheme := range hope.Schemes {
		b.Run(scheme.String(), func(b *testing.B) {
			enc := once(b, "enc/"+scheme.String(), func() (*hope.Encoder, error) {
				return hope.Build(scheme, samples, hope.Options{DictLimit: 1 << 12})
			})
			b.SetBytes(int64(total))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hope.EncodeAll(enc, keys)
			}
		})
	}
}

// BenchmarkFig8 reports the Figure 8 series: compression rate, encode
// latency and dictionary memory per scheme and dictionary size.
func BenchmarkFig8(b *testing.B) {
	for _, ds := range datagen.Kinds {
		b.Run(ds.String(), func(b *testing.B) {
			cfg := benchCfg(ds)
			rows := once(b, "fig8/"+ds.String(), func() ([]bench.Fig8Row, error) {
				return bench.RunFig8(cfg, bench.Fig8Sizes(true))
			})
			for _, r := range rows {
				mtag := fmt.Sprintf("%v@%d", r.Scheme, r.Entries)
				b.ReportMetric(r.CPR, "CPR:"+tag(mtag))
			}
			spin(b)
		})
	}
}

// BenchmarkFig9 reports the dictionary build-time breakdown.
func BenchmarkFig9(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	rows := once(b, "fig9", func() ([]bench.Fig9Row, error) { return bench.RunFig9(cfg) })
	for _, r := range rows {
		b.ReportMetric(r.Stats.Total().Seconds(), "s:"+tag(r.Label))
	}
	spin(b)
}

// BenchmarkFig10 reports the SuRF YCSB series (point/range latency,
// height, memory) for the paper's seven configurations.
func BenchmarkFig10(b *testing.B) {
	for _, ds := range datagen.Kinds {
		b.Run(ds.String(), func(b *testing.B) {
			cfg := benchCfg(ds)
			rows := once(b, "fig10/"+ds.String(), func() ([]bench.Fig10Row, error) {
				return bench.RunFig10(cfg)
			})
			for _, r := range rows {
				b.ReportMetric(r.PointNs, "ns/point:"+tag(r.Config))
				b.ReportMetric(r.TrieHeight, "height:"+tag(r.Config))
			}
			spin(b)
		})
	}
}

// BenchmarkFig11 reports SuRF false-positive rates, Base vs Real8.
func BenchmarkFig11(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	rows := once(b, "fig11", func() ([]bench.Fig11Row, error) { return bench.RunFig11(cfg) })
	for _, r := range rows {
		b.ReportMetric(r.FPRBase*100, "fpr%:"+tag(r.Config))
		b.ReportMetric(r.FPRReal8*100, "fpr8%:"+tag(r.Config))
	}
	spin(b)
}

// BenchmarkFig12 reports point latency and memory for the four key-value
// trees under the seven configurations.
func BenchmarkFig12(b *testing.B) {
	for _, ds := range datagen.Kinds {
		b.Run(ds.String(), func(b *testing.B) {
			cfg := benchCfg(ds)
			rows := once(b, "fig12/"+ds.String(), func() ([]bench.Fig12Row, error) {
				return bench.RunFig12(cfg, bench.IndexNames)
			})
			for _, r := range rows {
				b.ReportMetric(r.PointNs, tag(fmt.Sprintf("ns:%s/%s", r.Index, r.Config)))
			}
			spin(b)
		})
	}
}

// BenchmarkFig13 reports compression rate vs sample fraction.
func BenchmarkFig13(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	rows := once(b, "fig13", func() ([]bench.Fig13Row, error) {
		return bench.RunFig13(cfg, []float64{0.001, 0.01, 0.1, 1.0})
	})
	for _, r := range rows {
		b.ReportMetric(r.CPR, fmt.Sprintf("CPR:%v@%g", r.Scheme, r.Frac))
	}
	spin(b)
}

// BenchmarkFig14 reports batch-encoding latency at batch sizes 1, 2, 32.
func BenchmarkFig14(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	rows := once(b, "fig14", func() ([]bench.Fig14Row, error) {
		return bench.RunFig14(cfg, []int{1, 2, 32})
	})
	for _, r := range rows {
		b.ReportMetric(r.LatNsChar, fmt.Sprintf("ns/char:%v@%d", r.Scheme, r.BatchSize))
	}
	spin(b)
}

// BenchmarkFig15 reports compression under key-distribution changes.
func BenchmarkFig15(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	rows := once(b, "fig15", func() ([]bench.Fig15Row, error) { return bench.RunFig15(cfg) })
	for _, r := range rows {
		b.ReportMetric(r.CPR, fmt.Sprintf("CPR:%v/D%s-E%s", r.Scheme, r.Dict, r.Eval))
	}
	spin(b)
}

// BenchmarkFig16 reports range and insert latency for the four trees.
func BenchmarkFig16(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	rows := once(b, "fig16", func() ([]bench.Fig16Row, error) {
		return bench.RunFig16(cfg, bench.IndexNames)
	})
	for _, r := range rows {
		b.ReportMetric(r.RangeNs, tag(fmt.Sprintf("ns/range:%s/%s", r.Index, r.Config)))
		b.ReportMetric(r.InsertNs, tag(fmt.Sprintf("ns/insert:%s/%s", r.Index, r.Config)))
	}
	spin(b)
}

// BenchmarkFigTree reports the end-to-end hope.Index series: load, point
// and range-scan latency plus bytes/key for every backend × configuration.
func BenchmarkFigTree(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	rows := once(b, "figtree", func() ([]bench.TreeBenchRow, error) {
		return bench.RunFigTree(cfg, hope.Backends)
	})
	for _, r := range rows {
		b.ReportMetric(r.PointNs, tag(fmt.Sprintf("ns/point:%s/%s", r.Backend, r.Config)))
		b.ReportMetric(r.ScanNs, tag(fmt.Sprintf("ns/scan:%s/%s", r.Backend, r.Config)))
		b.ReportMetric(r.BytesPerKey, tag(fmt.Sprintf("B/key:%s/%s", r.Backend, r.Config)))
	}
	spin(b)
}

// BenchmarkYCSB reports the concurrent serving series: ShardedIndex
// throughput per YCSB workload × backend × configuration × goroutine
// count, at CI scale (`hopebench -fig ycsb` runs the full sweep).
func BenchmarkYCSB(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	threads := []int{1, 2, 4}
	rows := once(b, "ycsb", func() ([]bench.YCSBBenchRow, error) {
		return bench.RunFigYCSB(cfg, bench.YCSBBackends, ycsb.Kinds, threads)
	})
	for _, r := range rows {
		b.ReportMetric(r.OpsPerSec/1e6,
			tag(fmt.Sprintf("Mops:%s/%s/%s/t%d", r.Workload, r.Backend, r.Config, r.Threads)))
	}
	spin(b)
}

// BenchmarkShardedIndexGet measures the zero-alloc concurrent read path
// against the single-threaded Index.Get baseline (allocs/op must be 0 for
// both; the sharded path adds the hash, the pool round-trip and the read
// lock).
func BenchmarkShardedIndexGet(b *testing.B) {
	keys := datagen.Generate(datagen.Email, 20000, 1)
	samples := hope.SampleKeys(keys, 0.01, 42)
	enc := once(b, "enc/"+hope.SingleChar.String(), func() (*hope.Encoder, error) {
		return hope.Build(hope.SingleChar, samples, hope.Options{DictLimit: 1 << 12})
	})
	b.Run("Index", func(b *testing.B) {
		x, err := hope.NewIndex(hope.ART, enc.Clone())
		if err != nil {
			b.Fatal(err)
		}
		if err := x.Bulk(keys, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.Get(keys[i%len(keys)])
		}
	})
	b.Run("ShardedIndex", func(b *testing.B) {
		s, err := hope.NewShardedIndex(hope.ART, enc.Clone(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Bulk(keys, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Get(keys[i%len(keys)])
		}
	})
	b.Run("ShardedIndexParallel", func(b *testing.B) {
		s, err := hope.NewShardedIndex(hope.ART, enc.Clone(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Bulk(keys, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				s.Get(keys[i%len(keys)])
				i++
			}
		})
	})
}

// BenchmarkAblationWeighting reports the effect of symbol-length-weighted
// probabilities on VIVC compression.
func BenchmarkAblationWeighting(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	rows := once(b, "ablW", func() ([]bench.AblationWeightingRow, error) {
		return bench.RunAblationWeighting(cfg)
	})
	for _, r := range rows {
		b.ReportMetric(r.CPRWeighted, "CPRw:"+r.Scheme.String())
		b.ReportMetric(r.CPRUnweighted, "CPRu:"+r.Scheme.String())
	}
	spin(b)
}

// BenchmarkAblationDictStructure reports the Table 1 dictionary structures
// against plain binary search.
func BenchmarkAblationDictStructure(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	rows := once(b, "ablD", func() ([]bench.AblationDictRow, error) {
		return bench.RunAblationDictStructure(cfg)
	})
	for _, r := range rows {
		b.ReportMetric(r.SpecializedNs, "ns/spec:"+r.Scheme.String())
		b.ReportMetric(r.BinarySearchNs, "ns/bs:"+r.Scheme.String())
	}
	spin(b)
}

// BenchmarkAblationCoder reports Garsia-Wachs vs O(n²) Hu-Tucker code
// assignment cost at equal (optimal) compression.
func BenchmarkAblationCoder(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	rows := once(b, "ablC", func() ([]bench.AblationCoderRow, error) {
		return bench.RunAblationCoder(cfg)
	})
	for _, r := range rows {
		b.ReportMetric(r.GWAssignSec*1e3, "ms/GW:"+r.Scheme.String())
		b.ReportMetric(r.HTAssignSec*1e3, "ms/HT:"+r.Scheme.String())
	}
	spin(b)
}

var _ = core.Schemes // the façade aliases core's scheme type; keep the link explicit

// BenchmarkFigDrift reports the dictionary-drift adaptation series at CI
// scale: rolling CPR and recovery ratio for the adaptive index against
// the frozen-dictionary control (`hopebench -fig drift` runs full scale).
func BenchmarkFigDrift(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	cfg.NumKeys = 16000
	rows := once(b, "drift", func() ([]bench.DriftBenchRow, error) {
		return bench.RunFigDrift(cfg)
	})
	for _, r := range rows {
		if r.Window == -1 {
			b.ReportMetric(r.CPRRecent, tag(fmt.Sprintf("CPR:%s/final", r.Config)))
			if r.RecoveryRatio > 0 {
				b.ReportMetric(r.RecoveryRatio, tag(fmt.Sprintf("recovery:%s", r.Config)))
			}
		}
	}
	spin(b)
}

// BenchmarkFigScan reports the scan-partitioning series: YCSB-E
// throughput, hash vs range ShardedIndex, across shard counts, at CI
// scale (`hopebench -fig scan` runs the full sweep).
func BenchmarkFigScan(b *testing.B) {
	cfg := benchCfg(datagen.Email)
	rows := once(b, "scan", func() ([]bench.ScanBenchRow, error) {
		return bench.RunFigScan(cfg, bench.ScanBackends, []int{1, 4, 8})
	})
	for _, r := range rows {
		b.ReportMetric(r.OpsPerSec/1e6,
			tag(fmt.Sprintf("Mops:%s/%s/%s/s%d", r.Backend, r.Config, r.Partition, r.Shards)))
	}
	spin(b)
}

// BenchmarkShardedScan measures one short scan (50 results from a point
// lower bound) against hash- and range-partitioned indexes at 8 shards.
// The hash row pays ~shards cursors plus the merge heap per op; the range
// row is the single-shard fast path — a pooled cursor, no heap, and (for
// the uncompressed case benchmarked here) zero allocations, which
// TestSingleShardScanZeroAlloc pins as an invariant.
func BenchmarkShardedScan(b *testing.B) {
	keys := datagen.Generate(datagen.Email, 20000, 1)
	for _, mode := range []string{"hash", "range"} {
		b.Run(mode+"/8", func(b *testing.B) {
			var s *hope.ShardedIndex
			var err error
			if mode == "range" {
				s, err = hope.NewRangeShardedIndex(hope.BTree, nil, 8, keys)
			} else {
				s, err = hope.NewShardedIndex(hope.BTree, nil, 8)
			}
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Bulk(keys, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				s.Scan(keys[i%len(keys)], nil, func([]byte, uint64) bool {
					n++
					return n < 50
				})
			}
		})
	}
}

// BenchmarkAdaptivePut measures the adaptive write path under
// multi-goroutine pressure — the satellite target of the striped
// lifecycle tracker (no global accounting mutex) and the folded
// single-resolution upsert. The overwrite case is the steady-state hot
// path and must stay allocation-free.
func BenchmarkAdaptivePut(b *testing.B) {
	load := func(b *testing.B) (*hope.AdaptiveIndex, [][]byte) {
		b.Helper()
		keys := datagen.Generate(datagen.Email, 20000, 1)
		samples := hope.SampleKeys(keys, 0.01, 42)
		enc, err := hope.Build(hope.DoubleChar, samples, hope.Options{})
		if err != nil {
			b.Fatal(err)
		}
		a, err := hope.NewAdaptiveIndex(hope.ART, hope.AdaptiveOptions{
			Scheme: hope.DoubleChar, Encoder: enc, Shards: 16, Manual: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i, k := range keys {
			if err := a.Put(k, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
		return a, keys
	}
	b.Run("OverwriteSerial", func(b *testing.B) {
		a, keys := load(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Put(keys[i%len(keys)], uint64(i))
		}
	})
	b.Run("OverwriteParallel", func(b *testing.B) {
		a, keys := load(b)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				a.Put(keys[i%len(keys)], uint64(i))
				i++
			}
		})
	})
}
