package hope

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lifecycle"
)

// ---------------------------------------------------------------------------
// Quiesce/Close semantics: background rebuilds must not outlive either.
// ---------------------------------------------------------------------------

// TestAdaptiveQuiesceWaitsForTriggeredRebuild pins the trigger/Quiesce
// race: a lifecycle signal CASes the rebuilding flag and spawns a
// goroutine, and a Quiesce issued in that window — before the goroutine
// has reached rebuildMu — must still wait for it. Before asyncWG was
// registered synchronously at trigger time, Quiesce could return with the
// first build still pending and this test fails its generation check
// (run under -race to also catch the unsynchronized window).
func TestAdaptiveQuiesceWaitsForTriggeredRebuild(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		a, err := NewAdaptiveIndex(BTree, AdaptiveOptions{
			Scheme: core.SingleChar,
			Build:  core.Options{DictLimit: 1 << 10, MaxPatternLen: 16},
			Shards: 4,
			Lifecycle: lifecycle.Config{
				ReservoirSize: 256, BuildAfter: 64, CheckEvery: 16, Seed: int64(iter + 1),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Crossing BuildAfter signals the first build; the trigger fires
		// inside one of these Puts.
		for i := 0; i < 96; i++ {
			if err := a.Put([]byte(fmt.Sprintf("com.quiesce.%02d.%04d", iter, i)), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		a.Quiesce()
		if a.rebuilding.Load() {
			t.Fatalf("iter %d: rebuild still in flight after Quiesce", iter)
		}
		if g, s := a.Generation(), a.State(); g != 1 || s != StateSteady {
			t.Fatalf("iter %d: gen %d state %v after Quiesce, want the triggered first build completed", iter, g, s)
		}
	}
}

// TestAdaptiveCloseCancelsInFlightRebuild wedges a migration in an
// unbounded stall, then requires Close to wake it, abort it down the
// restore path, and refuse further rebuilds — while point ops and scans
// keep serving the frozen generation.
func TestAdaptiveCloseCancelsInFlightRebuild(t *testing.T) {
	encs := testEncoders(t)
	a, err := NewAdaptiveIndex(ART, manualOpts(core.SingleChar, encs[core.SingleChar].Clone()))
	if err != nil {
		t.Fatal(err)
	}
	model := seedAdaptive(t, a, adversarialCorpus())

	plan := fault.NewPlan(1, fault.Rule{Point: "batch", Shard: -1, Kind: fault.Stall, Stall: -1, Once: true})
	a.injector = plan
	done := make(chan error, 1)
	go func() { done <- a.Rebuild() }()
	deadline := time.Now().Add(5 * time.Second)
	for plan.Fired(fault.Stall) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stall fault never fired")
		}
		time.Sleep(time.Millisecond)
	}

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("wedged Rebuild returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not cancel the wedged rebuild")
	}
	if s := a.Stats(); s.Aborts != 1 || s.MigratedShards != 0 {
		t.Fatalf("stats after cancelled rebuild: %+v", s)
	}
	if g, s := a.Generation(), a.State(); g != 0 || s != StateSteady {
		t.Fatalf("gen %d state %v after Close-cancelled rebuild", g, s)
	}
	if !errors.Is(a.Err(), ErrClosed) {
		t.Fatalf("Err() = %v after Close", a.Err())
	}
	if err := a.Rebuild(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rebuild after Close returned %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// The index still serves — only the dictionary is frozen.
	checkDifferential(t, "after Close", a, model)
}

// ---------------------------------------------------------------------------
// Watchdog: wedged migrations abort with ErrMigrationTimeout.
// ---------------------------------------------------------------------------

func TestAdaptiveWatchdogTimesOutWedgedMigration(t *testing.T) {
	encs := testEncoders(t)
	cases := []struct {
		name     string
		point    string
		progress time.Duration
		deadline time.Duration
	}{
		// mid-batch wedges with the stripe lock held — the worst spot; the
		// watchdog must wake the stall so the deferred unlock runs.
		{"progress-timeout-mid-batch", "mid-batch", 75 * time.Millisecond, 0},
		{"rebuild-deadline-batch", "batch", 0, 75 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := manualOpts(core.SingleChar, encs[core.SingleChar].Clone())
			opts.MigrationTimeout = tc.progress
			opts.RebuildDeadline = tc.deadline
			a, err := NewAdaptiveIndex(BTree, opts)
			if err != nil {
				t.Fatal(err)
			}
			model := seedAdaptive(t, a, adversarialCorpus())

			plan := fault.NewPlan(1, fault.Rule{Point: tc.point, Shard: -1, Kind: fault.Stall, Stall: -1, Once: true})
			a.injector = plan
			start := time.Now()
			err = a.Rebuild()
			if !errors.Is(err, ErrMigrationTimeout) {
				t.Fatalf("Rebuild returned %v, want ErrMigrationTimeout", err)
			}
			if wedged := time.Since(start); wedged > 5*time.Second {
				t.Fatalf("watchdog took %v to abort a wedged migration", wedged)
			}
			s := a.Stats()
			if s.ConsecutiveFailures != 1 || !errors.Is(s.LastError, ErrMigrationTimeout) {
				t.Fatalf("health after timeout: failures=%d lastErr=%v", s.ConsecutiveFailures, s.LastError)
			}
			if s.NextRetryAt.IsZero() {
				t.Fatal("failed rebuild did not arm the retry backoff")
			}
			if a.Generation() != 0 || a.State() != StateSteady {
				t.Fatalf("gen %d state %v after watchdog abort", a.Generation(), a.State())
			}
			checkDifferential(t, tc.name+" after abort", a, model)

			plan.Disarm()
			if err := a.Rebuild(); err != nil {
				t.Fatalf("fault-free rebuild after timeout: %v", err)
			}
			s = a.Stats()
			if s.ConsecutiveFailures != 0 || s.LastError != nil || !s.NextRetryAt.IsZero() {
				t.Fatalf("health not reset by successful cutover: %+v", s)
			}
			checkDifferential(t, tc.name+" after recovery", a, model)
		})
	}
}

// ---------------------------------------------------------------------------
// Panic isolation: a panic at any checkpoint converts to *ErrRebuildPanic,
// leaks no locks, and leaves the old generation serving.
// ---------------------------------------------------------------------------

func TestAdaptivePanicIsolationAtEveryCheckpoint(t *testing.T) {
	encs := testEncoders(t)
	stages := []struct {
		stage string
		shard int
	}{
		{"build-start", -1},
		{"batch", 2},
		{"mid-batch", -1}, // stripe lock held when the panic fires
		{"shard-flipped", 4},
		{"cutover", -1},
	}
	for _, st := range stages {
		a, err := NewAdaptiveIndex(ART, manualOpts(core.SingleChar, encs[core.SingleChar].Clone()))
		if err != nil {
			t.Fatal(err)
		}
		model := seedAdaptive(t, a, adversarialCorpus())
		memBefore := a.MemoryUsage()
		plan := fault.NewPlan(1, fault.Rule{Point: st.stage, Shard: st.shard, Kind: fault.Panic, Once: true})
		a.injector = plan

		err = a.Rebuild()
		var rp *ErrRebuildPanic
		if !errors.As(err, &rp) {
			t.Fatalf("%s/%d: Rebuild returned %v, want *ErrRebuildPanic", st.stage, st.shard, err)
		}
		if rp.Stage != st.stage {
			t.Fatalf("%s/%d: panic attributed to checkpoint %s/%d", st.stage, st.shard, rp.Stage, rp.Shard)
		}
		if len(rp.Stack) == 0 || !bytes.Contains(rp.Stack, []byte("goroutine")) {
			t.Fatalf("%s/%d: no stack captured", st.stage, st.shard)
		}
		if _, ok := rp.Value.(*fault.Injected); !ok {
			t.Fatalf("%s/%d: panic value %v, want *fault.Injected", st.stage, st.shard, rp.Value)
		}
		if s := a.Stats(); s.Aborts != 1 || s.ConsecutiveFailures != 1 || s.MigratedShards != 0 {
			t.Fatalf("%s/%d: stats %+v", st.stage, st.shard, s)
		}
		if got := a.MemoryUsage(); got != memBefore {
			t.Fatalf("%s/%d: MemoryUsage %d after panic abort, want %d", st.stage, st.shard, got, memBefore)
		}
		// No leaked locks: writes, reads, and scans all acquire shard locks.
		k := []byte(fmt.Sprintf("post-panic-%s", st.stage))
		if err := a.Put(k, 42); err != nil {
			t.Fatal(err)
		}
		model[string(k)] = 42
		checkDifferential(t, fmt.Sprintf("panic at %s/%d", st.stage, st.shard), a, model)

		plan.Disarm()
		if err := a.Rebuild(); err != nil {
			t.Fatalf("%s/%d: clean rebuild after panic: %v", st.stage, st.shard, err)
		}
		if a.Generation() != 1 {
			t.Fatalf("%s/%d: generation %d after recovery", st.stage, st.shard, a.Generation())
		}
		checkDifferential(t, fmt.Sprintf("recovered from panic at %s/%d", st.stage, st.shard), a, model)
	}
}

// ---------------------------------------------------------------------------
// Circuit breaker: consecutive failures open it, a clean rebuild closes it.
// ---------------------------------------------------------------------------

func TestAdaptiveBreakerOpensAndExplicitRebuildCloses(t *testing.T) {
	encs := testEncoders(t)
	opts := manualOpts(core.SingleChar, encs[core.SingleChar].Clone())
	opts.Lifecycle.BreakerAfter = 3
	opts.Lifecycle.RetryJitter = -1
	a, err := NewAdaptiveIndex(BTree, opts)
	if err != nil {
		t.Fatal(err)
	}
	model := seedAdaptive(t, a, adversarialCorpus())

	boom := errors.New("boom")
	a.injector = fault.Func(func(stage string, shard int) error {
		if stage == "build-start" {
			return boom
		}
		return nil
	})
	for i := 1; i <= 3; i++ {
		err := a.Rebuild()
		if !errors.Is(err, boom) {
			t.Fatalf("attempt %d: %v", i, err)
		}
		if wantOpen := i >= 3; errors.Is(err, ErrDegraded) != wantOpen {
			t.Fatalf("attempt %d: ErrDegraded match = %v, want %v (err %v)", i, !wantOpen, wantOpen, err)
		}
		s := a.Stats()
		if s.ConsecutiveFailures != i || s.Degraded != (i >= 3) || !errors.Is(s.LastError, boom) {
			t.Fatalf("attempt %d: health %+v", i, s)
		}
	}
	if err := a.Err(); !errors.Is(err, ErrDegraded) || !errors.Is(err, boom) {
		t.Fatalf("Err() = %v while degraded", err)
	}
	// Degraded is frozen-dictionary serving, not an outage.
	k := []byte("written-while-degraded")
	if err := a.Put(k, 99); err != nil {
		t.Fatal(err)
	}
	model[string(k)] = 99
	checkDifferential(t, "degraded serving", a, model)

	a.injector = nil
	if err := a.Rebuild(); err != nil {
		t.Fatalf("reviving rebuild: %v", err)
	}
	s := a.Stats()
	if s.Degraded || s.ConsecutiveFailures != 0 || s.LastError != nil || !s.NextRetryAt.IsZero() {
		t.Fatalf("health after revival: %+v", s)
	}
	if a.Err() != nil || a.Generation() != 1 {
		t.Fatalf("Err=%v gen=%d after revival", a.Err(), a.Generation())
	}
	checkDifferential(t, "revived", a, model)
}

// TestAdaptiveAutoBackoffAndHalfOpenProbe drives the automatic path: a
// failed first build arms the backoff (drift/build signals are swallowed
// until it expires), then the half-open probe fires and a fault-free
// attempt recovers.
func TestAdaptiveAutoBackoffAndHalfOpenProbe(t *testing.T) {
	a, err := NewAdaptiveIndex(BTree, AdaptiveOptions{
		Scheme: core.SingleChar,
		Build:  core.Options{DictLimit: 1 << 10, MaxPatternLen: 16},
		Shards: 4,
		Lifecycle: lifecycle.Config{
			ReservoirSize: 256, BuildAfter: 64, CheckEvery: 16, Seed: 3,
			RetryBackoff: 250 * time.Millisecond, RetryJitter: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(1, fault.Rule{Point: "build-start", Shard: -1, Kind: fault.Error, Once: true})
	a.injector = plan

	put := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := a.Put([]byte(fmt.Sprintf("com.backoff.%05d", i)), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	put(0, 96) // crosses BuildAfter: triggers the first build, which fails
	a.Quiesce()
	s := a.Stats()
	if a.Generation() != 0 || s.ConsecutiveFailures != 1 || s.NextRetryAt.IsZero() {
		t.Fatalf("after failed auto build: gen %d health %+v", a.Generation(), s)
	}
	// Inside the backoff window the standing first-build signal is
	// swallowed: more traffic must not re-trigger.
	put(96, 160)
	a.Quiesce()
	if a.Generation() != 0 {
		t.Fatal("rebuild re-fired inside the backoff window")
	}
	// Past the window the half-open probe re-arms; the fault was Once, so
	// the probe succeeds and resets the health counters.
	time.Sleep(350 * time.Millisecond)
	put(160, 224)
	a.Quiesce()
	s = a.Stats()
	if a.Generation() != 1 || s.ConsecutiveFailures != 0 || !s.NextRetryAt.IsZero() {
		t.Fatalf("after half-open probe: gen %d health %+v", a.Generation(), s)
	}
}

// ---------------------------------------------------------------------------
// Skew-triggered re-split.
// ---------------------------------------------------------------------------

func TestAdaptiveSkewResplitRebalancesRangePartition(t *testing.T) {
	encs := testEncoders(t)
	opts := AdaptiveOptions{
		Scheme:         core.SingleChar,
		Build:          core.Options{DictLimit: 1 << 10, MaxPatternLen: 16},
		Encoder:        encs[core.SingleChar].Clone(),
		Shards:         8,
		Partition:      RangePartitioned,
		MigrationBatch: 64,
		ResplitAbove:   0.6,
		Lifecycle: lifecycle.Config{
			ReservoirSize: 2048, CheckEvery: 32, Cooldown: 32,
			WindowSize: 128, DriftThreshold: 0.99, // CPR drift effectively disabled
			Seed: 11, RetryJitter: -1,
		},
	}
	a, err := NewAdaptiveIndex(BTree, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A balanced bulk corpus seeds the range partition.
	var keys [][]byte
	for i := 0; i < 512; i++ {
		keys = append(keys, []byte(fmt.Sprintf("k%c%04d", 'a'+byte(i%23), i)))
	}
	if err := a.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}
	a.Quiesce()
	if a.Generation() != 0 {
		t.Fatalf("generation %d after bulk", a.Generation())
	}
	// Hammer a keyspace beyond every split point: all inserts land in the
	// last tree shard until the skew trigger re-splits.
	for i := 0; i < 1200 && a.Generation() == 0; i++ {
		if err := a.Put([]byte(fmt.Sprintf("zzz-hot-%06d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			a.Quiesce() // let a triggered re-split finish before more load
		}
	}
	a.Quiesce()
	if a.Generation() != 1 {
		t.Fatalf("skewed load never triggered a re-split (gen %d, frac %.2f)",
			a.Generation(), a.MaxShardFrac())
	}
	if frac := a.MaxShardFrac(); frac > opts.ResplitAbove {
		t.Fatalf("re-split left max shard fraction at %.2f, want <= %.2f", frac, opts.ResplitAbove)
	}
	if s := a.Stats(); s.Rebuilds != 1 || s.Aborts != 0 {
		t.Fatalf("stats after re-split: %+v", s)
	}
}

func TestShardedMaxShardFrac(t *testing.T) {
	idx, err := NewShardedIndexWithPartitioner(BTree, nil, NewRangePartitioner([][]byte{[]byte("m")}))
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.MaxShardFrac(); got != 0 {
		t.Fatalf("empty index MaxShardFrac = %v", got)
	}
	for _, k := range []string{"a", "b", "c", "z"} {
		if err := idx.Put([]byte(k), 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := idx.MaxShardFrac(); got != 0.75 {
		t.Fatalf("MaxShardFrac = %v, want 0.75", got)
	}
}

// ---------------------------------------------------------------------------
// Chaos soak: seeded faults at every checkpoint under concurrent traffic,
// differentially verified against a plain rebuilt Index at the end.
// ---------------------------------------------------------------------------

// chaosSoak drives one backend × partitioner combination: concurrent
// writers on disjoint keyspaces, a scanner asserting global order, and a
// rebuild driver hammering the lifecycle while a seeded fault plan fires
// errors, bounded stalls, and panics at every checkpoint. Every failure
// must match the typed taxonomy; after disarming, one fault-free rebuild
// must close any open breaker and the surviving state must be
// byte-identical to a plain Index rebuilt from the merged models.
func chaosSoak(t *testing.T, backend Backend, partition PartitionMode, seed int64, writers, ops int) {
	plan := fault.NewPlan(seed,
		fault.Rule{Point: "build-start", Shard: -1, Kind: fault.Error, Prob: 0.05},
		fault.Rule{Point: "batch", Shard: -1, Kind: fault.Error, Prob: 0.01},
		fault.Rule{Point: "batch", Shard: -1, Kind: fault.Stall, Prob: 0.02, Stall: time.Millisecond},
		fault.Rule{Point: "mid-batch", Shard: -1, Kind: fault.Panic, Prob: 0.0002},
		fault.Rule{Point: "shard-flipped", Shard: -1, Kind: fault.Panic, Prob: 0.05},
		fault.Rule{Point: "cutover", Shard: -1, Kind: fault.Error, Prob: 0.3},
	)
	a, err := NewAdaptiveIndex(backend, AdaptiveOptions{
		Scheme:           core.SingleChar,
		Build:            core.Options{DictLimit: 1 << 10, MaxPatternLen: 16},
		Shards:           8,
		Partition:        partition,
		MigrationBatch:   16,
		Manual:           true,
		MigrationTimeout: 30 * time.Second, // watchdog armed; must not fire on 1ms stalls
		Lifecycle:        lifecycle.Config{ReservoirSize: 2048, Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.injector = plan

	// Seed before arming concurrency so the first rebuild has a reservoir.
	seedModel := map[string]uint64{}
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("com.seed.%c%04d", 'a'+byte(i%19), i)
		if err := a.Put([]byte(k), uint64(i)); err != nil {
			t.Fatal(err)
		}
		seedModel[k] = uint64(i)
	}

	models := make([]map[string]uint64, writers)
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		models[wi] = map[string]uint64{}
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(wi)))
			m := models[wi]
			var mine [][]byte
			for j := 0; j < ops; j++ {
				switch r := rng.Float64(); {
				case r < 0.65 || len(mine) == 0:
					k := []byte(fmt.Sprintf("com.w%d.%c%05d", wi, 'a'+byte(j%17), j))
					v := uint64(wi)<<32 | uint64(j)
					if err := a.Put(k, v); err != nil {
						t.Errorf("w%d Put: %v", wi, err)
						return
					}
					m[string(k)] = v
					mine = append(mine, k)
				case r < 0.85:
					k := mine[rng.Intn(len(mine))]
					v := uint64(wi)<<32 | uint64(j) | 1<<63
					if err := a.Put(k, v); err != nil {
						t.Errorf("w%d overwrite: %v", wi, err)
						return
					}
					m[string(k)] = v
				default:
					k := mine[rng.Intn(len(mine))]
					if _, err := a.Delete(k); err != nil {
						t.Errorf("w%d Delete: %v", wi, err)
						return
					}
					delete(m, string(k))
				}
			}
		}(wi)
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup

	// Scanner: the merged stream must stay strictly ascending no matter
	// which generations are serving.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var prev []byte
			a.Scan(nil, nil, func(k []byte, _ uint64) bool {
				if prev != nil && bytes.Compare(prev, k) >= 0 {
					t.Errorf("scan order violated: %q then %q", prev, k)
					return false
				}
				prev = append(prev[:0], k...)
				return true
			})
			time.Sleep(time.Millisecond)
		}
	}()

	// Every rebuild failure must be a typed, expected fault.
	classify := func(err error) bool {
		var inj *fault.Injected
		var rp *ErrRebuildPanic
		switch {
		case err == nil:
		case errors.Is(err, ErrMigrationTimeout):
		case errors.As(err, &rp):
		case errors.As(err, &inj):
		case errors.Is(err, ErrDegraded):
		default:
			t.Errorf("rebuild failed outside the taxonomy: %v", err)
			return false
		}
		return true
	}

	// Rebuild driver, racing the writers.
	attempts := 0
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !classify(a.Rebuild()) {
				return
			}
			attempts++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	aux.Wait()
	a.Quiesce()

	// On a fast machine the writers can finish before the driver got many
	// attempts in; top up so every combo takes a meaningful number of
	// faulted rebuilds (the plan is still armed).
	for ; attempts < 12; attempts++ {
		if !classify(a.Rebuild()) {
			t.FailNow()
		}
	}

	// The plan must actually have exercised the abort paths.
	if fired := plan.Fired(fault.Error) + plan.Fired(fault.Panic); fired == 0 {
		t.Fatalf("seed %d fired no aborting faults; strengthen the plan", seed)
	}
	if a.Stats().Aborts == 0 {
		t.Fatal("no rebuild aborted during the soak")
	}

	plan.Disarm()
	if err := a.Rebuild(); err != nil {
		t.Fatalf("fault-free rebuild after soak: %v", err)
	}
	s := a.Stats()
	if s.Degraded || s.ConsecutiveFailures != 0 || a.Err() != nil {
		t.Fatalf("health not restored after soak: %+v Err=%v", s, a.Err())
	}
	if s.Rebuilds == 0 {
		t.Fatal("no rebuild completed during the soak")
	}

	model := map[string]uint64{}
	for k, v := range seedModel {
		model[k] = v
	}
	for _, m := range models {
		for k, v := range m {
			model[k] = v
		}
	}
	checkDifferential(t, fmt.Sprintf("%s/%v soak", backend, partition), a, model)
	t.Logf("%s/%v: %d events (%d errors, %d stalls, %d panics), %d rebuilds, %d aborts",
		backend, partition, len(plan.Events()), plan.Fired(fault.Error),
		plan.Fired(fault.Stall), plan.Fired(fault.Panic), s.Rebuilds, s.Aborts)
}

func TestAdaptiveChaosSoak(t *testing.T) {
	combos := []struct {
		backend   Backend
		partition PartitionMode
	}{
		{ART, HashPartitioned},
		{ART, RangePartitioned},
		{BTree, HashPartitioned},
		{BTree, RangePartitioned},
		{HOT, HashPartitioned},
		{PrefixBTree, RangePartitioned},
	}
	writers, ops := 4, 1200
	if testing.Short() {
		combos = combos[:2]
		ops = 400
	}
	for i, c := range combos {
		c := c
		seed := int64(0xC4A05) + int64(i)
		t.Run(fmt.Sprintf("%s_%v", c.backend, c.partition), func(t *testing.T) {
			chaosSoak(t, c.backend, c.partition, seed, writers, ops)
		})
	}
}

// TestAdaptiveChaosSuRFStopTheWorld covers the stop-the-world rebuild's
// fault surface (build-start and the cutover checkpoint added for
// symmetry): errors and panics abort with every shard lock correctly
// released and the old run still serving.
func TestAdaptiveChaosSuRFStopTheWorld(t *testing.T) {
	a, err := NewAdaptiveIndex(SuRF, AdaptiveOptions{
		Scheme:    core.SingleChar,
		Build:     core.Options{DictLimit: 1 << 10, MaxPatternLen: 16},
		Shards:    4,
		Manual:    true,
		Lifecycle: lifecycle.Config{ReservoirSize: 1024, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var keys [][]byte
	model := map[string]uint64{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("com.surf.%c%04d", 'a'+byte(i%13), i)
		keys = append(keys, []byte(k))
		model[k] = uint64(i)
	}
	if err := a.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}
	memBefore := a.MemoryUsage()

	plan := fault.NewPlan(9,
		fault.Rule{Point: "build-start", Shard: -1, Kind: fault.Error, Nth: 1},
		fault.Rule{Point: "cutover", Shard: -1, Kind: fault.Panic, Nth: 1},
	)
	a.injector = plan

	var inj *fault.Injected
	if err := a.Rebuild(); !errors.As(err, &inj) || inj.Point != "build-start" {
		t.Fatalf("first faulted rebuild: %v", err)
	}
	checkDifferential(t, "surf after build-start abort", a, model)

	var rp *ErrRebuildPanic
	if err := a.Rebuild(); !errors.As(err, &rp) || rp.Stage != "cutover" {
		t.Fatalf("second faulted rebuild: %v", err)
	}
	if got := a.MemoryUsage(); got != memBefore {
		t.Fatalf("MemoryUsage %d after STW aborts, want %d", got, memBefore)
	}
	checkDifferential(t, "surf after cutover panic", a, model)

	plan.Disarm()
	if err := a.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if a.Generation() != 1 || a.Stats().Aborts != 2 {
		t.Fatalf("gen %d stats %+v", a.Generation(), a.Stats())
	}
	checkDifferential(t, "surf recovered", a, model)
}
