// Command benchdiff is the CI perf-regression gate: it compares two
// benchmark records of the same kind and fails when the median regression
// of any gated metric exceeds the threshold.
//
// Usage:
//
//	benchdiff [-threshold 0.15] [-mode encode|ycsb|drift|scan|serve|tree|restore] baseline.json current.json
//
// Mode encode compares BENCH_encode.json records (the encode-path latency
// record `make bench` writes); mode ycsb compares BENCH_ycsb.json records
// (the concurrent serving throughput record `make bench-ycsb` writes);
// mode drift compares BENCH_drift.json records (the dictionary-drift
// adaptation record `make bench-drift` writes, gating post-adaptation CPR
// and throughput); mode scan compares BENCH_scan.json records (the
// scan-partitioning throughput record `make bench-scan` writes); mode
// serve compares BENCH_serve.json records (the network serving latency
// record `make bench-serve` writes, gating p99 per op); mode tree
// compares BENCH_tree.json records (the end-to-end search-tree record
// `make bench-tree` writes, gating load throughput plus point, scan and
// insert latencies); mode restore compares BENCH_restore.json records
// (the restart record `make bench-restore` writes, gating the cold and
// restore boot times and the cold/restore speedup). Rows are
// matched by identity key — (dataset, scheme) for encode, (dataset,
// workload, backend, config, threads) for ycsb, (dataset, config, window)
// for drift, (dataset, backend, config, partition, shards) for scan,
// (dataset, store, config, workload, conns, op) for serve,
// (dataset, backend, config) for tree,
// (dataset, backend, config, keys) for restore. For
// every gated
// metric the tool collects the per-row current/baseline ratios and
// compares the metric's median ratio against the threshold: latencies fail
// above 1+threshold, throughputs fail below 1-threshold. The median — not
// the max — gates the job so a single noisy row on shared CI hardware
// cannot fail the build, while a real regression (which moves every row)
// reliably does. Exit status: 0 pass, 1 regression, 2 usage or input
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
)

// metric is one gated figure of a record. HigherBetter selects the
// regression direction: latencies regress upward, throughputs downward.
type metric struct {
	name         string
	higherBetter bool
}

// row is a flattened benchmark row: an identity key plus the gated metric
// values, the common form both record kinds diff through.
type row struct {
	key  string
	vals map[string]float64
}

var encodeMetrics = []metric{
	{name: "serial_ns_per_key"},
	{name: "serial_ns_per_char"},
	{name: "bulk_ns_per_key"},
}

var ycsbMetrics = []metric{
	{name: "ops_per_sec", higherBetter: true},
}

// Drift gates both axes of adaptation: the rolling/post-adaptation
// compression rate and the serving throughput under lifecycle overhead.
// recovery_ratio appears only on the adaptive summary row, so its median
// IS that row — a direct gate on how close the rebuilt dictionary gets to
// a from-scratch one.
var driftMetrics = []metric{
	{name: "ops_per_sec", higherBetter: true},
	{name: "cpr_recent", higherBetter: true},
	{name: "recovery_ratio", higherBetter: true},
}

// Scan gates the range-vs-hash partitioning figure's throughput: a
// regression in the pruned scan planner or the single-shard fast path
// moves the range rows, one in the merge path moves the hash rows.
var scanMetrics = []metric{
	{name: "ops_per_sec", higherBetter: true},
}

// Serve gates the network serving figure on tail latency: the median
// p99 across the workload × connections × store × config cells. p99 —
// not p50, which hides queueing, and not p999, which a single-core CI
// runner's scheduler makes too noisy to gate (it is still recorded).
var serveMetrics = []metric{
	{name: "p99_us"},
}

// Tree gates the end-to-end search-tree figure: load throughput plus
// point, scan and insert latencies through hope.Index. insert_ns is
// absent from records written before the insert-heavy cell existed;
// diffRows skips metrics with a non-positive baseline, so old baselines
// still gate the other three.
var treeMetrics = []metric{
	{name: "load_keys_per_sec", higherBetter: true},
	{name: "point_ns"},
	{name: "scan_ns"},
	{name: "insert_ns"},
}

// Restore gates both boot paths of the restart figure plus their ratio:
// restore_sec catches a slow restore (decode or parallel bulk path),
// cold_sec catches a slow from-scratch build, and speedup is the
// figure's claim itself — snapshot restore must keep beating the cold
// re-encode by roughly the recorded margin.
var restoreMetrics = []metric{
	{name: "cold_sec"},
	{name: "restore_sec"},
	{name: "speedup", higherBetter: true},
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "maximum tolerated median regression (0.15 = ±15%)")
	mode := flag.String("mode", "encode", "record kind: encode (BENCH_encode.json), ycsb (BENCH_ycsb.json), drift (BENCH_drift.json), scan (BENCH_scan.json), serve (BENCH_serve.json), tree (BENCH_tree.json) or restore (BENCH_restore.json)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold 0.15] [-mode encode|ycsb|drift|scan|serve|tree|restore] baseline.json current.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	var base, cur []row
	var metrics []metric
	var err error
	switch *mode {
	case "encode":
		metrics = encodeMetrics
		base, err = readEncodeRows(flag.Arg(0))
		if err == nil {
			cur, err = readEncodeRows(flag.Arg(1))
		}
	case "ycsb":
		metrics = ycsbMetrics
		base, err = readYCSBRows(flag.Arg(0))
		if err == nil {
			cur, err = readYCSBRows(flag.Arg(1))
		}
	case "drift":
		metrics = driftMetrics
		base, err = readDriftRows(flag.Arg(0))
		if err == nil {
			cur, err = readDriftRows(flag.Arg(1))
		}
	case "scan":
		metrics = scanMetrics
		base, err = readScanRows(flag.Arg(0))
		if err == nil {
			cur, err = readScanRows(flag.Arg(1))
		}
	case "serve":
		metrics = serveMetrics
		base, err = readServeRows(flag.Arg(0))
		if err == nil {
			cur, err = readServeRows(flag.Arg(1))
		}
	case "tree":
		metrics = treeMetrics
		base, err = readTreeRows(flag.Arg(0))
		if err == nil {
			cur, err = readTreeRows(flag.Arg(1))
		}
	case "restore":
		metrics = restoreMetrics
		base, err = readRestoreRows(flag.Arg(0))
		if err == nil {
			cur, err = readRestoreRows(flag.Arg(1))
		}
	default:
		err = fmt.Errorf("unknown -mode %q (want encode, ycsb, drift, scan, serve, tree or restore)", *mode)
	}
	if err != nil {
		fatal(err)
	}
	report, failed, err := diffRows(base, cur, metrics, *threshold)
	if err != nil {
		fatal(err)
	}
	fmt.Print(report)
	if failed {
		fmt.Printf("FAIL: median regression above %.0f%% (or baseline rows missing)\n", *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("OK: all medians within %.0f%%\n", *threshold*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

func readEncodeRows(path string) ([]row, error) {
	var rows []bench.EncodeBenchRow
	if err := readJSON(path, &rows); err != nil {
		return nil, err
	}
	return flattenEncode(rows), nil
}

func flattenEncode(rows []bench.EncodeBenchRow) []row {
	out := make([]row, len(rows))
	for i, r := range rows {
		out[i] = row{
			key: r.Dataset + "/" + r.Scheme,
			vals: map[string]float64{
				"serial_ns_per_key":  r.SerialNsKey,
				"serial_ns_per_char": r.SerialNsChar,
				"bulk_ns_per_key":    r.BulkNsKey,
			},
		}
	}
	return out
}

func readYCSBRows(path string) ([]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := bench.ReadYCSBBenchJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return flattenYCSB(rows), nil
}

func flattenYCSB(rows []bench.YCSBBenchRow) []row {
	out := make([]row, len(rows))
	for i, r := range rows {
		out[i] = row{
			key: fmt.Sprintf("%s/%s/%s/%s/t%d", r.Dataset, r.Workload, r.Backend, r.Config, r.Threads),
			vals: map[string]float64{
				"ops_per_sec": r.OpsPerSec,
			},
		}
	}
	return out
}

func readDriftRows(path string) ([]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := bench.ReadDriftBenchJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return flattenDrift(rows), nil
}

func flattenDrift(rows []bench.DriftBenchRow) []row {
	out := make([]row, len(rows))
	for i, r := range rows {
		key := fmt.Sprintf("%s/%s/w%d", r.Dataset, r.Config, r.Window)
		if r.Window < 0 {
			key = fmt.Sprintf("%s/%s/summary", r.Dataset, r.Config)
		}
		out[i] = row{
			key: key,
			vals: map[string]float64{
				"ops_per_sec":    r.OpsPerSec,
				"cpr_recent":     r.CPRRecent,
				"recovery_ratio": r.RecoveryRatio,
			},
		}
	}
	return out
}

func readScanRows(path string) ([]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := bench.ReadScanBenchJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return flattenScan(rows), nil
}

func flattenScan(rows []bench.ScanBenchRow) []row {
	out := make([]row, len(rows))
	for i, r := range rows {
		out[i] = row{
			key: fmt.Sprintf("%s/%s/%s/%s/s%d", r.Dataset, r.Backend, r.Config, r.Partition, r.Shards),
			vals: map[string]float64{
				"ops_per_sec": r.OpsPerSec,
			},
		}
	}
	return out
}

func readServeRows(path string) ([]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := bench.ReadServeBenchJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return flattenServe(rows), nil
}

func flattenServe(rows []bench.ServeBenchRow) []row {
	out := make([]row, len(rows))
	for i, r := range rows {
		out[i] = row{
			key: fmt.Sprintf("%s/%s/%s/%s/c%d/%s", r.Dataset, r.Store, r.Config, r.Workload, r.Conns, r.Op),
			vals: map[string]float64{
				"p99_us": r.P99us,
			},
		}
	}
	return out
}

func readTreeRows(path string) ([]row, error) {
	var rows []bench.TreeBenchRow
	if err := readJSON(path, &rows); err != nil {
		return nil, err
	}
	return flattenTree(rows), nil
}

func flattenTree(rows []bench.TreeBenchRow) []row {
	out := make([]row, len(rows))
	for i, r := range rows {
		out[i] = row{
			key: fmt.Sprintf("%s/%s/%s", r.Dataset, r.Backend, r.Config),
			vals: map[string]float64{
				"load_keys_per_sec": r.LoadKeysSec,
				"point_ns":          r.PointNs,
				"scan_ns":           r.ScanNs,
				"insert_ns":         r.InsertNs,
			},
		}
	}
	return out
}

func readRestoreRows(path string) ([]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := bench.ReadRestoreBenchJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return flattenRestore(rows), nil
}

func flattenRestore(rows []bench.RestoreBenchRow) []row {
	out := make([]row, len(rows))
	for i, r := range rows {
		out[i] = row{
			key: fmt.Sprintf("%s/%s/%s/k%d", r.Dataset, r.Backend, r.Config, r.Keys),
			vals: map[string]float64{
				"cold_sec":    r.ColdSec,
				"restore_sec": r.RestoreSec,
				"speedup":     r.Speedup,
			},
		}
	}
	return out
}

func readJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// diff preserves the original encode-record entry point (tests and older
// callers); it flattens and delegates to diffRows.
func diff(base, cur []bench.EncodeBenchRow, threshold float64) (string, bool, error) {
	return diffRows(flattenEncode(base), flattenEncode(cur), encodeMetrics, threshold)
}

// diffRows builds the human-readable comparison and reports whether any
// metric's median ratio breaches the threshold in its regression
// direction. A baseline row with no matching current row fails the gate
// outright: a configuration that stopped being measured is a silent total
// regression, not a pass. (Current rows without a baseline — newly added
// configurations — are noted and tolerated.)
func diffRows(base, cur []row, metrics []metric, threshold float64) (string, bool, error) {
	baseBy := map[string]row{}
	for _, r := range base {
		baseBy[r.key] = r
	}
	curKeys := map[string]bool{}
	out := fmt.Sprintf("%-40s %-20s %12s %12s %8s\n", "row", "metric", "baseline", "current", "ratio")
	failed := false
	for _, c := range cur {
		curKeys[c.key] = true
		if _, ok := baseBy[c.key]; !ok {
			out += fmt.Sprintf("%-40s new row (no baseline), not gated\n", c.key)
		}
	}
	for _, b := range base {
		if !curKeys[b.key] {
			out += fmt.Sprintf("%-40s MISSING from current record\n", b.key)
			failed = true
		}
	}
	matched := 0
	for _, m := range metrics {
		var ratios []float64
		for _, c := range cur {
			b, ok := baseBy[c.key]
			if !ok {
				continue
			}
			matched++
			bv, cv := b.vals[m.name], c.vals[m.name]
			if bv <= 0 {
				continue // unmeasurable baseline (sub-tick), nothing to gate
			}
			ratio := cv / bv
			ratios = append(ratios, ratio)
			flag := ""
			if regressed(ratio, m, threshold) {
				flag = "  <- above threshold"
			}
			out += fmt.Sprintf("%-40s %-20s %12.2f %12.2f %7.2fx%s\n", c.key, m.name, bv, cv, ratio, flag)
		}
		if len(ratios) == 0 {
			continue
		}
		med := median(ratios)
		verdict := "ok"
		if regressed(med, m, threshold) {
			verdict = "REGRESSION"
			failed = true
		}
		out += fmt.Sprintf("%-40s %-20s %12s %12s %7.2fx  median: %s\n",
			"(median)", m.name, "", "", med, verdict)
	}
	if matched == 0 {
		return "", false, fmt.Errorf("no rows match between baseline and current (different datasets or configurations?)")
	}
	return out, failed, nil
}

// regressed applies the metric's direction: latency ratios fail above
// 1+threshold, throughput ratios below 1-threshold.
func regressed(ratio float64, m metric, threshold float64) bool {
	if m.higherBetter {
		return ratio < 1-threshold
	}
	return ratio > 1+threshold
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
