// Command benchdiff is the CI perf-regression gate: it compares two
// BENCH_encode.json files (the encode-path perf record `make bench`
// writes) and fails when the median regression of any latency metric
// exceeds the threshold.
//
// Usage:
//
//	benchdiff [-threshold 0.15] baseline.json current.json
//
// Rows are matched by (dataset, scheme); for every latency metric the
// tool collects the per-row current/baseline ratios and compares each
// metric's median ratio against 1+threshold. The median — not the max —
// gates the job so a single noisy scheme on shared CI hardware cannot
// fail the build, while a real encode-path regression (which moves every
// scheme) reliably does. Exit status: 0 pass, 1 regression, 2 usage or
// input error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
)

// metrics are the gated figures; every one is a latency (lower is
// better). Throughput-like columns (speedup, CPR) are reported but not
// gated: they depend on worker count and dictionary contents rather than
// the encode hot path alone.
var metrics = []struct {
	name string
	get  func(bench.EncodeBenchRow) float64
}{
	{"serial_ns_per_key", func(r bench.EncodeBenchRow) float64 { return r.SerialNsKey }},
	{"serial_ns_per_char", func(r bench.EncodeBenchRow) float64 { return r.SerialNsChar }},
	{"bulk_ns_per_key", func(r bench.EncodeBenchRow) float64 { return r.BulkNsKey }},
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "maximum tolerated median regression (0.15 = +15%)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold 0.15] baseline.json current.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := readRows(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := readRows(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	report, failed, err := diff(base, cur, *threshold)
	if err != nil {
		fatal(err)
	}
	fmt.Print(report)
	if failed {
		fmt.Printf("FAIL: median regression above %.0f%% (or baseline rows missing)\n", *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("OK: all medians within %.0f%%\n", *threshold*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

func readRows(path string) ([]bench.EncodeBenchRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []bench.EncodeBenchRow
	if err := json.NewDecoder(f).Decode(&rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

func key(r bench.EncodeBenchRow) string { return r.Dataset + "/" + r.Scheme }

// diff builds the human-readable comparison and reports whether any
// metric's median ratio breaches 1+threshold. A baseline row with no
// matching current row fails the gate outright: a scheme that stopped
// being measured is a silent total regression, not a pass. (Current rows
// without a baseline — newly added schemes — are noted and tolerated.)
func diff(base, cur []bench.EncodeBenchRow, threshold float64) (string, bool, error) {
	baseBy := map[string]bench.EncodeBenchRow{}
	for _, r := range base {
		baseBy[key(r)] = r
	}
	curKeys := map[string]bool{}
	out := fmt.Sprintf("%-28s %-20s %10s %10s %8s\n", "row", "metric", "baseline", "current", "ratio")
	failed := false
	for _, c := range cur {
		curKeys[key(c)] = true
		if _, ok := baseBy[key(c)]; !ok {
			out += fmt.Sprintf("%-28s new row (no baseline), not gated\n", key(c))
		}
	}
	for _, b := range base {
		if !curKeys[key(b)] {
			out += fmt.Sprintf("%-28s MISSING from current record\n", key(b))
			failed = true
		}
	}
	matched := 0
	for _, m := range metrics {
		var ratios []float64
		for _, c := range cur {
			b, ok := baseBy[key(c)]
			if !ok {
				continue
			}
			matched++
			bv, cv := m.get(b), m.get(c)
			if bv <= 0 {
				continue // unmeasurable baseline (sub-tick), nothing to gate
			}
			ratio := cv / bv
			ratios = append(ratios, ratio)
			flag := ""
			if ratio > 1+threshold {
				flag = "  <- above threshold"
			}
			out += fmt.Sprintf("%-28s %-20s %10.2f %10.2f %7.2fx%s\n", key(c), m.name, bv, cv, ratio, flag)
		}
		if len(ratios) == 0 {
			continue
		}
		med := median(ratios)
		verdict := "ok"
		if med > 1+threshold {
			verdict = "REGRESSION"
			failed = true
		}
		out += fmt.Sprintf("%-28s %-20s %10s %10s %7.2fx  median: %s\n",
			"(median)", m.name, "", "", med, verdict)
	}
	if matched == 0 {
		return "", false, fmt.Errorf("no rows match between baseline and current (different datasets or schemes?)")
	}
	return out, failed, nil
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
