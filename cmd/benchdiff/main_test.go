package main

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func rows(scale float64) []bench.EncodeBenchRow {
	schemes := []string{"Single-Char", "Double-Char", "3-Grams", "4-Grams", "ALM", "ALM-Improved"}
	out := make([]bench.EncodeBenchRow, len(schemes))
	for i, s := range schemes {
		out[i] = bench.EncodeBenchRow{
			Dataset:      "email",
			Scheme:       s,
			SerialNsKey:  100 * scale,
			SerialNsChar: 10 * scale,
			BulkNsKey:    20 * scale,
		}
	}
	return out
}

// TestSyntheticRegressionFails is the gate's acceptance demo: a uniform
// +20% latency move across schemes must fail a 15% threshold.
func TestSyntheticRegressionFails(t *testing.T) {
	report, failed, err := diff(rows(1.0), rows(1.20), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("synthetic +20%% regression passed the 15%% gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Fatalf("report does not flag the regression:\n%s", report)
	}
}

// TestWithinThresholdPasses: +10% noise stays under a 15% gate.
func TestWithinThresholdPasses(t *testing.T) {
	_, failed, err := diff(rows(1.0), rows(1.10), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("+10% move failed a 15% gate")
	}
}

// TestSingleNoisyRowTolerated: the median gate must not trip on one
// outlier scheme while the rest hold steady — that is CI noise, not an
// encode-path regression.
func TestSingleNoisyRowTolerated(t *testing.T) {
	cur := rows(1.0)
	cur[0].SerialNsKey *= 2
	cur[0].SerialNsChar *= 2
	cur[0].BulkNsKey *= 2
	_, failed, err := diff(rows(1.0), cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("one noisy row out of six tripped the median gate")
	}
}

// TestImprovementsPass: speedups must never fail the gate.
func TestImprovementsPass(t *testing.T) {
	_, failed, err := diff(rows(1.0), rows(0.5), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("a 2x speedup failed the gate")
	}
}

// TestMissingRowFails: a scheme that vanished from the current record is
// a silent total regression and must fail the gate.
func TestMissingRowFails(t *testing.T) {
	cur := rows(1.0)[:4] // two schemes no longer measured
	report, failed, err := diff(rows(1.0), cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("dropped rows passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "MISSING") {
		t.Fatalf("report does not name the missing rows:\n%s", report)
	}
}

// TestNewRowTolerated: a newly added scheme has no baseline and must not
// fail the gate.
func TestNewRowTolerated(t *testing.T) {
	cur := append(rows(1.0), bench.EncodeBenchRow{
		Dataset: "email", Scheme: "Brand-New",
		SerialNsKey: 1, SerialNsChar: 1, BulkNsKey: 1,
	})
	_, failed, err := diff(rows(1.0), cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("a new unmatched row failed the gate")
	}
}

// TestDisjointRowsError: comparing unrelated records is an input error,
// not a pass.
func TestDisjointRowsError(t *testing.T) {
	base := rows(1.0)
	for i := range base {
		base[i].Dataset = "url"
	}
	if _, _, err := diff(base, rows(1.0), 0.15); err == nil {
		t.Fatal("disjoint row sets did not error")
	}
}

// ---------------------------------------------------------------------------
// YCSB throughput gating (-mode ycsb): higher is better, so the regression
// direction flips.
// ---------------------------------------------------------------------------

func ycsbRows(scale float64) []bench.YCSBBenchRow {
	var out []bench.YCSBBenchRow
	for _, wk := range []string{"A", "B", "C", "E"} {
		for _, th := range []int{1, 4} {
			out = append(out, bench.YCSBBenchRow{
				Dataset: "email", Workload: wk, Backend: "ART",
				Config: "Single-Char", Threads: th,
				OpsPerSec: 1e6 * scale * float64(th),
			})
		}
	}
	return out
}

func diffY(base, cur []bench.YCSBBenchRow, threshold float64) (string, bool, error) {
	return diffRows(flattenYCSB(base), flattenYCSB(cur), ycsbMetrics, threshold)
}

// TestYCSBThroughputDropFails: a uniform -20% throughput move must fail a
// 15% gate (throughput regresses downward, unlike the latency metrics).
func TestYCSBThroughputDropFails(t *testing.T) {
	report, failed, err := diffY(ycsbRows(1.0), ycsbRows(0.80), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("synthetic -20%% throughput drop passed the 15%% gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Fatalf("report does not flag the regression:\n%s", report)
	}
}

// TestYCSBThroughputGainPasses: faster must never fail — including the
// direction that would trip a latency-style gate.
func TestYCSBThroughputGainPasses(t *testing.T) {
	_, failed, err := diffY(ycsbRows(1.0), ycsbRows(2.0), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("a 2x throughput gain failed the ycsb gate")
	}
}

// TestYCSBWithinThresholdPasses: -10% noise stays under a 15% gate.
func TestYCSBWithinThresholdPasses(t *testing.T) {
	_, failed, err := diffY(ycsbRows(1.0), ycsbRows(0.90), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("-10% throughput move failed a 15% gate")
	}
}

// TestYCSBSingleNoisyCellTolerated: one collapsed cell out of eight must
// not trip the median gate.
func TestYCSBSingleNoisyCellTolerated(t *testing.T) {
	cur := ycsbRows(1.0)
	cur[0].OpsPerSec /= 4
	_, failed, err := diffY(ycsbRows(1.0), cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("one noisy cell tripped the ycsb median gate")
	}
}

// TestYCSBMissingCellFails: a (workload, threads) cell that vanished is a
// silent total regression.
func TestYCSBMissingCellFails(t *testing.T) {
	cur := ycsbRows(1.0)[:5]
	report, failed, err := diffY(ycsbRows(1.0), cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("dropped ycsb cells passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "MISSING") {
		t.Fatalf("report does not name the missing cells:\n%s", report)
	}
}

// TestZeroBaselineSkipped: sub-tick baseline measurements record 0 and
// must be skipped rather than dividing by zero.
func TestZeroBaselineSkipped(t *testing.T) {
	base := rows(1.0)
	for i := range base {
		base[i].BulkNsKey = 0
	}
	_, failed, err := diff(base, rows(1.0), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("zero baseline produced a failure")
	}
}

// driftRows synthesizes a drift record: timeline windows for both configs
// plus summary rows carrying the recovery ratio.
func driftRows(opsScale, cprScale, recovery float64) []bench.DriftBenchRow {
	var out []bench.DriftBenchRow
	for _, config := range []string{"adaptive", "frozen"} {
		for w := 0; w < 4; w++ {
			out = append(out, bench.DriftBenchRow{
				Dataset: "email", Config: config, Window: w,
				OpsPerSec: 1e6 * opsScale, CPRRecent: 2.0 * cprScale,
			})
		}
		r := bench.DriftBenchRow{
			Dataset: "email", Config: config, Window: -1,
			CPRRecent: 1.8 * cprScale, ScratchCPR: 1.9,
		}
		if config == "adaptive" {
			r.RecoveryRatio = recovery
		}
		out = append(out, r)
	}
	return out
}

// A post-adaptation CPR collapse must fail the drift gate even when
// throughput holds.
func TestDriftCPRDropFails(t *testing.T) {
	base := flattenDrift(driftRows(1.0, 1.0, 0.97))
	cur := flattenDrift(driftRows(1.0, 0.7, 0.97))
	report, failed, err := diffRows(base, cur, driftMetrics, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("-30%% CPR passed the drift gate:\n%s", report)
	}
}

// A throughput collapse fails independently of CPR.
func TestDriftThroughputDropFails(t *testing.T) {
	base := flattenDrift(driftRows(1.0, 1.0, 0.97))
	cur := flattenDrift(driftRows(0.7, 1.0, 0.97))
	_, failed, err := diffRows(base, cur, driftMetrics, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("-30% throughput passed the drift gate")
	}
}

// The recovery ratio lives on a single row; a regression there alone —
// the rebuild no longer reaching a from-scratch dictionary — must fail.
func TestDriftRecoveryRatioDropFails(t *testing.T) {
	base := flattenDrift(driftRows(1.0, 1.0, 0.97))
	cur := flattenDrift(driftRows(1.0, 1.0, 0.60))
	_, failed, err := diffRows(base, cur, driftMetrics, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("recovery-ratio collapse passed the drift gate")
	}
}

// Mild wobble passes; the frozen config's zero recovery ratio is an
// unmeasurable baseline, not a regression.
func TestDriftWithinThresholdPasses(t *testing.T) {
	base := flattenDrift(driftRows(1.0, 1.0, 0.97))
	cur := flattenDrift(driftRows(0.92, 0.95, 0.95))
	report, failed, err := diffRows(base, cur, driftMetrics, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("in-threshold drift record failed:\n%s", report)
	}
}
