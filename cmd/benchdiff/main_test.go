package main

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func rows(scale float64) []bench.EncodeBenchRow {
	schemes := []string{"Single-Char", "Double-Char", "3-Grams", "4-Grams", "ALM", "ALM-Improved"}
	out := make([]bench.EncodeBenchRow, len(schemes))
	for i, s := range schemes {
		out[i] = bench.EncodeBenchRow{
			Dataset:      "email",
			Scheme:       s,
			SerialNsKey:  100 * scale,
			SerialNsChar: 10 * scale,
			BulkNsKey:    20 * scale,
		}
	}
	return out
}

// TestSyntheticRegressionFails is the gate's acceptance demo: a uniform
// +20% latency move across schemes must fail a 15% threshold.
func TestSyntheticRegressionFails(t *testing.T) {
	report, failed, err := diff(rows(1.0), rows(1.20), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("synthetic +20%% regression passed the 15%% gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Fatalf("report does not flag the regression:\n%s", report)
	}
}

// TestWithinThresholdPasses: +10% noise stays under a 15% gate.
func TestWithinThresholdPasses(t *testing.T) {
	_, failed, err := diff(rows(1.0), rows(1.10), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("+10% move failed a 15% gate")
	}
}

// TestSingleNoisyRowTolerated: the median gate must not trip on one
// outlier scheme while the rest hold steady — that is CI noise, not an
// encode-path regression.
func TestSingleNoisyRowTolerated(t *testing.T) {
	cur := rows(1.0)
	cur[0].SerialNsKey *= 2
	cur[0].SerialNsChar *= 2
	cur[0].BulkNsKey *= 2
	_, failed, err := diff(rows(1.0), cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("one noisy row out of six tripped the median gate")
	}
}

// TestImprovementsPass: speedups must never fail the gate.
func TestImprovementsPass(t *testing.T) {
	_, failed, err := diff(rows(1.0), rows(0.5), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("a 2x speedup failed the gate")
	}
}

// TestMissingRowFails: a scheme that vanished from the current record is
// a silent total regression and must fail the gate.
func TestMissingRowFails(t *testing.T) {
	cur := rows(1.0)[:4] // two schemes no longer measured
	report, failed, err := diff(rows(1.0), cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("dropped rows passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "MISSING") {
		t.Fatalf("report does not name the missing rows:\n%s", report)
	}
}

// TestNewRowTolerated: a newly added scheme has no baseline and must not
// fail the gate.
func TestNewRowTolerated(t *testing.T) {
	cur := append(rows(1.0), bench.EncodeBenchRow{
		Dataset: "email", Scheme: "Brand-New",
		SerialNsKey: 1, SerialNsChar: 1, BulkNsKey: 1,
	})
	_, failed, err := diff(rows(1.0), cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("a new unmatched row failed the gate")
	}
}

// TestDisjointRowsError: comparing unrelated records is an input error,
// not a pass.
func TestDisjointRowsError(t *testing.T) {
	base := rows(1.0)
	for i := range base {
		base[i].Dataset = "url"
	}
	if _, _, err := diff(base, rows(1.0), 0.15); err == nil {
		t.Fatal("disjoint row sets did not error")
	}
}

// TestZeroBaselineSkipped: sub-tick baseline measurements record 0 and
// must be skipped rather than dividing by zero.
func TestZeroBaselineSkipped(t *testing.T) {
	base := rows(1.0)
	for i := range base {
		base[i].BulkNsKey = 0
	}
	_, failed, err := diff(base, rows(1.0), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("zero baseline produced a failure")
	}
}
