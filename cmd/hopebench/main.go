// Command hopebench regenerates the tables and figures of the HOPE paper's
// evaluation. Each -fig value corresponds to one paper artifact; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded runs.
//
// Usage:
//
//	hopebench -fig 8 -dataset email -keys 100000
//	hopebench -fig 12 -dataset url -quick
//	hopebench -fig all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	hope "repro"
	"repro/internal/bench"
	"repro/internal/datagen"
	"repro/internal/ycsb"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: table1, 8, 9, 10, 11, 12, 13, 14, 15, 16, ablation, encode, tree, ycsb, drift, scan, restore, all")
	dataset := flag.String("dataset", "email", "dataset: email, wiki, url, all")
	keys := flag.Int("keys", 100000, "number of keys (paper: 14-25M)")
	ops := flag.Int("ops", 100000, "number of workload operations (paper: 10M)")
	sample := flag.Float64("sample", 0.01, "HOPE build sample fraction (paper: 1%)")
	seed := flag.Int64("seed", 42, "dataset seed")
	quick := flag.Bool("quick", false, "shrink dictionary limits for a fast pass")
	threads := flag.String("threads", "1,2,4,8", "goroutine sweep for -fig ycsb (comma-separated)")
	shards := flag.String("shards", "1,4,8,16", "shard-count sweep for -fig scan (comma-separated)")
	workloads := flag.String("workloads", "A,B,C,D,E,F", "YCSB workloads for -fig ycsb (comma-separated)")
	jsonOut := flag.String("json", "", "also write results as JSON to this file (fig=encode, tree, ycsb, drift, scan and restore)")
	flag.Parse()
	if *jsonOut != "" && *fig != "encode" && *fig != "tree" && *fig != "ycsb" && *fig != "drift" && *fig != "scan" && *fig != "restore" {
		fatal(fmt.Errorf("-json only applies to -fig encode, tree, ycsb, drift, scan and restore"))
	}
	threadSweep, err := parseIntList(*threads, "-threads")
	if err != nil {
		fatal(err)
	}
	shardSweep, err := parseIntList(*shards, "-shards")
	if err != nil {
		fatal(err)
	}
	workloadSweep, err := parseWorkloads(*workloads)
	if err != nil {
		fatal(err)
	}

	var datasets []datagen.Kind
	if *dataset == "all" {
		datasets = datagen.Kinds
	} else {
		k, err := datagen.ParseKind(*dataset)
		if err != nil {
			fatal(err)
		}
		datasets = []datagen.Kind{k}
	}
	// Bench rows accumulate across datasets so -dataset all writes one
	// JSON file with every dataset's rows instead of overwriting it per
	// dataset.
	var encodeRows []bench.EncodeBenchRow
	var treeRows []bench.TreeBenchRow
	var ycsbRows []bench.YCSBBenchRow
	var driftRows []bench.DriftBenchRow
	var scanRows []bench.ScanBenchRow
	var restoreRows []bench.RestoreBenchRow
	for _, ds := range datasets {
		cfg := bench.Config{
			Dataset: ds, NumKeys: *keys, NumOps: *ops,
			SampleFrac: *sample, Seed: *seed, Quick: *quick,
		}
		if err := run(*fig, cfg, workloadSweep, threadSweep, shardSweep, &encodeRows, &treeRows, &ycsbRows, &driftRows, &scanRows, &restoreRows); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		var werr error
		switch *fig {
		case "tree":
			werr = bench.WriteTreeBenchJSON(f, treeRows)
		case "ycsb":
			werr = bench.WriteYCSBBenchJSON(f, ycsbRows)
		case "drift":
			werr = bench.WriteDriftBenchJSON(f, driftRows)
		case "scan":
			werr = bench.WriteScanBenchJSON(f, scanRows)
		case "restore":
			werr = bench.WriteRestoreBenchJSON(f, restoreRows)
		default:
			werr = bench.WriteEncodeBenchJSON(f, encodeRows)
		}
		if werr != nil {
			fatal(werr)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// parseWorkloads parses the -workloads sweep ("A,B,C").
func parseWorkloads(s string) ([]ycsb.Kind, error) {
	var out []ycsb.Kind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := ycsb.ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workloads is empty")
	}
	return out, nil
}

// parseIntList parses a comma-separated positive-integer sweep flag
// ("1,2,4,8"), naming the flag in errors.
func parseIntList(s, flagName string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad %s value %q", flagName, part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s is empty", flagName)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hopebench:", err)
	os.Exit(1)
}

func run(fig string, cfg bench.Config, workloads []ycsb.Kind, threads, shards []int, encodeRows *[]bench.EncodeBenchRow, treeRows *[]bench.TreeBenchRow, ycsbRows *[]bench.YCSBBenchRow, driftRows *[]bench.DriftBenchRow, scanRows *[]bench.ScanBenchRow, restoreRows *[]bench.RestoreBenchRow) error {
	switch fig {
	case "all":
		for _, f := range []string{"table1", "8", "9", "10", "11", "12", "13", "14", "15", "16", "ablation", "tree", "ycsb", "drift", "scan", "restore"} {
			if err := run(f, cfg, workloads, threads, shards, encodeRows, treeRows, ycsbRows, driftRows, scanRows, restoreRows); err != nil {
				return err
			}
		}
		return nil
	case "table1":
		return table1()
	case "8":
		return fig8(cfg)
	case "9":
		return fig9(cfg)
	case "10":
		return fig10(cfg)
	case "11":
		return fig11(cfg)
	case "12":
		return fig12(cfg)
	case "13":
		return fig13(cfg)
	case "14":
		return fig14(cfg)
	case "15":
		return fig15(cfg)
	case "16":
		return fig16(cfg)
	case "ablation":
		return ablations(cfg)
	case "encode":
		return encodeBench(cfg, encodeRows)
	case "tree":
		return treeBench(cfg, treeRows)
	case "ycsb":
		return ycsbBench(cfg, workloads, threads, ycsbRows)
	case "drift":
		return driftBench(cfg, driftRows)
	case "scan":
		return scanBench(cfg, shards, scanRows)
	case "restore":
		return restoreBench(cfg, restoreRows)
	}
	return fmt.Errorf("unknown figure %q", fig)
}

// restoreBench runs the restart figure: cold dictionary-build + bulk load
// versus snapshot restore, across schemes, backends and corpus sizes.
func restoreBench(cfg bench.Config, restoreRows *[]bench.RestoreBenchRow) error {
	rows, err := bench.RunFigRestore(cfg, bench.ScanBackends, bench.RestoreSizes(cfg))
	if err != nil {
		return err
	}
	*restoreRows = append(*restoreRows, rows...)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Backend, r.Config, strconv.Itoa(r.Keys),
			bench.F3(r.ColdSec), bench.F3(r.SnapshotSec), bench.F3(r.RestoreSec),
			bench.F(r.Speedup), bench.F3(r.SnapshotMB)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Restart (%s): cold re-encode vs snapshot restore (GOMAXPROCS=%d)",
		cfg.Dataset, runtime.GOMAXPROCS(0)),
		[]string{"Backend", "Config", "Keys", "Cold (s)", "Snapshot (s)", "Restore (s)", "Speedup", "Snap (MB)"}, out)
	return nil
}

// scanBench runs the scan-partitioning figure: YCSB-E throughput, hash vs
// range partitioning, across shard counts.
func scanBench(cfg bench.Config, shards []int, scanRows *[]bench.ScanBenchRow) error {
	rows, err := bench.RunFigScan(cfg, bench.ScanBackends, shards)
	if err != nil {
		return err
	}
	*scanRows = append(*scanRows, rows...)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Backend, r.Config, r.Partition,
			strconv.Itoa(r.Shards),
			bench.F(r.OpsPerSec / 1e6 * 1000), // kops/s
			bench.F(r.AvgScan), bench.F(r.MaxShardFrac)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Scan partitioning (%s): YCSB-E hash vs range ShardedIndex (GOMAXPROCS=%d)",
		cfg.Dataset, runtime.GOMAXPROCS(0)),
		[]string{"Backend", "Config", "Partition", "Shards", "kops/s", "Avg scan", "Max shard frac"}, out)
	return nil
}

// driftBench runs the dictionary-drift adaptation figure: throughput and
// rolling CPR over a distribution-shifting stream, adaptive vs frozen.
func driftBench(cfg bench.Config, driftRows *[]bench.DriftBenchRow) error {
	rows, err := bench.RunFigDrift(cfg)
	if err != nil {
		return err
	}
	*driftRows = append(*driftRows, rows...)
	var out [][]string
	for _, r := range rows {
		win := strconv.Itoa(r.Window)
		ops := bench.F(r.OpsPerSec / 1e6 * 1000) // kops/s
		if r.Window < 0 {
			win, ops = "final", "-"
		}
		rec := "-"
		if r.RecoveryRatio > 0 {
			rec = bench.F(r.RecoveryRatio)
		}
		out = append(out, []string{r.Config, win, strconv.Itoa(r.KeysSeen), ops,
			bench.F(r.CPRRecent), r.State, strconv.Itoa(r.Generation), rec})
	}
	bench.Table(os.Stdout, "Drift adaptation (email): AdaptiveIndex vs frozen dictionary over a distribution shift",
		[]string{"Config", "Window", "Keys", "kops/s", "CPR", "State", "Gen", "Recovery"}, out)
	return nil
}

func ycsbBench(cfg bench.Config, workloads []ycsb.Kind, threads []int, ycsbRows *[]bench.YCSBBenchRow) error {
	rows, err := bench.RunFigYCSB(cfg, bench.YCSBBackends, workloads, threads)
	if err != nil {
		return err
	}
	*ycsbRows = append(*ycsbRows, rows...)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload, r.Backend, r.Config,
			strconv.Itoa(r.Threads), strconv.Itoa(r.Shards),
			bench.F(r.OpsPerSec / 1e6 * 1000), // kops/s
			bench.F3(r.LoadSec)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("YCSB A-F (%s): ShardedIndex throughput (GOMAXPROCS=%d)",
		cfg.Dataset, runtime.GOMAXPROCS(0)),
		[]string{"Workload", "Backend", "Config", "Threads", "Shards", "kops/s", "Load (s)"}, out)
	return nil
}

func treeBench(cfg bench.Config, treeRows *[]bench.TreeBenchRow) error {
	rows, err := bench.RunFigTree(cfg, hope.Backends)
	if err != nil {
		return err
	}
	*treeRows = append(*treeRows, rows...)
	var out [][]string
	for _, r := range rows {
		cpr := "-"
		if r.CPR > 0 {
			cpr = bench.F(r.CPR)
		}
		out = append(out, []string{r.Backend, r.Config,
			bench.F3(r.LoadSec), bench.F(r.PointNs), bench.F(r.ScanNs),
			bench.F(r.BytesPerKey), bench.F3(r.TreeMB), bench.F3(r.DictMB), cpr})
	}
	bench.Table(os.Stdout, fmt.Sprintf("End-to-end trees (%s): hope.Index across backends x schemes", cfg.Dataset),
		[]string{"Backend", "Config", "Load (s)", "Point (ns)", "Scan (ns)",
			"Bytes/key", "Tree (MB)", "Dict (MB)", "CPR"}, out)
	return nil
}

func encodeBench(cfg bench.Config, encodeRows *[]bench.EncodeBenchRow) error {
	rows, err := bench.RunEncodeBench(cfg)
	if err != nil {
		return err
	}
	*encodeRows = append(*encodeRows, rows...)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Scheme, strconv.Itoa(r.DictEntries),
			bench.F(r.SerialNsKey), bench.F(r.SerialNsChar),
			bench.F(r.BulkNsKey), bench.F(r.BulkSpeedup), strconv.Itoa(r.Workers),
			bench.F(r.CPR)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Encode kernels (%s): serial vs parallel bulk", cfg.Dataset),
		[]string{"Scheme", "Entries", "Serial (ns/key)", "Serial (ns/char)",
			"Bulk (ns/key)", "Bulk speedup", "Workers", "CPR"}, out)
	return nil
}

func table1() error {
	var rows [][]string
	for _, r := range bench.Table1() {
		rows = append(rows, []string{r.Scheme, r.Category, r.SymbolSelector, r.CodeAssigner, r.Dictionary})
	}
	bench.Table(os.Stdout, "Table 1: module configuration",
		[]string{"Scheme", "Category", "Symbol Selector", "Code Assigner", "Dictionary"}, rows)
	return nil
}

func fig8(cfg bench.Config) error {
	rows, err := bench.RunFig8(cfg, bench.Fig8Sizes(cfg.Quick))
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		req := "fixed"
		if r.Requested > 0 {
			req = strconv.Itoa(r.Requested)
		}
		out = append(out, []string{r.Scheme.String(), req, strconv.Itoa(r.Entries),
			bench.F(r.CPR), bench.F(r.LatNsChar), bench.F(r.DictMemKB)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Figure 8 (%s): compression microbenchmarks", cfg.Dataset),
		[]string{"Scheme", "Requested", "Entries", "CPR", "Latency (ns/char)", "Dict mem (KB)"}, out)
	return nil
}

func fig9(cfg bench.Config) error {
	rows, err := bench.RunFig9(cfg)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Label,
			bench.F3(r.Stats.SymbolSelect.Seconds()),
			bench.F3(r.Stats.CodeAssign.Seconds()),
			bench.F3(r.Stats.DictBuild.Seconds()),
			bench.F3(r.Stats.Total().Seconds()),
			strconv.Itoa(r.Stats.Entries)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Figure 9 (%s): dictionary build time breakdown", cfg.Dataset),
		[]string{"Scheme", "Symbol select (s)", "Code assign (s)", "Dict build (s)", "Total (s)", "Entries"}, out)
	return nil
}

func fig10(cfg bench.Config) error {
	rows, err := bench.RunFig10(cfg)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		model := "-"
		if r.ModelPredictedReduction != 0 {
			model = bench.Pct(r.ModelPredictedReduction)
		}
		out = append(out, []string{r.Config, bench.F(r.PointNs), bench.F(r.RangeNs),
			bench.F3(r.BuildSec), bench.F(r.TrieHeight), bench.F3(r.MemoryMB), model})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Figure 10 (%s): SuRF under YCSB", cfg.Dataset),
		[]string{"Config", "Point (ns)", "Range (ns)", "Build (s)", "Trie height", "Memory (MB)", "Sec.5 model"}, out)
	return nil
}

func fig11(cfg bench.Config) error {
	rows, err := bench.RunFig11(cfg)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Config, bench.Pct(r.FPRBase), bench.Pct(r.FPRReal8)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Figure 11 (%s): SuRF false positive rate", cfg.Dataset),
		[]string{"Config", "SuRF (Base)", "SuRF-Real8"}, out)
	return nil
}

func fig12(cfg bench.Config) error {
	rows, err := bench.RunFig12(cfg, bench.IndexNames)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Index, r.Config, bench.F(r.PointNs),
			bench.F3(r.TreeMB), bench.F3(r.DictMB), bench.F3(r.MemoryMB), bench.F3(r.LoadSec)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Figure 12 (%s): YCSB-C point queries", cfg.Dataset),
		[]string{"Index", "Config", "Point (ns)", "Tree (MB)", "Dict (MB)", "Total (MB)", "Load (s)"}, out)
	return nil
}

func fig13(cfg bench.Config) error {
	rows, err := bench.RunFig13(cfg, []float64{0.00001, 0.0001, 0.001, 0.01, 0.1, 1.0})
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Scheme.String(), fmt.Sprintf("%g", r.Frac),
			strconv.Itoa(r.Samples), bench.F(r.CPR)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Figure 13 / Appendix A (%s): sample size sensitivity", cfg.Dataset),
		[]string{"Scheme", "Fraction", "Samples", "CPR"}, out)
	return nil
}

func fig14(cfg bench.Config) error {
	rows, err := bench.RunFig14(cfg, []int{1, 2, 32})
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Scheme.String(), strconv.Itoa(r.BatchSize), bench.F(r.LatNsChar)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Figure 14 / Appendix B (%s): batch encoding", cfg.Dataset),
		[]string{"Scheme", "Batch size", "Latency (ns/char)"}, out)
	return nil
}

func fig15(cfg bench.Config) error {
	rows, err := bench.RunFig15(cfg)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Scheme.String(),
			fmt.Sprintf("Dict-%s, Email-%s", r.Dict, r.Eval), bench.F(r.CPR)})
	}
	bench.Table(os.Stdout, "Figure 15 / Appendix C: key distribution changes (email)",
		[]string{"Scheme", "Configuration", "CPR"}, out)
	return nil
}

func fig16(cfg bench.Config) error {
	rows, err := bench.RunFig16(cfg, bench.IndexNames)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Index, r.Config, bench.F(r.RangeNs), bench.F(r.InsertNs)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Figure 16 / Appendix D (%s): YCSB-E ranges and inserts", cfg.Dataset),
		[]string{"Index", "Config", "Range (ns)", "Insert (ns)"}, out)
	return nil
}

func ablations(cfg bench.Config) error {
	w, err := bench.RunAblationWeighting(cfg)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range w {
		out = append(out, []string{r.Scheme.String(), bench.F(r.CPRWeighted), bench.F(r.CPRUnweighted)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Ablation (%s): length-weighted probabilities", cfg.Dataset),
		[]string{"Scheme", "CPR weighted", "CPR unweighted"}, out)

	d, err := bench.RunAblationDictStructure(cfg)
	if err != nil {
		return err
	}
	out = nil
	for _, r := range d {
		out = append(out, []string{r.Scheme.String(), bench.F(r.SpecializedNs),
			bench.F(r.BinarySearchNs), bench.F(r.SpecializedMemKB), bench.F(r.BinarySearchKB)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Ablation (%s): dictionary structure vs binary search", cfg.Dataset),
		[]string{"Scheme", "Table-1 struct (ns/char)", "Binary search (ns/char)", "Struct mem (KB)", "BS mem (KB)"}, out)

	c, err := bench.RunAblationCoder(cfg)
	if err != nil {
		return err
	}
	out = nil
	for _, r := range c {
		out = append(out, []string{r.Scheme.String(), strconv.Itoa(r.Entries),
			bench.F3(r.GWAssignSec), bench.F3(r.HTAssignSec), bench.F(r.CPRGW), bench.F(r.CPRHT)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Ablation (%s): Garsia-Wachs vs O(n²) Hu-Tucker", cfg.Dataset),
		[]string{"Scheme", "Entries", "GW assign (s)", "HT assign (s)", "CPR GW", "CPR HT"}, out)

	re, err := bench.RunAblationRangeEncoding(cfg)
	if err != nil {
		return err
	}
	out = nil
	for _, r := range re {
		out = append(out, []string{r.Scheme.String(), bench.F(r.CPRHT), bench.F(r.CPRRange)})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Ablation (%s): Hu-Tucker vs range encoding", cfg.Dataset),
		[]string{"Scheme", "CPR Hu-Tucker", "CPR range encoding"}, out)
	return nil
}
