// Command hopekeys builds a HOPE dictionary from a sample file and encodes
// keys from stdin, one per line, writing the order-preserving compressed
// form in hex. It demonstrates the standalone-library integration path of
// paper Section 5.
//
// Usage:
//
//	hopekeys -scheme double-char -samples keys.txt < keys.txt
//	hopekeys -scheme 3-grams -dict 65536 -samples keys.txt -stats < more.txt
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

var schemeNames = map[string]core.Scheme{
	"single-char":  core.SingleChar,
	"double-char":  core.DoubleChar,
	"alm":          core.ALM,
	"3-grams":      core.ThreeGrams,
	"4-grams":      core.FourGrams,
	"alm-improved": core.ALMImproved,
}

func main() {
	scheme := flag.String("scheme", "double-char", "compression scheme: single-char, double-char, alm, 3-grams, 4-grams, alm-improved")
	samplePath := flag.String("samples", "", "file of sample keys, one per line (required)")
	dictLimit := flag.Int("dict", 65536, "dictionary entry limit for tunable schemes")
	stats := flag.Bool("stats", false, "print dictionary statistics to stderr")
	decodeMode := flag.Bool("decode", false, "read hex/bits lines (the encode output format) and print the decoded keys")
	flag.Parse()

	s, ok := schemeNames[strings.ToLower(*scheme)]
	if !ok {
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
	if *samplePath == "" {
		fatal(fmt.Errorf("-samples is required"))
	}
	samples, err := readLines(*samplePath)
	if err != nil {
		fatal(err)
	}
	enc, err := core.Build(s, samples, core.Options{DictLimit: *dictLimit})
	if err != nil {
		fatal(err)
	}
	if *stats {
		st := enc.Stats()
		fmt.Fprintf(os.Stderr, "scheme=%v entries=%d dict_mem=%dB build=%v (select=%v assign=%v dict=%v)\n",
			s, enc.NumEntries(), enc.MemoryUsage(), st.Total(), st.SymbolSelect, st.CodeAssign, st.DictBuild)
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if *decodeMode {
		dec, err := core.NewDecoder(enc)
		if err != nil {
			fatal(err)
		}
		for in.Scan() {
			var hexStr string
			var bits int
			if _, err := fmt.Sscanf(in.Text(), "%x/%d", &hexStr, &bits); err != nil {
				fatal(fmt.Errorf("bad encoded line %q: %w", in.Text(), err))
			}
			raw, err := hex.DecodeString(in.Text()[:strings.IndexByte(in.Text(), '/')])
			if err != nil {
				fatal(err)
			}
			key, err := dec.Decode(raw, bits)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(out, "%s\n", key)
		}
		if err := in.Err(); err != nil {
			fatal(err)
		}
		return
	}
	var rawBytes, encBytes int
	var buf []byte
	for in.Scan() {
		key := in.Bytes()
		b, bits := enc.EncodeBits(buf, key)
		fmt.Fprintf(out, "%x/%d\n", b, bits)
		rawBytes += len(key)
		encBytes += len(b)
		buf = b[:0]
	}
	if err := in.Err(); err != nil {
		fatal(err)
	}
	if *stats && encBytes > 0 {
		fmt.Fprintf(os.Stderr, "compressed %d -> %d bytes (CPR %.3f)\n",
			rawBytes, encBytes, float64(rawBytes)/float64(encBytes))
	}
}

func readLines(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out [][]byte
	for sc.Scan() {
		out = append(out, append([]byte(nil), sc.Bytes()...))
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hopekeys:", err)
	os.Exit(1)
}
