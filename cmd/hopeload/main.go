// Command hopeload is the open-loop load client for hopeserve: N
// concurrent connections pacing requests toward an aggregate target QPS
// (open-loop — the schedule does not slow down because the server did,
// so the latency record is free of coordinated omission), a warmup phase
// excluded from the histograms, and HDR-style per-op latency percentiles.
//
//	hopeload -addr 127.0.0.1:7070 -conns 8 -qps 20000 -duration 10s \
//	    -keys 200000 -dataset email -set 0.05
//
// exits non-zero if any reply was a protocol error or a connection died
// mid-run — which is what lets a smoke test assert "N ops, zero errors"
// with an exit code.
//
// With -fig serve it instead produces the serving-layer benchmark record:
// workload mix × connection count × {ShardedIndex, AdaptiveIndex} ×
// {Uncompressed, Double-Char}, each cell a paced run against an
// in-process hopeserve over TCP loopback, written as BENCH_serve.json
// (gated by cmd/benchdiff -mode serve).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/datagen"
	"repro/internal/telemetry"
	"repro/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hopeload: ")
	var (
		fig        = flag.String("fig", "", "benchmark figure to produce: serve (writes -json)")
		addr       = flag.String("addr", "127.0.0.1:7070", "hopeserve address to load")
		conns      = flag.Int("conns", 4, "concurrent connections")
		connList   = flag.String("connlist", "2,8", "-fig serve: connection counts to sweep")
		qps        = flag.Float64("qps", 10000, "aggregate target ops/sec across all connections")
		duration   = flag.Duration("duration", 10*time.Second, "measured phase length")
		warmup     = flag.Duration("warmup", 2*time.Second, "warmup excluded from the record")
		numKeys    = flag.Int("keys", 100000, "keyspace size (must match the server's -preload for a hit-heavy run)")
		dataset    = flag.String("dataset", "email", "generated keyspace: email | wiki | url")
		seed       = flag.Int64("seed", 42, "keyspace and op-mix seed")
		setFrac    = flag.Float64("set", 0.05, "fraction of set ops")
		delFrac    = flag.Float64("del", 0, "fraction of del ops")
		rangeFrac  = flag.Float64("range", 0, "fraction of range ops")
		rangeLimit = flag.Int("rangelimit", 50, "results per range op")
		pipeline   = flag.Int("pipeline", 256, "max outstanding requests per connection")
		jsonPath   = flag.String("json", "", "write the figure record to this file (-fig serve)")
		quick      = flag.Bool("quick", false, "-fig serve: shorter phases and smaller keyspace")
		metricsURL = flag.String("metrics", "", "hopeserve /metrics URL; scraped before and after the run for a server-side report")
		dumpOnly   = flag.Bool("dump-metrics", false, "with -metrics: fetch the exposition once, print it, and exit (no load)")
	)
	flag.Parse()

	if *dumpOnly {
		if *metricsURL == "" {
			log.Fatal("-dump-metrics needs -metrics <url>")
		}
		body, err := telemetry.ScrapeRaw(*metricsURL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(body)
		return
	}

	if *fig == "serve" {
		if err := runFigServe(*connList, *numKeys, *qps, *warmup, *duration, *dataset, *seed, *quick, *jsonPath); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *fig != "" {
		log.Fatalf("unknown -fig %q (want serve)", *fig)
	}

	kind, err := datagen.ParseKind(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	keys := wireSafe(datagen.Generate(kind, *numKeys, *seed))
	var before map[string]float64
	if *metricsURL != "" {
		if before, err = telemetry.Scrape(*metricsURL); err != nil {
			log.Fatalf("scrape before run: %v", err)
		}
	}
	res, err := bench.RunLoad(bench.LoadConfig{
		Addr:       *addr,
		Conns:      *conns,
		TargetQPS:  *qps,
		Duration:   *duration,
		Warmup:     *warmup,
		Keys:       keys,
		SetFrac:    *setFrac,
		DelFrac:    *delFrac,
		RangeFrac:  *rangeFrac,
		RangeLimit: *rangeLimit,
		Seed:       *seed,
		Pipeline:   *pipeline,
	})
	if res != nil {
		printResult(res, *qps)
	}
	if *metricsURL != "" {
		after, serr := telemetry.Scrape(*metricsURL)
		if serr != nil {
			log.Fatalf("scrape after run: %v", serr)
		}
		printServerReport(before, after)
	}
	if err != nil {
		log.Fatal(err)
	}
	if res.ProtoErrors > 0 {
		log.Fatalf("%d protocol errors", res.ProtoErrors)
	}
}

// printServerReport prints the server's own view of the run: per-command
// count deltas between the two scrapes, with the server-side latency
// quantiles (cumulative over the server's lifetime — the client-side
// table above is the per-run record).
func printServerReport(before, after map[string]float64) {
	q := func(name, quantile string) string {
		v := after[name+`_latency_seconds{quantile="`+quantile+`"}`] * 1e6
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	var rows [][]string
	for _, op := range []string{"get", "set", "del", "range", "stats"} {
		name := "hope_server_" + op
		delta := after[name+"_total"] - before[name+"_total"]
		if delta == 0 {
			continue
		}
		rows = append(rows, []string{
			op, strconv.FormatFloat(delta, 'f', 0, 64),
			q(name, "0.5"), q(name, "0.99"), q(name, "0.999"),
		})
	}
	bench.Table(os.Stdout, "Server-side view (scrape delta; quantiles cumulative)",
		[]string{"Op", "Count", "p50 (us)", "p99 (us)", "p999 (us)"}, rows)
	fmt.Printf("server: store_len %.0f, index gets %+.0f, protocol errors %+.0f, connections %+.0f\n",
		after["hope_server_store_len"],
		after["hope_index_get_total"]-before["hope_index_get_total"],
		after["hope_server_protocol_errors_total"]-before["hope_server_protocol_errors_total"],
		after["hope_server_connections_total"]-before["hope_server_connections_total"])
}

func printResult(res *bench.LoadResult, targetQPS float64) {
	fmt.Printf("target %.0f ops/s, achieved %.0f ops/s (%d sent, %d measured, %d protocol errors) over %v\n",
		targetQPS, res.AchievedQPS, res.Sent, res.Recv, res.ProtoErrors, res.Elapsed.Round(time.Millisecond))
	var rows [][]string
	for _, op := range bench.LoadOps {
		h := res.Hist(op)
		if h.Count() == 0 {
			continue
		}
		rows = append(rows, []string{
			op,
			strconv.FormatUint(h.Count(), 10),
			us(h.Percentile(50)), us(h.Percentile(99)), us(h.Percentile(99.9)),
			us(h.Mean()), us(h.Max()),
		})
	}
	bench.Table(os.Stdout, "Latency by op (open-loop, from intended send time)",
		[]string{"Op", "Count", "p50 (us)", "p99 (us)", "p999 (us)", "mean (us)", "max (us)"}, rows)
}

func us(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Nanoseconds())/1e3, 'f', 1, 64)
}

func runFigServe(connList string, numKeys int, qps float64, warmup, duration time.Duration,
	dataset string, seed int64, quick bool, jsonPath string) error {
	conns, err := parseInts(connList)
	if err != nil {
		return err
	}
	kind, err := datagen.ParseKind(dataset)
	if err != nil {
		return err
	}
	cfg := bench.Config{Dataset: kind, NumKeys: numKeys, Seed: seed, Quick: quick}
	if quick {
		cfg.NumKeys = min(numKeys, 20000)
		warmup, duration = warmup/4, duration/4
	}
	rows, err := bench.RunFigServe(cfg, conns, qps, warmup, duration)
	if err != nil {
		return err
	}

	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Store, r.Config, r.Workload, strconv.Itoa(r.Conns), r.Op,
			strconv.FormatUint(r.Count, 10),
			fmt.Sprintf("%.0f", r.AchievedQPS),
			fmt.Sprintf("%.1f", r.P50us), fmt.Sprintf("%.1f", r.P99us), fmt.Sprintf("%.1f", r.P999us),
			strconv.FormatUint(r.ProtoErrors, 10),
		})
	}
	bench.Table(os.Stdout, fmt.Sprintf("Serving latency (%s, target %.0f ops/s, open-loop)", cfg.Dataset, qps),
		[]string{"Store", "Config", "Workload", "Conns", "Op", "Count", "QPS", "p50 (us)", "p99 (us)", "p999 (us)", "Errs"}, out)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteServeBenchJSON(f, rows); err != nil {
			return err
		}
		log.Printf("wrote %s (%d rows)", jsonPath, len(rows))
	}
	return nil
}

func wireSafe(keys [][]byte) [][]byte {
	out := keys[:0]
	for _, k := range keys {
		if server.ValidKey(k) {
			out = append(out, k)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q in %q", part, s)
		}
		out = append(out, n)
	}
	return out, nil
}
