// Command hopeserve serves a hope.Store over TCP behind the compact
// memcached-style text protocol in package server (get/set/del/range/
// stats, pipelined). It is written against the hope.Store interface
// alone — which implementation serves is purely a matter of flags:
//
//	hopeserve -store sharded -shards 16 -scheme Double-Char \
//	    -preload 200000 -dataset email
//	hopeserve -store adaptive -scheme 3-Grams       # lifecycle-managed
//	hopeserve -store index                          # single Index, uncompressed
//
// With -scheme and -preload the dictionary is built from a sample of the
// preloaded keys before serving begins; an adaptive store can instead
// start empty and uncompressed and let its lifecycle build the first
// dictionary online. SIGINT/SIGTERM trigger a graceful drain: stop
// accepting, answer everything in flight, then quiesce and close the
// store within -grace.
//
// With -snapshot-dir the store is crash-safe: a valid snapshot in the
// directory is restored on boot (preload is skipped — the disk image
// wins), -snapshot-every takes periodic snapshots while serving, and the
// drain takes a final one after quiesce, before close. A crash between
// snapshots loses only the writes since the last committed generation;
// it never leaves a partial index.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"time"

	hope "repro"
	"repro/internal/datagen"
	"repro/internal/telemetry"
	"repro/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hopeserve: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "TCP listen address (port 0 picks an ephemeral port)")
		backend  = flag.String("backend", "art", "search tree: art | btree")
		store    = flag.String("store", "sharded", "store implementation: index | sharded | adaptive")
		shards   = flag.Int("shards", 0, "shard count for sharded/adaptive stores (0 = #cores)")
		rangePrt = flag.Bool("range", false, "range-partition the shards (sharded/adaptive stores)")
		scheme   = flag.String("scheme", "none", "compression scheme (Single-Char, Double-Char, 3-Grams, 4-Grams, ALM, ALM-Improved) or none")
		sample   = flag.Float64("sample", 0.02, "fraction of preloaded keys sampled for the dictionary build")
		preload  = flag.Int("preload", 0, "bulk-load this many generated keys before serving")
		dataset  = flag.String("dataset", "email", "generated keyspace: email | wiki | url")
		seed     = flag.Int64("seed", 42, "keyspace and sampling seed")
		maxConns = flag.Int("maxconns", server.DefaultMaxConns, "concurrent connection cap (excess dials queue in the listen backlog)")
		grace    = flag.Duration("grace", 10*time.Second, "drain budget after SIGINT/SIGTERM")
		debug    = flag.String("debug-addr", "", "HTTP debug listen address serving /metrics, /debug/vars, /debug/events and /debug/pprof (empty = disabled)")
		snapDir  = flag.String("snapshot-dir", "", "snapshot directory: restore from it on boot, snapshot into it on drain (empty = no persistence)")
		snapEvry = flag.Duration("snapshot-every", 0, "periodic snapshot interval while serving (0 = drain-time snapshot only; needs -snapshot-dir)")
	)
	flag.Parse()
	if *snapEvry > 0 && *snapDir == "" {
		log.Fatal("-snapshot-every needs -snapshot-dir")
	}

	st, preloaded, err := buildStore(*backend, *store, *shards, *rangePrt, *scheme, *sample, *preload, *dataset, *seed, *snapDir)
	if err != nil {
		log.Fatal(err)
	}

	cfg := server.Config{
		Addr:     *addr,
		MaxConns: *maxConns,
		Logf:     log.Printf,
	}
	if *snapDir != "" {
		p := st.(*hope.Persistent)
		if p.Restored() {
			log.Printf("restored generation %d (%d keys) from %s", p.Generation(), st.Len(), *snapDir)
		}
		// The final image: after quiesce every acknowledged write has
		// landed, so the drain snapshot captures exactly what clients saw.
		cfg.OnDrain = func() error {
			if err := p.Snapshot(); err != nil {
				return fmt.Errorf("drain snapshot: %w", err)
			}
			log.Printf("drain snapshot committed generation %d", p.Generation())
			return nil
		}
		if *snapEvry > 0 {
			go func() {
				tick := time.NewTicker(*snapEvry)
				defer tick.Stop()
				for range tick.C {
					switch err := p.Snapshot(); {
					case err == nil:
						log.Printf("periodic snapshot committed generation %d", p.Generation())
					case errors.Is(err, hope.ErrClosed):
						return // drained; the final snapshot already ran
					default:
						log.Printf("periodic snapshot: %v", err)
					}
				}
			}()
		}
	}
	srv := server.New(st, cfg)
	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	if *debug != "" {
		dln, err := net.Listen("tcp", *debug)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug endpoints on http://%s (/metrics /debug/vars /debug/events /debug/pprof)", dln.Addr())
		go func() {
			if err := http.Serve(dln, telemetry.Handler(srv.Registry(), srv.Trace())); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}
	log.Printf("serving %s/%s (%d keys preloaded) on %s", *store, *scheme, preloaded, srv.Addr())
	if err := srv.RunUntilSignal(*grace, syscall.SIGINT, syscall.SIGTERM); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained cleanly")
}

// buildStore assembles the hope.Open option list the flags describe and
// bulk-loads the generated keyspace. With snapDir the store opens through
// the persistence layer, and a restored snapshot replaces the preload —
// the disk image is the state clients last saw acknowledged. Apart from
// the Persistent assertions behind the -snapshot-dir flag, this command is
// written against the hope.Store interface alone.
func buildStore(backend, store string, shards int, rangePrt bool, scheme string,
	sample float64, preload int, dataset string, seed int64, snapDir string) (hope.Store, int, error) {

	be, err := parseBackend(backend)
	if err != nil {
		return nil, 0, err
	}

	var keys [][]byte
	if preload > 0 {
		kind, err := datagen.ParseKind(dataset)
		if err != nil {
			return nil, 0, err
		}
		all := datagen.Generate(kind, preload, seed)
		keys = keys[:0]
		for _, k := range all {
			if server.ValidKey(k) {
				keys = append(keys, k)
			}
		}
		if len(keys) < len(all) {
			fmt.Fprintf(os.Stderr, "hopeserve: dropped %d non-wire-safe keys from preload\n", len(all)-len(keys))
		}
	}

	// The dictionary: pre-built from a preload sample when one exists, or
	// (adaptive stores only) handed to the lifecycle as the scheme to
	// build online once enough keys have streamed in.
	var opts []hope.Option
	adaptiveOpts := hope.AdaptiveOptions{}
	if !strings.EqualFold(scheme, "none") {
		sc, err := hope.ParseScheme(scheme)
		if err != nil {
			return nil, 0, err
		}
		adaptiveOpts.Scheme = sc
		if len(keys) > 0 {
			enc, err := hope.Build(sc, hope.SampleKeys(keys, sample, seed), hope.Options{})
			if err != nil {
				return nil, 0, err
			}
			opts = append(opts, hope.WithEncoder(enc))
		} else if store != "adaptive" {
			return nil, 0, fmt.Errorf("-scheme %s needs -preload keys to build its dictionary from (or -store adaptive)", scheme)
		}
	}
	switch store {
	case "index":
		if shards != 0 || rangePrt {
			return nil, 0, fmt.Errorf("-store index is single-shard; use -store sharded")
		}
	case "sharded":
		opts = append(opts, hope.WithShards(shards))
		if rangePrt {
			opts = append(opts, hope.WithRangePartitioner(keys))
		}
	case "adaptive":
		opts = append(opts, hope.WithAdaptive(adaptiveOpts))
		if shards != 0 {
			opts = append(opts, hope.WithShards(shards))
		}
		if rangePrt {
			opts = append(opts, hope.WithRangePartitioner(nil))
		}
	default:
		return nil, 0, fmt.Errorf("unknown -store %q (want index, sharded or adaptive)", store)
	}

	if snapDir != "" {
		opts = append(opts, hope.WithSnapshotDir(snapDir))
	}
	st, err := hope.Open(be, opts...)
	if err != nil {
		return nil, 0, err
	}
	if p, ok := st.(*hope.Persistent); ok && p.Restored() {
		return st, 0, nil // the snapshot supersedes the preload
	}
	if len(keys) > 0 {
		if err := st.Bulk(keys, nil); err != nil {
			st.Close()
			return nil, 0, err
		}
	}
	return st, len(keys), nil
}

func parseBackend(name string) (hope.Backend, error) {
	switch strings.ToLower(name) {
	case "art":
		return hope.ART, nil
	case "btree", "b+tree":
		return hope.BTree, nil
	}
	return "", fmt.Errorf("unknown -backend %q (want art or btree)", name)
}
