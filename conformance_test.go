package hope

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"repro/internal/core"
)

// storeConformance is the shared Store contract suite: one table-driven
// harness run against every implementation (Index, ShardedIndex,
// AdaptiveIndex) × partition layout × encoder configuration, replacing the
// per-type copies of the basic point-op/scan/edge-key boilerplate. It is
// self-contained — expected results are computed from a plain Go map and
// sort, not from a reference Index — so it also conformance-tests the
// reference implementation itself. open must return a fresh empty Store.
func storeConformance(t *testing.T, open func(t *testing.T) Store) {
	corpus := adversarialCorpus()

	t.Run("PointOps", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		for i, k := range corpus {
			if err := s.Put(k, uint64(i)); err != nil {
				t.Fatalf("put %q: %v", k, err)
			}
		}
		if got := s.Len(); got != len(corpus) {
			t.Fatalf("Len = %d, want %d", got, len(corpus))
		}
		for i, k := range corpus {
			v, ok := s.Get(k)
			if !ok || v != uint64(i) {
				t.Fatalf("get %q = (%d,%v), want (%d,true)", k, v, ok, i)
			}
		}
		// Overwrites: every third key gets a new value, Len is unchanged.
		for i := 0; i < len(corpus); i += 3 {
			if err := s.Put(corpus[i], uint64(i)+1000); err != nil {
				t.Fatalf("overwrite %q: %v", corpus[i], err)
			}
		}
		if got := s.Len(); got != len(corpus) {
			t.Fatalf("Len after overwrite = %d, want %d", got, len(corpus))
		}
		for i, k := range corpus {
			want := uint64(i)
			if i%3 == 0 {
				want += 1000
			}
			if v, ok := s.Get(k); !ok || v != want {
				t.Fatalf("get %q = (%d,%v), want (%d,true)", k, v, ok, want)
			}
		}
		// Deletes report presence exactly once; absent keys miss cleanly.
		for i := 0; i < len(corpus); i += 2 {
			ok, err := s.Delete(corpus[i])
			if err != nil || !ok {
				t.Fatalf("delete %q = (%v,%v), want (true,nil)", corpus[i], ok, err)
			}
			if ok, err := s.Delete(corpus[i]); err != nil || ok {
				t.Fatalf("re-delete %q = (%v,%v), want (false,nil)", corpus[i], ok, err)
			}
			if _, ok := s.Get(corpus[i]); ok {
				t.Fatalf("get %q found after delete", corpus[i])
			}
		}
		if _, ok := s.Get([]byte("no-such-key-anywhere")); ok {
			t.Fatal("get of never-stored key reported found")
		}
		if ok, err := s.Delete([]byte("no-such-key-anywhere")); err != nil || ok {
			t.Fatalf("delete of never-stored key = (%v,%v), want (false,nil)", ok, err)
		}
	})

	t.Run("EdgeKeys", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		edges := [][]byte{
			{},                   // the empty key
			{0x00}, {0x00, 0x00}, // NUL-run keys
			{0xff}, {0xff, 0xff}, // 0xff-run keys (no prefix successor)
			bytes.Repeat([]byte("k"), 300), // longer than any sampled key
		}
		for i, k := range edges {
			if err := s.Put(k, uint64(i)); err != nil {
				t.Fatalf("put edge %x: %v", k, err)
			}
		}
		for i, k := range edges {
			if v, ok := s.Get(k); !ok || v != uint64(i) {
				t.Fatalf("get edge %x = (%d,%v), want (%d,true)", k, v, ok, i)
			}
		}
		// A full scan (nil bounds) visits exactly the stored keys.
		if n := s.Scan(nil, nil, func([]byte, uint64) bool { return true }); n != len(edges) {
			t.Fatalf("full scan visited %d keys, want %d", n, len(edges))
		}
	})

	t.Run("Bulk", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		keys := append([][]byte{}, corpus...)
		keys = append(keys, corpus[0]) // trailing duplicate: last write wins
		if err := s.Bulk(keys, nil); err != nil {
			t.Fatalf("bulk: %v", err)
		}
		if got := s.Len(); got != len(corpus) {
			t.Fatalf("Len after bulk = %d, want %d", got, len(corpus))
		}
		// nil vals assign positions; the duplicate's last position wins.
		if v, ok := s.Get(corpus[0]); !ok || v != uint64(len(keys)-1) {
			t.Fatalf("get dup key = (%d,%v), want (%d,true)", v, ok, len(keys)-1)
		}
		for i := 1; i < len(corpus); i++ {
			if v, ok := s.Get(corpus[i]); !ok || v != uint64(i) {
				t.Fatalf("get %q = (%d,%v), want (%d,true)", corpus[i], v, ok, i)
			}
		}
	})

	t.Run("Scan", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		ref := loadConformanceRef(t, s, corpus)
		bounds := scanBounds()
		for _, lo := range bounds {
			for _, hi := range append(bounds, nil) {
				wantVals := ref.scan(lo, hi)
				var got []uint64
				n := s.Scan(lo, hi, func(_ []byte, v uint64) bool {
					got = append(got, v)
					return true
				})
				if n != len(wantVals) || !equalVals(got, wantVals) {
					t.Fatalf("scan [%q,%q): got %d vals %v, want %v", lo, hi, n, got, wantVals)
				}
			}
		}
		// Early stop: fn returning false halts the traversal immediately.
		stopped := 0
		n := s.Scan(nil, nil, func([]byte, uint64) bool {
			stopped++
			return stopped < 3
		})
		if n != 3 || stopped != 3 {
			t.Fatalf("early-stopped scan visited %d (callback ran %d), want 3", n, stopped)
		}
	})

	t.Run("ScanPrefix", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		ref := loadConformanceRef(t, s, corpus)
		prefixes := [][]byte{
			{}, []byte("a"), []byte("app"), []byte("apple"), []byte("com.gmail@"),
			[]byte("com."), []byte("z"), []byte("nosuch"), {0xff}, {0x00},
		}
		for _, p := range prefixes {
			wantVals := ref.scanPrefix(p)
			var got []uint64
			n := s.ScanPrefix(p, func(_ []byte, v uint64) bool {
				got = append(got, v)
				return true
			})
			if n != len(wantVals) || !equalVals(got, wantVals) {
				t.Fatalf("scanPrefix %q: got %d vals %v, want %v", p, n, got, wantVals)
			}
		}
	})

	t.Run("PostClose", func(t *testing.T) {
		s := open(t)
		for i, k := range corpus[:32] {
			if err := s.Put(k, uint64(i)); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("second close: %v (Close must be idempotent)", err)
		}
		// A closed store is final: reads keep serving, mutations refuse.
		for i, k := range corpus[:32] {
			if v, ok := s.Get(k); !ok || v != uint64(i) {
				t.Fatalf("get %q after close = (%d,%v), want (%d,true)", k, v, ok, i)
			}
		}
		if err := s.Put([]byte("post-close-key"), 7); !errors.Is(err, ErrClosed) {
			t.Fatalf("put after close: err = %v, want ErrClosed", err)
		}
		if _, ok := s.Get([]byte("post-close-key")); ok {
			t.Fatal("put after close took effect; closed store must be final")
		}
		if _, err := s.Delete(corpus[0]); !errors.Is(err, ErrClosed) {
			t.Fatalf("delete after close: err = %v, want ErrClosed", err)
		}
		if err := s.Bulk([][]byte{[]byte("post-close-bulk")}, nil); !errors.Is(err, ErrClosed) {
			t.Fatalf("bulk after close: err = %v, want ErrClosed", err)
		}
		if n := s.Scan(nil, nil, func([]byte, uint64) bool { return true }); n != 32 {
			t.Fatalf("scan after close visited %d keys, want 32", n)
		}
	})
}

// conformanceRef is the oracle: a sorted copy of the loaded keys with their
// values, queried with plain sort + compare.
type conformanceRef struct {
	keys [][]byte
	vals map[string]uint64
}

func loadConformanceRef(t *testing.T, s Store, corpus [][]byte) *conformanceRef {
	t.Helper()
	ref := &conformanceRef{vals: map[string]uint64{}}
	for i, k := range corpus {
		if err := s.Put(k, uint64(i)); err != nil {
			t.Fatalf("load %q: %v", k, err)
		}
		ref.vals[string(k)] = uint64(i)
	}
	ref.keys = append(ref.keys, corpus...)
	sort.Slice(ref.keys, func(i, j int) bool { return bytes.Compare(ref.keys[i], ref.keys[j]) < 0 })
	return ref
}

// scan returns the values of keys in [lo, hi) in ascending key order (nil
// hi unbounded) — the sequence a conforming Store must emit.
func (r *conformanceRef) scan(lo, hi []byte) []uint64 {
	var out []uint64
	for _, k := range r.keys {
		if bytes.Compare(k, lo) < 0 {
			continue
		}
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			break
		}
		out = append(out, r.vals[string(k)])
	}
	return out
}

func (r *conformanceRef) scanPrefix(p []byte) []uint64 {
	var out []uint64
	for _, k := range r.keys {
		if bytes.HasPrefix(k, p) {
			out = append(out, r.vals[string(k)])
		}
	}
	return out
}

func equalVals(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStoreConformance runs the shared contract suite against all three
// Store implementations × {hash, range} partitioning × {uncompressed,
// Double-Char}, every one constructed through hope.Open — so the matrix
// also covers every dispatch path of the consolidated constructor.
func TestStoreConformance(t *testing.T) {
	encs := testEncoders(t)
	backends := []Backend{ART, BTree}
	configs := []struct {
		name string
		enc  *core.Encoder // template; cloned per store
	}{
		{"Uncompressed", nil},
		{"Double-Char", encs[core.DoubleChar]},
	}
	for _, backend := range backends {
		for _, cfg := range configs {
			cloneEnc := func() *core.Encoder {
				if cfg.enc == nil {
					return nil
				}
				return cfg.enc.Clone()
			}
			impls := []struct {
				name string
				open func(t *testing.T) Store
			}{
				{"Index", func(t *testing.T) Store {
					return mustOpen(t, backend, WithEncoder(cloneEnc()))
				}},
				{"Sharded/hash", func(t *testing.T) Store {
					return mustOpen(t, backend, WithEncoder(cloneEnc()), WithShards(4))
				}},
				{"Sharded/range", func(t *testing.T) Store {
					return mustOpen(t, backend, WithEncoder(cloneEnc()),
						WithShards(4), WithRangePartitioner(adversarialCorpus()))
				}},
				{"Adaptive/hash", func(t *testing.T) Store {
					return mustOpen(t, backend, WithAdaptive(AdaptiveOptions{
						Encoder: cloneEnc(), Shards: 4, Manual: true,
					}))
				}},
				{"Adaptive/range", func(t *testing.T) Store {
					return mustOpen(t, backend, WithAdaptive(AdaptiveOptions{
						Encoder: cloneEnc(), Shards: 4, Manual: true,
						Partition: RangePartitioned,
					}))
				}},
			}
			for _, impl := range impls {
				t.Run(impl.name+"/"+string(backend)+"/"+cfg.name, func(t *testing.T) {
					storeConformance(t, impl.open)
				})
			}
		}
	}
}

func mustOpen(t *testing.T, backend Backend, opts ...Option) Store {
	t.Helper()
	s, err := Open(backend, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestOpenDispatch pins which implementation each option combination
// selects, and the option plumbing into it.
func TestOpenDispatch(t *testing.T) {
	s := mustOpen(t, BTree)
	if _, ok := s.(*Index); !ok {
		t.Fatalf("Open() = %T, want *Index", s)
	}

	s = mustOpen(t, BTree, WithShards(8))
	sh, ok := s.(*ShardedIndex)
	if !ok {
		t.Fatalf("Open(WithShards) = %T, want *ShardedIndex", s)
	}
	if sh.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", sh.NumShards())
	}
	if sh.Partitioner().Ordered() {
		t.Fatal("WithShards alone must select hash partitioning")
	}

	corpus := adversarialCorpus()
	s = mustOpen(t, BTree, WithShards(4), WithRangePartitioner(corpus))
	sh = s.(*ShardedIndex)
	if !sh.Partitioner().Ordered() {
		t.Fatal("WithRangePartitioner must select an ordered partition")
	}
	if got := sh.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}

	// WithRangePartitioner alone implies a sharded store at DefaultShards.
	s = mustOpen(t, BTree, WithRangePartitioner(corpus))
	sh = s.(*ShardedIndex)
	if got := sh.NumShards(); got != DefaultShards() {
		t.Fatalf("NumShards = %d, want DefaultShards() = %d", got, DefaultShards())
	}

	s = mustOpen(t, BTree, WithAdaptive(AdaptiveOptions{Manual: true}), WithShards(4))
	ad, ok := s.(*AdaptiveIndex)
	if !ok {
		t.Fatalf("Open(WithAdaptive) = %T, want *AdaptiveIndex", s)
	}
	if got := ad.NumShards(); got != 4 {
		t.Fatalf("adaptive NumShards = %d, want 4 (WithShards must override)", got)
	}
	defer ad.Close()

	// WithEncoder + WithAdaptive: the encoder becomes generation 0 and the
	// index starts Steady.
	enc := testEncoders(t)[core.DoubleChar].Clone()
	s = mustOpen(t, BTree, WithEncoder(enc), WithAdaptive(AdaptiveOptions{Manual: true}))
	ad = s.(*AdaptiveIndex)
	defer ad.Close()
	if ad.State() != StateSteady {
		t.Fatalf("adaptive with encoder starts %v, want Steady", ad.State())
	}
	if ad.Encoder() == nil {
		t.Fatal("WithEncoder not plumbed into AdaptiveOptions.Encoder")
	}

	// Conflicting encoder specifications are an error, not a silent pick.
	_, err := Open(BTree, WithEncoder(enc), WithAdaptive(AdaptiveOptions{Encoder: enc}))
	if err == nil {
		t.Fatal("Open with both WithEncoder and AdaptiveOptions.Encoder must fail")
	}

	// SuRF stays reachable through Open: bulk-only contract intact.
	s = mustOpen(t, SuRF)
	if err := s.Put([]byte("k"), 1); err == nil {
		t.Fatal("SuRF Put must return ErrImmutableBackend")
	}
	if err := s.Bulk([][]byte{[]byte("k")}, nil); err != nil {
		t.Fatalf("SuRF bulk: %v", err)
	}
	if v, ok := s.Get([]byte("k")); !ok || v != 0 {
		t.Fatalf("SuRF get = (%d,%v), want (0,true)", v, ok)
	}
}
