// emailindex reproduces the paper's motivating scenario: an OLTP-style
// secondary index over email-address keys, where HOPE shrinks the index
// and speeds up point lookups at the same time. It loads the same keys
// into a plain B+tree and HOPE-compressed B+trees/ARTs and compares
// memory and lookup latency.
package main

import (
	"fmt"
	"log"
	"time"

	hope "repro"
	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/datagen"
	"repro/internal/ycsb"
)

const numKeys = 50000

func main() {
	keys := datagen.Generate(datagen.Email, numKeys, 7)
	samples := hope.SampleKeys(keys, 0.01, 42)
	wl := ycsb.GenerateC(50000, len(keys), 9)

	fmt.Printf("%-22s %12s %14s %14s\n", "configuration", "tree bytes", "bytes/key", "lookup ns/op")
	for _, cfg := range []struct {
		name   string
		scheme hope.Scheme
		plain  bool
	}{
		{name: "B+tree uncompressed", plain: true},
		{name: "B+tree + Single-Char", scheme: hope.SingleChar},
		{name: "B+tree + Double-Char", scheme: hope.DoubleChar},
		{name: "B+tree + 3-Grams", scheme: hope.ThreeGrams},
	} {
		var enc *hope.Encoder
		if !cfg.plain {
			var err error
			enc, err = hope.Build(cfg.scheme, samples, hope.Options{})
			if err != nil {
				log.Fatal(err)
			}
		}
		tree := btree.New()
		for i, k := range keys {
			if enc != nil {
				k = enc.Encode(k)
			}
			tree.Insert(k, uint64(i))
		}
		var buf []byte
		start := time.Now()
		hits := 0
		for _, op := range wl.Ops {
			k := keys[op.Key]
			if enc != nil {
				b, _ := enc.EncodeBits(buf, k)
				buf = b[:0]
				k = b
			}
			if _, ok := tree.Get(k); ok {
				hits++
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(len(wl.Ops))
		if hits != len(wl.Ops) {
			log.Fatalf("%s: lost keys (%d/%d hits)", cfg.name, hits, len(wl.Ops))
		}
		mem := tree.MemoryUsage()
		fmt.Printf("%-22s %12d %14.1f %14.1f\n",
			cfg.name, mem, float64(mem)/numKeys, ns)
	}

	// The same workload on ART, the paper's trie representative: the
	// savings are smaller because ART stores partial keys only (Figure 7).
	fmt.Println()
	for _, withHope := range []bool{false, true} {
		name := "ART uncompressed"
		var enc *hope.Encoder
		if withHope {
			name = "ART + Double-Char"
			var err error
			enc, err = hope.Build(hope.DoubleChar, samples, hope.Options{})
			if err != nil {
				log.Fatal(err)
			}
		}
		tree := art.New(art.IndexMode)
		for i, k := range keys {
			if enc != nil {
				k = enc.Encode(k)
			}
			tree.Insert(k, uint64(i))
		}
		fmt.Printf("%-22s %12d bytes   avg radix depth %.1f\n",
			name, tree.MemoryUsage(), tree.AvgLeafDepth())
	}
}
