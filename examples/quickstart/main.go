// Quickstart: build a HOPE encoder from sampled keys and demonstrate its
// three core guarantees — completeness (any key encodes), order
// preservation (compressed keys sort like the originals) and losslessness
// (the optional decoder restores the key).
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	hope "repro"
	"repro/internal/datagen"
)

func main() {
	// A synthetic corpus shaped like the paper's email dataset:
	// host-reversed addresses such as "com.gmail@alice.walker73".
	keys := datagen.Generate(datagen.Email, 50000, 1)

	// HOPE's build phase needs only a small sample: 1% saturates the
	// compression rate (paper Appendix A).
	samples := hope.SampleKeys(keys, 0.01, 42)
	enc, err := hope.Build(hope.DoubleChar, samples, hope.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st := enc.Stats()
	fmt.Printf("built %v dictionary: %d entries, %d bytes, in %v\n",
		enc.Scheme(), enc.NumEntries(), enc.MemoryUsage(), st.Total().Round(1000))

	// Compression: the corpus shrinks by the paper's headline ~1.5-2x.
	fmt.Printf("compression rate on %d keys: %.2fx\n", len(keys), enc.CompressionRate(keys))

	// Order preservation: sort the originals, sort the encodings — the
	// permutations agree.
	sorted := append([][]byte{}, keys[:1000]...)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	encoded := make([][]byte, len(sorted))
	for i, k := range sorted {
		encoded[i] = enc.Encode(k)
	}
	if !sort.SliceIsSorted(encoded, func(i, j int) bool {
		return bytes.Compare(encoded[i], encoded[j]) < 0
	}) {
		log.Fatal("order was not preserved!")
	}
	fmt.Println("order preserved across 1000 sorted keys")

	// Completeness: keys never seen during the build still encode — even
	// arbitrary binary ones.
	novel := []byte("zz.unseen-domain@\x00\xffbinary")
	out, bits := enc.EncodeBits(nil, novel)
	fmt.Printf("novel key %q -> %d bits (%d bytes)\n", novel, bits, len(out))

	// Losslessness: the decoder (never needed by tree queries) restores
	// the original bytes.
	dec, err := hope.NewDecoder(enc)
	if err != nil {
		log.Fatal(err)
	}
	back, err := dec.Decode(out, bits)
	if err != nil || !bytes.Equal(back, novel) {
		log.Fatalf("roundtrip failed: %q %v", back, err)
	}
	fmt.Println("roundtrip decode matches")
}
