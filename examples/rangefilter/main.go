// rangefilter applies HOPE to SuRF, the paper's range-filter scenario: an
// LSM-style system keeps a tiny in-memory filter per run and asks "could
// this key (or range) exist in the run?" before touching storage. HOPE
// shrinks the filter, shortens the trie, and lowers the false positive
// rate at equal suffix bits (paper Figures 10 and 11).
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	hope "repro"
	"repro/internal/datagen"
	"repro/internal/surf"
)

const numKeys = 40000

func main() {
	keys := datagen.Generate(datagen.URL, numKeys, 3)
	samples := hope.SampleKeys(keys, 0.01, 42)

	// Probe keys guaranteed absent.
	present := map[string]bool{}
	for _, k := range keys {
		present[string(k)] = true
	}
	var absent [][]byte
	for _, k := range datagen.Generate(datagen.URL, 20000, 999) {
		if !present[string(k)] {
			absent = append(absent, k)
		}
	}

	fmt.Printf("%-22s %12s %12s %10s %12s\n", "configuration", "filter bytes", "bits/key", "height", "FPR (Real8)")
	for _, cfg := range []struct {
		name   string
		scheme hope.Scheme
		plain  bool
	}{
		{name: "SuRF uncompressed", plain: true},
		{name: "SuRF + Single-Char", scheme: hope.SingleChar},
		{name: "SuRF + Double-Char", scheme: hope.DoubleChar},
		{name: "SuRF + 4-Grams", scheme: hope.FourGrams},
	} {
		var enc *hope.Encoder
		if !cfg.plain {
			var err error
			enc, err = hope.Build(cfg.scheme, samples, hope.Options{})
			if err != nil {
				log.Fatal(err)
			}
		}
		encode := func(ks [][]byte) [][]byte {
			if enc == nil {
				return ks
			}
			out := make([][]byte, len(ks))
			for i, k := range ks {
				out[i] = enc.Encode(k)
			}
			return out
		}
		loaded := sortedUnique(encode(keys))
		f := surf.Build(loaded, surf.Real, 8)

		// Sanity: no false negatives, point or range.
		for _, k := range encode(keys[:2000]) {
			if !f.MayContain(k) {
				log.Fatalf("%s: false negative", cfg.name)
			}
		}
		fpr := f.FalsePositiveRate(encode(absent))
		fmt.Printf("%-22s %12d %12.1f %10.1f %11.2f%%\n",
			cfg.name, f.MemoryUsage(),
			float64(f.MemoryUsage()*8)/float64(len(loaded)),
			f.AvgHeight(), fpr*100)
	}

	// Range filtering with pair-encoded bounds (paper Section 4.2).
	enc, err := hope.Build(hope.DoubleChar, samples, hope.Options{})
	if err != nil {
		log.Fatal(err)
	}
	encoded := make([][]byte, len(keys))
	for i, k := range keys {
		encoded[i] = enc.Encode(k)
	}
	f := surf.Build(sortedUnique(encoded), surf.Real, 8)
	hit := 0
	for _, k := range keys[:5000] {
		hi := append([]byte(nil), k...)
		hi[len(hi)-1]++
		lo2, hi2 := enc.EncodePair(k, hi)
		if f.MayContainRange(lo2, hi2) {
			hit++
		}
	}
	fmt.Printf("\nclosed-range queries over present keys answered true: %d/5000 (must be 5000)\n", hit)
	if hit != 5000 {
		log.Fatal("range false negative!")
	}
}

func sortedUnique(keys [][]byte) [][]byte {
	out := append([][]byte{}, keys...)
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	w := 0
	for i, k := range out {
		if i == 0 || !bytes.Equal(out[w-1], k) {
			out[w] = k
			w++
		}
	}
	return out[:w]
}
