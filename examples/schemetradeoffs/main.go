// schemetradeoffs walks the paper's central design space (Section 3): the
// six schemes trade compression rate against encoding speed, and the right
// choice depends on the workload. The example builds every scheme over
// three datasets and prints the trade-off matrix, ending with the
// Section 5 latency-reduction model that predicts whether a tree gets
// faster under each scheme.
package main

import (
	"fmt"
	"log"
	"time"

	hope "repro"
	"repro/internal/datagen"
)

func main() {
	for _, ds := range datagen.Kinds {
		keys := datagen.Generate(ds, 20000, 5)
		samples := hope.SampleKeys(keys, 0.02, 42)
		fmt.Printf("\n=== %s (avg key %.1f bytes) ===\n", ds, datagen.AvgLen(keys))
		fmt.Printf("%-14s %-6s %8s %14s %12s %12s\n",
			"scheme", "class", "CPR", "encode ns/chr", "dict entries", "build time")
		for _, scheme := range hope.Schemes {
			opt := hope.Options{DictLimit: 1 << 12}
			enc, err := hope.Build(scheme, samples, opt)
			if err != nil {
				log.Fatal(err)
			}
			var total int
			start := time.Now()
			var buf []byte
			for _, k := range keys {
				b, _ := enc.EncodeBits(buf, k)
				buf = b[:0]
				total += len(k)
			}
			nsChar := float64(time.Since(start).Nanoseconds()) / float64(total)
			fmt.Printf("%-14v %-6s %8.2f %14.1f %12d %12v\n",
				scheme, scheme.Category(), enc.CompressionRate(keys), nsChar,
				enc.NumEntries(), enc.Stats().Total().Round(time.Millisecond))
		}
	}

	// Section 5 model: for a trie of height h and average key length l,
	// HOPE helps when 1 - 1/cpr - (l*t_encode)/(h*t_trie) > 0. The paper's
	// SuRF example: l=21.2, h=18.2, t_trie=80.2ns, Double-Char cpr=1.94,
	// t_encode=6.9ns -> 38% predicted reduction.
	l, h, tTrie, cpr, tEnc := 21.2, 18.2, 80.2, 1.94, 6.9
	reduction := 1 - 1/cpr - (l*tEnc)/(h*tTrie)
	fmt.Printf("\nSection 5 worked example: predicted SuRF latency reduction = %.0f%% (paper: 38%%)\n",
		reduction*100)
}
