// streamingindex demonstrates the adaptive dictionary lifecycle (paper
// Section 5 + Appendix C, automated by hope.AdaptiveIndex): the index
// starts empty and uncompressed, reservoir-samples the keys streaming in,
// builds its first dictionary once enough arrived, and — when the key
// distribution later drifts (gmail/yahoo emails giving way to other
// providers, via datagen.DriftStream) — detects the compression-rate drop
// and re-encodes itself in the background, without stopping reads or
// writes. Earlier revisions of this example hand-rolled every one of
// those steps; it is now a consumer of the subsystem it motivated.
package main

import (
	"fmt"
	"log"

	hope "repro"
	"repro/internal/datagen"
	"repro/internal/lifecycle"
)

func main() {
	emails := datagen.Generate(datagen.Email, 60000, 11)
	base, shifted := datagen.SplitEmailByProvider(emails)
	// One stream, drifting from gmail/yahoo to the other providers
	// between 35% and 65% of its length.
	stream := datagen.DriftStream(base, shifted, len(emails), 0.35, 0.65, 7)

	st, err := hope.Open(hope.BTree, hope.WithAdaptive(hope.AdaptiveOptions{
		Scheme: hope.DoubleChar,
		Shards: 8,
		Lifecycle: lifecycle.Config{
			BuildAfter:     10000, // first dictionary after 10K keys
			ReservoirSize:  2000,
			WindowSize:     2000,
			CheckEvery:     256,
			DriftThreshold: 0.10,
		},
	}))
	if err != nil {
		log.Fatal(err)
	}
	// The example reads lifecycle telemetry (Stats, Quiesce, Encoder), so
	// it asserts the concrete type behind the Store that Open returned.
	idx := st.(*hope.AdaptiveIndex)

	report := func(phase string) {
		s := idx.Stats()
		fmt.Printf("%-28s state=%-9v gen=%d keys=%d reservoir=%d buildCPR=%.2f recentCPR=%.2f rebuilds=%d\n",
			phase, s.State, s.Generation, idx.Len(), s.Reservoir, s.BuildCPR, s.RecentCPR, s.Rebuilds)
	}

	for i, k := range stream {
		if err := idx.Put(k, uint64(i)); err != nil {
			log.Fatal(err)
		}
		switch i + 1 {
		case 5000:
			report("phase 1: sampling")
		case 20000:
			idx.Quiesce() // let the first background build finish
			report("phase 2: first dictionary")
		case 40000:
			report("phase 3: drift in progress")
		}
	}
	idx.Quiesce()
	report("phase 4: after adaptation")

	s := idx.Stats()
	if s.Rebuilds < 2 {
		log.Fatalf("expected the first build plus a drift rebuild, got %d", s.Rebuilds)
	}

	// Correctness across the whole lifecycle: every streamed key still
	// answers with its latest value, and prefix scans work mid-life.
	misses := 0
	for i, k := range stream {
		if v, ok := idx.Get(k); !ok || v != uint64(i) {
			misses++
		}
	}
	fmt.Printf("lookups: %d/%d correct across %d dictionary generations\n",
		len(stream)-misses, len(stream), s.Generation+1)
	if misses > 0 {
		log.Fatal("the lifecycle lost keys")
	}
	n := idx.ScanPrefix([]byte("com.gmail@"), func([]byte, uint64) bool { return true })
	fmt.Printf("prefix scan: %d gmail keys visible through the current dictionary\n", n)

	// The payoff: the rebuilt dictionary compresses the shifted traffic
	// at nearly the rate a from-scratch dictionary would.
	scratch, err := hope.Build(hope.DoubleChar, hope.SampleKeys(shifted, 0.02, 1), hope.Options{})
	if err != nil {
		log.Fatal(err)
	}
	adapted := idx.Encoder().Clone().CompressionRate(shifted)
	ideal := scratch.CompressionRate(shifted)
	fmt.Printf("shifted-distribution CPR: adapted %.2f vs from-scratch %.2f (%.0f%% recovered)\n",
		adapted, ideal, 100*adapted/ideal)
	if adapted < 0.9*ideal {
		log.Fatal("adaptation failed to recover the compression rate")
	}
}
