// streamingindex demonstrates HOPE's lifecycle for an initially empty
// index (paper Section 5): keys stream in and are reservoir-sampled; after
// enough arrive, the dictionary is built once and the index is rebuilt
// with compressed keys; later keys — including ones from a drifted
// distribution (Appendix C) — keep encoding correctly with the original
// dictionary, at a reduced compression rate that the application can
// monitor to schedule a rebuild.
package main

import (
	"fmt"
	"log"

	hope "repro"
	"repro/internal/btree"
	"repro/internal/datagen"
)

func main() {
	emails := datagen.Generate(datagen.Email, 60000, 11)
	gmailYahoo, rest := datagen.SplitEmailByProvider(emails)

	// Phase 1: the index starts empty; insert uncompressed while sampling.
	idx := btree.New()
	sampler := hope.NewSampler(2000, 42)
	const rebuildAfter = 20000
	var staged [][]byte
	for i, k := range gmailYahoo[:rebuildAfter] {
		idx.Insert(k, uint64(i))
		sampler.Add(k)
		staged = append(staged, k)
	}
	fmt.Printf("phase 1: %d uncompressed inserts, reservoir holds %d of %d seen\n",
		idx.Len(), sampler.Len(), sampler.Seen())

	// Phase 2: build the dictionary and rebuild the index compressed.
	enc, err := sampler.Build(hope.DoubleChar, hope.Options{})
	if err != nil {
		log.Fatal(err)
	}
	before := idx.MemoryUsage()
	rebuilt := btree.New()
	for i, k := range staged {
		rebuilt.Insert(enc.Encode(k), uint64(i))
	}
	fmt.Printf("phase 2: rebuilt with %v; index %d -> %d bytes (-%.0f%%)\n",
		enc.Scheme(), before, rebuilt.MemoryUsage(),
		100*(1-float64(rebuilt.MemoryUsage())/float64(before)))

	// Phase 3: keep inserting — the same-distribution tail needs no
	// dictionary change, and every lookup still works.
	for i, k := range gmailYahoo[rebuildAfter:] {
		rebuilt.Insert(enc.Encode(k), uint64(rebuildAfter+i))
	}
	misses := 0
	for i, k := range gmailYahoo {
		if v, ok := rebuilt.Get(enc.Encode(k)); !ok || v != uint64(i) {
			misses++
		}
	}
	fmt.Printf("phase 3: %d/%d lookups correct after %d post-build inserts\n",
		len(gmailYahoo)-misses, len(gmailYahoo), len(gmailYahoo)-rebuildAfter)
	if misses > 0 {
		log.Fatal("lookups failed")
	}

	// Phase 4: the key distribution shifts (gmail/yahoo -> other
	// providers). Correctness is guaranteed by completeness; only the
	// compression rate degrades, which the application can monitor.
	same := enc.CompressionRate(gmailYahoo)
	shifted := enc.CompressionRate(rest)
	for i, k := range rest[:5000] {
		rebuilt.Insert(enc.Encode(k), uint64(1_000_000+i))
	}
	ok := true
	for i, k := range rest[:5000] {
		if v, found := rebuilt.Get(enc.Encode(k)); !found || v != uint64(1_000_000+i) {
			ok = false
		}
	}
	fmt.Printf("phase 4: distribution shift: CPR %.2f (original) vs %.2f (shifted); drifted inserts correct: %v\n",
		same, shifted, ok)
	if !ok {
		log.Fatal("shifted keys broke the index")
	}
	if shifted < 1 {
		fmt.Println("         (shifted CPR < original: schedule a rebuild during maintenance)")
	}
}
