// Package hope is the public API of this repository: a from-scratch Go
// implementation of HOPE, the High-speed Order-Preserving Encoder for
// in-memory search trees (Zhang et al., "Order-Preserving Key Compression
// for In-Memory Search Trees", SIGMOD 2020).
//
// HOPE compresses string keys through a small entropy dictionary while
// preserving their lexicographic order, so the compressed keys can be
// stored in any ordered search tree (B+tree, trie, radix tree, filter) and
// still answer point and range queries correctly. Typical use:
//
//	samples := hope.SampleKeys(keys, 0.01, 42)       // 1% sample
//	enc, err := hope.Build(hope.DoubleChar, samples, hope.Options{})
//	ck := enc.Encode(key)                            // order-preserving
//
// Six compression schemes are available, trading compression rate against
// encoding speed (paper Section 3.3): SingleChar, DoubleChar, ALM,
// ThreeGrams, FourGrams and ALMImproved.
//
// The repository also contains the five search trees the paper evaluates
// (SuRF, ART, HOT, B+tree, Prefix B+tree) under internal/, composed with
// the encoder by the Index facade (one Put/Get/Delete/Scan/Bulk interface
// with transparent key compression and encoded range queries), by
// ShardedIndex, the lock-striped concurrent serving layer over the same
// backends (shared read-only dictionary, zero-alloc point reads, merged
// encoded scans), and by AdaptiveIndex, which automates the dictionary
// lifecycle the paper leaves to the application — online sampling, drift
// detection, and background re-encode migration to a new-generation
// dictionary without blocking traffic — plus a YCSB A-F workload driver
// and a benchmark harness regenerating every figure of the paper's
// evaluation; see DESIGN.md and EXPERIMENTS.md.
package hope

import (
	"math/rand"

	"repro/internal/core"
)

// Scheme identifies a HOPE compression scheme.
type Scheme = core.Scheme

// The six published schemes (paper Table 1).
const (
	// SingleChar exploits zeroth-order byte entropy; fastest encoder.
	SingleChar = core.SingleChar
	// DoubleChar exploits first-order entropy; the paper's best overall
	// latency/compression trade-off.
	DoubleChar = core.DoubleChar
	// ALM is Antoshenkov's variable-interval scheme with fixed codes.
	ALM = core.ALM
	// ThreeGrams compresses frequent 3-byte patterns.
	ThreeGrams = core.ThreeGrams
	// FourGrams compresses frequent 4-byte patterns.
	FourGrams = core.FourGrams
	// ALMImproved adds suffix-only statistics and Hu-Tucker codes to ALM;
	// highest compression, slowest encoder.
	ALMImproved = core.ALMImproved
)

// Schemes lists all supported schemes in the paper's order.
var Schemes = core.Schemes

// Options tunes the build phase; the zero value gives the paper defaults
// (64K dictionary limit, length-weighted probabilities, Garsia-Wachs code
// assignment).
type Options = core.Options

// Encoder compresses keys order-preservingly. Except for EncodeAll, it is
// not safe for concurrent use; wrap it in a ConcurrentEncoder (dictionary
// lookups are read-only, only the bit-buffer state needs isolating).
// Encoding runs through a dictionary-specialized kernel captured at build
// time — an allocation-free fused lookup+append loop with no interface
// dispatch per symbol.
type Encoder = core.Encoder

// ConcurrentEncoder is a goroutine-safe encoder over a shared dictionary;
// use it when many request-handling goroutines encode against one index.
type ConcurrentEncoder = core.ConcurrentEncoder

// NewConcurrentEncoder wraps an encoder for concurrent use. The wrapped
// encoder must no longer be used directly.
func NewConcurrentEncoder(e *Encoder) *ConcurrentEncoder {
	return core.NewConcurrentEncoder(e)
}

// EncodeAll bulk-encodes keys with enc across GOMAXPROCS workers, returning
// the padded encodings as slices of a single backing buffer. This is the
// fast path for loading a search tree: contiguous sorted runs are sharded
// across workers with one bit appender each. Safe for concurrent use.
func EncodeAll(enc *Encoder, keys [][]byte) [][]byte { return enc.EncodeAll(keys) }

// BuildStats is the build-phase time breakdown (paper Figure 9).
type BuildStats = core.BuildStats

// Decoder reconstructs original keys from encoded bits; search-tree
// queries never need it, but compression is lossless.
type Decoder = core.Decoder

// Build runs HOPE's build phase on a list of sampled keys and returns an
// encoder. A 1% sample of the indexed keys saturates the compression rate
// for every scheme (paper Appendix A).
func Build(scheme Scheme, samples [][]byte, opt Options) (*Encoder, error) {
	return core.Build(scheme, samples, opt)
}

// NewDecoder builds the optional decoder for an encoder's dictionary.
func NewDecoder(e *Encoder) (*Decoder, error) { return core.NewDecoder(e) }

// Sampler reservoir-samples keys arriving at an initially empty tree, the
// paper's Section 5 integration path: accumulate samples during inserts,
// build the dictionary once enough arrived, then rebuild the tree with
// compressed keys.
type Sampler = core.Sampler

// NewSampler returns a reservoir holding at most capacity keys.
func NewSampler(capacity int, seed int64) *Sampler { return core.NewSampler(capacity, seed) }

// SampleKeys returns a deterministic random sample of about frac*len(keys)
// keys (at least one when keys is non-empty), the input HOPE's build phase
// expects.
func SampleKeys(keys [][]byte, frac float64, seed int64) [][]byte {
	if len(keys) == 0 {
		return nil
	}
	n := int(frac * float64(len(keys)))
	if n < 1 {
		n = 1
	}
	if n > len(keys) {
		n = len(keys)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(keys))[:n]
	out := make([][]byte, n)
	for i, j := range idx {
		out[i] = keys[j]
	}
	return out
}
