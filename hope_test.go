package hope_test

import (
	"bytes"
	"sort"
	"testing"

	hope "repro"
	"repro/internal/datagen"
)

func TestFacadeEndToEnd(t *testing.T) {
	keys := datagen.Generate(datagen.Email, 5000, 1)
	samples := hope.SampleKeys(keys, 0.01, 42)
	if len(samples) == 0 || len(samples) > len(keys) {
		t.Fatalf("sample size %d", len(samples))
	}
	for _, scheme := range hope.Schemes {
		enc, err := hope.Build(scheme, samples, hope.Options{DictLimit: 1 << 10})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if cpr := enc.CompressionRate(keys); cpr <= 1 {
			t.Fatalf("%v: CPR %.2f", scheme, cpr)
		}
		// Order preservation through the façade.
		sorted := append([][]byte{}, keys[:500]...)
		sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
		var prev []byte
		for _, k := range sorted {
			out := enc.Encode(k)
			if prev != nil && bytes.Compare(prev, out) > 0 {
				t.Fatalf("%v: order violated", scheme)
			}
			prev = out
		}
		// Lossless roundtrip through the façade.
		dec, err := hope.NewDecoder(enc)
		if err != nil {
			t.Fatal(err)
		}
		buf, bits := enc.EncodeBits(nil, keys[0])
		back, err := dec.Decode(buf, bits)
		if err != nil || !bytes.Equal(back, keys[0]) {
			t.Fatalf("%v: roundtrip", scheme)
		}
	}
}

// TestFacadeBulkAndConcurrent covers the public bulk-encode surface:
// EncodeAll matches per-key Encode, and a ConcurrentEncoder built through
// the façade agrees with both.
func TestFacadeBulkAndConcurrent(t *testing.T) {
	keys := datagen.Generate(datagen.Email, 3000, 3)
	samples := hope.SampleKeys(keys, 0.02, 42)
	enc, err := hope.Build(hope.DoubleChar, samples, hope.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bulk := hope.EncodeAll(enc, keys)
	if len(bulk) != len(keys) {
		t.Fatalf("EncodeAll returned %d results", len(bulk))
	}
	ce := hope.NewConcurrentEncoder(enc)
	for i, k := range keys[:200] {
		want := ce.Encode(k)
		if !bytes.Equal(bulk[i], want) {
			t.Fatalf("EncodeAll diverged on %q", k)
		}
	}
	bulk2 := ce.EncodeAll(keys[:100])
	for i := range bulk2 {
		if !bytes.Equal(bulk2[i], bulk[i]) {
			t.Fatal("ConcurrentEncoder.EncodeAll diverged")
		}
	}
}

func TestSampleKeys(t *testing.T) {
	keys := datagen.Generate(datagen.Wiki, 1000, 2)
	s := hope.SampleKeys(keys, 0.1, 7)
	if len(s) != 100 {
		t.Fatalf("sample size %d, want 100", len(s))
	}
	// Deterministic.
	s2 := hope.SampleKeys(keys, 0.1, 7)
	for i := range s {
		if !bytes.Equal(s[i], s2[i]) {
			t.Fatal("sampling not deterministic")
		}
	}
	// Bounds.
	if got := hope.SampleKeys(keys, 0, 1); len(got) != 1 {
		t.Fatal("minimum one sample")
	}
	if got := hope.SampleKeys(keys, 99, 1); len(got) != len(keys) {
		t.Fatal("capped at corpus size")
	}
	if hope.SampleKeys(nil, 0.5, 1) != nil {
		t.Fatal("empty corpus")
	}
}
