package hope

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/hot"
	"repro/internal/prefixbtree"
	"repro/internal/surf"
)

// Backend names one of the five search trees the paper evaluates and
// hope.Index can wrap.
type Backend string

const (
	// ART is the adaptive radix tree (Leis et al.).
	ART Backend = "ART"
	// HOT is the height-optimized trie (Binna et al.).
	HOT Backend = "HOT"
	// SuRF is the succinct range filter in front of a sorted static run;
	// it is bulk-loaded and immutable (Put and Delete return
	// ErrImmutableBackend).
	SuRF Backend = "SuRF"
	// BTree is the B+tree.
	BTree Backend = "B+tree"
	// PrefixBTree is the prefix-compressed B+tree.
	PrefixBTree Backend = "Prefix B+tree"
)

// Backends lists every facade backend in the paper's order.
var Backends = []Backend{ART, HOT, SuRF, BTree, PrefixBTree}

// ErrImmutableBackend is returned by Put and Delete on bulk-only backends
// (SuRF builds a succinct static structure that cannot be updated in
// place).
var ErrImmutableBackend = errors.New("hope: backend is immutable; load it with Bulk")

// Index is the unified compressed-index facade: one of the five search
// trees behind a single Put/Get/Delete/Scan/Bulk interface, with an
// optional HOPE encoder applied transparently to every key. With a nil
// encoder the Index stores keys uncompressed — the paper's baseline
// configuration and the reference the differential tests compare encoded
// scans against.
//
// All keys the caller passes are original (uncompressed) keys; the facade
// encodes points and translates range bounds into encoded space (see
// Scan and ScanPrefix for how the order-preserving guarantees compose).
// Stored keys handed to scan callbacks are in stored (encoded) form; pair
// the Index with a Decoder if originals must be reconstructed, or carry
// the association through the value.
//
// An Index is not safe for concurrent use (the underlying trees and the
// encoder's bit buffer are single-writer); wrap it with external locking,
// or use ShardedIndex, the lock-striped serving layer that shares the
// read-only dictionary across shards with one encoder clone per shard.
type Index struct {
	backend Backend
	be      indexBackend
	enc     *core.Encoder

	// maxKeyLen tracks the longest original key ever stored; ScanPrefix
	// feeds it to the encoder's interval-ceiling bound so the encoded
	// upper bound dominates every stored continuation of the prefix.
	maxKeyLen int

	closed bool // set by Close; mutations refused afterwards

	buf []byte // scratch for point-operation encodes
}

// NewIndex wraps the named backend. enc may be nil for an uncompressed
// index; otherwise every key is encoded with it transparently. The
// encoder is captured by reference and its point-encode state is
// mutable, so an encoder may be shared between Index instances only as
// long as all of them are driven from one goroutine; concurrent shards
// need one encoder each (dictionaries are read-only, so rebuilding is
// cheap — or encode externally via a ConcurrentEncoder and use nil).
//
// Deprecated: use Open(backend, WithEncoder(enc)), which returns the same
// index behind the unified Store interface.
func NewIndex(backend Backend, enc *core.Encoder) (*Index, error) {
	be, err := newIndexBackend(backend)
	if err != nil {
		return nil, err
	}
	return &Index{backend: backend, be: be, enc: enc}, nil
}

// newIndexBackend constructs the named search tree; shared by Index and by
// ShardedIndex (one backend per shard).
func newIndexBackend(backend Backend) (indexBackend, error) {
	switch backend {
	case ART:
		return &artBackend{t: art.New(art.IndexMode)}, nil
	case HOT:
		return &hotBackend{t: hot.New()}, nil
	case SuRF:
		return &surfBackend{}, nil
	case BTree:
		return &btreeBackend{t: btree.New()}, nil
	case PrefixBTree:
		return &prefixBackend{t: prefixbtree.New()}, nil
	}
	return nil, fmt.Errorf("hope: unknown backend %q", backend)
}

// Backend returns the wrapped tree's name.
func (x *Index) Backend() Backend { return x.backend }

// Encoder returns the encoder applied to keys (nil when uncompressed).
func (x *Index) Encoder() *core.Encoder { return x.enc }

// Len returns the number of stored keys.
func (x *Index) Len() int { return x.be.length() }

// MemoryUsage returns the modeled footprint in bytes of the tree plus the
// encoder's dictionary — the paper's reported metric ("HOPE size
// included").
func (x *Index) MemoryUsage() int {
	m := x.be.memory()
	if x.enc != nil {
		m += x.enc.MemoryUsage()
	}
	return m
}

// TreeMemoryUsage returns the tree's modeled footprint alone.
func (x *Index) TreeMemoryUsage() int { return x.be.memory() }

// encodePoint encodes key into the reusable scratch buffer; the result is
// only valid until the next point operation.
func (x *Index) encodePoint(key []byte) []byte {
	if x.enc == nil {
		return key
	}
	b, _ := x.enc.EncodeBits(x.buf, key)
	x.buf = b[:0]
	return b
}

// encodeOwned returns an encoded copy the backend may retain.
func (x *Index) encodeOwned(key []byte) []byte {
	if x.enc == nil {
		return append([]byte(nil), key...)
	}
	return x.enc.Encode(key)
}

func (x *Index) trackLen(key []byte) {
	if len(key) > x.maxKeyLen {
		x.maxKeyLen = len(key)
	}
}

// Put inserts or overwrites one key. Bulk is the fast path for loading
// many keys at once (it runs the parallel encoder and, for SuRF, is the
// only way to populate the index).
func (x *Index) Put(key []byte, val uint64) error {
	if x.closed {
		return ErrClosed
	}
	x.trackLen(key)
	return x.be.insert(x.encodeOwned(key), val)
}

// Get returns the value stored under key.
func (x *Index) Get(key []byte) (uint64, bool) {
	return x.be.get(x.encodePoint(key))
}

// Delete removes key, reporting whether it was present.
func (x *Index) Delete(key []byte) (bool, error) {
	if x.closed {
		return false, ErrClosed
	}
	return x.be.remove(x.encodePoint(key))
}

// Bulk loads keys[i] -> vals[i] through the parallel bulk-encode path. A
// nil vals assigns each key its position. Keys need not be sorted. For
// the SuRF backend this both builds the filter and retains the sorted
// encoded run it filters for.
func (x *Index) Bulk(keys [][]byte, vals []uint64) error {
	if x.closed {
		return ErrClosed
	}
	if vals != nil && len(vals) != len(keys) {
		return fmt.Errorf("hope: %d keys but %d values", len(keys), len(vals))
	}
	if vals == nil {
		vals = make([]uint64, len(keys))
		for i := range vals {
			vals[i] = uint64(i)
		}
	}
	for _, k := range keys {
		x.trackLen(k)
	}
	var encoded [][]byte
	if x.enc != nil {
		encoded = x.enc.EncodeAll(keys)
	} else {
		encoded = copyAll(keys)
	}
	return x.be.bulk(encoded, vals)
}

// copyAll deep-copies keys into slices of one backing array — the
// uncompressed bulk-load path (backends retain keys and callers may reuse
// their buffers).
func copyAll(keys [][]byte) [][]byte {
	backing := make([]byte, 0, totalLen(keys))
	out := make([][]byte, len(keys))
	for i, k := range keys {
		start := len(backing)
		backing = append(backing, k...)
		out[i] = backing[start:len(backing):len(backing)]
	}
	return out
}

func totalLen(keys [][]byte) int {
	n := 0
	for _, k := range keys {
		n += len(k)
	}
	return n
}

// Scan visits, in ascending original-key order, every stored key k with
// lo <= k < hi (both bounds in original key space; a nil hi is unbounded)
// and returns how many keys it visited. fn receives the stored (encoded)
// key and may stop the scan by returning false.
//
// Both bounds are complete keys, so they translate exactly: encoding is
// order-preserving, hence enc(lo) <= enc(k) < enc(hi) holds for stored
// keys precisely when lo <= k < hi holds for the originals (the
// zero-padding weak-order edge documented in DESIGN.md is the only
// exception).
func (x *Index) Scan(lo, hi []byte, fn func(key []byte, val uint64) bool) int {
	var loEnc, hiEnc []byte
	if x.enc != nil {
		loEnc = x.enc.EncodeBound(lo)
		if loEnc == nil {
			loEnc = []byte{}
		}
		hiEnc = x.enc.EncodeBound(hi)
	} else {
		loEnc, hiEnc = lo, hi
	}
	return x.scanEncoded(loEnc, hiEnc, false, fn)
}

// ScanPrefix visits every stored key that starts with prefix, in
// ascending order, and returns how many keys it visited. In encoded space
// a prefix is generally not dictionary-complete, so the upper bound runs
// through the encoder's interval-ceiling construction (EncodePrefix): the
// lower bound is the exact encoding of the prefix and the upper bound is
// the smallest encoded string the facade can prove to dominate every
// stored key carrying the prefix.
func (x *Index) ScanPrefix(prefix []byte, fn func(key []byte, val uint64) bool) int {
	if x.enc != nil {
		maxLen := x.maxKeyLen
		if len(prefix) > maxLen {
			maxLen = len(prefix)
		}
		lo, hi := x.enc.EncodePrefix(prefix, maxLen)
		return x.scanEncoded(lo, hi, true, fn)
	}
	// Uncompressed: the successor prefix (last non-0xff byte bumped, 0xff
	// run stripped) is the exclusive upper bound; an all-0xff prefix has
	// no successor and the range is unbounded above.
	hi := prefixSuccessor(prefix)
	return x.scanEncoded(prefix, hi, false, fn)
}

func (x *Index) scanEncoded(lo, hi []byte, hiIncl bool, fn func(key []byte, val uint64) bool) int {
	n := 0
	x.be.scan(lo, hi, hiIncl, func(k []byte, v uint64) bool {
		n++
		return fn(k, v)
	})
	return n
}

// prefixSuccessor returns the smallest byte string greater than every
// string with the given prefix, or nil if none exists (all-0xff prefixes).
func prefixSuccessor(p []byte) []byte {
	i := len(p) - 1
	for ; i >= 0 && p[i] == 0xff; i-- {
	}
	if i < 0 {
		return nil
	}
	s := append([]byte(nil), p[:i+1]...)
	s[i]++
	return s
}

// indexBackend adapts one search tree to the facade. Keys at this layer
// are already in stored (encoded) form.
type indexBackend interface {
	insert(k []byte, v uint64) error
	bulk(keys [][]byte, vals []uint64) error
	get(k []byte) (uint64, bool)
	remove(k []byte) (bool, error)
	// scan visits stored keys in [lo, hi) byte order ([lo, hi] when
	// hiIncl; nil hi unbounded) until fn returns false.
	scan(lo, hi []byte, hiIncl bool, fn func(k []byte, v uint64) bool)
	memory() int
	length() int
}

// insertLoop implements bulk for the mutable trees.
func insertLoop(be indexBackend, keys [][]byte, vals []uint64) error {
	for i, k := range keys {
		if err := be.insert(k, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

type artBackend struct{ t *art.Tree }

func (b *artBackend) insert(k []byte, v uint64) error     { b.t.Insert(k, v); return nil }
func (b *artBackend) bulk(ks [][]byte, vs []uint64) error { return insertLoop(b, ks, vs) }
func (b *artBackend) get(k []byte) (uint64, bool)         { return b.t.Get(k) }
func (b *artBackend) remove(k []byte) (bool, error)       { return b.t.Delete(k), nil }
func (b *artBackend) memory() int                         { return b.t.MemoryUsage() }
func (b *artBackend) length() int                         { return b.t.Len() }
func (b *artBackend) scan(lo, hi []byte, incl bool, fn func([]byte, uint64) bool) {
	b.t.Range(lo, hi, incl, fn)
}

type hotBackend struct{ t *hot.Tree }

func (b *hotBackend) insert(k []byte, v uint64) error     { b.t.Insert(k, v); return nil }
func (b *hotBackend) bulk(ks [][]byte, vs []uint64) error { return insertLoop(b, ks, vs) }
func (b *hotBackend) get(k []byte) (uint64, bool)         { return b.t.Get(k) }
func (b *hotBackend) remove(k []byte) (bool, error)       { return b.t.Delete(k), nil }
func (b *hotBackend) memory() int                         { return b.t.MemoryUsage() }
func (b *hotBackend) length() int                         { return b.t.Len() }
func (b *hotBackend) scan(lo, hi []byte, incl bool, fn func([]byte, uint64) bool) {
	b.t.Range(lo, hi, incl, fn)
}

type btreeBackend struct{ t *btree.Tree }

func (b *btreeBackend) insert(k []byte, v uint64) error     { b.t.Insert(k, v); return nil }
func (b *btreeBackend) bulk(ks [][]byte, vs []uint64) error { return insertLoop(b, ks, vs) }
func (b *btreeBackend) get(k []byte) (uint64, bool)         { return b.t.Get(k) }
func (b *btreeBackend) remove(k []byte) (bool, error)       { return b.t.Delete(k), nil }
func (b *btreeBackend) memory() int                         { return b.t.MemoryUsage() }
func (b *btreeBackend) length() int                         { return b.t.Len() }
func (b *btreeBackend) scan(lo, hi []byte, incl bool, fn func([]byte, uint64) bool) {
	b.t.Range(lo, hi, incl, fn)
}

type prefixBackend struct{ t *prefixbtree.Tree }

func (b *prefixBackend) insert(k []byte, v uint64) error     { b.t.Insert(k, v); return nil }
func (b *prefixBackend) bulk(ks [][]byte, vs []uint64) error { return insertLoop(b, ks, vs) }
func (b *prefixBackend) get(k []byte) (uint64, bool)         { return b.t.Get(k) }
func (b *prefixBackend) remove(k []byte) (bool, error)       { return b.t.Delete(k), nil }
func (b *prefixBackend) memory() int                         { return b.t.MemoryUsage() }
func (b *prefixBackend) length() int                         { return b.t.Len() }
func (b *prefixBackend) scan(lo, hi []byte, incl bool, fn func([]byte, uint64) bool) {
	b.t.Range(lo, hi, incl, fn)
}

// surfBackend is SuRF in its production role: a succinct filter in front
// of a sorted run (as in an LSM level). Bulk sorts the encoded keys,
// builds a SuRF-Real8 over them and retains the run; Get consults the
// filter before binary-searching the run, and scans short-circuit through
// MayIntersect. The backend is exact (the run is authoritative) and
// immutable.
type surfBackend struct {
	filter *surf.Filter
	keys   [][]byte
	vals   []uint64
}

func (b *surfBackend) insert([]byte, uint64) error { return ErrImmutableBackend }
func (b *surfBackend) remove([]byte) (bool, error) { return false, ErrImmutableBackend }

func (b *surfBackend) bulk(keys [][]byte, vals []uint64) error {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		return bytes.Compare(keys[idx[i]], keys[idx[j]]) < 0
	})
	b.keys = b.keys[:0]
	b.vals = b.vals[:0]
	for _, i := range idx {
		// Last write wins on duplicate stored keys, matching the mutable
		// backends' overwrite semantics.
		if n := len(b.keys); n > 0 && bytes.Equal(b.keys[n-1], keys[i]) {
			b.vals[n-1] = vals[i]
			continue
		}
		b.keys = append(b.keys, keys[i])
		b.vals = append(b.vals, vals[i])
	}
	b.filter = surf.Build(b.keys, surf.Real, 8)
	return nil
}

func (b *surfBackend) get(k []byte) (uint64, bool) {
	if b.filter == nil || !b.filter.MayContain(k) {
		return 0, false
	}
	i := sort.Search(len(b.keys), func(i int) bool { return bytes.Compare(b.keys[i], k) >= 0 })
	if i < len(b.keys) && bytes.Equal(b.keys[i], k) {
		return b.vals[i], true
	}
	return 0, false
}

func (b *surfBackend) scan(lo, hi []byte, incl bool, fn func([]byte, uint64) bool) {
	if b.filter == nil || !b.filter.MayIntersect(lo, hi, incl) {
		return
	}
	i := sort.Search(len(b.keys), func(i int) bool { return bytes.Compare(b.keys[i], lo) >= 0 })
	for ; i < len(b.keys); i++ {
		if hi != nil {
			if c := bytes.Compare(b.keys[i], hi); c > 0 || (c == 0 && !incl) {
				return
			}
		}
		if !fn(b.keys[i], b.vals[i]) {
			return
		}
	}
}

func (b *surfBackend) memory() int {
	m := 0
	if b.filter != nil {
		m = b.filter.MemoryUsage()
	}
	// The run itself: key bytes plus slice headers and values.
	for _, k := range b.keys {
		m += len(k) + 24
	}
	return m + len(b.vals)*8
}

func (b *surfBackend) length() int { return len(b.keys) }
