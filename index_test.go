package hope

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
)

// ---------------------------------------------------------------------------
// Fixtures: adversarial corpus + one encoder per tested scheme.
// ---------------------------------------------------------------------------

// adversarialCorpus builds the key set the differential scans run over:
// dense shared prefixes, keys that are proper prefixes of other keys, the
// empty key, 0xff runs, plus deterministic email-ish and binary filler.
// Keys that differ from another corpus key only by a trailing 0x00 run are
// excluded: they exercise the documented zero-padding weak-order edge
// rather than range-query correctness (DESIGN.md).
func adversarialCorpus() [][]byte {
	keys := [][]byte{
		{},
		[]byte("a"), []byte("ab"), []byte("abc"), []byte("abcd"), []byte("abcde"),
		[]byte("app"), []byte("appl"), []byte("apple"), []byte("applesauce"),
		[]byte("application"), []byte("applications"), []byte("apply"),
		[]byte("com.gmail@alice"), []byte("com.gmail@bob"), []byte("com.gmail@carol"),
		[]byte("com.yahoo@dave"), []byte("com.yahoo@erin"), []byte("org.wiki@frank"),
		[]byte("com.gmail@"), []byte("com."), []byte("com"),
		{0xff}, {0xff, 0xff}, {0xff, 0xff, 0xff}, {0xff, 0xff, 0xff, 0xff},
		[]byte("a\xff"), []byte("a\xff\xff"), []byte("a\xffz"), []byte("a\xff\xffz"),
		{0x00}, {0x00, 0x01}, {0x00, 0xff}, {0x01},
		[]byte("z"), []byte("zz"), []byte("zzz"),
	}
	rng := rand.New(rand.NewSource(99))
	names := []string{"grace", "heidi", "ivan", "judy", "mallory", "nick"}
	doms := []string{"com.gmail@", "net.mail@", "org.wiki@"}
	for i := 0; i < 120; i++ {
		k := doms[rng.Intn(len(doms))] + names[rng.Intn(len(names))]
		if rng.Intn(2) == 0 {
			k += fmt.Sprintf("%02d", rng.Intn(100))
		}
		keys = append(keys, []byte(k))
	}
	for i := 0; i < 120; i++ {
		k := make([]byte, 1+rng.Intn(10))
		for j := range k {
			k[j] = byte(rng.Intn(256))
		}
		keys = append(keys, k)
	}
	return dropZeroRunExtensions(dedupe(keys))
}

func dedupe(keys [][]byte) [][]byte {
	seen := map[string]bool{}
	out := keys[:0]
	for _, k := range keys {
		if !seen[string(k)] {
			seen[string(k)] = true
			out = append(out, k)
		}
	}
	return out
}

// dropZeroRunExtensions removes keys that equal another corpus key plus a
// trailing 0x00 run (the zero-padding weak-order edge documented in
// DESIGN.md).
func dropZeroRunExtensions(keys [][]byte) [][]byte {
	set := map[string]bool{}
	for _, k := range keys {
		set[string(k)] = true
	}
	out := keys[:0]
	for _, k := range keys {
		i := len(k)
		for i > 0 && k[i-1] == 0x00 {
			i--
		}
		if i < len(k) && set[string(k[:i])] {
			continue
		}
		out = append(out, k)
	}
	return out
}

// scanBounds is the bound set the differential scans sweep: keys present
// and absent, prefixes of stored keys, 0xff-run upper bounds, and the
// extremes.
func scanBounds() [][]byte {
	return [][]byte{
		{},
		{0x00}, {0x01},
		[]byte("a"), []byte("ab"), []byte("app"), []byte("apple"), []byte("applf"),
		[]byte("apply"), []byte("b"),
		[]byte("com.gmail@"), []byte("com.gmail@bob"), []byte("com.yahoo@"),
		[]byte("nosuchkey"),
		[]byte("a\xff"), []byte("a\xff\xff"), []byte("a\xffz"),
		{0xff}, {0xff, 0xff}, {0xff, 0xff, 0xff, 0xff},
		[]byte("zzz"), []byte("zzzz"),
	}
}

// testSchemes are the encoder configurations the differential tests cover
// (≥3 schemes, spanning all three dictionary structures: array,
// bitmap-trie, ART-based).
var testSchemes = []core.Scheme{core.SingleChar, core.DoubleChar, core.ThreeGrams, core.ALMImproved}

var encFixture struct {
	sync.Once
	encs map[core.Scheme]*core.Encoder
	err  error
}

func testEncoders(t *testing.T) map[core.Scheme]*core.Encoder {
	t.Helper()
	encFixture.Do(func() {
		samples := adversarialCorpus()
		encFixture.encs = map[core.Scheme]*core.Encoder{}
		for _, s := range testSchemes {
			opt := core.Options{DictLimit: 1 << 10, MaxPatternLen: 16}
			if s == core.DoubleChar {
				opt = core.Options{} // fixed-size full-alphabet dictionary
			}
			e, err := core.Build(s, samples, opt)
			if err != nil {
				encFixture.err = fmt.Errorf("build %v: %v", s, err)
				return
			}
			encFixture.encs[s] = e
		}
	})
	if encFixture.err != nil {
		t.Fatal(encFixture.err)
	}
	return encFixture.encs
}

// loadIndex builds an index over the corpus with val i for key i.
func loadIndex(t *testing.T, backend Backend, enc *core.Encoder, keys [][]byte) *Index {
	t.Helper()
	x, err := NewIndex(backend, enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Bulk(keys, nil); err != nil {
		t.Fatalf("%s: bulk: %v", backend, err)
	}
	return x
}

// requireUniqueEncodings guards the differential comparison: if two corpus
// keys collided under padded encoding the backends would conflate them and
// the test would measure the collision, not scan correctness.
func requireUniqueEncodings(t *testing.T, enc *core.Encoder, keys [][]byte) {
	t.Helper()
	seen := map[string]int{}
	for i, k := range keys {
		ek := string(enc.Encode(k))
		if j, dup := seen[ek]; dup {
			t.Fatalf("corpus keys %q and %q collide under padded encoding", keys[j], k)
		}
		seen[ek] = i
	}
}

// ---------------------------------------------------------------------------
// Differential tests: encoded vs. unencoded result sets.
// ---------------------------------------------------------------------------

// collectScan runs one scan and returns the visited vals.
func collectScan(x *Index, lo, hi []byte) []uint64 {
	var out []uint64
	x.Scan(lo, hi, func(_ []byte, v uint64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// TestScanDifferential is the tentpole's acceptance test: on every backend
// × scheme combination, encoded Scan(lo, hi) returns exactly the keys the
// unencoded scan returns, over the adversarial corpus and bound sweep.
// Vals identify corpus keys, so equal val sequences mean byte-identical
// original-key result sets (in the same order).
func TestScanDifferential(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	bounds := scanBounds()
	for _, backend := range Backends {
		plain := loadIndex(t, backend, nil, keys)
		for _, scheme := range testSchemes {
			enc := encs[scheme]
			requireUniqueEncodings(t, enc, keys)
			coded := loadIndex(t, backend, enc, keys)
			if plain.Len() != coded.Len() {
				t.Fatalf("%s/%v: plain holds %d keys, coded %d", backend, scheme, plain.Len(), coded.Len())
			}
			// Unbounded and half-bounded sweeps.
			pairs := [][2][]byte{{nil, nil}}
			for _, b := range bounds {
				pairs = append(pairs, [2][]byte{b, nil}, [2][]byte{nil, b})
			}
			for _, lo := range bounds {
				for _, hi := range bounds {
					pairs = append(pairs, [2][]byte{lo, hi})
				}
			}
			for _, p := range pairs {
				want := collectScan(plain, p[0], p[1])
				got := collectScan(coded, p[0], p[1])
				if !equalU64(want, got) {
					t.Fatalf("%s/%v: Scan(%q, %q): plain %v != coded %v",
						backend, scheme, p[0], p[1], want, got)
				}
			}
		}
	}
}

// TestScanPrefixDifferential covers the interval-ceiling upper bound:
// encoded prefix scans must match unencoded prefix scans, including
// prefixes ending in 0xff runs and the empty (full-range) prefix.
func TestScanPrefixDifferential(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	prefixes := [][]byte{
		{}, []byte("a"), []byte("ap"), []byte("app"), []byte("apple"),
		[]byte("com."), []byte("com.gmail@"), []byte("com.gmail@bob"),
		{0x00}, {0xff}, {0xff, 0xff}, []byte("a\xff"), []byte("a\xff\xff"),
		[]byte("nosuchprefix"), []byte("z"),
	}
	collect := func(x *Index, p []byte) []uint64 {
		var out []uint64
		x.ScanPrefix(p, func(_ []byte, v uint64) bool {
			out = append(out, v)
			return true
		})
		return out
	}
	for _, backend := range Backends {
		plain := loadIndex(t, backend, nil, keys)
		for _, scheme := range testSchemes {
			coded := loadIndex(t, backend, encs[scheme], keys)
			for _, p := range prefixes {
				want := collect(plain, p)
				got := collect(coded, p)
				if !equalU64(want, got) {
					t.Fatalf("%s/%v: ScanPrefix(%q): plain %v != coded %v",
						backend, scheme, p, want, got)
				}
			}
		}
	}
}

// TestScanEarlyStop checks that a callback returning false stops both
// encoded and unencoded scans after the same result.
func TestScanEarlyStop(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	for _, backend := range Backends {
		plain := loadIndex(t, backend, nil, keys)
		coded := loadIndex(t, backend, encs[core.DoubleChar], keys)
		for _, limit := range []int{0, 1, 3, 10} {
			take := func(x *Index) []uint64 {
				var out []uint64
				x.Scan([]byte("a"), nil, func(_ []byte, v uint64) bool {
					out = append(out, v)
					return len(out) < limit
				})
				return out
			}
			if want, got := take(plain), take(coded); !equalU64(want, got) {
				t.Fatalf("%s limit %d: plain %v != coded %v", backend, limit, want, got)
			}
		}
	}
}

// TestPointOpsDifferential drives Put/Get/Delete through every mutable
// backend × scheme and cross-checks against a map; SuRF (bulk-only) is
// covered by Get probes over the bulk load plus immutability errors.
func TestPointOpsDifferential(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	probes := append(append([][]byte{}, keys...),
		[]byte("absent"), []byte("apples"), []byte("a\xffa"), []byte("zzzzz"), []byte{0x02})
	for _, backend := range Backends {
		for _, scheme := range testSchemes {
			enc := encs[scheme]
			if backend == SuRF {
				x := loadIndex(t, backend, enc, keys)
				if err := x.Put([]byte("k"), 1); err != ErrImmutableBackend {
					t.Fatalf("SuRF Put: got %v, want ErrImmutableBackend", err)
				}
				if _, err := x.Delete(keys[1]); err != ErrImmutableBackend {
					t.Fatalf("SuRF Delete: got %v, want ErrImmutableBackend", err)
				}
				for i, k := range keys {
					if v, ok := x.Get(k); !ok || v != uint64(i) {
						t.Fatalf("SuRF/%v: Get(%q) = %d,%v want %d,true", scheme, k, v, ok, i)
					}
				}
				continue
			}
			x, err := NewIndex(backend, enc)
			if err != nil {
				t.Fatal(err)
			}
			model := map[string]uint64{}
			for i, k := range keys {
				if err := x.Put(k, uint64(i)); err != nil {
					t.Fatalf("%s/%v: Put(%q): %v", backend, scheme, k, err)
				}
				model[string(k)] = uint64(i)
			}
			// Overwrites.
			for i := 0; i < len(keys); i += 7 {
				if err := x.Put(keys[i], uint64(i)+1000); err != nil {
					t.Fatal(err)
				}
				model[string(keys[i])] = uint64(i) + 1000
			}
			// Deletes (every 5th key).
			for i := 0; i < len(keys); i += 5 {
				present := false
				if _, ok := model[string(keys[i])]; ok {
					present = true
					delete(model, string(keys[i]))
				}
				ok, err := x.Delete(keys[i])
				if err != nil {
					t.Fatal(err)
				}
				if ok != present {
					t.Fatalf("%s/%v: Delete(%q) = %v want %v", backend, scheme, keys[i], ok, present)
				}
			}
			if x.Len() != len(model) {
				t.Fatalf("%s/%v: Len = %d want %d", backend, scheme, x.Len(), len(model))
			}
			for _, k := range probes {
				wantV, wantOK := model[string(k)]
				gotV, gotOK := x.Get(k)
				if gotOK != wantOK || (wantOK && gotV != wantV) {
					t.Fatalf("%s/%v: Get(%q) = %d,%v want %d,%v",
						backend, scheme, k, gotV, gotOK, wantV, wantOK)
				}
			}
		}
	}
}

// TestIndexBasics covers facade plumbing: backend names, memory
// accounting, bulk validation, unknown backends.
func TestIndexBasics(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	if _, err := NewIndex(Backend("T-tree"), nil); err == nil {
		t.Fatal("unknown backend accepted")
	}
	x, err := NewIndex(BTree, encs[core.DoubleChar])
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Bulk(keys, make([]uint64, 1)); err == nil {
		t.Fatal("mismatched vals length accepted")
	}
	if err := x.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}
	if x.Backend() != BTree || x.Encoder() == nil {
		t.Fatal("accessors broken")
	}
	if x.MemoryUsage() <= x.TreeMemoryUsage() {
		t.Fatal("dictionary memory not accounted")
	}
	plain, _ := NewIndex(BTree, nil)
	if err := plain.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}
	if plain.MemoryUsage() != plain.TreeMemoryUsage() {
		t.Fatal("uncompressed index should have no dictionary overhead")
	}
	// Compression: the encoded tree must be smaller than the plain one on
	// this text-heavy corpus.
	if x.TreeMemoryUsage() >= plain.TreeMemoryUsage() {
		t.Fatalf("encoded tree (%d B) not smaller than plain (%d B)",
			x.TreeMemoryUsage(), plain.TreeMemoryUsage())
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPrefixSuccessor pins the uncompressed prefix-bound helper, including
// the all-0xff unbounded case.
func TestPrefixSuccessor(t *testing.T) {
	cases := []struct{ in, want []byte }{
		{[]byte("a"), []byte("b")},
		{[]byte("ab"), []byte("ac")},
		{[]byte("a\xff"), []byte("b")},
		{[]byte("a\xff\xff"), []byte("b")},
		{[]byte{0xff}, nil},
		{[]byte{0xff, 0xff}, nil},
		{[]byte{}, nil},
	}
	for _, c := range cases {
		if got := prefixSuccessor(c.in); !bytes.Equal(got, c.want) {
			t.Fatalf("prefixSuccessor(%q) = %q want %q", c.in, got, c.want)
		}
	}
}
