// Package art implements the Adaptive Radix Tree (Leis et al., ICDE 2013)
// from scratch, with the two configurations HOPE needs:
//
//   - IndexMode: the search tree evaluated in the paper's Section 7.
//     Inner nodes keep at most eight bytes of each compressed path and skip
//     the rest optimistically (OCPS); lookups verify the candidate against
//     the full key stored in the leaf, mirroring how a DBMS validates
//     against the tuple.
//   - DictMode: the dictionary backend for the ALM and ALM-Improved
//     schemes (paper Section 4.2). Full path prefixes are stored (no
//     optimism is possible because there is no tuple to verify against),
//     keys that are prefixes of other keys are supported, and a Floor
//     lookup ("greatest key <= query") implements the dictionary's
//     interval search.
//
// Nodes adaptively grow through the four layouts Node4, Node16, Node48 and
// Node256.
package art

import "bytes"

// Mode selects the tree configuration.
type Mode int

const (
	// IndexMode stores capped prefixes and verifies lookups against leaf keys.
	IndexMode Mode = iota
	// DictMode stores full prefixes and supports Floor.
	DictMode
)

// maxStoredPrefix is the optimistic prefix cap in IndexMode.
const maxStoredPrefix = 8

// Tree is an adaptive radix tree mapping byte-string keys to uint64 values.
type Tree struct {
	root node
	size int
	mode Mode
}

// New returns an empty tree in the given mode.
func New(mode Mode) *Tree { return &Tree{mode: mode} }

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

// node is implemented by *leaf, *node4, *node16, *node48 and *node256.
type node interface{ isNode() }

type leaf struct {
	key []byte
	val uint64
}

func (*leaf) isNode() {}

// header carries the fields shared by all inner node layouts. prefix holds
// the bytes of the compressed path: all of them in DictMode, at most
// maxStoredPrefix in IndexMode (prefixLen is the true length).
type header struct {
	prefix      []byte
	prefixLen   int
	valueLeaf   *leaf // key that ends exactly at this node (prefix key)
	numChildren int
}

type node4 struct {
	header
	keys  [4]byte
	child [4]node
}

type node16 struct {
	header
	keys  [16]byte
	child [16]node
}

type node48 struct {
	header
	index [256]byte // 0 = empty, otherwise child slot + 1
	child [48]node
}

type node256 struct {
	header
	child [256]node
}

func (*node4) isNode()   {}
func (*node16) isNode()  {}
func (*node48) isNode()  {}
func (*node256) isNode() {}

func hdr(n node) *header {
	switch v := n.(type) {
	case *node4:
		return &v.header
	case *node16:
		return &v.header
	case *node48:
		return &v.header
	case *node256:
		return &v.header
	}
	return nil
}

// findChild returns the child for byte c, or nil.
func findChild(n node, c byte) node {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < v.numChildren; i++ {
			if v.keys[i] == c {
				return v.child[i]
			}
		}
	case *node16:
		lo, hi := 0, v.numChildren
		for lo < hi {
			mid := (lo + hi) / 2
			if v.keys[mid] < c {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < v.numChildren && v.keys[lo] == c {
			return v.child[lo]
		}
	case *node48:
		if s := v.index[c]; s != 0 {
			return v.child[s-1]
		}
	case *node256:
		return v.child[c]
	}
	return nil
}

// childRef returns a pointer to the child slot for byte c, or nil.
func childRef(n node, c byte) *node {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < v.numChildren; i++ {
			if v.keys[i] == c {
				return &v.child[i]
			}
		}
	case *node16:
		for i := 0; i < v.numChildren; i++ {
			if v.keys[i] == c {
				return &v.child[i]
			}
		}
	case *node48:
		if s := v.index[c]; s != 0 {
			return &v.child[s-1]
		}
	case *node256:
		if v.child[c] != nil {
			return &v.child[c]
		}
	}
	return nil
}

// maxChildBelow returns the child with the greatest key byte strictly less
// than c, or nil.
func maxChildBelow(n node, c int) node {
	switch v := n.(type) {
	case *node4:
		var best node
		bestKey := -1
		for i := 0; i < v.numChildren; i++ {
			if int(v.keys[i]) < c && int(v.keys[i]) > bestKey {
				bestKey = int(v.keys[i])
				best = v.child[i]
			}
		}
		return best
	case *node16:
		var best node
		for i := 0; i < v.numChildren; i++ {
			if int(v.keys[i]) >= c {
				break
			}
			best = v.child[i]
		}
		return best
	case *node48:
		for b := c - 1; b >= 0; b-- {
			if s := v.index[b]; s != 0 {
				return v.child[s-1]
			}
		}
	case *node256:
		for b := c - 1; b >= 0; b-- {
			if v.child[b] != nil {
				return v.child[b]
			}
		}
	}
	return nil
}

// minChild and maxChild return the children with the smallest and greatest
// key bytes.
func minChild(n node) node {
	switch v := n.(type) {
	case *node4:
		idx, best := -1, 256
		for i := 0; i < v.numChildren; i++ {
			if int(v.keys[i]) < best {
				best = int(v.keys[i])
				idx = i
			}
		}
		if idx >= 0 {
			return v.child[idx]
		}
	case *node16:
		if v.numChildren > 0 {
			return v.child[0]
		}
	case *node48:
		for b := 0; b < 256; b++ {
			if s := v.index[b]; s != 0 {
				return v.child[s-1]
			}
		}
	case *node256:
		for b := 0; b < 256; b++ {
			if v.child[b] != nil {
				return v.child[b]
			}
		}
	}
	return nil
}

func maxChild(n node) node { return maxChildBelow(n, 256) }

// minLeaf returns the smallest leaf in the subtree (prefix keys first).
func minLeaf(n node) *leaf {
	for {
		if l, ok := n.(*leaf); ok {
			return l
		}
		h := hdr(n)
		if h.valueLeaf != nil {
			return h.valueLeaf
		}
		n = minChild(n)
	}
}

// maxLeaf returns the greatest leaf in the subtree.
func maxLeaf(n node) *leaf {
	for {
		if l, ok := n.(*leaf); ok {
			return l
		}
		h := hdr(n)
		c := maxChild(n)
		if c == nil {
			return h.valueLeaf
		}
		n = c
	}
}

// Min returns the smallest key in the tree.
func (t *Tree) Min() ([]byte, uint64, bool) {
	if t.root == nil {
		return nil, 0, false
	}
	l := minLeaf(t.root)
	return l.key, l.val, true
}

// Max returns the greatest key in the tree.
func (t *Tree) Max() ([]byte, uint64, bool) {
	if t.root == nil {
		return nil, 0, false
	}
	l := maxLeaf(t.root)
	return l.key, l.val, true
}

// actualPrefix returns the true compressed-path bytes of an inner node at
// the given depth, fetching them from a descendant leaf when the stored
// prefix is capped (IndexMode).
func actualPrefix(n node, depth int) []byte {
	h := hdr(n)
	if len(h.prefix) == h.prefixLen {
		return h.prefix
	}
	l := minLeaf(n)
	return l.key[depth : depth+h.prefixLen]
}

// Get looks up a key. In IndexMode the descent skips compressed paths
// optimistically and the result is verified against the leaf key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	n := t.root
	depth := 0
	for n != nil {
		if l, ok := n.(*leaf); ok {
			if bytes.Equal(l.key, key) {
				return l.val, true
			}
			return 0, false
		}
		h := hdr(n)
		if h.prefixLen > 0 {
			stored := h.prefix
			m := len(stored)
			if rem := len(key) - depth; rem < m {
				m = rem
			}
			if !bytes.Equal(stored[:m], key[depth:depth+m]) {
				return 0, false
			}
			if len(key)-depth < h.prefixLen {
				return 0, false
			}
			depth += h.prefixLen // optimistic skip beyond stored bytes
		}
		if depth == len(key) {
			if h.valueLeaf != nil && bytes.Equal(h.valueLeaf.key, key) {
				return h.valueLeaf.val, true
			}
			return 0, false
		}
		n = findChild(n, key[depth])
		depth++
	}
	return 0, false
}

// Stats summarizes the tree structure; it is computed by a full traversal.
type Stats struct {
	Leaves                    int
	Node4s, Node16s           int
	Node48s, Node256s         int
	PrefixBytes               int // stored compressed-path bytes
	KeyBytes                  int // key bytes retained in leaves
	ValueLeaves               int // prefix keys stored at inner nodes
	SumLeafDepth              int // radix depth summed over leaves (trie height numerator)
	MemoryBytes               int
	MaxDepth, TotalInnerNodes int
}

// ComputeStats walks the tree and returns structural statistics, including
// the modeled memory footprint: C-equivalent node sizes (node4 52 B,
// node16 160 B, node48 656 B, node256 2064 B) plus stored prefix bytes,
// with 16 B per leaf modeling the value pointer + tag. Leaf key bytes are
// NOT counted in IndexMode: like the paper's ART, the index stores partial
// keys and a tuple pointer, and full keys live with the tuples (our leaves
// retain them only to model the DBMS's final verification) — this is
// exactly why the paper observes smaller HOPE memory savings on ART/HOT
// than on B+trees (Figure 7). DictMode counts key bytes: a dictionary has
// no tuples to defer storage to.
func (t *Tree) ComputeStats() Stats {
	var s Stats
	if t.root != nil {
		walkStats(t.root, 0, &s)
	}
	s.TotalInnerNodes = s.Node4s + s.Node16s + s.Node48s + s.Node256s
	s.MemoryBytes = s.Leaves*16 + s.PrefixBytes +
		s.Node4s*(16+4+4*8) + s.Node16s*(16+16+16*8) +
		s.Node48s*(16+256+48*8) + s.Node256s*(16+256*8)
	if t.mode == DictMode {
		s.MemoryBytes += s.KeyBytes
	}
	return s
}

func walkStats(n node, depth int, s *Stats) {
	if l, ok := n.(*leaf); ok {
		s.Leaves++
		s.KeyBytes += len(l.key)
		s.SumLeafDepth += depth
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		return
	}
	h := hdr(n)
	s.PrefixBytes += len(h.prefix)
	d := depth + h.prefixLen
	if h.valueLeaf != nil {
		s.ValueLeaves++
		s.Leaves++
		s.KeyBytes += len(h.valueLeaf.key)
		s.SumLeafDepth += d
	}
	switch v := n.(type) {
	case *node4:
		s.Node4s++
		for i := 0; i < v.numChildren; i++ {
			walkStats(v.child[i], d+1, s)
		}
	case *node16:
		s.Node16s++
		for i := 0; i < v.numChildren; i++ {
			walkStats(v.child[i], d+1, s)
		}
	case *node48:
		s.Node48s++
		for b := 0; b < 256; b++ {
			if sl := v.index[b]; sl != 0 {
				walkStats(v.child[sl-1], d+1, s)
			}
		}
	case *node256:
		s.Node256s++
		for b := 0; b < 256; b++ {
			if v.child[b] != nil {
				walkStats(v.child[b], d+1, s)
			}
		}
	}
}

// MemoryUsage returns the modeled footprint in bytes (see ComputeStats).
func (t *Tree) MemoryUsage() int { return t.ComputeStats().MemoryBytes }

// AvgLeafDepth returns the average radix depth of leaves, the "trie
// height" metric of the paper's Figure 10.
func (t *Tree) AvgLeafDepth() float64 {
	s := t.ComputeStats()
	if s.Leaves == 0 {
		return 0
	}
	return float64(s.SumLeafDepth) / float64(s.Leaves)
}
