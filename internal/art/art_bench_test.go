package art

import (
	"testing"

	"repro/internal/datagen"
)

func benchKeys() [][]byte { return datagen.Generate(datagen.Email, 100000, 1) }

func BenchmarkInsert(b *testing.B) {
	keys := benchKeys()
	tr := New(IndexMode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i%len(keys)], uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	keys := benchKeys()
	tr := New(IndexMode)
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i%len(keys)])
	}
}

func BenchmarkFloor(b *testing.B) {
	keys := benchKeys()
	tr := New(DictMode)
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Floor(keys[i%len(keys)])
	}
}
