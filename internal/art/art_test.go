package art

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func randKey(rng *rand.Rand, maxLen int, alphabet int) []byte {
	n := rng.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(alphabet))
	}
	return b
}

// refMap is the model implementation: a map plus sorted key list.
type refMap struct {
	m map[string]uint64
}

func newRefMap() *refMap { return &refMap{m: map[string]uint64{}} }

func (r *refMap) insert(k []byte, v uint64) { r.m[string(k)] = v }

func (r *refMap) sortedKeys() []string {
	ks := make([]string, 0, len(r.m))
	for k := range r.m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func (r *refMap) floor(q []byte) (string, uint64, bool) {
	ks := r.sortedKeys()
	i := sort.SearchStrings(ks, string(q))
	if i < len(ks) && ks[i] == string(q) {
		return ks[i], r.m[ks[i]], true
	}
	if i == 0 {
		return "", 0, false
	}
	return ks[i-1], r.m[ks[i-1]], true
}

func buildBoth(t *testing.T, mode Mode, keys [][]byte) (*Tree, *refMap) {
	t.Helper()
	tr := New(mode)
	ref := newRefMap()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
		ref.insert(k, uint64(i))
	}
	return tr, ref
}

func TestInsertGetRandom(t *testing.T) {
	for _, mode := range []Mode{IndexMode, DictMode} {
		for _, alpha := range []int{2, 8, 256} {
			rng := rand.New(rand.NewSource(int64(alpha) + int64(mode)*31))
			var keys [][]byte
			for i := 0; i < 3000; i++ {
				keys = append(keys, randKey(rng, 12, alpha))
			}
			tr, ref := buildBoth(t, mode, keys)
			if tr.Len() != len(ref.m) {
				t.Fatalf("mode %v alpha %d: Len=%d, want %d", mode, alpha, tr.Len(), len(ref.m))
			}
			for k, v := range ref.m {
				got, ok := tr.Get([]byte(k))
				if !ok || got != v {
					t.Fatalf("mode %v alpha %d: Get(%q)=(%d,%v), want %d", mode, alpha, k, got, ok, v)
				}
			}
			// Absent keys.
			for i := 0; i < 2000; i++ {
				k := randKey(rng, 14, alpha)
				want, present := ref.m[string(k)]
				got, ok := tr.Get(k)
				if ok != present || (present && got != want) {
					t.Fatalf("mode %v alpha %d: Get(%q)=(%d,%v), want (%d,%v)",
						mode, alpha, k, got, ok, want, present)
				}
			}
		}
	}
}

func TestUpdateValue(t *testing.T) {
	tr := New(IndexMode)
	tr.Insert([]byte("key"), 1)
	tr.Insert([]byte("key"), 2)
	if tr.Len() != 1 {
		t.Fatalf("Len=%d after duplicate insert", tr.Len())
	}
	if v, ok := tr.Get([]byte("key")); !ok || v != 2 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}

func TestPrefixKeys(t *testing.T) {
	for _, mode := range []Mode{IndexMode, DictMode} {
		tr := New(mode)
		keys := []string{"", "a", "ab", "abc", "abcd", "abd", "b"}
		for i, k := range keys {
			tr.Insert([]byte(k), uint64(i))
		}
		for i, k := range keys {
			if v, ok := tr.Get([]byte(k)); !ok || v != uint64(i) {
				t.Fatalf("mode %v: Get(%q)=(%d,%v), want %d", mode, k, v, ok, i)
			}
		}
		if _, ok := tr.Get([]byte("abcde")); ok {
			t.Fatal("phantom key")
		}
	}
}

func TestNodeGrowthAllLayouts(t *testing.T) {
	tr := New(IndexMode)
	// 256 children under a shared prefix forces 4 -> 16 -> 48 -> 256.
	for b := 0; b < 256; b++ {
		tr.Insert([]byte{'p', 'x', byte(b), 'z'}, uint64(b))
	}
	for b := 0; b < 256; b++ {
		if v, ok := tr.Get([]byte{'p', 'x', byte(b), 'z'}); !ok || v != uint64(b) {
			t.Fatalf("lost key %d after growth", b)
		}
	}
	s := tr.ComputeStats()
	if s.Node256s == 0 {
		t.Fatalf("expected a node256, stats %+v", s)
	}
	if s.Leaves != 256 {
		t.Fatalf("leaves=%d", s.Leaves)
	}
}

func TestLongPrefixOCPS(t *testing.T) {
	// Compressed paths longer than the 8-byte optimistic cap.
	longA := append(bytes.Repeat([]byte{'q'}, 40), 'a')
	longB := append(bytes.Repeat([]byte{'q'}, 40), 'b')
	for _, mode := range []Mode{IndexMode, DictMode} {
		tr := New(mode)
		tr.Insert(longA, 1)
		tr.Insert(longB, 2)
		if v, ok := tr.Get(longA); !ok || v != 1 {
			t.Fatalf("mode %v: long A", mode)
		}
		if v, ok := tr.Get(longB); !ok || v != 2 {
			t.Fatalf("mode %v: long B", mode)
		}
		// A key diverging inside the skipped region must split correctly.
		div := append(bytes.Repeat([]byte{'q'}, 20), 'x')
		tr.Insert(div, 3)
		for _, c := range []struct {
			k []byte
			v uint64
		}{{longA, 1}, {longB, 2}, {div, 3}} {
			if v, ok := tr.Get(c.k); !ok || v != c.v {
				t.Fatalf("mode %v: Get(%q)=(%d,%v), want %d", mode, c.k, v, ok, c.v)
			}
		}
		// Mismatches inside the skipped (unstored) region must miss after
		// leaf verification.
		miss := append(bytes.Repeat([]byte{'q'}, 39), 'z', 'a')
		if _, ok := tr.Get(miss); ok {
			t.Fatalf("mode %v: false positive survived verification", mode)
		}
	}
}

func TestFloorRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var keys [][]byte
	for i := 0; i < 2000; i++ {
		k := randKey(rng, 8, 6)
		if len(k) == 0 {
			continue
		}
		keys = append(keys, k)
	}
	tr, ref := buildBoth(t, DictMode, keys)
	for i := 0; i < 5000; i++ {
		q := randKey(rng, 10, 7)
		wantK, wantV, wantOK := ref.floor(q)
		gotK, gotV, gotOK := tr.Floor(q)
		if gotOK != wantOK {
			t.Fatalf("Floor(%q): ok=%v, want %v", q, gotOK, wantOK)
		}
		if gotOK && (string(gotK) != wantK || gotV != wantV) {
			t.Fatalf("Floor(%q)=(%q,%d), want (%q,%d)", q, gotK, gotV, wantK, wantV)
		}
	}
}

func TestFloorExactAndBelow(t *testing.T) {
	tr := New(DictMode)
	for i, k := range []string{"b", "bd", "bf", "x"} {
		tr.Insert([]byte(k), uint64(i))
	}
	cases := []struct {
		q    string
		want string
		ok   bool
	}{
		{"b", "b", true}, {"bc", "b", true}, {"bd", "bd", true},
		{"bdzzz", "bd", true}, {"be", "bd", true}, {"z", "x", true},
		{"a", "", false}, {"", "", false},
	}
	for _, c := range cases {
		k, _, ok := tr.Floor([]byte(c.q))
		if ok != c.ok || (ok && string(k) != c.want) {
			t.Fatalf("Floor(%q)=(%q,%v), want (%q,%v)", c.q, k, ok, c.want, c.ok)
		}
	}
}

func TestScanRandom(t *testing.T) {
	for _, mode := range []Mode{IndexMode, DictMode} {
		rng := rand.New(rand.NewSource(7 + int64(mode)))
		var keys [][]byte
		for i := 0; i < 2500; i++ {
			keys = append(keys, randKey(rng, 10, 5))
		}
		tr, ref := buildBoth(t, mode, keys)
		sorted := ref.sortedKeys()
		for trial := 0; trial < 400; trial++ {
			start := randKey(rng, 10, 6)
			limit := 1 + rng.Intn(20)
			i := sort.SearchStrings(sorted, string(start))
			var want []string
			for j := i; j < len(sorted) && len(want) < limit; j++ {
				want = append(want, sorted[j])
			}
			var got []string
			tr.Scan(start, func(k []byte, v uint64) bool {
				got = append(got, string(k))
				return len(got) < limit
			})
			if len(got) != len(want) {
				t.Fatalf("mode %v: Scan(%q,%d) returned %d keys, want %d",
					mode, start, limit, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("mode %v: Scan(%q)[%d]=%q, want %q", mode, start, j, got[j], want[j])
				}
			}
		}
	}
}

func TestScanWithDeepSharedPrefix(t *testing.T) {
	// Exercises OCPS path loading during scans.
	tr := New(IndexMode)
	base := bytes.Repeat([]byte{'w'}, 30)
	var all []string
	for i := 0; i < 50; i++ {
		k := append(append([]byte{}, base...), []byte(fmt.Sprintf("%03d", i))...)
		tr.Insert(k, uint64(i))
		all = append(all, string(k))
	}
	start := append(append([]byte{}, base...), []byte("025")...)
	var got []string
	tr.Scan(start, func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 25 {
		t.Fatalf("got %d keys, want 25", len(got))
	}
	if got[0] != all[25] {
		t.Fatalf("first key %q, want %q", got[0], all[25])
	}
}

func TestMinMax(t *testing.T) {
	tr := New(IndexMode)
	if _, _, ok := tr.Min(); ok {
		t.Fatal("empty Min")
	}
	for i, k := range []string{"pear", "apple", "zebra", "app"} {
		tr.Insert([]byte(k), uint64(i))
	}
	if k, _, _ := tr.Min(); string(k) != "app" {
		t.Fatalf("Min=%q", k)
	}
	if k, _, _ := tr.Max(); string(k) != "zebra" {
		t.Fatalf("Max=%q", k)
	}
}

func TestStatsAndMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New(IndexMode)
	n := 5000
	totalKeyBytes := 0
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := randKey(rng, 16, 26)
		if !seen[string(k)] {
			seen[string(k)] = true
			totalKeyBytes += len(k)
		}
		tr.Insert(k, uint64(i))
	}
	s := tr.ComputeStats()
	if s.Leaves != tr.Len() {
		t.Fatalf("stats leaves %d != size %d", s.Leaves, tr.Len())
	}
	if s.KeyBytes != totalKeyBytes {
		t.Fatalf("key bytes %d, want %d", s.KeyBytes, totalKeyBytes)
	}
	// IndexMode memory models partial keys + value pointers: it must not
	// include the full leaf key bytes (paper Figure 7).
	if s.MemoryBytes < s.Leaves*16 {
		t.Fatal("memory below leaf-pointer floor")
	}
	if tr.MemoryUsage() != s.MemoryBytes {
		t.Fatal("MemoryUsage inconsistent with stats")
	}
	if d := tr.AvgLeafDepth(); d <= 0 || d > 17 {
		t.Fatalf("implausible avg leaf depth %v", d)
	}
}

func TestDictModeStoresFullPrefixes(t *testing.T) {
	tr := New(DictMode)
	longA := append(bytes.Repeat([]byte{'q'}, 40), 'a')
	longB := append(bytes.Repeat([]byte{'q'}, 40), 'b')
	tr.Insert(longA, 1)
	tr.Insert(longB, 2)
	s := tr.ComputeStats()
	if s.PrefixBytes < 39 {
		t.Fatalf("DictMode must store the full compressed path, stored %d bytes", s.PrefixBytes)
	}
	// Floor through the long prefix.
	q := append(bytes.Repeat([]byte{'q'}, 40), 'a', 'z')
	if k, _, ok := tr.Floor(q); !ok || !bytes.Equal(k, longA) {
		t.Fatalf("Floor through long prefix: %q %v", k, ok)
	}
	if _, _, ok := tr.Floor(bytes.Repeat([]byte{'q'}, 10)); ok {
		t.Fatal("floor below all keys must miss")
	}
}

func TestIndexModeCapsPrefixes(t *testing.T) {
	tr := New(IndexMode)
	tr.Insert(append(bytes.Repeat([]byte{'q'}, 40), 'a'), 1)
	tr.Insert(append(bytes.Repeat([]byte{'q'}, 40), 'b'), 2)
	s := tr.ComputeStats()
	if s.PrefixBytes > maxStoredPrefix {
		t.Fatalf("IndexMode stored %d prefix bytes, cap is %d", s.PrefixBytes, maxStoredPrefix)
	}
}

func TestInsertionOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var keys [][]byte
	for i := 0; i < 1000; i++ {
		keys = append(keys, randKey(rng, 10, 4))
	}
	tr1, _ := buildBoth(t, DictMode, keys)
	shuffled := append([][]byte{}, keys...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	tr2 := New(DictMode)
	for i, k := range shuffled {
		tr2.Insert(k, uint64(i))
	}
	var k1, k2 []string
	tr1.Scan(nil, func(k []byte, _ uint64) bool { k1 = append(k1, string(k)); return true })
	tr2.Scan(nil, func(k []byte, _ uint64) bool { k2 = append(k2, string(k)); return true })
	if len(k1) != len(k2) {
		t.Fatalf("scan lengths differ: %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("key order differs at %d: %q vs %q", i, k1[i], k2[i])
		}
	}
	// Full scan yields sorted output.
	if !sort.StringsAreSorted(k1) {
		t.Fatal("scan output not sorted")
	}
}
