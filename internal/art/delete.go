package art

import "bytes"

// Delete removes a key, reports whether it was present, and shrinks or
// collapses nodes on the way out: node layouts downgrade when sparse, and
// an inner node left with a single child (and no prefix key) is merged
// into that child's compressed path.
func (t *Tree) Delete(key []byte) bool {
	ok := t.delete(&t.root, key, 0)
	if ok {
		t.size--
	}
	return ok
}

func (t *Tree) delete(ref *node, key []byte, depth int) bool {
	n := *ref
	if n == nil {
		return false
	}
	if l, ok := n.(*leaf); ok {
		if !bytes.Equal(l.key, key) {
			return false
		}
		*ref = nil
		return true
	}
	h := hdr(n)
	if h.prefixLen > 0 {
		mp := t.prefixMismatch(n, key, depth)
		if mp < h.prefixLen {
			return false
		}
		depth += h.prefixLen
	}
	if depth == len(key) {
		if h.valueLeaf == nil || !bytes.Equal(h.valueLeaf.key, key) {
			return false
		}
		h.valueLeaf = nil
		t.collapse(ref, n, depth)
		return true
	}
	cr := childRef(n, key[depth])
	if cr == nil {
		return false
	}
	if !t.delete(cr, key, depth+1) {
		return false
	}
	if *cr == nil {
		t.removeChild(ref, n, key[depth])
		t.collapse(ref, n, depth)
	}
	return true
}

// collapse merges an inner node into its surroundings when it no longer
// justifies existing: zero children with a prefix key becomes that leaf;
// one child and no prefix key is folded into the child's path.
func (t *Tree) collapse(ref *node, n node, depth int) {
	h := hdr(n)
	if h.numChildren == 0 {
		if h.valueLeaf != nil {
			*ref = h.valueLeaf
		}
		// A node with no children and no value leaf only occurs
		// transiently (caller removes it from its parent).
		if h.valueLeaf == nil {
			*ref = nil
		}
		return
	}
	if h.numChildren == 1 && h.valueLeaf == nil {
		var edge byte
		var only node
		eachChild(n, func(b byte, ch node) bool {
			edge, only = b, ch
			return false
		})
		if ch, ok := only.(*leaf); ok {
			*ref = ch
			return
		}
		// Fold this node's prefix + edge byte into the child's prefix.
		chh := hdr(only)
		merged := make([]byte, 0, h.prefixLen+1+chh.prefixLen)
		merged = append(merged, actualPrefix(n, depth-h.prefixLen)...)
		merged = append(merged, edge)
		merged = append(merged, actualPrefix(only, depth+1)...)
		t.setPrefix(chh, merged)
		*ref = only
	}
}

// removeChild deletes the edge for byte c, downgrading the node layout
// when it becomes sparse.
func (t *Tree) removeChild(ref *node, n node, c byte) {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < v.numChildren; i++ {
			if v.keys[i] == c {
				copy(v.keys[i:], v.keys[i+1:v.numChildren])
				copy(v.child[i:], v.child[i+1:v.numChildren])
				v.child[v.numChildren-1] = nil
				v.numChildren--
				return
			}
		}
	case *node16:
		for i := 0; i < v.numChildren; i++ {
			if v.keys[i] == c {
				copy(v.keys[i:], v.keys[i+1:v.numChildren])
				copy(v.child[i:], v.child[i+1:v.numChildren])
				v.child[v.numChildren-1] = nil
				v.numChildren--
				break
			}
		}
		if v.numChildren <= 3 {
			g := &node4{header: v.header}
			copy(g.keys[:], v.keys[:v.numChildren])
			copy(g.child[:], v.child[:v.numChildren])
			*ref = g
		}
	case *node48:
		if s := v.index[c]; s != 0 {
			slot := int(s - 1)
			v.index[c] = 0
			// Move the last slot into the vacated one.
			last := v.numChildren - 1
			if slot != last {
				v.child[slot] = v.child[last]
				for b := 0; b < 256; b++ {
					if int(v.index[b]) == last+1 {
						v.index[b] = byte(slot + 1)
						break
					}
				}
			}
			v.child[last] = nil
			v.numChildren--
		}
		if v.numChildren <= 12 {
			g := &node16{header: v.header}
			i := 0
			for b := 0; b < 256; b++ {
				if s := v.index[b]; s != 0 {
					g.keys[i] = byte(b)
					g.child[i] = v.child[s-1]
					i++
				}
			}
			*ref = g
		}
	case *node256:
		// The caller already cleared the slot via the child reference;
		// just account for the departed edge.
		v.child[c] = nil
		v.numChildren--
		if v.numChildren <= 36 {
			g := &node48{header: v.header}
			i := 0
			for b := 0; b < 256; b++ {
				if v.child[b] != nil {
					g.index[b] = byte(i + 1)
					g.child[i] = v.child[b]
					i++
				}
			}
			*ref = g
		}
	}
}
