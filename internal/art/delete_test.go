package art

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeleteBasic(t *testing.T) {
	tr := New(IndexMode)
	keys := []string{"apple", "app", "application", "banana", "band", "b"}
	for i, k := range keys {
		tr.Insert([]byte(k), uint64(i))
	}
	if !tr.Delete([]byte("app")) {
		t.Fatal("delete existing failed")
	}
	if tr.Delete([]byte("app")) {
		t.Fatal("double delete succeeded")
	}
	if tr.Delete([]byte("appl")) {
		t.Fatal("deleted absent key")
	}
	if _, ok := tr.Get([]byte("app")); ok {
		t.Fatal("deleted key still present")
	}
	for _, k := range []string{"apple", "application", "banana", "band", "b"} {
		if _, ok := tr.Get([]byte(k)); !ok {
			t.Fatalf("collateral damage: %q gone", k)
		}
	}
	if tr.Len() != len(keys)-1 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestDeleteAllLeavesEmptyTree(t *testing.T) {
	for _, mode := range []Mode{IndexMode, DictMode} {
		rng := rand.New(rand.NewSource(1))
		tr := New(mode)
		var keys [][]byte
		seen := map[string]bool{}
		for len(keys) < 2000 {
			k := randKey(rng, 10, 8)
			if !seen[string(k)] {
				seen[string(k)] = true
				keys = append(keys, k)
				tr.Insert(k, 1)
			}
		}
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		for i, k := range keys {
			if !tr.Delete(k) {
				t.Fatalf("mode %v: delete %q failed at %d", mode, k, i)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("mode %v: %d keys left", mode, tr.Len())
		}
		s := tr.ComputeStats()
		if s.Leaves != 0 || s.TotalInnerNodes != 0 {
			t.Fatalf("mode %v: structure left after emptying: %+v", mode, s)
		}
	}
}

func TestDeleteShrinksNodeLayouts(t *testing.T) {
	tr := New(IndexMode)
	for b := 0; b < 256; b++ {
		tr.Insert([]byte{'p', byte(b)}, uint64(b))
	}
	if s := tr.ComputeStats(); s.Node256s != 1 {
		t.Fatalf("setup: %+v", s)
	}
	for b := 0; b < 253; b++ {
		if !tr.Delete([]byte{'p', byte(b)}) {
			t.Fatalf("delete %d", b)
		}
	}
	s := tr.ComputeStats()
	if s.Node256s != 0 || s.Node48s != 0 || s.Node16s != 0 || s.Node4s != 1 {
		t.Fatalf("layouts did not shrink: %+v", s)
	}
	for b := 253; b < 256; b++ {
		if v, ok := tr.Get([]byte{'p', byte(b)}); !ok || v != uint64(b) {
			t.Fatalf("lost survivor %d", b)
		}
	}
}

func TestDeleteMergesPaths(t *testing.T) {
	tr := New(DictMode)
	tr.Insert([]byte("shared-prefix-a"), 1)
	tr.Insert([]byte("shared-prefix-b"), 2)
	tr.Delete([]byte("shared-prefix-b"))
	// The surviving key must still be reachable, including by Floor.
	if v, ok := tr.Get([]byte("shared-prefix-a")); !ok || v != 1 {
		t.Fatal("survivor lost after path merge")
	}
	if k, _, ok := tr.Floor([]byte("shared-prefix-zzz")); !ok || string(k) != "shared-prefix-a" {
		t.Fatalf("floor after merge: %q %v", k, ok)
	}
	s := tr.ComputeStats()
	if s.TotalInnerNodes != 0 {
		t.Fatalf("single-leaf tree still has inner nodes: %+v", s)
	}
}

func TestDeleteWithValueLeaf(t *testing.T) {
	tr := New(IndexMode)
	tr.Insert([]byte("ab"), 1) // becomes a prefix key
	tr.Insert([]byte("abc"), 2)
	tr.Insert([]byte("abd"), 3)
	if !tr.Delete([]byte("ab")) {
		t.Fatal("delete prefix key")
	}
	for _, k := range []string{"abc", "abd"} {
		if _, ok := tr.Get([]byte(k)); !ok {
			t.Fatalf("%q lost", k)
		}
	}
	// Deleting children down to one must fold the prefix key-less node.
	if !tr.Delete([]byte("abd")) {
		t.Fatal("delete abd")
	}
	if _, ok := tr.Get([]byte("abc")); !ok {
		t.Fatal("abc lost")
	}
}

// Property: a random interleaving of inserts and deletes matches a map.
func TestInsertDeleteQuickProperty(t *testing.T) {
	type op struct {
		Key []byte
		Del bool
		Val uint64
	}
	rng := rand.New(rand.NewSource(99))
	f := func(ops []op) bool {
		tr := New(IndexMode)
		ref := map[string]uint64{}
		for _, o := range ops {
			k := o.Key
			if len(k) > 12 {
				k = k[:12]
			}
			if o.Del {
				want := false
				if _, present := ref[string(k)]; present {
					want = true
					delete(ref, string(k))
				}
				if tr.Delete(k) != want {
					return false
				}
			} else {
				tr.Insert(k, o.Val)
				ref[string(k)] = o.Val
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get([]byte(k))
			if !ok || got != v {
				return false
			}
		}
		// Scan yields exactly the reference keys in order.
		var prev []byte
		n := 0
		ok := true
		tr.Scan(nil, func(k []byte, _ uint64) bool {
			if _, present := ref[string(k)]; !present {
				ok = false
				return false
			}
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				ok = false
				return false
			}
			prev = append(prev[:0], k...)
			n++
			return true
		})
		return ok && n == len(ref)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
