package art

import "bytes"

// Floor returns the greatest key <= query and its value. This is the
// dictionary lookup of the ALM schemes: interval boundaries are the keys
// and the floor identifies the interval containing the query. It requires
// DictMode, where compressed paths are stored in full — with no tuple to
// verify against, optimistic skipping would be unsound.
func (t *Tree) Floor(query []byte) (key []byte, val uint64, ok bool) {
	if t.mode != DictMode {
		panic("art: Floor requires DictMode")
	}
	if t.root == nil {
		return nil, 0, false
	}
	l := floorRec(t.root, query, 0)
	if l == nil {
		return nil, 0, false
	}
	return l.key, l.val, true
}

// floorRec returns the greatest leaf <= query within the subtree, or nil
// when every leaf exceeds query.
func floorRec(n node, query []byte, depth int) *leaf {
	if l, ok := n.(*leaf); ok {
		if bytes.Compare(l.key, query) <= 0 {
			return l
		}
		return nil
	}
	h := hdr(n)
	if h.prefixLen > 0 {
		p := h.prefix // full bytes in DictMode
		rem := query[depth:]
		m := len(p)
		if len(rem) < m {
			m = len(rem)
		}
		for i := 0; i < m; i++ {
			if p[i] != rem[i] {
				if p[i] < rem[i] {
					return maxLeaf(n) // whole subtree below query
				}
				return nil // whole subtree above query
			}
		}
		if len(rem) < len(p) {
			// Query exhausted inside the compressed path: every key in the
			// subtree extends the query, hence exceeds it.
			return nil
		}
		depth += h.prefixLen
	}
	if depth == len(query) {
		// Children all extend the query; only an exact prefix key matches.
		return h.valueLeaf
	}
	c := query[depth]
	if ch := findChild(n, c); ch != nil {
		if l := floorRec(ch, query, depth+1); l != nil {
			return l
		}
	}
	if ch := maxChildBelow(n, int(c)); ch != nil {
		return maxLeaf(ch)
	}
	return h.valueLeaf // the node's path is a proper prefix of query
}
