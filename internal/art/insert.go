package art

import "bytes"

// Insert adds or updates a key. The key bytes are copied.
func (t *Tree) Insert(key []byte, val uint64) {
	t.insert(&t.root, key, 0, val)
}

func (t *Tree) insert(ref *node, key []byte, depth int, val uint64) {
	n := *ref
	if n == nil {
		*ref = t.newLeaf(key, val)
		return
	}
	if l, ok := n.(*leaf); ok {
		if bytes.Equal(l.key, key) {
			l.val = val
			return
		}
		// Split the leaf: a new node4 holding the common path.
		lcp := commonPrefixLen(l.key[depth:], key[depth:])
		nn := t.newNode4(key[depth : depth+lcp])
		t.attach(nn, l.key, depth+lcp, l)
		t.attach(nn, key, depth+lcp, t.newLeaf(key, val))
		*ref = nn
		return
	}
	h := hdr(n)
	if h.prefixLen > 0 {
		mp := t.prefixMismatch(n, key, depth)
		if mp < h.prefixLen {
			// Split the compressed path at the mismatch.
			actual := actualPrefix(n, depth)
			nn := t.newNode4(actual[:mp])
			edge := actual[mp]
			t.setPrefix(h, actual[mp+1:])
			insertSorted(nn.keys[:], nn.child[:], &nn.numChildren, edge, n)
			t.attach(nn, key, depth+mp, t.newLeaf(key, val))
			*ref = nn
			return
		}
		depth += h.prefixLen
	}
	if depth == len(key) {
		if h.valueLeaf != nil {
			h.valueLeaf.val = val
			return
		}
		h.valueLeaf = t.newLeaf(key, val)
		return
	}
	c := key[depth]
	if cr := childRef(n, c); cr != nil {
		t.insert(cr, key, depth+1, val)
		return
	}
	t.addChildGrow(ref, n, c, t.newLeaf(key, val))
}

// attach places a leaf under nn: as the node's value leaf when the key is
// exhausted at d, otherwise as a child keyed by key[d].
func (t *Tree) attach(nn *node4, key []byte, d int, l *leaf) {
	if len(key) == d {
		nn.valueLeaf = l
		return
	}
	var ref node = nn
	t.addChildGrow(&ref, nn, key[d], l)
}

func (t *Tree) newLeaf(key []byte, val uint64) *leaf {
	t.size++
	k := make([]byte, len(key))
	copy(k, key)
	return &leaf{key: k, val: val}
}

func (t *Tree) newNode4(prefix []byte) *node4 {
	nn := &node4{}
	t.setPrefix(&nn.header, prefix)
	return nn
}

// setPrefix records a compressed path, storing all bytes in DictMode and
// at most maxStoredPrefix bytes in IndexMode (OCPS).
func (t *Tree) setPrefix(h *header, prefix []byte) {
	h.prefixLen = len(prefix)
	keep := len(prefix)
	if t.mode == IndexMode && keep > maxStoredPrefix {
		keep = maxStoredPrefix
	}
	h.prefix = make([]byte, keep)
	copy(h.prefix, prefix[:keep])
}

// prefixMismatch returns how many bytes of the node's compressed path
// match key[depth:], up to min(prefixLen, len(key)-depth). When the stored
// (capped) bytes are exhausted the actual bytes are loaded from a leaf, as
// in standard ART inserts.
func (t *Tree) prefixMismatch(n node, key []byte, depth int) int {
	h := hdr(n)
	rem := key[depth:]
	limit := h.prefixLen
	if len(rem) < limit {
		limit = len(rem)
	}
	stored := h.prefix
	i := 0
	for i < limit && i < len(stored) && stored[i] == rem[i] {
		i++
	}
	if i < limit && i < len(stored) {
		return i // genuine mismatch within stored bytes
	}
	if i == limit {
		return i
	}
	actual := minLeaf(n).key[depth : depth+h.prefixLen]
	for i < limit && actual[i] == rem[i] {
		i++
	}
	return i
}

// addChildGrow inserts a child under byte c, upgrading the node layout
// when full and updating *ref with the replacement node.
func (t *Tree) addChildGrow(ref *node, n node, c byte, child node) {
	switch v := n.(type) {
	case *node4:
		if v.numChildren < 4 {
			insertSorted(v.keys[:], v.child[:], &v.numChildren, c, child)
			return
		}
		g := &node16{header: v.header}
		copy(g.keys[:], v.keys[:])
		copy(g.child[:], v.child[:])
		insertSorted(g.keys[:], g.child[:], &g.numChildren, c, child)
		*ref = g
	case *node16:
		if v.numChildren < 16 {
			insertSorted(v.keys[:], v.child[:], &v.numChildren, c, child)
			return
		}
		g := &node48{header: v.header}
		for i := 0; i < 16; i++ {
			g.index[v.keys[i]] = byte(i + 1)
			g.child[i] = v.child[i]
		}
		g.index[c] = byte(g.numChildren + 1)
		g.child[g.numChildren] = child
		g.numChildren++
		*ref = g
	case *node48:
		if v.numChildren < 48 {
			v.index[c] = byte(v.numChildren + 1)
			v.child[v.numChildren] = child
			v.numChildren++
			return
		}
		g := &node256{header: v.header}
		for b := 0; b < 256; b++ {
			if s := v.index[b]; s != 0 {
				g.child[b] = v.child[s-1]
			}
		}
		g.numChildren = v.numChildren
		g.child[c] = child
		g.numChildren++
		*ref = g
	case *node256:
		v.child[c] = child
		v.numChildren++
	}
}

// insertSorted places (c, child) into parallel sorted arrays.
func insertSorted(keys []byte, children []node, num *int, c byte, child node) {
	i := *num
	for i > 0 && keys[i-1] > c {
		keys[i] = keys[i-1]
		children[i] = children[i-1]
		i--
	}
	keys[i] = c
	children[i] = child
	*num++
}

func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}
