package art

import "bytes"

// Scan visits keys >= start in ascending order until fn returns false or
// the tree is exhausted. It is the range-query entry point used by the
// YCSB workload E experiments. In IndexMode, descent decisions on capped
// prefixes load actual bytes from a leaf so the scan never misses keys;
// emitted leaves are still compared against start so OCPS cannot surface
// keys below the range.
func (t *Tree) Scan(start []byte, fn func(key []byte, val uint64) bool) {
	if t.root == nil {
		return
	}
	scanRec(t.root, start, 0, fn)
}

// scanRec returns false when iteration should stop.
func scanRec(n node, start []byte, depth int, fn func([]byte, uint64) bool) bool {
	if l, ok := n.(*leaf); ok {
		if bytes.Compare(l.key, start) >= 0 {
			return fn(l.key, l.val)
		}
		return true
	}
	h := hdr(n)
	if h.prefixLen > 0 {
		p := actualPrefix(n, depth)
		rem := start[depth:]
		m := len(p)
		if len(rem) < m {
			m = len(rem)
		}
		for i := 0; i < m; i++ {
			if p[i] != rem[i] {
				if p[i] > rem[i] {
					return emitAll(n, fn) // whole subtree above start
				}
				return true // whole subtree below start
			}
		}
		if len(rem) <= len(p) {
			// start exhausted within (or exactly at) the compressed path:
			// every key in the subtree is >= start except possibly the
			// node's prefix key, which equals the path.
			return emitAll(n, fn)
		}
		depth += h.prefixLen
	}
	if depth >= len(start) {
		return emitAll(n, fn)
	}
	c := start[depth]
	// The node's prefix key (path itself) is shorter than start: skip it.
	cont := true
	eachChild(n, func(b byte, ch node) bool {
		switch {
		case b < c:
			return true // below start, skip
		case b == c:
			cont = scanRec(ch, start, depth+1, fn)
		default:
			cont = emitAll(ch, fn)
		}
		return cont
	})
	return cont
}

// emitAll visits every leaf of the subtree in ascending order.
func emitAll(n node, fn func([]byte, uint64) bool) bool {
	if l, ok := n.(*leaf); ok {
		return fn(l.key, l.val)
	}
	h := hdr(n)
	if h.valueLeaf != nil {
		if !fn(h.valueLeaf.key, h.valueLeaf.val) {
			return false
		}
	}
	cont := true
	eachChild(n, func(_ byte, ch node) bool {
		cont = emitAll(ch, fn)
		return cont
	})
	return cont
}

// eachChild visits children in ascending key-byte order until fn returns
// false.
func eachChild(n node, fn func(byte, node) bool) {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < v.numChildren; i++ {
			if !fn(v.keys[i], v.child[i]) {
				return
			}
		}
	case *node16:
		for i := 0; i < v.numChildren; i++ {
			if !fn(v.keys[i], v.child[i]) {
				return
			}
		}
	case *node48:
		for b := 0; b < 256; b++ {
			if s := v.index[b]; s != 0 {
				if !fn(byte(b), v.child[s-1]) {
					return
				}
			}
		}
	case *node256:
		for b := 0; b < 256; b++ {
			if v.child[b] != nil {
				if !fn(byte(b), v.child[b]) {
					return
				}
			}
		}
	}
}
