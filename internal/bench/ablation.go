package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/hutucker"
)

// AblationWeightingRow compares the paper's symbol-length weighting of
// interval probabilities (Section 4.2) against unweighted probabilities
// for the variable-interval schemes — a design choice DESIGN.md calls out.
type AblationWeightingRow struct {
	Scheme        core.Scheme
	CPRWeighted   float64
	CPRUnweighted float64
}

// RunAblationWeighting measures both configurations on one dataset.
func RunAblationWeighting(cfg Config) ([]AblationWeightingRow, error) {
	keys := cfg.Keys()
	samples := cfg.Sample(keys)
	limit := 1 << 14
	if cfg.Quick {
		limit = 1 << 11
	}
	var rows []AblationWeightingRow
	for _, scheme := range []core.Scheme{core.ThreeGrams, core.FourGrams, core.ALMImproved} {
		w, err := core.Build(scheme, samples, core.Options{DictLimit: limit})
		if err != nil {
			return nil, err
		}
		u, err := core.Build(scheme, samples, core.Options{DictLimit: limit, UnweightedProbabilities: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationWeightingRow{
			Scheme:        scheme,
			CPRWeighted:   w.CompressionRate(keys),
			CPRUnweighted: u.CompressionRate(keys),
		})
	}
	return rows, nil
}

// AblationDictRow compares the specialized dictionary structures against
// plain binary search — the paper cites the bitmap-trie as 2.3x faster
// than binary-searching the entries.
type AblationDictRow struct {
	Scheme           core.Scheme
	SpecializedNs    float64 // ns per char with the Table 1 structure
	BinarySearchNs   float64
	SpecializedMemKB float64
	BinarySearchKB   float64
}

// RunAblationDictStructure measures encode latency under both dictionary
// structures.
func RunAblationDictStructure(cfg Config) ([]AblationDictRow, error) {
	keys := cfg.Keys()
	samples := cfg.Sample(keys)
	limit := 1 << 14
	if cfg.Quick {
		limit = 1 << 11
	}
	var rows []AblationDictRow
	for _, scheme := range []core.Scheme{core.SingleChar, core.DoubleChar, core.ThreeGrams, core.FourGrams} {
		spec, err := core.Build(scheme, samples, core.Options{DictLimit: limit})
		if err != nil {
			return nil, err
		}
		bs, err := core.Build(scheme, samples, core.Options{DictLimit: limit, ForceBinarySearchDict: true})
		if err != nil {
			return nil, err
		}
		_, specTime := encodeAll(spec, keys)
		_, bsTime := encodeAll(bs, keys)
		rows = append(rows, AblationDictRow{
			Scheme:           scheme,
			SpecializedNs:    nsPerChar(specTime, totalBytes(keys)),
			BinarySearchNs:   nsPerChar(bsTime, totalBytes(keys)),
			SpecializedMemKB: float64(spec.MemoryUsage()) / 1024,
			BinarySearchKB:   float64(bs.MemoryUsage()) / 1024,
		})
	}
	return rows, nil
}

// AblationRangeRow compares Hu-Tucker codes against range encoding, the
// alternative Code Assigner the paper cites as needing more bits
// (Section 4.2).
type AblationRangeRow struct {
	Scheme   core.Scheme
	CPRHT    float64
	CPRRange float64
}

// RunAblationRangeEncoding measures the compression cost of range
// encoding's dyadic-boundary snapping.
func RunAblationRangeEncoding(cfg Config) ([]AblationRangeRow, error) {
	keys := cfg.Keys()
	samples := cfg.Sample(keys)
	limit := 1 << 14
	if cfg.Quick {
		limit = 1 << 11
	}
	var rows []AblationRangeRow
	for _, scheme := range []core.Scheme{core.SingleChar, core.DoubleChar, core.ThreeGrams} {
		ht, err := core.Build(scheme, samples, core.Options{DictLimit: limit})
		if err != nil {
			return nil, err
		}
		rc, err := core.Build(scheme, samples, core.Options{DictLimit: limit, UseRangeEncoding: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRangeRow{
			Scheme:   scheme,
			CPRHT:    ht.CompressionRate(keys),
			CPRRange: rc.CompressionRate(keys),
		})
	}
	return rows, nil
}

// AblationCoderRow compares the two optimal alphabetic coding algorithms:
// identical compression (both optimal) at very different build costs.
type AblationCoderRow struct {
	Scheme       core.Scheme
	Entries      int
	GWAssignSec  float64
	HTAssignSec  float64
	CPRGW, CPRHT float64
}

// RunAblationCoder measures Garsia-Wachs vs the paper's O(n²) Hu-Tucker.
func RunAblationCoder(cfg Config) ([]AblationCoderRow, error) {
	keys := cfg.Keys()
	samples := cfg.Sample(keys)
	limit := 1 << 12
	if cfg.Quick {
		limit = 1 << 10
	}
	var rows []AblationCoderRow
	for _, scheme := range []core.Scheme{core.SingleChar, core.ThreeGrams} {
		t0 := time.Now()
		gw, err := core.Build(scheme, samples, core.Options{DictLimit: limit,
			CodeAlgorithm: hutucker.GarsiaWachs})
		if err != nil {
			return nil, err
		}
		_ = time.Since(t0)
		ht, err := core.Build(scheme, samples, core.Options{DictLimit: limit,
			CodeAlgorithm: hutucker.HuTucker})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationCoderRow{
			Scheme:      scheme,
			Entries:     gw.NumEntries(),
			GWAssignSec: gw.Stats().CodeAssign.Seconds(),
			HTAssignSec: ht.Stats().CodeAssign.Seconds(),
			CPRGW:       gw.CompressionRate(keys),
			CPRHT:       ht.CompressionRate(keys),
		})
	}
	return rows, nil
}
