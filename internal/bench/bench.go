// Package bench is the experiment harness: one runner per table/figure of
// the paper's evaluation (Sections 6 and 7 plus the appendices), each
// producing the same rows/series the paper reports. The cmd/hopebench
// binary and the repository-root benchmarks are thin wrappers around
// these runners. Absolute numbers differ from the paper (different
// hardware, synthetic datasets, Go); the comparisons — who wins, by what
// factor, where crossovers fall — are the reproduction target, recorded in
// EXPERIMENTS.md.
package bench

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
)

// Config scales an experiment run.
type Config struct {
	Dataset    datagen.Kind
	NumKeys    int     // dataset size (paper: 14-25M; default laptop scale)
	NumOps     int     // workload operations (paper: 10M)
	SampleFrac float64 // HOPE build sample (paper: 1%)
	Seed       int64
	Quick      bool // shrink dictionary limits for CI-speed runs
}

// DefaultConfig returns the laptop-scale default.
func DefaultConfig(ds datagen.Kind) Config {
	return Config{Dataset: ds, NumKeys: 100000, NumOps: 100000, SampleFrac: 0.01, Seed: 42}
}

// QuickConfig returns a CI-scale configuration.
func QuickConfig(ds datagen.Kind) Config {
	return Config{Dataset: ds, NumKeys: 8000, NumOps: 8000, SampleFrac: 0.02, Seed: 42, Quick: true}
}

// Keys generates the configured dataset.
func (c Config) Keys() [][]byte { return datagen.Generate(c.Dataset, c.NumKeys, c.Seed) }

// Sample draws the HOPE build sample.
func (c Config) Sample(keys [][]byte) [][]byte {
	n := int(c.SampleFrac * float64(len(keys)))
	if n < 64 {
		n = 64
	}
	if n > len(keys) {
		n = len(keys)
	}
	return keys[:n] // keys are generated in random order already
}

// TreeConfig is one encoder configuration applied to a search tree: the
// paper evaluates seven (Section 7): Uncompressed, Single-Char,
// Double-Char, 3-Grams (64K), 4-Grams (64K), ALM-Improved (4K) and
// ALM-Improved (64K).
type TreeConfig struct {
	Name      string
	Scheme    core.Scheme
	DictLimit int
	// Plain marks the uncompressed baseline (no encoder).
	Plain bool
}

// StandardConfigs returns the paper's seven tree configurations, shrunk in
// quick mode.
func StandardConfigs(quick bool) []TreeConfig {
	big, small := 1<<16, 1<<12
	if quick {
		big, small = 1<<12, 1<<10
	}
	return []TreeConfig{
		{Name: "Uncompressed", Plain: true},
		{Name: "Single-Char", Scheme: core.SingleChar},
		{Name: "Double-Char", Scheme: core.DoubleChar},
		{Name: fmt.Sprintf("3-Grams (%s)", sizeName(big)), Scheme: core.ThreeGrams, DictLimit: big},
		{Name: fmt.Sprintf("4-Grams (%s)", sizeName(big)), Scheme: core.FourGrams, DictLimit: big},
		{Name: fmt.Sprintf("ALM-Improved (%s)", sizeName(small)), Scheme: core.ALMImproved, DictLimit: small},
		{Name: fmt.Sprintf("ALM-Improved (%s)", sizeName(big)), Scheme: core.ALMImproved, DictLimit: big},
	}
}

func sizeName(n int) string {
	if n >= 1<<10 && n%(1<<10) == 0 {
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%d", n)
}

// BuildEncoder builds the configuration's encoder (nil for Uncompressed)
// and reports the build time.
func (tc TreeConfig) BuildEncoder(samples [][]byte) (*core.Encoder, time.Duration, error) {
	if tc.Plain {
		return nil, 0, nil
	}
	t0 := time.Now()
	enc, err := core.Build(tc.Scheme, samples, core.Options{DictLimit: tc.DictLimit})
	return enc, time.Since(t0), err
}

// encodeAll encodes keys serially (or passes them through for a nil
// encoder), reporting elapsed encode time. The figures that report
// per-character encode latency use this: the paper's metric is
// single-thread latency, which the parallel bulk path would distort.
func encodeAll(enc *core.Encoder, keys [][]byte) ([][]byte, time.Duration) {
	if enc == nil {
		return keys, 0
	}
	out := make([][]byte, len(keys))
	t0 := time.Now()
	var buf []byte
	for i, k := range keys {
		b, _ := enc.EncodeBits(buf, k)
		out[i] = append([]byte(nil), b...)
		buf = b[:0]
	}
	return out, time.Since(t0)
}

// encodeAllBulk encodes keys through the parallel EncodeAll path. Load
// phases whose encode time is not a reported metric use it so figure runs
// finish faster on multi-core machines.
func encodeAllBulk(enc *core.Encoder, keys [][]byte) [][]byte {
	if enc == nil {
		return keys
	}
	return enc.EncodeAll(keys)
}

// sortedUnique sorts byte strings and drops duplicates (padded encodings
// can collide on the documented zero-padding edge; filters need unique
// sorted input).
func sortedUnique(keys [][]byte) [][]byte {
	out := make([][]byte, len(keys))
	copy(out, keys)
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	w := 0
	for i, k := range out {
		if i == 0 || !bytes.Equal(out[w-1], k) {
			out[w] = k
			w++
		}
	}
	return out[:w]
}

// totalBytes sums key lengths.
func totalBytes(keys [][]byte) int {
	n := 0
	for _, k := range keys {
		n += len(k)
	}
	return n
}

// nsPerChar converts an elapsed duration over a corpus into the paper's
// encode-latency metric.
func nsPerChar(d time.Duration, corpusBytes int) float64 {
	if corpusBytes == 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(corpusBytes)
}
