package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

func quick(t *testing.T) Config {
	t.Helper()
	c := QuickConfig(datagen.Email)
	c.NumKeys = 3000
	c.NumOps = 2000
	return c
}

func TestRunFig8(t *testing.T) {
	cfg := quick(t)
	rows, err := RunFig8(cfg, []int{1024})
	if err != nil {
		t.Fatal(err)
	}
	// 2 fixed schemes + 4 tunable x 1 size.
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.CPR <= 1 {
			t.Fatalf("%v: CPR %.2f <= 1 on email keys", r.Scheme, r.CPR)
		}
		if r.LatNsChar <= 0 || r.DictMemKB <= 0 {
			t.Fatalf("%v: missing metrics %+v", r.Scheme, r)
		}
	}
	// Paper shape: Double-Char compresses better than Single-Char.
	var single, double float64
	for _, r := range rows {
		switch r.Scheme {
		case core.SingleChar:
			single = r.CPR
		case core.DoubleChar:
			double = r.CPR
		}
	}
	if double <= single {
		t.Fatalf("Double-Char CPR %.3f <= Single-Char %.3f", double, single)
	}
}

func TestRunFig9(t *testing.T) {
	rows, err := RunFig9(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Stats.Total() <= 0 {
			t.Fatalf("%s: no time recorded", r.Label)
		}
	}
}

func TestRunFig10(t *testing.T) {
	rows, err := RunFig10(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.PointNs <= 0 || r.RangeNs <= 0 || r.MemoryMB <= 0 || r.TrieHeight <= 0 {
			t.Fatalf("%s: missing metrics %+v", r.Config, r)
		}
	}
	// Compression must shorten the trie (paper Figure 10 third row).
	if rows[0].Config != "Uncompressed" {
		t.Fatal("first config should be the baseline")
	}
	base := rows[0].TrieHeight
	for _, r := range rows[1:] {
		if !strings.Contains(r.Config, "ALM") && r.TrieHeight >= base {
			t.Fatalf("%s: height %.2f not below uncompressed %.2f", r.Config, r.TrieHeight, base)
		}
	}
}

func TestRunFig11(t *testing.T) {
	rows, err := RunFig11(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FPRReal8 > r.FPRBase {
			t.Fatalf("%s: Real8 FPR %.4f above Base %.4f", r.Config, r.FPRReal8, r.FPRBase)
		}
	}
}

func TestRunFig12(t *testing.T) {
	rows, err := RunFig12(quick(t), []string{"ART", "B+tree"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Memory: the compressed B+tree structure must be smaller than the
	// uncompressed one (paper Figure 12). At this test's key count the
	// Double-Char dictionary (65,792 entries) is not amortized, so the
	// assertion is on the tree split, which is what shrinks with key
	// length; at paper scale the dictionary is noise.
	var btBase, btDouble float64
	for _, r := range rows {
		if r.Index == "B+tree" {
			switch r.Config {
			case "Uncompressed":
				btBase = r.TreeMB
			case "Double-Char":
				btDouble = r.TreeMB
			}
		}
		if r.PointNs <= 0 || r.MemoryMB <= 0 {
			t.Fatalf("missing metrics: %+v", r)
		}
	}
	if btDouble >= btBase {
		t.Fatalf("Double-Char B+tree %.3f MB not below uncompressed %.3f MB", btDouble, btBase)
	}
}

func TestRunFig13(t *testing.T) {
	rows, err := RunFig13(quick(t), []float64{0.01, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.CPR <= 0 {
			t.Fatalf("%v at %v: CPR %.3f", r.Scheme, r.Frac, r.CPR)
		}
	}
}

func TestRunFig14(t *testing.T) {
	rows, err := RunFig14(quick(t), []int{1, 2, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Wall-clock latencies under `go test` are contaminated by parallel
	// package tests, so only a loose pathology bound is asserted here; the
	// strict batch-beats-individual comparison is a benchmark
	// (BenchmarkFig14BatchEncode) run in isolation.
	lat := map[core.Scheme]map[int]float64{}
	for _, r := range rows {
		if r.LatNsChar <= 0 {
			t.Fatalf("missing latency: %+v", r)
		}
		if lat[r.Scheme] == nil {
			lat[r.Scheme] = map[int]float64{}
		}
		lat[r.Scheme][r.BatchSize] = r.LatNsChar
	}
	for s, m := range lat {
		if m[32] > m[1]*3 {
			t.Fatalf("%v: batch-32 latency %.1f pathologically above batch-1 %.1f", s, m[32], m[1])
		}
	}
}

func TestRunFig15(t *testing.T) {
	rows, err := RunFig15(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(core.Schemes)*4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Matched dictionary/distribution pairs should compress at least as
	// well as mismatched ones on average (paper Appendix C).
	var matched, mismatched, nm, nx float64
	for _, r := range rows {
		if r.Dict == r.Eval {
			matched += r.CPR
			nm++
		} else {
			mismatched += r.CPR
			nx++
		}
	}
	if matched/nm < mismatched/nx {
		t.Fatalf("matched CPR %.3f below mismatched %.3f", matched/nm, mismatched/nx)
	}
}

func TestRunFig16(t *testing.T) {
	rows, err := RunFig16(quick(t), []string{"HOT", "Prefix B+tree"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.RangeNs <= 0 || r.InsertNs <= 0 {
			t.Fatalf("missing metrics: %+v", r)
		}
	}
}

func TestAblations(t *testing.T) {
	cfg := quick(t)
	w, err := RunAblationWeighting(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 3 {
		t.Fatal("weighting rows")
	}
	d, err := RunAblationDictStructure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range d {
		if r.SpecializedNs <= 0 || r.BinarySearchNs <= 0 {
			t.Fatalf("missing latency: %+v", r)
		}
	}
	c, err := RunAblationCoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c {
		// Both coders are optimal: compression must agree tightly.
		if r.CPRGW < r.CPRHT*0.995 || r.CPRGW > r.CPRHT*1.005 {
			t.Fatalf("%v: GW CPR %.4f vs HT %.4f", r.Scheme, r.CPRGW, r.CPRHT)
		}
	}
	// Range encoding must never beat optimal Hu-Tucker (paper §4.2).
	re, err := RunAblationRangeEncoding(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range re {
		if r.CPRRange > r.CPRHT+1e-9 {
			t.Fatalf("%v: range encoding CPR %.4f above Hu-Tucker %.4f",
				r.Scheme, r.CPRRange, r.CPRHT)
		}
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatal("table 1 rows")
	}
	if rows[3].Dictionary != "bitmap-trie" {
		t.Fatal("3-Grams dictionary")
	}
}

func TestIndexAdapters(t *testing.T) {
	for _, name := range IndexNames {
		idx := NewIndex(name)
		idx.Insert([]byte("alpha"), 1)
		idx.Insert([]byte("beta"), 2)
		idx.Insert([]byte("gamma"), 3)
		if v, ok := idx.Get([]byte("beta")); !ok || v != 2 {
			t.Fatalf("%s: get", name)
		}
		if n := idx.Scan([]byte("b"), 10); n != 2 {
			t.Fatalf("%s: scan saw %d keys, want 2", name, n)
		}
		if idx.MemoryUsage() <= 0 {
			t.Fatalf("%s: memory", name)
		}
		if idx.Name() != name {
			t.Fatalf("%s: name", name)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	var sb strings.Builder
	Table(&sb, "demo", []string{"a", "b"}, [][]string{{"1", "2"}})
	out := sb.String()
	for _, want := range []string{"== demo ==", "a", "1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output", want)
		}
	}
	if F(1.234) != "1.23" || F3(1.2345) != "1.234" || Pct(0.5) != "50.0%" {
		t.Fatal("formatters")
	}
}
