package bench

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

// TestIndexesAgreeUnderRandomWorkload drives every evaluated tree and a
// sorted-map model through one random operation sequence; any divergence
// in lookups or scans is a bug in that tree.
func TestIndexesAgreeUnderRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	pool := datagen.Generate(datagen.Email, 4000, 5)
	idxs := make([]Index, len(IndexNames))
	for i, n := range IndexNames {
		idxs[i] = NewIndex(n)
	}
	model := map[string]uint64{}
	var modelKeys []string
	modelSorted := false

	lowerBound := func(start []byte, limit int) []string {
		if !modelSorted {
			modelKeys = modelKeys[:0]
			for k := range model {
				modelKeys = append(modelKeys, k)
			}
			sort.Strings(modelKeys)
			modelSorted = true
		}
		i := sort.SearchStrings(modelKeys, string(start))
		var out []string
		for ; i < len(modelKeys) && len(out) < limit; i++ {
			out = append(out, modelKeys[i])
		}
		return out
	}

	for op := 0; op < 20000; op++ {
		k := pool[rng.Intn(len(pool))]
		switch rng.Intn(4) {
		case 0, 1: // insert/update
			v := rng.Uint64()
			model[string(k)] = v
			modelSorted = false
			for _, idx := range idxs {
				idx.Insert(k, v)
			}
		case 2: // point lookup
			want, present := model[string(k)]
			for _, idx := range idxs {
				got, ok := idx.Get(k)
				if ok != present || (present && got != want) {
					t.Fatalf("%s: Get(%q)=(%d,%v), want (%d,%v) at op %d",
						idx.Name(), k, got, ok, want, present, op)
				}
			}
		default: // short scan
			limit := 1 + rng.Intn(10)
			want := lowerBound(k, limit)
			for _, idx := range idxs {
				if got := idx.Scan(k, limit); got != len(want) {
					t.Fatalf("%s: Scan(%q,%d)=%d keys, want %d at op %d",
						idx.Name(), k, limit, got, len(want), op)
				}
			}
		}
	}
}

// TestIndexesAgreeOnEncodedKeys repeats the differential workload over
// HOPE-encoded keys: the trees must behave identically on compressed keys,
// which is the end-to-end integration the paper's Section 7 rests on.
func TestIndexesAgreeOnEncodedKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pool := datagen.Generate(datagen.Wiki, 3000, 6)
	enc, err := core.Build(core.ThreeGrams, pool[:128], core.Options{DictLimit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-encode; padded encodings may collide (documented edge), so
	// dedupe to keep the model exact.
	seen := map[string]bool{}
	var keys [][]byte
	for _, k := range pool {
		e := enc.Encode(k)
		if !seen[string(e)] {
			seen[string(e)] = true
			keys = append(keys, e)
		}
	}
	idxs := make([]Index, len(IndexNames))
	for i, n := range IndexNames {
		idxs[i] = NewIndex(n)
	}
	for i, k := range keys {
		for _, idx := range idxs {
			idx.Insert(k, uint64(i))
		}
	}
	for trial := 0; trial < 4000; trial++ {
		k := keys[rng.Intn(len(keys))]
		for _, idx := range idxs {
			if v, ok := idx.Get(k); !ok || v == ^uint64(0) {
				t.Fatalf("%s: lost encoded key", idx.Name())
			}
		}
		// Scans agree across trees.
		limit := 1 + rng.Intn(8)
		counts := make([]int, len(idxs))
		for i, idx := range idxs {
			counts[i] = idx.Scan(k, limit)
		}
		for i := 1; i < len(counts); i++ {
			if counts[i] != counts[0] {
				t.Fatalf("scan disagreement: %s=%d vs %s=%d",
					idxs[0].Name(), counts[0], idxs[i].Name(), counts[i])
			}
		}
	}
	// Order preservation end to end: encoded full scans are sorted and
	// decode back to sorted originals.
	var scanned [][]byte
	idxs[0].(*artIndex).t.Scan(nil, func(k []byte, _ uint64) bool {
		scanned = append(scanned, append([]byte(nil), k...))
		return true
	})
	if len(scanned) != len(keys) {
		t.Fatalf("full scan saw %d keys, want %d", len(scanned), len(keys))
	}
	for i := 1; i < len(scanned); i++ {
		if bytes.Compare(scanned[i-1], scanned[i]) >= 0 {
			t.Fatal("encoded scan not sorted")
		}
	}
}
