package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	hope "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/lifecycle"
)

// DriftBenchRow is one timeline window of the dictionary-drift figure: a
// key stream whose distribution shifts mid-run (datagen.DriftStream over
// the Appendix C email halves), served by an adaptive index that rebuilds
// its dictionary on drift and by an identical index whose initial
// dictionary is frozen. `make bench-drift` writes the rows to
// BENCH_drift.json — the adaptation record cmd/benchdiff gates with
// -mode drift.
//
// Window -1 is the summary row: the configuration's final CPR evaluated
// on the shifted distribution, and — for the adaptive config only — the
// recovery ratio against a dictionary built from scratch on that
// distribution, the acceptance metric (>= 0.9 means the background
// rebuild recovered to within 10% of ideal). The frozen config's
// no-adaptation floor is visible (and gated) through its summary
// cpr_recent.
type DriftBenchRow struct {
	Dataset       string  `json:"dataset"`
	Config        string  `json:"config"` // "adaptive" or "frozen"
	Window        int     `json:"window"` // -1 = summary
	KeysSeen      int     `json:"keys_seen"`
	OpsPerSec     float64 `json:"ops_per_sec"` // puts+gets in the window
	CPRRecent     float64 `json:"cpr_recent"`  // rolling CPR at window end
	State         string  `json:"state"`
	Generation    int     `json:"generation"`
	Rebuilds      int     `json:"rebuilds"`
	ScratchCPR    float64 `json:"scratch_cpr,omitempty"`    // summary only
	RecoveryRatio float64 `json:"recovery_ratio,omitempty"` // summary only
}

// driftWindows is the timeline resolution of the figure.
const driftWindows = 20

// RunFigDrift drives the drift figure: both indexes start from the same
// initial dictionary built on the base distribution, then serve a
// DriftStream that ramps from the base half (gmail/yahoo emails) to the
// shifted half (every other provider) between 35% and 65% of the stream.
// Each window Puts its chunk and Gets it back, recording throughput and
// the rolling CPR; the adaptive index is expected to detect the drift,
// rebuild in the background, and recover the compression rate the frozen
// index permanently loses.
func RunFigDrift(cfg Config) ([]DriftBenchRow, error) {
	keys := datagen.Generate(datagen.Email, cfg.NumKeys, cfg.Seed)
	base, shifted := datagen.SplitEmailByProvider(keys)
	if len(base) == 0 || len(shifted) == 0 {
		return nil, fmt.Errorf("bench: degenerate email split %d/%d", len(base), len(shifted))
	}
	stream := datagen.DriftStream(base, shifted, cfg.NumKeys, 0.35, 0.65, cfg.Seed+1)

	// 3-Grams: the n-gram dictionary is sharply distribution-specific (the
	// drift signal is large) and builds in milliseconds, so the background
	// rebuild lands within the timeline and the rolling CPR visibly
	// recovers — the figure's point.
	scheme := core.ThreeGrams
	bopt := core.Options{DictLimit: 1 << 12}
	if cfg.Quick {
		bopt.DictLimit = 1 << 11
	}
	enc, err := core.Build(scheme, cfg.Sample(base), bopt)
	if err != nil {
		return nil, err
	}
	chunkLen := len(stream) / driftWindows
	lc := lifecycle.Config{
		ReservoirSize:  max(1024, cfg.NumKeys/50),
		Seed:           cfg.Seed,
		WindowSize:     max(256, chunkLen/4),
		CheckEvery:     128,
		DriftThreshold: 0.10,
	}
	lc.Cooldown = 2 * lc.WindowSize
	mk := func(frozen bool) (*hope.AdaptiveIndex, error) {
		st, err := hope.Open(hope.ART, hope.WithAdaptive(hope.AdaptiveOptions{
			Scheme:    scheme,
			Build:     bopt,
			Encoder:   enc.Clone(),
			Shards:    8,
			Manual:    frozen,
			Lifecycle: lc,
		}))
		if err != nil {
			return nil, err
		}
		return st.(*hope.AdaptiveIndex), nil
	}
	adaptive, err := mk(false)
	if err != nil {
		return nil, err
	}
	frozen, err := mk(true)
	if err != nil {
		return nil, err
	}

	var rows []DriftBenchRow
	systems := []struct {
		name string
		idx  *hope.AdaptiveIndex
	}{{"adaptive", adaptive}, {"frozen", frozen}}
	seen := 0
	for w := 0; w < driftWindows; w++ {
		lo, hi := w*chunkLen, (w+1)*chunkLen
		if w == driftWindows-1 {
			hi = len(stream)
		}
		chunk := stream[lo:hi]
		seen += len(chunk)
		for _, sys := range systems {
			t0 := time.Now()
			for i, k := range chunk {
				if err := sys.idx.Put(k, uint64(lo+i)); err != nil {
					return nil, err
				}
			}
			for _, k := range chunk {
				sys.idx.Get(k)
			}
			wall := time.Since(t0).Seconds()
			st := sys.idx.Stats()
			row := DriftBenchRow{
				Dataset:    datagen.Email.String(),
				Config:     sys.name,
				Window:     w,
				KeysSeen:   seen,
				CPRRecent:  st.RecentCPR,
				State:      st.State.String(),
				Generation: st.Generation,
				Rebuilds:   st.Rebuilds,
			}
			if wall > 0 {
				row.OpsPerSec = float64(2*len(chunk)) / wall
			}
			rows = append(rows, row)
		}
	}
	adaptive.Quiesce()

	// Summary: final CPR of each configuration's serving dictionary on the
	// shifted distribution, against a from-scratch dictionary built on it.
	scratch, err := core.Build(scheme, cfg.Sample(shifted), bopt)
	if err != nil {
		return nil, err
	}
	evalN := min(len(shifted), 20000)
	eval := shifted[:evalN]
	scratchCPR := scratch.CompressionRate(eval)
	for _, sys := range systems {
		st := sys.idx.Stats()
		row := DriftBenchRow{
			Dataset:    datagen.Email.String(),
			Config:     sys.name,
			Window:     -1,
			KeysSeen:   seen,
			State:      st.State.String(),
			Generation: st.Generation,
			Rebuilds:   st.Rebuilds,
			ScratchCPR: scratchCPR,
		}
		if e := sys.idx.Encoder(); e != nil {
			// Clone: the template's encode state belongs to the index.
			row.CPRRecent = e.Clone().CompressionRate(eval)
			// Only the adaptive config carries the recovery ratio: the
			// benchdiff gate takes the median per metric, and a frozen-row
			// ratio would dilute it to the point where an adaptive-only
			// collapse slips under the threshold. The frozen floor is
			// still pinned through its summary cpr_recent.
			if sys.name == "adaptive" && scratchCPR > 0 {
				row.RecoveryRatio = row.CPRRecent / scratchCPR
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteDriftBenchJSON writes the rows as indented JSON (BENCH_drift.json).
func WriteDriftBenchJSON(w io.Writer, rows []DriftBenchRow) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(rows)
}

// ReadDriftBenchJSON decodes a BENCH_drift.json record (cmd/benchdiff).
func ReadDriftBenchJSON(r io.Reader) ([]DriftBenchRow, error) {
	var rows []DriftBenchRow
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return nil, err
	}
	return rows, nil
}
