package bench

import "testing"

// The acceptance check for the drift figure at CI scale: the adaptive
// index must detect the distribution shift, rebuild at least once, and
// its post-adaptation CPR on the shifted distribution must land within
// 10% of a dictionary built from scratch on it — while the frozen control
// must not adapt (that is what makes the comparison meaningful).
func TestDriftFigureRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("drift figure run in -short mode")
	}
	cfg := Config{Dataset: 0, NumKeys: 24000, NumOps: 0, SampleFrac: 0.02, Seed: 42, Quick: true}
	rows, err := RunFigDrift(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var adaptive, frozen *DriftBenchRow
	for i := range rows {
		if rows[i].Window == -1 {
			switch rows[i].Config {
			case "adaptive":
				adaptive = &rows[i]
			case "frozen":
				frozen = &rows[i]
			}
		}
	}
	if adaptive == nil || frozen == nil {
		t.Fatal("summary rows missing")
	}
	if adaptive.Rebuilds < 1 || adaptive.Generation < 1 {
		t.Fatalf("adaptive index never rebuilt: %+v", *adaptive)
	}
	if frozen.Rebuilds != 0 {
		t.Fatalf("frozen control rebuilt: %+v", *frozen)
	}
	if adaptive.RecoveryRatio < 0.9 {
		t.Fatalf("post-adaptation CPR %.3f is below 90%% of scratch %.3f (ratio %.3f)",
			adaptive.CPRRecent, adaptive.ScratchCPR, adaptive.RecoveryRatio)
	}
	if adaptive.CPRRecent <= frozen.CPRRecent {
		t.Fatalf("adaptive CPR %.3f not better than frozen %.3f on the shifted distribution",
			adaptive.CPRRecent, frozen.CPRRecent)
	}
	// Timeline sanity: every window present for both configs, monotone
	// keys_seen.
	perConfig := map[string]int{}
	for _, r := range rows {
		if r.Window >= 0 {
			perConfig[r.Config]++
		}
	}
	if perConfig["adaptive"] != driftWindows || perConfig["frozen"] != driftWindows {
		t.Fatalf("window rows: %+v", perConfig)
	}
}
