package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
)

// EncodeBenchRow is one scheme's encode-path measurement, the repository's
// perf-trajectory record (written to BENCH_encode.json by `make bench` so
// successive PRs can compare encode performance).
type EncodeBenchRow struct {
	Dataset      string  `json:"dataset"`
	Scheme       string  `json:"scheme"`
	DictEntries  int     `json:"dict_entries"`
	Keys         int     `json:"keys"`
	SerialNsKey  float64 `json:"serial_ns_per_key"`
	SerialNsChar float64 `json:"serial_ns_per_char"`
	BulkNsKey    float64 `json:"bulk_ns_per_key"` // EncodeAll wall time per key
	BulkSpeedup  float64 `json:"bulk_speedup"`    // serial wall / bulk wall
	Workers      int     `json:"workers"`         // GOMAXPROCS during the run
	CPR          float64 `json:"cpr"`
}

// benchPasses is the number of timed passes per cell; each cell records
// the minimum. See the comment at the timing loops.
const benchPasses = 3

// RunEncodeBench measures the serial encode kernel and the parallel
// EncodeAll bulk path for every scheme on the configured dataset.
func RunEncodeBench(cfg Config) ([]EncodeBenchRow, error) {
	keys := cfg.Keys()
	samples := cfg.Sample(keys)
	limit := 1 << 16
	if cfg.Quick {
		limit = 1 << 11
	}
	chars := totalBytes(keys)
	var rows []EncodeBenchRow
	for _, scheme := range core.Schemes {
		enc, err := core.Build(scheme, samples, core.Options{DictLimit: limit})
		if err != nil {
			return nil, err
		}
		// Warm the kernel and appender, then time the serial bulk
		// alternative: encode key by key, materializing each result (the
		// loop EncodeAll replaces — one allocation per key).
		var buf []byte
		for _, k := range keys[:min(len(keys), 1000)] {
			b, _ := enc.EncodeBits(buf, k)
			buf = b[:0]
		}
		// Both cells allocate megabytes per pass, so a single wall-clock
		// run is dominated by whether the collector fires inside the timed
		// window — ±50% swings on small-core boxes. Take the best of three
		// passes with a forced GC between them: the minimum is the cell's
		// achievable cost, and it is stable enough for benchdiff to gate on.
		serial := time.Duration(1<<63 - 1)
		for pass := 0; pass < benchPasses; pass++ {
			runtime.GC()
			out := make([][]byte, len(keys))
			t0 := time.Now()
			for i, k := range keys {
				b, _ := enc.EncodeBits(buf, k)
				out[i] = append([]byte(nil), b...)
				buf = b[:0]
			}
			if d := time.Since(t0); d < serial {
				serial = d
			}
			_ = out
		}

		bulk := time.Duration(1<<63 - 1)
		for pass := 0; pass < benchPasses; pass++ {
			runtime.GC()
			t0 := time.Now()
			enc.EncodeAll(keys)
			if d := time.Since(t0); d < bulk {
				bulk = d
			}
		}
		speedup := 0.0 // 0 signals an unmeasurable (sub-tick) bulk run
		if bulk > 0 {
			speedup = float64(serial.Nanoseconds()) / float64(bulk.Nanoseconds())
		}

		rows = append(rows, EncodeBenchRow{
			Dataset:      cfg.Dataset.String(),
			Scheme:       scheme.String(),
			DictEntries:  enc.NumEntries(),
			Keys:         len(keys),
			SerialNsKey:  float64(serial.Nanoseconds()) / float64(len(keys)),
			SerialNsChar: nsPerChar(serial, chars),
			BulkNsKey:    float64(bulk.Nanoseconds()) / float64(len(keys)),
			BulkSpeedup:  speedup,
			Workers:      runtime.GOMAXPROCS(0),
			CPR:          enc.CompressionRate(keys),
		})
	}
	return rows, nil
}

// WriteEncodeBenchJSON writes the rows as indented JSON.
func WriteEncodeBenchJSON(w io.Writer, rows []EncodeBenchRow) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(rows)
}
