package bench

import (
	"encoding/json"
	"io"
	"time"

	hope "repro"
	"repro/internal/ycsb"
)

// TreeBenchRow is one (backend, configuration) cell of the end-to-end
// search-tree evaluation — the paper's headline integration result (load,
// point lookup and range-scan throughput plus memory per key, tree and
// dictionary included). `make bench-tree` writes the rows to
// BENCH_tree.json so successive PRs can track the end-to-end trajectory
// next to the encode-path record in BENCH_encode.json.
type TreeBenchRow struct {
	Dataset     string  `json:"dataset"`
	Backend     string  `json:"backend"`
	Config      string  `json:"config"`
	Keys        int     `json:"keys"`
	LoadSec     float64 `json:"load_sec"`          // Bulk: encode + tree build
	LoadKeysSec float64 `json:"load_keys_per_sec"` // load throughput
	PointNs     float64 `json:"point_ns_per_op"`   // YCSB-C Get latency
	ScanNs      float64 `json:"scan_ns_per_op"`    // 10-key range scan latency
	BytesPerKey float64 `json:"bytes_per_key"`     // (tree + dict) / keys
	TreeMB      float64 `json:"tree_mb"`
	DictMB      float64 `json:"dict_mb"`
	CPR         float64 `json:"cpr"` // encoder compression rate (0 = plain)
}

// treeScanLen is the fixed range-scan length of the tree benchmark (the
// mid-point of YCSB-E's 1..100 uniform scan lengths, fixed so scan
// latencies are comparable across rows).
const treeScanLen = 10

// RunFigTree reproduces the end-to-end figure: every facade backend under
// every standard encoder configuration, loaded and queried through
// hope.Index so the measured path is the one applications use (transparent
// key encoding, bound translation, filter short-circuits).
func RunFigTree(cfg Config, backends []hope.Backend) ([]TreeBenchRow, error) {
	keys := cfg.Keys()
	samples := cfg.Sample(keys)
	wl := ycsb.GenerateC(cfg.NumOps, len(keys), cfg.Seed+1)
	// Scans visit treeScanLen keys each; a tenth of the point ops keeps
	// the scan phase comparable in wall time to the point phase.
	scanOps := wl.Ops[:max(1, len(wl.Ops)/10)]

	var rows []TreeBenchRow
	for _, tc := range StandardConfigs(cfg.Quick) {
		enc, _, err := tc.BuildEncoder(samples)
		if err != nil {
			return nil, err
		}
		for _, backend := range backends {
			st, err := hope.Open(backend, hope.WithEncoder(enc))
			if err != nil {
				return nil, err
			}
			x := st.(*hope.Index)
			t0 := time.Now()
			if err := x.Bulk(keys, nil); err != nil {
				return nil, err
			}
			loadSec := time.Since(t0).Seconds()

			t0 = time.Now()
			for _, op := range wl.Ops {
				x.Get(keys[op.Key])
			}
			pointNs := float64(time.Since(t0).Nanoseconds()) / float64(len(wl.Ops))

			t0 = time.Now()
			for _, op := range scanOps {
				n := 0
				x.Scan(keys[op.Key], nil, func([]byte, uint64) bool {
					n++
					return n < treeScanLen
				})
			}
			scanNs := float64(time.Since(t0).Nanoseconds()) / float64(len(scanOps))

			treeMem := x.TreeMemoryUsage()
			dictMem := x.MemoryUsage() - treeMem
			row := TreeBenchRow{
				Dataset:     cfg.Dataset.String(),
				Backend:     string(backend),
				Config:      tc.Name,
				Keys:        len(keys),
				LoadSec:     loadSec,
				PointNs:     pointNs,
				ScanNs:      scanNs,
				BytesPerKey: float64(treeMem+dictMem) / float64(len(keys)),
				TreeMB:      float64(treeMem) / (1 << 20),
				DictMB:      float64(dictMem) / (1 << 20),
			}
			if loadSec > 0 {
				row.LoadKeysSec = float64(len(keys)) / loadSec
			}
			if enc != nil {
				row.CPR = enc.CompressionRate(keys)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteTreeBenchJSON writes the rows as indented JSON (BENCH_tree.json).
func WriteTreeBenchJSON(w io.Writer, rows []TreeBenchRow) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(rows)
}
