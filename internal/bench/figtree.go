package bench

import (
	"encoding/json"
	"errors"
	"io"
	"runtime"
	"time"

	hope "repro"
	"repro/internal/core"
	"repro/internal/ycsb"
)

// TreeBenchRow is one (backend, configuration) cell of the end-to-end
// search-tree evaluation — the paper's headline integration result (load,
// point lookup and range-scan throughput plus memory per key, tree and
// dictionary included). `make bench-tree` writes the rows to
// BENCH_tree.json so successive PRs can track the end-to-end trajectory
// next to the encode-path record in BENCH_encode.json.
type TreeBenchRow struct {
	Dataset     string  `json:"dataset"`
	Backend     string  `json:"backend"`
	Config      string  `json:"config"`
	Keys        int     `json:"keys"`
	LoadSec     float64 `json:"load_sec"`          // Bulk: encode + tree build
	LoadKeysSec float64 `json:"load_keys_per_sec"` // load throughput
	PointNs     float64 `json:"point_ns_per_op"`   // YCSB-C Get latency
	ScanNs      float64 `json:"scan_ns_per_op"`    // 10-key range scan latency
	InsertNs    float64 `json:"insert_ns_per_op"`  // Put latency into a 90%-loaded tree
	BytesPerKey float64 `json:"bytes_per_key"`     // (tree + dict) / keys
	TreeMB      float64 `json:"tree_mb"`
	DictMB      float64 `json:"dict_mb"`
	CPR         float64 `json:"cpr"` // encoder compression rate (0 = plain)
}

// treeScanLen is the fixed range-scan length of the tree benchmark (the
// mid-point of YCSB-E's 1..100 uniform scan lengths, fixed so scan
// latencies are comparable across rows).
const treeScanLen = 10

// RunFigTree reproduces the end-to-end figure: every facade backend under
// every standard encoder configuration, loaded and queried through
// hope.Index so the measured path is the one applications use (transparent
// key encoding, bound translation, filter short-circuits).
func RunFigTree(cfg Config, backends []hope.Backend) ([]TreeBenchRow, error) {
	keys := cfg.Keys()
	samples := cfg.Sample(keys)
	wl := ycsb.GenerateC(cfg.NumOps, len(keys), cfg.Seed+1)
	// Scans visit treeScanLen keys each; a tenth of the point ops keeps
	// the scan phase comparable in wall time to the point phase.
	scanOps := wl.Ops[:max(1, len(wl.Ops)/10)]

	var rows []TreeBenchRow
	for _, tc := range StandardConfigs(cfg.Quick) {
		enc, _, err := tc.BuildEncoder(samples)
		if err != nil {
			return nil, err
		}
		for _, backend := range backends {
			st, err := hope.Open(backend, hope.WithEncoder(enc))
			if err != nil {
				return nil, err
			}
			x := st.(*hope.Index)
			// Each timed phase starts from a collected heap so a GC cycle
			// triggered by the previous phase's garbage does not land in
			// this phase's window (the cells are single wall-clock runs).
			runtime.GC()
			t0 := time.Now()
			if err := x.Bulk(keys, nil); err != nil {
				return nil, err
			}
			loadSec := time.Since(t0).Seconds()

			// Insert-heavy cell: bulk-load 90% of the keys into a fresh
			// index, then time individual Puts of the held-out 10%.
			// Every tenth key is held out so the inserts land throughout
			// the key space rather than only at the right edge. Bulk-only
			// backends (SuRF) record 0 — no insert path to measure.
			insertNs, err := insertCell(backend, enc, keys)
			if err != nil {
				return nil, err
			}

			runtime.GC()
			t0 = time.Now()
			for _, op := range wl.Ops {
				x.Get(keys[op.Key])
			}
			pointNs := float64(time.Since(t0).Nanoseconds()) / float64(len(wl.Ops))

			t0 = time.Now()
			for _, op := range scanOps {
				n := 0
				x.Scan(keys[op.Key], nil, func([]byte, uint64) bool {
					n++
					return n < treeScanLen
				})
			}
			scanNs := float64(time.Since(t0).Nanoseconds()) / float64(len(scanOps))

			treeMem := x.TreeMemoryUsage()
			dictMem := x.MemoryUsage() - treeMem
			row := TreeBenchRow{
				Dataset:     cfg.Dataset.String(),
				Backend:     string(backend),
				Config:      tc.Name,
				Keys:        len(keys),
				LoadSec:     loadSec,
				PointNs:     pointNs,
				ScanNs:      scanNs,
				InsertNs:    insertNs,
				BytesPerKey: float64(treeMem+dictMem) / float64(len(keys)),
				TreeMB:      float64(treeMem) / (1 << 20),
				DictMB:      float64(dictMem) / (1 << 20),
			}
			if loadSec > 0 {
				row.LoadKeysSec = float64(len(keys)) / loadSec
			}
			if enc != nil {
				row.CPR = enc.CompressionRate(keys)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// insertCell times individual Puts of every tenth key into an index
// bulk-loaded with the other 90%, returning ns/op (0 for immutable
// backends, which have no insert path).
func insertCell(backend hope.Backend, enc *core.Encoder, keys [][]byte) (float64, error) {
	ins, err := hope.Open(backend, hope.WithEncoder(enc))
	if err != nil {
		return 0, err
	}
	xi := ins.(*hope.Index)
	loaded := make([][]byte, 0, len(keys))
	held := make([][]byte, 0, len(keys)/10+1)
	for i, k := range keys {
		if i%10 == 9 {
			held = append(held, k)
		} else {
			loaded = append(loaded, k)
		}
	}
	if err := xi.Bulk(loaded, nil); err != nil {
		return 0, err
	}
	if len(held) < 2 {
		return 0, nil
	}
	// Warmup Put doubles as the immutability probe.
	if err := xi.Put(held[0], 0); err != nil {
		if errors.Is(err, hope.ErrImmutableBackend) {
			return 0, nil
		}
		return 0, err
	}
	runtime.GC()
	t0 := time.Now()
	for i, k := range held[1:] {
		if err := xi.Put(k, uint64(i)); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(len(held)-1), nil
}

// WriteTreeBenchJSON writes the rows as indented JSON (BENCH_tree.json).
func WriteTreeBenchJSON(w io.Writer, rows []TreeBenchRow) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(rows)
}
