package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/surf"
	"repro/internal/ttree"
)

// TestFigure7KeyStorageSpectrum verifies the paper's Figure 7 ordering:
// HOPE's memory benefit tracks how much key material a structure stores.
// B+tree (full keys) saves the most; Prefix B+tree (truncated keys) less;
// SuRF (succinct partial keys) clearly; ART and HOT (partial keys +
// pointers) little; the T-Tree (no keys) exactly nothing.
func TestFigure7KeyStorageSpectrum(t *testing.T) {
	keys := datagen.Generate(datagen.Email, 20000, 42)
	enc, err := core.Build(core.DoubleChar, keys[:400], core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	encoded, _ := encodeAll(enc, keys)

	saving := func(name string) float64 {
		t.Helper()
		plain, comp := NewIndex(name), NewIndex(name)
		for i := range keys {
			plain.Insert(keys[i], uint64(i))
			comp.Insert(encoded[i], uint64(i))
		}
		return 1 - float64(comp.MemoryUsage())/float64(plain.MemoryUsage())
	}
	btSave := saving("B+tree")
	pbSave := saving("Prefix B+tree")
	artSave := saving("ART")
	hotSave := saving("HOT")

	// SuRF: succinct partial keys.
	sPlain := surf.Build(sortedUnique(keys), surf.Real, 8)
	sComp := surf.Build(sortedUnique(encoded), surf.Real, 8)
	surfSave := 1 - float64(sComp.MemoryUsage())/float64(sPlain.MemoryUsage())

	// T-Tree: record IDs only; compression changes nothing.
	ids := make([]uint64, len(keys))
	for i := range ids {
		ids[i] = uint64(i)
	}
	ttPlain := ttree.BulkLoad(ttree.SliceStore(keys), ids)
	ttComp := ttree.BulkLoad(ttree.SliceStore(encoded), ids)
	ttSave := 1 - float64(ttComp.MemoryUsage())/float64(ttPlain.MemoryUsage())

	t.Logf("Figure 7 savings: B+tree %.1f%%, Prefix B+tree %.1f%%, SuRF %.1f%%, ART %.1f%%, HOT %.1f%%, T-Tree %.1f%%",
		btSave*100, pbSave*100, surfSave*100, artSave*100, hotSave*100, ttSave*100)

	if !(btSave > pbSave) {
		t.Errorf("B+tree saving %.3f not above Prefix B+tree %.3f", btSave, pbSave)
	}
	if !(pbSave > artSave) {
		t.Errorf("Prefix B+tree saving %.3f not above ART %.3f", pbSave, artSave)
	}
	if surfSave < 0.05 {
		t.Errorf("SuRF saving %.3f too small", surfSave)
	}
	if artSave < -0.02 || hotSave < -0.02 {
		t.Errorf("partial-key tries should not grow: ART %.3f, HOT %.3f", artSave, hotSave)
	}
	if ttSave != 0 {
		t.Errorf("T-Tree saving %.3f, must be exactly 0", ttSave)
	}
	if btSave < 0.10 {
		t.Errorf("B+tree saving %.3f below the paper's band", btSave)
	}
}
