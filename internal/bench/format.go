package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table writes rows of cells as an aligned text table with a header.
func Table(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	fmt.Fprintln(tw, strings.Join(dashes(header), "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

func dashes(header []string) []string {
	out := make([]string, len(header))
	for i, h := range header {
		out[i] = strings.Repeat("-", len(h))
	}
	return out
}

// F formats a float compactly.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// F3 formats a float with three decimals (rates, seconds).
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
