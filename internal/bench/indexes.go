package bench

import (
	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/hot"
	"repro/internal/prefixbtree"
)

// Index abstracts the four key-value search trees of the paper's
// Figure 12/16 experiments.
type Index interface {
	Name() string
	Insert(key []byte, val uint64)
	Get(key []byte) (uint64, bool)
	// Scan visits up to limit keys >= start and returns how many it saw.
	Scan(start []byte, limit int) int
	MemoryUsage() int
}

// IndexNames lists the evaluated trees in the paper's order.
var IndexNames = []string{"ART", "HOT", "B+tree", "Prefix B+tree"}

// NewIndex constructs an evaluated tree by name.
func NewIndex(name string) Index {
	switch name {
	case "ART":
		return &artIndex{t: art.New(art.IndexMode)}
	case "HOT":
		return &hotIndex{t: hot.New()}
	case "B+tree":
		return &btreeIndex{t: btree.New()}
	case "Prefix B+tree":
		return &prefixIndex{t: prefixbtree.New()}
	}
	panic("bench: unknown index " + name)
}

type artIndex struct{ t *art.Tree }

func (x *artIndex) Name() string                { return "ART" }
func (x *artIndex) Insert(k []byte, v uint64)   { x.t.Insert(k, v) }
func (x *artIndex) Get(k []byte) (uint64, bool) { return x.t.Get(k) }
func (x *artIndex) MemoryUsage() int            { return x.t.MemoryUsage() }
func (x *artIndex) Scan(start []byte, limit int) int {
	n := 0
	x.t.Scan(start, func([]byte, uint64) bool {
		n++
		return n < limit
	})
	return n
}

type hotIndex struct{ t *hot.Tree }

func (x *hotIndex) Name() string                { return "HOT" }
func (x *hotIndex) Insert(k []byte, v uint64)   { x.t.Insert(k, v) }
func (x *hotIndex) Get(k []byte) (uint64, bool) { return x.t.Get(k) }
func (x *hotIndex) MemoryUsage() int            { return x.t.MemoryUsage() }
func (x *hotIndex) Scan(start []byte, limit int) int {
	n := 0
	x.t.Scan(start, func([]byte, uint64) bool {
		n++
		return n < limit
	})
	return n
}

type btreeIndex struct{ t *btree.Tree }

func (x *btreeIndex) Name() string                { return "B+tree" }
func (x *btreeIndex) Insert(k []byte, v uint64)   { x.t.Insert(k, v) }
func (x *btreeIndex) Get(k []byte) (uint64, bool) { return x.t.Get(k) }
func (x *btreeIndex) MemoryUsage() int            { return x.t.MemoryUsage() }
func (x *btreeIndex) Scan(start []byte, limit int) int {
	n := 0
	x.t.Scan(start, func([]byte, uint64) bool {
		n++
		return n < limit
	})
	return n
}

type prefixIndex struct{ t *prefixbtree.Tree }

func (x *prefixIndex) Name() string                { return "Prefix B+tree" }
func (x *prefixIndex) Insert(k []byte, v uint64)   { x.t.Insert(k, v) }
func (x *prefixIndex) Get(k []byte) (uint64, bool) { return x.t.Get(k) }
func (x *prefixIndex) MemoryUsage() int            { return x.t.MemoryUsage() }
func (x *prefixIndex) Scan(start []byte, limit int) int {
	n := 0
	x.t.Scan(start, func([]byte, uint64) bool {
		n++
		return n < limit
	})
	return n
}
