package bench

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/server"
)

// LoadConfig configures one open-loop load run against a hopeserve
// endpoint: N connections collectively pacing toward TargetQPS, a warmup
// phase excluded from the record, and an op mix drawn from Keys.
type LoadConfig struct {
	Addr      string
	Conns     int
	TargetQPS float64       // aggregate across all connections
	Duration  time.Duration // measured phase
	Warmup    time.Duration // excluded from the histograms

	Keys [][]byte // keyspace; every key must pass server.ValidKey

	// Op mix: fractions of set/del/range ops; the remainder are gets.
	SetFrac, DelFrac, RangeFrac float64
	RangeLimit                  int // results per range op (default 50)

	Seed     int64
	Pipeline int // max outstanding requests per connection (default 256)
}

// LoadResult aggregates a load run. Latency is measured open-loop: each
// op's clock starts at its *scheduled* send time, not the moment the
// sender got around to writing it, so a stalled server inflates the
// recorded latency of every op scheduled during the stall instead of
// silently thinning the arrival rate (the coordinated-omission error
// closed-loop harnesses make).
type LoadResult struct {
	Hists       map[string]*telemetry.Hist // per op kind: "get" "set" "del" "range"
	Sent        uint64                     // measured-phase ops sent
	Recv        uint64                     // measured-phase replies received
	ProtoErrors uint64                     // ERR replies (any phase)
	Elapsed     time.Duration              // measured phase wall clock
	AchievedQPS float64                    // measured-phase replies / Elapsed
}

// LoadOps enumerates the op kinds in reporting order.
var LoadOps = []string{"get", "set", "del", "range"}

// Hist returns the named op histogram (an empty one if the mix produced
// no such ops).
func (r *LoadResult) Hist(op string) *telemetry.Hist {
	if h := r.Hists[op]; h != nil {
		return h
	}
	return &telemetry.Hist{}
}

// pendingOp rides the per-connection FIFO from sender to receiver: which
// histogram the reply belongs to and when the op was scheduled.
type pendingOp struct {
	kind     uint8
	intended time.Time
}

const (
	opGet uint8 = iota
	opSet
	opDel
	opRange
	numOps
)

var opNames = [numOps]string{"get", "set", "del", "range"}

// connStats is one connection's private accounting, merged after the run.
type connStats struct {
	hists [numOps]telemetry.Hist
	sent  uint64
	recv  uint64
	err   error
}

// RunLoad drives the configured load and reports the latency record.
// Each connection runs an independent sender/receiver goroutine pair
// joined by a bounded FIFO: the sender paces requests by schedule and
// pipelines everything that is due, the receiver drains replies and
// attributes each to its op's intended start time. The FIFO bound
// (Pipeline) caps per-connection outstanding requests so a dead server
// fails the run instead of buffering unbounded requests.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Conns <= 0 || cfg.TargetQPS <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: Conns, TargetQPS and Duration must be positive")
	}
	if len(cfg.Keys) == 0 {
		return nil, fmt.Errorf("load: empty keyspace")
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 256
	}
	if cfg.RangeLimit <= 0 {
		cfg.RangeLimit = 50
	}
	for _, k := range cfg.Keys {
		if !server.ValidKey(k) {
			return nil, fmt.Errorf("load: key %q is not wire-safe", k)
		}
	}

	conns := make([]net.Conn, cfg.Conns)
	for i := range conns {
		c, err := net.DialTimeout("tcp", cfg.Addr, 5*time.Second)
		if err != nil {
			for _, open := range conns[:i] {
				open.Close()
			}
			return nil, fmt.Errorf("load: dial %s: %w", cfg.Addr, err)
		}
		conns[i] = c
	}

	var protoErrs atomic.Uint64
	stats := make([]connStats, cfg.Conns)
	start := time.Now().Add(10 * time.Millisecond) // common epoch for all conns
	measureFrom := start.Add(cfg.Warmup)
	end := measureFrom.Add(cfg.Duration)
	interval := time.Duration(float64(cfg.Conns) / cfg.TargetQPS * float64(time.Second))

	var wg sync.WaitGroup
	for i := range conns {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer conns[id].Close()
			runLoadConn(cfg, conns[id], &stats[id], &protoErrs, start, measureFrom, end, interval, id)
		}(i)
	}
	wg.Wait()

	res := &LoadResult{
		Hists:       map[string]*telemetry.Hist{},
		Elapsed:     end.Sub(measureFrom),
		ProtoErrors: protoErrs.Load(),
	}
	for k := range opNames {
		res.Hists[opNames[k]] = &telemetry.Hist{}
	}
	var firstErr error
	for i := range stats {
		st := &stats[i]
		if st.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("load: conn %d: %w", i, st.err)
		}
		res.Sent += st.sent
		res.Recv += st.recv
		for k := range opNames {
			res.Hists[opNames[k]].Merge(&st.hists[k])
		}
	}
	if sec := res.Elapsed.Seconds(); sec > 0 {
		res.AchievedQPS = float64(res.Recv) / sec
	}
	return res, firstErr
}

// runLoadConn is one connection's sender/receiver pair. The sender owns
// the schedule: op n is due at start + n*interval; everything due is
// appended to the write buffer and the buffer flushed once the next op
// lies in the future (or the batch grows past flushEvery), which is what
// turns a pacing backlog into a pipelined burst rather than a syscall per
// op. The receiver drains replies in FIFO order and records each against
// its op's intended time.
func runLoadConn(cfg LoadConfig, conn net.Conn, st *connStats, protoErrs *atomic.Uint64,
	start, measureFrom, end time.Time, interval time.Duration, id int) {

	const flushEvery = 64
	pending := make(chan pendingOp, cfg.Pipeline)
	recvDone := make(chan struct{})
	var recvErr error

	go func() {
		defer close(recvDone)
		r := bufio.NewReaderSize(conn, 1<<16)
		for op := range pending {
			rep, err := server.ReadReply(r)
			if err != nil {
				recvErr = err
				// Drain remaining tokens so the sender never blocks on a
				// full FIFO after the transport died.
				for range pending {
				}
				return
			}
			if rep.Kind == server.ReplyErr {
				protoErrs.Add(1)
				continue
			}
			if !op.intended.Before(measureFrom) {
				st.recv++
				st.hists[op.kind].Record(time.Since(op.intended))
			}
		}
	}()

	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*104729))
	w := bufio.NewWriterSize(conn, 1<<16)
	var buf []byte
	inBatch := 0
	offset := time.Duration(float64(interval) * float64(id) / float64(cfg.Conns)) // desynchronize conns
	for n := 0; ; n++ {
		intended := start.Add(offset + time.Duration(n)*interval)
		if !intended.Before(end) {
			break
		}
		if wait := time.Until(intended); wait > 0 {
			if inBatch > 0 {
				if st.err == nil {
					st.err = w.Flush()
				}
				inBatch = 0
			}
			time.Sleep(wait)
		}

		kind, key := nextLoadOp(cfg, rng)
		buf = buf[:0]
		switch kind {
		case opGet:
			buf = server.AppendGet(buf, key)
		case opSet:
			buf = server.AppendSet(buf, key, uint64(n))
		case opDel:
			buf = server.AppendDel(buf, key)
		case opRange:
			buf = server.AppendRange(buf, key, nil, cfg.RangeLimit)
		}
		if _, err := w.Write(buf); err != nil {
			if st.err == nil {
				st.err = err
			}
			break
		}
		if !intended.Before(measureFrom) {
			st.sent++
		}
		pending <- pendingOp{kind: kind, intended: intended}
		if inBatch++; inBatch >= flushEvery {
			if err := w.Flush(); err != nil {
				if st.err == nil {
					st.err = err
				}
				break
			}
			inBatch = 0
		}
	}
	if err := w.Flush(); err != nil && st.err == nil {
		st.err = err
	}
	close(pending)
	<-recvDone
	if recvErr != nil && st.err == nil {
		st.err = recvErr
	}
}

// nextLoadOp draws one op from the configured mix.
func nextLoadOp(cfg LoadConfig, rng *rand.Rand) (uint8, []byte) {
	key := cfg.Keys[rng.Intn(len(cfg.Keys))]
	p := rng.Float64()
	switch {
	case p < cfg.SetFrac:
		return opSet, key
	case p < cfg.SetFrac+cfg.DelFrac:
		return opDel, key
	case p < cfg.SetFrac+cfg.DelFrac+cfg.RangeFrac:
		return opRange, key
	}
	return opGet, key
}
