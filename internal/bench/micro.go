package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
)

// Fig8Row is one point of the paper's Figure 8: a scheme at a dictionary
// size, with its compression rate, per-character encode latency and
// dictionary memory.
type Fig8Row struct {
	Scheme    core.Scheme
	Requested int // requested dictionary entries (0 = fixed-size scheme)
	Entries   int // actual entries
	CPR       float64
	LatNsChar float64
	DictMemKB float64
	BuildTime time.Duration
}

// Fig8Sizes returns the figure's x-axis (2^8..2^18), truncated in quick
// mode.
func Fig8Sizes(quick bool) []int {
	max := 1 << 16 // full paper sweep reaches 2^18; 2^16 keeps runs minutes-scale
	if quick {
		max = 1 << 12
	}
	var sizes []int
	for s := 1 << 10; s <= max; s <<= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// RunFig8 reproduces Figure 8 for one dataset: every scheme, swept over
// dictionary sizes (fixed-size schemes contribute one point each).
func RunFig8(cfg Config, sizes []int) ([]Fig8Row, error) {
	keys := cfg.Keys()
	samples := cfg.Sample(keys)
	var rows []Fig8Row
	run := func(scheme core.Scheme, limit int) error {
		t0 := time.Now()
		enc, err := core.Build(scheme, samples, core.Options{DictLimit: limit})
		if err != nil {
			return fmt.Errorf("%v at %d: %w", scheme, limit, err)
		}
		build := time.Since(t0)
		_, encTime := encodeAll(enc, keys)
		rows = append(rows, Fig8Row{
			Scheme:    scheme,
			Requested: limit,
			Entries:   enc.NumEntries(),
			CPR:       enc.CompressionRate(keys),
			LatNsChar: nsPerChar(encTime, totalBytes(keys)),
			DictMemKB: float64(enc.MemoryUsage()) / 1024,
			BuildTime: build,
		})
		return nil
	}
	for _, scheme := range []core.Scheme{core.SingleChar, core.DoubleChar} {
		if err := run(scheme, 0); err != nil {
			return nil, err
		}
	}
	for _, scheme := range []core.Scheme{core.ALM, core.ThreeGrams, core.FourGrams, core.ALMImproved} {
		for _, size := range sizes {
			if err := run(scheme, size); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// Fig9Row is one bar of Figure 9: the build-time breakdown of a scheme.
type Fig9Row struct {
	Label string
	Stats core.BuildStats
}

// RunFig9 reproduces Figure 9 (dictionary build time breakdown, email
// dataset, fixed-size schemes plus the tunable schemes at two sizes).
func RunFig9(cfg Config) ([]Fig9Row, error) {
	keys := cfg.Keys()
	samples := cfg.Sample(keys)
	small, big := 1<<12, 1<<16
	if cfg.Quick {
		small, big = 1<<10, 1<<12
	}
	type job struct {
		label  string
		scheme core.Scheme
		limit  int
	}
	jobs := []job{
		{"Single-Char", core.SingleChar, 0},
		{"Double-Char", core.DoubleChar, 0},
	}
	for _, s := range []core.Scheme{core.ThreeGrams, core.FourGrams, core.ALM, core.ALMImproved} {
		jobs = append(jobs, job{fmt.Sprintf("%v (%s)", s, sizeName(small)), s, small})
	}
	for _, s := range []core.Scheme{core.ThreeGrams, core.FourGrams, core.ALM, core.ALMImproved} {
		jobs = append(jobs, job{fmt.Sprintf("%v (%s)", s, sizeName(big)), s, big})
	}
	var rows []Fig9Row
	for _, j := range jobs {
		enc, err := core.Build(j.scheme, samples, core.Options{DictLimit: j.limit})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{Label: j.label, Stats: enc.Stats()})
	}
	return rows, nil
}

// Fig13Row is one point of Appendix A: compression rate vs sample size.
type Fig13Row struct {
	Scheme  core.Scheme
	Frac    float64
	Samples int
	CPR     float64
}

// RunFig13 reproduces the sample-size sensitivity study.
func RunFig13(cfg Config, fracs []float64) ([]Fig13Row, error) {
	keys := cfg.Keys()
	limit := 1 << 16
	if cfg.Quick {
		limit = 1 << 11
	}
	var rows []Fig13Row
	for _, scheme := range core.Schemes {
		for _, frac := range fracs {
			n := int(frac * float64(len(keys)))
			if n < 16 {
				n = 16
			}
			if n > len(keys) {
				n = len(keys)
			}
			// ALM's all-substring counting is super-linear: cap its sample
			// as the paper did (its 100% points are absent from Fig 13).
			if (scheme == core.ALM || scheme == core.ALMImproved) && n > 50000 {
				continue
			}
			enc, err := core.Build(scheme, keys[:n], core.Options{DictLimit: limit})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig13Row{Scheme: scheme, Frac: frac, Samples: n,
				CPR: enc.CompressionRate(keys)})
		}
	}
	return rows, nil
}

// Fig14Row is one bar of Appendix B: per-character encode latency at a
// batch size.
type Fig14Row struct {
	Scheme    core.Scheme
	BatchSize int
	LatNsChar float64
}

// RunFig14 reproduces the batch-encoding study on a pre-sorted sample.
func RunFig14(cfg Config, batchSizes []int) ([]Fig14Row, error) {
	keys := sortedUnique(cfg.Keys())
	samples := cfg.Sample(cfg.Keys())
	limit := 1 << 16
	if cfg.Quick {
		limit = 1 << 11
	}
	var rows []Fig14Row
	for _, scheme := range []core.Scheme{core.SingleChar, core.DoubleChar, core.ThreeGrams, core.FourGrams} {
		enc, err := core.Build(scheme, samples, core.Options{DictLimit: limit})
		if err != nil {
			return nil, err
		}
		for _, bs := range batchSizes {
			t0 := time.Now()
			for i := 0; i < len(keys); i += bs {
				end := i + bs
				if end > len(keys) {
					end = len(keys)
				}
				enc.EncodeBatch(keys[i:end])
			}
			rows = append(rows, Fig14Row{Scheme: scheme, BatchSize: bs,
				LatNsChar: nsPerChar(time.Since(t0), totalBytes(keys))})
		}
	}
	return rows, nil
}

// Fig15Row is one bar of Appendix C: a dictionary built on one key
// distribution compressing another.
type Fig15Row struct {
	Scheme core.Scheme
	Dict   string // "A" or "B"
	Eval   string // "A" or "B"
	CPR    float64
}

// RunFig15 reproduces the key-distribution-change study: emails split into
// gmail/yahoo (A) and the rest (B).
func RunFig15(cfg Config) ([]Fig15Row, error) {
	keys := datagen.Generate(datagen.Email, cfg.NumKeys, cfg.Seed)
	a, b := datagen.SplitEmailByProvider(keys)
	limit := 1 << 16
	if cfg.Quick {
		limit = 1 << 11
	}
	halves := map[string][][]byte{"A": a, "B": b}
	var rows []Fig15Row
	for _, scheme := range core.Schemes {
		encs := map[string]*core.Encoder{}
		for name, half := range halves {
			enc, err := core.Build(scheme, cfg.Sample(half), core.Options{DictLimit: limit})
			if err != nil {
				return nil, err
			}
			encs[name] = enc
		}
		for _, dict := range []string{"A", "B"} {
			for _, eval := range []string{"A", "B"} {
				rows = append(rows, Fig15Row{Scheme: scheme, Dict: dict, Eval: eval,
					CPR: encs[dict].CompressionRate(halves[eval])})
			}
		}
	}
	return rows, nil
}
