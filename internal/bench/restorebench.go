package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	hope "repro"
	"repro/internal/core"
)

// RestoreBenchRow is one cell of the restart benchmark: the same corpus
// brought to serving readiness along the two boot paths the persistence
// layer distinguishes. Cold is the from-scratch path — build the
// dictionary from a sample, encode every key, bulk-load the tree.
// Restore is the snapshot path — hope.Open with WithSnapshotDir, which
// reassembles the stored dictionary and bulk-loads the already-encoded
// runs without re-encoding anything. `make bench-restore` writes the
// rows to BENCH_restore.json — the record cmd/benchdiff gates with
// -mode restore. Speedup (cold/restore) above 1 is the figure's claim:
// restart from a snapshot must beat a cold re-encode, and by more the
// heavier the encoding scheme.
type RestoreBenchRow struct {
	Dataset string `json:"dataset"`
	Backend string `json:"backend"`
	Config  string `json:"config"`
	Shards  int    `json:"shards"`
	Keys    int    `json:"keys"`
	// ColdSec is dictionary build + encode + bulk load from raw keys.
	ColdSec float64 `json:"cold_sec"`
	// SnapshotSec is the checkpoint cost: one Snapshot() commit.
	SnapshotSec float64 `json:"snapshot_sec"`
	// RestoreSec is hope.Open restoring from the committed snapshot.
	RestoreSec float64 `json:"restore_sec"`
	SnapshotMB float64 `json:"snapshot_mb"`
	Speedup    float64 `json:"speedup"` // ColdSec / RestoreSec
	// MaxProcs records GOMAXPROCS during the run — the multi-core caveat
	// marker: restore bulk-loads shards in parallel, so on a single-core
	// runner its advantage is purely the skipped dictionary build and
	// re-encode, with no parallelism component.
	MaxProcs int `json:"maxprocs"`
}

// RestoreConfigs returns the encoder configurations the restore figure
// sweeps: the uncompressed baseline (restore saves only the tree load),
// the cheap-to-build FIVC scheme, and a dictionary-heavy VIVC scheme
// whose cold build cost the snapshot path amortizes away entirely.
func RestoreConfigs(quick bool) []TreeConfig {
	limit := 1 << 16
	if quick {
		limit = 1 << 12
	}
	return []TreeConfig{
		{Name: "Uncompressed", Plain: true},
		{Name: "Double-Char", Scheme: core.DoubleChar},
		{Name: "3-Grams", Scheme: core.ThreeGrams, DictLimit: limit},
	}
}

// RestoreSizes returns the corpus sizes the figure sweeps, derived from
// the run's key budget: a half-size point to show the trend and the full
// corpus for the headline cell.
func RestoreSizes(cfg Config) []int {
	return []int{cfg.NumKeys / 2, cfg.NumKeys}
}

// RunFigRestore is the restart figure: for each scheme × backend × size
// it times the cold boot (dictionary build + encode + bulk load), takes
// one snapshot, then times hope.Open restoring from it, verifying the
// restored store actually came from disk and holds every key.
func RunFigRestore(cfg Config, backends []hope.Backend, sizes []int) ([]RestoreBenchRow, error) {
	all := cfg.Keys()
	var rows []RestoreBenchRow
	for _, tc := range RestoreConfigs(cfg.Quick) {
		for _, backend := range backends {
			for _, n := range sizes {
				if n > len(all) {
					n = len(all)
				}
				row, err := runRestoreCell(cfg, backend, tc, all[:n])
				if err != nil {
					return nil, fmt.Errorf("restore fig %s/%s/%d: %w", tc.Name, backend, n, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// restoreShards is the shard count every cell uses: enough for the
// parallel restore path to exercise its per-shard fan-out without
// drowning small corpora in partitioning overhead.
const restoreShards = 4

func runRestoreCell(cfg Config, backend hope.Backend, tc TreeConfig, keys [][]byte) (RestoreBenchRow, error) {
	dir, err := os.MkdirTemp("", "hope-restore-")
	if err != nil {
		return RestoreBenchRow{}, err
	}
	defer os.RemoveAll(dir)

	// Cold boot: everything between process start and serving readiness
	// that the snapshot path gets to skip — sampling, dictionary build,
	// key encode, tree load. The store opens through the persistence
	// layer so the subsequent snapshot captures exactly this state.
	samples := cfg.Sample(keys)
	t0 := time.Now()
	enc, _, err := tc.BuildEncoder(samples)
	if err != nil {
		return RestoreBenchRow{}, err
	}
	st, err := hope.Open(backend,
		hope.WithEncoder(enc),
		hope.WithShards(restoreShards),
		hope.WithSnapshotDir(dir))
	if err != nil {
		return RestoreBenchRow{}, err
	}
	if err := st.Bulk(keys, nil); err != nil {
		return RestoreBenchRow{}, err
	}
	coldSec := time.Since(t0).Seconds()

	p := st.(*hope.Persistent)
	t0 = time.Now()
	if err := p.Snapshot(); err != nil {
		return RestoreBenchRow{}, err
	}
	snapSec := time.Since(t0).Seconds()
	if err := st.Close(); err != nil {
		return RestoreBenchRow{}, err
	}
	snapBytes, err := dirBytes(dir)
	if err != nil {
		return RestoreBenchRow{}, err
	}

	// Restore boot: the snapshot alone reconstructs the store — no
	// encoder option, no keys, no shape flags.
	t0 = time.Now()
	st2, err := hope.Open(backend, hope.WithSnapshotDir(dir))
	if err != nil {
		return RestoreBenchRow{}, err
	}
	restoreSec := time.Since(t0).Seconds()
	defer st2.Close()
	p2 := st2.(*hope.Persistent)
	if !p2.Restored() {
		return RestoreBenchRow{}, fmt.Errorf("restore did not come from disk")
	}
	if got := st2.Len(); got != len(keys) {
		return RestoreBenchRow{}, fmt.Errorf("restored %d keys, want %d", got, len(keys))
	}

	row := RestoreBenchRow{
		Dataset:     cfg.Dataset.String(),
		Backend:     string(backend),
		Config:      tc.Name,
		Shards:      restoreShards,
		Keys:        len(keys),
		ColdSec:     coldSec,
		SnapshotSec: snapSec,
		RestoreSec:  restoreSec,
		SnapshotMB:  float64(snapBytes) / (1 << 20),
		MaxProcs:    runtime.GOMAXPROCS(0),
	}
	if restoreSec > 0 {
		row.Speedup = coldSec / restoreSec
	}
	return row, nil
}

// dirBytes sums the sizes of the committed snapshot files in dir.
func dirBytes(dir string) (int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}

// WriteRestoreBenchJSON writes the rows as indented JSON
// (BENCH_restore.json).
func WriteRestoreBenchJSON(w io.Writer, rows []RestoreBenchRow) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(rows)
}

// ReadRestoreBenchJSON decodes a BENCH_restore.json record
// (cmd/benchdiff).
func ReadRestoreBenchJSON(r io.Reader) ([]RestoreBenchRow, error) {
	var rows []RestoreBenchRow
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return nil, err
	}
	return rows, nil
}
