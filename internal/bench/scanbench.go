package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	hope "repro"
	"repro/internal/core"
	"repro/internal/ycsb"
)

// ScanBenchRow is one cell of the scan-partitioning benchmark: the
// scan-heavy YCSB-E workload driven against one ShardedIndex
// configuration, hash- versus range-partitioned, across shard counts.
// `make bench-scan` writes the rows to BENCH_scan.json — the record
// cmd/benchdiff gates with -mode scan. The figure isolates the tentpole
// effect: a hash partition opens a cursor on every shard per scan
// (~shards × chunk tree probes before the merge emits anything), a range
// partition touches only the shards the scan's bounds overlap, so its
// advantage should grow with the shard count.
type ScanBenchRow struct {
	Dataset   string  `json:"dataset"`
	Workload  string  `json:"workload"`
	Backend   string  `json:"backend"`
	Config    string  `json:"config"`
	Partition string  `json:"partition"` // "hash" | "range"
	Shards    int     `json:"shards"`
	Keys      int     `json:"keys"`
	Ops       int     `json:"ops"`
	AvgScan   float64 `json:"avg_scan_len"` // mean results per scan op
	OpsPerSec float64 `json:"ops_per_sec"`
	LoadSec   float64 `json:"load_sec"`
	// MaxShardFrac is the loaded partition's skew: the largest shard's
	// share of the keys (1/shards is perfect balance).
	MaxShardFrac float64 `json:"max_shard_frac"`
	// MaxProcs records GOMAXPROCS during the run — the multi-core caveat
	// marker: on a single-core runner the range-partitioning win is purely
	// algorithmic (fewer tree probes, no merge heap), with no parallelism
	// component.
	MaxProcs int `json:"maxprocs"`
}

// ScanBackends are the trees the scan figure drives (the paper's fastest
// trie and the classic page-based baseline, as in the YCSB figure).
var ScanBackends = []hope.Backend{hope.ART, hope.BTree}

// ScanConfigs returns the encoder configurations the scan figure sweeps:
// the uncompressed baseline and Double-Char, the FIVC scheme with the
// best CPR-for-latency trade-off — partitioning behavior, not scheme
// behavior, is this figure's axis.
func ScanConfigs() []TreeConfig {
	return []TreeConfig{
		{Name: "Uncompressed", Plain: true},
		{Name: "Double-Char", Scheme: core.DoubleChar},
	}
}

// RunFigScan is the scan-partitioning figure: YCSB-E (95% short scans
// averaging ~50 results, 5% inserts) against hash- and range-partitioned
// ShardedIndexes across shard counts, single-goroutine so the comparison
// isolates per-op work (probes, merge overhead) rather than contention.
func RunFigScan(cfg Config, backends []hope.Backend, shardCounts []int) ([]ScanBenchRow, error) {
	all := cfg.Keys()
	pool := cfg.NumOps/10 + 64
	if pool > len(all)/2 {
		pool = len(all) / 2
	}
	loaded := all[:len(all)-pool]
	samples := cfg.Sample(loaded)

	var rows []ScanBenchRow
	for _, tc := range ScanConfigs() {
		template, _, err := tc.BuildEncoder(samples)
		if err != nil {
			return nil, err
		}
		for _, backend := range backends {
			for _, shards := range shardCounts {
				for _, partition := range []string{"hash", "range"} {
					row, err := runScanCell(cfg, backend, tc, template, partition, shards, all, loaded)
					if err != nil {
						return nil, err
					}
					rows = append(rows, row)
				}
			}
		}
	}
	return rows, nil
}

func runScanCell(cfg Config, backend hope.Backend, tc TreeConfig, template *core.Encoder,
	partition string, shards int, all, loaded [][]byte) (ScanBenchRow, error) {
	var enc *core.Encoder
	if template != nil {
		enc = template.Clone()
	}
	opts := []hope.Option{hope.WithEncoder(enc), hope.WithShards(shards)}
	if partition == "range" {
		// Split points sampled from the load corpus — the same corpus the
		// dictionary samples come from, mirroring a production bulk load.
		opts = append(opts, hope.WithRangePartitioner(loaded))
	}
	st, err := hope.Open(backend, opts...)
	if err != nil {
		return ScanBenchRow{}, err
	}
	s := st.(*hope.ShardedIndex)
	t0 := time.Now()
	if err := s.Bulk(loaded, nil); err != nil {
		return ScanBenchRow{}, err
	}
	loadSec := time.Since(t0).Seconds()

	w := ycsb.Generate(ycsb.E, cfg.NumOps, len(loaded), cfg.Seed+int64(shards)*31)
	if mk := w.MaxKey(); mk >= len(all) {
		return ScanBenchRow{}, fmt.Errorf("scan fig: insert pool exhausted (need key %d, have %d)", mk, len(all))
	}

	scanned, scans := 0, 0
	t0 = time.Now()
	for _, op := range w.Ops {
		switch op.Kind {
		case ycsb.Scan:
			n := 0
			s.Scan(all[op.Key], nil, func([]byte, uint64) bool {
				n++
				return n < op.ScanLen
			})
			scanned += n
			scans++
		case ycsb.Insert:
			if err := s.Put(all[op.Key], uint64(op.Key)); err != nil {
				return ScanBenchRow{}, err
			}
		}
	}
	wall := time.Since(t0).Seconds()

	row := ScanBenchRow{
		Dataset:   cfg.Dataset.String(),
		Workload:  ycsb.E.String(),
		Backend:   string(backend),
		Config:    tc.Name,
		Partition: partition,
		Shards:    s.NumShards(),
		Keys:      len(loaded),
		Ops:       len(w.Ops),
		LoadSec:   loadSec,
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	if scans > 0 {
		row.AvgScan = float64(scanned) / float64(scans)
	}
	if wall > 0 {
		row.OpsPerSec = float64(len(w.Ops)) / wall
	}
	row.MaxShardFrac = s.MaxShardFrac()
	return row, nil
}

// WriteScanBenchJSON writes the rows as indented JSON (BENCH_scan.json).
func WriteScanBenchJSON(w io.Writer, rows []ScanBenchRow) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(rows)
}

// ReadScanBenchJSON decodes a BENCH_scan.json record (cmd/benchdiff).
func ReadScanBenchJSON(r io.Reader) ([]ScanBenchRow, error) {
	var rows []ScanBenchRow
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return nil, err
	}
	return rows, nil
}
