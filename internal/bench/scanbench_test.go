package bench

import (
	"bytes"
	"testing"

	"repro/internal/datagen"
)

// TestRunFigScan runs the scan-partitioning harness at smoke scale and
// checks the grid is complete and internally consistent: one row per
// config × backend × shard count × partition, a hash and a range row for
// every cell, sane throughput and scan lengths, balanced range splits,
// and a JSON round trip (the benchdiff gate consumes the serialized
// form). It also pins the figure's direction at ≥4 shards — range must
// not lose to hash once the merge tax bites — so a planner regression
// fails the suite, not just the perf gate.
func TestRunFigScan(t *testing.T) {
	cfg := QuickConfig(datagen.Email)
	cfg.NumKeys = 4000
	cfg.NumOps = 1200
	shardCounts := []int{2, 4}
	rows, err := RunFigScan(cfg, ScanBackends, shardCounts)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(ScanConfigs()) * len(ScanBackends) * len(shardCounts) * 2
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	type cell struct {
		backend, config string
		shards          int
	}
	perf := map[cell]map[string]float64{}
	for _, r := range rows {
		if r.OpsPerSec <= 0 {
			t.Fatalf("%s/%s/%s/s%d: non-positive throughput", r.Backend, r.Config, r.Partition, r.Shards)
		}
		if r.AvgScan <= 1 || r.AvgScan > 100 {
			t.Fatalf("%s/%s/%s/s%d: avg scan length %f outside (1,100]", r.Backend, r.Config, r.Partition, r.Shards, r.AvgScan)
		}
		if r.MaxShardFrac <= 0 || r.MaxShardFrac > 1 {
			t.Fatalf("bad max_shard_frac %f", r.MaxShardFrac)
		}
		if r.Partition == "range" && r.Shards >= 4 && r.MaxShardFrac > 0.75 {
			t.Fatalf("range splits badly skewed: %f of keys in one of %d shards", r.MaxShardFrac, r.Shards)
		}
		c := cell{r.Backend, r.Config, r.Shards}
		if perf[c] == nil {
			perf[c] = map[string]float64{}
		}
		if _, dup := perf[c][r.Partition]; dup {
			t.Fatalf("duplicate cell %v/%s", c, r.Partition)
		}
		perf[c][r.Partition] = r.OpsPerSec
	}
	for c, p := range perf {
		if len(p) != 2 {
			t.Fatalf("cell %v missing a partition row", c)
		}
		if c.shards >= 4 && p["range"] < p["hash"] {
			t.Fatalf("cell %v: range (%.0f ops/s) slower than hash (%.0f ops/s) at %d shards",
				c, p["range"], p["hash"], c.shards)
		}
	}
	var buf bytes.Buffer
	if err := WriteScanBenchJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScanBenchJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) || back[0] != rows[0] {
		t.Fatal("JSON round trip mutated rows")
	}
}
