package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	hope "repro"
	"repro/internal/core"
	"repro/server"
)

// ServeBenchRow is one op-type cell of the network serving figure: an
// open-loop load run (hopeload's engine) against an in-process hopeserve
// wrapping one Store configuration, reported as the op's latency
// percentiles at the achieved throughput. `make bench-serve` writes the
// rows to BENCH_serve.json — the end-to-end serving-latency record
// cmd/benchdiff gates with -mode serve.
type ServeBenchRow struct {
	Dataset     string  `json:"dataset"`
	Workload    string  `json:"workload"` // mix name: "read-heavy" | "mixed"
	Store       string  `json:"store"`    // "sharded" | "adaptive"
	Config      string  `json:"config"`   // "Uncompressed" | "Double-Char"
	Conns       int     `json:"conns"`
	Op          string  `json:"op"` // "get" | "set" | "del" | "range"
	Count       uint64  `json:"count"`
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"` // whole run, all op kinds
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	P999us      float64 `json:"p999_us"`
	MeanUs      float64 `json:"mean_us"`
	MaxUs       float64 `json:"max_us"`
	ProtoErrors uint64  `json:"protocol_errors"`
	// MaxProcs is the single-core caveat marker (as in the YCSB and scan
	// figures): with GOMAXPROCS=1 the server, its clients, and any
	// background store work time-share one core, so tail latencies include
	// scheduler queuing that a multi-core run would not show.
	MaxProcs int `json:"maxprocs"`
}

// serveMix is one workload mix of the serving figure.
type serveMix struct {
	name                        string
	setFrac, delFrac, rangeFrac float64
}

// ServeMixes are the workload mixes the figure sweeps: the memcached-style
// read-dominant mix, and a write-heavier mix with a slice of short range
// scans to keep the ordered-scan path on the wire.
var ServeMixes = []serveMix{
	{name: "read-heavy", setFrac: 0.05},
	{name: "mixed", setFrac: 0.25, delFrac: 0.00, rangeFrac: 0.05},
}

// ServeStores are the Store configurations the figure serves: the
// lock-striped ShardedIndex and the full AdaptiveIndex (its lifecycle
// machinery idle but armed — the cost of having it on the serving path is
// part of what the figure records).
var ServeStores = []string{"sharded", "adaptive"}

// ServeConfigs returns the encoder configurations the figure sweeps.
func ServeConfigs() []TreeConfig {
	return []TreeConfig{
		{Name: "Uncompressed", Plain: true},
		{Name: "Double-Char", Scheme: core.DoubleChar},
	}
}

// RunFigServe is the network serving figure: workload mix × connection
// count × {ShardedIndex, AdaptiveIndex} × {Uncompressed, Double-Char},
// each cell an open-loop run at targetQPS through a real TCP loopback
// server, drained with the production Shutdown path afterwards. One row
// per op kind that actually ran.
func RunFigServe(cfg Config, conns []int, targetQPS float64, warmup, duration time.Duration) ([]ServeBenchRow, error) {
	all := cfg.Keys()
	keys := make([][]byte, 0, len(all))
	for _, k := range all {
		if server.ValidKey(k) {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("bench: no wire-safe keys in dataset %s", cfg.Dataset)
	}
	samples := cfg.Sample(keys)

	var rows []ServeBenchRow
	for _, tc := range ServeConfigs() {
		template, _, err := tc.BuildEncoder(samples)
		if err != nil {
			return nil, err
		}
		for _, storeKind := range ServeStores {
			for _, nconns := range conns {
				for _, mix := range ServeMixes {
					cell, err := runServeCell(cfg, tc, template, storeKind, nconns, mix,
						keys, targetQPS, warmup, duration)
					if err != nil {
						return nil, err
					}
					rows = append(rows, cell...)
				}
			}
		}
	}
	return rows, nil
}

func runServeCell(cfg Config, tc TreeConfig, template *core.Encoder, storeKind string,
	nconns int, mix serveMix, keys [][]byte, targetQPS float64,
	warmup, duration time.Duration) ([]ServeBenchRow, error) {

	var enc *core.Encoder
	if template != nil {
		enc = template.Clone()
	}
	var opts []hope.Option
	switch storeKind {
	case "sharded":
		opts = []hope.Option{hope.WithEncoder(enc), hope.WithShards(0)}
	case "adaptive":
		// Manual: the figure measures the serving path with the lifecycle
		// armed, not a rebuild racing the load (bench-drift covers that).
		opts = []hope.Option{hope.WithAdaptive(hope.AdaptiveOptions{
			Encoder: enc, Shards: hope.DefaultShards(), Manual: true,
		})}
	default:
		return nil, fmt.Errorf("bench: unknown store kind %q", storeKind)
	}
	st, err := hope.Open(hope.ART, opts...)
	if err != nil {
		return nil, err
	}
	if err := st.Bulk(keys, nil); err != nil {
		return nil, err
	}

	srv := server.New(st, server.Config{MaxConns: nconns + 8})
	if err := srv.Listen(); err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	res, loadErr := RunLoad(LoadConfig{
		Addr:      srv.Addr().String(),
		Conns:     nconns,
		TargetQPS: targetQPS,
		Duration:  duration,
		Warmup:    warmup,
		Keys:      keys,
		SetFrac:   mix.setFrac,
		DelFrac:   mix.delFrac,
		RangeFrac: mix.rangeFrac,
		Seed:      cfg.Seed + int64(nconns)*17,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("bench: serve drain: %w", err)
	}
	if err := <-serveDone; err != server.ErrServerClosed {
		return nil, fmt.Errorf("bench: serve exited: %w", err)
	}
	if loadErr != nil {
		return nil, loadErr
	}

	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	var rows []ServeBenchRow
	for _, op := range LoadOps {
		h := res.Hist(op)
		if h.Count() == 0 {
			continue
		}
		rows = append(rows, ServeBenchRow{
			Dataset:     cfg.Dataset.String(),
			Workload:    mix.name,
			Store:       storeKind,
			Config:      tc.Name,
			Conns:       nconns,
			Op:          op,
			Count:       h.Count(),
			TargetQPS:   targetQPS,
			AchievedQPS: res.AchievedQPS,
			P50us:       us(h.Percentile(50)),
			P99us:       us(h.Percentile(99)),
			P999us:      us(h.Percentile(99.9)),
			MeanUs:      us(h.Mean()),
			MaxUs:       us(h.Max()),
			ProtoErrors: res.ProtoErrors,
			MaxProcs:    runtime.GOMAXPROCS(0),
		})
	}
	return rows, nil
}

// WriteServeBenchJSON writes the rows as indented JSON (BENCH_serve.json).
func WriteServeBenchJSON(w io.Writer, rows []ServeBenchRow) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(rows)
}

// ReadServeBenchJSON decodes a BENCH_serve.json record (cmd/benchdiff).
func ReadServeBenchJSON(r io.Reader) ([]ServeBenchRow, error) {
	var rows []ServeBenchRow
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return nil, err
	}
	return rows, nil
}
