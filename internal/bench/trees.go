package bench

import (
	"time"

	"repro/internal/surf"
	"repro/internal/ycsb"
)

// Fig10Row is one SuRF configuration of Figure 10.
type Fig10Row struct {
	Config     string
	PointNs    float64 // avg point (filter) query latency
	RangeNs    float64 // avg closed-range query latency
	BuildSec   float64 // encoder build + key encode + filter build
	TrieHeight float64
	MemoryMB   float64 // filter + dictionary
	// ModelPredictedReduction is the Section 5 analytical latency
	// reduction estimate 1 - 1/cpr - (l*t_enc)/(h*t_trie), filled for
	// compressed configurations.
	ModelPredictedReduction float64
}

// RunFig10 reproduces the SuRF YCSB evaluation for one dataset.
func RunFig10(cfg Config) ([]Fig10Row, error) {
	keys := cfg.Keys()
	samples := cfg.Sample(keys)
	wl := ycsb.GenerateC(cfg.NumOps, len(keys), cfg.Seed+1)

	var rows []Fig10Row
	var baseHeight, basePointNs float64
	for _, tc := range StandardConfigs(cfg.Quick) {
		enc, encBuild, err := tc.BuildEncoder(samples)
		if err != nil {
			return nil, err
		}
		encoded, encTime := encodeAll(enc, keys)
		sorted := sortedUnique(encoded)
		t0 := time.Now()
		f := surf.Build(sorted, surf.Real, 8)
		buildTime := time.Since(t0) + encTime + encBuild

		// Point queries: encode the probe, then filter lookup.
		var buf []byte
		t0 = time.Now()
		for _, op := range wl.Ops {
			k := keys[op.Key]
			if enc != nil {
				b, _ := enc.EncodeBits(buf, k)
				buf = b[:0]
				k = b
			}
			f.MayContain(k)
		}
		pointNs := float64(time.Since(t0).Nanoseconds()) / float64(len(wl.Ops))

		// Closed-range queries: [key, key+1-on-last-byte], pair-encoded.
		t0 = time.Now()
		for _, op := range wl.Ops {
			k := keys[op.Key]
			hi := append([]byte(nil), k...)
			hi[len(hi)-1]++
			lo2, hi2 := k, hi
			if enc != nil {
				lo2, hi2 = enc.EncodePair(k, hi)
			}
			f.MayContainRange(lo2, hi2)
		}
		rangeNs := float64(time.Since(t0).Nanoseconds()) / float64(len(wl.Ops))

		mem := f.MemoryUsage()
		if enc != nil {
			mem += enc.MemoryUsage()
		}
		row := Fig10Row{
			Config:     tc.Name,
			PointNs:    pointNs,
			RangeNs:    rangeNs,
			BuildSec:   buildTime.Seconds(),
			TrieHeight: f.AvgHeight(),
			MemoryMB:   float64(mem) / (1 << 20),
		}
		if tc.Plain {
			baseHeight, basePointNs = row.TrieHeight, row.PointNs
		} else if baseHeight > 0 {
			// Section 5 model: 1 - 1/cpr - (l * t_encode)/(h * t_trie).
			cpr := enc.CompressionRate(keys)
			l := avgLen(keys)
			tEnc := nsPerChar(encTime, totalBytes(keys))
			tTrie := basePointNs / baseHeight
			row.ModelPredictedReduction = 1 - 1/cpr - (l*tEnc)/(baseHeight*tTrie)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func avgLen(keys [][]byte) float64 {
	if len(keys) == 0 {
		return 0
	}
	return float64(totalBytes(keys)) / float64(len(keys))
}

// Fig11Row is one bar pair of Figure 11: SuRF false-positive rates.
type Fig11Row struct {
	Config   string
	FPRBase  float64 // suffix-less SuRF
	FPRReal8 float64 // 8-bit real suffixes
}

// RunFig11 reproduces the false-positive-rate study on email keys.
func RunFig11(cfg Config) ([]Fig11Row, error) {
	keys := cfg.Keys()
	samples := cfg.Sample(keys)
	// Absent probes: a disjoint generation.
	probesRaw := cfg.absentKeys(keys)
	var rows []Fig11Row
	for _, tc := range StandardConfigs(cfg.Quick) {
		enc, _, err := tc.BuildEncoder(samples)
		if err != nil {
			return nil, err
		}
		encoded := encodeAllBulk(enc, keys)
		sorted := sortedUnique(encoded)
		probes := encodeAllBulk(enc, probesRaw)
		base := surf.Build(sorted, surf.Base, 0)
		real8 := surf.Build(sorted, surf.Real, 8)
		rows = append(rows, Fig11Row{
			Config:   tc.Name,
			FPRBase:  base.FalsePositiveRate(probes),
			FPRReal8: real8.FalsePositiveRate(probes),
		})
	}
	return rows, nil
}

// absentKeys generates probe keys guaranteed absent from keys.
func (c Config) absentKeys(keys [][]byte) [][]byte {
	present := make(map[string]bool, len(keys))
	for _, k := range keys {
		present[string(k)] = true
	}
	gen := Config{Dataset: c.Dataset, NumKeys: c.NumOps, Seed: c.Seed + 7919}
	var out [][]byte
	for _, k := range gen.Keys() {
		if !present[string(k)] {
			out = append(out, k)
		}
	}
	return out
}

// Fig12Row is one (index, configuration) cell of Figure 12. MemoryMB is
// tree plus dictionary, the paper's reported metric ("HOPE size
// included"); TreeMB and DictMB expose the split, which matters at small
// key counts where a fixed-size dictionary is not yet amortized.
type Fig12Row struct {
	Index    string
	Config   string
	PointNs  float64
	MemoryMB float64
	TreeMB   float64
	DictMB   float64
	LoadSec  float64
}

// RunFig12 reproduces the YCSB-C point-query evaluation on the four
// key-value trees.
func RunFig12(cfg Config, indexes []string) ([]Fig12Row, error) {
	keys := cfg.Keys()
	samples := cfg.Sample(keys)
	wl := ycsb.GenerateC(cfg.NumOps, len(keys), cfg.Seed+1)
	var rows []Fig12Row
	for _, tc := range StandardConfigs(cfg.Quick) {
		enc, _, err := tc.BuildEncoder(samples)
		if err != nil {
			return nil, err
		}
		encoded := encodeAllBulk(enc, keys)
		for _, name := range indexes {
			idx := NewIndex(name)
			t0 := time.Now()
			for i, k := range encoded {
				idx.Insert(k, uint64(i))
			}
			loadSec := time.Since(t0).Seconds()
			var buf []byte
			t0 = time.Now()
			for _, op := range wl.Ops {
				k := keys[op.Key]
				if enc != nil {
					b, _ := enc.EncodeBits(buf, k)
					buf = b[:0]
					k = b
				}
				idx.Get(k)
			}
			pointNs := float64(time.Since(t0).Nanoseconds()) / float64(len(wl.Ops))
			treeMem := idx.MemoryUsage()
			dictMem := 0
			if enc != nil {
				dictMem = enc.MemoryUsage()
			}
			rows = append(rows, Fig12Row{
				Index: name, Config: tc.Name,
				PointNs:  pointNs,
				MemoryMB: float64(treeMem+dictMem) / (1 << 20),
				TreeMB:   float64(treeMem) / (1 << 20),
				DictMB:   float64(dictMem) / (1 << 20),
				LoadSec:  loadSec,
			})
		}
	}
	return rows, nil
}

// Fig16Row is one (index, configuration) cell of the Appendix D range and
// insert evaluation.
type Fig16Row struct {
	Index    string
	Config   string
	RangeNs  float64
	InsertNs float64
}

// RunFig16 reproduces the YCSB-E evaluation: 95% range scans, 5% inserts.
func RunFig16(cfg Config, indexes []string) ([]Fig16Row, error) {
	all := Config{Dataset: cfg.Dataset, NumKeys: cfg.NumKeys + cfg.NumOps/10,
		Seed: cfg.Seed, SampleFrac: cfg.SampleFrac, Quick: cfg.Quick}.Keys()
	keys := all[:cfg.NumKeys]
	samples := cfg.Sample(keys)
	wl := ycsb.GenerateE(cfg.NumOps, len(keys), cfg.Seed+2)
	var rows []Fig16Row
	for _, tc := range StandardConfigs(cfg.Quick) {
		enc, _, err := tc.BuildEncoder(samples)
		if err != nil {
			return nil, err
		}
		encoded := encodeAllBulk(enc, keys)
		for _, name := range indexes {
			idx := NewIndex(name)
			for i, k := range encoded {
				idx.Insert(k, uint64(i))
			}
			var buf []byte
			var rangeTime, insertTime time.Duration
			var rangeOps, insertOps int
			for _, op := range wl.Ops {
				k := all[op.Key]
				t0 := time.Now()
				if enc != nil {
					b, _ := enc.EncodeBits(buf, k)
					buf = b[:0]
					k = b
				}
				switch op.Kind {
				case ycsb.Scan:
					idx.Scan(k, op.ScanLen)
					rangeTime += time.Since(t0)
					rangeOps++
				case ycsb.Insert:
					idx.Insert(k, uint64(op.Key))
					insertTime += time.Since(t0)
					insertOps++
				}
			}
			row := Fig16Row{Index: name, Config: tc.Name}
			if rangeOps > 0 {
				row.RangeNs = float64(rangeTime.Nanoseconds()) / float64(rangeOps)
			}
			if insertOps > 0 {
				row.InsertNs = float64(insertTime.Nanoseconds()) / float64(insertOps)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Table1Row documents a scheme's module configuration (paper Table 1).
type Table1Row struct {
	Scheme, Category, SymbolSelector, CodeAssigner, Dictionary string
}

// Table1 returns the static module-configuration table.
func Table1() []Table1Row {
	return []Table1Row{
		{"Single-Char", "FIVC", "Single-Char", "Hu-Tucker", "array"},
		{"Double-Char", "FIVC", "Double-Char", "Hu-Tucker", "array"},
		{"ALM", "VIFC", "ALM", "fixed-length", "ART-based"},
		{"3-Grams", "VIVC", "3-Grams", "Hu-Tucker", "bitmap-trie"},
		{"4-Grams", "VIVC", "4-Grams", "Hu-Tucker", "bitmap-trie"},
		{"ALM-Improved", "VIVC", "ALM-Improved", "Hu-Tucker", "ART-based"},
	}
}
