package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	hope "repro"
	"repro/internal/core"
	"repro/internal/ycsb"
)

// YCSBBenchRow is one cell of the concurrent serving benchmark: a YCSB
// workload driven against one hope.ShardedIndex configuration from a fixed
// number of goroutines. `make bench-ycsb` writes the rows to
// BENCH_ycsb.json — the multi-threaded throughput record successive PRs
// gate with cmd/benchdiff (-mode ycsb).
type YCSBBenchRow struct {
	Dataset   string  `json:"dataset"`
	Workload  string  `json:"workload"`
	Backend   string  `json:"backend"`
	Config    string  `json:"config"`
	Threads   int     `json:"threads"`
	Shards    int     `json:"shards"`
	Keys      int     `json:"keys"` // loaded keys (insert pool excluded)
	Ops       int     `json:"ops"`  // total ops across all goroutines
	OpsPerSec float64 `json:"ops_per_sec"`
	LoadSec   float64 `json:"load_sec"`
	MaxProcs  int     `json:"maxprocs"` // GOMAXPROCS during the run
}

// YCSBBackends are the trees the concurrent benchmark drives: the paper's
// fastest trie (ART) and the classic page-based baseline (B+tree). SuRF is
// immutable and HOT/Prefix-B+tree add no additional axis to the
// concurrency story.
var YCSBBackends = []hope.Backend{hope.ART, hope.BTree}

// YCSBConfigs returns the encoder configurations the concurrent benchmark
// sweeps: the uncompressed baseline, both FIVC schemes, and 3-Grams as the
// VIVC representative (the ALM schemes encode an order of magnitude
// slower and would dominate wall time without adding a concurrency axis).
func YCSBConfigs(quick bool) []TreeConfig {
	big := 1 << 16
	if quick {
		big = 1 << 12
	}
	return []TreeConfig{
		{Name: "Uncompressed", Plain: true},
		{Name: "Single-Char", Scheme: core.SingleChar},
		{Name: "Double-Char", Scheme: core.DoubleChar},
		{Name: fmt.Sprintf("3-Grams (%s)", sizeName(big)), Scheme: core.ThreeGrams, DictLimit: big},
	}
}

// runYCSBOps executes one goroutine's op stream against the index. Scan
// ops visit op.ScanLen results (YCSB's 1..100) via the callback's early
// stop, so bound translation and merge setup are still paid per scan op.
func runYCSBOps(s *hope.ShardedIndex, keys [][]byte, ops []ycsb.Op) {
	for _, op := range ops {
		switch op.Kind {
		case ycsb.Read:
			s.Get(keys[op.Key])
		case ycsb.Update:
			s.Put(keys[op.Key], uint64(op.Key)|1<<32)
		case ycsb.Insert:
			s.Put(keys[op.Key], uint64(op.Key))
		case ycsb.Scan:
			n := 0
			s.Scan(keys[op.Key], nil, func([]byte, uint64) bool {
				n++
				return n < op.ScanLen
			})
		case ycsb.ReadModifyWrite:
			v, _ := s.Get(keys[op.Key])
			s.Put(keys[op.Key], v+1)
		}
	}
}

// RunFigYCSB is the concurrent serving figure: the given YCSB workloads
// over the configured dataset, sweeping goroutine counts × encoder
// configurations × backends against a hope.ShardedIndex. Every cell loads
// a fresh index (insert-bearing workloads mutate the key population),
// splits the op budget evenly across the goroutines — each with its own
// deterministic op stream and a disjoint insert pool — and reports
// aggregate throughput.
//
// GOMAXPROCS is raised to the largest thread count for the duration of the
// run so the sweep measures the scheduler the user would see on a machine
// with that many cores; on smaller machines the high-thread cells measure
// oversubscription, not parallel speedup (record MaxProcs next to the
// numbers).
func RunFigYCSB(cfg Config, backends []hope.Backend, workloads []ycsb.Kind, threads []int) ([]YCSBBenchRow, error) {
	all := cfg.Keys()
	maxThreads := 1
	for _, th := range threads {
		if th > maxThreads {
			maxThreads = th
		}
	}
	// Reserve the tail of the dataset as the insert pool. The 5%-insert
	// workloads draw a binomial insert count per goroutine, and striding
	// reserves maxPerThreadInserts × threads slots, so the pool needs the
	// mean (NumOps/10 covers it twice over) plus a tail allowance that
	// scales with the thread count.
	pool := cfg.NumOps/10 + 16*maxThreads + 64
	if pool > len(all)/2 {
		pool = len(all) / 2
	}
	loaded := all[:len(all)-pool]
	samples := cfg.Sample(loaded)

	if procs := runtime.GOMAXPROCS(0); maxThreads > procs {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(maxThreads))
	}

	var rows []YCSBBenchRow
	for _, tc := range YCSBConfigs(cfg.Quick) {
		template, _, err := tc.BuildEncoder(samples)
		if err != nil {
			return nil, err
		}
		for _, backend := range backends {
			for _, wk := range workloads {
				for _, th := range threads {
					row, err := runYCSBCell(cfg, backend, tc, template, wk, th, all, loaded)
					if err != nil {
						return nil, err
					}
					rows = append(rows, row)
				}
			}
		}
	}
	return rows, nil
}

func runYCSBCell(cfg Config, backend hope.Backend, tc TreeConfig, template *core.Encoder,
	wk ycsb.Kind, threads int, all, loaded [][]byte) (YCSBBenchRow, error) {
	var enc *core.Encoder
	if template != nil {
		// Fresh clone per index: the template's read-only dictionary is
		// shared, its mutable state is not.
		enc = template.Clone()
	}
	st, err := hope.Open(backend, hope.WithEncoder(enc), hope.WithShards(0))
	if err != nil {
		return YCSBBenchRow{}, err
	}
	s := st.(*hope.ShardedIndex)
	t0 := time.Now()
	if err := s.Bulk(loaded, nil); err != nil {
		return YCSBBenchRow{}, err
	}
	loadSec := time.Since(t0).Seconds()

	// Per-goroutine op streams: same workload, thread-distinct seeds,
	// disjoint insert strides so no two goroutines insert one key.
	perThread := cfg.NumOps / threads
	streams := make([][]ycsb.Op, threads)
	totalOps := 0
	for tid := 0; tid < threads; tid++ {
		w := ycsb.Generate(wk, perThread, len(loaded), cfg.Seed+int64(wk)*131+int64(tid)*7919)
		w.StrideInserts(len(loaded), tid, threads)
		if mk := w.MaxKey(); mk >= len(all) {
			return YCSBBenchRow{}, fmt.Errorf("ycsb %v: insert pool exhausted (need key %d, have %d)",
				wk, mk, len(all))
		}
		streams[tid] = w.Ops
		totalOps += len(w.Ops)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(ops []ycsb.Op) {
			defer wg.Done()
			<-start
			runYCSBOps(s, all, ops)
		}(streams[tid])
	}
	t0 = time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0).Seconds()

	row := YCSBBenchRow{
		Dataset:  cfg.Dataset.String(),
		Workload: wk.String(),
		Backend:  string(backend),
		Config:   tc.Name,
		Threads:  threads,
		Shards:   s.NumShards(),
		Keys:     len(loaded),
		Ops:      totalOps,
		LoadSec:  loadSec,
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	if wall > 0 {
		row.OpsPerSec = float64(totalOps) / wall
	}
	return row, nil
}

// WriteYCSBBenchJSON writes the rows as indented JSON (BENCH_ycsb.json).
func WriteYCSBBenchJSON(w io.Writer, rows []YCSBBenchRow) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(rows)
}

// ReadYCSBBenchJSON decodes a BENCH_ycsb.json record (cmd/benchdiff).
func ReadYCSBBenchJSON(r io.Reader) ([]YCSBBenchRow, error) {
	var rows []YCSBBenchRow
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return nil, err
	}
	return rows, nil
}
