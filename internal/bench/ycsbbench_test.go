package bench

import (
	"bytes"
	"testing"

	hope "repro"
	"repro/internal/datagen"
	"repro/internal/ycsb"
)

// TestRunFigYCSB runs the concurrent serving harness at smoke scale and
// checks the grid is complete and internally consistent: one row per
// workload × config × backend × thread count, full op budgets, sane
// throughput, shard counts a power of two, and a JSON round trip (the
// benchdiff gate consumes the serialized form).
func TestRunFigYCSB(t *testing.T) {
	cfg := QuickConfig(datagen.Email)
	cfg.NumKeys = 3000
	cfg.NumOps = 2000
	threads := []int{1, 2}
	rows, err := RunFigYCSB(cfg, YCSBBackends, ycsb.Kinds, threads)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(YCSBConfigs(true)) * len(YCSBBackends) * len(ycsb.Kinds) * len(threads)
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		key := r.Workload + "/" + r.Backend + "/" + r.Config + "/" + string(rune('0'+r.Threads))
		if seen[key] {
			t.Fatalf("duplicate cell %s", key)
		}
		seen[key] = true
		if r.OpsPerSec <= 0 {
			t.Fatalf("cell %s: non-positive throughput", key)
		}
		if r.Shards&(r.Shards-1) != 0 || r.Shards == 0 {
			t.Fatalf("cell %s: shard count %d not a power of two", key, r.Shards)
		}
		// Op budget: threads × (NumOps/threads), so never more than NumOps
		// and short by at most the integer-division remainder.
		if r.Ops > cfg.NumOps || r.Ops < cfg.NumOps-r.Threads {
			t.Fatalf("cell %s: ran %d ops, want ~%d", key, r.Ops, cfg.NumOps)
		}
		if r.Keys <= 0 || r.Keys >= cfg.NumKeys {
			t.Fatalf("cell %s: loaded %d keys of %d (no insert pool reserved?)",
				key, r.Keys, cfg.NumKeys)
		}
	}
	var buf bytes.Buffer
	if err := WriteYCSBBenchJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadYCSBBenchJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) || back[0] != rows[0] {
		t.Fatal("JSON round trip mutated rows")
	}
}

// TestRunYCSBOpsAgainstModel cross-checks the harness op loop itself: the
// same op stream applied to a ShardedIndex and to a model map must agree
// on every key's final value (catches op-kind mix-ups like updates hitting
// the insert pool).
func TestRunYCSBOpsAgainstModel(t *testing.T) {
	keys := datagen.Generate(datagen.Email, 2000, 3)
	loaded := keys[:1500]
	for _, kind := range ycsb.Kinds {
		s, err := hope.NewShardedIndex(hope.BTree, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Bulk(loaded, nil); err != nil {
			t.Fatal(err)
		}
		w := ycsb.Generate(kind, 3000, len(loaded), 9)
		if w.MaxKey() >= len(keys) {
			t.Fatalf("%v: workload exceeds dataset", kind)
		}
		runYCSBOps(s, keys, w.Ops)
		model := map[string]uint64{}
		for i, k := range loaded {
			model[string(k)] = uint64(i)
		}
		for _, op := range w.Ops {
			switch op.Kind {
			case ycsb.Update:
				model[string(keys[op.Key])] = uint64(op.Key) | 1<<32
			case ycsb.Insert:
				model[string(keys[op.Key])] = uint64(op.Key)
			case ycsb.ReadModifyWrite:
				model[string(keys[op.Key])]++
			}
		}
		if s.Len() != len(model) {
			t.Fatalf("%v: index holds %d keys, model %d", kind, s.Len(), len(model))
		}
		for k, want := range model {
			if got, ok := s.Get([]byte(k)); !ok || got != want {
				t.Fatalf("%v: Get(%q) = %d,%v want %d,true", kind, k, got, ok, want)
			}
		}
	}
}
