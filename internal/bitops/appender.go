// Package bitops provides the low-level bit machinery HOPE is built on:
// a 64-bit-buffered bit appender used by the encoder to concatenate
// non-byte-aligned codes (paper Section 4.2, "Encoder"), and succinct bit
// vectors with rank/select support used by the bitmap-trie dictionary and
// the SuRF filter.
package bitops

import "encoding/binary"

// Appender accumulates variable-length bit codes and emits a byte slice.
// Codes are appended most-significant-bit first so that the byte-wise
// lexicographic order of two emitted buffers matches the bit-wise order of
// the code sequences (the property HOPE's order preservation rests on).
//
// Following the paper, bits are staged in a 64-bit register: appending a
// code is a shift, an OR, and an occasional spill of the full register,
// costing only a few cycles per code.
type Appender struct {
	buf  []byte
	acc  uint64 // pending bits, left-aligned (bit 63 is the oldest)
	nAcc uint   // number of valid bits in acc, 0..63
	bits int    // total bits appended since Reset
}

// NewAppender returns an Appender writing into dst (which may be nil).
// Any existing bytes in dst are treated as already-complete output.
func NewAppender(dst []byte) *Appender {
	return &Appender{buf: dst, bits: len(dst) * 8}
}

// Reset discards all state and starts a fresh buffer reusing dst's storage.
func (a *Appender) Reset(dst []byte) {
	a.buf = dst[:0]
	a.acc = 0
	a.nAcc = 0
	a.bits = 0
}

// Append adds the low n bits of code to the stream, most significant first.
// n must be in [0, 64].
func (a *Appender) Append(code uint64, n uint) {
	if n < 64 {
		code &= (1 << n) - 1
	}
	a.AppendWord(code, n)
}

// AppendWord adds the low n bits of w to the stream, most significant
// first, without masking: the caller guarantees the bits of w above n are
// zero. It is the flush half of the word-level staging fast path used by
// the dictionary encode kernels — a kernel packs several short codes into
// a local 64-bit word (a shift and an OR per code, no calls) and hands the
// word over only when the next code would overflow it, so the register
// bookkeeping here runs once per ~64 bits instead of once per code.
// n must be in [0, 64].
func (a *Appender) AppendWord(w uint64, n uint) {
	if n == 0 {
		return
	}
	a.bits += int(n)
	room := 64 - a.nAcc // nAcc < 64 between calls, so room >= 1
	if n <= room {
		a.acc |= w << (room - n)
		a.nAcc += n
		if a.nAcc == 64 {
			a.spill()
		}
		return
	}
	// Fill the register, spill it, then stage the remainder.
	rem := n - room // in [1, 63]
	a.acc |= w >> rem
	a.nAcc = 64
	a.spill()
	a.acc = w << (64 - rem)
	a.nAcc = rem
}

// AppendWords64 appends ws as complete 64-bit words, most significant
// bit first. When the stream sits on a byte boundary (true after Reset,
// Pad, or Finish — the state the batch encode kernels are in between
// keys) every word is stored with one 8-byte write instead of being
// re-staged bit by bit through the accumulator; otherwise it falls back
// to AppendWord per word.
func (a *Appender) AppendWords64(ws []uint64) {
	if a.nAcc != 0 {
		for _, w := range ws {
			a.AppendWord(w, 64)
		}
		return
	}
	off := len(a.buf)
	a.buf = append(a.buf, make([]byte, 8*len(ws))...)
	for _, w := range ws {
		binary.BigEndian.PutUint64(a.buf[off:], w)
		off += 8
	}
	a.bits += 64 * len(ws)
}

func (a *Appender) spill() {
	a.buf = binary.BigEndian.AppendUint64(a.buf, a.acc)
	a.acc = 0
	a.nAcc = 0
}

// Bits returns the total number of bits appended so far.
func (a *Appender) Bits() int { return a.bits }

// Finish pads the stream with zero bits to a byte boundary and returns the
// buffer along with the exact bit length before padding. The Appender may
// be reused after Reset.
func (a *Appender) Finish() (buf []byte, bitLen int) {
	bitLen = a.bits
	a.Pad()
	return a.buf, bitLen
}

// Pad appends zero bits up to the next byte boundary and returns the
// number of complete output bytes emitted so far. It is Finish restated
// for the batch encode kernels, which record a byte offset after every
// key of a batch without handing the buffer out mid-stream; appending may
// continue afterwards (the next key starts byte-aligned, exactly the
// stored form the search trees compare).
func (a *Appender) Pad() int {
	if a.nAcc > 0 {
		// acc is left-aligned with zeros below the nAcc valid bits, so
		// the padded tail is its top ceil(nAcc/8) bytes, stored in one
		// append instead of a byte-at-a-time shift loop.
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], a.acc)
		a.buf = append(a.buf, tmp[:(a.nAcc+7)/8]...)
		a.acc = 0
		a.nAcc = 0
	}
	return len(a.buf)
}

// Mark captures the appender state so a shared prefix can be encoded once
// and each batch member can resume from it (pair/batch encoding, paper
// Section 4.2). Restoring a mark is only valid on the same Appender and
// while the buffer has not been handed out by Finish.
type Mark struct {
	bufLen int
	acc    uint64
	nAcc   uint
	bits   int
}

// Mark returns a restore point for the current state.
func (a *Appender) Mark() Mark {
	return Mark{bufLen: len(a.buf), acc: a.acc, nAcc: a.nAcc, bits: a.bits}
}

// Restore rewinds the appender to a previously captured mark.
func (a *Appender) Restore(m Mark) {
	a.buf = a.buf[:m.bufLen]
	a.acc = m.acc
	a.nAcc = m.nAcc
	a.bits = m.bits
}
