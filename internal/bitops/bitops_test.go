package bitops

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestAppendWordMatchesAppend drives random code sequences through both
// Append (masked, per-code) and word-staged AppendWord flushes, asserting
// identical output. This is the contract the encode kernels rely on.
func TestAppendWordMatchesAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		nCodes := rng.Intn(50)
		codes := make([]uint64, nCodes)
		lens := make([]uint, nCodes)
		for i := range codes {
			lens[i] = uint(1 + rng.Intn(32))
			codes[i] = rng.Uint64() & ((1 << lens[i]) - 1)
		}
		var want Appender
		want.Reset(nil)
		for i := range codes {
			want.Append(codes[i], lens[i])
		}
		wantBuf, wantBits := want.Finish()

		// Stage the same codes kernel-style into a local word.
		var got Appender
		got.Reset(nil)
		var acc uint64
		var n uint
		for i := range codes {
			if n+lens[i] > 64 {
				got.AppendWord(acc, n)
				acc, n = 0, 0
			}
			acc = acc<<lens[i] | codes[i]
			n += lens[i]
		}
		got.AppendWord(acc, n)
		gotBuf, gotBits := got.Finish()
		if gotBits != wantBits || !bytes.Equal(gotBuf, wantBuf) {
			t.Fatalf("trial %d: staged output diverged: got %x (%d bits) want %x (%d bits)",
				trial, gotBuf, gotBits, wantBuf, wantBits)
		}
	}
}

// TestAppendWordEdges exercises the boundary cases directly: zero bits,
// a full 64-bit word into an empty register, and a word split across an
// almost-full register.
func TestAppendWordEdges(t *testing.T) {
	var a Appender
	a.Reset(nil)
	a.AppendWord(0, 0)
	if buf, bits := a.Finish(); len(buf) != 0 || bits != 0 {
		t.Fatal("zero-bit word emitted output")
	}
	a.Reset(nil)
	a.AppendWord(^uint64(0), 64)
	if buf, bits := a.Finish(); bits != 64 || !bytes.Equal(buf, bytes.Repeat([]byte{0xFF}, 8)) {
		t.Fatalf("full word: %x (%d bits)", buf, bits)
	}
	a.Reset(nil)
	a.Append(1, 63) // register at 63/64 bits
	a.AppendWord(^uint64(0), 64)
	buf, bits := a.Finish()
	if bits != 127 {
		t.Fatalf("split word bits = %d", bits)
	}
	// 63 bits of 0...01 then 64 ones, padded with a final 0 bit.
	want := []byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03,
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFE}
	if !bytes.Equal(buf, want) {
		t.Fatalf("split word: %x", buf)
	}
}

// naiveBits builds the expected byte output of a code sequence one bit at
// a time, to validate the 64-bit-buffered Appender.
type naiveBits struct {
	bits []byte // one byte per bit, 0 or 1
}

func (n *naiveBits) append(code uint64, ln uint) {
	for i := int(ln) - 1; i >= 0; i-- {
		n.bits = append(n.bits, byte((code>>uint(i))&1))
	}
}

func (n *naiveBits) bytes() []byte {
	out := make([]byte, (len(n.bits)+7)/8)
	for i, b := range n.bits {
		if b != 0 {
			out[i/8] |= 1 << (7 - uint(i)%8)
		}
	}
	return out
}

func TestAppenderMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		a := NewAppender(nil)
		var ref naiveBits
		nCodes := rng.Intn(50)
		for i := 0; i < nCodes; i++ {
			ln := uint(1 + rng.Intn(64))
			code := rng.Uint64()
			a.Append(code, ln)
			ref.append(code, ln)
		}
		got, bitLen := a.Finish()
		if bitLen != len(ref.bits) {
			t.Fatalf("trial %d: bitLen = %d, want %d", trial, bitLen, len(ref.bits))
		}
		if !bytes.Equal(got, ref.bytes()) {
			t.Fatalf("trial %d: bytes mismatch\n got %x\nwant %x", trial, got, ref.bytes())
		}
	}
}

func TestAppenderZeroLength(t *testing.T) {
	a := NewAppender(nil)
	a.Append(0xFFFF, 0)
	buf, n := a.Finish()
	if n != 0 || len(buf) != 0 {
		t.Fatalf("empty append produced %d bits, %d bytes", n, len(buf))
	}
}

func TestAppenderFull64(t *testing.T) {
	a := NewAppender(nil)
	a.Append(^uint64(0), 64)
	a.Append(1, 1)
	buf, n := a.Finish()
	if n != 65 {
		t.Fatalf("bits = %d, want 65", n)
	}
	want := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x80}
	if !bytes.Equal(buf, want) {
		t.Fatalf("got %x, want %x", buf, want)
	}
}

func TestAppenderMaskHighBits(t *testing.T) {
	// Bits above the requested width must be ignored.
	a := NewAppender(nil)
	a.Append(^uint64(0), 3) // only 0b111
	buf, n := a.Finish()
	if n != 3 || len(buf) != 1 || buf[0] != 0xE0 {
		t.Fatalf("got %x (%d bits)", buf, n)
	}
}

func TestAppenderReset(t *testing.T) {
	a := NewAppender(nil)
	a.Append(0xAB, 8)
	buf, _ := a.Finish()
	if len(buf) != 1 {
		t.Fatal("setup failed")
	}
	a.Reset(nil)
	a.Append(0x3, 2)
	buf, n := a.Finish()
	if n != 2 || buf[0] != 0xC0 {
		t.Fatalf("after reset got %x (%d bits)", buf, n)
	}
}

func TestAppenderMarkRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		a := NewAppender(nil)
		var ref naiveBits
		for i := rng.Intn(20); i > 0; i-- {
			ln := uint(1 + rng.Intn(64))
			c := rng.Uint64()
			a.Append(c, ln)
			ref.append(c, ln)
		}
		m := a.Mark()
		// Append garbage, then rewind.
		for i := rng.Intn(20); i > 0; i-- {
			a.Append(rng.Uint64(), uint(1+rng.Intn(64)))
		}
		a.Restore(m)
		// Continue with recorded codes.
		for i := rng.Intn(20); i > 0; i-- {
			ln := uint(1 + rng.Intn(64))
			c := rng.Uint64()
			a.Append(c, ln)
			ref.append(c, ln)
		}
		got, bitLen := a.Finish()
		if bitLen != len(ref.bits) || !bytes.Equal(got, ref.bytes()) {
			t.Fatalf("trial %d: mark/restore mismatch", trial)
		}
	}
}

// Lexicographic order of emitted buffers must match bit-sequence order.
func TestAppenderOrderPreservation(t *testing.T) {
	emit := func(codes []uint64, lens []uint) ([]byte, int) {
		a := NewAppender(nil)
		for i := range codes {
			a.Append(codes[i], lens[i])
		}
		return a.Finish()
	}
	// 0b10 (len 2) vs 0b101 (len 3): former is a strict prefix.
	b1, n1 := emit([]uint64{0b10}, []uint{2})
	b2, n2 := emit([]uint64{0b101}, []uint{3})
	if c := bytes.Compare(b1, b2); c > 0 {
		t.Fatal("prefix sequence must not compare greater")
	}
	_ = n1
	_ = n2
	// 0b01 vs 0b10: latter greater.
	b1, _ = emit([]uint64{0b01}, []uint{2})
	b2, _ = emit([]uint64{0b10}, []uint{2})
	if bytes.Compare(b1, b2) >= 0 {
		t.Fatal("bit order not reflected in byte order")
	}
}

func TestBitVectorRankSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 63, 64, 65, 511, 512, 513, 4096, 10000} {
		var b Builder
		ref := make([]bool, n)
		for i := 0; i < n; i++ {
			ref[i] = rng.Intn(3) == 0
			b.PushBit(ref[i])
		}
		v := b.Build()
		if v.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, v.Len())
		}
		ones := 0
		for i := 0; i < n; i++ {
			if v.Get(i) != ref[i] {
				t.Fatalf("n=%d: Get(%d) wrong", n, i)
			}
			if ref[i] {
				ones++
			}
			if got := v.Rank1(i); got != ones {
				t.Fatalf("n=%d: Rank1(%d)=%d, want %d", n, i, got, ones)
			}
			if got := v.Rank0(i); got != i+1-ones {
				t.Fatalf("n=%d: Rank0(%d)=%d", n, i, got)
			}
		}
		if v.Ones() != ones {
			t.Fatalf("n=%d: Ones=%d, want %d", n, v.Ones(), ones)
		}
		// Select1 inverts Rank1.
		k := 0
		for i := 0; i < n; i++ {
			if ref[i] {
				k++
				pos, ok := v.Select1(k)
				if !ok || pos != i {
					t.Fatalf("n=%d: Select1(%d)=(%d,%v), want %d", n, k, pos, ok, i)
				}
			}
		}
		if _, ok := v.Select1(ones + 1); ok {
			t.Fatalf("n=%d: Select1 beyond ones should fail", n)
		}
		if _, ok := v.Select1(0); ok {
			t.Fatal("Select1(0) should fail")
		}
	}
}

func TestBitVectorAllOnesAllZeros(t *testing.T) {
	var b Builder
	for i := 0; i < 1000; i++ {
		b.PushBit(true)
	}
	v := b.Build()
	if v.Rank1(999) != 1000 {
		t.Fatal("all-ones rank")
	}
	if pos, ok := v.Select1(1000); !ok || pos != 999 {
		t.Fatal("all-ones select")
	}
	var z Builder
	for i := 0; i < 1000; i++ {
		z.PushBit(false)
	}
	vz := z.Build()
	if vz.Rank1(999) != 0 {
		t.Fatal("all-zeros rank")
	}
	if _, ok := vz.Select1(1); ok {
		t.Fatal("all-zeros select")
	}
}

func TestBitmap256Helpers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var bm [4]uint64
		ref := make([]bool, 256)
		for i := 0; i < 40; i++ {
			p := rng.Intn(256)
			Set256(&bm, p)
			ref[p] = true
		}
		cnt := 0
		lastSet := -1
		for i := 0; i < 256; i++ {
			if Bit256(&bm, i) != ref[i] {
				t.Fatalf("Bit256(%d) wrong", i)
			}
			// PrevSet256 checks strictly-below semantics.
			if got := PrevSet256(&bm, i); got != lastSet {
				t.Fatalf("PrevSet256(%d)=%d, want %d", i, got, lastSet)
			}
			if ref[i] {
				cnt++
				lastSet = i
			}
			if got := Rank256(&bm, i); got != cnt {
				t.Fatalf("Rank256(%d)=%d, want %d", i, got, cnt)
			}
		}
		if PopCount256(&bm) != cnt {
			t.Fatal("PopCount256 wrong")
		}
		if MaxSet256(&bm) != lastSet {
			t.Fatalf("MaxSet256=%d, want %d", MaxSet256(&bm), lastSet)
		}
	}
	var empty [4]uint64
	if MaxSet256(&empty) != -1 || PrevSet256(&empty, 255) != -1 {
		t.Fatal("empty bitmap helpers")
	}
}
