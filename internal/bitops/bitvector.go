package bitops

import "math/bits"

// Builder accumulates bits for a BitVector.
type Builder struct {
	words []uint64
	n     int
}

// PushBit appends a single bit.
func (b *Builder) PushBit(bit bool) {
	w := b.n >> 6
	if w == len(b.words) {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[w] |= 1 << (uint(b.n) & 63)
	}
	b.n++
}

// Len returns the number of bits pushed so far.
func (b *Builder) Len() int { return b.n }

// Build freezes the bits into a BitVector with rank/select indexes.
func (b *Builder) Build() *BitVector {
	return newBitVector(b.words, b.n)
}

// BitVector is an immutable bit sequence with O(1) Rank1 and near-O(1)
// Select1. The rank index stores a cumulative popcount every 8 words
// (512 bits), giving a 6.25% space overhead; select binary-searches the
// rank blocks and scans at most 8 words.
type BitVector struct {
	words  []uint64
	n      int
	blocks []uint32 // cumulative ones before each 8-word block
	ones   int
}

const wordsPerBlock = 8

func newBitVector(words []uint64, n int) *BitVector {
	nBlocks := (len(words) + wordsPerBlock - 1) / wordsPerBlock
	bv := &BitVector{words: words, n: n, blocks: make([]uint32, nBlocks+1)}
	var c uint32
	for i, w := range words {
		if i%wordsPerBlock == 0 {
			bv.blocks[i/wordsPerBlock] = c
		}
		c += uint32(bits.OnesCount64(w))
	}
	bv.blocks[nBlocks] = c
	bv.ones = int(c)
	return bv
}

// Len returns the number of bits in the vector.
func (v *BitVector) Len() int { return v.n }

// Ones returns the total number of set bits.
func (v *BitVector) Ones() int { return v.ones }

// Get returns bit i.
func (v *BitVector) Get(i int) bool {
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Rank1 returns the number of set bits in positions [0, i], i.e. the
// 1-based rank of position i. i must be in [0, Len).
func (v *BitVector) Rank1(i int) int {
	w := i >> 6
	r := int(v.blocks[w/wordsPerBlock])
	for j := (w / wordsPerBlock) * wordsPerBlock; j < w; j++ {
		r += bits.OnesCount64(v.words[j])
	}
	mask := ^uint64(0) >> (63 - (uint(i) & 63))
	return r + bits.OnesCount64(v.words[w]&mask)
}

// Rank0 returns the number of zero bits in positions [0, i].
func (v *BitVector) Rank0(i int) int { return i + 1 - v.Rank1(i) }

// Select1 returns the position of the k-th set bit (1-based). It reports
// ok=false if the vector has fewer than k set bits.
func (v *BitVector) Select1(k int) (pos int, ok bool) {
	if k <= 0 || k > v.ones {
		return 0, false
	}
	// Binary search the block index: last block with cumulative < k.
	lo, hi := 0, len(v.blocks)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(v.blocks[mid]) < k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - int(v.blocks[lo])
	for w := lo * wordsPerBlock; w < len(v.words); w++ {
		c := bits.OnesCount64(v.words[w])
		if rem <= c {
			return w*64 + selectInWord(v.words[w], rem), true
		}
		rem -= c
	}
	return 0, false
}

// selectInWord returns the position (0-63) of the k-th (1-based) set bit.
func selectInWord(w uint64, k int) int {
	for i := 1; i < k; i++ {
		w &= w - 1 // clear lowest set bit
	}
	return bits.TrailingZeros64(w)
}

// MemoryUsage returns the footprint in bytes, including the rank index.
func (v *BitVector) MemoryUsage() int {
	return len(v.words)*8 + len(v.blocks)*4
}

// Rank256 counts the set bits at positions <= i within a 256-bit bitmap,
// the popcount-based child-indexing primitive of the bitmap-trie
// dictionary (paper Figure 6). i must be in [0, 255].
func Rank256(bm *[4]uint64, i int) int {
	w := i >> 6
	r := 0
	for j := 0; j < w; j++ {
		r += bits.OnesCount64(bm[j])
	}
	mask := ^uint64(0) >> (63 - (uint(i) & 63))
	return r + bits.OnesCount64(bm[w]&mask)
}

// PopCount256 returns the number of set bits in a 256-bit bitmap.
func PopCount256(bm *[4]uint64) int {
	return bits.OnesCount64(bm[0]) + bits.OnesCount64(bm[1]) +
		bits.OnesCount64(bm[2]) + bits.OnesCount64(bm[3])
}

// Bit256 reports whether bit i of a 256-bit bitmap is set.
func Bit256(bm *[4]uint64, i int) bool {
	return bm[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set256 sets bit i of a 256-bit bitmap.
func Set256(bm *[4]uint64, i int) {
	bm[i>>6] |= 1 << (uint(i) & 63)
}

// PrevSet256 returns the largest set bit position strictly below i, or -1.
func PrevSet256(bm *[4]uint64, i int) int {
	w := i >> 6
	off := uint(i) & 63
	if off > 0 {
		if masked := bm[w] & ((1 << off) - 1); masked != 0 {
			return w*64 + 63 - bits.LeadingZeros64(masked)
		}
	}
	for w--; w >= 0; w-- {
		if bm[w] != 0 {
			return w*64 + 63 - bits.LeadingZeros64(bm[w])
		}
	}
	return -1
}

// MaxSet256 returns the largest set bit position, or -1 for an empty bitmap.
func MaxSet256(bm *[4]uint64) int {
	for w := 3; w >= 0; w-- {
		if bm[w] != 0 {
			return w*64 + 63 - bits.LeadingZeros64(bm[w])
		}
	}
	return -1
}
