// Package btree implements an in-memory B+tree with TLX-compatible
// geometry (the paper's fourth evaluated tree): 16 key slots per node
// (384-byte nodes at 8-byte key, value, and probe-word slots),
// variable-length string keys stored outside the nodes by reference,
// and chained leaves for range scans.
//
// Leaves use a gapped slot layout: occupancy is a 16-bit mask and empty
// slots are distributed through the node, so an insert shifts entries
// only as far as the nearest gap (usually not at all) instead of moving
// the whole suffix. Every key slot — including gaps — holds a pointer
// chosen so the padded 16-entry key array is non-decreasing, which lets
// point lookups run a branch-predictable fixed-shape binary search (five
// unconditional compares) followed by one bitmask snap to the next
// occupied slot. Inner nodes stay packed but pad their unused key slots
// with the last separator for the same fixed-shape search. See
// DESIGN.md, "Gapped, branchless B+tree leaves".
package btree

import (
	"bytes"
	"encoding/binary"
	"math/bits"
)

// Fanout is the number of key slots per node (TLX default geometry).
const Fanout = 16

// fullMask is the occupancy mask of a leaf with every slot taken.
const fullMask = 1<<Fanout - 1

// evenMask occupies every second slot — the layout both halves of a leaf
// split scatter into, leaving a gap next to each entry.
const evenMask = 0x5555

// Tree is a B+tree mapping byte-string keys to uint64 values.
type Tree struct {
	root   node
	size   int
	height int
}

// New returns an empty tree.
func New() *Tree { return &Tree{root: &leafNode{}, height: 1} }

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

// Height returns the number of node levels.
func (t *Tree) Height() int { return t.height }

type node interface{ isNode() }

// leafNode stores its entries in slot order (occupied slots are strictly
// increasing in key) under the occupancy mask occ. Gap slots are not
// nil: each holds a neighbouring key pointer such that keys[0..15] read
// as a whole is non-decreasing — the only invariant lowerBound needs.
type leafNode struct {
	keys [Fanout][]byte
	vals [Fanout]uint64
	// pw[i] is the integer probe word of slot i: the first 8 bytes of
	// keys[i] past the shared prefix, big-endian, zero-padded. The fixed
	// search probes compare these words — one-cycle integer compares the
	// branch predictor cannot mispredict on data — and fall back to byte
	// compares only on equal words. Maintained by fillGaps and place.
	pw  [Fanout]uint64
	occ uint16
	// pfx is the length of the prefix shared by every stored key (capped
	// at 255): neighbouring string keys share long prefixes, and the
	// probe words discriminate on the 8 bytes after it.
	pfx  uint8
	next *leafNode
}

type innerNode struct {
	// child[i] holds keys < keys[i]; child[n] holds keys >= keys[n-1].
	// Slots keys[n..] duplicate keys[n-1] (see pad) so upperBound's fixed
	// probes always read a non-decreasing array. pw/pfx mirror the leaf
	// scheme over the separators, maintained by pad.
	keys  [Fanout][]byte
	pw    [Fanout]uint64
	child [Fanout + 1]node
	n     int
	pfx   uint8
}

// lcpLen returns the length of the longest common prefix of a and b,
// capped at 255 so it fits the nodes' pfx byte.
func lcpLen(a, b []byte) uint8 {
	n := min(len(a), len(b), 255)
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return uint8(i)
}

// be64 packs up to the first 8 bytes of b big-endian, zero-padded on the
// right. Strict word order implies strict byte-string order; equal words
// mean the strings agree on those bytes only as far as their lengths —
// the searches resolve equal-word runs with byte compares.
func be64(b []byte) uint64 {
	if len(b) >= 8 {
		return binary.BigEndian.Uint64(b)
	}
	var w uint64
	for _, c := range b {
		w = w<<8 | uint64(c)
	}
	return w << (8 * (8 - uint(len(b))))
}

func (*leafNode) isNode()  {}
func (*innerNode) isNode() {}

// count returns the number of occupied slots.
func (l *leafNode) count() int { return bits.OnesCount16(l.occ) }

// firstSlot returns the lowest occupied slot, or Fanout when empty.
func (l *leafNode) firstSlot() int { return bits.TrailingZeros16(l.occ) }

// lastSlot returns the highest occupied slot, or -1 when empty.
func (l *leafNode) lastSlot() int { return bits.Len16(l.occ) - 1 }

// fillGaps rewrites every gap slot from the occupied entries: gaps after
// the first occupied slot duplicate their nearest occupied left
// neighbour, leading gaps duplicate the first key. The result is a
// non-decreasing padded array that holds no pointer other than the live
// keys (deletion relies on that to actually release key bytes).
func (l *leafNode) fillGaps() {
	if l.occ == 0 {
		for i := range l.keys {
			l.keys[i] = nil
			l.pw[i] = 0
		}
		l.pfx = 0
		return
	}
	cur := l.keys[l.firstSlot()]
	for i := 0; i < Fanout; i++ {
		if l.occ&(1<<i) != 0 {
			cur = l.keys[i]
		} else {
			l.keys[i] = cur
		}
	}
	// Keys are sorted, so the first/last pair's shared prefix is the
	// node-wide one.
	l.pfx = lcpLen(l.keys[l.firstSlot()], l.keys[l.lastSlot()])
	for i := range l.pw {
		l.pw[i] = be64(l.keys[i][l.pfx:])
	}
}

// pad duplicates the last separator into the unused key slots so
// upperBound's fixed probes see a non-decreasing array. Inner mutations
// must call it whenever n changes.
func (in *innerNode) pad() {
	if in.n == 0 {
		for i := range in.keys {
			in.keys[i] = nil
			in.pw[i] = 0
		}
		in.pfx = 0
		return
	}
	last := in.keys[in.n-1]
	for i := in.n; i < Fanout; i++ {
		in.keys[i] = last
	}
	in.pfx = lcpLen(in.keys[0], last)
	for i := range in.pw {
		in.pw[i] = be64(in.keys[i][in.pfx:])
	}
}

// upperBound returns the first index with key < keys[i], i.e. the child
// to descend into. The search shape is fixed: five probes at
// data-independent offsets (16 -> 8 -> 4 -> 2 -> 1), no loop. Each probe
// is a single integer compare against the slot's probe word, so the whole
// descent step costs one byte-compare (the shared prefix) plus five
// register compares; byte compares reappear only on equal probe words,
// which needs keys agreeing for pfx+8 bytes.
func (in *innerNode) upperBound(key []byte) int {
	p := int(in.pfx)
	if p > 0 {
		pre := in.keys[0]
		if len(key) < p {
			if bytes.Compare(key, pre[:len(key)]) > 0 {
				return in.n
			}
			return 0 // below, or a proper prefix of, every separator
		}
		switch c := bytes.Compare(key[:p], pre[:p]); {
		case c < 0:
			return 0
		case c > 0:
			return in.n
		}
		key = key[p:]
	}
	kw := be64(key)
	b := 0
	if in.pw[7] < kw {
		b = 8
	}
	if in.pw[b+3] < kw {
		b += 4
	}
	if in.pw[b+1] < kw {
		b += 2
	}
	if in.pw[b] < kw {
		b++
	}
	if b < Fanout && in.pw[b] < kw {
		b++
	}
	// b is the first slot with pw >= kw; slots before it hold separators
	// strictly below key. Equal words leave the order undecided (the
	// strings may diverge past byte pfx+8, or differ only in length), so
	// walk the equal-word run with real compares.
	for b < Fanout && in.pw[b] == kw && bytes.Compare(key, in.keys[b][p:]) >= 0 {
		b++
	}
	if b > in.n {
		b = in.n
	}
	return b
}

// lowerBound returns the first occupied slot whose key is >= key, or
// Fanout when none is. It runs the same five fixed integer probes over
// the padded probe-word array (valid because the padding keeps it
// non-decreasing), resolves any equal-word run with byte compares, then
// snaps forward to the next occupied slot with one mask scan: the padded
// lower bound is never past an occupied slot that should be the answer,
// because every slot before it holds a key < the probe.
func (l *leafNode) lowerBound(key []byte) int {
	p := int(l.pfx)
	if p > 0 { // occ != 0, every slot non-nil and prefixed
		pre := l.keys[0]
		if len(key) < p {
			if bytes.Compare(key, pre[:len(key)]) > 0 {
				return Fanout
			}
			return l.firstSlot() // below every stored key
		}
		switch c := bytes.Compare(key[:p], pre[:p]); {
		case c < 0:
			return l.firstSlot()
		case c > 0:
			return Fanout
		}
		key = key[p:]
	}
	kw := be64(key)
	b := 0
	if l.pw[7] < kw {
		b = 8
	}
	if l.pw[b+3] < kw {
		b += 4
	}
	if l.pw[b+1] < kw {
		b += 2
	}
	if l.pw[b] < kw {
		b++
	}
	if b < Fanout && l.pw[b] < kw {
		b++
	}
	for b < Fanout && l.pw[b] == kw && bytes.Compare(l.keys[b][p:], key) < 0 {
		b++
	}
	m := uint32(l.occ) >> b
	if m == 0 {
		return Fanout
	}
	return b + bits.TrailingZeros32(m)
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	n := t.root
	for {
		switch v := n.(type) {
		case *innerNode:
			n = v.child[v.upperBound(key)]
		case *leafNode:
			i := v.lowerBound(key)
			if i < Fanout && bytes.Equal(v.keys[i], key) {
				return v.vals[i], true
			}
			return 0, false
		}
	}
}

// Insert adds or updates a key. Key bytes are copied on a true insert
// (the tree owns its out-of-node key storage, as TLX does); overwriting
// an existing key's value allocates nothing.
func (t *Tree) Insert(key []byte, val uint64) {
	sep, right := t.insert(t.root, key, val)
	if right != nil {
		r := &innerNode{n: 1}
		r.keys[0] = sep
		r.child[0] = t.root
		r.child[1] = right
		r.pad()
		t.root = r
		t.height++
	}
}

func copyKey(key []byte) []byte {
	k := make([]byte, len(key))
	copy(k, key)
	return k
}

// place stores an owned key copy before occupied slot i (Fanout = after
// all). The caller guarantees the key is absent and the leaf not full.
// When a gap exists adjacent to the insertion point nothing moves; a
// placement inside a gapless run shifts entries only as far as the
// nearest gap on either side.
func (l *leafNode) place(i int, k []byte, val uint64) {
	// The shared prefix is lcp(min, max); inserting can only shrink it,
	// and only when k becomes the node's new min or max. Interior inserts
	// keep pfx, and placeAt maintains the probe words in place — the
	// common case touches only k's bytes, not every stored key (a cold
	// node would eat a cache miss per slot on a full refresh).
	boundary := l.occ == 0 || i <= l.firstSlot() || i > l.lastSlot()
	l.placeAt(i, k, val)
	if !boundary {
		return
	}
	if np := lcpLen(l.keys[l.firstSlot()], l.keys[l.lastSlot()]); np != l.pfx {
		l.pfx = np
		for j := range l.pw {
			l.pw[j] = be64(l.keys[j][np:])
		}
	}
}

func (l *leafNode) placeAt(i int, k []byte, val uint64) {
	// k's probe word under the current prefix. When k is shorter than the
	// prefix, or diverges inside it, w is meaningless — but then pfx
	// shrinks, and place() rebuilds the whole array anyway.
	var w uint64
	if p := int(l.pfx); p <= len(k) {
		w = be64(k[p:])
	}
	if l.occ == 0 {
		// First key: occupy the middle slot and point every slot at the
		// key, so both invariants hold with maximal gap headroom.
		for j := range l.keys {
			l.keys[j] = k
			l.pw[j] = w
		}
		l.vals[Fanout/2] = val
		l.occ = 1 << (Fanout / 2)
		return
	}
	prev := bits.Len16(l.occ & (1<<i - 1)) // 1 + last occupied slot < i
	if i > prev {
		// A gap run [prev, i-1] separates the neighbours: nothing
		// shifts. Take the run's middle slot — halving the run keeps
		// headroom on both sides for monotone insert patterns — and
		// repoint the whole run at k. The run's old duplicates are only
		// known to lie in [keys[prev-1], keys[i]], which k splits, so
		// pointing them all at k is what keeps the padding
		// non-decreasing (and is legal for every slot of the run).
		s := (prev + i) / 2
		for j := prev; j < i; j++ {
			l.keys[j] = k
			l.pw[j] = w
		}
		l.vals[s] = val
		l.occ |= 1 << s
		return
	}
	// No gap between the neighbours: shift the shorter occupied run one
	// slot toward the nearest gap. At least one gap exists (not full).
	gr := i + bits.TrailingZeros32(uint32(^l.occ)>>i) // first gap >= i
	gl := bits.Len16(^l.occ&(1<<i-1)&fullMask) - 1    // last gap < i
	if gl >= 0 && (gr >= Fanout || i-1-gl <= gr-i) {
		// Shift slots gl+1..i-1 left one; k lands at i-1.
		copy(l.keys[gl:i-1], l.keys[gl+1:i])
		copy(l.vals[gl:i-1], l.vals[gl+1:i])
		copy(l.pw[gl:i-1], l.pw[gl+1:i])
		l.keys[i-1] = k
		l.vals[i-1] = val
		l.pw[i-1] = w
		l.occ |= 1 << gl
		return
	}
	// Shift slots i..gr-1 right one; k lands at i.
	copy(l.keys[i+1:gr+1], l.keys[i:gr])
	copy(l.vals[i+1:gr+1], l.vals[i:gr])
	copy(l.pw[i+1:gr+1], l.pw[i:gr])
	l.keys[i] = k
	l.vals[i] = val
	l.pw[i] = w
	l.occ |= 1 << gr
}

// insert descends and returns a (separator, new right sibling) pair when
// the child split.
func (t *Tree) insert(n node, key []byte, val uint64) ([]byte, node) {
	switch v := n.(type) {
	case *innerNode:
		idx := v.upperBound(key)
		sep, right := t.insert(v.child[idx], key, val)
		if right == nil {
			return nil, nil
		}
		if v.n < Fanout {
			copy(v.keys[idx+1:v.n+1], v.keys[idx:v.n])
			copy(v.child[idx+2:v.n+2], v.child[idx+1:v.n+1])
			v.keys[idx] = sep
			v.child[idx+1] = right
			v.n++
			v.pad()
			return nil, nil
		}
		return v.splitInsert(idx, sep, right)
	case *leafNode:
		i := v.lowerBound(key)
		if i < Fanout && bytes.Equal(v.keys[i], key) {
			v.vals[i] = val // overwrite: no copy, no allocation
			return nil, nil
		}
		if v.occ != fullMask {
			v.place(i, copyKey(key), val)
			t.size++
			return nil, nil
		}
		// Split the full leaf: each half scatters its 8 entries across
		// the even slots, regaining a gap beside every entry, then the
		// new key goes to the proper half through the normal gapped path.
		mid := Fanout / 2
		right := &leafNode{next: v.next, occ: evenMask}
		for j := 0; j < mid; j++ {
			right.keys[2*j] = v.keys[mid+j]
			right.vals[2*j] = v.vals[mid+j]
		}
		right.fillGaps()
		sep := right.keys[0]
		var tk [Fanout / 2][]byte
		var tv [Fanout / 2]uint64
		copy(tk[:], v.keys[:mid])
		copy(tv[:], v.vals[:mid])
		v.occ = evenMask
		for j := 0; j < mid; j++ {
			v.keys[2*j] = tk[j]
			v.vals[2*j] = tv[j]
		}
		v.fillGaps()
		v.next = right
		h := v
		if bytes.Compare(key, sep) >= 0 {
			h = right
		}
		h.place(h.lowerBound(key), copyKey(key), val)
		t.size++
		// Separator references the right leaf's first key (no copy).
		return sep, right
	}
	return nil, nil
}

// splitInsert splits a full inner node while inserting (sep, right) at idx.
func (v *innerNode) splitInsert(idx int, sep []byte, right node) ([]byte, node) {
	var keys [Fanout + 1][]byte
	var child [Fanout + 2]node
	copy(keys[:idx], v.keys[:idx])
	keys[idx] = sep
	copy(keys[idx+1:], v.keys[idx:v.n])
	copy(child[:idx+1], v.child[:idx+1])
	child[idx+1] = right
	copy(child[idx+2:], v.child[idx+1:v.n+1])

	total := Fanout + 1 // separators after insertion
	mid := total / 2    // separator promoted to the parent
	up := keys[mid]
	v.n = mid
	copy(v.keys[:], keys[:mid])
	copy(v.child[:], child[:mid+1])
	for j := mid + 1; j < Fanout+1; j++ {
		v.child[j] = nil
	}
	v.pad()
	r := &innerNode{n: total - mid - 1}
	copy(r.keys[:], keys[mid+1:total])
	copy(r.child[:], child[mid+1:total+1])
	r.pad()
	return up, r
}

// Scan visits keys >= start in order until fn returns false.
func (t *Tree) Scan(start []byte, fn func(key []byte, val uint64) bool) {
	n := t.root
	for {
		in, ok := n.(*innerNode)
		if !ok {
			break
		}
		n = in.child[in.upperBound(start)]
	}
	l := n.(*leafNode)
	i := l.lowerBound(start)
	mm := uint32(0)
	if i < Fanout {
		mm = uint32(l.occ) >> i << i
	}
	for l != nil {
		for mm != 0 {
			s := bits.TrailingZeros32(mm)
			mm &= mm - 1
			if !fn(l.keys[s], l.vals[s]) {
				return
			}
		}
		l = l.next
		if l != nil {
			mm = uint32(l.occ)
		}
	}
}

// BulkLoad builds the tree from sorted unique keys, filling leaves to
// capacity; values are the key indexes unless vals is non-nil. Each
// leaf's key bytes live in one per-leaf arena allocation instead of one
// allocation per key. Bulk-loaded leaves carry no gaps (the load is the
// memory-footprint baseline); gaps appear where later inserts split.
func BulkLoad(keys [][]byte, vals []uint64) *Tree {
	t := New()
	if len(keys) == 0 {
		return t
	}
	var leaves []node
	var firstKeys [][]byte
	var prev *leafNode
	for i := 0; i < len(keys); i += Fanout {
		end := i + Fanout
		if end > len(keys) {
			end = len(keys)
		}
		total := 0
		for j := i; j < end; j++ {
			total += len(keys[j])
		}
		arena := make([]byte, 0, total)
		l := &leafNode{}
		for j := i; j < end; j++ {
			off := len(arena)
			arena = append(arena, keys[j]...)
			l.keys[j-i] = arena[off:len(arena):len(arena)]
			if vals != nil {
				l.vals[j-i] = vals[j]
			} else {
				l.vals[j-i] = uint64(j)
			}
			l.occ |= 1 << (j - i)
		}
		l.fillGaps() // pads the final partial leaf's trailing slots
		if prev != nil {
			prev.next = l
		}
		prev = l
		leaves = append(leaves, l)
		firstKeys = append(firstKeys, l.keys[0])
	}
	t.size = len(keys)
	level := leaves
	seps := firstKeys
	t.height = 1
	for len(level) > 1 {
		var up []node
		var upSeps [][]byte
		for i := 0; i < len(level); i += Fanout + 1 {
			in := &innerNode{}
			end := i + Fanout + 1
			if end > len(level) {
				end = len(level)
			}
			for j := i; j < end; j++ {
				in.child[j-i] = level[j]
				if j > i {
					in.keys[j-i-1] = seps[j]
					in.n++
				}
			}
			in.pad()
			up = append(up, in)
			upSeps = append(upSeps, seps[i])
		}
		level = up
		seps = upSeps
		t.height++
	}
	t.root = level[0]
	return t
}

// Stats summarizes the tree structure and modeled memory.
type Stats struct {
	Leaves, Inners int
	KeyBytes       int
	MemoryBytes    int
}

// ComputeStats traverses the tree. Modeled footprint: 384-byte nodes
// (16 slots x (8-byte key pointer + 8-byte value/child pointer + 8-byte
// probe word)) plus 16 bytes of header, plus the out-of-node key bytes
// stored once at the leaf level (inner separators and gap slots are
// references). The probe-word array is the price of the branchless
// integer search — +50% node metadata for ~2x faster lookups.
func (t *Tree) ComputeStats() Stats {
	var s Stats
	walk(t.root, &s)
	s.MemoryBytes = (s.Leaves+s.Inners)*(16+Fanout*24) + s.KeyBytes
	return s
}

func walk(n node, s *Stats) {
	switch v := n.(type) {
	case *leafNode:
		s.Leaves++
		for mm := v.occ; mm != 0; mm &= mm - 1 {
			s.KeyBytes += len(v.keys[bits.TrailingZeros16(mm)])
		}
	case *innerNode:
		s.Inners++
		for i := 0; i <= v.n; i++ {
			walk(v.child[i], s)
		}
	}
}

// MemoryUsage returns the modeled footprint in bytes.
func (t *Tree) MemoryUsage() int { return t.ComputeStats().MemoryBytes }
