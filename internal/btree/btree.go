// Package btree implements an in-memory B+tree with TLX-compatible
// geometry (the paper's fourth evaluated tree): 16 key slots per node
// (256-byte nodes at 8-byte key and value pointers), variable-length
// string keys stored outside the nodes by reference, and chained leaves
// for range scans.
package btree

import "bytes"

// Fanout is the number of key slots per node (TLX default geometry).
const Fanout = 16

// Tree is a B+tree mapping byte-string keys to uint64 values.
type Tree struct {
	root   node
	size   int
	height int
}

// New returns an empty tree.
func New() *Tree { return &Tree{root: &leafNode{}, height: 1} }

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

// Height returns the number of node levels.
func (t *Tree) Height() int { return t.height }

type node interface{ isNode() }

type leafNode struct {
	keys [Fanout][]byte
	vals [Fanout]uint64
	n    int
	next *leafNode
}

type innerNode struct {
	// child[i] holds keys < keys[i]; child[n] holds keys >= keys[n-1].
	keys  [Fanout][]byte
	child [Fanout + 1]node
	n     int
}

func (*leafNode) isNode()  {}
func (*innerNode) isNode() {}

// upperBound returns the first index with key < keys[i], i.e. the child to
// descend into.
func (in *innerNode) upperBound(key []byte) int {
	lo, hi := 0, in.n
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(key, in.keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// lowerBound returns the first slot with keys[i] >= key.
func (l *leafNode) lowerBound(key []byte) int {
	lo, hi := 0, l.n
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(l.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	n := t.root
	for {
		switch v := n.(type) {
		case *innerNode:
			n = v.child[v.upperBound(key)]
		case *leafNode:
			i := v.lowerBound(key)
			if i < v.n && bytes.Equal(v.keys[i], key) {
				return v.vals[i], true
			}
			return 0, false
		}
	}
}

// Insert adds or updates a key. Key bytes are copied (the tree owns its
// out-of-node key storage, as TLX does).
func (t *Tree) Insert(key []byte, val uint64) {
	k := make([]byte, len(key))
	copy(k, key)
	sep, right := t.insert(t.root, k, val)
	if right != nil {
		r := &innerNode{n: 1}
		r.keys[0] = sep
		r.child[0] = t.root
		r.child[1] = right
		t.root = r
		t.height++
	}
}

// insert descends and returns a (separator, new right sibling) pair when
// the child split.
func (t *Tree) insert(n node, key []byte, val uint64) ([]byte, node) {
	switch v := n.(type) {
	case *innerNode:
		idx := v.upperBound(key)
		sep, right := t.insert(v.child[idx], key, val)
		if right == nil {
			return nil, nil
		}
		if v.n < Fanout {
			copy(v.keys[idx+1:v.n+1], v.keys[idx:v.n])
			copy(v.child[idx+2:v.n+2], v.child[idx+1:v.n+1])
			v.keys[idx] = sep
			v.child[idx+1] = right
			v.n++
			return nil, nil
		}
		return v.splitInsert(idx, sep, right)
	case *leafNode:
		i := v.lowerBound(key)
		if i < v.n && bytes.Equal(v.keys[i], key) {
			v.vals[i] = val
			return nil, nil
		}
		if v.n < Fanout {
			copy(v.keys[i+1:v.n+1], v.keys[i:v.n])
			copy(v.vals[i+1:v.n+1], v.vals[i:v.n])
			v.keys[i] = key
			v.vals[i] = val
			v.n++
			t.size++
			return nil, nil
		}
		// Split the leaf, then insert into the proper half.
		mid := Fanout / 2
		right := &leafNode{n: Fanout - mid, next: v.next}
		copy(right.keys[:], v.keys[mid:])
		copy(right.vals[:], v.vals[mid:])
		for j := mid; j < Fanout; j++ {
			v.keys[j] = nil
		}
		v.n = mid
		v.next = right
		if bytes.Compare(key, right.keys[0]) < 0 {
			i = v.lowerBound(key)
			copy(v.keys[i+1:v.n+1], v.keys[i:v.n])
			copy(v.vals[i+1:v.n+1], v.vals[i:v.n])
			v.keys[i] = key
			v.vals[i] = val
			v.n++
		} else {
			i = right.lowerBound(key)
			copy(right.keys[i+1:right.n+1], right.keys[i:right.n])
			copy(right.vals[i+1:right.n+1], right.vals[i:right.n])
			right.keys[i] = key
			right.vals[i] = val
			right.n++
		}
		t.size++
		// Separator references the right leaf's first key (no copy).
		return right.keys[0], right
	}
	return nil, nil
}

// splitInsert splits a full inner node while inserting (sep, right) at idx.
func (v *innerNode) splitInsert(idx int, sep []byte, right node) ([]byte, node) {
	var keys [Fanout + 1][]byte
	var child [Fanout + 2]node
	copy(keys[:idx], v.keys[:idx])
	keys[idx] = sep
	copy(keys[idx+1:], v.keys[idx:v.n])
	copy(child[:idx+1], v.child[:idx+1])
	child[idx+1] = right
	copy(child[idx+2:], v.child[idx+1:v.n+1])

	total := Fanout + 1 // separators after insertion
	mid := total / 2    // separator promoted to the parent
	up := keys[mid]
	v.n = mid
	copy(v.keys[:], keys[:mid])
	copy(v.child[:], child[:mid+1])
	for j := mid; j < Fanout; j++ {
		v.keys[j] = nil
		v.child[j+1] = nil
	}
	r := &innerNode{n: total - mid - 1}
	copy(r.keys[:], keys[mid+1:total])
	copy(r.child[:], child[mid+1:total+1])
	return up, r
}

// Scan visits keys >= start in order until fn returns false.
func (t *Tree) Scan(start []byte, fn func(key []byte, val uint64) bool) {
	n := t.root
	for {
		in, ok := n.(*innerNode)
		if !ok {
			break
		}
		n = in.child[in.upperBound(start)]
	}
	l := n.(*leafNode)
	i := l.lowerBound(start)
	for l != nil {
		for ; i < l.n; i++ {
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

// BulkLoad builds the tree from sorted unique keys, filling leaves to
// capacity; values are the key indexes unless vals is non-nil.
func BulkLoad(keys [][]byte, vals []uint64) *Tree {
	t := New()
	if len(keys) == 0 {
		return t
	}
	var leaves []node
	var firstKeys [][]byte
	var prev *leafNode
	for i := 0; i < len(keys); i += Fanout {
		l := &leafNode{}
		for j := i; j < len(keys) && j-i < Fanout; j++ {
			k := make([]byte, len(keys[j]))
			copy(k, keys[j])
			l.keys[j-i] = k
			if vals != nil {
				l.vals[j-i] = vals[j]
			} else {
				l.vals[j-i] = uint64(j)
			}
			l.n++
		}
		if prev != nil {
			prev.next = l
		}
		prev = l
		leaves = append(leaves, l)
		firstKeys = append(firstKeys, l.keys[0])
	}
	t.size = len(keys)
	level := leaves
	seps := firstKeys
	t.height = 1
	for len(level) > 1 {
		var up []node
		var upSeps [][]byte
		for i := 0; i < len(level); i += Fanout + 1 {
			in := &innerNode{}
			end := i + Fanout + 1
			if end > len(level) {
				end = len(level)
			}
			for j := i; j < end; j++ {
				in.child[j-i] = level[j]
				if j > i {
					in.keys[j-i-1] = seps[j]
					in.n++
				}
			}
			up = append(up, in)
			upSeps = append(upSeps, seps[i])
		}
		level = up
		seps = upSeps
		t.height++
	}
	t.root = level[0]
	return t
}

// Stats summarizes the tree structure and modeled memory.
type Stats struct {
	Leaves, Inners int
	KeyBytes       int
	MemoryBytes    int
}

// ComputeStats traverses the tree. Modeled footprint: 256-byte nodes
// (16 slots x (8-byte key pointer + 8-byte value/child pointer)) plus
// 16 bytes of header, plus the out-of-node key bytes stored once at the
// leaf level (inner separators are references).
func (t *Tree) ComputeStats() Stats {
	var s Stats
	walk(t.root, &s)
	s.MemoryBytes = (s.Leaves+s.Inners)*(16+Fanout*16) + s.KeyBytes
	return s
}

func walk(n node, s *Stats) {
	switch v := n.(type) {
	case *leafNode:
		s.Leaves++
		for i := 0; i < v.n; i++ {
			s.KeyBytes += len(v.keys[i])
		}
	case *innerNode:
		s.Inners++
		for i := 0; i <= v.n; i++ {
			walk(v.child[i], s)
		}
	}
}

// MemoryUsage returns the modeled footprint in bytes.
func (t *Tree) MemoryUsage() int { return t.ComputeStats().MemoryBytes }
