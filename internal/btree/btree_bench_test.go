package btree

import (
	"testing"

	"repro/internal/datagen"
)

func BenchmarkInsert(b *testing.B) {
	keys := datagen.Generate(datagen.Email, 100000, 1)
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i%len(keys)], uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	keys := datagen.Generate(datagen.Email, 100000, 1)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i%len(keys)])
	}
}

func BenchmarkScan100(b *testing.B) {
	keys := datagen.Generate(datagen.Email, 100000, 1)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Scan(keys[i%len(keys)], func([]byte, uint64) bool {
			n++
			return n < 100
		})
	}
}
