package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func randKeys(rng *rand.Rand, n, maxLen int) [][]byte {
	seen := map[string]bool{}
	var out [][]byte
	for len(out) < n {
		k := make([]byte, 1+rng.Intn(maxLen))
		for i := range k {
			k[i] = byte('a' + rng.Intn(8))
		}
		if !seen[string(k)] {
			seen[string(k)] = true
			out = append(out, k)
		}
	}
	return out
}

func TestInsertGetRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := randKeys(rng, 5000, 12)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len=%d, want %d", tr.Len(), len(keys))
	}
	for i, k := range keys {
		v, ok := tr.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%q)=(%d,%v), want %d", k, v, ok, i)
		}
	}
	for i := 0; i < 3000; i++ {
		k := randKeys(rng, 1, 14)[0]
		_, ok := tr.Get(k)
		found := false
		for _, kk := range keys {
			if bytes.Equal(k, kk) {
				found = true
				break
			}
		}
		if ok != found {
			t.Fatalf("Get(%q) presence %v, want %v", k, ok, found)
		}
	}
}

func TestUpdate(t *testing.T) {
	tr := New()
	tr.Insert([]byte("k"), 1)
	tr.Insert([]byte("k"), 2)
	if tr.Len() != 1 {
		t.Fatal("duplicate insert changed size")
	}
	if v, _ := tr.Get([]byte("k")); v != 2 {
		t.Fatal("update lost")
	}
}

func TestInsertDoesNotAliasCallerKey(t *testing.T) {
	tr := New()
	k := []byte("mutate")
	tr.Insert(k, 7)
	k[0] = 'X'
	if _, ok := tr.Get([]byte("mutate")); !ok {
		t.Fatal("tree aliased caller storage")
	}
}

func TestScanOrderedAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randKeys(rng, 4000, 10)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	sorted := make([]string, len(keys))
	for i, k := range keys {
		sorted[i] = string(k)
	}
	sort.Strings(sorted)
	for trial := 0; trial < 300; trial++ {
		start := randKeys(rng, 1, 12)[0]
		limit := 1 + rng.Intn(30)
		i := sort.SearchStrings(sorted, string(start))
		var want []string
		for j := i; j < len(sorted) && len(want) < limit; j++ {
			want = append(want, sorted[j])
		}
		var got []string
		tr.Scan(start, func(k []byte, v uint64) bool {
			got = append(got, string(k))
			return len(got) < limit
		})
		if len(got) != len(want) {
			t.Fatalf("Scan(%q,%d): %d keys, want %d", start, limit, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Scan(%q)[%d]=%q, want %q", start, j, got[j], want[j])
			}
		}
	}
}

func TestBulkLoadEquivalentToInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := randKeys(rng, 3000, 10)
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	bl := BulkLoad(keys, nil)
	ins := New()
	for i, k := range keys {
		ins.Insert(k, uint64(i))
	}
	if bl.Len() != ins.Len() {
		t.Fatal("sizes differ")
	}
	for i, k := range keys {
		v, ok := bl.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("bulk Get(%q)=(%d,%v)", k, v, ok)
		}
	}
	// Full scans agree.
	var a, b []string
	bl.Scan(nil, func(k []byte, _ uint64) bool { a = append(a, string(k)); return true })
	ins.Scan(nil, func(k []byte, _ uint64) bool { b = append(b, string(k)); return true })
	if len(a) != len(b) {
		t.Fatal("scan lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan differs at %d", i)
		}
	}
}

func TestBulkLoadVals(t *testing.T) {
	keys := [][]byte{[]byte("a"), []byte("b")}
	tr := BulkLoad(keys, []uint64{10, 20})
	if v, _ := tr.Get([]byte("b")); v != 20 {
		t.Fatal("explicit vals ignored")
	}
}

func TestSequentialInsertHeight(t *testing.T) {
	// Sequential inserts produce half-full leaves; height stays O(log n).
	tr := New()
	n := 20000
	for i := 0; i < n; i++ {
		tr.Insert([]byte(fmt.Sprintf("%08d", i)), uint64(i))
	}
	if tr.Height() > 6 {
		t.Fatalf("height %d too large for %d keys", tr.Height(), n)
	}
	for _, i := range []int{0, 1, 9999, 19999} {
		if _, ok := tr.Get([]byte(fmt.Sprintf("%08d", i))); !ok {
			t.Fatalf("lost key %d", i)
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := randKeys(rng, 2000, 10)
	tr := New()
	keyBytes := 0
	for i, k := range keys {
		tr.Insert(k, uint64(i))
		keyBytes += len(k)
	}
	s := tr.ComputeStats()
	if s.KeyBytes != keyBytes {
		t.Fatalf("key bytes %d, want %d", s.KeyBytes, keyBytes)
	}
	if s.Leaves < len(keys)/Fanout {
		t.Fatalf("too few leaves: %d", s.Leaves)
	}
	if tr.MemoryUsage() <= keyBytes {
		t.Fatal("memory must include structural overhead")
	}
	// Shorter keys -> smaller tree: the property HOPE exploits.
	short := New()
	for i, k := range keys {
		short.Insert(k[:1+len(k)/2], uint64(i))
	}
	if short.MemoryUsage() >= tr.MemoryUsage() {
		t.Fatal("halving key length did not reduce memory")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("phantom key")
	}
	count := 0
	tr.Scan(nil, func([]byte, uint64) bool { count++; return true })
	if count != 0 {
		t.Fatal("scan on empty tree")
	}
	if BulkLoad(nil, nil).Len() != 0 {
		t.Fatal("empty bulk load")
	}
}

func TestAdversarialSplitOrder(t *testing.T) {
	// Descending and alternating insert orders stress split paths.
	tr := New()
	n := 5000
	for i := n - 1; i >= 0; i-- {
		tr.Insert([]byte(fmt.Sprintf("%06d", i)), uint64(i))
	}
	for i := 0; i < n; i++ {
		if v, ok := tr.Get([]byte(fmt.Sprintf("%06d", i))); !ok || v != uint64(i) {
			t.Fatalf("descending insert lost %d", i)
		}
	}
	tr2 := New()
	for i := 0; i < n; i++ {
		j := i / 2
		if i%2 == 1 {
			j = n - 1 - i/2
		}
		tr2.Insert([]byte(fmt.Sprintf("%06d", j)), uint64(j))
	}
	if tr2.Len() != n {
		t.Fatalf("alternating insert size %d", tr2.Len())
	}
}
