package btree

import "bytes"

// minFill is the minimum slot count for non-root nodes after deletion.
const minFill = Fanout / 2

// Delete removes a key, reports whether it was present, and rebalances by
// borrowing from or merging with siblings, collapsing the root when it
// empties.
func (t *Tree) Delete(key []byte) bool {
	if !t.del(t.root, key) {
		return false
	}
	t.size--
	if in, ok := t.root.(*innerNode); ok && in.n == 0 {
		t.root = in.child[0]
		t.height--
	}
	return true
}

func (t *Tree) del(n node, key []byte) bool {
	switch v := n.(type) {
	case *leafNode:
		i := v.lowerBound(key)
		if i >= v.n || !bytes.Equal(v.keys[i], key) {
			return false
		}
		copy(v.keys[i:], v.keys[i+1:v.n])
		copy(v.vals[i:], v.vals[i+1:v.n])
		v.keys[v.n-1] = nil
		v.n--
		return true
	case *innerNode:
		idx := v.upperBound(key)
		if !t.del(v.child[idx], key) {
			return false
		}
		t.rebalance(v, idx)
		return true
	}
	return false
}

func fill(n node) int {
	switch v := n.(type) {
	case *leafNode:
		return v.n
	case *innerNode:
		return v.n
	}
	return 0
}

// rebalance restores the fill invariant of p.child[idx] after a deletion
// below it.
func (t *Tree) rebalance(p *innerNode, idx int) {
	if fill(p.child[idx]) >= minFill {
		return
	}
	// Prefer borrowing from the richer adjacent sibling.
	left, right := -1, -1
	if idx > 0 {
		left = idx - 1
	}
	if idx < p.n {
		right = idx + 1
	}
	switch c := p.child[idx].(type) {
	case *leafNode:
		if left >= 0 && fill(p.child[left]) > minFill {
			l := p.child[left].(*leafNode)
			copy(c.keys[1:c.n+1], c.keys[:c.n])
			copy(c.vals[1:c.n+1], c.vals[:c.n])
			c.keys[0] = l.keys[l.n-1]
			c.vals[0] = l.vals[l.n-1]
			l.keys[l.n-1] = nil
			l.n--
			c.n++
			p.keys[left] = c.keys[0]
			return
		}
		if right >= 0 && fill(p.child[right]) > minFill {
			r := p.child[right].(*leafNode)
			c.keys[c.n] = r.keys[0]
			c.vals[c.n] = r.vals[0]
			c.n++
			copy(r.keys[:r.n-1], r.keys[1:r.n])
			copy(r.vals[:r.n-1], r.vals[1:r.n])
			r.keys[r.n-1] = nil
			r.n--
			p.keys[idx] = r.keys[0]
			return
		}
		// Merge with a sibling (both at minimum: combined fits one node).
		if left >= 0 {
			mergeLeaves(p.child[left].(*leafNode), c)
			p.removeAt(left)
		} else if right >= 0 {
			mergeLeaves(c, p.child[right].(*leafNode))
			p.removeAt(idx)
		}
	case *innerNode:
		if left >= 0 && fill(p.child[left]) > minFill {
			l := p.child[left].(*innerNode)
			copy(c.keys[1:c.n+1], c.keys[:c.n])
			copy(c.child[1:c.n+2], c.child[:c.n+1])
			c.keys[0] = p.keys[left]
			c.child[0] = l.child[l.n]
			p.keys[left] = l.keys[l.n-1]
			l.keys[l.n-1] = nil
			l.child[l.n] = nil
			l.n--
			c.n++
			return
		}
		if right >= 0 && fill(p.child[right]) > minFill {
			r := p.child[right].(*innerNode)
			c.keys[c.n] = p.keys[idx]
			c.child[c.n+1] = r.child[0]
			c.n++
			p.keys[idx] = r.keys[0]
			copy(r.keys[:r.n-1], r.keys[1:r.n])
			copy(r.child[:r.n], r.child[1:r.n+1])
			r.keys[r.n-1] = nil
			r.child[r.n] = nil
			r.n--
			return
		}
		if left >= 0 {
			mergeInners(p.child[left].(*innerNode), c, p.keys[left])
			p.removeAt(left)
		} else if right >= 0 {
			mergeInners(c, p.child[right].(*innerNode), p.keys[idx])
			p.removeAt(idx)
		}
	}
}

// mergeLeaves appends r into l and unlinks r from the leaf chain.
func mergeLeaves(l, r *leafNode) {
	copy(l.keys[l.n:], r.keys[:r.n])
	copy(l.vals[l.n:], r.vals[:r.n])
	l.n += r.n
	l.next = r.next
}

// mergeInners appends r into l with the parent separator between them.
func mergeInners(l, r *innerNode, sep []byte) {
	l.keys[l.n] = sep
	copy(l.keys[l.n+1:], r.keys[:r.n])
	copy(l.child[l.n+1:], r.child[:r.n+1])
	l.n += r.n + 1
}

// removeAt drops separator i and the child to its right.
func (p *innerNode) removeAt(i int) {
	copy(p.keys[i:], p.keys[i+1:p.n])
	copy(p.child[i+1:], p.child[i+2:p.n+1])
	p.keys[p.n-1] = nil
	p.child[p.n] = nil
	p.n--
}
