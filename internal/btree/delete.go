package btree

import (
	"bytes"
	"math/bits"
)

// minFill is the minimum entry count for non-root nodes after deletion.
const minFill = Fanout / 2

// Delete removes a key, reports whether it was present, and rebalances by
// borrowing from or merging with siblings, collapsing the root when it
// empties.
func (t *Tree) Delete(key []byte) bool {
	if !t.del(t.root, key) {
		return false
	}
	t.size--
	if in, ok := t.root.(*innerNode); ok && in.n == 0 {
		t.root = in.child[0]
		t.height--
	}
	return true
}

func (t *Tree) del(n node, key []byte) bool {
	switch v := n.(type) {
	case *leafNode:
		i := v.lowerBound(key)
		if i >= Fanout || !bytes.Equal(v.keys[i], key) {
			return false
		}
		v.occ &^= 1 << i
		// Rebuilding the gap padding releases every duplicate of the
		// deleted pointer, so the key bytes become collectable.
		v.fillGaps()
		return true
	case *innerNode:
		idx := v.upperBound(key)
		if !t.del(v.child[idx], key) {
			return false
		}
		t.rebalance(v, idx)
		return true
	}
	return false
}

func fill(n node) int {
	switch v := n.(type) {
	case *leafNode:
		return v.count()
	case *innerNode:
		return v.n
	}
	return 0
}

// gather copies the occupied entries in key order into ks/vs (each at
// least count() long) and returns how many there were.
func (l *leafNode) gather(ks [][]byte, vs []uint64) int {
	n := 0
	for mm := l.occ; mm != 0; mm &= mm - 1 {
		s := bits.TrailingZeros16(mm)
		ks[n] = l.keys[s]
		vs[n] = l.vals[s]
		n++
	}
	return n
}

// scatter redistributes entries evenly across the slots (len(ks) <=
// Fanout) and rebuilds the gap padding, giving every entry local
// headroom again.
func (l *leafNode) scatter(ks [][]byte, vs []uint64) {
	l.occ = 0
	for i := range l.keys {
		l.keys[i] = nil
		l.vals[i] = 0
	}
	for j, k := range ks {
		s := j * Fanout / len(ks)
		l.keys[s] = k
		l.vals[s] = vs[j]
		l.occ |= 1 << s
	}
	l.fillGaps()
}

// rebalance restores the fill invariant of p.child[idx] after a deletion
// below it.
func (t *Tree) rebalance(p *innerNode, idx int) {
	if fill(p.child[idx]) >= minFill {
		return
	}
	// Prefer borrowing from the richer adjacent sibling.
	left, right := -1, -1
	if idx > 0 {
		left = idx - 1
	}
	if idx < p.n {
		right = idx + 1
	}
	switch c := p.child[idx].(type) {
	case *leafNode:
		var ks [Fanout + 1][]byte
		var vs [Fanout + 1]uint64
		if left >= 0 && fill(p.child[left]) > minFill {
			// Move the left sibling's last entry in front of c.
			l := p.child[left].(*leafNode)
			n := c.gather(ks[1:], vs[1:])
			ls := l.lastSlot()
			ks[0], vs[0] = l.keys[ls], l.vals[ls]
			l.occ &^= 1 << ls
			l.fillGaps()
			c.scatter(ks[:n+1], vs[:n+1])
			p.keys[left] = ks[0]
			p.pad()
			return
		}
		if right >= 0 && fill(p.child[right]) > minFill {
			// Move the right sibling's first entry to the back of c.
			r := p.child[right].(*leafNode)
			n := c.gather(ks[:], vs[:])
			rs := r.firstSlot()
			ks[n], vs[n] = r.keys[rs], r.vals[rs]
			r.occ &^= 1 << rs
			r.fillGaps()
			c.scatter(ks[:n+1], vs[:n+1])
			p.keys[idx] = r.keys[r.firstSlot()]
			p.pad()
			return
		}
		// Merge with a sibling (both at minimum: combined fits one node).
		if left >= 0 {
			mergeLeaves(p.child[left].(*leafNode), c)
			p.removeAt(left)
		} else if right >= 0 {
			mergeLeaves(c, p.child[right].(*leafNode))
			p.removeAt(idx)
		}
	case *innerNode:
		if left >= 0 && fill(p.child[left]) > minFill {
			l := p.child[left].(*innerNode)
			copy(c.keys[1:c.n+1], c.keys[:c.n])
			copy(c.child[1:c.n+2], c.child[:c.n+1])
			c.keys[0] = p.keys[left]
			c.child[0] = l.child[l.n]
			p.keys[left] = l.keys[l.n-1]
			l.child[l.n] = nil
			l.n--
			c.n++
			l.pad()
			c.pad()
			p.pad()
			return
		}
		if right >= 0 && fill(p.child[right]) > minFill {
			r := p.child[right].(*innerNode)
			c.keys[c.n] = p.keys[idx]
			c.child[c.n+1] = r.child[0]
			c.n++
			p.keys[idx] = r.keys[0]
			copy(r.keys[:r.n-1], r.keys[1:r.n])
			copy(r.child[:r.n], r.child[1:r.n+1])
			r.child[r.n] = nil
			r.n--
			r.pad()
			c.pad()
			p.pad()
			return
		}
		if left >= 0 {
			mergeInners(p.child[left].(*innerNode), c, p.keys[left])
			p.removeAt(left)
		} else if right >= 0 {
			mergeInners(c, p.child[right].(*innerNode), p.keys[idx])
			p.removeAt(idx)
		}
	}
}

// mergeLeaves redistributes r's entries into l and unlinks r from the
// leaf chain. Both are at or below minimum fill, so the union fits.
func mergeLeaves(l, r *leafNode) {
	var ks [Fanout][]byte
	var vs [Fanout]uint64
	n := l.gather(ks[:], vs[:])
	n += r.gather(ks[n:], vs[n:])
	l.scatter(ks[:n], vs[:n])
	l.next = r.next
}

// mergeInners appends r into l with the parent separator between them.
func mergeInners(l, r *innerNode, sep []byte) {
	l.keys[l.n] = sep
	copy(l.keys[l.n+1:], r.keys[:r.n])
	copy(l.child[l.n+1:], r.child[:r.n+1])
	l.n += r.n + 1
	l.pad()
}

// removeAt drops separator i and the child to its right.
func (p *innerNode) removeAt(i int) {
	copy(p.keys[i:], p.keys[i+1:p.n])
	copy(p.child[i+1:], p.child[i+2:p.n+1])
	p.child[p.n] = nil
	p.n--
	p.pad()
}
