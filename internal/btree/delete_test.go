package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeleteBasic(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%03d", i)), uint64(i))
	}
	if !tr.Delete([]byte("k050")) {
		t.Fatal("delete failed")
	}
	if tr.Delete([]byte("k050")) {
		t.Fatal("double delete")
	}
	if tr.Delete([]byte("nope")) {
		t.Fatal("deleted absent")
	}
	if _, ok := tr.Get([]byte("k050")); ok {
		t.Fatal("still present")
	}
	if tr.Len() != 99 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestDeleteAllAndRootCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := randKeys(rng, 5000, 10)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	h := tr.Height()
	if h < 3 {
		t.Fatal("fixture too small")
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("delete %q failed at %d", k, i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("%d keys left", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("height %d after emptying", tr.Height())
	}
	// Reusable.
	tr.Insert([]byte("x"), 1)
	if _, ok := tr.Get([]byte("x")); !ok {
		t.Fatal("unusable after emptying")
	}
}

func TestDeleteMaintainsFillAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randKeys(rng, 20000, 8)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	cut := len(keys) * 3 / 4
	for _, k := range keys[:cut] {
		if !tr.Delete(k) {
			t.Fatalf("delete %q", k)
		}
	}
	// Fill invariant on every non-root node; scan order; leaf chain intact.
	var walk func(n node, root bool)
	walk = func(n node, root bool) {
		switch v := n.(type) {
		case *leafNode:
			if !root && v.count() < minFill {
				t.Fatalf("leaf underfilled: %d", v.count())
			}
			checkLeafPadding(t, v)
		case *innerNode:
			if !root && v.n < minFill {
				t.Fatalf("inner underfilled: %d", v.n)
			}
			for i := 0; i <= v.n; i++ {
				walk(v.child[i], false)
			}
		}
	}
	walk(tr.root, true)
	var prev []byte
	n := 0
	tr.Scan(nil, func(k []byte, _ uint64) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("scan unsorted after deletes")
		}
		prev = append(prev[:0], k...)
		n++
		return true
	})
	if n != len(keys)-cut {
		t.Fatalf("scan saw %d, want %d", n, len(keys)-cut)
	}
	for _, k := range keys[cut:] {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("survivor %q lost", k)
		}
	}
}

func TestInsertDeleteQuickProperty(t *testing.T) {
	type op struct {
		Key []byte
		Del bool
		Val uint64
	}
	f := func(ops []op) bool {
		tr := New()
		ref := map[string]uint64{}
		for _, o := range ops {
			k := o.Key
			if len(k) > 8 {
				k = k[:8]
			}
			if o.Del {
				_, present := ref[string(k)]
				delete(ref, string(k))
				if tr.Delete(k) != present {
					return false
				}
			} else {
				tr.Insert(k, o.Val)
				ref[string(k)] = o.Val
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := tr.Get([]byte(k)); !ok || got != v {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAlternatingChurn(t *testing.T) {
	// Insert/delete churn at a fixed working set size stresses
	// borrow-then-merge sequences.
	rng := rand.New(rand.NewSource(4))
	tr := New()
	live := map[string]bool{}
	for round := 0; round < 30000; round++ {
		k := fmt.Sprintf("%05d", rng.Intn(3000))
		if live[k] {
			if !tr.Delete([]byte(k)) {
				t.Fatalf("delete live key %q", k)
			}
			delete(live, k)
		} else {
			tr.Insert([]byte(k), uint64(round))
			live[k] = true
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("size %d, want %d", tr.Len(), len(live))
	}
	for k := range live {
		if _, ok := tr.Get([]byte(k)); !ok {
			t.Fatalf("live key %q missing", k)
		}
	}
}
