package btree

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property: any insert sequence leaves the tree observationally equal to a
// map, with sorted full scans and correct tree invariants.
func TestQuickModelEquivalence(t *testing.T) {
	type kv struct {
		Key []byte
		Val uint64
	}
	f := func(ops []kv) bool {
		tr := New()
		ref := map[string]uint64{}
		for _, o := range ops {
			k := o.Key
			if len(k) > 10 {
				k = k[:10]
			}
			tr.Insert(k, o.Val)
			ref[string(k)] = o.Val
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := tr.Get([]byte(k)); !ok || got != v {
				return false
			}
		}
		var prev []byte
		n := 0
		sorted := true
		tr.Scan(nil, func(k []byte, v uint64) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				sorted = false
				return false
			}
			if ref[string(k)] != v {
				sorted = false
				return false
			}
			prev = append(prev[:0], k...)
			n++
			return true
		})
		return sorted && n == len(ref)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Structural invariants after heavy random insertion: node fill bounds and
// separator ordering.
func TestStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := New()
	for i := 0; i < 30000; i++ {
		k := make([]byte, 1+rng.Intn(12))
		for j := range k {
			k[j] = byte(rng.Intn(64))
		}
		tr.Insert(k, uint64(i))
	}
	var check func(n node, lo, hi []byte) int
	check = func(n node, lo, hi []byte) int {
		switch v := n.(type) {
		case *leafNode:
			for i := 0; i < v.n; i++ {
				if lo != nil && bytes.Compare(v.keys[i], lo) < 0 {
					t.Fatalf("leaf key %q below separator %q", v.keys[i], lo)
				}
				if hi != nil && bytes.Compare(v.keys[i], hi) >= 0 {
					t.Fatalf("leaf key %q not below separator %q", v.keys[i], hi)
				}
				if i > 0 && bytes.Compare(v.keys[i-1], v.keys[i]) >= 0 {
					t.Fatal("leaf keys unsorted")
				}
			}
			return 1
		case *innerNode:
			if v.n < 1 {
				t.Fatal("inner node with no separators")
			}
			for i := 1; i < v.n; i++ {
				if bytes.Compare(v.keys[i-1], v.keys[i]) >= 0 {
					t.Fatal("separators unsorted")
				}
			}
			depth := 0
			for i := 0; i <= v.n; i++ {
				clo, chi := lo, hi
				if i > 0 {
					clo = v.keys[i-1]
				}
				if i < v.n {
					chi = v.keys[i]
				}
				d := check(v.child[i], clo, chi)
				if depth == 0 {
					depth = d
				} else if d != depth {
					t.Fatal("leaves at different depths")
				}
			}
			return depth + 1
		}
		return 0
	}
	if got := check(tr.root, nil, nil); got != tr.Height() {
		t.Fatalf("measured height %d != tracked %d", got, tr.Height())
	}
}

// Scans started at every stored key see exactly the remaining suffix count.
func TestScanCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := randKeys(rng, 1500, 8)
	tr := New()
	ss := make([]string, len(keys))
	for i, k := range keys {
		tr.Insert(k, uint64(i))
		ss[i] = string(k)
	}
	sort.Strings(ss)
	for i, s := range ss {
		n := 0
		tr.Scan([]byte(s), func([]byte, uint64) bool { n++; return true })
		if n != len(ss)-i {
			t.Fatalf("scan from %q saw %d, want %d", s, n, len(ss)-i)
		}
	}
}
