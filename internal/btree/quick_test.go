package btree

import (
	"bytes"
	"math/bits"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property: any insert sequence leaves the tree observationally equal to a
// map, with sorted full scans and correct tree invariants.
func TestQuickModelEquivalence(t *testing.T) {
	type kv struct {
		Key []byte
		Val uint64
	}
	f := func(ops []kv) bool {
		tr := New()
		ref := map[string]uint64{}
		for _, o := range ops {
			k := o.Key
			if len(k) > 10 {
				k = k[:10]
			}
			tr.Insert(k, o.Val)
			ref[string(k)] = o.Val
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := tr.Get([]byte(k)); !ok || got != v {
				return false
			}
		}
		var prev []byte
		n := 0
		sorted := true
		tr.Scan(nil, func(k []byte, v uint64) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				sorted = false
				return false
			}
			if ref[string(k)] != v {
				sorted = false
				return false
			}
			prev = append(prev[:0], k...)
			n++
			return true
		})
		return sorted && n == len(ref)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Structural invariants after heavy random insertion: node fill bounds and
// separator ordering.
func TestStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := New()
	for i := 0; i < 30000; i++ {
		k := make([]byte, 1+rng.Intn(12))
		for j := range k {
			k[j] = byte(rng.Intn(64))
		}
		tr.Insert(k, uint64(i))
	}
	var check func(n node, lo, hi []byte) int
	check = func(n node, lo, hi []byte) int {
		switch v := n.(type) {
		case *leafNode:
			prevSlot := -1
			for mm := v.occ; mm != 0; mm &= mm - 1 {
				i := bits.TrailingZeros16(mm)
				if lo != nil && bytes.Compare(v.keys[i], lo) < 0 {
					t.Fatalf("leaf key %q below separator %q", v.keys[i], lo)
				}
				if hi != nil && bytes.Compare(v.keys[i], hi) >= 0 {
					t.Fatalf("leaf key %q not below separator %q", v.keys[i], hi)
				}
				if prevSlot >= 0 && bytes.Compare(v.keys[prevSlot], v.keys[i]) >= 0 {
					t.Fatal("leaf keys unsorted")
				}
				prevSlot = i
			}
			checkLeafPadding(t, v)
			return 1
		case *innerNode:
			if v.n < 1 {
				t.Fatal("inner node with no separators")
			}
			for i := 1; i < v.n; i++ {
				if bytes.Compare(v.keys[i-1], v.keys[i]) >= 0 {
					t.Fatal("separators unsorted")
				}
			}
			if want := lcpLen(v.keys[0], v.keys[v.n-1]); v.pfx != want {
				t.Fatalf("inner pfx %d, want %d", v.pfx, want)
			}
			for i := 0; i < Fanout; i++ {
				if want := be64(v.keys[i][v.pfx:]); v.pw[i] != want {
					t.Fatalf("inner pw[%d] = %#x, want %#x", i, v.pw[i], want)
				}
			}
			depth := 0
			for i := 0; i <= v.n; i++ {
				clo, chi := lo, hi
				if i > 0 {
					clo = v.keys[i-1]
				}
				if i < v.n {
					chi = v.keys[i]
				}
				d := check(v.child[i], clo, chi)
				if depth == 0 {
					depth = d
				} else if d != depth {
					t.Fatal("leaves at different depths")
				}
			}
			return depth + 1
		}
		return 0
	}
	if got := check(tr.root, nil, nil); got != tr.Height() {
		t.Fatalf("measured height %d != tracked %d", got, tr.Height())
	}
}

// checkLeafPadding asserts the gapped-leaf invariants lowerBound's fixed
// probes rely on: when occupied, every key slot non-nil and the padded
// 16-entry array non-decreasing; when empty, every slot nil.
func checkLeafPadding(t *testing.T, v *leafNode) {
	t.Helper()
	if v.occ == 0 {
		for i := range v.keys {
			if v.keys[i] != nil {
				t.Fatalf("empty leaf holds key pointer at slot %d", i)
			}
		}
		return
	}
	for i := 0; i < Fanout; i++ {
		if v.keys[i] == nil {
			t.Fatalf("occupied leaf has nil padding at slot %d (occ=%04x)", i, v.occ)
		}
		if i > 0 && bytes.Compare(v.keys[i-1], v.keys[i]) > 0 {
			t.Fatalf("leaf padding decreasing at slot %d (occ=%04x)", i, v.occ)
		}
	}
	if want := lcpLen(v.keys[v.firstSlot()], v.keys[v.lastSlot()]); v.pfx != want {
		t.Fatalf("leaf pfx %d, want %d (occ=%04x)", v.pfx, want, v.occ)
	}
	for i := 0; i < Fanout; i++ {
		if want := be64(v.keys[i][v.pfx:]); v.pw[i] != want {
			t.Fatalf("leaf pw[%d] = %#x, want %#x (occ=%04x)", i, v.pw[i], want, v.occ)
		}
	}
}

// walkLeaves applies fn to every leaf in the tree.
func walkLeaves(n node, fn func(*leafNode)) {
	switch v := n.(type) {
	case *leafNode:
		fn(v)
	case *innerNode:
		for i := 0; i <= v.n; i++ {
			walkLeaves(v.child[i], fn)
		}
	}
}

// TestGappedLeafInvariantsUnderChurn hammers the tree with mixed
// inserts, overwrites and deletes against a sorted oracle, revalidating
// the gap-padding invariants and full scan order at checkpoints.
func TestGappedLeafInvariantsUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New()
	ref := map[string]uint64{}
	for round := 0; round < 60000; round++ {
		k := []byte(string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26))))
		switch rng.Intn(3) {
		case 0, 1:
			tr.Insert(k, uint64(round))
			ref[string(k)] = uint64(round)
		case 2:
			_, present := ref[string(k)]
			delete(ref, string(k))
			if tr.Delete(k) != present {
				t.Fatalf("round %d: delete %q disagreed with oracle", round, k)
			}
		}
		if round%5000 == 4999 {
			if tr.Len() != len(ref) {
				t.Fatalf("round %d: size %d, oracle %d", round, tr.Len(), len(ref))
			}
			walkLeaves(tr.root, func(l *leafNode) { checkLeafPadding(t, l) })
			want := make([]string, 0, len(ref))
			for k := range ref {
				want = append(want, k)
			}
			sort.Strings(want)
			i := 0
			tr.Scan(nil, func(k []byte, v uint64) bool {
				if i >= len(want) || string(k) != want[i] || ref[want[i]] != v {
					t.Fatalf("round %d: scan mismatch at %d", round, i)
				}
				i++
				return true
			})
			if i != len(want) {
				t.Fatalf("round %d: scan saw %d of %d", round, i, len(want))
			}
		}
	}
}

// Overwriting an existing key must not allocate: Insert only copies key
// bytes once it knows the key is absent.
func TestInsertOverwriteNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	keys := randKeys(rng, 4096, 10)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		tr.Insert(keys[i%len(keys)], uint64(i))
		i++
	})
	if allocs != 0 {
		t.Errorf("overwriting Insert allocates %.1f/op, want 0", allocs)
	}
}

// Scans started at every stored key see exactly the remaining suffix count.
func TestScanCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := randKeys(rng, 1500, 8)
	tr := New()
	ss := make([]string, len(keys))
	for i, k := range keys {
		tr.Insert(k, uint64(i))
		ss[i] = string(k)
	}
	sort.Strings(ss)
	for i, s := range ss {
		n := 0
		tr.Scan([]byte(s), func([]byte, uint64) bool { n++; return true })
		if n != len(ss)-i {
			t.Fatalf("scan from %q saw %d, want %d", s, n, len(ss)-i)
		}
	}
}
