package core

// Bound encoding (range-query support for compressed search trees).
//
// A search tree storing HOPE-encoded keys answers a range query by
// translating the query bounds into encoded space. A *complete key* bound
// translates exactly: encoding is order-preserving, so Encode(bound)
// compares against the stored keys precisely as the bound compares against
// the original keys (modulo the documented zero-padding weak-order edge).
//
// A *prefix* bound does not: the set "all keys starting with p" has no
// largest element, and p itself is generally not dictionary-complete — the
// greedy encoder's last lookup for p depends on bytes that a continuation
// of p would supply. Encoding p as if it were a complete key yields a
// string that sorts *below* the encodings of p's continuations, so it can
// serve only as the lower bound. The upper bound must dominate every
// continuation's encoding. HOPE's dictionary makes that computable: the
// intervals of the string axis are totally ordered and the assigned codes
// are alphabetic, so the largest code any continuation of p can emit at a
// given position is the code of the *interval ceiling* — the interval
// containing the remaining prefix bytes extended by 0xff, the largest
// continuation. Chasing the ceiling at every step is exactly a greedy
// encode of p padded with 0xff bytes, which is how EncodePrefix computes
// the upper bound.

// EncodePrefix returns encoded bounds [lo, hi] bracketing every key that
// starts with prefix and is at most maxKeyLen bytes long:
//
//	lo <= Encode(k) <= hi   for every such key k,
//	Encode(k') outside [lo, hi] for every key k' (of length <= maxKeyLen)
//	                        not carrying the prefix,
//
// under byte-wise comparison of the padded encodings (the form the search
// trees store), with the repository's documented zero-padding weak-order
// edge as the only exception. The lower bound is the exact encoding of the
// prefix — the smallest key carrying it. The upper bound is the interval
// ceiling: a greedy encode of the prefix extended with 0xff bytes out to
// maxKeyLen plus the dictionary's look-ahead, so that each lookup past the
// prefix end selects the dictionary's last reachable interval and the
// emitted code sequence dominates every real continuation.
//
// maxKeyLen is the length cap of the keys the tree stores (hope.Index
// tracks it automatically); values below len(prefix) are treated as
// len(prefix).
//
// The ceiling extension uses 0xff bytes, so the dictionary must cover the
// full byte alphabet — true for every production configuration; only the
// test-only restricted-alphabet Double-Char dictionaries fall short.
func (e *Encoder) EncodePrefix(prefix []byte, maxKeyLen int) (lo, hi []byte) {
	b, _ := e.EncodeBits(nil, prefix)
	lo = append([]byte(nil), b...)

	// One 0xff byte beyond the longest stored key guarantees the extended
	// prefix sorts above every stored continuation; the extra look-ahead
	// slack keeps every greedy lookup decided inside the materialized
	// bytes rather than at the buffer's end.
	ext := maxKeyLen - len(prefix) + 1
	if ext < 1 {
		ext = 1
	}
	ext += e.maxBoundary
	ceil := make([]byte, len(prefix)+ext)
	copy(ceil, prefix)
	for i := len(prefix); i < len(ceil); i++ {
		ceil[i] = 0xff
	}
	b, _ = e.EncodeBits(nil, ceil)
	hi = append([]byte(nil), b...)
	return lo, hi
}

// EncodeBound translates one complete-key range bound into encoded space.
// Lower bounds and upper bounds both encode exactly (order preservation
// does the rest); the method exists so callers handling optional bounds do
// not need to special-case nil, which translates to nil (unbounded).
func (e *Encoder) EncodeBound(key []byte) []byte {
	if key == nil {
		return nil
	}
	b, _ := e.EncodeBits(nil, key)
	// A non-nil bound must stay non-nil: the empty key encodes to an empty
	// but present bound, not to "unbounded".
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
