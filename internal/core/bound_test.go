package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// prefixCorpus builds keys with heavy prefix sharing plus adversarial
// shapes: keys that are prefixes of other keys, an empty key, and 0xff
// runs.
func prefixCorpus(rng *rand.Rand) [][]byte {
	out := [][]byte{
		{}, // empty key
		[]byte("a"), []byte("ab"), []byte("abc"), []byte("abcd"),
		[]byte("app"), []byte("apple"), []byte("applesauce"), []byte("application"),
		[]byte("com.gmail@"), []byte("com.gmail@alice"), []byte("com.gmail@bob"),
		[]byte("com.yahoo@carol"), []byte("org.wiki@dave"),
		{0xff}, {0xff, 0xff}, {0xff, 0xff, 0xff},
		[]byte("a\xff"), []byte("a\xff\xff"), []byte("a\xffz"),
		{0x00}, {0x00, 0x01}, []byte("zzz"),
	}
	out = append(out, sampleKeys(rng, 200)...)
	out = append(out, randomBinaryKeys(rng, 200, 12)...)
	return out
}

// TestEncodePrefixBrackets checks the bound-encoding contract directly:
// for every (corpus key, prefix) pair, the key's padded encoding falls
// inside [lo, hi] exactly when the key carries the prefix (keys that
// compare equal to a bound under the zero-padding weak order are the
// documented exception and do not occur in this corpus).
func TestEncodePrefixBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	encs := buildAll(t, nil)
	corpus := prefixCorpus(rng)
	maxLen := 0
	for _, k := range corpus {
		if len(k) > maxLen {
			maxLen = len(k)
		}
	}
	prefixes := [][]byte{
		{}, []byte("a"), []byte("ab"), []byte("app"), []byte("apple"),
		[]byte("com.gmail@"), []byte("com."), {0xff}, {0xff, 0xff},
		[]byte("a\xff"), {0x00}, []byte("zz"), []byte("nosuchprefix"),
	}
	for s, e := range encs {
		for _, p := range prefixes {
			lo, hi := e.EncodePrefix(p, maxLen)
			if bytes.Compare(lo, hi) > 0 {
				t.Fatalf("%v: prefix %q: lo > hi", s, p)
			}
			for _, k := range corpus {
				ek := e.Encode(k)
				in := bytes.Compare(lo, ek) <= 0 && bytes.Compare(ek, hi) <= 0
				want := bytes.HasPrefix(k, p)
				if in != want {
					t.Errorf("%v: prefix %q key %q: in-bounds=%v want %v (lo=%x ek=%x hi=%x)",
						s, p, k, in, want, lo, ek, hi)
				}
			}
		}
	}
}

// TestEncodePrefixLowerBoundExact pins the documented property that the
// lower bound is the exact encoding of the prefix itself.
func TestEncodePrefixLowerBoundExact(t *testing.T) {
	encs := buildAll(t, nil)
	for s, e := range encs {
		for _, p := range [][]byte{{}, []byte("a"), []byte("com.gmail@"), {0xff}} {
			lo, _ := e.EncodePrefix(p, 32)
			if !bytes.Equal(lo, e.Encode(p)) {
				t.Fatalf("%v: lower bound of %q is not the exact encoding", s, p)
			}
		}
	}
}

// TestEncodeBound checks the complete-key bound translation, including the
// nil (unbounded) pass-through.
func TestEncodeBound(t *testing.T) {
	encs := buildAll(t, nil)
	for s, e := range encs {
		if e.EncodeBound(nil) != nil {
			t.Fatalf("%v: nil bound must stay nil", s)
		}
		k := []byte("com.gmail@alice")
		if !bytes.Equal(e.EncodeBound(k), e.Encode(k)) {
			t.Fatalf("%v: bound encoding differs from exact encoding", s)
		}
	}
}

// TestEncodePrefixSeparatesSiblings stresses the interval-ceiling upper
// bound with keys immediately above the prefix range: the successor of the
// prefix must encode strictly above hi even when a single dictionary
// interval spans the prefix boundary.
func TestEncodePrefixSeparatesSiblings(t *testing.T) {
	encs := buildAll(t, nil)
	cases := []struct{ prefix, above []byte }{
		{[]byte("a"), []byte("b")},
		{[]byte("ap"), []byte("aq")},
		{[]byte("app"), []byte("apq")},
		{[]byte("com.gmail@"), []byte("com.gmailA")},
		{[]byte("a\xff"), []byte("b")},
		{[]byte{0x00}, []byte{0x01}},
	}
	for s, e := range encs {
		for _, c := range cases {
			_, hi := e.EncodePrefix(c.prefix, 24)
			for _, suffix := range []string{"", "a", "zz", "\x00", "\xff\xff"} {
				k := append(append([]byte(nil), c.above...), suffix...)
				if len(k) > 24 {
					continue
				}
				if bytes.Compare(e.Encode(k), hi) <= 0 {
					t.Errorf("%v: key %q (above prefix %q) not separated by ceiling", s, k, c.prefix)
				}
			}
		}
	}
}
