package core

import (
	"bytes"
	"sync"
)

// ConcurrentEncoder is a goroutine-safe wrapper around a shared dictionary.
// Dictionary lookups are read-only, so only the per-encode bit-buffer
// state needs isolating; a pool of appenders provides it. The paper's
// encoder is single-threaded — this wrapper is the natural extension for a
// DBMS running queries on many threads against one index dictionary.
// Encoding runs through the same devirtualized kernel as the serial
// encoder.
type ConcurrentEncoder struct {
	enc  *Encoder
	pool sync.Pool
}

// NewConcurrentEncoder wraps an encoder for concurrent use. The wrapped
// encoder must no longer be used directly.
func NewConcurrentEncoder(e *Encoder) *ConcurrentEncoder {
	c := &ConcurrentEncoder{enc: e}
	c.pool.New = func() any { return new(appender) }
	return c
}

// Encode compresses key into a fresh buffer; safe for concurrent use.
func (c *ConcurrentEncoder) Encode(key []byte) []byte {
	out, _ := c.EncodeBits(nil, key)
	return out
}

// EncodeBits compresses key into dst; safe for concurrent use.
func (c *ConcurrentEncoder) EncodeBits(dst, key []byte) ([]byte, int) {
	a := c.pool.Get().(*appender)
	a.Reset(dst)
	c.enc.appendEncode(a, key)
	buf, bits := a.Finish()
	c.pool.Put(a)
	return buf, bits
}

// EncodeAll bulk-encodes keys across GOMAXPROCS workers; safe for
// concurrent use (see Encoder.EncodeAll).
func (c *ConcurrentEncoder) EncodeAll(keys [][]byte) [][]byte {
	return c.enc.EncodeAll(keys)
}

// EncodePair encodes the two boundary keys of a closed-range query; safe
// for concurrent use. Unlike Encoder.EncodePair it cannot share the
// encoder's appender, so ALM schemes fall back to two independent encodes.
func (c *ConcurrentEncoder) EncodePair(lo, hi []byte) ([]byte, []byte) {
	if !c.enc.Batchable() {
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		return c.Encode(lo), c.Encode(hi)
	}
	// A stack-local copy shares the read-only dictionary state and
	// supplies a fresh appender (the only mutable field), so no pool
	// round-trip is needed.
	e := *c.enc
	e.app = appender{}
	return e.EncodePair(lo, hi)
}

// EncodeBound translates one complete-key range bound into encoded space;
// safe for concurrent use (see Encoder.EncodeBound).
func (c *ConcurrentEncoder) EncodeBound(key []byte) []byte {
	e := *c.enc
	e.app = appender{}
	return e.EncodeBound(key)
}

// EncodePrefix returns encoded bounds [lo, hi] bracketing every key of at
// most maxKeyLen bytes that starts with prefix; safe for concurrent use
// (see Encoder.EncodePrefix). As in EncodePair, a stack-local copy of the
// encoder shares the read-only dictionary and supplies fresh bit-buffer
// state, so concurrent range queries never contend on an appender.
func (c *ConcurrentEncoder) EncodePrefix(prefix []byte, maxKeyLen int) (lo, hi []byte) {
	e := *c.enc
	e.app = appender{}
	return e.EncodePrefix(prefix, maxKeyLen)
}

// Scheme returns the wrapped encoder's scheme.
func (c *ConcurrentEncoder) Scheme() Scheme { return c.enc.scheme }

// NumEntries returns the dictionary size.
func (c *ConcurrentEncoder) NumEntries() int { return c.enc.NumEntries() }

// MemoryUsage returns the dictionary's modeled footprint in bytes.
func (c *ConcurrentEncoder) MemoryUsage() int { return c.enc.MemoryUsage() }
