package core

import "sync"

// ConcurrentEncoder is a goroutine-safe wrapper around a shared dictionary.
// Dictionary lookups are read-only, so only the per-encode bit-buffer
// state needs isolating; a pool of appenders provides it. The paper's
// encoder is single-threaded — this wrapper is the natural extension for a
// DBMS running queries on many threads against one index dictionary.
type ConcurrentEncoder struct {
	enc  *Encoder
	pool sync.Pool
}

// NewConcurrentEncoder wraps an encoder for concurrent use. The wrapped
// encoder must no longer be used directly.
func NewConcurrentEncoder(e *Encoder) *ConcurrentEncoder {
	c := &ConcurrentEncoder{enc: e}
	c.pool.New = func() any { return new(appender) }
	return c
}

// Encode compresses key into a fresh buffer; safe for concurrent use.
func (c *ConcurrentEncoder) Encode(key []byte) []byte {
	out, _ := c.EncodeBits(nil, key)
	return out
}

// EncodeBits compresses key into dst; safe for concurrent use.
func (c *ConcurrentEncoder) EncodeBits(dst, key []byte) ([]byte, int) {
	a := c.pool.Get().(*appender)
	a.Reset(dst)
	for pos := 0; pos < len(key); {
		code, n := c.enc.dict.Lookup(key[pos:])
		a.Append(code.Bits, uint(code.Len))
		pos += n
	}
	buf, bits := a.Finish()
	c.pool.Put(a)
	return buf, bits
}

// Scheme returns the wrapped encoder's scheme.
func (c *ConcurrentEncoder) Scheme() Scheme { return c.enc.scheme }

// NumEntries returns the dictionary size.
func (c *ConcurrentEncoder) NumEntries() int { return c.enc.NumEntries() }

// MemoryUsage returns the dictionary's modeled footprint in bytes.
func (c *ConcurrentEncoder) MemoryUsage() int { return c.enc.MemoryUsage() }
