package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestConcurrentEncoderMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := sampleKeys(rng, 800)
	serial, err := Build(ThreeGrams, samples, Options{DictLimit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	reference, err := Build(ThreeGrams, samples, Options{DictLimit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ce := NewConcurrentEncoder(serial)
	keys := sampleKeys(rng, 4000)
	want := make([][]byte, len(keys))
	for i, k := range keys {
		out, _ := reference.EncodeBits(nil, k)
		want[i] = append([]byte(nil), out...)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := worker; i < len(keys); i += 8 {
				got := ce.Encode(keys[i])
				if !bytes.Equal(got, want[i]) {
					select {
					case errs <- string(keys[i]):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if k, bad := <-errs; bad {
		t.Fatalf("concurrent encode diverged on %q", k)
	}
	if ce.Scheme() != ThreeGrams || ce.NumEntries() == 0 || ce.MemoryUsage() == 0 {
		t.Fatal("accessors")
	}
}
