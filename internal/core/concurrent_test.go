package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestConcurrentEncoderMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := sampleKeys(rng, 800)
	serial, err := Build(ThreeGrams, samples, Options{DictLimit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	reference, err := Build(ThreeGrams, samples, Options{DictLimit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ce := NewConcurrentEncoder(serial)
	keys := sampleKeys(rng, 4000)
	want := make([][]byte, len(keys))
	for i, k := range keys {
		out, _ := reference.EncodeBits(nil, k)
		want[i] = append([]byte(nil), out...)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := worker; i < len(keys); i += 8 {
				got := ce.Encode(keys[i])
				if !bytes.Equal(got, want[i]) {
					select {
					case errs <- string(keys[i]):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if k, bad := <-errs; bad {
		t.Fatalf("concurrent encode diverged on %q", k)
	}
	if ce.Scheme() != ThreeGrams || ce.NumEntries() == 0 || ce.MemoryUsage() == 0 {
		t.Fatal("accessors")
	}
}

// TestConcurrentEncoderStressAllSchemes hammers one shared
// ConcurrentEncoder per scheme with many goroutines mixing single-key
// encodes, pair encodes and bulk EncodeAll calls, asserting every output
// matches a serial reference encoder. Run under -race this doubles as the
// data-race check for the kernel and EncodeAll paths.
func TestConcurrentEncoderStressAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	encs := buildAll(t, nil)
	keys := append(sampleKeys(rng, 1500), randomBinaryKeys(rng, 300, 20)...)
	const workers = 12
	for _, s := range Schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			e := encs[s]
			want := make([][]byte, len(keys))
			for i, k := range keys {
				out, _ := e.EncodeBits(nil, k)
				want[i] = append([]byte(nil), out...)
			}
			// Pair references are computed serially up front: the wrapped
			// encoder must not be used directly once workers start.
			wantLo := make([][]byte, len(keys)-1)
			wantHi := make([][]byte, len(keys)-1)
			for i := 0; i+1 < len(keys); i++ {
				wantLo[i], wantHi[i] = e.EncodePair(keys[i], keys[i+1])
			}
			ce := NewConcurrentEncoder(e)
			var wg sync.WaitGroup
			errs := make(chan string, workers)
			fail := func(msg string) {
				select {
				case errs <- msg:
				default:
				}
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					switch worker % 3 {
					case 0: // single-key encodes
						for i := worker; i < len(keys); i += workers {
							if !bytes.Equal(ce.Encode(keys[i]), want[i]) {
								fail("Encode diverged on " + string(keys[i]))
								return
							}
						}
					case 1: // pair encodes over adjacent keys
						for i := worker; i+1 < len(keys); i += workers {
							lo, hi := ce.EncodePair(keys[i], keys[i+1])
							if !bytes.Equal(lo, wantLo[i]) || !bytes.Equal(hi, wantHi[i]) {
								fail("EncodePair diverged on " + string(keys[i]))
								return
							}
						}
					case 2: // bulk encodes of a shifting window
						lo := worker * 97 % len(keys)
						hi := lo + 257
						if hi > len(keys) {
							hi = len(keys)
						}
						out := ce.EncodeAll(keys[lo:hi])
						for j, b := range out {
							if !bytes.Equal(b, want[lo+j]) {
								fail("EncodeAll diverged on " + string(keys[lo+j]))
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			if msg, bad := <-errs; bad {
				t.Fatal(msg)
			}
		})
	}
}
