// Package core implements the HOPE framework (paper Section 4): the
// two-phase architecture whose Build phase runs a Symbol Selector and a
// Code Assigner over sampled keys to produce a Dictionary, and whose
// Encode phase compresses arbitrary keys through repeated dictionary
// lookups while preserving lexicographic order.
//
// The six published compression schemes are provided; their module
// configuration follows the paper's Table 1:
//
//	Scheme        Symbol Selector  Code Assigner  Dictionary
//	Single-Char   Single-Char      Hu-Tucker      array
//	Double-Char   Double-Char      Hu-Tucker      array
//	ALM           ALM              fixed-length   ART-based
//	3-Grams       3-Grams          Hu-Tucker      bitmap-trie
//	4-Grams       4-Grams          Hu-Tucker      bitmap-trie
//	ALM-Improved  ALM-Improved     Hu-Tucker      ART-based
package core

import (
	"fmt"
	"time"

	"repro/internal/dict"
	"repro/internal/hutucker"
	"repro/internal/symbolselect"
)

// Scheme identifies one of HOPE's compression schemes.
type Scheme int

const (
	// SingleChar exploits zeroth-order byte entropy (FIVC).
	SingleChar Scheme = iota
	// DoubleChar exploits first-order entropy over byte pairs (FIVC).
	DoubleChar
	// ALM is Antoshenkov's variable-interval fixed-code scheme (VIFC).
	ALM
	// ThreeGrams selects frequent 3-byte patterns (VIVC).
	ThreeGrams
	// FourGrams selects frequent 4-byte patterns (VIVC).
	FourGrams
	// ALMImproved is ALM with suffix-only statistics and Hu-Tucker codes (VIVC).
	ALMImproved
)

// Schemes lists all supported schemes in the paper's presentation order.
var Schemes = []Scheme{SingleChar, DoubleChar, ALM, ThreeGrams, FourGrams, ALMImproved}

func (s Scheme) String() string {
	switch s {
	case SingleChar:
		return "Single-Char"
	case DoubleChar:
		return "Double-Char"
	case ALM:
		return "ALM"
	case ThreeGrams:
		return "3-Grams"
	case FourGrams:
		return "4-Grams"
	case ALMImproved:
		return "ALM-Improved"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Category returns the scheme's position in the string axis model's
// taxonomy (paper Figure 3).
func (s Scheme) Category() string {
	switch s {
	case SingleChar, DoubleChar:
		return "FIVC"
	case ALM:
		return "VIFC"
	default:
		return "VIVC"
	}
}

// FixedDictSize reports whether the scheme's dictionary size is fixed
// (Single-Char: 256, Double-Char: 65,792) rather than tunable.
func (s Scheme) FixedDictSize() bool { return s == SingleChar || s == DoubleChar }

// Options tune the build phase. The zero value gives the paper's defaults.
type Options struct {
	// DictLimit caps the number of dictionary entries for the
	// variable-interval schemes (default 65,536, the paper's 64K point).
	DictLimit int
	// MaxPatternLen caps ALM candidate patterns (default 64 bytes).
	MaxPatternLen int
	// UnweightedProbabilities disables the paper's symbol-length weighting
	// of interval probabilities for variable-interval schemes; used by the
	// weighting ablation benchmark.
	UnweightedProbabilities bool
	// CodeAlgorithm selects the optimal alphabetic coder (default
	// Garsia-Wachs; hutucker.HuTucker runs the paper's O(n²) algorithm).
	CodeAlgorithm hutucker.Algorithm
	// UseRangeEncoding swaps Hu-Tucker for the paper's cited alternative
	// Code Assigner, range encoding (Section 4.2). It is order-preserving
	// but spends extra bits to land codes on dyadic range boundaries; the
	// coder ablation quantifies the gap.
	UseRangeEncoding bool
	// DoubleCharAlphabet shrinks the Double-Char alphabet (default 256;
	// tests use small alphabets to keep fixtures fast). Keys must then
	// stay within the alphabet.
	DoubleCharAlphabet int
	// ForceBinarySearchDict replaces the scheme's dictionary structure
	// with the plain binary-search dictionary; used by the
	// dictionary-structure ablation benchmark.
	ForceBinarySearchDict bool
}

func (o *Options) fill() {
	if o.DictLimit == 0 {
		o.DictLimit = 1 << 16
	}
	if o.MaxPatternLen == 0 {
		o.MaxPatternLen = symbolselect.DefaultMaxPatternLen
	}
	if o.DoubleCharAlphabet == 0 {
		o.DoubleCharAlphabet = 256
	}
}

// BuildStats records the build-phase time breakdown reported in the
// paper's Figure 9.
type BuildStats struct {
	SymbolSelect time.Duration
	CodeAssign   time.Duration
	DictBuild    time.Duration
	Entries      int
}

// Total returns the end-to-end build time.
func (s BuildStats) Total() time.Duration {
	return s.SymbolSelect + s.CodeAssign + s.DictBuild
}

// Encoder compresses keys order-preservingly. It is not safe for
// concurrent use (the paper's encoder is single-threaded; wrap one Encoder
// per goroutine around a shared dictionary if needed — Dictionary lookups
// themselves are read-only).
type Encoder struct {
	scheme  Scheme
	dict    dict.Dictionary
	kern    dict.Kernel      // concrete encode kernel, captured once at build
	batch   dict.BatchKernel // concrete batch kernel for the bulk paths
	entries []dict.Entry
	stats   BuildStats

	// lookAhead is the number of remaining shared-prefix bytes that make a
	// dictionary lookup independent of the bytes that follow; 0 disables
	// batch encoding (ALM schemes, whose symbols have arbitrary length).
	lookAhead int

	// maxBoundary is the longest interval boundary, captured at build for
	// the bound encoder (after that many look-ahead bytes every floor
	// lookup is fully decided).
	maxBoundary int

	// structOpt retains the options that shape the dictionary STRUCTURE
	// (not the symbol selection): what Reassemble must be handed to
	// rebuild an encode-identical lookup structure from the entries alone.
	structOpt Options

	app appender // reusable encode state
}

// Build runs HOPE's build phase: sample statistics, interval division,
// code assignment, dictionary construction.
func Build(scheme Scheme, samples [][]byte, opt Options) (*Encoder, error) {
	opt.fill()
	e := &Encoder{scheme: scheme, structOpt: structuralOptions(opt)}

	t0 := time.Now()
	var intervals []symbolselect.Interval
	var err error
	weight := !opt.UnweightedProbabilities
	switch scheme {
	case SingleChar:
		intervals = symbolselect.SingleChar(samples)
		e.lookAhead = 1
	case DoubleChar:
		intervals = symbolselect.DoubleChar(samples, opt.DoubleCharAlphabet)
		e.lookAhead = 2
	case ThreeGrams:
		intervals, err = symbolselect.NGrams(samples, 3, opt.DictLimit, weight)
		e.lookAhead = 3
	case FourGrams:
		intervals, err = symbolselect.NGrams(samples, 4, opt.DictLimit, weight)
		e.lookAhead = 4
	case ALM:
		intervals, err = symbolselect.ALM(samples, opt.DictLimit, opt.MaxPatternLen, weight)
	case ALMImproved:
		intervals, err = symbolselect.ALMImproved(samples, opt.DictLimit, opt.MaxPatternLen, weight)
	default:
		return nil, fmt.Errorf("core: unknown scheme %d", int(scheme))
	}
	if err != nil {
		return nil, err
	}
	e.stats.SymbolSelect = time.Since(t0)

	t1 := time.Now()
	var codes []hutucker.Code
	if scheme == ALM {
		codes = hutucker.FixedLengthCodes(len(intervals))
	} else {
		weights := make([]float64, len(intervals))
		for i, iv := range intervals {
			weights[i] = iv.Weight
		}
		if opt.UseRangeEncoding {
			codes = hutucker.RangeCodes(weights)
		} else {
			codes = hutucker.BuildWith(weights, opt.CodeAlgorithm)
		}
	}
	e.stats.CodeAssign = time.Since(t1)

	t2 := time.Now()
	e.entries = make([]dict.Entry, len(intervals))
	e.maxBoundary = 1
	for i, iv := range intervals {
		e.entries[i] = dict.Entry{
			Boundary:  iv.Boundary,
			SymbolLen: uint8(len(iv.Symbol)),
			Code:      codes[i],
		}
		if len(iv.Boundary) > e.maxBoundary {
			e.maxBoundary = len(iv.Boundary)
		}
	}
	e.dict, err = buildDictionary(scheme, opt, e.entries)
	if err != nil {
		return nil, err
	}
	// Capture the concrete kernel once: every encode after this point runs
	// the dictionary's fused lookup+append loop with no interface dispatch
	// per symbol. The Dictionary interface remains the correctness
	// reference (the differential tests compare the two).
	e.kern, _ = e.dict.(dict.Kernel)
	// The batch kernel drives the bulk paths (EncodeAll and everything
	// built on it): word-parallel loops over whole key batches, pinned
	// byte-identical to the per-key kernel by the batch differential
	// suite.
	e.batch, _ = e.dict.(dict.BatchKernel)
	e.stats.DictBuild = time.Since(t2)
	e.stats.Entries = len(e.entries)
	return e, nil
}

func buildDictionary(scheme Scheme, opt Options, entries []dict.Entry) (dict.Dictionary, error) {
	if opt.ForceBinarySearchDict {
		return dict.NewBinarySearch(entries)
	}
	switch scheme {
	case SingleChar:
		return dict.NewSingleCharArray(entries)
	case DoubleChar:
		return dict.NewDoubleCharArray(opt.DoubleCharAlphabet, entries)
	case ThreeGrams:
		return dict.NewBitmapTrie(3, entries)
	case FourGrams:
		return dict.NewBitmapTrie(4, entries)
	default: // ALM, ALM-Improved
		return dict.NewARTDict(entries)
	}
}

// Clone returns an encoder that shares the read-only build artifacts (the
// dictionary, its entries and the captured kernels) but owns fresh
// point-encode state. Dictionary lookups are immutable after Build, so
// clones are independent single-writer encoders over one dictionary —
// the per-shard encoder a concurrent serving layer needs (see
// hope.ShardedIndex). Cloning is O(1); no dictionary is rebuilt.
func (e *Encoder) Clone() *Encoder {
	c := *e
	c.app = appender{}
	return &c
}

// Scheme returns the encoder's compression scheme.
func (e *Encoder) Scheme() Scheme { return e.scheme }

// Stats returns the build-phase time breakdown.
func (e *Encoder) Stats() BuildStats { return e.stats }

// NumEntries returns the dictionary size.
func (e *Encoder) NumEntries() int { return e.dict.NumEntries() }

// MemoryUsage returns the dictionary's modeled footprint in bytes.
func (e *Encoder) MemoryUsage() int { return e.dict.MemoryUsage() }

// Entries exposes the dictionary's interval entries (read-only; used by
// the decoder, by diagnostics, and by snapshot serialization).
func (e *Encoder) Entries() []dict.Entry { return e.entries }

// structuralOptions reduces opt to the fields that shape the dictionary
// structure — everything Reassemble needs, nothing symbol selection used.
func structuralOptions(opt Options) Options {
	return Options{
		DoubleCharAlphabet:    opt.DoubleCharAlphabet,
		ForceBinarySearchDict: opt.ForceBinarySearchDict,
	}
}

// StructuralOptions returns the build options that shape the dictionary
// structure (DoubleCharAlphabet, ForceBinarySearchDict): persist these
// alongside Entries and hand both to Reassemble to reconstruct an
// encode-identical encoder without re-running the build phase.
func (e *Encoder) StructuralOptions() Options { return e.structOpt }

// Dictionary exposes the underlying lookup structure (read-only).
func (e *Encoder) Dictionary() dict.Dictionary { return e.dict }
