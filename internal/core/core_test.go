package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/hutucker"
)

// sampleKeys generates deterministic skewed ASCII-ish keys resembling the
// paper's email workload shape.
func sampleKeys(rng *rand.Rand, n int) [][]byte {
	domains := []string{"com.gmail@", "com.yahoo@", "com.outlook@", "org.wiki@", "net.mail@"}
	names := []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}
	out := make([][]byte, n)
	for i := range out {
		k := domains[rng.Intn(len(domains))] + names[rng.Intn(len(names))]
		if rng.Intn(2) == 0 {
			k += string([]byte{byte('0' + rng.Intn(10)), byte('0' + rng.Intn(10))})
		}
		out[i] = []byte(k)
	}
	return out
}

func randomBinaryKeys(rng *rand.Rand, n, maxLen int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		k := make([]byte, 1+rng.Intn(maxLen))
		for j := range k {
			k[j] = byte(rng.Intn(256))
		}
		out[i] = k
	}
	return out
}

var sharedFixture struct {
	sync.Once
	encs map[Scheme]*Encoder
	err  error
}

// buildAll returns one encoder per scheme built once on a shared sample
// with test-scale dictionary limits (the Double-Char build dominates test
// time, so the fixture is cached; Encoders are not goroutine-safe but Go
// tests in one package run sequentially unless marked Parallel).
func buildAll(t *testing.T, _ [][]byte) map[Scheme]*Encoder {
	t.Helper()
	sharedFixture.Do(func() {
		rng := rand.New(rand.NewSource(1))
		samples := sampleKeys(rng, 2000)
		sharedFixture.encs = map[Scheme]*Encoder{}
		for _, s := range Schemes {
			opt := Options{DictLimit: 1024, MaxPatternLen: 16}
			if s == DoubleChar {
				// Full alphabet keeps correctness on arbitrary bytes; the
				// Garsia-Wachs coder handles 65,792 entries quickly.
				opt = Options{}
			}
			e, err := Build(s, samples, opt)
			if err != nil {
				sharedFixture.err = fmt.Errorf("build %v: %v", s, err)
				return
			}
			sharedFixture.encs[s] = e
		}
	})
	if sharedFixture.err != nil {
		t.Fatal(sharedFixture.err)
	}
	return sharedFixture.encs
}

func TestBuildAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := sampleKeys(rng, 2000)
	encs := buildAll(t, samples)
	for s, e := range encs {
		if e.NumEntries() == 0 {
			t.Fatalf("%v: empty dictionary", s)
		}
		if e.MemoryUsage() <= 0 {
			t.Fatalf("%v: no memory reported", s)
		}
		st := e.Stats()
		if st.Entries != e.NumEntries() {
			t.Fatalf("%v: stats entries mismatch", s)
		}
		if st.Total() <= 0 {
			t.Fatalf("%v: no build time recorded", s)
		}
	}
	// Fixed sizes per the paper.
	if n := encs[SingleChar].NumEntries(); n != 256 {
		t.Fatalf("Single-Char has %d entries", n)
	}
	if n := encs[DoubleChar].NumEntries(); n != 65792 {
		t.Fatalf("Double-Char has %d entries", n)
	}
	for _, s := range []Scheme{ThreeGrams, FourGrams, ALM, ALMImproved} {
		if n := encs[s].NumEntries(); n > 1024 {
			t.Fatalf("%v exceeded dict limit: %d", s, n)
		}
	}
}

// Completeness: every scheme must encode arbitrary byte strings, not just
// strings resembling the samples (paper Section 3.1).
func TestEncodeArbitraryKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := sampleKeys(rng, 1000)
	encs := buildAll(t, samples)
	inputs := randomBinaryKeys(rng, 3000, 30)
	inputs = append(inputs, []byte{}, []byte{0x00}, []byte{0xFF},
		bytes.Repeat([]byte{0xFF}, 20), bytes.Repeat([]byte{0x00}, 20))
	for s, e := range encs {
		for _, k := range inputs {
			out, bits := e.EncodeBits(nil, k)
			if len(k) == 0 && (len(out) != 0 || bits != 0) {
				t.Fatalf("%v: empty key produced output", s)
			}
			if len(k) > 0 && bits == 0 {
				t.Fatalf("%v: key %q encoded to zero bits", s, k)
			}
			if len(out) != (bits+7)/8 {
				t.Fatalf("%v: padding mismatch", s)
			}
		}
	}
}

// Order preservation, bit-exact, on both sample-like and adversarial keys.
func TestOrderPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := sampleKeys(rng, 1000)
	encs := buildAll(t, samples)
	pool := append(sampleKeys(rng, 2000), randomBinaryKeys(rng, 2000, 24)...)
	set := map[string]bool{}
	var keys [][]byte
	for _, k := range pool {
		if !set[string(k)] {
			set[string(k)] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	for s, e := range encs {
		if err := e.CheckOrderPreserving(keys); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
}

// Losslessness: decode(encode(k)) == k for every scheme.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := sampleKeys(rng, 1000)
	encs := buildAll(t, samples)
	inputs := append(sampleKeys(rng, 500), randomBinaryKeys(rng, 1500, 40)...)
	for s, e := range encs {
		d, err := NewDecoder(e)
		if err != nil {
			t.Fatalf("%v: decoder: %v", s, err)
		}
		for _, k := range inputs {
			out, bits := e.EncodeBits(nil, k)
			got, err := d.Decode(out, bits)
			if err != nil {
				t.Fatalf("%v: decode %q: %v", s, k, err)
			}
			if !bytes.Equal(got, k) {
				t.Fatalf("%v: roundtrip %q -> %q", s, k, got)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e, err := Build(SingleChar, sampleKeys(rng, 200), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(e)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated sequences must error rather than silently succeed.
	out, bits := e.EncodeBits(nil, []byte("com.gmail@alice"))
	if bits < 2 {
		t.Fatal("fixture too small")
	}
	if _, err := d.Decode(out, bits-1); err == nil {
		t.Fatal("truncated sequence accepted")
	}
}

// Compression: skewed text keys must compress (CPR > 1) and richer schemes
// must beat Single-Char on first-order-structured data.
func TestCompressionRates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	samples := sampleKeys(rng, 3000)
	encs := buildAll(t, samples)
	eval := sampleKeys(rng, 3000)
	cpr := map[Scheme]float64{}
	for s, e := range encs {
		cpr[s] = e.CompressionRate(eval)
		if cpr[s] <= 1.0 {
			t.Fatalf("%v: CPR %.3f <= 1 on skewed keys", s, cpr[s])
		}
	}
	if cpr[DoubleChar] <= cpr[SingleChar] {
		t.Fatalf("Double-Char (%.3f) should beat Single-Char (%.3f) on first-order structure",
			cpr[DoubleChar], cpr[SingleChar])
	}
	// VIVC schemes exploit higher-order entropy (paper Figure 8 row 1).
	if cpr[ThreeGrams] <= cpr[SingleChar] {
		t.Fatalf("3-Grams (%.3f) should beat Single-Char (%.3f)", cpr[ThreeGrams], cpr[SingleChar])
	}
}

func TestBatchEncodeMatchesIndividual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := sampleKeys(rng, 1000)
	encs := buildAll(t, samples)
	// Sorted batches with long shared prefixes.
	base := "com.gmail@shared.prefix."
	var batch [][]byte
	for i := 0; i < 32; i++ {
		batch = append(batch, []byte(base+strings.Repeat("x", i%4)+string(rune('a'+i%26))))
	}
	sort.Slice(batch, func(i, j int) bool { return bytes.Compare(batch[i], batch[j]) < 0 })
	for s, e := range encs {
		for _, size := range []int{1, 2, 8, 32} {
			got := e.EncodeBatch(batch[:size])
			for i := 0; i < size; i++ {
				want, _ := e.EncodeBits(nil, batch[i])
				if !bytes.Equal(got[i], want) {
					t.Fatalf("%v: batch size %d key %d: %x != %x", s, size, i, got[i], want)
				}
			}
		}
	}
}

func TestBatchEncodeRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	samples := sampleKeys(rng, 500)
	encs := buildAll(t, samples)
	for s, e := range encs {
		for trial := 0; trial < 50; trial++ {
			n := 2 + rng.Intn(10)
			batch := randomBinaryKeys(rng, n, 12)
			// Give half the trials a forced shared prefix.
			if trial%2 == 0 {
				p := randomBinaryKeys(rng, 1, 6)[0]
				for i := range batch {
					batch[i] = append(append([]byte{}, p...), batch[i]...)
				}
			}
			sort.Slice(batch, func(i, j int) bool { return bytes.Compare(batch[i], batch[j]) < 0 })
			got := e.EncodeBatch(batch)
			for i := range batch {
				want, _ := e.EncodeBits(nil, batch[i])
				if !bytes.Equal(got[i], want) {
					t.Fatalf("%v trial %d: batch mismatch on %q", s, trial, batch[i])
				}
			}
		}
	}
}

func TestEncodePair(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e, err := Build(DoubleChar, sampleKeys(rng, 500), Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := []byte("com.gmail@foo"), []byte("com.gmail@fop")
	elo, ehi := e.EncodePair(lo, hi)
	wlo, _ := e.EncodeBits(nil, lo)
	if !bytes.Equal(elo, wlo) {
		t.Fatal("pair lo mismatch")
	}
	whi, _ := e.EncodeBits(nil, hi)
	if !bytes.Equal(ehi, whi) {
		t.Fatal("pair hi mismatch")
	}
	// Swapped order is handled.
	elo2, ehi2 := e.EncodePair(hi, lo)
	if !bytes.Equal(elo2, elo) || !bytes.Equal(ehi2, ehi) {
		t.Fatal("swapped pair mismatch")
	}
}

func TestALMNotBatchable(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	samples := sampleKeys(rng, 500)
	for _, s := range []Scheme{ALM, ALMImproved} {
		e, err := Build(s, samples, Options{DictLimit: 512, MaxPatternLen: 16})
		if err != nil {
			t.Fatal(err)
		}
		if e.Batchable() {
			t.Fatalf("%v must not be batchable", s)
		}
	}
	e, _ := Build(SingleChar, samples, Options{})
	if !e.Batchable() {
		t.Fatal("Single-Char must be batchable")
	}
}

func TestSchemeMetadata(t *testing.T) {
	if SingleChar.Category() != "FIVC" || ALM.Category() != "VIFC" ||
		ThreeGrams.Category() != "VIVC" || ALMImproved.Category() != "VIVC" {
		t.Fatal("categories")
	}
	if !SingleChar.FixedDictSize() || ThreeGrams.FixedDictSize() {
		t.Fatal("fixed-size flags")
	}
	for _, s := range Schemes {
		if strings.Contains(s.String(), "Scheme(") {
			t.Fatalf("missing name for %v", int(s))
		}
	}
	if Scheme(99).String() != "Scheme(99)" {
		t.Fatal("unknown scheme name")
	}
}

func TestUnknownSchemeRejected(t *testing.T) {
	if _, err := Build(Scheme(99), nil, Options{}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestHuTuckerAlgorithmOption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := sampleKeys(rng, 500)
	gw, err := Build(SingleChar, samples, Options{CodeAlgorithm: hutucker.GarsiaWachs})
	if err != nil {
		t.Fatal(err)
	}
	ht, err := Build(SingleChar, samples, Options{CodeAlgorithm: hutucker.HuTucker})
	if err != nil {
		t.Fatal(err)
	}
	// Equal optimal cost implies equal compressed sizes on the samples.
	keys := sampleKeys(rng, 1000)
	g, h := gw.CompressionRate(keys), ht.CompressionRate(keys)
	if g < h*0.999 || g > h*1.001 {
		t.Fatalf("GW CPR %.4f != HT CPR %.4f", g, h)
	}
}

func TestForceBinarySearchDict(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	samples := sampleKeys(rng, 500)
	a, err := Build(ThreeGrams, samples, Options{DictLimit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ThreeGrams, samples, Options{DictLimit: 1024, ForceBinarySearchDict: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := sampleKeys(rng, 500)
	for _, k := range keys {
		x, _ := a.EncodeBits(nil, k)
		xx := append([]byte(nil), x...)
		y, _ := b.EncodeBits(nil, k)
		if !bytes.Equal(xx, y) {
			t.Fatalf("dictionary structures disagree on %q", k)
		}
	}
}

func TestMaxAndAvgSymbolLen(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	samples := sampleKeys(rng, 500)
	e, err := Build(ThreeGrams, samples, Options{DictLimit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if m := e.MaxSymbolLen(); m < 1 || m > 3 {
		t.Fatalf("3-gram max symbol len %d", m)
	}
	avg := e.AvgSymbolLen(sampleKeys(rng, 200))
	if avg < 1 || avg > 3 {
		t.Fatalf("avg symbol len %v", avg)
	}
}

func TestDecodeIntervalAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	e, err := Build(SingleChar, sampleKeys(rng, 100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := e.DecodeInterval(0)
	if len(lo) != 1 || lo[0] != 0x00 || len(hi) != 1 || hi[0] != 0x01 {
		t.Fatalf("interval 0 = [%q, %q)", lo, hi)
	}
	lo, hi = e.DecodeInterval(255)
	if lo[0] != 0xFF || hi != nil {
		t.Fatalf("interval 255 = [%q, %q)", lo, hi)
	}
	if len(e.Entries()) != 256 || e.Dictionary() == nil {
		t.Fatal("accessors")
	}
	if e.Scheme() != SingleChar {
		t.Fatal("scheme accessor")
	}
}

// The padded byte form is weakly order-preserving: compare <= rather than
// strict (the documented zero-padding edge).
func TestPaddedBytesWeakOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	samples := sampleKeys(rng, 500)
	encs := buildAll(t, samples)
	keys := randomBinaryKeys(rng, 3000, 16)
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	for s, e := range encs {
		var prev []byte
		for i, k := range keys {
			if i > 0 && bytes.Equal(k, keys[i-1]) {
				continue
			}
			out := e.Encode(k)
			if prev != nil && bytes.Compare(prev, out) > 0 {
				t.Fatalf("%v: padded order violated at %q", s, k)
			}
			prev = out
		}
	}
}

// Regression: the ALM schemes must compress (CPR > 1) even when built on
// a tiny sample — one-off sample-specific suffixes must not crowd out the
// short codes of the common intervals.
func TestALMSmallSampleStillCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	corpus := sampleKeys(rng, 4000)
	tiny := corpus[:64]
	for _, s := range []Scheme{ALM, ALMImproved} {
		for _, limit := range []int{1024, 4096} {
			e, err := Build(s, tiny, Options{DictLimit: limit})
			if err != nil {
				t.Fatal(err)
			}
			if cpr := e.CompressionRate(corpus); cpr <= 1.0 {
				t.Fatalf("%v limit %d: CPR %.3f <= 1 with tiny sample", s, limit, cpr)
			}
		}
	}
}

// Distribution shift (paper Appendix C): a dictionary built on one
// distribution still encodes another correctly, just less compactly.
func TestDistributionShiftCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	samplesA := sampleKeys(rng, 1000)
	e, err := Build(ThreeGrams, samplesA, Options{DictLimit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(e)
	if err != nil {
		t.Fatal(err)
	}
	// A disjoint distribution: numeric URLs (unique keys; the order check
	// requires strict ordering).
	var other [][]byte
	for i := 0; i < 500; i++ {
		other = append(other, []byte(fmt.Sprintf("http://198.51.100.7/id/%03d", i)))
	}
	sort.Slice(other, func(i, j int) bool { return bytes.Compare(other[i], other[j]) < 0 })
	if err := e.CheckOrderPreserving(other); err != nil {
		t.Fatal(err)
	}
	for _, k := range other {
		out, bits := e.EncodeBits(nil, k)
		got, err := d.Decode(out, bits)
		if err != nil || !bytes.Equal(got, k) {
			t.Fatalf("shifted roundtrip failed for %q", k)
		}
	}
}
