package core

import "sync"

// CPRWindow is a rolling compression-rate estimator: a fixed-size ring of
// the most recent (raw, stored) key-length pairs with running sums, so the
// rate over the last N observed keys is O(1) to read. It is the accounting
// half of the adaptive dictionary lifecycle: the serving layer feeds it the
// original and stored (padded encoded) length of every key it writes, and
// the drift detector compares the rolling rate against the rate the
// dictionary achieved on its own build sample. Safe for concurrent use.
type CPRWindow struct {
	mu     sync.Mutex
	raw    []int32 // ring of original key lengths
	enc    []int32 // ring of stored (encoded, padded) key lengths
	next   int     // ring write position
	n      int     // occupied entries (== len(raw) once full)
	sumRaw int64
	sumEnc int64
}

// NewCPRWindow returns a window over the last size keys (minimum 1).
func NewCPRWindow(size int) *CPRWindow {
	if size < 1 {
		size = 1
	}
	return &CPRWindow{raw: make([]int32, size), enc: make([]int32, size)}
}

// Observe records one key's original and stored byte lengths.
func (w *CPRWindow) Observe(rawLen, encLen int) {
	w.mu.Lock()
	if w.n == len(w.raw) {
		w.sumRaw -= int64(w.raw[w.next])
		w.sumEnc -= int64(w.enc[w.next])
	} else {
		w.n++
	}
	w.raw[w.next] = int32(rawLen)
	w.enc[w.next] = int32(encLen)
	w.next++
	if w.next == len(w.raw) {
		w.next = 0
	}
	w.sumRaw += int64(rawLen)
	w.sumEnc += int64(encLen)
	w.mu.Unlock()
}

// Rate returns the rolling compression rate (raw bytes / stored bytes, the
// paper's CPR metric) over the occupied window, or 0 while the window has
// seen nothing (or only empty keys).
func (w *CPRWindow) Rate() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sumEnc == 0 {
		return 0
	}
	return float64(w.sumRaw) / float64(w.sumEnc)
}

// Sums returns the window's running byte totals (original and stored)
// and its occupancy in one locked read — the aggregation hook for striped
// accounting, where one logical window is split across stripes and the
// combined rate is sum(raw)/sum(enc) over all of them.
func (w *CPRWindow) Sums() (raw, enc int64, n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sumRaw, w.sumEnc, w.n
}

// Count returns how many keys currently occupy the window.
func (w *CPRWindow) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Full reports whether the ring has wrapped at least once — the point at
// which Rate stops mixing in pre-window history and drift comparisons
// become meaningful.
func (w *CPRWindow) Full() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n == len(w.raw)
}

// Reset empties the window. The lifecycle calls this at dictionary
// cutover: the old generation's encodings must not dilute the new
// dictionary's rolling rate.
func (w *CPRWindow) Reset() {
	w.mu.Lock()
	w.next, w.n, w.sumRaw, w.sumEnc = 0, 0, 0, 0
	w.mu.Unlock()
}
