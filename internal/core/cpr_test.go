package core

import (
	"math"
	"sync"
	"testing"
)

func TestCPRWindowRollsAndResets(t *testing.T) {
	w := NewCPRWindow(4)
	if w.Rate() != 0 || w.Count() != 0 || w.Full() {
		t.Fatal("fresh window not empty")
	}
	// Four keys at 2:1 compression.
	for i := 0; i < 4; i++ {
		w.Observe(10, 5)
	}
	if !w.Full() || w.Count() != 4 {
		t.Fatalf("window should be full: count %d", w.Count())
	}
	if r := w.Rate(); math.Abs(r-2.0) > 1e-9 {
		t.Fatalf("rate %f want 2.0", r)
	}
	// Four more at 1:1 must fully evict the 2:1 era.
	for i := 0; i < 4; i++ {
		w.Observe(10, 10)
	}
	if r := w.Rate(); math.Abs(r-1.0) > 1e-9 {
		t.Fatalf("rate %f want 1.0 after roll", r)
	}
	w.Reset()
	if w.Rate() != 0 || w.Count() != 0 || w.Full() {
		t.Fatal("Reset did not empty the window")
	}
}

func TestCPRWindowPartialFill(t *testing.T) {
	w := NewCPRWindow(8)
	w.Observe(9, 3)
	if r := w.Rate(); math.Abs(r-3.0) > 1e-9 {
		t.Fatalf("rate %f want 3.0", r)
	}
	if w.Full() {
		t.Fatal("one observation should not fill an 8-slot window")
	}
	// Empty keys contribute nothing; the rate must not divide by zero.
	w2 := NewCPRWindow(2)
	w2.Observe(0, 0)
	if w2.Rate() != 0 {
		t.Fatal("all-empty window should report 0")
	}
}

func TestCPRWindowConcurrent(t *testing.T) {
	w := NewCPRWindow(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.Observe(20, 10)
				_ = w.Rate()
			}
		}()
	}
	wg.Wait()
	if r := w.Rate(); math.Abs(r-2.0) > 1e-9 {
		t.Fatalf("rate %f want 2.0", r)
	}
	if !w.Full() {
		t.Fatal("window should be full")
	}
}
