package core

import "fmt"

// Decoder reconstructs original keys from encoded bit strings. Search-tree
// queries never decode (the paper's key insight is to optimize encoding
// only), but entropy encoding is lossless and the decoder both proves it
// and serves tests and debugging. The structure is a binary trie over the
// prefix-free code set.
type Decoder struct {
	// nodes[i] = {zero, one, sym}: child indexes (-1 none) and the entry
	// index terminating at this node (-1 none).
	zero, one, sym []int32
	symbols        [][]byte
}

// NewDecoder builds a decoder for the encoder's dictionary.
func NewDecoder(e *Encoder) (*Decoder, error) {
	d := &Decoder{zero: []int32{-1}, one: []int32{-1}, sym: []int32{-1}}
	d.symbols = make([][]byte, len(e.entries))
	for i, ent := range e.entries {
		d.symbols[i] = ent.Boundary[:ent.SymbolLen]
		// Insert the code bits, MSB first.
		cur := int32(0)
		for b := int(ent.Code.Len) - 1; b >= 0; b-- {
			bit := (ent.Code.Bits >> uint(b)) & 1
			next := d.zero[cur]
			if bit == 1 {
				next = d.one[cur]
			}
			if next == -1 {
				d.zero = append(d.zero, -1)
				d.one = append(d.one, -1)
				d.sym = append(d.sym, -1)
				next = int32(len(d.sym) - 1)
				if bit == 1 {
					d.one[cur] = next
				} else {
					d.zero[cur] = next
				}
			}
			cur = next
		}
		if d.sym[cur] != -1 || d.zero[cur] != -1 || d.one[cur] != -1 {
			return nil, fmt.Errorf("core: codes are not prefix-free at entry %d", i)
		}
		d.sym[cur] = int32(i)
	}
	return d, nil
}

// Decode reconstructs the key from bitLen bits of buf (the exact length
// returned by EncodeBits; the padding bits are ignored). On any error —
// a bit length the buffer cannot hold, a code walking off the trie, or a
// sequence ending mid-code — the returned output is nil: corrupt input
// never yields a partially-decoded key.
func (d *Decoder) Decode(buf []byte, bitLen int) ([]byte, error) {
	if bitLen < 0 {
		return nil, fmt.Errorf("core: negative bit length %d", bitLen)
	}
	if bitLen > len(buf)*8 {
		// Compare in bit units: (bitLen+7)/8 would overflow for corrupt
		// bit lengths near MaxInt and let the guard pass.
		return nil, fmt.Errorf("core: bit length %d exceeds %d-byte buffer", bitLen, len(buf))
	}
	var out []byte
	cur := int32(0)
	for i := 0; i < bitLen; i++ {
		bit := (buf[i/8] >> (7 - uint(i)%8)) & 1
		if bit == 1 {
			cur = d.one[cur]
		} else {
			cur = d.zero[cur]
		}
		if cur == -1 {
			return nil, fmt.Errorf("core: invalid code sequence at bit %d", i)
		}
		if s := d.sym[cur]; s != -1 {
			out = append(out, d.symbols[s]...)
			cur = 0
		}
	}
	if cur != 0 {
		return nil, fmt.Errorf("core: truncated code sequence (%d bits)", bitLen)
	}
	return out, nil
}

// DecodeInterval reports the interval boundary pair an entry covers; a
// debugging aid for inspecting dictionaries.
func (e *Encoder) DecodeInterval(i int) (lo, hi []byte) {
	lo = e.entries[i].Boundary
	if i+1 < len(e.entries) {
		hi = e.entries[i+1].Boundary
	}
	return lo, hi
}

// MaxSymbolLen returns the longest dictionary symbol, a bound on how many
// bytes one encoding step can consume.
func (e *Encoder) MaxSymbolLen() int {
	m := 0
	for _, ent := range e.entries {
		if int(ent.SymbolLen) > m {
			m = int(ent.SymbolLen)
		}
	}
	return m
}

// AvgSymbolLen returns the hit-weighted average symbol length implied by
// re-encoding keys; exposed for the latency model of paper Section 5.
func (e *Encoder) AvgSymbolLen(keys [][]byte) float64 {
	var steps, bytesConsumed int
	for _, k := range keys {
		for pos := 0; pos < len(k); {
			_, n := e.dict.Lookup(k[pos:])
			pos += n
			steps++
			bytesConsumed += n
		}
	}
	if steps == 0 {
		return 0
	}
	return float64(bytesConsumed) / float64(steps)
}

// CheckOrderPreserving verifies on a key sample that encoding preserves
// order bit-exactly; used by tests and the self-check tooling. Keys must
// be sorted and unique.
func (e *Encoder) CheckOrderPreserving(sortedKeys [][]byte) error {
	if len(sortedKeys) == 0 {
		return nil
	}
	prev, prevBits := cloneEnc(e, sortedKeys[0])
	for i := 1; i < len(sortedKeys); i++ {
		cur, curBits := cloneEnc(e, sortedKeys[i])
		if bitCompare(prev, prevBits, cur, curBits) >= 0 {
			return fmt.Errorf("core: order violated between %q and %q", sortedKeys[i-1], sortedKeys[i])
		}
		prev, prevBits = cur, curBits
	}
	return nil
}

func cloneEnc(e *Encoder, key []byte) ([]byte, int) {
	b, n := e.EncodeBits(nil, key)
	return append([]byte(nil), b...), n
}

// bitCompare orders two bit strings (byte buffers with exact bit lengths).
func bitCompare(a []byte, aBits int, b []byte, bBits int) int {
	min := aBits
	if bBits < min {
		min = bBits
	}
	nBytes := min / 8
	for i := 0; i < nBytes; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	for i := nBytes * 8; i < min; i++ {
		ab := (a[i/8] >> (7 - uint(i)%8)) & 1
		bb := (b[i/8] >> (7 - uint(i)%8)) & 1
		if ab != bb {
			return int(ab) - int(bb)
		}
	}
	switch {
	case aBits < bBits:
		return -1
	case aBits > bBits:
		return 1
	}
	return 0
}
