package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestDecodeCorruptInputAllSchemes feeds every scheme's decoder truncated
// buffers, over-claimed bit lengths and random garbage. Every error path
// must return a nil output — a corrupt code never yields a partial key —
// and no input may panic.
func TestDecodeCorruptInputAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	encs := buildAll(t, nil)
	for s, e := range encs {
		d, err := NewDecoder(e)
		if err != nil {
			t.Fatalf("%v: decoder: %v", s, err)
		}
		out, bits := e.EncodeBits(nil, []byte("com.gmail@alice42"))
		if bits < 9 {
			t.Fatalf("%v: fixture too small", s)
		}

		// Truncated bit length: cutting one bit either errors (mid-code)
		// or, if it lands on a code boundary, decodes a shorter key; both
		// are fine, but an error must come with nil output.
		if got, err := d.Decode(out, bits-1); err != nil && got != nil {
			t.Fatalf("%v: truncated decode returned partial output %q with error %v", s, got, err)
		}

		// Bit length exceeding the buffer must error, not read out of
		// bounds (the buffer genuinely lacks the claimed bits).
		if got, err := d.Decode(out[:len(out)-1], bits); err == nil {
			t.Fatalf("%v: over-claimed bit length accepted (%q)", s, got)
		} else if got != nil {
			t.Fatalf("%v: over-claimed bit length returned partial output", s)
		}
		if got, err := d.Decode(nil, 8); err == nil || got != nil {
			t.Fatalf("%v: empty buffer with positive bit length accepted", s)
		}
		if got, err := d.Decode(out, -3); err == nil || got != nil {
			t.Fatalf("%v: negative bit length accepted", s)
		}
		// A corrupt bit length near MaxInt must not overflow the bounds
		// check into a pass (and then panic in the decode loop).
		if got, err := d.Decode(out, math.MaxInt-3); err == nil || got != nil {
			t.Fatalf("%v: near-MaxInt bit length accepted", s)
		}

		// Garbage bytes with arbitrary claimed lengths: must never panic,
		// and every error must carry a nil output.
		for i := 0; i < 200; i++ {
			buf := make([]byte, rng.Intn(16))
			rng.Read(buf)
			claim := rng.Intn(len(buf)*8 + 24)
			got, err := d.Decode(buf, claim)
			if err != nil && got != nil {
				t.Fatalf("%v: garbage decode returned partial output with error %v", s, err)
			}
		}
	}
}
