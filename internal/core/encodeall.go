package core

import (
	"runtime"
	"sync"
)

// encodeAllMinShard is the smallest per-worker shard worth a goroutine;
// below it the spawn/join overhead exceeds the encode work.
const encodeAllMinShard = 256

// EncodeAll bulk-encodes keys and returns their padded encodings. The work
// is sharded into contiguous runs across up to GOMAXPROCS workers — bulk
// inputs are typically sorted loads, and contiguous shards keep each
// worker's dictionary probes on neighbouring intervals — with one appender
// per worker. Every result is a slice of one shared backing buffer, in
// key order; on the parallel path that layout costs a final merge copy of
// the worker buffers (transiently ~2x the encoded size), the price of
// handing callers a single contiguous allocation instead of one buffer
// per worker.
//
// Unlike the other Encoder methods, EncodeAll is safe for concurrent use:
// it touches only the read-only dictionary, never the Encoder's embedded
// appender.
func (e *Encoder) EncodeAll(keys [][]byte) [][]byte {
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if max := len(keys) / encodeAllMinShard; workers > max {
		workers = max // every shard gets at least encodeAllMinShard keys
	}
	if workers < 1 {
		workers = 1
	}
	if workers <= 1 {
		backing, offs := e.encodeShard(nil, keys, make([]int, len(keys)+1))
		return carve(out, backing, offs)
	}
	// Shard boundaries: contiguous, near-equal key counts.
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * len(keys) / workers
	}
	backings := make([][]byte, workers)
	offsets := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := keys[bounds[w]:bounds[w+1]]
			backings[w], offsets[w] = e.encodeShard(nil, shard, make([]int, len(shard)+1))
		}(w)
	}
	wg.Wait()
	// Merge the worker buffers into one backing array and carve results.
	total := 0
	for _, b := range backings {
		total += len(b)
	}
	backing := make([]byte, 0, total)
	for w := 0; w < workers; w++ {
		base := len(backing)
		backing = append(backing, backings[w]...)
		offs := offsets[w]
		for i := bounds[w]; i < bounds[w+1]; i++ {
			j := i - bounds[w]
			lo, hi := base+offs[j], base+offs[j+1]
			out[i] = backing[lo:hi:hi]
		}
	}
	return out
}

// encodeShard encodes a contiguous run of keys back to back into one
// growing buffer, recording the byte offset of each encoding in offs
// (offs[i]..offs[i+1] is key i's padded encoding). The buffer is
// pre-sized to the shard's source byte count — compression rates are ≥ 1
// on workload-like keys, so this usually avoids regrowth entirely (it is
// a hint, not a bound: adversarial bytes can encode to more bits than
// they occupy, and append still grows then).
func (e *Encoder) encodeShard(buf []byte, keys [][]byte, offs []int) ([]byte, []int) {
	if buf == nil {
		hint := 0
		for _, k := range keys {
			hint += len(k)
		}
		buf = make([]byte, 0, hint+8)
	}
	var a appender
	a.Reset(buf)
	offs[0] = 0
	for i, k := range keys {
		e.appendEncode(&a, k)
		buf, _ = a.Finish() // pads to a byte boundary in place
		offs[i+1] = len(buf)
	}
	return buf, offs
}
