package core

import (
	"runtime"
	"sync"
)

// encodeAllMinShard is the smallest per-worker shard worth a goroutine;
// below it the spawn/join overhead exceeds the encode work.
const encodeAllMinShard = 256

// encodeWorker carries the transient per-worker state of the parallel
// EncodeAll path: the appender's backing buffer and the offset table. Both
// are merged into the caller-visible result and then become garbage, so
// they are recycled through encodeWorkerPool — steady-state EncodeAll
// performs a bounded number of allocations (the returned result plus
// per-call bookkeeping), independent of key count and chunk count
// (TestEncodeAllSteadyStateAllocs asserts this).
type encodeWorker struct {
	buf  []byte
	offs []int
}

var encodeWorkerPool = sync.Pool{New: func() any { return new(encodeWorker) }}

// EncodeAll bulk-encodes keys and returns their padded encodings. The work
// is sharded into contiguous runs across up to GOMAXPROCS workers — bulk
// inputs are typically sorted loads, and contiguous shards keep each
// worker's dictionary probes on neighbouring intervals — with one appender
// per worker. Every result is a slice of one shared backing buffer, in
// key order; on the parallel path that layout costs a final merge copy of
// the worker buffers (transiently ~2x the encoded size), the price of
// handing callers a single contiguous allocation instead of one buffer
// per worker. Worker-side buffers are pooled and reused across calls.
//
// Unlike the other Encoder methods, EncodeAll is safe for concurrent use:
// it touches only the read-only dictionary, never the Encoder's embedded
// appender.
func (e *Encoder) EncodeAll(keys [][]byte) [][]byte {
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if max := len(keys) / encodeAllMinShard; workers > max {
		workers = max // every shard gets at least encodeAllMinShard keys
	}
	if workers <= 1 {
		// Serial: encode straight into the final backing (no merge copy,
		// nothing worth pooling — backing and offsets are the result).
		backing, offs := e.encodeShard(nil, keys, make([]int, len(keys)+1))
		return carve(out, backing, offs)
	}
	// Shard boundaries: contiguous, near-equal key counts; worker w owns
	// keys[w*len/workers : (w+1)*len/workers].
	ws := make([]*encodeWorker, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := keys[w*len(keys)/workers : (w+1)*len(keys)/workers]
			ew := encodeWorkerPool.Get().(*encodeWorker)
			if cap(ew.offs) < len(shard)+1 {
				ew.offs = make([]int, len(shard)+1)
			}
			ew.buf, ew.offs = e.encodeShard(ew.buf, shard, ew.offs[:len(shard)+1])
			ws[w] = ew
		}(w)
	}
	wg.Wait()
	// Merge the worker buffers into one backing array, carve results, and
	// recycle the workers (their buffers were copied, not retained).
	total := 0
	for _, ew := range ws {
		total += len(ew.buf)
	}
	backing := make([]byte, 0, total)
	for w, ew := range ws {
		base := len(backing)
		backing = append(backing, ew.buf...)
		lo := w * len(keys) / workers
		hi := (w + 1) * len(keys) / workers
		for i := lo; i < hi; i++ {
			j := i - lo
			o1, o2 := base+ew.offs[j], base+ew.offs[j+1]
			out[i] = backing[o1:o2:o2]
		}
		encodeWorkerPool.Put(ew)
	}
	return out
}

// encodeShard encodes a contiguous run of keys back to back into one
// growing buffer, recording the byte offset of each encoding in offs
// (offs[i]..offs[i+1] is key i's padded encoding). buf's storage is reused
// when its capacity suffices; otherwise the buffer is pre-sized to the
// shard's source byte count — compression rates are ≥ 1 on workload-like
// keys, so this usually avoids regrowth entirely (it is a hint, not a
// bound: adversarial bytes can encode to more bits than they occupy, and
// append still grows then).
func (e *Encoder) encodeShard(buf []byte, keys [][]byte, offs []int) ([]byte, []int) {
	hint := 0
	for _, k := range keys {
		hint += len(k)
	}
	if cap(buf) < hint+8 {
		buf = make([]byte, 0, hint+8)
	}
	buf = buf[:0]
	var a appender
	a.Reset(buf)
	offs[0] = 0
	if e.batch != nil {
		// Batch kernel: one call encodes the whole shard with word-level
		// parallelism, padding each key and recording its offset in place.
		e.batch.AppendEncodeBatch(&a, keys, offs)
		buf, _ = a.Finish()
		return buf, offs
	}
	for i, k := range keys {
		e.appendEncode(&a, k)
		buf, _ = a.Finish() // pads to a byte boundary in place
		offs[i+1] = len(buf)
	}
	return buf, offs
}
