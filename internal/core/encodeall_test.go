package core

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
)

// TestEncodeAllSteadyStateAllocs asserts the parallel EncodeAll path
// performs a bounded number of allocations per call once the worker pool
// is warm: the returned result (out slice + backing) plus per-call
// bookkeeping (worker list, goroutine closures), but nothing proportional
// to the key count — the per-worker appender buffers and offset tables
// must be reused across calls.
func TestEncodeAllSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := sampleKeys(rng, 1000)
	enc, err := Build(DoubleChar, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Force the parallel path even on single-core machines: 4 workers
	// over 4*encodeAllMinShard keys.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	keys := sampleKeys(rng, 4*encodeAllMinShard)
	enc.EncodeAll(keys) // warm the worker pool

	for _, n := range []int{len(keys) / 2, len(keys)} {
		sub := keys[:n]
		allocs := testing.AllocsPerRun(20, func() {
			enc.EncodeAll(sub)
		})
		// Budget: out + backing + worker list + (closure + pool-miss
		// slack) per worker. The essential property is independence from
		// the key count: ~1k keys stay within the same constant budget.
		const budget = 24
		if allocs > budget {
			t.Fatalf("EncodeAll(%d keys): %.1f allocs/op, want <= %d (per-worker buffers not reused?)",
				n, allocs, budget)
		}
	}
}

// TestEncodeAllPooledMatchesSerial cross-checks the pooled parallel path
// against the serial path: reused worker buffers must never leak bytes
// between calls or shards.
func TestEncodeAllPooledMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	samples := sampleKeys(rng, 1000)
	for _, scheme := range []Scheme{SingleChar, ThreeGrams} {
		enc, err := Build(scheme, samples, Options{DictLimit: 2048, MaxPatternLen: 16})
		if err != nil {
			t.Fatal(err)
		}
		prev := runtime.GOMAXPROCS(4)
		// Two differently-sized batches so pooled buffers are first grown,
		// then reused partially filled.
		big := sampleKeys(rng, 4*encodeAllMinShard)
		small := sampleKeys(rng, 2*encodeAllMinShard)
		for _, keys := range [][][]byte{big, small, big} {
			got := enc.EncodeAll(keys)
			runtime.GOMAXPROCS(1)
			want := enc.EncodeAll(keys)
			runtime.GOMAXPROCS(4)
			if len(got) != len(want) {
				t.Fatalf("%v: length mismatch", scheme)
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("%v: key %d: parallel %x != serial %x", scheme, i, got[i], want[i])
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}
