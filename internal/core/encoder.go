package core

import (
	"bytes"

	"repro/internal/bitops"
)

// appender aliases the bit appender so the Encoder can embed reusable
// encode state.
type appender = bitops.Appender

// appendEncode runs the captured concrete kernel over key, falling back to
// the interface-dispatch loop for dictionaries that do not provide one.
// The fallback also serves as the reference loop the differential tests
// compare the kernels against.
func (e *Encoder) appendEncode(a *appender, key []byte) {
	if e.kern != nil {
		e.kern.AppendEncode(a, key)
		return
	}
	e.appendEncodeGeneric(a, key)
}

// appendEncodeGeneric is the devirtualization baseline: one Dictionary
// interface call and one sub-slice per symbol.
func (e *Encoder) appendEncodeGeneric(a *appender, key []byte) {
	for pos := 0; pos < len(key); {
		code, n := e.dict.Lookup(key[pos:])
		a.Append(code.Bits, uint(code.Len))
		pos += n
	}
}

// Encode compresses key and returns the code sequence padded with zero
// bits to a byte boundary — the form the search trees store. Comparing two
// encoded keys as byte strings preserves the order of the original keys.
//
// Known modelling edge (shared with the paper, see DESIGN.md): if key a is
// a proper prefix of key b and b's extension encodes to all-zero bits, the
// padded outputs are equal. EncodeBits exposes the exact bit length for
// callers that need the strict order.
func (e *Encoder) Encode(key []byte) []byte {
	out, _ := e.EncodeBits(nil, key)
	return out
}

// EncodeBits compresses key into dst (reusing its storage) and returns the
// padded bytes along with the exact number of code bits. With a dst of
// sufficient capacity the call performs no allocations.
func (e *Encoder) EncodeBits(dst, key []byte) ([]byte, int) {
	a := &e.app
	a.Reset(dst)
	e.appendEncode(a, key)
	return a.Finish()
}

// CompressionRate returns the uncompressed byte count of keys divided by
// the compressed byte count (padded, as stored by a search tree) — the
// paper's CPR metric.
func (e *Encoder) CompressionRate(keys [][]byte) float64 {
	var raw, enc int
	buf := make([]byte, 0, 64)
	for _, k := range keys {
		raw += len(k)
		out, _ := e.EncodeBits(buf, k)
		enc += len(out)
		buf = out[:0]
	}
	if enc == 0 {
		return 0
	}
	return float64(raw) / float64(enc)
}

// Batchable reports whether the scheme supports shared-prefix batch
// encoding. The ALM schemes do not: their dictionary symbols have
// arbitrary lengths, so no prefix of a batch is guaranteed to align with
// symbol boundaries (paper Appendix B).
func (e *Encoder) Batchable() bool { return e.lookAhead > 0 }

// EncodeBatch compresses a sorted run of keys, encoding their common
// prefix only once (paper Section 4.2, batch encoding). The results are
// slices of one shared backing array sized by the batch — one allocation
// per batch, not one per key — so callers must not grow them in place.
// Falls back to individual encoding for ALM schemes. A batch of two is the
// paper's pair-encoding used for closed-range queries.
func (e *Encoder) EncodeBatch(keys [][]byte) [][]byte {
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out
	}
	// backing accumulates every padded encoding back to back; out[i] is
	// carved from it at the end. Growth is amortized across the batch.
	var backing []byte
	offs := make([]int, len(keys)+1)
	if !e.Batchable() || len(keys) == 1 {
		for i, k := range keys {
			b, _ := e.EncodeBits(nil, k)
			backing = append(backing, b...)
			offs[i+1] = len(backing)
		}
		return carve(out, backing, offs)
	}
	// The common prefix of a sorted run is the prefix of first and last.
	first, last := keys[0], keys[len(keys)-1]
	lcp := 0
	for lcp < len(first) && lcp < len(last) && first[lcp] == last[lcp] {
		lcp++
	}
	a := &e.app
	a.Reset(nil)
	pos := 0
	// Encode the shared prefix while the lookup outcome is provably the
	// same for every key in the batch: a lookup is determined by the next
	// lookAhead bytes, so it may consult at most lcp-lookAhead+... safely
	// while lookAhead bytes of shared context remain.
	for pos+e.lookAhead <= lcp {
		code, n := e.dict.Lookup(first[pos:])
		if pos+n > lcp {
			break
		}
		a.Append(code.Bits, uint(code.Len))
		pos += n
	}
	mark := a.Mark()
	for i, k := range keys {
		a.Restore(mark)
		e.appendEncode(a, k[pos:])
		m2 := a.Mark()
		buf, _ := a.Finish()
		backing = append(backing, buf...)
		offs[i+1] = len(backing)
		a.Restore(m2) // undo Finish's padding before the next key
	}
	return carve(out, backing, offs)
}

// carve slices backing into the per-key results recorded in offs.
func carve(out [][]byte, backing []byte, offs []int) [][]byte {
	for i := range out {
		out[i] = backing[offs[i]:offs[i+1]:offs[i+1]]
	}
	return out
}

// EncodePair encodes the two boundary keys of a closed-range query with
// the shared prefix encoded once, returning the encodings of the smaller
// and greater boundary respectively.
func (e *Encoder) EncodePair(lo, hi []byte) ([]byte, []byte) {
	if bytes.Compare(lo, hi) > 0 {
		lo, hi = hi, lo
	}
	r := e.EncodeBatch([][]byte{lo, hi})
	return r[0], r[1]
}
