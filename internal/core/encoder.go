package core

import (
	"bytes"

	"repro/internal/bitops"
)

// appender aliases the bit appender so the Encoder can embed reusable
// encode state.
type appender = bitops.Appender

// Encode compresses key and returns the code sequence padded with zero
// bits to a byte boundary — the form the search trees store. Comparing two
// encoded keys as byte strings preserves the order of the original keys.
//
// Known modelling edge (shared with the paper, see DESIGN.md): if key a is
// a proper prefix of key b and b's extension encodes to all-zero bits, the
// padded outputs are equal. EncodeBits exposes the exact bit length for
// callers that need the strict order.
func (e *Encoder) Encode(key []byte) []byte {
	out, _ := e.EncodeBits(nil, key)
	return out
}

// EncodeBits compresses key into dst (reusing its storage) and returns the
// padded bytes along with the exact number of code bits.
func (e *Encoder) EncodeBits(dst, key []byte) ([]byte, int) {
	a := &e.app
	a.Reset(dst)
	for pos := 0; pos < len(key); {
		code, n := e.dict.Lookup(key[pos:])
		a.Append(code.Bits, uint(code.Len))
		pos += n
	}
	return a.Finish()
}

// CompressionRate returns the uncompressed byte count of keys divided by
// the compressed byte count (padded, as stored by a search tree) — the
// paper's CPR metric.
func (e *Encoder) CompressionRate(keys [][]byte) float64 {
	var raw, enc int
	buf := make([]byte, 0, 64)
	for _, k := range keys {
		raw += len(k)
		out, _ := e.EncodeBits(buf, k)
		enc += len(out)
		buf = out[:0]
	}
	if enc == 0 {
		return 0
	}
	return float64(raw) / float64(enc)
}

// Batchable reports whether the scheme supports shared-prefix batch
// encoding. The ALM schemes do not: their dictionary symbols have
// arbitrary lengths, so no prefix of a batch is guaranteed to align with
// symbol boundaries (paper Appendix B).
func (e *Encoder) Batchable() bool { return e.lookAhead > 0 }

// EncodeBatch compresses a sorted run of keys, encoding their common
// prefix only once (paper Section 4.2, batch encoding). The result slices
// are freshly allocated. Falls back to individual encoding for ALM
// schemes. A batch of two is the paper's pair-encoding used for
// closed-range queries.
func (e *Encoder) EncodeBatch(keys [][]byte) [][]byte {
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out
	}
	if !e.Batchable() || len(keys) == 1 {
		for i, k := range keys {
			b, _ := e.EncodeBits(nil, k)
			out[i] = append([]byte(nil), b...)
		}
		return out
	}
	// The common prefix of a sorted run is the prefix of first and last.
	first, last := keys[0], keys[len(keys)-1]
	lcp := 0
	for lcp < len(first) && lcp < len(last) && first[lcp] == last[lcp] {
		lcp++
	}
	a := &e.app
	a.Reset(nil)
	pos := 0
	// Encode the shared prefix while the lookup outcome is provably the
	// same for every key in the batch: a lookup is determined by the next
	// lookAhead bytes, so it may consult at most lcp-lookAhead+... safely
	// while lookAhead bytes of shared context remain.
	for pos+e.lookAhead <= lcp {
		code, n := e.dict.Lookup(first[pos:])
		if pos+n > lcp {
			break
		}
		a.Append(code.Bits, uint(code.Len))
		pos += n
	}
	mark := a.Mark()
	for i, k := range keys {
		a.Restore(mark)
		for p := pos; p < len(k); {
			code, n := e.dict.Lookup(k[p:])
			a.Append(code.Bits, uint(code.Len))
			p += n
		}
		m2 := a.Mark()
		buf, _ := a.Finish()
		out[i] = append([]byte(nil), buf...)
		a.Restore(m2) // undo Finish's padding before the next key
	}
	return out
}

// EncodePair encodes the two boundary keys of a closed-range query with
// the shared prefix encoded once, returning the encodings of the smaller
// and greater boundary respectively.
func (e *Encoder) EncodePair(lo, hi []byte) ([]byte, []byte) {
	if bytes.Compare(lo, hi) > 0 {
		lo, hi = hi, lo
	}
	r := e.EncodeBatch([][]byte{lo, hi})
	return r[0], r[1]
}
