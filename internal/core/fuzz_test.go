package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// Fuzz fixtures share one encoder set; fuzzing explores arbitrary byte
// inputs against the completeness / order / losslessness contracts.
var fuzzFixture struct {
	sync.Once
	encs []*Encoder
	decs []*Decoder
	err  error
}

func fuzzEncoders(f *testing.F) ([]*Encoder, []*Decoder) {
	f.Helper()
	fuzzFixture.Do(func() {
		rng := rand.New(rand.NewSource(1))
		samples := sampleKeys(rng, 800)
		for _, s := range []Scheme{SingleChar, ThreeGrams, ALMImproved} {
			e, err := Build(s, samples, Options{DictLimit: 1024, MaxPatternLen: 16})
			if err != nil {
				fuzzFixture.err = err
				return
			}
			d, err := NewDecoder(e)
			if err != nil {
				fuzzFixture.err = err
				return
			}
			fuzzFixture.encs = append(fuzzFixture.encs, e)
			fuzzFixture.decs = append(fuzzFixture.decs, d)
		}
	})
	if fuzzFixture.err != nil {
		f.Fatal(fuzzFixture.err)
	}
	return fuzzFixture.encs, fuzzFixture.decs
}

// FuzzEncodeRoundTrip: any byte string encodes, decodes back losslessly,
// and the padded length matches the bit length.
func FuzzEncodeRoundTrip(f *testing.F) {
	encs, decs := fuzzEncoders(f)
	f.Add([]byte("com.gmail@alice"))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add([]byte("\x00\xff\x00\xff binary soup \x01\x02"))
	f.Fuzz(func(t *testing.T, key []byte) {
		if len(key) > 256 {
			key = key[:256]
		}
		for i, e := range encs {
			out, bits := e.EncodeBits(nil, key)
			if len(out) != (bits+7)/8 {
				t.Fatalf("scheme %v: padding mismatch", e.Scheme())
			}
			back, err := decs[i].Decode(out, bits)
			if err != nil {
				t.Fatalf("scheme %v: decode: %v", e.Scheme(), err)
			}
			if !bytes.Equal(back, key) {
				t.Fatalf("scheme %v: roundtrip %q -> %q", e.Scheme(), key, back)
			}
		}
	})
}

// FuzzOrderPreservation: for any two byte strings, encoded bit-string
// order matches input order.
func FuzzOrderPreservation(f *testing.F) {
	encs, _ := fuzzEncoders(f)
	f.Add([]byte("abc"), []byte("abd"))
	f.Add([]byte("a"), []byte("a\x00"))
	f.Add([]byte{}, []byte{0x00})
	f.Add([]byte("com.gmail@a"), []byte("com.gmail@b"))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		if len(a) > 128 {
			a = a[:128]
		}
		if len(b) > 128 {
			b = b[:128]
		}
		cmp := bytes.Compare(a, b)
		for _, e := range encs {
			ea, na := e.EncodeBits(nil, a)
			ea = append([]byte(nil), ea...)
			eb, nb := e.EncodeBits(nil, b)
			got := bitCompare(ea, na, eb, nb)
			if cmp == 0 && got != 0 {
				t.Fatalf("scheme %v: equal keys encode differently", e.Scheme())
			}
			if cmp < 0 && got >= 0 || cmp > 0 && got <= 0 {
				t.Fatalf("scheme %v: order(%q,%q)=%d but encoded order %d",
					e.Scheme(), a, b, cmp, got)
			}
		}
	})
}

// FuzzEncodedBounds: bound translation preserves the range-query
// invariants on arbitrary (prefix, key) pairs. For lo, hi :=
// EncodePrefix(p, maxLen) and any key k with len(k) <= maxLen, under
// byte-wise comparison of the padded encodings (the form the search trees
// store and compare):
//
//   - k carries p            =>  lo <= Encode(k) <= hi
//   - k < p (not carrying)   =>  Encode(k) <= lo
//   - k > p (not carrying)   =>  Encode(k) >= hi
//
// and complete-key bounds never invert: a <= b implies
// EncodeBound(a) <= EncodeBound(b). All comparisons are non-strict because
// the documented zero-padding edge may collapse distinct keys to equal
// padded encodings — collapse is allowed, inversion is a bug.
func FuzzEncodedBounds(f *testing.F) {
	encs, _ := fuzzEncoders(f)
	f.Add([]byte("com.gmail@"), []byte("com.gmail@alice"))
	f.Add([]byte("a"), []byte("a\x00"))
	f.Add([]byte{}, []byte{0x00})
	f.Add([]byte{0xff}, []byte{0xff, 0xff})
	f.Add([]byte("app"), []byte("apz"))
	f.Add([]byte("zz"), []byte("aa"))
	f.Fuzz(func(t *testing.T, p, k []byte) {
		if len(p) > 64 {
			p = p[:64]
		}
		if len(k) > 128 {
			k = k[:128]
		}
		maxLen := len(k)
		if len(p) > maxLen {
			maxLen = len(p)
		}
		for _, e := range encs {
			lo, hi := e.EncodePrefix(p, maxLen)
			ek := e.Encode(k)
			switch {
			case bytes.HasPrefix(k, p):
				if bytes.Compare(ek, lo) < 0 || bytes.Compare(ek, hi) > 0 {
					t.Fatalf("scheme %v: carrier %q of prefix %q escapes [lo, hi]",
						e.Scheme(), k, p)
				}
			case bytes.Compare(k, p) < 0:
				if bytes.Compare(ek, lo) > 0 {
					t.Fatalf("scheme %v: %q < prefix %q but Encode(k) > lo",
						e.Scheme(), k, p)
				}
			default:
				if bytes.Compare(ek, hi) < 0 {
					t.Fatalf("scheme %v: %q > prefix %q but Encode(k) < hi",
						e.Scheme(), k, p)
				}
			}
			// Complete-key bounds: order may collapse, never invert.
			ba, bb := e.EncodeBound(p), e.EncodeBound(k)
			if c := bytes.Compare(p, k); c < 0 && bytes.Compare(ba, bb) > 0 ||
				c > 0 && bytes.Compare(ba, bb) < 0 {
				t.Fatalf("scheme %v: EncodeBound inverted order of %q and %q",
					e.Scheme(), p, k)
			}
		}
	})
}

// FuzzBatchEncode: the batch kernels behind EncodeAll must be
// byte-identical to the per-key encode path for arbitrary batches,
// including empty keys and ragged lengths carved from the fuzz input.
func FuzzBatchEncode(f *testing.F) {
	encs, _ := fuzzEncoders(f)
	f.Add([]byte("com.gmail@alice\x00bob\x00\x00carol"), uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00, 0xFF}, uint8(2))
	f.Add([]byte("aaaaaaaabbbbbbbbccccccccdddddddd"), uint8(7))
	f.Fuzz(func(t *testing.T, raw []byte, nkeys uint8) {
		if len(raw) > 1024 {
			raw = raw[:1024]
		}
		n := int(nkeys%32) + 1
		keys := make([][]byte, n)
		for i := range keys {
			lo := i * len(raw) / n
			hi := (i + 1) * len(raw) / n
			keys[i] = raw[lo:hi]
		}
		for _, e := range encs {
			got := e.EncodeAll(keys)
			if len(got) != n {
				t.Fatalf("scheme %v: EncodeAll returned %d of %d", e.Scheme(), len(got), n)
			}
			for i, k := range keys {
				want := e.Encode(k)
				if !bytes.Equal(got[i], want) {
					t.Fatalf("scheme %v: batch[%d](%q) = %x, per-key %x",
						e.Scheme(), i, k, got[i], want)
				}
			}
		}
	})
}
