package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// benchFixture shares one encoder set and key corpus across the encode
// benchmarks.
var benchFixture struct {
	sync.Once
	encs map[Scheme]*Encoder
	keys [][]byte
	n    int // total corpus bytes
	err  error
}

func benchEncoders(b *testing.B) (map[Scheme]*Encoder, [][]byte, int) {
	b.Helper()
	benchFixture.Do(func() {
		rng := rand.New(rand.NewSource(1))
		samples := sampleKeys(rng, 2000)
		benchFixture.encs = map[Scheme]*Encoder{}
		for _, s := range Schemes {
			opt := Options{DictLimit: 4096, MaxPatternLen: 16}
			if s == DoubleChar {
				opt = Options{}
			}
			e, err := Build(s, samples, opt)
			if err != nil {
				benchFixture.err = err
				return
			}
			benchFixture.encs[s] = e
		}
		benchFixture.keys = sampleKeys(rng, 20000)
		for _, k := range benchFixture.keys {
			benchFixture.n += len(k)
		}
	})
	if benchFixture.err != nil {
		b.Fatal(benchFixture.err)
	}
	return benchFixture.encs, benchFixture.keys, benchFixture.n
}

// BenchmarkEncodeKernel measures the devirtualized single-key path: the
// concrete kernel captured at build time, reused destination buffer,
// 0 allocs/op.
func BenchmarkEncodeKernel(b *testing.B) {
	encs, keys, _ := benchEncoders(b)
	for _, s := range Schemes {
		b.Run(s.String(), func(b *testing.B) {
			e := encs[s]
			var buf []byte
			chars := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[i%len(keys)]
				out, _ := e.EncodeBits(buf, k)
				buf = out[:0]
				chars += len(k)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(chars), "ns/char")
		})
	}
}

// BenchmarkEncodeGeneric measures the interface-dispatch baseline the
// kernels replace (one Dictionary.Lookup call and one sub-slice per
// symbol) so the devirtualization win stays visible in one bench run.
func BenchmarkEncodeGeneric(b *testing.B) {
	encs, keys, _ := benchEncoders(b)
	for _, s := range Schemes {
		b.Run(s.String(), func(b *testing.B) {
			e := encs[s]
			var a appender
			var buf []byte
			chars := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[i%len(keys)]
				a.Reset(buf)
				e.appendEncodeGeneric(&a, k)
				out, _ := a.Finish()
				buf = out[:0]
				chars += len(k)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(chars), "ns/char")
		})
	}
}

// BenchmarkEncodeAll measures the parallel bulk path at 1 worker and at
// GOMAXPROCS workers; comparing the two runs gives the bulk scaling
// factor on the machine at hand.
func BenchmarkEncodeAll(b *testing.B) {
	encs, keys, chars := benchEncoders(b)
	procs := runtime.GOMAXPROCS(0)
	for _, s := range []Scheme{SingleChar, DoubleChar, ThreeGrams, FourGrams} {
		for _, workers := range []int{1, procs} {
			b.Run(fmt.Sprintf("%v/workers=%d", s, workers), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(workers)
				defer runtime.GOMAXPROCS(prev)
				e := encs[s]
				b.SetBytes(int64(chars))
				// allocs/op here is the pooling satellite's proof: it must
				// stay O(workers), never O(keys) or O(chunks).
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.EncodeAll(keys)
				}
			})
			if procs == 1 {
				break // identical run; skip the duplicate
			}
		}
	}
}
