package core

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
	"unsafe"

	"repro/internal/bitops"
	"repro/internal/dict"
)

// kernelCorpora returns the fuzz-style inputs the kernel differential
// tests run over: workload-shaped keys, arbitrary binary keys, and the
// adversarial edges (empty, all-0x00, all-0xFF, long runs).
func kernelCorpora(rng *rand.Rand) [][]byte {
	corpus := sampleKeys(rng, 1500)
	corpus = append(corpus, randomBinaryKeys(rng, 1500, 40)...)
	corpus = append(corpus,
		[]byte{},
		[]byte{0x00}, []byte{0xFF},
		bytes.Repeat([]byte{0x00}, 33),
		bytes.Repeat([]byte{0xFF}, 33),
		bytes.Repeat([]byte{0x00, 0xFF}, 40),
		[]byte("com.gmail@alice"),
	)
	return corpus
}

// referenceEncode is the devirtualization baseline: drive the reference
// BinarySearch dictionary through the Dictionary interface, one Lookup and
// one masked Append per symbol.
func referenceEncode(d dict.Dictionary, key []byte) ([]byte, int) {
	var a bitops.Appender
	a.Reset(nil)
	for pos := 0; pos < len(key); {
		code, n := d.Lookup(key[pos:])
		a.Append(code.Bits, uint(code.Len))
		pos += n
	}
	return a.Finish()
}

// TestKernelMatchesBinarySearchReference asserts, for every scheme, that
// the specialized encode kernel produces byte-identical output (and bit
// length) to an independently built BinarySearch dictionary driven through
// the interface reference loop on fuzz-style corpora.
func TestKernelMatchesBinarySearchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	encs := buildAll(t, nil)
	corpus := kernelCorpora(rng)
	for _, s := range Schemes {
		e := encs[s]
		ref, err := dict.NewBinarySearch(e.Entries())
		if err != nil {
			t.Fatalf("%v: reference build: %v", s, err)
		}
		for _, k := range corpus {
			want, wantBits := referenceEncode(ref, k)
			got, gotBits := e.EncodeBits(nil, k)
			if gotBits != wantBits || !bytes.Equal(got, want) {
				t.Fatalf("%v: kernel diverged from reference on %q:\n got %x (%d bits)\nwant %x (%d bits)",
					s, k, got, gotBits, want, wantBits)
			}
		}
	}
}

// TestKernelMatchesGenericLoop cross-checks each concrete kernel against
// the generic interface loop over the same dictionary structure (not just
// the BinarySearch reference), so a bug in a specialized Lookup that the
// kernel faithfully reproduces is still caught by the reference test above
// while this one isolates kernel-vs-loop differences.
func TestKernelMatchesGenericLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	encs := buildAll(t, nil)
	corpus := kernelCorpora(rng)
	for _, s := range Schemes {
		e := encs[s]
		for _, k := range corpus {
			var a appender
			a.Reset(nil)
			e.appendEncodeGeneric(&a, k)
			want, wantBits := a.Finish()
			got, gotBits := e.EncodeBits(nil, k)
			if gotBits != wantBits || !bytes.Equal(got, want) {
				t.Fatalf("%v: kernel diverged from generic loop on %q", s, k)
			}
		}
	}
}

// TestForcedBinarySearchKernelMatches runs the BinarySearch kernel (used
// by the dictionary-structure ablation) against its own interface loop.
func TestForcedBinarySearchKernelMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	samples := sampleKeys(rng, 800)
	e, err := Build(ThreeGrams, samples, Options{DictLimit: 1024, ForceBinarySearchDict: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.dict.(*dict.BinarySearch); !ok {
		t.Fatalf("forced dict is %T", e.dict)
	}
	for _, k := range kernelCorpora(rng) {
		want, wantBits := referenceEncode(e.dict, k)
		got, gotBits := e.EncodeBits(nil, k)
		if gotBits != wantBits || !bytes.Equal(got, want) {
			t.Fatalf("binary-search kernel diverged on %q", k)
		}
	}
}

// TestEncodeZeroAllocs guards the tentpole's allocation contract: with a
// reused destination buffer the single-key encode path performs zero
// allocations per operation, for every scheme.
func TestEncodeZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	encs := buildAll(t, nil)
	keys := sampleKeys(rng, 64)
	for _, s := range Schemes {
		e := encs[s]
		buf := make([]byte, 0, 256)
		// Warm up so the appender's backing store reaches steady state.
		for _, k := range keys {
			b, _ := e.EncodeBits(buf, k)
			buf = b[:0]
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			b, _ := e.EncodeBits(buf, keys[i%len(keys)])
			buf = b[:0]
			i++
		})
		if allocs != 0 {
			t.Errorf("%v: single-key encode allocates %.1f/op, want 0", s, allocs)
		}
	}
}

// TestEncodeAllMatchesSerial asserts the parallel bulk path is
// byte-identical to the serial encoder, across worker counts (including
// forced multi-worker sharding and the merge of per-worker buffers).
func TestEncodeAllMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	encs := buildAll(t, nil)
	keys := append(sampleKeys(rng, 3000), randomBinaryKeys(rng, 500, 24)...)
	keys = append(keys, []byte{})
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, s := range Schemes {
			e := encs[s]
			got := e.EncodeAll(keys)
			if len(got) != len(keys) {
				t.Fatalf("%v: EncodeAll returned %d results for %d keys", s, len(got), len(keys))
			}
			for i, k := range keys {
				want, _ := e.EncodeBits(nil, k)
				if !bytes.Equal(got[i], want) {
					t.Fatalf("%v (procs=%d): EncodeAll diverged on key %d %q", s, procs, i, k)
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
	// Empty input.
	if out := encs[SingleChar].EncodeAll(nil); len(out) != 0 {
		t.Fatal("EncodeAll(nil) returned results")
	}
}

// TestEncodeAllSharesBacking verifies the documented single-backing-buffer
// layout: results are contiguous slices of one array, in key order.
func TestEncodeAllSharesBacking(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	encs := buildAll(t, nil)
	keys := sampleKeys(rng, 600)
	out := encs[DoubleChar].EncodeAll(keys)
	var prev []byte
	for i, b := range out {
		if len(b) == 0 {
			continue
		}
		if prev != nil {
			end := uintptr(unsafe.Pointer(&prev[0])) + uintptr(len(prev))
			if uintptr(unsafe.Pointer(&b[0])) != end {
				t.Fatalf("result %d does not follow the previous one in the backing buffer", i)
			}
		}
		prev = b
	}
}
