package core

import (
	"fmt"

	"repro/internal/dict"
)

// Reassemble reconstructs an Encoder from a previously built dictionary's
// interval entries — the restore path of a persisted index. Build's two
// expensive phases (symbol selection over the sample, optimal code
// assignment) are skipped entirely: the entries already carry their
// boundaries, symbol lengths, and codes, so only the scheme's lookup
// structure is rebuilt over them (the DictBuild phase, linear in the
// dictionary size). opt must carry the same structural options the
// original Build used (DoubleCharAlphabet, ForceBinarySearchDict);
// everything else in Options only shapes symbol selection and is ignored.
//
// A reassembled encoder is encode-identical to the original: identical
// entries produce identical kernels, so every key maps to the same bits —
// which is what lets a snapshot's encoded runs be loaded back verbatim.
// The entries slice is retained; callers hand over ownership.
func Reassemble(scheme Scheme, opt Options, entries []dict.Entry) (*Encoder, error) {
	opt.fill()
	e := &Encoder{scheme: scheme, entries: entries, structOpt: structuralOptions(opt)}
	switch scheme {
	case SingleChar:
		e.lookAhead = 1
	case DoubleChar:
		e.lookAhead = 2
	case ThreeGrams:
		e.lookAhead = 3
	case FourGrams:
		e.lookAhead = 4
	case ALM, ALMImproved:
		// Arbitrary-length symbols: no look-ahead, no batch kernel.
	default:
		return nil, fmt.Errorf("core: unknown scheme %d", int(scheme))
	}
	e.maxBoundary = 1
	for _, en := range entries {
		if len(en.Boundary) > e.maxBoundary {
			e.maxBoundary = len(en.Boundary)
		}
	}
	var err error
	e.dict, err = buildDictionary(scheme, opt, entries)
	if err != nil {
		return nil, err
	}
	e.kern, _ = e.dict.(dict.Kernel)
	e.batch, _ = e.dict.(dict.BatchKernel)
	e.stats.Entries = len(entries)
	return e, nil
}
