package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dict"
)

// TestReassembleEncodeIdentical pins the restore-path contract: an encoder
// reassembled from a built encoder's entries produces byte-identical
// encodings for every scheme, on both the point and the batch kernels.
func TestReassembleEncodeIdentical(t *testing.T) {
	encs := buildAll(t, nil)
	rng := rand.New(rand.NewSource(9))
	keys := sampleKeys(rng, 500)
	for _, s := range Schemes {
		orig := encs[s]
		opt := Options{DictLimit: 1024, MaxPatternLen: 16}
		if s == DoubleChar {
			opt = Options{}
		}
		// Hand Reassemble a deep copy: a snapshot restore decodes entries
		// from bytes and never aliases the original's memory.
		entries := make([]dict.Entry, len(orig.Entries()))
		for i, en := range orig.Entries() {
			entries[i] = dict.Entry{
				Boundary:  append([]byte(nil), en.Boundary...),
				SymbolLen: en.SymbolLen,
				Code:      en.Code,
			}
		}
		re, err := Reassemble(s, opt, entries)
		if err != nil {
			t.Fatalf("%v: Reassemble: %v", s, err)
		}
		if re.NumEntries() != orig.NumEntries() {
			t.Fatalf("%v: reassembled dict has %d entries, want %d", s, re.NumEntries(), orig.NumEntries())
		}
		a, b := orig.Clone(), re.Clone()
		for _, k := range keys {
			if got, want := b.Encode(k), a.Encode(k); !bytes.Equal(got, want) {
				t.Fatalf("%v: Encode(%q) diverged: %x vs %x", s, k, got, want)
			}
		}
		gotAll, wantAll := re.EncodeAll(keys), orig.EncodeAll(keys)
		for i := range keys {
			if !bytes.Equal(gotAll[i], wantAll[i]) {
				t.Fatalf("%v: EncodeAll(%q) diverged", s, keys[i])
			}
		}
	}
}
