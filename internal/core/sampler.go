package core

import "math/rand"

// Sampler implements the paper's Section 5 integration path for initially
// empty search trees: "If the search tree is initially empty, HOPE samples
// keys as the DBMS inserts them into the tree. It then rebuilds the search
// tree using the compressed keys once it sees enough samples." The sampler
// is a classic reservoir: every key ever Added has equal probability of
// being in the sample, so early skew does not bias the dictionary.
type Sampler struct {
	capacity int
	seen     int64
	rng      *rand.Rand
	keys     [][]byte
}

// NewSampler returns a reservoir holding at most capacity keys. A sample
// between 10K and 100K keys saturates every scheme's compression rate
// (paper Appendix A).
func NewSampler(capacity int, seed int64) *Sampler {
	if capacity <= 0 {
		capacity = 10000
	}
	return &Sampler{capacity: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Add offers a key to the reservoir; the bytes are copied.
func (s *Sampler) Add(key []byte) {
	s.seen++
	if len(s.keys) < s.capacity {
		s.keys = append(s.keys, append([]byte(nil), key...))
		return
	}
	if j := s.rng.Int63n(s.seen); j < int64(s.capacity) {
		s.keys[j] = append(s.keys[j][:0], key...)
	}
}

// Seen returns how many keys have been offered.
func (s *Sampler) Seen() int64 { return s.seen }

// Len returns the current reservoir size.
func (s *Sampler) Len() int { return len(s.keys) }

// Samples returns the reservoir contents (read-only view).
func (s *Sampler) Samples() [][]byte { return s.keys }

// Snapshot returns a deep copy of the reservoir, safe to hand to a
// background dictionary build while the caller keeps Adding (under its own
// synchronization — the Sampler itself is not goroutine-safe).
func (s *Sampler) Snapshot() [][]byte {
	out := make([][]byte, len(s.keys))
	for i, k := range s.keys {
		out[i] = append([]byte(nil), k...)
	}
	return out
}

// Reset empties the reservoir and the seen counter, keeping the capacity
// and the RNG stream. The adaptive lifecycle resets at every dictionary
// cutover so the next rebuild reflects only post-cutover traffic.
func (s *Sampler) Reset() {
	s.keys = s.keys[:0]
	s.seen = 0
}

// Build runs HOPE's build phase over the reservoir.
func (s *Sampler) Build(scheme Scheme, opt Options) (*Encoder, error) {
	return Build(scheme, s.keys, opt)
}
