package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestSamplerFillsThenMaintainsCapacity(t *testing.T) {
	s := NewSampler(100, 1)
	for i := 0; i < 1000; i++ {
		s.Add([]byte(fmt.Sprintf("key-%04d", i)))
	}
	if s.Len() != 100 {
		t.Fatalf("reservoir size %d", s.Len())
	}
	if s.Seen() != 1000 {
		t.Fatalf("seen %d", s.Seen())
	}
}

func TestSamplerCopiesKeys(t *testing.T) {
	s := NewSampler(4, 1)
	k := []byte("mutable")
	s.Add(k)
	k[0] = 'X'
	if string(s.Samples()[0]) != "mutable" {
		t.Fatal("sampler aliased caller storage")
	}
}

// Reservoir property: every offered key lands in the sample with equal
// probability, regardless of arrival position.
func TestSamplerUniformity(t *testing.T) {
	const n, k, trials = 500, 50, 400
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		s := NewSampler(k, int64(trial))
		for i := 0; i < n; i++ {
			s.Add([]byte{byte(i >> 8), byte(i)})
		}
		for _, key := range s.Samples() {
			counts[int(key[0])<<8|int(key[1])]++
		}
	}
	expected := float64(trials) * k / n // 40 per position
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > expected*0.5 {
			t.Fatalf("position %d sampled %d times, expected ~%.0f", i, c, expected)
		}
	}
}

// The paper's empty-tree integration flow: accumulate inserts in a
// reservoir, build after a threshold, re-encode, and verify semantics
// carry over to the compressed tree.
func TestEmptyTreeIntegrationFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSampler(500, 2)
	incoming := sampleKeys(rng, 5000)
	staging := map[string]uint64{} // the uncompressed tree stand-in
	for i, k := range incoming {
		staging[string(k)] = uint64(i)
		s.Add(k)
	}
	enc, err := s.Build(DoubleChar, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild: re-encode every staged key; lookups must keep working and
	// order must be preserved through the rebuild.
	rebuilt := map[string]uint64{}
	for k, v := range staging {
		rebuilt[string(enc.Encode([]byte(k)))] = v
	}
	for k, v := range staging {
		got, ok := rebuilt[string(enc.Encode([]byte(k)))]
		if !ok || got != v {
			t.Fatalf("lost %q through rebuild", k)
		}
	}
	if cpr := enc.CompressionRate(incoming); cpr < 1.5 {
		t.Fatalf("reservoir-built dictionary compresses poorly: %.2f", cpr)
	}
}

// Determinism: a fixed seed and input stream must produce an identical
// reservoir — the adaptive lifecycle relies on this for reproducible
// dictionary rebuilds in tests and benchmarks.
func TestSamplerDeterministic(t *testing.T) {
	build := func() [][]byte {
		s := NewSampler(64, 77)
		for i := 0; i < 5000; i++ {
			s.Add([]byte(fmt.Sprintf("key-%05d", i*13%5000)))
		}
		return s.Snapshot()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("reservoir sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("slot %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

// Chi-square smoke test for uniform inclusion: over many trials, the
// per-position inclusion counts must be consistent with the uniform k/n
// inclusion probability a correct reservoir guarantees. The statistic is
// compared against a generous critical value so the test only catches
// gross bias (e.g. favoring early or late arrivals), not RNG noise.
func TestSamplerInclusionChiSquare(t *testing.T) {
	const n, k, trials = 200, 40, 500
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		s := NewSampler(k, int64(1000+trial))
		for i := 0; i < n; i++ {
			s.Add([]byte{byte(i >> 8), byte(i)})
		}
		for _, key := range s.Samples() {
			counts[int(key[0])<<8|int(key[1])]++
		}
	}
	expected := float64(trials) * k / n // 100 inclusions per position
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 199 degrees of freedom: mean 199, stddev ~20. Accept within ±6σ so
	// only a structurally biased reservoir fails.
	if chi2 > 199+6*20 || chi2 < 199-6*20 {
		t.Fatalf("chi-square statistic %.1f outside [79, 319] for df=199", chi2)
	}
}

func TestSamplerSnapshotAndReset(t *testing.T) {
	s := NewSampler(8, 3)
	for i := 0; i < 100; i++ {
		s.Add([]byte{byte(i)})
	}
	snap := s.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	// Snapshot must not alias reservoir storage.
	snap[0][0] ^= 0xff
	if s.Samples()[0][0] == snap[0][0] {
		t.Fatal("snapshot aliases reservoir storage")
	}
	s.Reset()
	if s.Len() != 0 || s.Seen() != 0 {
		t.Fatal("Reset left state behind")
	}
	s.Add([]byte("after"))
	if s.Len() != 1 || s.Seen() != 1 {
		t.Fatal("sampler unusable after Reset")
	}
}

func TestSamplerDefaultCapacity(t *testing.T) {
	s := NewSampler(0, 1)
	for i := 0; i < 100; i++ {
		s.Add([]byte{byte(i)})
	}
	if s.Len() != 100 {
		t.Fatal("default capacity should accept all 100")
	}
}

func TestRangeEncodingOptionEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	samples := sampleKeys(rng, 800)
	for _, scheme := range []Scheme{SingleChar, ThreeGrams} {
		e, err := Build(scheme, samples, Options{DictLimit: 1024, UseRangeEncoding: true})
		if err != nil {
			t.Fatal(err)
		}
		// Order preservation and losslessness hold for range codes too.
		keys := sampleKeys(rng, 1500)
		uniq := map[string]bool{}
		var sorted [][]byte
		for _, k := range keys {
			if !uniq[string(k)] {
				uniq[string(k)] = true
				sorted = append(sorted, k)
			}
		}
		sortBytes(sorted)
		if err := e.CheckOrderPreserving(sorted); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		d, err := NewDecoder(e)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys[:300] {
			out, bits := e.EncodeBits(nil, k)
			back, err := d.Decode(out, bits)
			if err != nil || !bytes.Equal(back, k) {
				t.Fatalf("%v: roundtrip failed for %q", scheme, k)
			}
		}
		// The paper's trade-off: range encoding compresses worse than
		// Hu-Tucker.
		ht, err := Build(scheme, samples, Options{DictLimit: 1024})
		if err != nil {
			t.Fatal(err)
		}
		if e.CompressionRate(keys) > ht.CompressionRate(keys)+1e-9 {
			t.Fatalf("%v: range encoding beat Hu-Tucker", scheme)
		}
	}
}

func sortBytes(keys [][]byte) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && bytes.Compare(keys[j-1], keys[j]) > 0; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
}
