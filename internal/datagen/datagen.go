// Package datagen synthesizes the paper's three string-key datasets. The
// originals (25M real email addresses, 14M Wikipedia titles, 25M crawled
// URLs) are not redistributable and the build is offline, so deterministic
// generators reproduce their distributional shape instead — the properties
// HOPE actually exploits: Zipfian provider domains in host-reversed
// emails, Zipfian English word composition in titles, and heavy shared
// scheme/host/path prefixes in URLs. Average key lengths match the paper
// (about 22, 21 and 104 bytes). See DESIGN.md, Substitutions.
package datagen

import (
	"fmt"
	"math/rand"
)

// Kind selects a dataset.
type Kind int

const (
	// Email is host-reversed email addresses ("com.gmail@name27").
	Email Kind = iota
	// Wiki is Wikipedia-style article titles ("Battle_of_River_Plate").
	Wiki
	// URL is crawled-web-style URLs with long shared prefixes.
	URL
)

func (k Kind) String() string {
	switch k {
	case Email:
		return "email"
	case Wiki:
		return "wiki"
	case URL:
		return "url"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists all datasets.
var Kinds = []Kind{Email, Wiki, URL}

// ParseKind resolves a dataset name.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("datagen: unknown dataset %q (want email, wiki or url)", s)
}

// Generate returns n unique keys of the given kind, deterministically from
// the seed, in generation (i.e. effectively random) order.
func Generate(kind Kind, n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	g := newGen(rng)
	seen := make(map[string]bool, n)
	out := make([][]byte, 0, n)
	for len(out) < n {
		var k string
		switch kind {
		case Email:
			k = g.email()
		case Wiki:
			k = g.wiki()
		default:
			k = g.url()
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, []byte(k))
		}
	}
	return out
}

// AvgLen returns the mean key length in bytes.
func AvgLen(keys [][]byte) float64 {
	if len(keys) == 0 {
		return 0
	}
	total := 0
	for _, k := range keys {
		total += len(k)
	}
	return float64(total) / float64(len(keys))
}

// SplitEmailByProvider partitions email keys into the paper's Appendix C
// halves: Email-A holds the gmail and yahoo accounts, Email-B the rest.
func SplitEmailByProvider(keys [][]byte) (a, b [][]byte) {
	for _, k := range keys {
		s := string(k)
		if hasAnyPrefix(s, "com.gmail@", "com.yahoo@") {
			a = append(a, k)
		} else {
			b = append(b, k)
		}
	}
	return a, b
}

// DriftStream synthesizes a key stream whose distribution shifts from one
// population to another — the workload that erodes a frozen dictionary's
// compression rate and that the adaptive lifecycle exists to absorb. The
// stream has n keys; a draw at stream position p comes from shifted with
// probability 0 before rampStart·n, 1 after rampEnd·n, ramping linearly in
// between. Draws are without replacement within each pool (shuffled
// copies), so a stream over unique pools stays unique; a pool that runs
// dry hands its remaining draws to the other. Deterministic in seed.
//
// It replaces the ad-hoc two-phase split previously hand-rolled from
// SplitEmailByProvider: the same (base, shifted) halves plug in directly,
// but the mix ramp is explicit and shared by the streamingindex example,
// the drift benchmark figure, and the lifecycle tests.
func DriftStream(base, shifted [][]byte, n int, rampStart, rampEnd float64, seed int64) [][]byte {
	if n <= 0 {
		return nil
	}
	if rampStart < 0 {
		rampStart = 0
	}
	if rampEnd < rampStart {
		rampEnd = rampStart
	}
	rng := rand.New(rand.NewSource(seed))
	bq := shuffled(base, rng)
	sq := shuffled(shifted, rng)
	out := make([][]byte, 0, n)
	lo, hi := rampStart*float64(n), rampEnd*float64(n)
	for i := 0; len(out) < n; i++ {
		if len(bq) == 0 && len(sq) == 0 {
			break // both pools dry: the stream is as long as it can be
		}
		var pShift float64
		switch {
		case float64(i) < lo:
			pShift = 0
		case float64(i) >= hi:
			pShift = 1
		default:
			pShift = (float64(i) - lo) / (hi - lo)
		}
		fromShift := rng.Float64() < pShift
		if fromShift && len(sq) == 0 {
			fromShift = false
		}
		if !fromShift && len(bq) == 0 {
			fromShift = true
		}
		if fromShift {
			out = append(out, sq[len(sq)-1])
			sq = sq[:len(sq)-1]
		} else {
			out = append(out, bq[len(bq)-1])
			bq = bq[:len(bq)-1]
		}
	}
	return out
}

// shuffled returns a shuffled shallow copy (key bytes are shared).
func shuffled(keys [][]byte, rng *rand.Rand) [][]byte {
	out := make([][]byte, len(keys))
	copy(out, keys)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}

// gen draws words and names Zipf-style so a few patterns dominate, the
// skew entropy coding exploits.
type gen struct {
	rng       *rand.Rand
	wordZipf  *rand.Zipf
	nameZipf  *rand.Zipf
	hostZipf  *rand.Zipf
	domZipf   *rand.Zipf
	surnZipf  *rand.Zipf
	topicZipf *rand.Zipf
}

func newGen(rng *rand.Rand) *gen {
	return &gen{
		rng:       rng,
		wordZipf:  rand.NewZipf(rng, 1.2, 1, uint64(len(words)-1)),
		nameZipf:  rand.NewZipf(rng, 1.1, 1, uint64(len(firstNames)-1)),
		surnZipf:  rand.NewZipf(rng, 1.1, 1, uint64(len(surnames)-1)),
		domZipf:   rand.NewZipf(rng, 1.3, 1, uint64(len(emailDomains)-1)),
		hostZipf:  rand.NewZipf(rng, 1.2, 1, uint64(len(webHosts)-1)),
		topicZipf: rand.NewZipf(rng, 1.1, 1, uint64(len(topics)-1)),
	}
}

func (g *gen) word() string    { return words[g.wordZipf.Uint64()] }
func (g *gen) name() string    { return firstNames[g.nameZipf.Uint64()] }
func (g *gen) surname() string { return surnames[g.surnZipf.Uint64()] }

// email produces a host-reversed address, e.g. "com.gmail@alice.walker73".
func (g *gen) email() string {
	dom := emailDomains[g.domZipf.Uint64()]
	var local string
	switch g.rng.Intn(5) {
	case 0:
		local = g.name() + "." + g.surname()
	case 1:
		local = g.name() + g.surname()
	case 2:
		local = g.name() + fmt.Sprintf("%d", g.rng.Intn(1000))
	case 3:
		local = g.surname() + "." + string(g.name()[0]) + fmt.Sprintf("%02d", g.rng.Intn(100))
	default:
		local = g.word() + g.word() + fmt.Sprintf("%d", g.rng.Intn(100))
	}
	return dom + "@" + local
}

// wiki produces an underscore-joined article title.
func (g *gen) wiki() string {
	n := 1 + g.rng.Intn(4)
	title := capitalize(g.topicWord())
	for i := 1; i < n; i++ {
		w := g.topicWord()
		if g.rng.Intn(3) == 0 {
			w = capitalize(w)
		}
		title += "_" + w
	}
	switch g.rng.Intn(12) {
	case 0:
		title += fmt.Sprintf("_(%d)", 1700+g.rng.Intn(325))
	case 1:
		title += "_(disambiguation)"
	case 2:
		title = fmt.Sprintf("List_of_%s", title)
	}
	return title
}

func (g *gen) topicWord() string {
	if g.rng.Intn(3) == 0 {
		return topics[g.topicZipf.Uint64()]
	}
	return g.word()
}

// url produces a crawled-web-style URL averaging about 104 bytes, with
// heavy host and path-prefix sharing.
func (g *gen) url() string {
	scheme := "http://"
	if g.rng.Intn(4) == 0 {
		scheme = "https://"
	}
	host := webHosts[g.hostZipf.Uint64()]
	if g.rng.Intn(3) == 0 {
		host = "www." + host
	}
	var path string
	switch g.rng.Intn(4) {
	case 0: // article archive: shared date prefixes, long hyphenated slugs
		path = fmt.Sprintf("/%s/%d/%02d/%02d/%s-%s-%s-%s-%s.html",
			sections[g.rng.Intn(len(sections))],
			2001+g.rng.Intn(7), 1+g.rng.Intn(12), 1+g.rng.Intn(28),
			g.word(), g.word(), g.word(), g.word(), g.word())
	case 1: // wiki-style with category chains
		path = "/wiki/index.php/Category:" + capitalize(g.word()) + "_" +
			g.word() + "/" + capitalize(g.word()) + "_" + g.word() + "_" + g.word()
	case 2: // forum threads: deep numeric ids
		path = fmt.Sprintf("/forum/viewtopic.php/board/%s-%s/thread/%d/page/%d",
			g.word(), g.word(), g.rng.Intn(1000000), 1+g.rng.Intn(40))
	default: // product listings with query strings
		path = fmt.Sprintf("/catalog/%s/%s-%s/item%06d?ref=%s&session=%08x%08x",
			sections[g.rng.Intn(len(sections))], g.word(), g.word(),
			g.rng.Intn(1000000), g.word(), g.rng.Uint32(), g.rng.Uint32())
	}
	// Tracking suffixes on half the URLs, as crawls exhibit; these push
	// the average toward the paper's 104 bytes.
	if g.rng.Intn(2) == 0 {
		path += fmt.Sprintf("&utm_source=%s&utm_medium=%s&utm_campaign=%s-%s-%s",
			g.word(), g.word(), g.word(), g.word(), g.word())
	}
	return scheme + host + path
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}
