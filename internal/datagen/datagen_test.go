package datagen

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range Kinds {
		a := Generate(kind, 500, 42)
		b := Generate(kind, 500, 42)
		if len(a) != 500 || len(b) != 500 {
			t.Fatalf("%v: wrong count", kind)
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("%v: non-deterministic at %d", kind, i)
			}
		}
		c := Generate(kind, 500, 43)
		same := 0
		for i := range a {
			if bytes.Equal(a[i], c[i]) {
				same++
			}
		}
		if same == 500 {
			t.Fatalf("%v: seed has no effect", kind)
		}
	}
}

func TestGenerateUnique(t *testing.T) {
	for _, kind := range Kinds {
		keys := Generate(kind, 2000, 7)
		seen := map[string]bool{}
		for _, k := range keys {
			if seen[string(k)] {
				t.Fatalf("%v: duplicate key %q", kind, k)
			}
			seen[string(k)] = true
		}
	}
}

// Average lengths should be in the neighborhood of the paper's datasets
// (22, 21, 104 bytes) — generous bands, the shape matters, not the digit.
func TestAvgLengthsMatchPaper(t *testing.T) {
	cases := []struct {
		kind     Kind
		lo, hi   float64
		paperAvg float64
	}{
		{Email, 16, 30, 22},
		{Wiki, 12, 30, 21},
		{URL, 80, 130, 104},
	}
	for _, c := range cases {
		keys := Generate(c.kind, 3000, 1)
		avg := AvgLen(keys)
		if avg < c.lo || avg > c.hi {
			t.Errorf("%v: avg len %.1f outside [%v, %v] (paper: %v)",
				c.kind, avg, c.lo, c.hi, c.paperAvg)
		}
	}
}

func TestEmailShape(t *testing.T) {
	keys := Generate(Email, 2000, 3)
	gmail := 0
	for _, k := range keys {
		s := string(k)
		if !strings.Contains(s, "@") {
			t.Fatalf("email without @: %q", s)
		}
		// Host-reversed: starts with a TLD segment.
		if !strings.Contains(s[:strings.Index(s, "@")], ".") {
			t.Fatalf("host not reversed-dotted: %q", s)
		}
		if strings.HasPrefix(s, "com.gmail@") {
			gmail++
		}
	}
	// Zipfian providers: the top domain should dominate.
	if gmail < len(keys)/10 {
		t.Fatalf("gmail share too small for Zipf: %d/%d", gmail, len(keys))
	}
}

func TestURLShape(t *testing.T) {
	keys := Generate(URL, 2000, 4)
	for _, k := range keys {
		s := string(k)
		if !strings.HasPrefix(s, "http://") && !strings.HasPrefix(s, "https://") {
			t.Fatalf("bad scheme: %q", s)
		}
	}
	// Shared prefixes: sorting must yield long average LCP between
	// neighbors (the property Prefix B+tree and tries exploit).
	sorted := make([][]byte, len(keys))
	copy(sorted, keys)
	sortBytes(sorted)
	var lcpSum, n int
	for i := 1; i < len(sorted); i++ {
		lcpSum += lcpLen(sorted[i-1], sorted[i])
		n++
	}
	if avg := float64(lcpSum) / float64(n); avg < 10 {
		t.Fatalf("URL neighbor LCP %.1f too small; prefixes not shared", avg)
	}
}

func TestWikiShape(t *testing.T) {
	keys := Generate(Wiki, 1000, 5)
	for _, k := range keys {
		s := string(k)
		if s == "" || s[0] < 'A' || s[0] > 'Z' {
			t.Fatalf("title not capitalized: %q", s)
		}
		if strings.Contains(s, " ") {
			t.Fatalf("title contains space (wiki dumps use underscores): %q", s)
		}
	}
}

func TestSplitEmailByProvider(t *testing.T) {
	keys := Generate(Email, 3000, 6)
	a, b := SplitEmailByProvider(keys)
	if len(a)+len(b) != len(keys) {
		t.Fatal("split lost keys")
	}
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("degenerate split: %d/%d", len(a), len(b))
	}
	for _, k := range a {
		if !hasAnyPrefix(string(k), "com.gmail@", "com.yahoo@") {
			t.Fatalf("misclassified %q", k)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind string")
	}
}

func TestAvgLenEmpty(t *testing.T) {
	if AvgLen(nil) != 0 {
		t.Fatal("empty avg")
	}
}

func sortBytes(keys [][]byte) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && bytes.Compare(keys[j-1], keys[j]) > 0; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
}

func lcpLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func TestDriftStreamDeterministicAndComplete(t *testing.T) {
	keys := Generate(Email, 4000, 7)
	base, shifted := SplitEmailByProvider(keys)
	n := len(keys)
	a := DriftStream(base, shifted, n, 0.3, 0.7, 11)
	b := DriftStream(base, shifted, n, 0.3, 0.7, 11)
	if len(a) != n {
		t.Fatalf("stream length %d want %d", len(a), n)
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	// Without replacement over unique pools: the stream is a permutation.
	seen := map[string]bool{}
	for _, k := range a {
		if seen[string(k)] {
			t.Fatalf("duplicate %q", k)
		}
		seen[string(k)] = true
	}
	if c := DriftStream(base, shifted, n, 0.3, 0.7, 12); streamEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

func streamEqual(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// The shifted fraction must ramp: ~0 before rampStart, ~1 after rampEnd,
// monotone-ish in between.
func TestDriftStreamRamp(t *testing.T) {
	keys := Generate(Email, 6000, 8)
	base, shifted := SplitEmailByProvider(keys)
	isShifted := map[string]bool{}
	for _, k := range shifted {
		isShifted[string(k)] = true
	}
	n := 5000
	s := DriftStream(base, shifted, n, 0.4, 0.6, 21)
	frac := func(lo, hi int) float64 {
		c := 0
		for _, k := range s[lo:hi] {
			if isShifted[string(k)] {
				c++
			}
		}
		return float64(c) / float64(hi-lo)
	}
	if f := frac(0, n*3/10); f > 0.05 {
		t.Fatalf("pre-ramp shifted fraction %.2f", f)
	}
	if f := frac(n*7/10, n); f < 0.95 {
		t.Fatalf("post-ramp shifted fraction %.2f", f)
	}
	mid := frac(n*45/100, n*55/100)
	if mid < 0.2 || mid > 0.8 {
		t.Fatalf("mid-ramp shifted fraction %.2f", mid)
	}
}

// Degenerate parameters must not panic or stall: empty pools, zero n,
// inverted ramp.
func TestDriftStreamEdgeCases(t *testing.T) {
	keys := Generate(Email, 200, 9)
	base, shifted := SplitEmailByProvider(keys)
	if got := DriftStream(base, shifted, 0, 0.2, 0.8, 1); got != nil {
		t.Fatal("n=0 should yield nil")
	}
	// Inverted ramp clamps to a step at rampStart.
	s := DriftStream(base, shifted, 100, 0.5, 0.2, 1)
	if len(s) != 100 {
		t.Fatalf("inverted ramp length %d", len(s))
	}
	// Only one pool: the stream drains it regardless of the ramp.
	s = DriftStream(base, nil, len(base), 0, 1, 1)
	if len(s) != len(base) {
		t.Fatalf("base-only stream %d want %d", len(s), len(base))
	}
	// n beyond both pools: stream stops when dry.
	s = DriftStream(base, shifted, len(keys)+500, 0.2, 0.8, 1)
	if len(s) != len(keys) {
		t.Fatalf("overlong stream %d want %d", len(s), len(keys))
	}
}
