package datagen

// Embedded vocabularies for the synthetic datasets. Ordering matters: the
// Zipf samplers draw low indexes most often, so each list is roughly
// frequency-ordered.

var emailDomains = []string{
	"com.gmail", "com.yahoo", "com.hotmail", "com.outlook", "com.aol",
	"com.icloud", "com.qq", "com.163", "ru.mail", "ru.yandex",
	"com.live", "com.msn", "de.gmx", "de.web", "com.comcast",
	"net.verizon", "com.att", "fr.orange", "fr.free", "uk.co.btinternet",
	"com.rediffmail", "in.co.rediff", "com.protonmail", "com.zoho",
	"edu.cmu.cs", "edu.mit", "edu.stanford", "com.ibm", "com.oracle",
	"org.apache", "io.github", "com.fastmail",
}

var webHosts = []string{
	"news.bbc.co.uk", "en.wikipedia.org", "www.amazon.com", "blogs.msdn.com",
	"forums.gentoo.org", "stackoverflow.com", "www.nytimes.com",
	"sports.espn.go.com", "archive.org", "www.flickr.com",
	"community.livejournal.com", "www.imdb.com", "slashdot.org",
	"www.guardian.co.uk", "edition.cnn.com", "www.reddit.com",
	"groups.google.com", "lists.debian.org", "www.gutenberg.org",
	"travel.yahoo.com", "maps.google.com", "www.weather.com",
	"wiki.openstreetmap.org", "bugs.kde.org", "sourceforge.net",
	"www.nationalgeographic.com", "catalog.loc.gov", "openlibrary.org",
}

var sections = []string{
	"news", "sports", "business", "technology", "science", "health",
	"politics", "entertainment", "travel", "opinion", "world", "local",
	"culture", "education", "environment",
}

var firstNames = []string{
	"james", "mary", "john", "patricia", "robert", "jennifer", "michael",
	"linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "chris",
	"nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
	"mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
	"emily", "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy",
	"kevin", "carol", "brian", "amanda", "george", "melissa", "edward",
	"deborah", "ronald", "stephanie", "timothy", "rebecca", "jason",
	"sharon", "jeffrey", "laura", "ryan", "cynthia", "jacob", "kathleen",
	"gary", "amy", "nicholas", "shirley", "eric", "angela", "jonathan",
	"helen", "stephen", "anna", "larry", "brenda", "justin", "pamela",
	"scott", "nicole", "brandon", "emma", "benjamin", "samantha", "wei",
	"ming", "hiroshi", "yuki", "ivan", "olga", "pierre", "marie", "hans",
	"greta", "raj", "priya", "ahmed", "fatima", "carlos", "sofia",
}

var surnames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
	"lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
	"ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
	"wright", "scott", "torres", "nguyen", "hill", "flores", "green",
	"adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
	"carter", "roberts", "chen", "zhang", "wang", "kumar", "singh",
	"tanaka", "suzuki", "mueller", "schmidt", "ivanov", "petrov",
	"kowalski", "rossi", "ferrari", "silva", "santos", "kim", "park",
}

var words = []string{
	"the", "time", "world", "life", "history", "day", "house", "war",
	"water", "music", "city", "book", "school", "state", "family", "story",
	"night", "game", "river", "country", "song", "film", "church", "road",
	"king", "army", "club", "party", "island", "light", "land", "century",
	"station", "field", "company", "league", "college", "south", "north",
	"east", "west", "national", "american", "british", "french", "german",
	"great", "little", "old", "new", "first", "second", "grand", "royal",
	"saint", "lake", "mountain", "valley", "forest", "bridge", "castle",
	"tower", "garden", "park", "street", "market", "harbor", "port",
	"battle", "treaty", "empire", "republic", "union", "federation",
	"district", "province", "county", "village", "town", "museum",
	"library", "theater", "opera", "symphony", "festival", "championship",
	"olympic", "season", "series", "episode", "album", "record", "single",
	"band", "orchestra", "player", "coach", "team", "match", "final",
	"science", "physics", "chemistry", "biology", "mathematics", "computer",
	"engine", "machine", "system", "network", "data", "index", "query",
	"storage", "memory", "compression", "encoding", "database", "server",
	"protocol", "algorithm", "structure", "model", "theory", "language",
	"culture", "society", "economy", "industry", "railway", "airport",
	"football", "baseball", "basketball", "cricket", "tennis", "golf",
	"winter", "summer", "spring", "autumn", "january", "march", "august",
	"october", "december", "europe", "africa", "asia", "america",
	"australia", "pacific", "atlantic", "arctic", "china", "japan",
	"india", "france", "germany", "italy", "spain", "russia", "brazil",
	"canada", "mexico", "egypt", "greece", "rome", "london", "paris",
	"berlin", "tokyo", "delhi", "sydney", "moscow", "dublin", "vienna",
	"art", "painting", "sculpture", "poetry", "novel", "author", "writer",
	"artist", "painter", "composer", "director", "actor", "singer",
	"president", "minister", "governor", "senator", "mayor", "judge",
	"doctor", "professor", "teacher", "student", "engineer", "pilot",
	"captain", "general", "colonel", "admiral", "bishop", "pope",
	"red", "blue", "green", "white", "black", "golden", "silver",
	"railway_station", "high_school", "air_force", "world_cup",
}

var topics = []string{
	"battle", "history", "list", "railway", "station", "church", "river",
	"school", "county", "district", "album", "film", "song", "footballer",
	"election", "championship", "university", "museum", "bridge", "castle",
	"species", "genus", "mountain", "lake", "island", "village", "town",
	"airport", "stadium", "cathedral", "monastery", "dynasty", "kingdom",
}
