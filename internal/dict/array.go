package dict

import (
	"fmt"

	"repro/internal/hutucker"
)

// SingleCharArray is the Single-Char dictionary: a 256-entry code table
// indexed directly by the next source byte (paper Section 4.2: "A lookup
// in an array-based dictionary ... requires only a single memory access
// and the array fits in CPU cache"). Symbols are single bytes, so the
// boundary and symbol are implied by the array offset.
type SingleCharArray struct {
	codes [256]hutucker.Code
	// maxLen is the longest code in the table; the batch kernel uses it to
	// bound how many codes fit the 64-bit staging word so a whole 8-symbol
	// run can skip the per-symbol overflow check (see AppendEncodeBatch).
	maxLen uint
	useAsm bool // amd64 assembly kernel enabled (see kernel_asm_amd64.go)

	// pairBits/pairLens fuse every two-byte source combination into one
	// precomputed code (pairBits[c1<<8|c2] = bits of c1 followed by bits
	// of c2, pairLens the summed length). The batch kernel then issues
	// one table load and one staging step per two source bytes, halving
	// the serial shift-or dependency chain that dominates encode. Built
	// only when 2*maxLen fits the 64-bit staging word; 576 KiB.
	pairBits []uint64
	pairLens []uint8
}

// NewSingleCharArray builds the dictionary from exactly 256 entries whose
// boundaries are the single bytes 0x00..0xFF in order.
func NewSingleCharArray(entries []Entry) (*SingleCharArray, error) {
	if len(entries) != 256 {
		return nil, fmt.Errorf("dict: Single-Char needs 256 entries, got %d", len(entries))
	}
	d := &SingleCharArray{}
	for i, e := range entries {
		if len(e.Boundary) != 1 || e.Boundary[0] != byte(i) || e.SymbolLen != 1 {
			return nil, fmt.Errorf("dict: entry %d is not the single byte %#02x", i, i)
		}
		if err := checkCode(e.Code); err != nil {
			return nil, fmt.Errorf("dict: entry %d: %w", i, err)
		}
		d.codes[i] = e.Code
		if l := uint(e.Code.Len); l > d.maxLen {
			d.maxLen = l
		}
	}
	d.useAsm = asmKernels
	if d.maxLen <= 32 {
		d.pairBits = make([]uint64, 1<<16)
		d.pairLens = make([]uint8, 1<<16)
		for a := 0; a < 256; a++ {
			ca := d.codes[a]
			for b := 0; b < 256; b++ {
				cb := d.codes[b]
				d.pairBits[a<<8|b] = ca.Bits<<uint(cb.Len) | cb.Bits
				d.pairLens[a<<8|b] = ca.Len + cb.Len
			}
		}
	}
	return d, nil
}

// Lookup consumes one byte.
func (d *SingleCharArray) Lookup(src []byte) (hutucker.Code, int) {
	return d.codes[src[0]], 1
}

// NumEntries returns 256.
func (d *SingleCharArray) NumEntries() int { return 256 }

// MemoryUsage returns the table footprint.
func (d *SingleCharArray) MemoryUsage() int { return 256 * 9 }

// DoubleCharArray is the Double-Char dictionary. For every first byte c1
// the table holds one terminator entry ∅ (covering the interval [c1,
// c1\x00), i.e. a source string that ends after c1) followed by 256
// two-byte entries [c1 c2, c1 c2+1). This fills the interval gaps between
// [c1 0xFF, ...) and [c1+1, ...) exactly as the paper's terminator
// character does, making the dictionary complete.
//
// The alphabet size is parameterized (production uses 256; tests shrink it
// to keep Hu-Tucker inputs small): with alphabet A the table has A*(A+1)
// entries and source bytes must be < A.
type DoubleCharArray struct {
	alphabet int
	codes    []hutucker.Code
	maxLen   uint // longest code; see SingleCharArray.maxLen
	useAsm   bool // amd64 assembly kernel enabled (full byte alphabet only)
}

// DoubleCharEntries returns the number of entries of a Double-Char
// dictionary over the given alphabet size (65,792 for the full byte
// alphabet, the paper's fixed 2^16-scale dictionary).
func DoubleCharEntries(alphabet int) int { return alphabet * (alphabet + 1) }

// DoubleCharIndex maps a lookup to its table offset: the terminator entry
// of c1 when the source has a single byte left, else the (c1, c2) entry.
func DoubleCharIndex(alphabet int, src []byte) int {
	c1 := int(src[0])
	if len(src) == 1 {
		return c1 * (alphabet + 1)
	}
	return c1*(alphabet+1) + 1 + int(src[1])
}

// NewDoubleCharArray builds the dictionary from exactly
// DoubleCharEntries(alphabet) entries in interval order.
func NewDoubleCharArray(alphabet int, entries []Entry) (*DoubleCharArray, error) {
	want := DoubleCharEntries(alphabet)
	if len(entries) != want {
		return nil, fmt.Errorf("dict: Double-Char over alphabet %d needs %d entries, got %d",
			alphabet, want, len(entries))
	}
	d := &DoubleCharArray{alphabet: alphabet, codes: make([]hutucker.Code, want)}
	for i, e := range entries {
		term := i%(alphabet+1) == 0
		if term && e.SymbolLen != 1 || !term && e.SymbolLen != 2 {
			return nil, fmt.Errorf("dict: entry %d has symbol length %d", i, e.SymbolLen)
		}
		if err := checkCode(e.Code); err != nil {
			return nil, fmt.Errorf("dict: entry %d: %w", i, err)
		}
		d.codes[i] = e.Code
		if l := uint(e.Code.Len); l > d.maxLen {
			d.maxLen = l
		}
	}
	// The assembly kernel hard-codes the production byte alphabet (index
	// stride c1*257); shrunken test alphabets go through the Go loops.
	d.useAsm = asmKernels && alphabet == 256
	return d, nil
}

// Lookup consumes two bytes, or one byte when the source string ends.
func (d *DoubleCharArray) Lookup(src []byte) (hutucker.Code, int) {
	idx := DoubleCharIndex(d.alphabet, src)
	if len(src) == 1 {
		return d.codes[idx], 1
	}
	return d.codes[idx], 2
}

// NumEntries returns the table size.
func (d *DoubleCharArray) NumEntries() int { return len(d.codes) }

// MemoryUsage returns the table footprint.
func (d *DoubleCharArray) MemoryUsage() int { return len(d.codes) * 9 }
