package dict

import (
	"repro/internal/art"
	"repro/internal/hutucker"
)

// ARTDict is the dictionary structure for the ALM and ALM-Improved
// schemes, whose interval boundaries have arbitrary lengths. It is an
// adaptive radix tree in dictionary mode (paper Section 4.2): prefix keys
// are supported, compressed paths are stored in full because there is no
// tuple to verify an optimistic skip against, and the interval search is a
// floor lookup over the stored boundaries.
type ARTDict struct {
	tree    *art.Tree
	symLens []uint8
	codes   []hutucker.Code
}

// NewARTDict builds the dictionary from sorted entries.
func NewARTDict(entries []Entry) (*ARTDict, error) {
	if err := validateEntries(entries); err != nil {
		return nil, err
	}
	d := &ARTDict{
		tree:    art.New(art.DictMode),
		symLens: make([]uint8, len(entries)),
		codes:   make([]hutucker.Code, len(entries)),
	}
	for i, e := range entries {
		d.tree.Insert(e.Boundary, uint64(i))
		d.symLens[i] = e.SymbolLen
		d.codes[i] = e.Code
	}
	return d, nil
}

// Lookup finds the interval containing src via an ART floor search.
func (d *ARTDict) Lookup(src []byte) (hutucker.Code, int) {
	_, idx, ok := d.tree.Floor(src)
	if !ok {
		panic("dict: lookup below first boundary; dictionary must cover the axis")
	}
	return d.codes[idx], int(d.symLens[idx])
}

// NumEntries returns the number of intervals.
func (d *ARTDict) NumEntries() int { return len(d.codes) }

// MemoryUsage returns the modeled footprint: the ART structure plus the
// per-entry code table.
func (d *ARTDict) MemoryUsage() int {
	return d.tree.MemoryUsage() + len(d.codes)*10
}
