package dict

import (
	"encoding/binary"

	"repro/internal/bitops"
	"repro/internal/hutucker"
)

// BatchKernel is the bulk counterpart of Kernel: a dictionary that
// implements it encodes a whole batch of keys in one call, amortizing
// per-key call overhead and — for the array dictionaries — processing
// source bytes a 64-bit word at a time instead of one lookup per
// iteration. The contract mirrors the encoder's bulk layout:
//
//   - keys are encoded back to back into a, each padded to a byte
//     boundary (the stored form the search trees compare);
//   - len(offs) == len(keys)+1 and offs[0] is set by the caller to the
//     byte offset where key 0 begins; the kernel sets offs[i+1] to the
//     total number of complete output bytes after key i (a.Pad());
//   - the caller retrieves the buffer with a final a.Finish().
//
// Every batch kernel is pinned byte-identical to the per-key
// AppendEncode by differential and fuzz suites (core/batch_test.go);
// the per-key kernels are deliberately left untouched as the reference.
type BatchKernel interface {
	AppendEncodeBatch(a *bitops.Appender, keys [][]byte, offs []int)
}

// Static checks: every dictionary structure provides the batch path.
var (
	_ BatchKernel = (*SingleCharArray)(nil)
	_ BatchKernel = (*DoubleCharArray)(nil)
	_ BatchKernel = (*BitmapTrie)(nil)
	_ BatchKernel = (*ARTDict)(nil)
	_ BatchKernel = (*BinarySearch)(nil)
)

// AppendEncodeBatch encodes the batch through the 256-entry table eight
// source bytes per load: one binary.BigEndian.Uint64 replaces eight
// indexed byte loads, and codes are staged in groups of four with a
// single combined-length overflow check per group (the per-symbol check
// runs only on the rare group that actually straddles the staging word).
func (d *SingleCharArray) AppendEncodeBatch(a *bitops.Appender, keys [][]byte, offs []int) {
	if d.pairBits != nil {
		for i, key := range keys {
			d.encodePairs(a, key)
			offs[i+1] = a.Pad()
		}
		return
	}
	if d.useAsm {
		d.appendEncodeBatchAsm(a, keys, offs)
		return
	}
	for i, key := range keys {
		d.encodeWords(a, key)
		offs[i+1] = a.Pad()
	}
}

// encodePairs is the pair-fused body: one pair-table load per two
// source bytes. When 4*maxLen fits the staging word, two pairs (four
// source bytes) join independently of the accumulator and land in one
// flush-checked staging step — the flush runs *before* the group, so the
// fused fast path is taken on every group instead of only when the
// group happens to fit the accumulator's leftover room. Longer codes
// stage pair by pair with the same flush-first discipline.
func (d *SingleCharArray) encodePairs(a *bitops.Appender, key []byte) {
	pb, pl := d.pairBits, d.pairLens
	var acc uint64
	var n uint
	i := 0
	if d.maxLen <= 16 {
		for ; i+4 <= len(key); i += 4 {
			i0 := uint32(key[i])<<8 | uint32(key[i+1])
			i1 := uint32(key[i+2])<<8 | uint32(key[i+3])
			b01 := pb[i0]<<uint(pl[i1]) | pb[i1]
			s := uint(pl[i0]) + uint(pl[i1])
			if n+s > 64 {
				a.AppendWord(acc, n)
				acc, n = 0, 0
			}
			acc = acc<<s | b01
			n += s
		}
	}
	for ; i+2 <= len(key); i += 2 {
		idx := uint32(key[i])<<8 | uint32(key[i+1])
		acc, n = stagePair(a, acc, n, pb[idx], uint(pl[idx]))
	}
	if i < len(key) {
		c := d.codes[key[i]]
		acc, n = stagePair(a, acc, n, c.Bits, uint(c.Len))
	}
	a.AppendWord(acc, n)
}

// stagePair stages one fused pair code with the reference spill logic; a
// pair can be up to 64 bits (two max-length codes), which Go's variable
// shift handles after the flush leaves acc empty.
func stagePair(a *bitops.Appender, acc uint64, n uint, bits uint64, l uint) (uint64, uint) {
	if n+l > 64 {
		a.AppendWord(acc, n)
		acc, n = 0, 0
	}
	acc = acc<<l | bits
	n += l
	return acc, n
}

// encodeWords is the word-parallel body shared by the pure-Go batch
// path and the non-amd64 builds. It produces exactly the bit stream of
// AppendEncode.
func (d *SingleCharArray) encodeWords(a *bitops.Appender, key []byte) {
	codes := &d.codes
	var acc uint64
	var n uint
	i := 0
	for ; i+8 <= len(key); i += 8 {
		w := binary.BigEndian.Uint64(key[i:])
		c0 := codes[byte(w>>56)]
		c1 := codes[byte(w>>48)]
		c2 := codes[byte(w>>40)]
		c3 := codes[byte(w>>32)]
		sum := uint(c0.Len) + uint(c1.Len) + uint(c2.Len) + uint(c3.Len)
		if n+sum <= 64 {
			acc = acc<<uint(c0.Len) | c0.Bits
			acc = acc<<uint(c1.Len) | c1.Bits
			acc = acc<<uint(c2.Len) | c2.Bits
			acc = acc<<uint(c3.Len) | c3.Bits
			n += sum
		} else {
			acc, n = stage4(a, acc, n, c0, c1, c2, c3)
		}
		c0 = codes[byte(w>>24)]
		c1 = codes[byte(w>>16)]
		c2 = codes[byte(w>>8)]
		c3 = codes[byte(w)]
		sum = uint(c0.Len) + uint(c1.Len) + uint(c2.Len) + uint(c3.Len)
		if n+sum <= 64 {
			acc = acc<<uint(c0.Len) | c0.Bits
			acc = acc<<uint(c1.Len) | c1.Bits
			acc = acc<<uint(c2.Len) | c2.Bits
			acc = acc<<uint(c3.Len) | c3.Bits
			n += sum
		} else {
			acc, n = stage4(a, acc, n, c0, c1, c2, c3)
		}
	}
	for ; i < len(key); i++ {
		c := codes[key[i]]
		cl := uint(c.Len)
		if n+cl > 64 {
			a.AppendWord(acc, n)
			acc, n = 0, 0
		}
		acc = acc<<cl | c.Bits
		n += cl
	}
	a.AppendWord(acc, n)
}

// stage4 is the slow half of the grouped staging: the four codes
// together overflow the 64-bit word, so fall back to the per-symbol
// spill logic of the reference kernel. Codes can individually be up to
// MaxCodeLen (63) bits, so each one gets its own check.
func stage4(a *bitops.Appender, acc uint64, n uint, c0, c1, c2, c3 hutucker.Code) (uint64, uint) {
	for _, c := range [4]hutucker.Code{c0, c1, c2, c3} {
		cl := uint(c.Len)
		if n+cl > 64 {
			a.AppendWord(acc, n)
			acc, n = 0, 0
		}
		acc = acc<<cl | c.Bits
		n += cl
	}
	return acc, n
}

// AppendEncodeBatch encodes the batch four source-byte pairs per load:
// one 64-bit load yields four two-byte table indices, staged in one
// combined-length-checked group. The lone trailing byte of odd-length
// keys goes through the terminator entry exactly as in AppendEncode.
func (d *DoubleCharArray) AppendEncodeBatch(a *bitops.Appender, keys [][]byte, offs []int) {
	if d.maxLen <= 32 {
		// The fused Go path beats the assembly kernel here: the assembly
		// emits a word stream that has to be replayed into the appender,
		// and for two-byte symbols that round-trip costs more than the
		// lookup it saves. The assembly stays in use for Single-Char and
		// as the >32-bit-code fallback below.
		for i, key := range keys {
			d.encodeFused(a, key)
			offs[i+1] = a.Pad()
		}
		return
	}
	if d.useAsm {
		d.appendEncodeBatchAsm(a, keys, offs)
		return
	}
	for i, key := range keys {
		d.encodeWords(a, key)
		offs[i+1] = a.Pad()
	}
}

// encodeFused stages two two-byte codes (four source bytes) per
// flush-checked step: the pair join is independent of the accumulator,
// and flushing before the group keeps the fused path hot regardless of
// how full the staging word is. Requires 2*maxLen <= 64.
func (d *DoubleCharArray) encodeFused(a *bitops.Appender, key []byte) {
	base := d.alphabet + 1
	codes := d.codes
	var acc uint64
	var n uint
	i := 0
	for ; i+4 <= len(key); i += 4 {
		c0 := codes[int(key[i])*base+1+int(key[i+1])]
		c1 := codes[int(key[i+2])*base+1+int(key[i+3])]
		t01 := c0.Bits<<uint(c1.Len) | c1.Bits
		s := uint(c0.Len) + uint(c1.Len)
		if n+s > 64 {
			a.AppendWord(acc, n)
			acc, n = 0, 0
		}
		acc = acc<<s | t01
		n += s
	}
	if i+1 < len(key) {
		c := codes[int(key[i])*base+1+int(key[i+1])]
		acc, n = stagePair(a, acc, n, c.Bits, uint(c.Len))
		i += 2
	}
	if i < len(key) {
		c := codes[int(key[i])*base]
		acc, n = stagePair(a, acc, n, c.Bits, uint(c.Len))
	}
	a.AppendWord(acc, n)
}

func (d *DoubleCharArray) encodeWords(a *bitops.Appender, key []byte) {
	base := d.alphabet + 1
	codes := d.codes
	var acc uint64
	var n uint
	i := 0
	for ; i+8 <= len(key); i += 8 {
		w := binary.BigEndian.Uint64(key[i:])
		c0 := codes[int(byte(w>>56))*base+1+int(byte(w>>48))]
		c1 := codes[int(byte(w>>40))*base+1+int(byte(w>>32))]
		c2 := codes[int(byte(w>>24))*base+1+int(byte(w>>16))]
		c3 := codes[int(byte(w>>8))*base+1+int(byte(w))]
		sum := uint(c0.Len) + uint(c1.Len) + uint(c2.Len) + uint(c3.Len)
		if n+sum <= 64 {
			// Tree-fused staging: the two halves join independently of
			// the accumulator, shortening the serial chain from four
			// dependent shift-ors to two. Every partial sum fits 64 bits
			// because the group as a whole does.
			t01 := c0.Bits<<uint(c1.Len) | c1.Bits
			t23 := c2.Bits<<uint(c3.Len) | c3.Bits
			acc = acc<<(uint(c0.Len)+uint(c1.Len)) | t01
			acc = acc<<(uint(c2.Len)+uint(c3.Len)) | t23
			n += sum
		} else {
			acc, n = stage4(a, acc, n, c0, c1, c2, c3)
		}
	}
	for ; i+1 < len(key); i += 2 {
		c := codes[int(key[i])*base+1+int(key[i+1])]
		cl := uint(c.Len)
		if n+cl > 64 {
			a.AppendWord(acc, n)
			acc, n = 0, 0
		}
		acc = acc<<cl | c.Bits
		n += cl
	}
	if i < len(key) {
		c := codes[int(key[i])*base]
		cl := uint(c.Len)
		if n+cl > 64 {
			a.AppendWord(acc, n)
			acc, n = 0, 0
		}
		acc = acc<<cl | c.Bits
		n += cl
	}
	a.AppendWord(acc, n)
}

// AppendEncodeBatch encodes the batch through the bitmap trie using the
// precomputed dispatch tables: with two or more source bytes left, the
// two-byte root2 table replaces the top two levels' rank/select walks
// (eight popcounts plus branch logic) with one load, and any remaining
// levels reuse the shared floor walk from depth 2. A lone trailing byte
// dispatches through the one-byte tables, whose entries account for the
// end-of-key terminator. The per-key kernel deliberately keeps the plain
// walk as the pinning reference.
func (t *BitmapTrie) AppendEncodeBatch(a *bitops.Appender, keys [][]byte, offs []int) {
	root2 := t.root2
	for i, key := range keys {
		var acc uint64
		var n uint
		for pos := 0; pos < len(key); {
			var idx int
			if pos+2 <= len(key) && root2 != nil {
				v := root2[uint32(key[pos])<<8|uint32(key[pos+1])]
				switch {
				case v >= 0:
					idx = t.floorFrom(key, pos, &t.levels[2][v], 2)
				case v != root2Below:
					idx = int(^v)
				default:
					idx = t.checkIdx(-1)
				}
			} else if ch := t.rootChild[key[pos]]; ch >= 0 {
				idx = t.floorFrom(key, pos, &t.levels[1][ch], 1)
			} else {
				idx = t.checkIdx(int(t.rootIdx[key[pos]]))
			}
			c := t.codes[idx]
			cl := uint(c.Len)
			if n+cl > 64 {
				a.AppendWord(acc, n)
				acc, n = 0, 0
			}
			acc = acc<<cl | c.Bits
			n += cl
			pos += int(t.symLens[idx])
		}
		a.AppendWord(acc, n)
		offs[i+1] = a.Pad()
	}
}

// AppendEncodeBatch for ALM runs the per-key kernel in a loop: the ART
// tree walk has no word-level shortcut, so the batch win here is only
// the amortized dispatch and padding bookkeeping.
func (d *ARTDict) AppendEncodeBatch(a *bitops.Appender, keys [][]byte, offs []int) {
	for i, key := range keys {
		d.AppendEncode(a, key)
		offs[i+1] = a.Pad()
	}
}

// AppendEncodeBatch for the reference dictionary runs the per-key
// kernel in a loop; it exists so forced binary-search ablations drive
// the same bulk plumbing.
func (d *BinarySearch) AppendEncodeBatch(a *bitops.Appender, keys [][]byte, offs []int) {
	for i, key := range keys {
		d.AppendEncode(a, key)
		offs[i+1] = a.Pad()
	}
}
