package dict

import (
	"math/rand"
	"testing"

	"repro/internal/bitops"
)

// benchKeys builds an email-like corpus: lowercase + punctuation, lengths
// around 15-30 bytes, so code lengths and trie paths resemble the recorded
// figures rather than uniform random bytes.
func benchKeys(rng *rand.Rand, n int) ([][]byte, int) {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789._@"
	keys := make([][]byte, n)
	total := 0
	for i := range keys {
		k := make([]byte, 15+rng.Intn(16))
		for j := range k {
			k[j] = alpha[rng.Intn(len(alpha))]
		}
		keys[i] = k
		total += len(k)
	}
	return keys, total
}

func benchBatch(b *testing.B, d Kernel, bk BatchKernel) {
	rng := rand.New(rand.NewSource(9))
	keys, total := benchKeys(rng, 1024)
	offs := make([]int, len(keys)+1)
	// Preallocate the output so both legs measure the kernels, not the
	// allocator growing the buffer from nil every iteration.
	out := make([]byte, 0, 8*total)
	var a bitops.Appender
	b.Run("perkey", func(b *testing.B) {
		b.SetBytes(int64(total))
		for i := 0; i < b.N; i++ {
			a.Reset(out)
			for _, k := range keys {
				d.AppendEncode(&a, k)
				a.Pad()
			}
			a.Finish()
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.SetBytes(int64(total))
		for i := 0; i < b.N; i++ {
			a.Reset(out)
			offs[0] = 0
			bk.AppendEncodeBatch(&a, keys, offs)
			a.Finish()
		}
	})
}

func BenchmarkBatchSingleChar(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	d := singleFixture(b, rng, 2, 14)
	benchBatch(b, d, d)
}

func BenchmarkBatchDoubleChar(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d := doubleFixture(b, rng, 256, 3, 22)
	benchBatch(b, d, d)
}

func BenchmarkBatchTrie(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	d := trieFixture(b, rng, 3)
	benchBatch(b, d, d)
}
