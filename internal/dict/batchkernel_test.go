package dict

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitops"
	"repro/internal/hutucker"
)

// randCode returns a code of the given length whose bits fit it, as the
// constructors require.
func randCode(rng *rand.Rand, l int) hutucker.Code {
	var bits uint64
	if l > 0 {
		bits = rng.Uint64() & ((1 << uint(l)) - 1)
	}
	return hutucker.Code{Bits: bits, Len: uint8(l)}
}

// singleFixture builds a Single-Char dictionary with code lengths drawn
// from [minLen, maxLen] — wide ranges force the staging-word spill paths.
func singleFixture(t testing.TB, rng *rand.Rand, minLen, maxLen int) *SingleCharArray {
	t.Helper()
	entries := make([]Entry, 256)
	for i := range entries {
		entries[i] = Entry{
			Boundary:  []byte{byte(i)},
			SymbolLen: 1,
			Code:      randCode(rng, minLen+rng.Intn(maxLen-minLen+1)),
		}
	}
	d, err := NewSingleCharArray(entries)
	if err != nil {
		t.Fatalf("NewSingleCharArray: %v", err)
	}
	return d
}

func doubleFixture(t testing.TB, rng *rand.Rand, alphabet, minLen, maxLen int) *DoubleCharArray {
	t.Helper()
	entries := make([]Entry, DoubleCharEntries(alphabet))
	for i := range entries {
		sl := uint8(2)
		if i%(alphabet+1) == 0 {
			sl = 1
		}
		entries[i] = Entry{
			SymbolLen: sl,
			Code:      randCode(rng, minLen+rng.Intn(maxLen-minLen+1)),
		}
	}
	d, err := NewDoubleCharArray(alphabet, entries)
	if err != nil {
		t.Fatalf("NewDoubleCharArray: %v", err)
	}
	return d
}

func trieFixture(t testing.TB, rng *rand.Rand, depth int) *BitmapTrie {
	t.Helper()
	boundaries := randomCoveringBoundaries(rng, 2000, depth, 256)
	tr, err := NewBitmapTrie(depth, makeEntries(t, boundaries))
	if err != nil {
		t.Fatalf("NewBitmapTrie: %v", err)
	}
	return tr
}

// batchCases yields key batches covering the tricky shapes: empty
// batches, empty keys, single keys, ragged tails around the 8-byte word
// size, and long keys.
func batchCases(rng *rand.Rand, alphabet int) [][][]byte {
	key := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(alphabet))
		}
		return b
	}
	cases := [][][]byte{
		{},
		{{}},
		{{}, {}, {}},
		{key(1)},
		{key(7), key(8), key(9)},
		{key(15), {}, key(16), key(17), {}},
		{key(64), key(63), key(65)},
		{key(256)},
	}
	for i := 0; i < 16; i++ {
		batch := make([][]byte, rng.Intn(20))
		for j := range batch {
			batch[j] = key(rng.Intn(40))
		}
		cases = append(cases, batch)
	}
	return cases
}

// refBatch is the batch contract restated over the per-key reference
// kernel: encode each key, pad, record the offset.
func refBatch(k Kernel, keys [][]byte) ([]byte, []int) {
	var a bitops.Appender
	a.Reset(nil)
	offs := make([]int, len(keys)+1)
	for i, key := range keys {
		k.AppendEncode(&a, key)
		a.Pad()
		buf, _ := a.Finish()
		offs[i+1] = len(buf)
	}
	buf, _ := a.Finish()
	return buf, offs
}

func runBatch(b BatchKernel, keys [][]byte) ([]byte, []int) {
	var a bitops.Appender
	a.Reset(nil)
	offs := make([]int, len(keys)+1)
	b.AppendEncodeBatch(&a, keys, offs)
	buf, _ := a.Finish()
	return buf, offs
}

func checkBatchMatches(t *testing.T, name string, d interface {
	Kernel
	BatchKernel
}, keys [][]byte) {
	t.Helper()
	wantBuf, wantOffs := refBatch(d, keys)
	gotBuf, gotOffs := runBatch(d, keys)
	if !bytes.Equal(gotBuf, wantBuf) {
		t.Fatalf("%s: batch buffer diverges from per-key kernel\n got %x\nwant %x", name, gotBuf, wantBuf)
	}
	for i := range wantOffs {
		if gotOffs[i] != wantOffs[i] {
			t.Fatalf("%s: offs[%d] = %d, want %d", name, i, gotOffs[i], wantOffs[i])
		}
	}
}

// TestBatchKernelMatchesPerKey pins every batch kernel byte-identical to
// the per-key reference across all dictionary structures, including the
// spill-heavy long-code configurations and ragged batch shapes.
func TestBatchKernelMatchesPerKey(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dicts := []struct {
		name string
		d    interface {
			Kernel
			BatchKernel
		}
		alphabet int
	}{
		{"Single-Char/short", singleFixture(t, rng, 1, 8), 256},
		{"Single-Char/mixed", singleFixture(t, rng, 1, 24), 256},
		{"Single-Char/long", singleFixture(t, rng, 40, 63), 256},
		{"Double-Char/256", doubleFixture(t, rng, 256, 1, 16), 256},
		{"Double-Char/256-long", doubleFixture(t, rng, 256, 30, 63), 256},
		{"Double-Char/16", doubleFixture(t, rng, 16, 1, 12), 16},
		{"3-Grams", trieFixture(t, rng, 3), 256},
		{"4-Grams", trieFixture(t, rng, 4), 256},
	}
	for _, tc := range dicts {
		t.Run(tc.name, func(t *testing.T) {
			for ci, keys := range batchCases(rng, tc.alphabet) {
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("case %d: panic: %v", ci, r)
						}
					}()
					checkBatchMatches(t, fmt.Sprintf("%s case %d", tc.name, ci), tc.d, keys)
				}()
			}
		})
	}
}

// TestBatchKernelGoPathMatches drives the pure-Go word-parallel loops
// directly, so asm-enabled builds still differentially cover the
// mandatory fallback they would otherwise bypass.
func TestBatchKernelGoPathMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	single := singleFixture(t, rng, 1, 20)
	double := doubleFixture(t, rng, 256, 1, 20)
	for ci, keys := range batchCases(rng, 256) {
		for _, key := range keys {
			var want, got bitops.Appender
			want.Reset(nil)
			got.Reset(nil)
			single.AppendEncode(&want, key)
			single.encodeWords(&got, key)
			wb, wn := want.Finish()
			gb, gn := got.Finish()
			if wn != gn || !bytes.Equal(wb, gb) {
				t.Fatalf("Single-Char case %d: encodeWords diverges for key %x", ci, key)
			}
			want.Reset(nil)
			got.Reset(nil)
			double.AppendEncode(&want, key)
			double.encodeWords(&got, key)
			wb, wn = want.Finish()
			gb, gn = got.Finish()
			if wn != gn || !bytes.Equal(wb, gb) {
				t.Fatalf("Double-Char case %d: encodeWords diverges for key %x", ci, key)
			}
		}
	}
}

// TestBatchKernelAsmLeg reports whether the assembly kernels are active
// and, when they are, cross-checks them against the pure-Go batch loops
// on top of the per-key pinning already done above.
func TestBatchKernelAsmLeg(t *testing.T) {
	if !asmKernels {
		t.Skip("assembly kernels disabled in this build/CPU")
	}
	rng := rand.New(rand.NewSource(44))
	single := singleFixture(t, rng, 1, 18)
	double := doubleFixture(t, rng, 256, 1, 18)
	if !single.useAsm || !double.useAsm {
		t.Fatalf("asmKernels set but dictionaries did not enable the asm path")
	}
	for _, keys := range batchCases(rng, 256) {
		var asmA, goA bitops.Appender
		offsAsm := make([]int, len(keys)+1)
		offsGo := make([]int, len(keys)+1)

		asmA.Reset(nil)
		single.appendEncodeBatchAsm(&asmA, keys, offsAsm)
		goA.Reset(nil)
		for i, key := range keys {
			single.encodeWords(&goA, key)
			offsGo[i+1] = goA.Pad()
		}
		ab, _ := asmA.Finish()
		gb, _ := goA.Finish()
		if !bytes.Equal(ab, gb) {
			t.Fatalf("Single-Char asm kernel diverges from Go batch loop")
		}
		for i := range offsGo {
			if offsAsm[i] != offsGo[i] {
				t.Fatalf("Single-Char asm offs[%d] = %d, want %d", i, offsAsm[i], offsGo[i])
			}
		}

		asmA.Reset(nil)
		double.appendEncodeBatchAsm(&asmA, keys, offsAsm)
		goA.Reset(nil)
		for i, key := range keys {
			double.encodeWords(&goA, key)
			offsGo[i+1] = goA.Pad()
		}
		ab, _ = asmA.Finish()
		gb, _ = goA.Finish()
		if !bytes.Equal(ab, gb) {
			t.Fatalf("Double-Char asm kernel diverges from Go batch loop")
		}
		for i := range offsGo {
			if offsAsm[i] != offsGo[i] {
				t.Fatalf("Double-Char asm offs[%d] = %d, want %d", i, offsAsm[i], offsGo[i])
			}
		}
	}
}

// TestBatchKernelAppendsMidStream checks the batch kernels compose with
// a non-empty appender: offsets are absolute byte counts, not per-batch.
func TestBatchKernelAppendsMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	d := singleFixture(t, rng, 1, 12)
	keys := [][]byte{[]byte("alpha"), []byte("beta-gamma-delta"), {}}

	var a bitops.Appender
	a.Reset(nil)
	d.AppendEncode(&a, []byte("prefix"))
	start := a.Pad()
	offs := make([]int, len(keys)+1)
	offs[0] = start
	d.AppendEncodeBatch(&a, keys, offs)
	buf, _ := a.Finish()

	var ref bitops.Appender
	ref.Reset(nil)
	refKeys, refOffs := refBatch(d, keys)
	_ = ref
	if !bytes.Equal(buf[start:], refKeys) {
		t.Fatalf("mid-stream batch bytes diverge")
	}
	for i := 1; i < len(offs); i++ {
		if offs[i]-start != refOffs[i] {
			t.Fatalf("mid-stream offs[%d] = %d, want %d", i, offs[i]-start, refOffs[i]+start)
		}
	}
}
