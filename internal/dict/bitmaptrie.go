package dict

import (
	"fmt"

	"repro/internal/bitops"
	"repro/internal/hutucker"
)

// BitmapTrie is the dictionary structure for the 3-Grams and 4-Grams
// schemes (paper Figure 6). Nodes are stored level by level in
// breadth-first order; each node is a 256-bit bitmap recording its
// branches plus a cumulative counter, and a child is located with a
// popcount over the bitmap — no pointers. Interval boundaries shorter than
// the trie depth (the gap entries created between frequent grams) are
// represented by a terminator flag that sorts before all branches, exactly
// like the paper's ∅ character.
type BitmapTrie struct {
	levels  [][]btNode
	depth   int // maximum boundary length K (3 or 4)
	symLens []uint8
	codes   []hutucker.Code

	// Root dispatch table, precomputed at build for the batch encode
	// kernel: the root level's rank/select walk is identical for every
	// symbol starting with the same byte, so one 256-entry table replaces
	// a Rank256 (four popcounts) plus the branch logic per symbol.
	// rootChild[c] >= 0 names the level-1 node to continue the floor walk
	// from; otherwise the walk already resolved and rootIdx[c] is the
	// floor entry (possibly -1 = below coverage, rejected by checkIdx).
	rootChild [256]int32
	rootIdx   [256]int32

	// root2 extends the dispatch to the first two bytes (built for
	// depth >= 2, 256 KiB): one load replaces the top two levels'
	// rank/select walks whenever at least two source bytes remain.
	// v >= 0 continues the floor walk from levels[2][v] at depth 2
	// (possible only when depth >= 3); v < 0 is the resolved floor entry
	// ^v, except the root2Below sentinel marking below-coverage pairs
	// (rejected through checkIdx like everywhere else).
	root2 []int32
}

// root2Below marks a two-byte prefix below the dictionary's first
// boundary; hitting it is the same coverage violation checkIdx rejects.
const root2Below = int32(-1) << 31

type btNode struct {
	bitmap    [4]uint64
	startIdx  uint32 // entry index of the first boundary in this subtree
	count     uint32 // number of boundaries in this subtree
	childBase uint32 // index of this node's first child in the next level
	term      bool   // a boundary equal to this node's path exists
}

// NewBitmapTrie builds the trie from sorted entries whose boundaries are
// at most depth bytes long.
func NewBitmapTrie(depth int, entries []Entry) (*BitmapTrie, error) {
	if depth < 1 || depth > 8 {
		return nil, fmt.Errorf("dict: unsupported bitmap-trie depth %d", depth)
	}
	if err := validateEntries(entries); err != nil {
		return nil, err
	}
	t := &BitmapTrie{
		depth:   depth,
		levels:  make([][]btNode, depth),
		symLens: make([]uint8, len(entries)),
		codes:   make([]hutucker.Code, len(entries)),
	}
	for i, e := range entries {
		if len(e.Boundary) > depth {
			return nil, fmt.Errorf("dict: boundary %q longer than trie depth %d", e.Boundary, depth)
		}
		t.symLens[i] = e.SymbolLen
		t.codes[i] = e.Code
	}
	type span struct{ lo, hi int }
	cur := []span{{0, len(entries)}}
	for d := 0; d < depth; d++ {
		var next []span
		nodes := make([]btNode, 0, len(cur))
		for _, sp := range cur {
			node := btNode{
				startIdx:  uint32(sp.lo),
				count:     uint32(sp.hi - sp.lo),
				childBase: uint32(len(next)),
			}
			i := sp.lo
			if len(entries[i].Boundary) == d {
				node.term = true
				i++
			}
			for i < sp.hi {
				c := entries[i].Boundary[d]
				j := i + 1
				for j < sp.hi && entries[j].Boundary[d] == c {
					j++
				}
				bitops.Set256(&node.bitmap, int(c))
				if d == depth-1 {
					if j != i+1 {
						return nil, fmt.Errorf("dict: duplicate boundary prefix %q at max depth",
							entries[i].Boundary)
					}
				} else {
					next = append(next, span{i, j})
				}
				i = j
			}
			nodes = append(nodes, node)
		}
		t.levels[d] = nodes
		cur = next
	}
	t.buildRootTable()
	t.buildRoot2Table()
	return t, nil
}

// buildRootTable replays floorIdx's depth-0 iteration for every first
// byte. Entries either resolve outright (no branch, or depth-1 trie) or
// record the level-1 node the walk continues from.
func (t *BitmapTrie) buildRootTable() {
	root := &t.levels[0][0]
	for c := 0; c < 256; c++ {
		t.rootChild[c] = -1
		r := bitops.Rank256(&root.bitmap, c)
		if bitops.Bit256(&root.bitmap, c) {
			if t.depth == 1 {
				t.rootIdx[c] = int32(int(root.startIdx) + boolInt(root.term) + r - 1)
			} else {
				t.rootChild[c] = int32(root.childBase + uint32(r-1))
			}
			continue
		}
		if t.depth == 1 {
			t.rootIdx[c] = int32(int(root.startIdx) + boolInt(root.term) + r - 1)
			continue
		}
		if r > 0 {
			ch := &t.levels[1][root.childBase+uint32(r-1)]
			t.rootIdx[c] = int32(int(ch.startIdx) + int(ch.count) - 1)
			continue
		}
		idx := int(root.startIdx) - 1
		if root.term {
			idx = int(root.startIdx)
		}
		t.rootIdx[c] = int32(idx)
	}
}

// buildRoot2Table replays the first two iterations of floorFrom for
// every byte pair, assuming at least two source bytes remain (the batch
// kernel falls back to the one-byte tables otherwise, because the
// end-of-key terminator branch resolves differently).
func (t *BitmapTrie) buildRoot2Table() {
	if t.depth < 2 {
		return
	}
	t.root2 = make([]int32, 1<<16)
	for c0 := 0; c0 < 256; c0++ {
		for c1 := 0; c1 < 256; c1++ {
			t.root2[c0<<8|c1] = t.resolve2(byte(c0), byte(c1))
		}
	}
}

func (t *BitmapTrie) resolve2(c0, c1 byte) int32 {
	res := func(idx int) int32 {
		if idx < 0 {
			return root2Below
		}
		return ^int32(idx)
	}
	ni := uint32(0)
	for d, c := range [2]byte{c0, c1} {
		node := &t.levels[d][ni]
		r := bitops.Rank256(&node.bitmap, int(c))
		if d == t.depth-1 {
			// Hit or miss, the deepest level resolves with the same
			// rank arithmetic (floorFrom's two depth-1 branches).
			return res(int(node.startIdx) + boolInt(node.term) + r - 1)
		}
		if bitops.Bit256(&node.bitmap, int(c)) {
			ni = node.childBase + uint32(r-1)
			continue
		}
		if r > 0 {
			ch := &t.levels[d+1][node.childBase+uint32(r-1)]
			return res(int(ch.startIdx) + int(ch.count) - 1)
		}
		idx := int(node.startIdx) - 1
		if node.term {
			idx = int(node.startIdx)
		}
		return res(idx)
	}
	return int32(ni)
}

// Lookup walks at most depth levels, using popcounts to locate children,
// and returns the floor entry for src. The walk itself lives in floorIdx
// (kernel.go), shared with the encode kernel.
func (t *BitmapTrie) Lookup(src []byte) (hutucker.Code, int) {
	idx := t.floorIdx(src, 0)
	return t.codes[idx], int(t.symLens[idx])
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// NumEntries returns the number of intervals.
func (t *BitmapTrie) NumEntries() int { return len(t.codes) }

// MemoryUsage returns the footprint: 44 bytes per node (256-bit bitmap
// plus three counters) and 10 bytes per entry (code + length).
func (t *BitmapTrie) MemoryUsage() int {
	nodes := 0
	for _, lv := range t.levels {
		nodes += len(lv)
	}
	return nodes*44 + len(t.codes)*10
}
