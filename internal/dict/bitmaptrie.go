package dict

import (
	"fmt"

	"repro/internal/bitops"
	"repro/internal/hutucker"
)

// BitmapTrie is the dictionary structure for the 3-Grams and 4-Grams
// schemes (paper Figure 6). Nodes are stored level by level in
// breadth-first order; each node is a 256-bit bitmap recording its
// branches plus a cumulative counter, and a child is located with a
// popcount over the bitmap — no pointers. Interval boundaries shorter than
// the trie depth (the gap entries created between frequent grams) are
// represented by a terminator flag that sorts before all branches, exactly
// like the paper's ∅ character.
type BitmapTrie struct {
	levels  [][]btNode
	depth   int // maximum boundary length K (3 or 4)
	symLens []uint8
	codes   []hutucker.Code
}

type btNode struct {
	bitmap    [4]uint64
	startIdx  uint32 // entry index of the first boundary in this subtree
	count     uint32 // number of boundaries in this subtree
	childBase uint32 // index of this node's first child in the next level
	term      bool   // a boundary equal to this node's path exists
}

// NewBitmapTrie builds the trie from sorted entries whose boundaries are
// at most depth bytes long.
func NewBitmapTrie(depth int, entries []Entry) (*BitmapTrie, error) {
	if depth < 1 || depth > 8 {
		return nil, fmt.Errorf("dict: unsupported bitmap-trie depth %d", depth)
	}
	if err := validateEntries(entries); err != nil {
		return nil, err
	}
	t := &BitmapTrie{
		depth:   depth,
		levels:  make([][]btNode, depth),
		symLens: make([]uint8, len(entries)),
		codes:   make([]hutucker.Code, len(entries)),
	}
	for i, e := range entries {
		if len(e.Boundary) > depth {
			return nil, fmt.Errorf("dict: boundary %q longer than trie depth %d", e.Boundary, depth)
		}
		t.symLens[i] = e.SymbolLen
		t.codes[i] = e.Code
	}
	type span struct{ lo, hi int }
	cur := []span{{0, len(entries)}}
	for d := 0; d < depth; d++ {
		var next []span
		nodes := make([]btNode, 0, len(cur))
		for _, sp := range cur {
			node := btNode{
				startIdx:  uint32(sp.lo),
				count:     uint32(sp.hi - sp.lo),
				childBase: uint32(len(next)),
			}
			i := sp.lo
			if len(entries[i].Boundary) == d {
				node.term = true
				i++
			}
			for i < sp.hi {
				c := entries[i].Boundary[d]
				j := i + 1
				for j < sp.hi && entries[j].Boundary[d] == c {
					j++
				}
				bitops.Set256(&node.bitmap, int(c))
				if d == depth-1 {
					if j != i+1 {
						return nil, fmt.Errorf("dict: duplicate boundary prefix %q at max depth",
							entries[i].Boundary)
					}
				} else {
					next = append(next, span{i, j})
				}
				i = j
			}
			nodes = append(nodes, node)
		}
		t.levels[d] = nodes
		cur = next
	}
	return t, nil
}

// Lookup walks at most depth levels, using popcounts to locate children,
// and returns the floor entry for src. The walk itself lives in floorIdx
// (kernel.go), shared with the encode kernel.
func (t *BitmapTrie) Lookup(src []byte) (hutucker.Code, int) {
	idx := t.floorIdx(src, 0)
	return t.codes[idx], int(t.symLens[idx])
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// NumEntries returns the number of intervals.
func (t *BitmapTrie) NumEntries() int { return len(t.codes) }

// MemoryUsage returns the footprint: 44 bytes per node (256-bit bitmap
// plus three counters) and 10 bytes per entry (code + length).
func (t *BitmapTrie) MemoryUsage() int {
	nodes := 0
	for _, lv := range t.levels {
		nodes += len(lv)
	}
	return nodes*44 + len(t.codes)*10
}
