// Package dict implements the dictionary structures of HOPE (paper
// Section 4.2, Table 1). A dictionary maps the intervals of the string
// axis model to codes; because the intervals are connected and disjoint,
// only each interval's left boundary is stored, and a lookup is a floor
// search: find the entry with the greatest boundary <= the source string.
//
// Three structures are provided, matching the paper: a fixed-length array
// for Single-Char and Double-Char, a bitmap-trie with popcount-based child
// indexing for 3-Grams and 4-Grams, and an ART-based dictionary for the
// ALM schemes. A plain binary-search dictionary doubles as the correctness
// reference and as the ablation baseline the paper compares the
// bitmap-trie against ("2.3x faster than binary-searching").
package dict

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/hutucker"
)

// Entry is one dictionary mapping: the left boundary of an interval on the
// string axis, the length of the interval's symbol (the number of source
// bytes consumed when the entry matches), and the interval's code.
type Entry struct {
	Boundary  []byte
	SymbolLen uint8
	Code      hutucker.Code
}

// Dictionary is the floor-lookup structure consulted at every encoding
// step. Lookup finds the interval containing src and returns its code and
// symbol length; src must be non-empty and the dictionary must cover the
// axis from "\x00" (all HOPE symbol selectors guarantee this), so a lookup
// never fails.
type Dictionary interface {
	Lookup(src []byte) (code hutucker.Code, symLen int)
	NumEntries() int
	// MemoryUsage is the structure's footprint in bytes, reported for the
	// paper's dictionary-memory experiments (Figure 8, third row).
	MemoryUsage() int
}

// ErrNoCoverage is returned by constructors when the entry set does not
// cover the string axis from "\x00" upward.
var ErrNoCoverage = errors.New("dict: entries do not cover the axis from \"\\x00\"")

// validateEntries checks ordering, coverage and symbol sanity.
func validateEntries(entries []Entry) error {
	if len(entries) == 0 {
		return errors.New("dict: empty entry set")
	}
	if len(entries[0].Boundary) == 0 || entries[0].Boundary[0] != 0x00 {
		// The region below the first boundary would be unreachable only
		// for the empty string; any other src needs a floor entry.
		if len(entries[0].Boundary) != 0 {
			return ErrNoCoverage
		}
	}
	for i, e := range entries {
		if e.SymbolLen == 0 {
			return fmt.Errorf("dict: entry %d has empty symbol", i)
		}
		if err := checkCode(e.Code); err != nil {
			return fmt.Errorf("dict: entry %d: %w", i, err)
		}
		if int(e.SymbolLen) > len(e.Boundary) {
			return fmt.Errorf("dict: entry %d symbol longer than boundary", i)
		}
		if i > 0 && bytes.Compare(entries[i-1].Boundary, e.Boundary) >= 0 {
			return fmt.Errorf("dict: boundaries not strictly increasing at %d", i)
		}
	}
	return nil
}

// checkCode rejects code words with set bits above their length. The
// encode kernels stage codes into a 64-bit word without masking (see
// Kernel), so this invariant is enforced once at construction instead of
// once per appended code.
func checkCode(c hutucker.Code) error {
	if c.Len > 64 {
		return fmt.Errorf("code length %d exceeds 64", c.Len)
	}
	if c.Len < 64 && c.Bits>>c.Len != 0 {
		return fmt.Errorf("code %#x has bits above its length %d", c.Bits, c.Len)
	}
	return nil
}

// BinarySearch is the reference dictionary: a sorted boundary array probed
// with binary search. It is used to cross-check the specialized structures
// and as the baseline in the dictionary-structure ablation.
type BinarySearch struct {
	boundaries [][]byte
	symLens    []uint8
	codes      []hutucker.Code
	memBytes   int
}

// NewBinarySearch builds the reference dictionary from sorted entries.
func NewBinarySearch(entries []Entry) (*BinarySearch, error) {
	if err := validateEntries(entries); err != nil {
		return nil, err
	}
	d := &BinarySearch{
		boundaries: make([][]byte, len(entries)),
		symLens:    make([]uint8, len(entries)),
		codes:      make([]hutucker.Code, len(entries)),
	}
	for i, e := range entries {
		d.boundaries[i] = e.Boundary
		d.symLens[i] = e.SymbolLen
		d.codes[i] = e.Code
		d.memBytes += len(e.Boundary) + 24 /*slice header*/ + 1 + 9
	}
	return d, nil
}

// Lookup returns the floor entry for src.
func (d *BinarySearch) Lookup(src []byte) (hutucker.Code, int) {
	// First index whose boundary is > src; floor is the one before.
	i := sort.Search(len(d.boundaries), func(i int) bool {
		return bytes.Compare(d.boundaries[i], src) > 0
	})
	if i == 0 {
		panic("dict: lookup below first boundary; dictionary must cover the axis")
	}
	i--
	return d.codes[i], int(d.symLens[i])
}

// NumEntries returns the number of intervals.
func (d *BinarySearch) NumEntries() int { return len(d.boundaries) }

// MemoryUsage returns the approximate footprint in bytes.
func (d *BinarySearch) MemoryUsage() int { return d.memBytes }
