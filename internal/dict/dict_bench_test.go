package dict

import (
	"math/rand"
	"testing"

	"repro/internal/hutucker"
)

func benchFixture(b *testing.B, depth int) ([]Entry, [][]byte) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	boundaries := randomCoveringBoundaries(rng, 20000, depth, 32)
	entries := make([]Entry, len(boundaries))
	for i, bd := range boundaries {
		entries[i] = Entry{Boundary: bd, SymbolLen: 1, Code: hutucker.Code{Bits: uint64(i), Len: 32}}
	}
	probes := make([][]byte, 4096)
	for i := range probes {
		probes[i] = randSrc(rng, depth+2, 40)
	}
	return entries, probes
}

func BenchmarkBitmapTrieLookup(b *testing.B) {
	entries, probes := benchFixture(b, 3)
	d, err := NewBitmapTrie(3, entries)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(probes[i%len(probes)])
	}
}

func BenchmarkBinarySearchLookup(b *testing.B) {
	entries, probes := benchFixture(b, 3)
	d, err := NewBinarySearch(entries)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(probes[i%len(probes)])
	}
}

func BenchmarkARTDictLookup(b *testing.B) {
	entries, probes := benchFixture(b, 3)
	d, err := NewARTDict(entries)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(probes[i%len(probes)])
	}
}
