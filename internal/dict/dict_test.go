package dict

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/hutucker"
	"repro/internal/stringaxis"
)

// makeEntries builds a valid covering entry set from a sorted list of
// unique boundaries (each starting the axis at "\x00"). Symbols are the
// interval common prefixes; codes are sequential fixed-length.
func makeEntries(t testing.TB, boundaries [][]byte) []Entry {
	t.Helper()
	entries := make([]Entry, len(boundaries))
	for i, b := range boundaries {
		var hi []byte
		if i+1 < len(boundaries) {
			hi = boundaries[i+1]
		}
		sym := stringaxis.IntervalCommonPrefix(b, hi)
		if len(sym) == 0 {
			t.Fatalf("boundary %q..%q has empty symbol; bad test fixture", b, hi)
		}
		entries[i] = Entry{
			Boundary:  b,
			SymbolLen: uint8(len(sym)),
			Code:      hutucker.Code{Bits: uint64(i), Len: 32},
		}
	}
	return entries
}

// randomCoveringBoundaries produces a sorted boundary set that covers the
// axis: all 256 single bytes plus random longer strings, split so symbols
// stay non-empty (longer boundaries under a single byte are fine).
func randomCoveringBoundaries(rng *rand.Rand, extra, maxLen, alphabet int) [][]byte {
	set := map[string]bool{}
	for c := 0; c < 256; c++ {
		set[string([]byte{byte(c)})] = true
	}
	for i := 0; i < extra; i++ {
		n := 2 + rng.Intn(maxLen-1)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(alphabet))
		}
		set[string(b)] = true
	}
	var out [][]byte
	for s := range set {
		out = append(out, []byte(s))
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out
}

func randSrc(rng *rand.Rand, maxLen, alphabet int) []byte {
	n := 1 + rng.Intn(maxLen)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(alphabet))
	}
	return b
}

func TestBinarySearchFloorSemantics(t *testing.T) {
	boundaries := [][]byte{{0}, {'a'}, {'a', 'b'}, {'a', 'b', 'c'}, {'b'}}
	// Fill coverage below 'a' and above 'b'.
	var all [][]byte
	for c := 0; c < 256; c++ {
		all = append(all, []byte{byte(c)})
	}
	all = append(all, boundaries[2], boundaries[3])
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i], all[j]) < 0 })
	d, err := NewBinarySearch(makeEntries(t, all))
	if err != nil {
		t.Fatal(err)
	}
	code, _ := d.Lookup([]byte("abb"))
	// Floor of "abb" is boundary "ab".
	wantIdx := sort.Search(len(all), func(i int) bool { return bytes.Compare(all[i], []byte("abb")) > 0 }) - 1
	if code.Bits != uint64(wantIdx) {
		t.Fatalf("floor code %d, want %d (boundary %q)", code.Bits, wantIdx, all[wantIdx])
	}
}

func TestValidateEntriesRejectsBadInput(t *testing.T) {
	good := makeEntries(t, randomCoveringBoundaries(rand.New(rand.NewSource(1)), 10, 4, 256))
	if _, err := NewBinarySearch(nil); err == nil {
		t.Fatal("empty set accepted")
	}
	// Not covering from 0x00.
	bad := append([]Entry{}, good[5:]...)
	if _, err := NewBinarySearch(bad); err == nil {
		t.Fatal("non-covering set accepted")
	}
	// Unsorted.
	bad2 := append([]Entry{}, good...)
	bad2[3], bad2[4] = bad2[4], bad2[3]
	if _, err := NewBinarySearch(bad2); err == nil {
		t.Fatal("unsorted set accepted")
	}
	// Empty symbol.
	bad3 := append([]Entry{}, good...)
	bad3[2].SymbolLen = 0
	if _, err := NewBinarySearch(bad3); err == nil {
		t.Fatal("empty symbol accepted")
	}
	// Symbol longer than boundary.
	bad4 := append([]Entry{}, good...)
	bad4[2].SymbolLen = uint8(len(bad4[2].Boundary) + 1)
	if _, err := NewBinarySearch(bad4); err == nil {
		t.Fatal("overlong symbol accepted")
	}
}

func TestSingleCharArray(t *testing.T) {
	var boundaries [][]byte
	for c := 0; c < 256; c++ {
		boundaries = append(boundaries, []byte{byte(c)})
	}
	entries := makeEntries(t, boundaries)
	d, err := NewSingleCharArray(entries)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 256; c++ {
		code, n := d.Lookup([]byte{byte(c), 'x'})
		if n != 1 || code.Bits != uint64(c) {
			t.Fatalf("Lookup(%#02x) = (%v,%d)", c, code, n)
		}
	}
	if d.NumEntries() != 256 || d.MemoryUsage() <= 0 {
		t.Fatal("metadata")
	}
	if _, err := NewSingleCharArray(entries[:200]); err == nil {
		t.Fatal("short entry set accepted")
	}
}

// doubleCharEntries builds the full Double-Char entry layout for a small
// alphabet: per first byte, one terminator entry then alphabet pair
// entries.
func doubleCharEntries(alphabet int) []Entry {
	entries := make([]Entry, 0, DoubleCharEntries(alphabet))
	idx := 0
	for c1 := 0; c1 < alphabet; c1++ {
		entries = append(entries, Entry{
			Boundary:  []byte{byte(c1)},
			SymbolLen: 1,
			Code:      hutucker.Code{Bits: uint64(idx), Len: 32},
		})
		idx++
		for c2 := 0; c2 < alphabet; c2++ {
			entries = append(entries, Entry{
				Boundary:  []byte{byte(c1), byte(c2)},
				SymbolLen: 2,
				Code:      hutucker.Code{Bits: uint64(idx), Len: 32},
			})
			idx++
		}
	}
	return entries
}

func TestDoubleCharArray(t *testing.T) {
	const alpha = 8
	d, err := NewDoubleCharArray(alpha, doubleCharEntries(alpha))
	if err != nil {
		t.Fatal(err)
	}
	// Two bytes remaining: pair entry.
	code, n := d.Lookup([]byte{3, 5, 7})
	if n != 2 {
		t.Fatalf("pair lookup consumed %d", n)
	}
	wantIdx := 3*(alpha+1) + 1 + 5
	if code.Bits != uint64(wantIdx) {
		t.Fatalf("pair code %d, want %d", code.Bits, wantIdx)
	}
	// One byte remaining: terminator entry.
	code, n = d.Lookup([]byte{3})
	if n != 1 || code.Bits != uint64(3*(alpha+1)) {
		t.Fatalf("terminator lookup = (%v,%d)", code, n)
	}
	if d.NumEntries() != DoubleCharEntries(alpha) {
		t.Fatal("entries")
	}
	if _, err := NewDoubleCharArray(alpha, doubleCharEntries(alpha)[:10]); err == nil {
		t.Fatal("short set accepted")
	}
}

func TestDoubleCharTerminatorOrdering(t *testing.T) {
	// The terminator boundary [c1] must sort before [c1, 0x00]: entry
	// order in the layout must equal interval order on the axis.
	entries := doubleCharEntries(4)
	for i := 1; i < len(entries); i++ {
		if bytes.Compare(entries[i-1].Boundary, entries[i].Boundary) >= 0 {
			t.Fatalf("layout order violates axis order at %d: %q then %q",
				i, entries[i-1].Boundary, entries[i].Boundary)
		}
	}
}

func TestBitmapTrieMatchesBinarySearch(t *testing.T) {
	for _, depth := range []int{3, 4} {
		for _, alphabet := range []int{3, 256} {
			rng := rand.New(rand.NewSource(int64(depth*100 + alphabet)))
			boundaries := randomCoveringBoundaries(rng, 500, depth, alphabet)
			entries := makeEntries(t, boundaries)
			ref, err := NewBinarySearch(entries)
			if err != nil {
				t.Fatal(err)
			}
			bt, err := NewBitmapTrie(depth, entries)
			if err != nil {
				t.Fatal(err)
			}
			if bt.NumEntries() != len(entries) {
				t.Fatal("entries")
			}
			for i := 0; i < 20000; i++ {
				src := randSrc(rng, depth+3, 257&0xFF|alphabet) // mix in-alphabet and beyond
				wc, wn := ref.Lookup(src)
				gc, gn := bt.Lookup(src)
				if wc != gc || wn != gn {
					t.Fatalf("depth=%d alpha=%d: Lookup(%q) = (%v,%d), want (%v,%d)",
						depth, alphabet, src, gc, gn, wc, wn)
				}
			}
		}
	}
}

func TestBitmapTrieBoundaryEqualsQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	boundaries := randomCoveringBoundaries(rng, 300, 3, 5)
	entries := makeEntries(t, boundaries)
	ref, _ := NewBinarySearch(entries)
	bt, err := NewBitmapTrie(3, entries)
	if err != nil {
		t.Fatal(err)
	}
	// Query exactly at each boundary: floor must be that boundary.
	for _, b := range boundaries {
		wc, wn := ref.Lookup(b)
		gc, gn := bt.Lookup(b)
		if wc != gc || wn != gn {
			t.Fatalf("Lookup(boundary %q) = (%v,%d), want (%v,%d)", b, gc, gn, wc, wn)
		}
	}
}

func TestBitmapTrieShortQuery(t *testing.T) {
	// Queries shorter than the trie depth exercise the terminator path.
	rng := rand.New(rand.NewSource(5))
	boundaries := randomCoveringBoundaries(rng, 400, 4, 4)
	entries := makeEntries(t, boundaries)
	ref, _ := NewBinarySearch(entries)
	bt, err := NewBitmapTrie(4, entries)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		src := randSrc(rng, 2, 6)
		wc, wn := ref.Lookup(src)
		gc, gn := bt.Lookup(src)
		if wc != gc || wn != gn {
			t.Fatalf("Lookup(%q) = (%v,%d), want (%v,%d)", src, gc, gn, wc, wn)
		}
	}
}

func TestBitmapTrieRejectsOverlongBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	boundaries := randomCoveringBoundaries(rng, 100, 4, 4)
	entries := makeEntries(t, boundaries)
	if _, err := NewBitmapTrie(3, entries); err == nil {
		t.Fatal("depth-3 trie accepted 4-byte boundaries")
	}
}

func TestBitmapTrieMemorySmallerThanART(t *testing.T) {
	// The paper reports the bitmap-trie up to an order of magnitude
	// smaller than the ART-based dictionary. That holds for realistic gram
	// dictionaries, whose boundaries cluster under few prefixes (natural-
	// language n-grams); use a clustered fixture, not uniform noise.
	rng := rand.New(rand.NewSource(7))
	boundaries := randomCoveringBoundaries(rng, 20000, 3, 16)
	entries := makeEntries(t, boundaries)
	bt, err := NewBitmapTrie(3, entries)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := NewARTDict(entries)
	if err != nil {
		t.Fatal(err)
	}
	if bt.MemoryUsage() >= ad.MemoryUsage() {
		t.Fatalf("bitmap-trie (%d B) not smaller than ART dict (%d B)",
			bt.MemoryUsage(), ad.MemoryUsage())
	}
}

func TestARTDictMatchesBinarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// ALM-style boundaries: arbitrary lengths.
	boundaries := randomCoveringBoundaries(rng, 800, 9, 5)
	entries := makeEntries(t, boundaries)
	ref, _ := NewBinarySearch(entries)
	ad, err := NewARTDict(entries)
	if err != nil {
		t.Fatal(err)
	}
	if ad.NumEntries() != len(entries) {
		t.Fatal("entries")
	}
	for i := 0; i < 20000; i++ {
		src := randSrc(rng, 12, 6)
		wc, wn := ref.Lookup(src)
		gc, gn := ad.Lookup(src)
		if wc != gc || wn != gn {
			t.Fatalf("Lookup(%q) = (%v,%d), want (%v,%d)", src, gc, gn, wc, wn)
		}
	}
}

func TestLookupBelowCoveragePanics(t *testing.T) {
	// A dictionary starting above \x00 passes validation only when its
	// first boundary is "\x00"; build one artificially and check the
	// panic guard in the reference dictionary.
	entries := makeEntries(t, randomCoveringBoundaries(rand.New(rand.NewSource(9)), 10, 3, 256))
	d, err := NewBinarySearch(entries[1:]) // drop "\x00"
	if err == nil {
		// Constructor may reject; if not, lookup must panic.
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on uncovered lookup")
			}
		}()
		d.Lookup([]byte{0x00})
	}
}
