package dict

import (
	"repro/internal/bitops"
)

// Kernel is the devirtualized encode fast path: a dictionary that
// implements it fuses the lookup+append loop over a whole key into one
// concrete method, so the encoder pays no interface dispatch and no
// sub-slice construction per symbol. AppendEncode walks key from position
// 0, appends every symbol's code to a, and returns the number of codes
// appended. All dictionaries in this package implement Kernel; the
// encoder captures the concrete kernel once at build time.
//
// Kernels rely on the constructor-checked invariant that every code's
// Bits has no set bits above Len, which lets them stage codes into a
// local 64-bit word without masking (see Appender.AppendWord).
type Kernel interface {
	AppendEncode(a *bitops.Appender, key []byte) int
}

// Static checks: every dictionary structure provides the fast path.
var (
	_ Kernel = (*SingleCharArray)(nil)
	_ Kernel = (*DoubleCharArray)(nil)
	_ Kernel = (*BitmapTrie)(nil)
	_ Kernel = (*ARTDict)(nil)
	_ Kernel = (*BinarySearch)(nil)
)

// AppendEncode encodes key through the 256-entry table: one load, one
// staged shift-or per source byte. This is the hottest loop in the
// repository; it compiles to a straight table-indexed scan.
func (d *SingleCharArray) AppendEncode(a *bitops.Appender, key []byte) int {
	var acc uint64
	var n uint
	for i := 0; i < len(key); i++ {
		c := d.codes[key[i]]
		cl := uint(c.Len)
		if n+cl > 64 {
			a.AppendWord(acc, n)
			acc, n = 0, 0
		}
		acc = acc<<cl | c.Bits
		n += cl
	}
	a.AppendWord(acc, n)
	return len(key)
}

// AppendEncode encodes key two bytes at a time through the
// alphabet*(alphabet+1) table, finishing with the terminator entry when a
// single byte remains.
func (d *DoubleCharArray) AppendEncode(a *bitops.Appender, key []byte) int {
	base := d.alphabet + 1
	codes := d.codes
	var acc uint64
	var n uint
	syms := 0
	i := 0
	for i+1 < len(key) {
		c := codes[int(key[i])*base+1+int(key[i+1])]
		cl := uint(c.Len)
		if n+cl > 64 {
			a.AppendWord(acc, n)
			acc, n = 0, 0
		}
		acc = acc<<cl | c.Bits
		n += cl
		i += 2
		syms++
	}
	if i < len(key) {
		c := codes[int(key[i])*base]
		cl := uint(c.Len)
		if n+cl > 64 {
			a.AppendWord(acc, n)
			acc, n = 0, 0
		}
		acc = acc<<cl | c.Bits
		n += cl
		syms++
	}
	a.AppendWord(acc, n)
	return syms
}

// AppendEncode encodes key through the bitmap trie, tracking the source
// position with an index instead of re-slicing, and staging codes
// word-at-a-time.
func (t *BitmapTrie) AppendEncode(a *bitops.Appender, key []byte) int {
	var acc uint64
	var n uint
	syms := 0
	for pos := 0; pos < len(key); {
		idx := t.floorIdx(key, pos)
		c := t.codes[idx]
		cl := uint(c.Len)
		if n+cl > 64 {
			a.AppendWord(acc, n)
			acc, n = 0, 0
		}
		acc = acc<<cl | c.Bits
		n += cl
		pos += int(t.symLens[idx])
		syms++
	}
	a.AppendWord(acc, n)
	return syms
}

// floorIdx is Lookup restated over (key, pos) so the encode kernel never
// constructs a sub-slice per symbol. It returns the floor entry's index.
func (t *BitmapTrie) floorIdx(key []byte, pos int) int {
	return t.floorFrom(key, pos, &t.levels[0][0], 0)
}

// floorFrom continues the floor walk from an arbitrary (node, depth)
// state; the batch kernel enters it at depth 1 after dispatching the
// first byte through the precomputed root table.
func (t *BitmapTrie) floorFrom(key []byte, pos int, node *btNode, start int) int {
	for d := start; ; d++ {
		if pos+d == len(key) {
			idx := int(node.startIdx) - 1
			if node.term {
				idx = int(node.startIdx)
			}
			return t.checkIdx(idx)
		}
		c := int(key[pos+d])
		r := bitops.Rank256(&node.bitmap, c)
		if bitops.Bit256(&node.bitmap, c) {
			if d == t.depth-1 {
				return t.checkIdx(int(node.startIdx) + boolInt(node.term) + r - 1)
			}
			node = &t.levels[d+1][node.childBase+uint32(r-1)]
			continue
		}
		if d == t.depth-1 {
			return t.checkIdx(int(node.startIdx) + boolInt(node.term) + r - 1)
		}
		if r > 0 {
			ch := &t.levels[d+1][node.childBase+uint32(r-1)]
			return t.checkIdx(int(ch.startIdx) + int(ch.count) - 1)
		}
		idx := int(node.startIdx) - 1
		if node.term {
			idx = int(node.startIdx)
		}
		return t.checkIdx(idx)
	}
}

func (t *BitmapTrie) checkIdx(idx int) int {
	if idx < 0 {
		panic("dict: lookup below first boundary; dictionary must cover the axis")
	}
	return idx
}

// AppendEncode encodes key through the ART floor search. The tree walk
// dominates here; the staging still removes the per-symbol interface
// dispatch and append bookkeeping.
func (d *ARTDict) AppendEncode(a *bitops.Appender, key []byte) int {
	var acc uint64
	var n uint
	syms := 0
	for pos := 0; pos < len(key); {
		_, idx, ok := d.tree.Floor(key[pos:])
		if !ok {
			panic("dict: lookup below first boundary; dictionary must cover the axis")
		}
		c := d.codes[idx]
		cl := uint(c.Len)
		if n+cl > 64 {
			a.AppendWord(acc, n)
			acc, n = 0, 0
		}
		acc = acc<<cl | c.Bits
		n += cl
		pos += int(d.symLens[idx])
		syms++
	}
	a.AppendWord(acc, n)
	return syms
}

// AppendEncode encodes key through the reference binary search. It exists
// so the ablation's forced binary-search dictionary goes through the same
// encoder plumbing as the specialized structures; the differential tests
// instead drive Lookup directly as the independent reference.
func (d *BinarySearch) AppendEncode(a *bitops.Appender, key []byte) int {
	var acc uint64
	var n uint
	syms := 0
	for pos := 0; pos < len(key); {
		c, symLen := d.Lookup(key[pos:])
		cl := uint(c.Len)
		if n+cl > 64 {
			a.AppendWord(acc, n)
			acc, n = 0, 0
		}
		acc = acc<<cl | c.Bits
		n += cl
		pos += symLen
		syms++
	}
	a.AppendWord(acc, n)
	return syms
}
