//go:build amd64 && !purego && gc

#include "textflag.h"

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// Shared register plan for both encode kernels (R14 is the goroutine
// pointer and R15 may hold the dynamic-link base, so both stay
// untouched):
//
//	R8  code table base (16-byte stride: bits at +0, len at +8)
//	R9  next source byte
//	R10 remaining source bytes
//	R11 next output word slot
//	R12 staging accumulator, left-aligned (bit 63 oldest)
//	R13 valid bits in R12, 0..63 between symbols
//	DI  completed words emitted
//	AX BX CX DX scratch
//
// Staging one code of length CL with BITS right-aligned:
//
//	room = 64 - n
//	fits (CL <= room):  acc |= BITS << (room-CL); n += CL; emit on n==64
//	spill (CL > room):  rem = CL-room; acc |= BITS >> rem; emit;
//	                    acc = BITS << (64-rem); n = rem
//
// which is exactly bitops.Appender.AppendWord's spill rule, so the
// emitted stream is bit-identical to the Go kernels.

// func encodeSingleAsm(tab *hutucker.Code, key *byte, klen int, words *uint64) (acc, n uint64, nWords int)
TEXT ·encodeSingleAsm(SB), NOSPLIT, $0-56
	MOVQ tab+0(FP), R8
	MOVQ key+8(FP), R9
	MOVQ klen+16(FP), R10
	MOVQ words+24(FP), R11
	XORQ R12, R12
	XORQ R13, R13
	XORQ DI, DI

loop:
	TESTQ R10, R10
	JZ    done
	MOVBLZX (R9), AX
	INCQ  R9
	DECQ  R10
	SHLQ  $4, AX
	MOVQ  (R8)(AX*1), BX      // BITS
	MOVBLZX 8(R8)(AX*1), CX   // CL
	MOVQ  $64, DX
	SUBQ  R13, DX             // room = 64 - n
	CMPQ  CX, DX
	JA    spill
	SUBQ  CX, DX              // room - CL
	SHLXQ DX, BX, BX
	ORQ   BX, R12
	ADDQ  CX, R13
	CMPQ  R13, $64
	JNE   loop
	MOVQ  R12, (R11)          // register full: emit
	ADDQ  $8, R11
	INCQ  DI
	XORQ  R12, R12
	XORQ  R13, R13
	JMP   loop

spill:
	SUBQ  DX, CX              // rem = CL - room
	SHRXQ CX, BX, DX
	ORQ   DX, R12
	MOVQ  R12, (R11)
	ADDQ  $8, R11
	INCQ  DI
	MOVQ  $64, DX
	SUBQ  CX, DX
	SHLXQ DX, BX, R12         // acc = BITS << (64-rem)
	MOVQ  CX, R13             // n = rem
	JMP   loop

done:
	MOVQ R12, acc+32(FP)
	MOVQ R13, n+40(FP)
	MOVQ DI, nWords+48(FP)
	RET

// func encodeDoubleAsm(tab *hutucker.Code, key *byte, klen int, words *uint64) (acc, n uint64, nWords int)
//
// Pair loop over the production byte alphabet: idx = c1*257 + 1 + c2.
// A trailing lone byte (terminator entry) is left to the Go wrapper.
TEXT ·encodeDoubleAsm(SB), NOSPLIT, $0-56
	MOVQ tab+0(FP), R8
	MOVQ key+8(FP), R9
	MOVQ klen+16(FP), R10
	MOVQ words+24(FP), R11
	XORQ R12, R12
	XORQ R13, R13
	XORQ DI, DI

loop:
	CMPQ  R10, $2
	JL    done
	MOVBLZX (R9), AX
	MOVBLZX 1(R9), BX
	ADDQ  $2, R9
	SUBQ  $2, R10
	MOVQ  AX, DX
	SHLQ  $8, DX
	ADDQ  DX, AX              // c1*257
	ADDQ  BX, AX
	INCQ  AX                  // idx = c1*257 + 1 + c2
	SHLQ  $4, AX
	MOVQ  (R8)(AX*1), BX      // BITS
	MOVBLZX 8(R8)(AX*1), CX   // CL
	MOVQ  $64, DX
	SUBQ  R13, DX             // room = 64 - n
	CMPQ  CX, DX
	JA    spill
	SUBQ  CX, DX
	SHLXQ DX, BX, BX
	ORQ   BX, R12
	ADDQ  CX, R13
	CMPQ  R13, $64
	JNE   loop
	MOVQ  R12, (R11)
	ADDQ  $8, R11
	INCQ  DI
	XORQ  R12, R12
	XORQ  R13, R13
	JMP   loop

spill:
	SUBQ  DX, CX
	SHRXQ CX, BX, DX
	ORQ   DX, R12
	MOVQ  R12, (R11)
	ADDQ  $8, R11
	INCQ  DI
	MOVQ  $64, DX
	SUBQ  CX, DX
	SHLXQ DX, BX, R12
	MOVQ  CX, R13
	JMP   loop

done:
	MOVQ R12, acc+32(FP)
	MOVQ R13, n+40(FP)
	MOVQ DI, nWords+48(FP)
	RET
