//go:build amd64 && !purego && gc

package dict

import (
	"sync"
	"unsafe"

	"repro/internal/bitops"
	"repro/internal/hutucker"
)

// asmKernels reports whether the amd64 assembly encode kernels run in
// this process: they are compiled in on amd64 (disable with the purego
// build tag) and enabled at runtime on the AVX2/BMI2 feature class
// (Haswell / x86-64-v3 and newer) — the kernels lean on BMI2's
// SHLX/SHRX flagless variable shifts for the code-staging hot loop.
// Variable-length bit concatenation is inherently serial in the bit
// offset, so the leg is scalar assembly gated on that feature class
// rather than a ymm-vectorized loop; see DESIGN.md.
var asmKernels = haveFastKernelCPU()

// The assembly walks the code table with a fixed 16-byte stride and
// loads the length byte at offset 8; pin hutucker.Code's layout at
// compile time so a struct change fails the build instead of the
// kernels.
var (
	_ [16]byte = [unsafe.Sizeof(hutucker.Code{})]byte{}
	_ [8]byte  = [unsafe.Offsetof(hutucker.Code{}.Len)]byte{}
)

func haveFastKernelCPU() bool {
	if maxLeaf, _, _, _ := cpuid(0, 0); maxLeaf < 7 {
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	const bmi2 = 1 << 8
	return ebx&(avx2|bmi2) == avx2|bmi2
}

// Implemented in kernel_amd64.s. The encode kernels emit every
// completed 64-bit word of the output stream into words (the caller
// sizes it generously from the dictionary's longest code) and return
// the leftover partial word left-aligned in acc with n valid top bits.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func encodeSingleAsm(tab *hutucker.Code, key *byte, klen int, words *uint64) (acc, n uint64, nWords int)
func encodeDoubleAsm(tab *hutucker.Code, key *byte, klen int, words *uint64) (acc, n uint64, nWords int)

// wordScratch pools the per-batch word buffers the assembly kernels
// emit into; encode batches run on pooled worker goroutines, so the
// scratch follows the same lifetime.
var wordScratch = sync.Pool{New: func() any {
	s := make([]uint64, 64)
	return &s
}}

// drainWords replays the assembly kernel's output into the appender:
// full words in one byte-aligned bulk store (every key starts on a byte
// boundary, so AppendWords64 takes its 8-byte-write path), then the
// left-aligned remainder right-shifted into AppendWord's expected form.
// The resulting bit stream is identical to the per-key kernel's —
// concatenation is associative in the chunking.
func drainWords(a *bitops.Appender, words []uint64, acc, n uint64) {
	a.AppendWords64(words)
	if n > 0 {
		a.AppendWord(acc>>(64-n), uint(n))
	}
}

func (d *SingleCharArray) appendEncodeBatchAsm(a *bitops.Appender, keys [][]byte, offs []int) {
	sp := wordScratch.Get().(*[]uint64)
	s := *sp
	for i, key := range keys {
		if len(key) == 0 {
			offs[i+1] = a.Pad()
			continue
		}
		if need := len(key)*int(d.maxLen)/64 + 1; need > len(s) {
			s = make([]uint64, need)
		}
		acc, n, nw := encodeSingleAsm(&d.codes[0], &key[0], len(key), &s[0])
		drainWords(a, s[:nw], acc, n)
		offs[i+1] = a.Pad()
	}
	*sp = s
	wordScratch.Put(sp)
}

func (d *DoubleCharArray) appendEncodeBatchAsm(a *bitops.Appender, keys [][]byte, offs []int) {
	sp := wordScratch.Get().(*[]uint64)
	s := *sp
	for i, key := range keys {
		if len(key) >= 2 {
			if need := len(key)/2*int(d.maxLen)/64 + 1; need > len(s) {
				s = make([]uint64, need)
			}
			acc, n, nw := encodeDoubleAsm(&d.codes[0], &key[0], len(key), &s[0])
			drainWords(a, s[:nw], acc, n)
		}
		if len(key)%2 == 1 {
			// Trailing lone byte: the terminator entry, staged by the
			// wrapper so the assembly loop stays pair-only.
			c := d.codes[int(key[len(key)-1])*(d.alphabet+1)]
			a.AppendWord(c.Bits, uint(c.Len))
		}
		offs[i+1] = a.Pad()
	}
	*sp = s
	wordScratch.Put(sp)
}
