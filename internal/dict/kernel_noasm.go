//go:build !amd64 || purego || !gc

package dict

import "repro/internal/bitops"

// asmKernels reports whether this build includes the amd64 assembly
// encode kernels. Non-amd64 targets, gccgo, and builds with the purego
// tag use the word-parallel pure-Go batch kernels only.
const asmKernels = false

// The stubs below are unreachable (useAsm is never set when asmKernels
// is false); they exist so the package compiles identically across
// build configurations.

func (d *SingleCharArray) appendEncodeBatchAsm(a *bitops.Appender, keys [][]byte, offs []int) {
	panic("dict: assembly kernel called in a build without assembly")
}

func (d *DoubleCharArray) appendEncodeBatchAsm(a *bitops.Appender, keys [][]byte, offs []int) {
	panic("dict: assembly kernel called in a build without assembly")
}
