// Package fault is a deterministic fault-injection framework for the
// lifecycle's background machinery: named injection points threaded
// through the rebuild/migration path fire seeded fault plans that return
// errors, stall (bounded or until cancelled), or panic. The data plane
// (hope.AdaptiveIndex) calls Fire at every checkpoint when an injector is
// installed; production runs pay one nil-check per checkpoint and nothing
// else.
//
// Determinism is the point: a Plan owns a single seeded PRNG, so the same
// seed over the same sequence of checkpoints fires the same faults in the
// same order — a chaos soak that fails replays exactly from its seed. The
// event log (Events) records every fired fault for post-hoc assertions.
//
// # Point namespaces
//
// Injection-point names are namespaced by an optional "op:" prefix — the
// part of the name before the first ':' — so one Plan can target a whole
// subsystem without enumerating (or colliding with) another subsystem's
// points. Two namespaces exist today:
//
//   - "" (no prefix): the adaptive rebuild/migration checkpoints — "build",
//     "batch", "mid-batch", "flip", "cutover", ...
//   - "snap": the snapshot VFS checkpoints — "snap:create", "snap:write",
//     "snap:sync", "snap:close", "snap:rename", "snap:remove",
//     "snap:open", "snap:read", "snap:dirsync".
//
// Rule.Point matches a full name exactly; Rule.Op restricts a rule to one
// namespace. A rule with Op "snap" and Point "" fires at every filesystem
// checkpoint and never at a rebuild checkpoint. Op "" (the zero value)
// leaves the namespace unconstrained — existing rebuild-point rules keep
// their meaning, and exact Point names are unambiguous across namespaces
// anyway.
package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Kind is the failure mode a rule injects.
type Kind uint8

const (
	// None never fires (a disabled rule).
	None Kind = iota
	// Error returns an *Injected error from the checkpoint.
	Error
	// Stall blocks the checkpoint: for Rule.Stall > 0 a bounded sleep,
	// for Rule.Stall < 0 until the cancel channel closes (a wedge only a
	// watchdog can clear).
	Stall
	// Panic panics with the *Injected describing the hit.
	Panic
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Stall:
		return "stall"
	case Panic:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Injector decides at each named point whether to inject a fault. Fire
// returns nil to let execution continue, an error to fail the checkpoint,
// or does not return at all (stall until cancelled, panic). Implementations
// must be safe for concurrent use.
type Injector interface {
	Fire(point string, shard int) error
}

// Func adapts a plain function to the Injector interface — the migration
// test hooks that predate fault plans.
type Func func(point string, shard int) error

// Fire implements Injector.
func (f Func) Fire(point string, shard int) error { return f(point, shard) }

// CancelAware is implemented by injectors whose stalls can be woken early.
// The data plane hands the injector its per-rebuild cancel channel before
// migration starts; a watchdog firing closes the channel, and any stalled
// Fire returns so the checkpoint can observe the cancellation.
type CancelAware interface {
	SetCancel(<-chan struct{})
}

// Injected is the error an Error fault returns and the value a Panic fault
// panics with.
type Injected struct {
	Point string
	Shard int
	Kind  Kind
	N     int // cumulative hit count on the matching rule when it fired
}

func (e *Injected) Error() string {
	return fmt.Sprintf("fault: injected %v at %s/%d (hit %d)", e.Kind, e.Point, e.Shard, e.N)
}

// Rule matches checkpoints and decides when and how to fire. The zero
// shard-matcher convention: Shard < 0 matches every shard (checkpoints
// outside any shard report shard -1, which only Shard < 0 rules match).
type Rule struct {
	// Point is the injection-point name; "" matches every point.
	Point string
	// Op restricts the rule to one checkpoint namespace — the part of the
	// point name before the first ':' ("snap" for the snapshot VFS
	// checkpoints, "" for the un-prefixed rebuild checkpoints). The zero
	// value leaves the namespace unconstrained. See the package comment.
	Op string
	// Shard restricts the rule to one shard; any negative value matches
	// all shards.
	Shard int
	// Kind is the failure mode; None disables the rule.
	Kind Kind
	// Prob fires the rule with this per-hit probability (seeded PRNG).
	// With Prob == 0 and Nth == 0 the rule fires on every matching hit.
	Prob float64
	// Nth fires the rule only on the Nth matching hit (1-based),
	// overriding Prob.
	Nth int
	// Stall is the stall duration for Kind == Stall: positive sleeps that
	// long (woken early by cancellation), negative blocks until cancelled.
	Stall time.Duration
	// Once disarms the rule after its first firing.
	Once bool
}

func (r Rule) matches(point string, shard int) bool {
	if r.Kind == None {
		return false
	}
	if r.Op != "" && Namespace(point) != r.Op {
		return false
	}
	if r.Point != "" && r.Point != point {
		return false
	}
	if r.Shard >= 0 && r.Shard != shard {
		return false
	}
	return true
}

// Namespace returns the point name's namespace: the part before the first
// ':' ("snap" for "snap:write"), or "" for an un-prefixed point.
func Namespace(point string) string {
	for i := 0; i < len(point); i++ {
		if point[i] == ':' {
			return point[:i]
		}
	}
	return ""
}

// Event is one fired fault, in firing order.
type Event struct {
	Point string
	Shard int
	Kind  Kind
}

type ruleState struct {
	Rule
	hits  int
	fired bool
}

// Plan is a deterministic seeded fault plan: an Injector driven by a rule
// list and one PRNG. Safe for concurrent use; concurrent checkpoints
// serialize through the plan mutex, so the PRNG consumption order — and
// therefore the fault sequence for a fixed checkpoint order — is a pure
// function of the seed.
type Plan struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rules  []*ruleState
	events []Event
	cancel <-chan struct{}
}

// NewPlan builds a plan over the rules, evaluated in order (the first
// matching rule that decides to fire wins the hit).
func NewPlan(seed int64, rules ...Rule) *Plan {
	p := &Plan{rng: rand.New(rand.NewSource(seed))}
	for _, r := range rules {
		r := r
		p.rules = append(p.rules, &ruleState{Rule: r})
	}
	return p
}

// SetCancel implements CancelAware: stalls in flight (and future ones)
// return early once ch closes.
func (p *Plan) SetCancel(ch <-chan struct{}) {
	p.mu.Lock()
	p.cancel = ch
	p.mu.Unlock()
}

// Disarm clears every rule (the event log survives): the plan keeps
// satisfying the Injector interface but never fires again. A chaos run
// disarms before its final verification rebuild.
func (p *Plan) Disarm() {
	p.mu.Lock()
	p.rules = nil
	p.mu.Unlock()
}

// Events returns a copy of the fired-fault log in firing order.
func (p *Plan) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// Fired reports how many faults of the kind have fired (any kind when
// k == None).
func (p *Plan) Fired(k Kind) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.events {
		if k == None || e.Kind == k {
			n++
		}
	}
	return n
}

// Fire implements Injector.
func (p *Plan) Fire(point string, shard int) error {
	p.mu.Lock()
	var hit *ruleState
	for _, rs := range p.rules {
		if !rs.matches(point, shard) {
			continue
		}
		if rs.Once && rs.fired {
			continue
		}
		rs.hits++
		fire := false
		switch {
		case rs.Nth > 0:
			fire = rs.hits == rs.Nth
		case rs.Prob > 0:
			fire = p.rng.Float64() < rs.Prob
		default:
			fire = true
		}
		if fire {
			hit = rs
			break
		}
	}
	if hit == nil {
		p.mu.Unlock()
		return nil
	}
	hit.fired = true
	p.events = append(p.events, Event{Point: point, Shard: shard, Kind: hit.Kind})
	inj := &Injected{Point: point, Shard: shard, Kind: hit.Kind, N: hit.hits}
	stall, cancel := hit.Stall, p.cancel
	kind := hit.Kind
	p.mu.Unlock()

	switch kind {
	case Error:
		return inj
	case Panic:
		panic(inj)
	case Stall:
		if stall < 0 {
			if cancel == nil {
				return fmt.Errorf("fault: unbounded stall at %s/%d with no cancel channel", point, shard)
			}
			<-cancel
			return nil
		}
		t := time.NewTimer(stall)
		defer t.Stop()
		if cancel != nil {
			select {
			case <-t.C:
			case <-cancel:
			}
		} else {
			<-t.C
		}
		return nil
	}
	return nil
}
