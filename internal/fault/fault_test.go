package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// drive fires a fixed checkpoint sequence and returns the event log.
func drive(p *Plan, n int) []Event {
	for i := 0; i < n; i++ {
		func() {
			defer func() { recover() }() // swallow injected panics
			_ = p.Fire("batch", i%4)
		}()
	}
	return p.Events()
}

func TestPlanDeterminism(t *testing.T) {
	mk := func() *Plan {
		return NewPlan(42,
			Rule{Point: "batch", Shard: -1, Kind: Error, Prob: 0.3},
			Rule{Point: "batch", Shard: -1, Kind: Panic, Prob: 0.1},
		)
	}
	a := drive(mk(), 200)
	b := drive(mk(), 200)
	if len(a) == 0 {
		t.Fatal("no faults fired in 200 hits at p=0.3")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := drive(NewPlan(43,
		Rule{Point: "batch", Shard: -1, Kind: Error, Prob: 0.3},
		Rule{Point: "batch", Shard: -1, Kind: Panic, Prob: 0.1},
	), 200)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical event logs")
	}
}

func TestRuleMatching(t *testing.T) {
	p := NewPlan(1,
		Rule{Point: "cutover", Shard: -1, Kind: Error},
		Rule{Point: "batch", Shard: 2, Kind: Error},
	)
	if err := p.Fire("build-start", -1); err != nil {
		t.Fatalf("unmatched point fired: %v", err)
	}
	if err := p.Fire("batch", 1); err != nil {
		t.Fatalf("unmatched shard fired: %v", err)
	}
	err := p.Fire("batch", 2)
	var inj *Injected
	if !errors.As(err, &inj) || inj.Point != "batch" || inj.Shard != 2 {
		t.Fatalf("shard-scoped rule: %v", err)
	}
	if err := p.Fire("cutover", -1); err == nil {
		t.Fatal("cutover rule did not fire")
	}
	if got := p.Fired(Error); got != 2 {
		t.Fatalf("Fired(Error) = %d, want 2", got)
	}
}

func TestOpNamespaceMatching(t *testing.T) {
	if got := Namespace("snap:write"); got != "snap" {
		t.Fatalf("Namespace(snap:write) = %q, want snap", got)
	}
	if got := Namespace("batch"); got != "" {
		t.Fatalf("Namespace(batch) = %q, want \"\"", got)
	}

	// An Op-scoped wildcard fires at every point of its namespace and at
	// none of another namespace's — one plan can soak the snapshot VFS
	// without ever perturbing a concurrent rebuild.
	p := NewPlan(1, Rule{Op: "snap", Shard: -1, Kind: Error})
	if err := p.Fire("batch", 0); err != nil {
		t.Fatalf("snap-scoped rule fired at a rebuild checkpoint: %v", err)
	}
	if err := p.Fire("cutover", -1); err != nil {
		t.Fatalf("snap-scoped rule fired at a rebuild checkpoint: %v", err)
	}
	for _, pt := range []string{"snap:create", "snap:write", "snap:sync", "snap:rename"} {
		err := p.Fire(pt, -1)
		var inj *Injected
		if !errors.As(err, &inj) || inj.Point != pt {
			t.Fatalf("snap-scoped rule at %s: %v", pt, err)
		}
	}

	// Op composes with Point: both must match.
	p = NewPlan(1, Rule{Op: "snap", Point: "snap:sync", Shard: -1, Kind: Error})
	if err := p.Fire("snap:write", -1); err != nil {
		t.Fatalf("Op+Point rule fired at wrong point: %v", err)
	}
	if err := p.Fire("snap:sync", -1); err == nil {
		t.Fatal("Op+Point rule did not fire at its point")
	}

	// Zero Op leaves the namespace unconstrained (compatibility).
	p = NewPlan(1, Rule{Shard: -1, Kind: Error})
	if err := p.Fire("snap:write", -1); err == nil {
		t.Fatal("unconstrained wildcard must match namespaced points")
	}
}

func TestNthAndOnce(t *testing.T) {
	p := NewPlan(1,
		Rule{Point: "batch", Shard: -1, Kind: Error, Nth: 3},
	)
	for i := 1; i <= 5; i++ {
		err := p.Fire("batch", 0)
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err=%v, want fire only on hit 3", i, err)
		}
	}
	p = NewPlan(1, Rule{Point: "batch", Shard: -1, Kind: Error, Once: true})
	if err := p.Fire("batch", 0); err == nil {
		t.Fatal("Once rule did not fire on first hit")
	}
	if err := p.Fire("batch", 0); err != nil {
		t.Fatalf("Once rule fired twice: %v", err)
	}
}

func TestPanicKindPanicsWithInjected(t *testing.T) {
	p := NewPlan(1, Rule{Point: "mid-batch", Shard: -1, Kind: Panic})
	defer func() {
		r := recover()
		inj, ok := r.(*Injected)
		if !ok || inj.Kind != Panic || inj.Point != "mid-batch" {
			t.Fatalf("recovered %v, want *Injected panic fault", r)
		}
	}()
	_ = p.Fire("mid-batch", 3)
	t.Fatal("panic fault did not panic")
}

func TestStallBoundedAndCancel(t *testing.T) {
	p := NewPlan(1, Rule{Point: "batch", Shard: -1, Kind: Stall, Stall: 10 * time.Millisecond})
	start := time.Now()
	if err := p.Fire("batch", 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("bounded stall returned after %v", d)
	}

	// Unbounded stall wakes when the cancel channel closes.
	p = NewPlan(1, Rule{Point: "batch", Shard: -1, Kind: Stall, Stall: -1})
	cancel := make(chan struct{})
	p.SetCancel(cancel)
	var wg sync.WaitGroup
	wg.Add(1)
	returned := make(chan struct{})
	go func() {
		defer wg.Done()
		_ = p.Fire("batch", 0)
		close(returned)
	}()
	select {
	case <-returned:
		t.Fatal("unbounded stall returned before cancel")
	case <-time.After(20 * time.Millisecond):
	}
	close(cancel)
	select {
	case <-returned:
	case <-time.After(2 * time.Second):
		t.Fatal("unbounded stall did not wake on cancel")
	}
	wg.Wait()

	// Unbounded stall with no cancel channel is a configuration error,
	// not a hang.
	p = NewPlan(1, Rule{Point: "batch", Shard: -1, Kind: Stall, Stall: -1})
	if err := p.Fire("batch", 0); err == nil {
		t.Fatal("unbounded stall without cancel channel returned nil")
	}
}

func TestDisarm(t *testing.T) {
	p := NewPlan(1, Rule{Kind: Error, Shard: -1})
	if err := p.Fire("anything", 0); err == nil {
		t.Fatal("wildcard rule did not fire")
	}
	p.Disarm()
	if err := p.Fire("anything", 0); err != nil {
		t.Fatalf("disarmed plan fired: %v", err)
	}
	if len(p.Events()) != 1 {
		t.Fatal("event log did not survive Disarm")
	}
}

func TestFuncAdapter(t *testing.T) {
	want := errors.New("boom")
	var inj Injector = Func(func(point string, shard int) error {
		if point == "cutover" {
			return want
		}
		return nil
	})
	if err := inj.Fire("batch", 0); err != nil {
		t.Fatal(err)
	}
	if err := inj.Fire("cutover", -1); err != want {
		t.Fatalf("got %v", err)
	}
}
