package hot

import "bytes"

// Delete removes a key and reports whether it was present. The leaf's
// binary node is removed from its compound node's mini-trie (a local
// rebuild, mirroring insertion); a compound node left with a single entry
// that is itself a compound node is replaced by that child to keep the
// height optimized.
func (t *Tree) Delete(key []byte) bool {
	if t.root == nil {
		return false
	}
	// Verify presence first: the bit walk alone cannot distinguish absent
	// keys (partial-key trie).
	cn := t.root
	for {
		e := cn.entries[cn.walkEntry(key)]
		if e.leaf != nil {
			if !bytes.Equal(e.leaf.key, key) {
				return false
			}
			break
		}
		cn = e.child
	}
	t.size--
	t.deleteAt(t.root, key)
	if len(t.root.entries) == 1 && t.root.entries[0].child != nil {
		t.root = t.root.entries[0].child
	}
	if t.size == 0 {
		t.root = nil
	}
	return true
}

// deleteAt removes the key's leaf from the subtree rooted at cn; it
// reports whether cn itself collapsed to a single entry so the parent can
// splice it (keeping compound nodes non-trivial).
func (t *Tree) deleteAt(cn *cnode, key []byte) {
	// Locate the entry on the walk path.
	if len(cn.bits) == 0 {
		e := &cn.entries[0]
		if e.child != nil {
			t.deleteChildEntry(cn, e, key)
		}
		// A lone leaf entry: the caller (Delete) zeroes the tree when
		// size reaches 0; a non-root single-leaf cnode stays valid.
		return
	}
	cur := int32(0)
	for {
		var next int32
		if bitAt(key, int(cn.bits[cur])) == 0 {
			next = cn.left[cur]
		} else {
			next = cn.right[cur]
		}
		if next >= 0 {
			cur = next
			continue
		}
		e := &cn.entries[-(next + 1)]
		if e.child != nil {
			t.deleteChildEntry(cn, e, key)
			return
		}
		// Remove this leaf's binary node: decode, drop, re-encode.
		root := t.decodeArena(cn)
		root = removeLeaf(root, key)
		encodeInto(cn, root)
		return
	}
}

// deleteChildEntry recurses into a child compound node and splices it out
// if it degenerates to a single entry.
func (t *Tree) deleteChildEntry(cn *cnode, e *entry, key []byte) {
	child := e.child
	t.deleteAt(child, key)
	if len(child.entries) == 1 {
		// Splice the trivial compound node out of the tree.
		*e = child.entries[0]
	}
}

// removeLeaf drops the leaf matching key from a decoded mini-trie: its
// parent binary node is replaced by the sibling subtree.
func removeLeaf(r tref, key []byte) tref {
	if r.n == nil {
		return r // single-entry node handled by caller
	}
	var sibling, taken tref
	if bitAt(key, int(r.n.bit)) == 0 {
		taken, sibling = r.n.l, r.n.r
	} else {
		sibling, taken = r.n.l, r.n.r
	}
	if taken.n == nil && taken.e.leaf != nil && bytes.Equal(taken.e.leaf.key, key) {
		return sibling
	}
	if bitAt(key, int(r.n.bit)) == 0 {
		r.n.l = removeLeaf(taken, key)
	} else {
		r.n.r = removeLeaf(taken, key)
	}
	return r
}
