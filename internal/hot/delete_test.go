package hot

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeleteBasic(t *testing.T) {
	tr := New()
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i, k := range keys {
		tr.Insert([]byte(k), uint64(i))
	}
	if !tr.Delete([]byte("beta")) {
		t.Fatal("delete failed")
	}
	if tr.Delete([]byte("beta")) {
		t.Fatal("double delete")
	}
	if tr.Delete([]byte("zeta")) {
		t.Fatal("deleted absent key")
	}
	if _, ok := tr.Get([]byte("beta")); ok {
		t.Fatal("still present")
	}
	for _, k := range []string{"alpha", "gamma", "delta", "epsilon"} {
		if _, ok := tr.Get([]byte(k)); !ok {
			t.Fatalf("collateral: %q", k)
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestDeleteAllEmptiesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := randKeys(rng, 3000, 10, 8)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("delete %q failed at %d", k, i)
		}
		if _, ok := tr.Get(k); ok {
			t.Fatalf("%q still present", k)
		}
	}
	if tr.Len() != 0 || tr.root != nil {
		t.Fatal("tree not empty")
	}
	// Reusable after emptying.
	tr.Insert([]byte("again"), 1)
	if v, ok := tr.Get([]byte("again")); !ok || v != 1 {
		t.Fatal("tree unusable after emptying")
	}
}

func TestDeletePreservesFanoutInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randKeys(rng, 20000, 8, 16)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	// Delete 80% randomly, then validate the structure.
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	cut := len(keys) * 8 / 10
	for _, k := range keys[:cut] {
		if !tr.Delete(k) {
			t.Fatalf("delete %q", k)
		}
	}
	var check func(c *cnode)
	check = func(c *cnode) {
		if len(c.entries) > MaxFanout {
			t.Fatalf("fanout violated: %d", len(c.entries))
		}
		if len(c.bits) != 0 && len(c.entries) != len(c.bits)+1 {
			t.Fatalf("mini-trie inconsistent after deletes")
		}
		for _, e := range c.entries {
			if e.child != nil {
				if len(e.child.entries) == 1 {
					t.Fatal("trivial compound node not spliced")
				}
				check(e.child)
			}
		}
	}
	check(tr.root)
	for i, k := range keys[cut:] {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("survivor %d lost", i)
		}
	}
	// Scans stay sorted and complete.
	n := 0
	var prev []byte
	tr.Scan(nil, func(k []byte, _ uint64) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("scan unsorted after deletes")
		}
		prev = append(prev[:0], k...)
		n++
		return true
	})
	if n != len(keys)-cut {
		t.Fatalf("scan saw %d, want %d", n, len(keys)-cut)
	}
}

func TestInsertDeleteQuickProperty(t *testing.T) {
	type op struct {
		Key []byte
		Del bool
		Val uint64
	}
	f := func(ops []op) bool {
		tr := New()
		ref := map[string]uint64{}
		for _, o := range ops {
			k := o.Key
			if len(k) > 10 {
				k = k[:10]
			}
			if o.Del {
				_, present := ref[string(k)]
				delete(ref, string(k))
				if tr.Delete(k) != present {
					return false
				}
			} else {
				tr.Insert(k, o.Val)
				ref[string(k)] = o.Val
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := tr.Get([]byte(k)); !ok || got != v {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteFromSingletonAndPrefixChains(t *testing.T) {
	tr := New()
	tr.Insert([]byte("only"), 1)
	if !tr.Delete([]byte("only")) || tr.Len() != 0 {
		t.Fatal("singleton delete")
	}
	// Prefix chains exercise the 9-bit terminator groups.
	chain := []string{"", "a", "ab", "abc", "abcd"}
	for i, k := range chain {
		tr.Insert([]byte(k), uint64(i))
	}
	for _, k := range []string{"ab", "", "abcd"} {
		if !tr.Delete([]byte(k)) {
			t.Fatalf("delete %q", k)
		}
	}
	for _, k := range []string{"a", "abc"} {
		if _, ok := tr.Get([]byte(k)); !ok {
			t.Fatalf("survivor %q lost", k)
		}
	}
	if tr.Len() != 2 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestDeleteSequentialDense(t *testing.T) {
	tr := New()
	n := 5000
	for i := 0; i < n; i++ {
		tr.Insert([]byte(fmt.Sprintf("%06d", i)), uint64(i))
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete([]byte(fmt.Sprintf("%06d", i))) {
			t.Fatalf("delete %d", i)
		}
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get([]byte(fmt.Sprintf("%06d", i)))
		if (i%2 == 0) == ok {
			t.Fatalf("key %d presence %v", i, ok)
		}
	}
}
