// Package hot implements a Height Optimized Trie (Binna et al., SIGMOD
// 2018), the third search tree the HOPE paper evaluates. HOT's core idea
// is a binary Patricia trie over the keys' discriminative bits, packed
// into compound nodes with fanout up to 32 so the tree height approaches
// ceil(log32 n) regardless of key-space sparsity. Each compound node holds
// a mini binary trie in flat arrays (cache-friendly, pointer-free within
// the node); leaves store only partial-key information plus a reference to
// the full key, which models HOT's tuple pointer — lookups walk
// discriminative bits only and verify the candidate against the full key
// at the end, exactly the optimistic behaviour the paper says dilutes
// HOPE's benefit on HOT (Figures 7 and 12).
//
// This is a from-scratch reimplementation of the published design without
// its SIMD partial-key layouts (see DESIGN.md, Substitutions); height,
// fanout bound, memory proportionality and partial-key semantics match.
package hot

import "bytes"

// MaxFanout is the compound-node capacity (the published HOT's k = 32).
const MaxFanout = 32

// Tree is a height-optimized trie mapping byte-string keys to uint64.
type Tree struct {
	root *cnode
	size int

	// arena is scratch storage for the decoded form of the single
	// compound node an insert mutates; reusing it keeps inserts nearly
	// allocation-free. Only one node's decoded tree is live at a time
	// (children are re-encoded before their parent is decoded).
	arena []tnode
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

// leaf holds a full key (modeling the tuple the DBMS would verify
// against) and its value.
type leaf struct {
	key []byte
	val uint64
}

// entry is a compound-node slot: either a child compound node or a leaf.
type entry struct {
	child *cnode
	leaf  *leaf
}

// cnode is a compound node: a mini binary Patricia trie over at most
// MaxFanout entries, flattened into arrays. bits[i] is the discriminative
// bit position of mini-trie node i; left/right encode children: values
// >= 0 index bits, values < 0 index entries as -(v+1). Entries are kept in
// trie (= key) order. A cnode with no mini-trie nodes holds exactly one
// entry.
type cnode struct {
	bits    []int32
	left    []int32
	right   []int32
	entries []entry
}

// bitAt reads the key's order-embedded bit string: each byte contributes a
// leading 1 bit then its 8 data bits, and the end of the key contributes a
// 0 bit followed by zeros. This embedding makes distinct keys differ at
// some bit and makes bit-string order equal byte-string order, prefix keys
// included.
func bitAt(key []byte, pos int) int {
	g, r := pos/9, pos%9
	if g >= len(key) {
		return 0
	}
	if r == 0 {
		return 1
	}
	return int(key[g]>>(8-uint(r))) & 1
}

// critBit returns the first position where the embedded bit strings of a
// and b differ. a and b must be distinct.
func critBit(a, b []byte) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for g := 0; g <= n; g++ {
		var ga, gb uint16
		if g < len(a) {
			ga = 1<<8 | uint16(a[g])
		}
		if g < len(b) {
			gb = 1<<8 | uint16(b[g])
		}
		if ga != gb {
			diff := ga ^ gb
			// Highest differing bit within the 9-bit group.
			for i := 0; i < 9; i++ {
				if diff&(1<<(8-uint(i))) != 0 {
					return g*9 + i
				}
			}
		}
	}
	panic("hot: critBit on equal keys")
}

// walkEntry descends the mini-trie by the key's bits and returns the entry
// index reached.
func (c *cnode) walkEntry(key []byte) int {
	if len(c.bits) == 0 {
		return 0
	}
	i := int32(0)
	for {
		var next int32
		if bitAt(key, int(c.bits[i])) == 0 {
			next = c.left[i]
		} else {
			next = c.right[i]
		}
		if next < 0 {
			return int(-(next + 1))
		}
		i = next
	}
}

// Get looks up a key: a pure discriminative-bit walk with one final
// verification against the stored full key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	cn := t.root
	if cn == nil {
		return 0, false
	}
	for {
		e := cn.entries[cn.walkEntry(key)]
		if e.leaf != nil {
			if bytes.Equal(e.leaf.key, key) {
				return e.leaf.val, true
			}
			return 0, false
		}
		cn = e.child
	}
}

// Stats summarizes structure and modeled memory.
type Stats struct {
	CompoundNodes int
	MiniTrieNodes int
	Entries       int
	Leaves        int
	MaxDepth      int // compound-node levels
	SumLeafDepth  int
	MemoryBytes   int
}

// ComputeStats traverses the tree. Modeled footprint: 16 B per compound
// node header, 12 B per mini-trie node (bit position + two child slots),
// 8 B per entry slot, 16 B per leaf (value pointer + tag — full key bytes
// live with the tuples, as in the published HOT).
func (t *Tree) ComputeStats() Stats {
	var s Stats
	if t.root != nil {
		hotWalk(t.root, 1, &s)
	}
	s.MemoryBytes = s.CompoundNodes*16 + s.MiniTrieNodes*12 + s.Entries*8 + s.Leaves*16
	return s
}

func hotWalk(c *cnode, depth int, s *Stats) {
	s.CompoundNodes++
	s.MiniTrieNodes += len(c.bits)
	s.Entries += len(c.entries)
	if depth > s.MaxDepth {
		s.MaxDepth = depth
	}
	for _, e := range c.entries {
		if e.leaf != nil {
			s.Leaves++
			s.SumLeafDepth += depth
			continue
		}
		hotWalk(e.child, depth+1, s)
	}
}

// MemoryUsage returns the modeled footprint in bytes.
func (t *Tree) MemoryUsage() int { return t.ComputeStats().MemoryBytes }

// AvgLeafDepth returns the average compound-node depth of leaves — the
// height metric HOT optimizes.
func (t *Tree) AvgLeafDepth() float64 {
	s := t.ComputeStats()
	if s.Leaves == 0 {
		return 0
	}
	return float64(s.SumLeafDepth) / float64(s.Leaves)
}

// Scan visits keys >= start in ascending order until fn returns false.
// Entries within each compound node are in key order, so iteration is a
// nested in-order walk; the start position is located by key comparison
// (bit walks alone cannot lower-bound absent keys in a Patricia trie).
func (t *Tree) Scan(start []byte, fn func(key []byte, val uint64) bool) {
	if t.root != nil {
		scanRec(t.root, start, fn)
	}
}

func scanRec(c *cnode, start []byte, fn func([]byte, uint64) bool) bool {
	for i := range c.entries {
		e := &c.entries[i]
		if e.leaf != nil {
			if bytes.Compare(e.leaf.key, start) >= 0 {
				if !fn(e.leaf.key, e.leaf.val) {
					return false
				}
			}
			continue
		}
		// Prune subtrees that end before start: compare against the
		// subtree's maximum key.
		if bytes.Compare(maxKey(e.child), start) < 0 {
			continue
		}
		if !scanRec(e.child, start, fn) {
			return false
		}
	}
	return true
}

func maxKey(c *cnode) []byte {
	for {
		e := c.entries[len(c.entries)-1]
		if e.leaf != nil {
			return e.leaf.key
		}
		c = e.child
	}
}
