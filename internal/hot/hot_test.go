package hot

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/datagen"
)

func randKeys(rng *rand.Rand, n, maxLen, alphabet int) [][]byte {
	seen := map[string]bool{}
	var out [][]byte
	for len(out) < n {
		k := make([]byte, rng.Intn(maxLen+1))
		for i := range k {
			k[i] = byte(rng.Intn(alphabet))
		}
		if !seen[string(k)] {
			seen[string(k)] = true
			out = append(out, k)
		}
	}
	return out
}

func TestBitEmbeddingOrderAndDistinctness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := randKeys(rng, 500, 6, 4)
	// critBit must exist for all distinct pairs, and the bit value at the
	// critical position must match byte order.
	for i := 0; i < 300; i++ {
		a := keys[rng.Intn(len(keys))]
		b := keys[rng.Intn(len(keys))]
		if bytes.Equal(a, b) {
			continue
		}
		c := critBit(a, b)
		// Bits above c agree.
		for p := 0; p < c; p++ {
			if bitAt(a, p) != bitAt(b, p) {
				t.Fatalf("bit %d differs below critBit %d for %q,%q", p, c, a, b)
			}
		}
		if bitAt(a, c) == bitAt(b, c) {
			t.Fatalf("critBit %d does not differ for %q,%q", c, a, b)
		}
		// Order: the key with bit 0 at c is the smaller one.
		small, big := a, b
		if bytes.Compare(a, b) > 0 {
			small, big = b, a
		}
		if bitAt(small, c) != 0 || bitAt(big, c) != 1 {
			t.Fatalf("embedding order broken for %q < %q at bit %d", small, big, c)
		}
	}
}

func TestPrefixPairsDistinguished(t *testing.T) {
	// The classic bit-trie trap: "ab" vs "ab\x00" vs "ab\x00\x00".
	pairs := [][2]string{
		{"ab", "ab\x00"}, {"ab", "ab\x00\x00"}, {"", "\x00"},
		{"x", "x\x00\x00\x00y"}, {"q", "q\x01"},
	}
	for _, p := range pairs {
		a, b := []byte(p[0]), []byte(p[1])
		c := critBit(a, b)
		if bitAt(a, c) != 0 || bitAt(b, c) != 1 {
			t.Fatalf("prefix pair %q/%q: shorter must order first at bit %d", a, b, c)
		}
	}
}

func TestInsertGetRandom(t *testing.T) {
	for _, alpha := range []int{2, 16, 256} {
		rng := rand.New(rand.NewSource(int64(alpha)))
		keys := randKeys(rng, 4000, 12, alpha)
		tr := New()
		for i, k := range keys {
			tr.Insert(k, uint64(i))
		}
		if tr.Len() != len(keys) {
			t.Fatalf("alpha %d: Len=%d, want %d", alpha, tr.Len(), len(keys))
		}
		for i, k := range keys {
			v, ok := tr.Get(k)
			if !ok || v != uint64(i) {
				t.Fatalf("alpha %d: Get(%q)=(%d,%v), want %d", alpha, k, v, ok, i)
			}
		}
		seen := map[string]bool{}
		for _, k := range keys {
			seen[string(k)] = true
		}
		for i := 0; i < 3000; i++ {
			k := randKeys(rng, 1, 14, alpha)[0]
			_, ok := tr.Get(k)
			if ok != seen[string(k)] {
				t.Fatalf("alpha %d: Get(%q) presence %v", alpha, k, ok)
			}
		}
	}
}

func TestUpdate(t *testing.T) {
	tr := New()
	tr.Insert([]byte("k"), 1)
	tr.Insert([]byte("k"), 2)
	if tr.Len() != 1 {
		t.Fatal("size changed on update")
	}
	if v, _ := tr.Get([]byte("k")); v != 2 {
		t.Fatal("update lost")
	}
}

func TestFanoutBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randKeys(rng, 20000, 10, 26)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	var check func(c *cnode)
	check = func(c *cnode) {
		if len(c.entries) > MaxFanout {
			t.Fatalf("compound node with %d entries exceeds fanout %d",
				len(c.entries), MaxFanout)
		}
		if len(c.bits) != 0 && len(c.entries) != len(c.bits)+1 {
			t.Fatalf("mini-trie inconsistent: %d bits, %d entries",
				len(c.bits), len(c.entries))
		}
		for _, e := range c.entries {
			if e.child != nil {
				check(e.child)
			}
		}
	}
	check(tr.root)
}

func TestHeightOptimized(t *testing.T) {
	// n keys in compound nodes of fanout 32: average depth should be near
	// log32(n), far below a plain binary Patricia's log2(n).
	keys := datagen.Generate(datagen.Email, 30000, 3)
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	tr := BulkLoad(keys, nil)
	avg := tr.AvgLeafDepth()
	ideal := math.Log(float64(len(keys))) / math.Log(MaxFanout)
	if avg > 2.5*ideal+1 {
		t.Fatalf("avg compound depth %.2f too far above ideal %.2f", avg, ideal)
	}
	s := tr.ComputeStats()
	if s.Leaves != len(keys) {
		t.Fatalf("leaves %d, want %d", s.Leaves, len(keys))
	}
}

func TestScanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := randKeys(rng, 3000, 10, 5)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	sorted := make([]string, len(keys))
	for i, k := range keys {
		sorted[i] = string(k)
	}
	sort.Strings(sorted)
	for trial := 0; trial < 300; trial++ {
		start := randKeys(rng, 1, 12, 6)[0]
		limit := 1 + rng.Intn(25)
		i := sort.SearchStrings(sorted, string(start))
		var want []string
		for j := i; j < len(sorted) && len(want) < limit; j++ {
			want = append(want, sorted[j])
		}
		var got []string
		tr.Scan(start, func(k []byte, _ uint64) bool {
			got = append(got, string(k))
			return len(got) < limit
		})
		if len(got) != len(want) {
			t.Fatalf("Scan(%q,%d): %d vs %d", start, limit, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Scan(%q)[%d]=%q, want %q", start, j, got[j], want[j])
			}
		}
	}
}

func TestBulkLoadEquivalentToInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := randKeys(rng, 5000, 10, 8)
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	bl := BulkLoad(keys, nil)
	ins := New()
	for i, k := range keys {
		ins.Insert(k, uint64(i))
	}
	for i, k := range keys {
		v, ok := bl.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("bulk Get(%q)=(%d,%v)", k, v, ok)
		}
	}
	var a, b []string
	bl.Scan(nil, func(k []byte, _ uint64) bool { a = append(a, string(k)); return true })
	ins.Scan(nil, func(k []byte, _ uint64) bool { b = append(b, string(k)); return true })
	if len(a) != len(b) {
		t.Fatalf("scan lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan differs at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if !sort.StringsAreSorted(a) {
		t.Fatal("scan not sorted")
	}
}

func TestInsertDoesNotAliasCallerKey(t *testing.T) {
	tr := New()
	k := []byte("mutate")
	tr.Insert(k, 7)
	k[0] = 'X'
	if _, ok := tr.Get([]byte("mutate")); !ok {
		t.Fatal("tree aliased caller storage")
	}
}

func TestMemoryModel(t *testing.T) {
	keys := datagen.Generate(datagen.Email, 10000, 5)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	s := tr.ComputeStats()
	if s.MemoryBytes < s.Leaves*16 {
		t.Fatal("memory below leaf-pointer floor")
	}
	// Partial-key storage: bytes per key must be far below raw key bytes
	// (HOT stores discriminative bits + pointers, not keys).
	perKey := float64(s.MemoryBytes) / float64(len(keys))
	if perKey > 60 {
		t.Fatalf("%.1f bytes/key; HOT should store only partial keys", perKey)
	}
	if tr.MemoryUsage() != s.MemoryBytes {
		t.Fatal("MemoryUsage inconsistent")
	}
}

func TestEmptyAndSequential(t *testing.T) {
	tr := New()
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("phantom")
	}
	n := 0
	tr.Scan(nil, func([]byte, uint64) bool { n++; return true })
	if n != 0 {
		t.Fatal("scan on empty")
	}
	if BulkLoad(nil, nil).Len() != 0 {
		t.Fatal("empty bulk")
	}
	for i := 0; i < 5000; i++ {
		tr.Insert([]byte(fmt.Sprintf("%07d", i)), uint64(i))
	}
	for _, i := range []int{0, 2500, 4999} {
		if v, ok := tr.Get([]byte(fmt.Sprintf("%07d", i))); !ok || v != uint64(i) {
			t.Fatalf("sequential lost %d", i)
		}
	}
}

func TestInsertionOrderIndependentContent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := randKeys(rng, 2000, 8, 6)
	tr1 := New()
	for i, k := range keys {
		tr1.Insert(k, uint64(i))
	}
	shuffled := append([][]byte{}, keys...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	tr2 := New()
	for _, k := range shuffled {
		tr2.Insert(k, 1)
	}
	var a, b []string
	tr1.Scan(nil, func(k []byte, _ uint64) bool { a = append(a, string(k)); return true })
	tr2.Scan(nil, func(k []byte, _ uint64) bool { b = append(b, string(k)); return true })
	if len(a) != len(b) {
		t.Fatal("content differs by insertion order")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("content differs at %d", i)
		}
	}
}
