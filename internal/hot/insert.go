package hot

import "bytes"

// tref is the mutable (decoded) form of a mini-trie reference: either an
// internal node or an entry. Compound nodes are decoded to this form for
// structural edits and re-encoded to flat arrays afterwards.
type tref struct {
	n *tnode
	e entry
}

type tnode struct {
	bit  int32
	l, r tref
}

// decode expands a compound node's flat mini-trie with freshly allocated
// nodes (used by bulk packing, where trees outlive the call).
func decode(c *cnode) tref {
	if len(c.bits) == 0 {
		return tref{e: c.entries[0]}
	}
	var rec func(i int32) tref
	rec = func(i int32) tref {
		if i < 0 {
			return tref{e: c.entries[-(i + 1)]}
		}
		return tref{n: &tnode{bit: c.bits[i], l: rec(c.left[i]), r: rec(c.right[i])}}
	}
	return rec(0)
}

// newTnode allocates a scratch node from the tree's arena, whose capacity
// decodeArena reserved up front (growing would relocate live pointers).
func (t *Tree) newTnode(bit int32, l, r tref) *tnode {
	if len(t.arena) == cap(t.arena) {
		panic("hot: arena capacity miscalculated")
	}
	t.arena = append(t.arena, tnode{bit: bit, l: l, r: r})
	return &t.arena[len(t.arena)-1]
}

// decodeArena expands a compound node into the tree's scratch arena. The
// arena must have capacity for the whole node up front so that appends do
// not relocate live *tnode pointers.
func (t *Tree) decodeArena(c *cnode) tref {
	t.arena = t.arena[:0]
	// Worst case per insert: existing mini-trie nodes plus two new ones
	// from place().
	if need := len(c.bits) + 2; cap(t.arena) < need {
		t.arena = make([]tnode, 0, need*2)
	}
	if len(c.bits) == 0 {
		return tref{e: c.entries[0]}
	}
	var rec func(i int32) tref
	rec = func(i int32) tref {
		if i < 0 {
			return tref{e: c.entries[-(i + 1)]}
		}
		l := rec(c.left[i])
		r := rec(c.right[i])
		return tref{n: t.newTnode(c.bits[i], l, r)}
	}
	return rec(0)
}

// encode flattens a mini-trie into a fresh compound node; entries are
// emitted in in-order (= key order).
func encode(r tref) *cnode {
	cn := &cnode{}
	if r.n == nil {
		cn.entries = []entry{r.e}
		return cn
	}
	var rec func(x tref) int32
	rec = func(x tref) int32 {
		if x.n == nil {
			cn.entries = append(cn.entries, x.e)
			return -int32(len(cn.entries))
		}
		idx := int32(len(cn.bits))
		cn.bits = append(cn.bits, x.n.bit)
		cn.left = append(cn.left, 0)
		cn.right = append(cn.right, 0)
		cn.left[idx] = rec(x.n.l)
		cn.right[idx] = rec(x.n.r)
		return idx
	}
	rec(r)
	return cn
}

func countEntries(r tref) int {
	if r.n == nil {
		return 1
	}
	return countEntries(r.n.l) + countEntries(r.n.r)
}

// splitResult reports that a compound node overflowed and was divided at
// its root discriminative bit. Each side is a ready entry: a compound node
// normally, or the bare entry itself when a side holds a single item (a
// 1/32 split must not create a trivial wrapper node).
type splitResult struct {
	bit         int32
	left, right entry
}

// sideEntry packs one half of a split.
func sideEntry(r tref) entry {
	if r.n == nil {
		return r.e
	}
	return entry{child: encode(r)}
}

// Insert adds or updates a key. Key bytes are copied.
func (t *Tree) Insert(key []byte, val uint64) {
	k := make([]byte, len(key))
	copy(k, key)
	if t.root == nil {
		t.root = &cnode{entries: []entry{{leaf: &leaf{key: k, val: val}}}}
		t.size++
		return
	}
	// Bit-walk to a resident leaf; its key yields the critical bit.
	cn := t.root
	var reached *leaf
	for {
		e := cn.entries[cn.walkEntry(k)]
		if e.leaf != nil {
			reached = e.leaf
			break
		}
		cn = e.child
	}
	if bytes.Equal(reached.key, k) {
		reached.val = val
		return
	}
	c := int32(critBit(k, reached.key))
	nl := &leaf{key: k, val: val}
	t.size++
	if sp := t.insertAt(t.root, k, c, nl); sp != nil {
		t.root = encode(tref{n: &tnode{
			bit: sp.bit,
			l:   tref{e: sp.left},
			r:   tref{e: sp.right},
		}})
	}
}

// insertAt places the new discriminative bit c within cn (or a descendant
// compound node), rebuilding the affected node and splitting on overflow.
// Only the node that actually mutates is decoded and re-encoded: ancestors
// on the path are walked in their flat form and left untouched unless a
// child split cascades into them.
func (t *Tree) insertAt(cn *cnode, key []byte, c int32, nl *leaf) *splitResult {
	var childSplit *splitResult
	if target := t.findTarget(cn, key, c); target != nil {
		childSplit = t.insertAt(target, key, c, nl)
		if childSplit == nil {
			return nil // handled entirely inside the child
		}
	}
	root := t.decodeArena(cn)
	root = t.place(root, key, c, nl, childSplit)
	if n := countEntries(root); n > MaxFanout {
		// Divide at the top discriminative bit; each side holds at most
		// MaxFanout entries since n <= MaxFanout+1.
		return &splitResult{bit: root.n.bit, left: sideEntry(root.n.l), right: sideEntry(root.n.r)}
	}
	encodeInto(cn, root)
	return nil
}

// encodeInto re-flattens a mini-trie into an existing compound node,
// reusing its array storage.
func encodeInto(cn *cnode, r tref) {
	cn.bits = cn.bits[:0]
	cn.left = cn.left[:0]
	cn.right = cn.right[:0]
	cn.entries = cn.entries[:0]
	if r.n == nil {
		cn.entries = append(cn.entries, r.e)
		return
	}
	var rec func(x tref) int32
	rec = func(x tref) int32 {
		if x.n == nil {
			cn.entries = append(cn.entries, x.e)
			return -int32(len(cn.entries))
		}
		idx := int32(len(cn.bits))
		cn.bits = append(cn.bits, x.n.bit)
		cn.left = append(cn.left, 0)
		cn.right = append(cn.right, 0)
		cn.left[idx] = rec(x.n.l)
		cn.right[idx] = rec(x.n.r)
		return idx
	}
	rec(r)
}

// findTarget walks cn's flat mini-trie along the key's bit path and
// returns the child compound node the insertion belongs to, or nil when
// the insertion point (the first reference with bit >= c, or a leaf entry)
// lies within cn itself.
func (t *Tree) findTarget(cn *cnode, key []byte, c int32) *cnode {
	if len(cn.bits) == 0 {
		return cn.entries[0].child // nil for a leaf entry
	}
	cur := int32(0)
	for {
		if cn.bits[cur] >= c {
			return nil
		}
		var next int32
		if bitAt(key, int(cn.bits[cur])) == 0 {
			next = cn.left[cur]
		} else {
			next = cn.right[cur]
		}
		if next >= 0 {
			cur = next
			continue
		}
		return cn.entries[-(next + 1)].child // nil for a leaf entry
	}
}

// place inserts the (c, nl) binary node into a decoded mini-trie. Bit
// positions increase along every root-to-leaf path (the Patricia
// invariant), so the new node belongs above the first reference whose bit
// is >= c on the key's bit path. childSplit, when non-nil, is the result
// of an already-performed insertion into the child compound node the path
// terminates at; it splices in as one binary level.
func (t *Tree) place(r tref, key []byte, c int32, nl *leaf, childSplit *splitResult) tref {
	if r.n != nil && r.n.bit < c {
		if bitAt(key, int(r.n.bit)) == 0 {
			r.n.l = t.place(r.n.l, key, c, nl, childSplit)
		} else {
			r.n.r = t.place(r.n.r, key, c, nl, childSplit)
		}
		return r
	}
	if r.n == nil && r.e.child != nil {
		// findTarget established the insertion lives in this child, and
		// the child has already split.
		if childSplit == nil {
			panic("hot: unexpected child entry without a pending split")
		}
		return tref{n: t.newTnode(childSplit.bit,
			tref{e: childSplit.left}, tref{e: childSplit.right})}
	}
	// r is a leaf entry or an internal node with bit >= c: the new node
	// takes its place, with the new leaf on the side of its bit value.
	if bitAt(key, int(c)) == 0 {
		return tref{n: t.newTnode(c, tref{e: entry{leaf: nl}}, r)}
	}
	return tref{n: t.newTnode(c, r, tref{e: entry{leaf: nl}})}
}

// BulkLoad builds the tree from sorted unique keys: a full binary Patricia
// trie, packed top-down into compound nodes by breadth-first expansion
// (shallowest discriminative bits first), which approaches the
// height-optimal packing.
func BulkLoad(keys [][]byte, vals []uint64) *Tree {
	t := New()
	if len(keys) == 0 {
		return t
	}
	owned := make([][]byte, len(keys))
	for i, k := range keys {
		owned[i] = append([]byte(nil), k...)
	}
	var build func(lo, hi int) tref
	build = func(lo, hi int) tref {
		if hi-lo == 1 {
			v := uint64(lo)
			if vals != nil {
				v = vals[lo]
			}
			return tref{e: entry{leaf: &leaf{key: owned[lo], val: v}}}
		}
		bit := int32(critBit(owned[lo], owned[hi-1]))
		// Keys are sorted and share all bits above `bit`, so the bit value
		// is monotone across the range: binary search the flip point.
		a, b := lo, hi
		for a < b {
			mid := (a + b) / 2
			if bitAt(owned[mid], int(bit)) == 0 {
				a = mid + 1
			} else {
				b = mid
			}
		}
		return tref{n: &tnode{bit: bit, l: build(lo, a), r: build(a, hi)}}
	}
	t.root = pack(build(0, len(owned)))
	t.size = len(owned)
	return t
}

// pack converts a Patricia subtree into a compound-node tree.
func pack(r tref) *cnode {
	if r.n == nil {
		return &cnode{entries: []entry{r.e}}
	}
	// Breadth-first expansion: each expansion turns one frontier item into
	// two, so stop once the frontier reaches MaxFanout entries.
	expanded := map[*tnode]bool{r.n: true}
	queue := []*tnode{r.n}
	entriesCount := 2
	for len(queue) > 0 && entriesCount < MaxFanout {
		q := queue[0]
		queue = queue[1:]
		for _, ch := range []tref{q.l, q.r} {
			if ch.n != nil && entriesCount < MaxFanout {
				expanded[ch.n] = true
				queue = append(queue, ch.n)
				entriesCount++
			}
		}
	}
	var conv func(x tref) tref
	conv = func(x tref) tref {
		if x.n == nil {
			return x
		}
		if !expanded[x.n] {
			return tref{e: entry{child: pack(x)}}
		}
		return tref{n: &tnode{bit: x.n.bit, l: conv(x.n.l), r: conv(x.n.r)}}
	}
	return encode(conv(r))
}
