package hutucker

import "math"

// garsiaWachsDepths computes optimal alphabetic code lengths with the
// Garsia-Wachs algorithm. Phase 1 repeatedly merges the leftmost "locally
// minimal pair" and re-inserts the merged tree after the rightmost item to
// its left with weight >= the merged weight; phase 2 reads leaf depths off
// the (non-alphabetic) combination tree. The depths are realizable by an
// alphabetic tree of equal cost.
func garsiaWachsDepths(weights []float64) []int {
	n := len(weights)
	pool := make([]gwNode, n, 2*n-1)
	seq := make([]int, n)
	for i, w := range weights {
		pool[i] = gwNode{w: w, leafIdx: i, left: -1, right: -1}
		seq[i] = i
	}
	wOf := func(pos int) float64 {
		if pos < 0 || pos >= len(seq) {
			return math.Inf(1)
		}
		return pool[seq[pos]].w
	}
	scan := 1
	for len(seq) > 1 {
		// Find minimal i >= 1 with w[i-1] <= w[i+1]; i = len(seq)-1 always
		// qualifies because w[len] is +inf.
		i := scan
		if i < 1 {
			i = 1
		}
		for wOf(i-1) > wOf(i+1) {
			i++
		}
		merged := pool[seq[i-1]].w + pool[seq[i]].w
		pool = append(pool, gwNode{w: merged, leafIdx: -1, left: seq[i-1], right: seq[i]})
		id := len(pool) - 1
		// Remove positions i-1 and i.
		seq = append(seq[:i-1], seq[i+1:]...)
		// Insert after the rightmost position j < i-1 with weight >= merged.
		j := i - 2
		for j >= 0 && pool[seq[j]].w < merged {
			j--
		}
		q := j + 1
		seq = append(seq, 0)
		copy(seq[q+1:], seq[q:])
		seq[q] = id
		// Positions before q-1 have unchanged neighborhoods and were
		// already ruled out, so the next scan can resume there.
		scan = q - 1
	}
	depths := make([]int, n)
	assignDepths(pool, seq[0], 0, depths)
	return depths
}

type gwNode struct {
	w           float64
	leafIdx     int // original index for leaves, -1 for internal
	left, right int // pool indices, -1 for leaves
}

func assignDepths(pool []gwNode, id, depth int, depths []int) {
	// Iterative DFS; trees can be deep under extreme skew.
	type frame struct{ id, depth int }
	stack := []frame{{id, depth}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &pool[f.id]
		if nd.leafIdx >= 0 {
			depths[nd.leafIdx] = f.depth
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
}
