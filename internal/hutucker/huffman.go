package hutucker

import "sort"

// HuffmanDepths returns the code lengths of an optimal (order-oblivious)
// Huffman code for the given weights. HOPE never emits Huffman codes —
// they are not order-preserving — but the Huffman cost is the entropy
// lower bound that the optimal alphabetic cost is compared against in
// tests and ablation benchmarks.
func HuffmanDepths(weights []float64) []int {
	n := len(weights)
	switch n {
	case 0:
		return nil
	case 1:
		return []int{0}
	}
	w := prepareWeights(weights, 1e-12)
	// Two-queue construction over sorted leaves: O(n log n).
	type hNode struct {
		w           float64
		leafIdx     int
		left, right int
	}
	pool := make([]hNode, 0, 2*n-1)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return w[order[a]] < w[order[b]] })
	for _, idx := range order {
		pool = append(pool, hNode{w: w[idx], leafIdx: idx, left: -1, right: -1})
	}
	leaves := make([]int, n) // pool ids in ascending weight
	for i := 0; i < n; i++ {
		leaves[i] = i
	}
	var merged []int // pool ids of merged nodes, naturally ascending
	li, mi := 0, 0
	popMin := func() int {
		switch {
		case li < len(leaves) && (mi >= len(merged) || pool[leaves[li]].w <= pool[merged[mi]].w):
			li++
			return leaves[li-1]
		default:
			mi++
			return merged[mi-1]
		}
	}
	for li+mi < len(leaves)+len(merged)-0 {
		remaining := (len(leaves) - li) + (len(merged) - mi)
		if remaining == 1 {
			break
		}
		a := popMin()
		b := popMin()
		pool = append(pool, hNode{w: pool[a].w + pool[b].w, leafIdx: -1, left: a, right: b})
		merged = append(merged, len(pool)-1)
	}
	root := popMin()
	depths := make([]int, n)
	type frame struct{ id, d int }
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &pool[f.id]
		if nd.leafIdx >= 0 {
			depths[nd.leafIdx] = f.d
			continue
		}
		stack = append(stack, frame{nd.left, f.d + 1}, frame{nd.right, f.d + 1})
	}
	return depths
}
