// Package hutucker computes optimal order-preserving (alphabetic) binary
// prefix codes, the Code Assigner substrate of HOPE (paper Section 4.2).
//
// Two equivalent-optimum algorithms are provided:
//
//   - Hu-Tucker (1971), the algorithm named in the paper, in its O(n²)
//     formulation (Yohe 1972): repeatedly combine the minimum-weight
//     "compatible" pair (no leaf between them), then read code lengths off
//     the combination tree.
//   - Garsia-Wachs (1977), an equivalent algorithm that runs much faster in
//     practice; it is the default because the paper's Double-Char scheme
//     needs codes for 65,792 symbols and the n-gram schemes up to 2^18.
//
// Both produce a depth (code length) per symbol; the actual monotonically
// increasing codes are then assembled canonically. The two algorithms may
// emit different depth vectors, but both achieve the optimal weighted code
// length, which the tests verify against a Gilbert-Moore dynamic program.
package hutucker

import (
	"fmt"
	"math"
)

// Code is a binary prefix code word of Len bits stored in the low bits of
// Bits. Len is at most MaxCodeLen.
type Code struct {
	Bits uint64
	Len  uint8
}

// MaxCodeLen is the maximum supported code length in bits; codes must fit
// the encoder's 64-bit concatenation buffers with room to spare.
const MaxCodeLen = 63

// Less reports whether c precedes d in the bit-string order that the
// encoder's output inherits (compare left-aligned, shorter-prefix first).
func (c Code) Less(d Code) bool {
	a := c.Bits << (64 - c.Len)
	b := d.Bits << (64 - d.Len)
	if c.Len == 0 {
		a = 0
	}
	if d.Len == 0 {
		b = 0
	}
	if a != b {
		return a < b
	}
	return c.Len < d.Len
}

func (c Code) String() string {
	return fmt.Sprintf("%0*b", c.Len, c.Bits)
}

// Algorithm selects which optimal alphabetic coding algorithm to run.
type Algorithm int

const (
	// GarsiaWachs is the fast default.
	GarsiaWachs Algorithm = iota
	// HuTucker is the paper-faithful O(n²) algorithm.
	HuTucker
)

// Build returns optimal order-preserving prefix codes for the given
// positive weights using the Garsia-Wachs algorithm. Weights need not be
// normalized. Zero or negative weights are floored to a tiny positive
// value so every symbol stays encodable.
func Build(weights []float64) []Code {
	return BuildWith(weights, GarsiaWachs)
}

// BuildWith is Build with an explicit algorithm choice.
func BuildWith(weights []float64, alg Algorithm) []Code {
	depths := BuildDepthsWith(weights, alg)
	return CodesFromDepths(depths)
}

// BuildDepths returns the optimal code length for each weight using the
// default algorithm.
func BuildDepths(weights []float64) []int {
	return BuildDepthsWith(weights, GarsiaWachs)
}

// BuildDepthsWith returns the optimal code length for each weight.
// If the optimal tree would exceed MaxCodeLen (possible only under extreme
// skew), weights are progressively floored until the depth bound holds;
// the result is then optimal for the floored distribution.
func BuildDepthsWith(weights []float64, alg Algorithm) []int {
	n := len(weights)
	switch n {
	case 0:
		return nil
	case 1:
		return []int{0}
	}
	w := prepareWeights(weights, 1e-12)
	for floor := 1e-12; ; floor *= 1e3 {
		var depths []int
		if alg == HuTucker {
			depths = huTuckerDepths(w)
		} else {
			depths = garsiaWachsDepths(w)
		}
		maxD := 0
		for _, d := range depths {
			if d > maxD {
				maxD = d
			}
		}
		if maxD <= MaxCodeLen {
			return depths
		}
		w = prepareWeights(weights, floor*1e3)
	}
}

// prepareWeights normalizes to sum 1 and floors each weight at relFloor of
// the total, bounding the maximum code depth.
func prepareWeights(weights []float64, relFloor float64) []float64 {
	var sum float64
	for _, x := range weights {
		if x > 0 && !math.IsInf(x, 1) && !math.IsNaN(x) {
			sum += x
		}
	}
	if sum <= 0 {
		sum = 1
	}
	out := make([]float64, len(weights))
	for i, x := range weights {
		v := x / sum
		if !(v > relFloor) { // also catches NaN/Inf/non-positive
			v = relFloor
		}
		out[i] = v
	}
	return out
}

// Cost returns the weighted code length sum(w_i * len_i) for the given
// weights and depths.
func Cost(weights []float64, depths []int) float64 {
	var c float64
	for i, w := range weights {
		c += w * float64(depths[i])
	}
	return c
}

// CodesFromDepths assembles the canonical monotonically increasing prefix
// codes for a depth sequence that comes from an alphabetic tree: the first
// code is all zeros; each subsequent code is previous+1 re-scaled to the
// new length. Panics if a depth exceeds MaxCodeLen (callers go through
// BuildDepthsWith, which guarantees the bound).
func CodesFromDepths(depths []int) []Code {
	codes := make([]Code, len(depths))
	if len(depths) == 0 {
		return codes
	}
	if len(depths) == 1 {
		codes[0] = Code{Bits: 0, Len: uint8(depths[0])}
		return codes
	}
	var prev uint64
	prevLen := depths[0]
	if prevLen > MaxCodeLen {
		panic("hutucker: code length exceeds MaxCodeLen")
	}
	codes[0] = Code{Bits: 0, Len: uint8(prevLen)}
	for i := 1; i < len(depths); i++ {
		d := depths[i]
		if d > MaxCodeLen {
			panic("hutucker: code length exceeds MaxCodeLen")
		}
		c := prev + 1
		if d >= prevLen {
			c <<= uint(d - prevLen)
		} else {
			c >>= uint(prevLen - d)
		}
		codes[i] = Code{Bits: c, Len: uint8(d)}
		prev, prevLen = c, d
	}
	return codes
}

// FixedLengthCodes returns the monotonically increasing fixed-length codes
// 0..n-1, each ceil(log2(n)) bits wide, used by the VIFC schemes (ALM).
func FixedLengthCodes(n int) []Code {
	if n <= 0 {
		return nil
	}
	ln := uint8(0)
	for 1<<ln < n {
		ln++
	}
	if ln == 0 {
		ln = 1 // avoid zero-length codes for degenerate single-entry dicts
	}
	codes := make([]Code, n)
	for i := range codes {
		codes[i] = Code{Bits: uint64(i), Len: ln}
	}
	return codes
}
