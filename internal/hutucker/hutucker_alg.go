package hutucker

// huTuckerDepths computes optimal alphabetic code lengths with the
// Hu-Tucker combination phase (the algorithm the paper names, in the O(n²)
// formulation of Yohe's Algorithm 428): repeatedly merge the minimum-weight
// *compatible* pair — two nodes with no leaf strictly between them — with
// ties broken toward the leftmost pair, then read leaf depths off the
// combination tree.
//
// Each round scans the working sequence once (candidate pairs are the two
// lightest nodes inside every window delimited by consecutive leaves), so
// the whole run is O(n²).
func huTuckerDepths(weights []float64) []int {
	n := len(weights)
	pool := make([]gwNode, n, 2*n-1)
	seq := make([]int, n)
	leaf := make([]bool, n, 2*n-1) // parallel to pool: is this a leaf node?
	for i, w := range weights {
		pool[i] = gwNode{w: w, leafIdx: i, left: -1, right: -1}
		seq[i] = i
		leaf[i] = true
	}
	for len(seq) > 1 {
		bi, bj := -1, -1
		var bw float64
		// Scan windows delimited by leaves. A window runs from one leaf
		// (or the sequence start) to the next leaf (or the end), with only
		// internal nodes inside; any two nodes in a window are compatible.
		start := 0
		for start < len(seq) {
			end := start + 1
			for end < len(seq) && !leaf[seq[end]] {
				end++
			}
			// Window [start, end] inclusive (end may be len(seq)-1+1?).
			hi := end
			if hi >= len(seq) {
				hi = len(seq) - 1
			}
			if hi > start {
				// Two lightest in window, preferring smaller positions.
				m1, m2 := -1, -1 // positions
				for p := start; p <= hi; p++ {
					w := pool[seq[p]].w
					if m1 == -1 || w < pool[seq[m1]].w {
						m2 = m1
						m1 = p
					} else if m2 == -1 || w < pool[seq[m2]].w {
						m2 = p
					}
				}
				i, j := m1, m2
				if i > j {
					i, j = j, i
				}
				sum := pool[seq[i]].w + pool[seq[j]].w
				if bi == -1 || sum < bw || (sum == bw && (i < bi || (i == bi && j < bj))) {
					bi, bj, bw = i, j, sum
				}
			}
			if hi < end { // window ended at sequence end
				break
			}
			start = end
		}
		pool = append(pool, gwNode{w: bw, leafIdx: -1, left: seq[bi], right: seq[bj]})
		leaf = append(leaf, false)
		id := len(pool) - 1
		seq[bi] = id // merged node takes the leftmost position
		seq = append(seq[:bj], seq[bj+1:]...)
	}
	depths := make([]int, n)
	assignDepths(pool, seq[0], 0, depths)
	return depths
}
