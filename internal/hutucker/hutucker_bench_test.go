package hutucker

import (
	"math/rand"
	"testing"
)

func benchWeights(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64() + 1e-6
	}
	return w
}

func BenchmarkGarsiaWachs4K(b *testing.B) {
	w := benchWeights(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDepthsWith(w, GarsiaWachs)
	}
}

func BenchmarkHuTucker4K(b *testing.B) {
	w := benchWeights(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDepthsWith(w, HuTucker)
	}
}

func BenchmarkGarsiaWachs64K(b *testing.B) {
	w := benchWeights(65792)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDepthsWith(w, GarsiaWachs)
	}
}

func BenchmarkRangeCodes4K(b *testing.B) {
	w := benchWeights(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RangeCodes(w)
	}
}
