package hutucker

import (
	"math"
	"math/rand"
	"testing"
)

// optimalAlphabeticCost is a Gilbert-Moore style O(n³) dynamic program for
// the minimum weighted external path length of an alphabetic binary tree.
// It is the ground truth both fast algorithms are validated against.
func optimalAlphabeticCost(w []float64) float64 {
	n := len(w)
	if n == 1 {
		return 0
	}
	// cost[i][j]: optimal cost of the subproblem over leaves i..j;
	// sum[i][j]: total weight, added once per level.
	sum := make([][]float64, n)
	cost := make([][]float64, n)
	for i := range sum {
		sum[i] = make([]float64, n)
		cost[i] = make([]float64, n)
		sum[i][i] = w[i]
		for j := i + 1; j < n; j++ {
			sum[i][j] = sum[i][j-1] + w[j]
		}
	}
	for ln := 2; ln <= n; ln++ {
		for i := 0; i+ln-1 < n; i++ {
			j := i + ln - 1
			best := math.Inf(1)
			for k := i; k < j; k++ {
				if c := cost[i][k] + cost[k+1][j]; c < best {
					best = c
				}
			}
			cost[i][j] = best + sum[i][j]
		}
	}
	return cost[0][n-1]
}

// kraftSum returns sum(2^-d) scaled by 2^63 so it is exact in uint64.
func kraftSum(depths []int) uint64 {
	var s uint64
	for _, d := range depths {
		if d > 63 {
			panic("depth too large for exact Kraft check")
		}
		s += uint64(1) << (63 - uint(d))
	}
	return s
}

func randWeights(rng *rand.Rand, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		switch rng.Intn(4) {
		case 0:
			w[i] = float64(1 + rng.Intn(4)) // frequent ties
		case 1:
			w[i] = rng.Float64() * 1000
		case 2:
			w[i] = math.Pow(10, float64(rng.Intn(6)))
		default:
			w[i] = rng.Float64()
		}
	}
	return w
}

func normalize(w []float64) []float64 {
	var s float64
	for _, x := range w {
		s += x
	}
	out := make([]float64, len(w))
	for i, x := range w {
		out[i] = x / s
	}
	return out
}

func TestGarsiaWachsMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(40)
		w := normalize(randWeights(rng, n))
		depths := BuildDepthsWith(w, GarsiaWachs)
		got := Cost(w, depths)
		want := optimalAlphabeticCost(w)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (n=%d): GW cost %v, optimal %v\nweights=%v\ndepths=%v",
				trial, n, got, want, w, depths)
		}
		if ks := kraftSum(depths); ks != 1<<63 {
			t.Fatalf("trial %d: Kraft sum %d != 2^63 (depths %v)", trial, ks, depths)
		}
	}
}

func TestHuTuckerMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(40)
		w := normalize(randWeights(rng, n))
		depths := BuildDepthsWith(w, HuTucker)
		got := Cost(w, depths)
		want := optimalAlphabeticCost(w)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (n=%d): HT cost %v, optimal %v\nweights=%v\ndepths=%v",
				trial, n, got, want, w, depths)
		}
		if ks := kraftSum(depths); ks != 1<<63 {
			t.Fatalf("trial %d: Kraft sum %d != 2^63", trial, ks)
		}
	}
}

func TestBothAlgorithmsAgreeOnCost(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(300)
		w := normalize(randWeights(rng, n))
		gw := Cost(w, BuildDepthsWith(w, GarsiaWachs))
		ht := Cost(w, BuildDepthsWith(w, HuTucker))
		if math.Abs(gw-ht) > 1e-9*(1+gw) {
			t.Fatalf("trial %d (n=%d): GW %v != HT %v", trial, n, gw, ht)
		}
	}
}

func TestAllEqualWeights(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7, 8, 9, 255, 256, 257} {
		w := make([]float64, n)
		for i := range w {
			w[i] = 1
		}
		depths := BuildDepths(w)
		// Equal weights: optimal is the balanced tree, depths in
		// {floor(log2 n), ceil(log2 n)}.
		lo := int(math.Floor(math.Log2(float64(n))))
		hi := int(math.Ceil(math.Log2(float64(n))))
		for i, d := range depths {
			if d != lo && d != hi {
				t.Fatalf("n=%d: depth[%d]=%d, want %d or %d", n, i, d, lo, hi)
			}
		}
		if ks := kraftSum(depths); ks != 1<<63 {
			t.Fatalf("n=%d: Kraft violated", n)
		}
	}
}

func TestAlphabeticCostAtLeastHuffman(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(200)
		w := normalize(randWeights(rng, n))
		alpha := Cost(w, BuildDepths(w))
		huff := Cost(w, HuffmanDepths(w))
		if alpha < huff-1e-9 {
			t.Fatalf("alphabetic cost %v below Huffman lower bound %v", alpha, huff)
		}
		// Classic upper bound: optimal alphabetic <= Huffman + 2.
		if alpha > huff+2+1e-9 {
			t.Fatalf("alphabetic cost %v exceeds Huffman+2 (%v)", alpha, huff)
		}
	}
}

func TestHuffmanMatchesHeapReference(t *testing.T) {
	// Reference: O(n²) repeated min-pair merge.
	ref := func(w []float64) float64 {
		ws := append([]float64{}, w...)
		var cost float64
		for len(ws) > 1 {
			a, b := 0, 1
			if ws[b] < ws[a] {
				a, b = b, a
			}
			for i := 2; i < len(ws); i++ {
				if ws[i] < ws[a] {
					b = a
					a = i
				} else if ws[i] < ws[b] {
					b = i
				}
			}
			m := ws[a] + ws[b]
			cost += m
			if a > b {
				a, b = b, a
			}
			ws[a] = m
			ws = append(ws[:b], ws[b+1:]...)
		}
		return cost
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(60)
		w := normalize(randWeights(rng, n))
		got := Cost(w, HuffmanDepths(w))
		want := ref(w)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("huffman cost %v, want %v", got, want)
		}
	}
}

func TestCodesFromDepthsPrefixFreeAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(100)
		w := normalize(randWeights(rng, n))
		alg := GarsiaWachs
		if trial%2 == 1 {
			alg = HuTucker
		}
		codes := BuildWith(w, alg)
		for i := 1; i < len(codes); i++ {
			if !codes[i-1].Less(codes[i]) {
				t.Fatalf("codes not strictly increasing at %d: %v then %v",
					i, codes[i-1], codes[i])
			}
		}
		// Prefix-freeness: no code is a bit-prefix of another.
		for i := 0; i < len(codes); i++ {
			for j := i + 1; j < len(codes); j++ {
				a, b := codes[i], codes[j]
				if a.Len > b.Len {
					a, b = b, a
				}
				if a.Len == 0 {
					t.Fatalf("zero-length code at n=%d", n)
				}
				if b.Bits>>(b.Len-a.Len) == a.Bits {
					t.Fatalf("code %v is a prefix of %v", a, b)
				}
			}
		}
	}
}

func TestDepthCapUnderExtremeSkew(t *testing.T) {
	// A geometric distribution steep enough to exceed 63 levels if not
	// floored; the builder must cap depths at MaxCodeLen.
	n := 300
	w := make([]float64, n)
	v := 1.0
	for i := n - 1; i >= 0; i-- {
		w[i] = v
		v *= 1.7
	}
	for _, alg := range []Algorithm{GarsiaWachs, HuTucker} {
		depths := BuildDepthsWith(w, alg)
		for i, d := range depths {
			if d > MaxCodeLen {
				t.Fatalf("alg %v: depth[%d]=%d exceeds cap", alg, i, d)
			}
		}
		if ks := kraftSum(depths); ks != 1<<63 {
			t.Fatalf("alg %v: Kraft violated after flooring", alg)
		}
	}
}

func TestZeroAndNegativeWeights(t *testing.T) {
	w := []float64{0, -1, 5, 0, 3, math.NaN(), math.Inf(1)}
	codes := Build(w)
	if len(codes) != len(w) {
		t.Fatal("wrong number of codes")
	}
	for i := 1; i < len(codes); i++ {
		if !codes[i-1].Less(codes[i]) {
			t.Fatal("codes not increasing with degenerate weights")
		}
	}
}

func TestSingleAndEmpty(t *testing.T) {
	if got := Build(nil); len(got) != 0 {
		t.Fatal("empty weights")
	}
	got := Build([]float64{1})
	if len(got) != 1 || got[0].Len != 0 {
		t.Fatalf("single weight: %v", got)
	}
	if d := BuildDepths([]float64{4}); len(d) != 1 || d[0] != 0 {
		t.Fatal("single depth")
	}
	if d := HuffmanDepths([]float64{4}); len(d) != 1 || d[0] != 0 {
		t.Fatal("single huffman depth")
	}
}

func TestTwoSymbols(t *testing.T) {
	codes := Build([]float64{0.9, 0.1})
	if codes[0].Len != 1 || codes[1].Len != 1 {
		t.Fatalf("two symbols must get 1-bit codes: %v", codes)
	}
	if codes[0].Bits != 0 || codes[1].Bits != 1 {
		t.Fatalf("expected codes 0,1: %v", codes)
	}
}

func TestSkewGivesShorterCodeToHeavySymbol(t *testing.T) {
	w := []float64{0.05, 0.8, 0.05, 0.05, 0.05}
	depths := BuildDepths(w)
	for i, d := range depths {
		if i != 1 && d < depths[1] {
			t.Fatalf("heavy symbol deeper (%d) than light symbol %d (%d)", depths[1], i, d)
		}
	}
}

func TestFixedLengthCodes(t *testing.T) {
	for _, c := range []struct{ n, wantLen int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {256, 8}, {257, 9}, {65536, 16},
	} {
		codes := FixedLengthCodes(c.n)
		if len(codes) != c.n {
			t.Fatalf("n=%d: got %d codes", c.n, len(codes))
		}
		for i, code := range codes {
			if int(code.Len) != c.wantLen {
				t.Fatalf("n=%d: code %d has len %d, want %d", c.n, i, code.Len, c.wantLen)
			}
			if code.Bits != uint64(i) {
				t.Fatalf("n=%d: code %d bits %d", c.n, i, code.Bits)
			}
		}
		for i := 1; i < len(codes); i++ {
			if !codes[i-1].Less(codes[i]) {
				t.Fatal("fixed codes must increase")
			}
		}
	}
	if FixedLengthCodes(0) != nil {
		t.Fatal("n=0 should be nil")
	}
}

func TestCodeLess(t *testing.T) {
	a := Code{Bits: 0b10, Len: 2}
	b := Code{Bits: 0b101, Len: 3}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("prefix must order before extension")
	}
	c := Code{Bits: 0b01, Len: 2}
	if !c.Less(a) {
		t.Fatal("01 < 10")
	}
	z := Code{Bits: 0, Len: 0}
	if !z.Less(a) || a.Less(z) {
		t.Fatal("empty code orders first")
	}
}

func TestCodeString(t *testing.T) {
	c := Code{Bits: 0b0101, Len: 4}
	if c.String() != "0101" {
		t.Fatalf("got %q", c.String())
	}
}

func TestLargeUniformBuildFast(t *testing.T) {
	// Sanity: GW handles Double-Char-scale inputs (65,792 symbols) quickly.
	n := 65792
	rng := rand.New(rand.NewSource(7))
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64() + 1e-6
	}
	depths := BuildDepthsWith(w, GarsiaWachs)
	if ks := kraftSum(depths); ks != 1<<63 {
		t.Fatal("Kraft violated at scale")
	}
}
