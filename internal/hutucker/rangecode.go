package hutucker

import "sort"

// RangeCodes assigns order-preserving prefix codes by range encoding (the
// integer form of arithmetic coding), the alternative Code Assigner the
// paper discusses in Section 4.2: each interval's cumulative-probability
// range is covered by the shortest dyadic interval that fits inside it,
// and that dyadic interval's binary expansion is the code. The codes are
// monotone and prefix-free by construction, but snapping to in-range
// dyadic boundaries costs extra bits over the optimal Hu-Tucker codes —
// exactly the trade-off the paper cites for preferring Hu-Tucker
// ("requires more bits ... to guarantee order-preserving").
func RangeCodes(weights []float64) []Code {
	n := len(weights)
	switch n {
	case 0:
		return nil
	case 1:
		return []Code{{Bits: 0, Len: 0}}
	}
	units := scaleToUnits(weights)
	codes := make([]Code, n)
	var cum uint64
	for i, u := range units {
		lo, hi := cum, cum+u
		cum = hi
		codes[i] = dyadicCode(lo, hi)
	}
	return codes
}

// unitsTotal is the probability grid resolution (2^32 units).
const unitsTotalLog = 32

// scaleToUnits maps weights onto a 2^32-unit grid, at least one unit each,
// summing exactly to 2^32.
func scaleToUnits(weights []float64) []uint64 {
	n := len(weights)
	w := prepareWeights(weights, 1e-12)
	total := uint64(1) << unitsTotalLog
	spend := total - uint64(n) // reserve one unit per interval
	units := make([]uint64, n)
	var sum uint64
	for i, x := range w {
		units[i] = 1 + uint64(x*float64(spend))
		sum += units[i]
	}
	// Fix rounding drift on the largest entry (grow) or by round-robin
	// trimming entries above one unit (shrink).
	if sum < total {
		largest := 0
		for i := range units {
			if units[i] > units[largest] {
				largest = i
			}
		}
		units[largest] += total - sum
	} else if sum > total {
		over := sum - total
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return units[order[a]] > units[order[b]] })
		for over > 0 {
			for _, i := range order {
				if over == 0 {
					break
				}
				if units[i] > 1 {
					units[i]--
					over--
				}
			}
		}
	}
	return units
}

// dyadicCode returns the shortest code whose dyadic interval
// [m*2^-L, (m+1)*2^-L) lies within [lo, hi) on the 2^32-unit grid.
func dyadicCode(lo, hi uint64) Code {
	for l := uint(1); l <= MaxCodeLen; l++ {
		var m uint64
		if l >= unitsTotalLog {
			m = lo << (l - unitsTotalLog) // exact: lo * 2^(L-32)
		} else {
			shift := unitsTotalLog - l
			m = (lo + (1 << shift) - 1) >> shift // ceil(lo * 2^(L-32))
		}
		// End of the dyadic interval back on the grid: (m+1) * 2^(32-L).
		fits := false
		if l >= unitsTotalLog {
			fits = m+1 <= hi<<(l-unitsTotalLog)
		} else {
			fits = (m+1)<<(unitsTotalLog-l) <= hi
		}
		if fits {
			return Code{Bits: m, Len: uint8(l)}
		}
	}
	// Unreachable: every interval holds at least one unit, and a one-unit
	// interval is itself dyadic at L = 32.
	panic("hutucker: no dyadic code found")
}
