package hutucker

import (
	"math"
	"math/rand"
	"testing"
)

func TestRangeCodesMonotoneAndPrefixFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(200)
		w := normalize(randWeights(rng, n))
		codes := RangeCodes(w)
		if len(codes) != n {
			t.Fatalf("got %d codes", len(codes))
		}
		for i := 1; i < n; i++ {
			if !codes[i-1].Less(codes[i]) {
				t.Fatalf("trial %d: codes not increasing at %d: %v then %v",
					trial, i, codes[i-1], codes[i])
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a, b := codes[i], codes[j]
				if a.Len > b.Len {
					a, b = b, a
				}
				if a.Len > 0 && b.Bits>>(b.Len-a.Len) == a.Bits {
					t.Fatalf("trial %d: %v is a prefix of %v", trial, a, b)
				}
			}
		}
	}
}

// The paper's claim: range encoding needs more bits than Hu-Tucker (which
// is optimal), but stays within the Shannon-Fano-Elias style bound of
// about two extra bits per symbol.
func TestRangeCodesCostVsHuTucker(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(300)
		w := normalize(randWeights(rng, n))
		rc := RangeCodes(w)
		var rcCost float64
		for i, c := range rc {
			rcCost += w[i] * float64(c.Len)
		}
		htCost := Cost(w, BuildDepths(w))
		if rcCost < htCost-1e-9 {
			t.Fatalf("range encoding (%.4f bits) beat optimal Hu-Tucker (%.4f)", rcCost, htCost)
		}
		// Entropy + ~2-bit bound.
		var entropy float64
		for _, p := range w {
			if p > 0 {
				entropy -= p * math.Log2(p)
			}
		}
		if rcCost > entropy+2.5 {
			t.Fatalf("range encoding cost %.4f far above entropy %.4f", rcCost, entropy)
		}
	}
}

func TestRangeCodesEdgeCases(t *testing.T) {
	if RangeCodes(nil) != nil {
		t.Fatal("empty")
	}
	if c := RangeCodes([]float64{5}); len(c) != 1 || c[0].Len != 0 {
		t.Fatal("single")
	}
	// Extreme skew: heavy symbol gets a short code; all stay <= 63 bits.
	w := make([]float64, 1000)
	for i := range w {
		w[i] = 1e-9
	}
	w[500] = 1.0
	codes := RangeCodes(w)
	if codes[500].Len > 4 {
		t.Fatalf("heavy symbol code too long: %d bits", codes[500].Len)
	}
	for i, c := range codes {
		if c.Len == 0 || c.Len > MaxCodeLen {
			t.Fatalf("code %d has length %d", i, c.Len)
		}
	}
	// Zero/negative weights are floored, not fatal.
	codes = RangeCodes([]float64{0, -3, 2, math.NaN()})
	for i := 1; i < len(codes); i++ {
		if !codes[i-1].Less(codes[i]) {
			t.Fatal("degenerate weights broke monotonicity")
		}
	}
}

func TestScaleToUnitsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		w := randWeights(rng, n)
		units := scaleToUnits(w)
		var sum uint64
		for _, u := range units {
			if u == 0 {
				t.Fatal("zero-unit interval")
			}
			sum += u
		}
		if sum != 1<<unitsTotalLog {
			t.Fatalf("units sum %d != 2^32", sum)
		}
	}
}
