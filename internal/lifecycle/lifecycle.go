// Package lifecycle is the control plane of the adaptive dictionary
// lifecycle: the state machine an adaptive index moves through
// (Sampling → Building → Migrating → Steady, with rebuilds looping
// Steady → Building → Migrating → Steady), and the drift tracker that
// decides *when* to move — a reservoir sample of live write traffic plus a
// rolling compression-rate (CPR) estimate compared against the rate the
// serving dictionary achieved on its own build sample.
//
// The package is deliberately index-agnostic: it never touches trees or
// encoders beyond reading lengths and handing out sample snapshots, so the
// same controller could drive any order-preserving-encoded store. The
// mechanism — generation maps, dual-writes, per-shard copy batches — lives
// with the data plane in the hope package (adaptive.go); the policy lives
// here.
package lifecycle

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// State is one phase of the dictionary lifecycle.
type State int32

const (
	// Sampling: no dictionary yet — the index serves uncompressed while
	// the reservoir accumulates enough keys for the first build (the
	// paper's Section 5 empty-tree integration path).
	Sampling State = iota
	// Steady: a dictionary is serving and no rebuild is in flight.
	Steady
	// Building: a background goroutine is running HOPE's build phase over
	// a reservoir snapshot; traffic is unaffected.
	Building
	// Migrating: a new-generation index exists and entries are being
	// re-encoded into it; writes land in both generations and reads
	// consult the per-shard generation map.
	Migrating
)

func (s State) String() string {
	switch s {
	case Sampling:
		return "Sampling"
	case Steady:
		return "Steady"
	case Building:
		return "Building"
	case Migrating:
		return "Migrating"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Signal is the tracker's per-observation verdict.
type Signal int

const (
	// None: keep serving.
	None Signal = iota
	// FirstBuild: enough samples accumulated for the initial dictionary.
	FirstBuild
	// Drift: the rolling CPR has fallen below the build-time CPR by more
	// than the configured threshold.
	Drift
)

// Config tunes the lifecycle policy. The zero value is filled with
// defaults by Fill.
type Config struct {
	// ReservoirSize caps the sample the next dictionary is built from
	// (default 4096; 10K–100K saturates CPR per paper Appendix A, smaller
	// keeps rebuild cost low at serving time).
	ReservoirSize int
	// Seed drives the reservoir's RNG (default 1).
	Seed int64
	// BuildAfter is the number of keys observed before the first
	// dictionary build fires in the Sampling state (default 10000).
	BuildAfter int
	// WindowSize is the rolling CPR window in keys (default 8192).
	WindowSize int
	// DriftThreshold is the relative CPR degradation that arms a rebuild:
	// recent < build × (1 − threshold) (default 0.10).
	DriftThreshold float64
	// CheckEvery is how many observations pass between drift evaluations
	// (default 512; checks are cheap but not free).
	CheckEvery int
	// Cooldown is the minimum number of observations between a cutover
	// and the next drift-triggered rebuild, so a rebuild whose sample
	// still reflects a moving distribution cannot thrash (default
	// 2 × WindowSize).
	Cooldown int
	// Stripes is how many ways the tracker's accounting (reservoir + CPR
	// ring) is striped (default 16). Observations round-robin across
	// stripes, each with its own short mutex, so concurrent writers never
	// serialize through one tracker lock; drift checks aggregate the
	// stripes. One stripe restores fully serialized accounting.
	Stripes int

	// RetryBackoff is the base delay before a failed automatic rebuild
	// re-arms (default 1s). The n-th consecutive failure backs off
	// RetryBackoff × 2^(n-1), capped at RetryBackoffMax, with ±RetryJitter
	// relative jitter from the controller's seeded RNG — a failing rebuild
	// must never fire again on the very next drift signal.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff (default 60s).
	RetryBackoffMax time.Duration
	// RetryJitter is the relative jitter applied to each backoff delay,
	// in [0, 1) (default 0.2). Negative disables jitter.
	RetryJitter float64
	// BreakerAfter is the consecutive-failure count that opens the
	// circuit breaker (default 5): the controller reports Degraded,
	// automatic rebuilds are suppressed, and the index keeps serving its
	// current (frozen) dictionary. After the current backoff expires one
	// half-open probe may fire; any successful cutover — probe or explicit
	// Rebuild — closes the breaker. Negative disables the breaker.
	BreakerAfter int
	// Clock overrides the time source for backoff arithmetic (tests);
	// nil uses time.Now.
	Clock func() time.Time
}

// Fill populates zero fields with defaults and returns the config.
func (c Config) Fill() Config {
	if c.ReservoirSize <= 0 {
		c.ReservoirSize = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BuildAfter <= 0 {
		c.BuildAfter = 10000
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 8192
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.10
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 512
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.WindowSize
	}
	if c.Stripes <= 0 {
		c.Stripes = 16
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Second
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 60 * time.Second
	}
	if c.RetryJitter == 0 {
		c.RetryJitter = 0.2
	}
	if c.RetryJitter < 0 {
		c.RetryJitter = 0
	}
	if c.BreakerAfter == 0 {
		c.BreakerAfter = 5
	}
	return c
}

// Stats is a point-in-time snapshot of the controller.
type Stats struct {
	State      State
	Generation int   // serving dictionary generation (0 = uncompressed)
	Seen       int64 // keys observed since the last cutover (or start)
	Reservoir  int   // current reservoir occupancy
	BuildCPR   float64
	RecentCPR  float64
	Rebuilds   int // completed cutovers
	Aborts     int // rebuilds that rolled back

	// Health of the rebuild machinery (see Config.RetryBackoff and
	// Config.BreakerAfter).
	Degraded            bool      // circuit breaker open: frozen-dictionary serving
	ConsecutiveFailures int       // rebuild failures since the last cutover
	LastError           error     // most recent rebuild failure (nil after a cutover)
	NextRetryAt         time.Time // earliest automatic rebuild re-arm (zero when unthrottled)
}

// Controller combines the state machine and the drift tracker. All methods
// are safe for concurrent use. Transition methods return an error when the
// move is not legal from the current state, which serializes rebuilds: only
// one goroutine can win the Steady/Sampling → Building edge.
//
// The accounting hot path — Observe, called on every insert the data
// plane serves — never takes the controller mutex. Observations
// round-robin across Stripes tracker stripes (an atomic counter picks the
// stripe, so the stripe choice is contention-free and, under a single
// writer, deterministic), each holding a fraction of the reservoir and of
// the rolling CPR window behind its own short-lived mutex. With W writer
// goroutines and S stripes the probability two writers collide on a
// stripe in a given instant is ~W/S, versus 1 on the old single tracker
// mutex; drift checks, which run every CheckEvery observations, aggregate
// the stripes (Σraw/Σenc is exactly the rate one combined window would
// report, since round-robin keeps the stripes' occupancies equal).
type Controller struct {
	cfg Config

	stripes []*trackerStripe
	seen    atomic.Int64 // observations since last cutover (round-robin cursor)

	mu         sync.Mutex
	state      State
	serving    State // the state the in-flight rebuild started from
	generation int
	buildCPR   float64 // CPR of the serving dictionary on its build sample
	rebuilds   int
	aborts     int

	// Failure policy state (guarded by mu). retryRNG drives backoff
	// jitter; it is separate from the reservoir RNGs so the jitter
	// sequence is a pure function of the failure sequence.
	consecFails int
	degraded    bool
	lastErr     error
	nextRetryAt time.Time
	retryRNG    *rand.Rand
}

// trackerStripe is one slice of the drift tracker: 1/Stripes of the
// reservoir and of the rolling CPR window. The mutex guards the sampler
// (the window carries its own).
type trackerStripe struct {
	mu      sync.Mutex
	sampler *core.Sampler
	window  *core.CPRWindow
}

// NewController returns a controller in the given initial serving state
// (Sampling when no dictionary exists yet, Steady when the index starts
// with a pre-built encoder).
func NewController(cfg Config, initial State) *Controller {
	cfg = cfg.Fill()
	c := &Controller{
		cfg:      cfg,
		state:    initial,
		stripes:  make([]*trackerStripe, cfg.Stripes),
		retryRNG: rand.New(rand.NewSource(cfg.Seed ^ 0x5ca1ab1e)),
	}
	resCap := (cfg.ReservoirSize + cfg.Stripes - 1) / cfg.Stripes
	winCap := (cfg.WindowSize + cfg.Stripes - 1) / cfg.Stripes
	for i := range c.stripes {
		c.stripes[i] = &trackerStripe{
			sampler: core.NewSampler(resCap, cfg.Seed+int64(i)),
			window:  core.NewCPRWindow(winCap),
		}
	}
	return c
}

// Config returns the filled configuration.
func (c *Controller) Config() Config { return c.cfg }

// State returns the current lifecycle state.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Generation returns the serving dictionary generation (0 before the first
// build).
func (c *Controller) Generation() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.generation
}

// stripeFor maps the n-th observation (1-based) to its tracker stripe.
func (c *Controller) stripeFor(n int64) *trackerStripe {
	return c.stripes[int((n-1)%int64(len(c.stripes)))]
}

// Observe feeds one written key into the reservoir and the CPR window and
// returns the policy verdict. storedLen is the stored (encoded, padded)
// length; pass the raw length again while serving uncompressed. The
// verdict is advisory — acting on it still has to win BeginBuild. Observe
// touches only one tracker stripe and an atomic counter — never the
// controller mutex — except on the CheckEvery cadence, when it evaluates
// the drift policy over the aggregated stripes.
func (c *Controller) Observe(key []byte, storedLen int) Signal {
	n := c.seen.Add(1)
	st := c.stripeFor(n)
	st.mu.Lock()
	st.sampler.Add(key)
	st.mu.Unlock()
	st.window.Observe(len(key), storedLen)
	if n%int64(c.cfg.CheckEvery) != 0 {
		return None
	}
	return c.Check()
}

// Check evaluates the policy immediately, without the CheckEvery cadence
// gate — the post-bulk-load probe and an async trigger's re-validation
// (after winning the rebuild lock the world may have moved) use it.
func (c *Controller) Check() Signal {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkLocked()
}

// windowRate aggregates the striped CPR windows: the combined rolling
// rate and whether the combined occupancy has reached a full logical
// window (round-robin keeps stripe occupancies equal, so this is the
// moment every stripe's ring has wrapped, modulo rounding).
func (c *Controller) windowRate() (rate float64, full bool) {
	var raw, enc int64
	occupied := 0
	for _, st := range c.stripes {
		r, e, n := st.window.Sums()
		raw += r
		enc += e
		occupied += n
	}
	if enc > 0 {
		rate = float64(raw) / float64(enc)
	}
	return rate, occupied >= c.cfg.WindowSize
}

func (c *Controller) checkLocked() Signal {
	switch c.state {
	case Sampling:
		if c.seen.Load() >= int64(c.cfg.BuildAfter) && c.autoAllowedLocked(c.now()) {
			return FirstBuild
		}
	case Steady:
		rate, full := c.windowRate()
		if c.buildCPR == 0 {
			// An index that started from a pre-built encoder has no build
			// sample to baseline against; adopt the first full window of
			// live traffic as the baseline (self-calibration).
			if full {
				c.buildCPR = rate
			}
			return None
		}
		if c.seen.Load() >= int64(c.cfg.Cooldown) && full &&
			rate < c.buildCPR*(1-c.cfg.DriftThreshold) &&
			c.autoAllowedLocked(c.now()) {
			return Drift
		}
	}
	return None
}

// now is the controller's time source (Config.Clock in tests).
func (c *Controller) now() time.Time {
	if c.cfg.Clock != nil {
		return c.cfg.Clock()
	}
	return time.Now()
}

// autoAllowedLocked is the retry gate every automatic trigger — drift,
// first build, skew re-split — passes through: after a rebuild failure the
// capped-exponential backoff delay must have elapsed. With the breaker
// open the same test doubles as the half-open gate: once the current
// backoff expires, exactly one probe signal escapes (its failure re-arms
// the backoff; its cutover closes the breaker). Explicit Rebuild calls
// bypass this gate entirely.
func (c *Controller) autoAllowedLocked(now time.Time) bool {
	return c.nextRetryAt.IsZero() || !now.Before(c.nextRetryAt)
}

// AutoAllowed reports whether an automatic rebuild may fire right now —
// the retry/breaker gate alone, without the drift or skew predicates.
func (c *Controller) AutoAllowed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.autoAllowedLocked(c.now())
}

// ResplitAllowed reports whether a skew-triggered re-split may arm: the
// index must be Steady (re-splitting needs a serving dictionary and no
// rebuild in flight), past the post-cutover cooldown, and past any failure
// backoff. The skew predicate itself (shard-fraction bound) lives with the
// data plane, which owns the shard counts.
func (c *Controller) ResplitAllowed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state == Steady &&
		c.seen.Load() >= int64(c.cfg.Cooldown) &&
		c.autoAllowedLocked(c.now())
}

// RecordFailure charges one rebuild failure to the retry policy: the
// consecutive-failure counter grows, the next automatic attempt is pushed
// out by RetryBackoff × 2^(failures-1) (capped at RetryBackoffMax,
// ±RetryJitter), and at BreakerAfter consecutive failures the circuit
// breaker opens — the controller reports Degraded and automatic rebuilds
// stop except for one half-open probe per backoff window. The data plane
// calls this after every failed rebuild, explicit or automatic; any
// successful Cutover resets all of it.
func (c *Controller) RecordFailure(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.consecFails++
	c.lastErr = err
	backoff := c.cfg.RetryBackoff
	for i := 1; i < c.consecFails && backoff < c.cfg.RetryBackoffMax; i++ {
		backoff *= 2
	}
	if backoff > c.cfg.RetryBackoffMax {
		backoff = c.cfg.RetryBackoffMax
	}
	if j := c.cfg.RetryJitter; j > 0 {
		backoff = time.Duration(float64(backoff) * (1 + j*(2*c.retryRNG.Float64()-1)))
	}
	c.nextRetryAt = c.now().Add(backoff)
	if c.cfg.BreakerAfter > 0 && c.consecFails >= c.cfg.BreakerAfter {
		c.degraded = true
	}
}

// Degraded reports whether the circuit breaker is open (frozen-dictionary
// serving; see Config.BreakerAfter).
func (c *Controller) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// LastError returns the most recent rebuild failure (nil when healthy or
// after a successful cutover).
func (c *Controller) LastError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// ObserveBulk feeds a bulk-loaded key into the reservoir only (bulk loads
// bypass the rolling window: their encode lengths are produced inside the
// parallel pipeline, and a bulk load is a deliberate act, not drift).
func (c *Controller) ObserveBulk(key []byte) {
	st := c.stripeFor(c.seen.Add(1))
	st.mu.Lock()
	st.sampler.Add(key)
	st.mu.Unlock()
}

// SampleSnapshot deep-copies the reservoir (all stripes) for a background
// build.
func (c *Controller) SampleSnapshot() [][]byte {
	var out [][]byte
	for _, st := range c.stripes {
		st.mu.Lock()
		out = append(out, st.sampler.Snapshot()...)
		st.mu.Unlock()
	}
	return out
}

// Seen returns how many keys the tracker has been offered since the last
// cutover or start.
func (c *Controller) Seen() int64 {
	return c.seen.Load()
}

// RecentCPR returns the rolling compression rate (0 while uncompressed or
// before any observation).
func (c *Controller) RecentCPR() float64 {
	rate, _ := c.windowRate()
	return rate
}

// Stats returns a consistent snapshot.
func (c *Controller) Stats() Stats {
	reservoir := 0
	for _, st := range c.stripes {
		st.mu.Lock()
		reservoir += st.sampler.Len()
		st.mu.Unlock()
	}
	rate, _ := c.windowRate()
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		State:               c.state,
		Generation:          c.generation,
		Seen:                c.seen.Load(),
		Reservoir:           reservoir,
		BuildCPR:            c.buildCPR,
		RecentCPR:           rate,
		Rebuilds:            c.rebuilds,
		Aborts:              c.aborts,
		Degraded:            c.degraded,
		ConsecutiveFailures: c.consecFails,
		LastError:           c.lastErr,
		NextRetryAt:         c.nextRetryAt,
	}
}

// BeginBuild moves Sampling/Steady → Building. Exactly one caller wins;
// losers get an error naming the state that blocked them.
func (c *Controller) BeginBuild() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != Sampling && c.state != Steady {
		return fmt.Errorf("lifecycle: cannot start a build while %v", c.state)
	}
	c.serving = c.state
	c.state = Building
	return nil
}

// BeginMigration moves Building → Migrating.
func (c *Controller) BeginMigration() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != Building {
		return fmt.Errorf("lifecycle: cannot start migrating while %v", c.state)
	}
	c.state = Migrating
	return nil
}

// Cutover completes a rebuild: Building or Migrating → Steady (a build
// may cut over directly when the index was empty and there was nothing to
// migrate). buildCPR is the new dictionary's compression rate on its own
// build sample — the drift baseline until the next cutover. The reservoir
// and the rolling window reset so the next rebuild reflects only
// post-cutover traffic.
func (c *Controller) Cutover(buildCPR float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != Building && c.state != Migrating {
		return fmt.Errorf("lifecycle: cannot cut over while %v", c.state)
	}
	c.state = Steady
	c.generation++
	c.buildCPR = buildCPR
	c.rebuilds++
	// A successful cutover is health restored: the failure streak ends,
	// the breaker closes, and the backoff clears.
	c.consecFails = 0
	c.degraded = false
	c.lastErr = nil
	c.nextRetryAt = time.Time{}
	for _, st := range c.stripes {
		st.mu.Lock()
		st.sampler.Reset()
		st.mu.Unlock()
		st.window.Reset()
	}
	c.seen.Store(0)
	return nil
}

// Abort rolls a failed build or migration back to the serving state the
// rebuild started from (Sampling before the first cutover, Steady after).
// The reservoir and window are kept: the traffic they describe is still
// the traffic being served.
func (c *Controller) Abort() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != Building && c.state != Migrating {
		return fmt.Errorf("lifecycle: cannot abort while %v", c.state)
	}
	c.state = c.serving
	c.aborts++
	return nil
}
