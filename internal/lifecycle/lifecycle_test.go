package lifecycle

import (
	"fmt"
	"sync"
	"testing"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Fill()
	if c.ReservoirSize <= 0 || c.BuildAfter <= 0 || c.WindowSize <= 0 ||
		c.DriftThreshold <= 0 || c.CheckEvery <= 0 || c.Cooldown < c.WindowSize {
		t.Fatalf("defaults not filled: %+v", c)
	}
	// Explicit values survive.
	c = Config{ReservoirSize: 7, BuildAfter: 9, WindowSize: 11, DriftThreshold: 0.5, CheckEvery: 13, Cooldown: 17}.Fill()
	if c.ReservoirSize != 7 || c.BuildAfter != 9 || c.WindowSize != 11 ||
		c.DriftThreshold != 0.5 || c.CheckEvery != 13 || c.Cooldown != 17 {
		t.Fatalf("explicit values clobbered: %+v", c)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Sampling: "Sampling", Steady: "Steady", Building: "Building", Migrating: "Migrating",
	} {
		if s.String() != want {
			t.Fatalf("%d: %q", s, s.String())
		}
	}
}

// The canonical path: Sampling → Building → Migrating → Steady, then a
// drift rebuild Steady → Building → Migrating → Steady.
func TestTransitionPath(t *testing.T) {
	c := NewController(Config{}, Sampling)
	if c.State() != Sampling || c.Generation() != 0 {
		t.Fatal("bad initial state")
	}
	steps := []func() error{c.BeginBuild, c.BeginMigration, func() error { return c.Cutover(2.0) }}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if c.State() != Steady || c.Generation() != 1 {
		t.Fatalf("after first cutover: %v gen %d", c.State(), c.Generation())
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("rebuild step %d: %v", i, err)
		}
	}
	if c.Generation() != 2 || c.Stats().Rebuilds != 2 {
		t.Fatalf("after second cutover: %+v", c.Stats())
	}
}

func TestIllegalTransitions(t *testing.T) {
	c := NewController(Config{}, Steady)
	if err := c.BeginMigration(); err == nil {
		t.Fatal("Steady → Migrating allowed")
	}
	if err := c.Cutover(1); err == nil {
		t.Fatal("Steady → Cutover allowed")
	}
	if err := c.Abort(); err == nil {
		t.Fatal("Steady → Abort allowed")
	}
	if err := c.BeginBuild(); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginBuild(); err == nil {
		t.Fatal("double BeginBuild allowed")
	}
}

// Only one of many racing goroutines may win the → Building edge.
func TestBeginBuildSerializes(t *testing.T) {
	c := NewController(Config{}, Steady)
	var wg sync.WaitGroup
	wins := make(chan struct{}, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c.BeginBuild() == nil {
				wins <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d goroutines won BeginBuild", n)
	}
}

// Abort returns to the state the rebuild started from: Sampling before the
// first cutover, Steady after.
func TestAbortRestoresServingState(t *testing.T) {
	c := NewController(Config{}, Sampling)
	c.BeginBuild()
	if err := c.Abort(); err != nil || c.State() != Sampling {
		t.Fatalf("abort from gen 0: %v, state %v", err, c.State())
	}
	c.BeginBuild()
	c.BeginMigration()
	c.Cutover(2.0)
	c.BeginBuild()
	c.BeginMigration()
	if err := c.Abort(); err != nil || c.State() != Steady {
		t.Fatalf("abort from gen 1: %v, state %v", err, c.State())
	}
	if s := c.Stats(); s.Aborts != 2 || s.Generation != 1 {
		t.Fatalf("stats after aborts: %+v", s)
	}
}

// In Sampling, Observe signals FirstBuild once BuildAfter keys passed; in
// Steady, it signals Drift only after cooldown, with a full window, below
// the threshold.
func TestObserveSignals(t *testing.T) {
	cfg := Config{BuildAfter: 100, CheckEvery: 10, WindowSize: 50, Cooldown: 100, DriftThreshold: 0.2}
	c := NewController(cfg, Sampling)
	sig := None
	for i := 0; i < 100; i++ {
		if s := c.Observe([]byte(fmt.Sprintf("k%03d", i)), 4); s != None {
			sig = s
			break
		}
	}
	if sig != FirstBuild {
		t.Fatalf("no FirstBuild after BuildAfter keys: %v", sig)
	}

	// Steady at 2.0 build CPR: drift must not fire while recent ≈ build.
	c = NewController(cfg, Steady)
	c.BeginBuild()
	c.Cutover(2.0)
	for i := 0; i < 200; i++ {
		if s := c.Observe([]byte("eightby8"), 4); s != None { // CPR 2.0
			t.Fatalf("false drift at observation %d: %v", i, s)
		}
	}
	// Degrade to CPR 1.0; after the window rolls over, Drift fires.
	fired := false
	for i := 0; i < 200; i++ {
		if s := c.Observe([]byte("eightby8"), 8); s == Drift {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("drift never fired after CPR halved")
	}
}

// Cooldown suppresses drift right after a cutover even when the window
// looks degraded.
func TestDriftCooldown(t *testing.T) {
	cfg := Config{BuildAfter: 10, CheckEvery: 5, WindowSize: 20, Cooldown: 1000, DriftThreshold: 0.1}
	c := NewController(cfg, Steady)
	c.BeginBuild()
	c.Cutover(3.0)
	for i := 0; i < 500; i++ { // all badly compressed, but inside cooldown
		if s := c.Observe([]byte("eightby8"), 8); s != None {
			t.Fatalf("drift fired during cooldown at %d", i)
		}
	}
}

func TestCutoverResetsTracking(t *testing.T) {
	c := NewController(Config{WindowSize: 8}, Steady)
	for i := 0; i < 50; i++ {
		c.Observe([]byte("someklongkey"), 3)
	}
	if c.Seen() != 50 || c.RecentCPR() == 0 {
		t.Fatalf("pre-cutover tracking: seen %d cpr %f", c.Seen(), c.RecentCPR())
	}
	c.BeginBuild()
	if err := c.Cutover(2.5); err != nil {
		t.Fatal(err)
	}
	if c.Seen() != 0 || c.RecentCPR() != 0 {
		t.Fatalf("cutover did not reset: seen %d cpr %f", c.Seen(), c.RecentCPR())
	}
	if s := c.Stats(); s.BuildCPR != 2.5 || s.Generation != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestObserveBulkFeedsReservoirOnly(t *testing.T) {
	c := NewController(Config{}, Sampling)
	for i := 0; i < 30; i++ {
		c.ObserveBulk([]byte{byte(i)})
	}
	if c.Seen() != 30 {
		t.Fatalf("seen %d", c.Seen())
	}
	if c.RecentCPR() != 0 {
		t.Fatal("bulk observations must not touch the CPR window")
	}
}
