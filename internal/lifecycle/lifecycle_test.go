package lifecycle

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Fill()
	if c.ReservoirSize <= 0 || c.BuildAfter <= 0 || c.WindowSize <= 0 ||
		c.DriftThreshold <= 0 || c.CheckEvery <= 0 || c.Cooldown < c.WindowSize {
		t.Fatalf("defaults not filled: %+v", c)
	}
	// Explicit values survive.
	c = Config{ReservoirSize: 7, BuildAfter: 9, WindowSize: 11, DriftThreshold: 0.5, CheckEvery: 13, Cooldown: 17}.Fill()
	if c.ReservoirSize != 7 || c.BuildAfter != 9 || c.WindowSize != 11 ||
		c.DriftThreshold != 0.5 || c.CheckEvery != 13 || c.Cooldown != 17 {
		t.Fatalf("explicit values clobbered: %+v", c)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Sampling: "Sampling", Steady: "Steady", Building: "Building", Migrating: "Migrating",
	} {
		if s.String() != want {
			t.Fatalf("%d: %q", s, s.String())
		}
	}
}

// The canonical path: Sampling → Building → Migrating → Steady, then a
// drift rebuild Steady → Building → Migrating → Steady.
func TestTransitionPath(t *testing.T) {
	c := NewController(Config{}, Sampling)
	if c.State() != Sampling || c.Generation() != 0 {
		t.Fatal("bad initial state")
	}
	steps := []func() error{c.BeginBuild, c.BeginMigration, func() error { return c.Cutover(2.0) }}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if c.State() != Steady || c.Generation() != 1 {
		t.Fatalf("after first cutover: %v gen %d", c.State(), c.Generation())
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("rebuild step %d: %v", i, err)
		}
	}
	if c.Generation() != 2 || c.Stats().Rebuilds != 2 {
		t.Fatalf("after second cutover: %+v", c.Stats())
	}
}

func TestIllegalTransitions(t *testing.T) {
	c := NewController(Config{}, Steady)
	if err := c.BeginMigration(); err == nil {
		t.Fatal("Steady → Migrating allowed")
	}
	if err := c.Cutover(1); err == nil {
		t.Fatal("Steady → Cutover allowed")
	}
	if err := c.Abort(); err == nil {
		t.Fatal("Steady → Abort allowed")
	}
	if err := c.BeginBuild(); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginBuild(); err == nil {
		t.Fatal("double BeginBuild allowed")
	}
}

// Only one of many racing goroutines may win the → Building edge.
func TestBeginBuildSerializes(t *testing.T) {
	c := NewController(Config{}, Steady)
	var wg sync.WaitGroup
	wins := make(chan struct{}, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c.BeginBuild() == nil {
				wins <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d goroutines won BeginBuild", n)
	}
}

// Abort returns to the state the rebuild started from: Sampling before the
// first cutover, Steady after.
func TestAbortRestoresServingState(t *testing.T) {
	c := NewController(Config{}, Sampling)
	c.BeginBuild()
	if err := c.Abort(); err != nil || c.State() != Sampling {
		t.Fatalf("abort from gen 0: %v, state %v", err, c.State())
	}
	c.BeginBuild()
	c.BeginMigration()
	c.Cutover(2.0)
	c.BeginBuild()
	c.BeginMigration()
	if err := c.Abort(); err != nil || c.State() != Steady {
		t.Fatalf("abort from gen 1: %v, state %v", err, c.State())
	}
	if s := c.Stats(); s.Aborts != 2 || s.Generation != 1 {
		t.Fatalf("stats after aborts: %+v", s)
	}
}

// In Sampling, Observe signals FirstBuild once BuildAfter keys passed; in
// Steady, it signals Drift only after cooldown, with a full window, below
// the threshold.
func TestObserveSignals(t *testing.T) {
	cfg := Config{BuildAfter: 100, CheckEvery: 10, WindowSize: 50, Cooldown: 100, DriftThreshold: 0.2}
	c := NewController(cfg, Sampling)
	sig := None
	for i := 0; i < 100; i++ {
		if s := c.Observe([]byte(fmt.Sprintf("k%03d", i)), 4); s != None {
			sig = s
			break
		}
	}
	if sig != FirstBuild {
		t.Fatalf("no FirstBuild after BuildAfter keys: %v", sig)
	}

	// Steady at 2.0 build CPR: drift must not fire while recent ≈ build.
	c = NewController(cfg, Steady)
	c.BeginBuild()
	c.Cutover(2.0)
	for i := 0; i < 200; i++ {
		if s := c.Observe([]byte("eightby8"), 4); s != None { // CPR 2.0
			t.Fatalf("false drift at observation %d: %v", i, s)
		}
	}
	// Degrade to CPR 1.0; after the window rolls over, Drift fires.
	fired := false
	for i := 0; i < 200; i++ {
		if s := c.Observe([]byte("eightby8"), 8); s == Drift {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("drift never fired after CPR halved")
	}
}

// Cooldown suppresses drift right after a cutover even when the window
// looks degraded.
func TestDriftCooldown(t *testing.T) {
	cfg := Config{BuildAfter: 10, CheckEvery: 5, WindowSize: 20, Cooldown: 1000, DriftThreshold: 0.1}
	c := NewController(cfg, Steady)
	c.BeginBuild()
	c.Cutover(3.0)
	for i := 0; i < 500; i++ { // all badly compressed, but inside cooldown
		if s := c.Observe([]byte("eightby8"), 8); s != None {
			t.Fatalf("drift fired during cooldown at %d", i)
		}
	}
}

func TestCutoverResetsTracking(t *testing.T) {
	c := NewController(Config{WindowSize: 8}, Steady)
	for i := 0; i < 50; i++ {
		c.Observe([]byte("someklongkey"), 3)
	}
	if c.Seen() != 50 || c.RecentCPR() == 0 {
		t.Fatalf("pre-cutover tracking: seen %d cpr %f", c.Seen(), c.RecentCPR())
	}
	c.BeginBuild()
	if err := c.Cutover(2.5); err != nil {
		t.Fatal(err)
	}
	if c.Seen() != 0 || c.RecentCPR() != 0 {
		t.Fatalf("cutover did not reset: seen %d cpr %f", c.Seen(), c.RecentCPR())
	}
	if s := c.Stats(); s.BuildCPR != 2.5 || s.Generation != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestObserveBulkFeedsReservoirOnly(t *testing.T) {
	c := NewController(Config{}, Sampling)
	for i := 0; i < 30; i++ {
		c.ObserveBulk([]byte{byte(i)})
	}
	if c.Seen() != 30 {
		t.Fatalf("seen %d", c.Seen())
	}
	if c.RecentCPR() != 0 {
		t.Fatal("bulk observations must not touch the CPR window")
	}
}

// ---------------------------------------------------------------------------
// Striped accounting: the hot path must aggregate exactly and stay off
// any global mutex.
// ---------------------------------------------------------------------------

// TestStripedAggregationMatchesSingle: a striped tracker and a one-stripe
// tracker fed the same stream must report the same rolling rate, seen
// count, and (within rounding) reservoir occupancy — striping changes the
// locking, not the accounting.
func TestStripedAggregationMatchesSingle(t *testing.T) {
	cfg := Config{WindowSize: 64, ReservoirSize: 64, CheckEvery: 1 << 30}
	striped := NewController(Config{WindowSize: 64, ReservoirSize: 64, CheckEvery: 1 << 30, Stripes: 8}, Steady)
	single := NewController(Config{WindowSize: 64, ReservoirSize: 64, CheckEvery: 1 << 30, Stripes: 1}, Steady)
	for i := 0; i < 500; i++ {
		k := []byte{byte(i), byte(i >> 8), byte(i % 7)}
		stored := 1 + i%3
		striped.Observe(k, stored)
		single.Observe(k, stored)
	}
	if striped.Seen() != single.Seen() {
		t.Fatalf("seen: striped %d single %d", striped.Seen(), single.Seen())
	}
	// Round-robin keeps stripe windows equally occupied, so the combined
	// rate covers the same trailing window as the single ring.
	sr, gr := striped.RecentCPR(), single.RecentCPR()
	if sr < gr*0.99 || sr > gr*1.01 {
		t.Fatalf("rate: striped %f single %f", sr, gr)
	}
	ss, gs := striped.SampleSnapshot(), single.SampleSnapshot()
	if len(ss) < cfg.ReservoirSize || len(gs) < cfg.ReservoirSize {
		t.Fatalf("snapshots undersized: striped %d single %d", len(ss), len(gs))
	}
}

// TestStripedDriftStillFires: drift detection through the aggregated
// windows behaves as before — degrade the stored lengths and the Drift
// signal arrives once the combined window is full and cooled down.
func TestStripedDriftStillFires(t *testing.T) {
	c := NewController(Config{
		WindowSize: 64, ReservoirSize: 64, CheckEvery: 16,
		Cooldown: 64, DriftThreshold: 0.10, Stripes: 8,
	}, Building)
	if err := c.Cutover(2.0); err != nil { // baseline CPR 2.0
		t.Fatal(err)
	}
	key := []byte("abcdefgh") // raw 8
	sawDrift := false
	for i := 0; i < 512 && !sawDrift; i++ {
		// Stored length 8: CPR 1.0, far below baseline 2.0 - 10%.
		if c.Observe(key, 8) == Drift {
			sawDrift = true
		}
	}
	if !sawDrift {
		t.Fatal("striped tracker never signaled drift on degraded traffic")
	}
}

// TestStripedObserveConcurrent: hammer Observe and friends from many
// goroutines (the -race leg); totals must add up afterwards.
func TestStripedObserveConcurrent(t *testing.T) {
	c := NewController(Config{WindowSize: 256, ReservoirSize: 256, CheckEvery: 64, Stripes: 8}, Steady)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := []byte{byte(g), 0, 0}
			for i := 0; i < per; i++ {
				k[1], k[2] = byte(i), byte(i>>8)
				if i%5 == 0 {
					c.ObserveBulk(k)
				} else {
					c.Observe(k, 2)
				}
				if i%501 == 0 {
					c.Stats()
					c.RecentCPR()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Seen(); got != goroutines*per {
		t.Fatalf("seen %d want %d", got, goroutines*per)
	}
	if st := c.Stats(); st.Reservoir == 0 || st.RecentCPR == 0 {
		t.Fatalf("empty aggregate stats after traffic: %+v", st)
	}
}

// TestObserveZeroAllocSteadyState: the satellite's allocation bar — once
// the striped reservoir is full, Observe on fixed-size keys allocates
// nothing (replacements recycle buffers, the stripe choice is an atomic,
// and no global lock or map is touched).
func TestObserveZeroAllocSteadyState(t *testing.T) {
	c := NewController(Config{WindowSize: 128, ReservoirSize: 128, CheckEvery: 1 << 30, Stripes: 8}, Steady)
	k := []byte("com.user@0000000")
	for i := 0; i < 4096; i++ {
		c.Observe(k, 8)
	}
	allocs := testing.AllocsPerRun(4096, func() {
		c.Observe(k, 8)
	})
	if allocs >= 0.5 {
		t.Fatalf("Observe allocates %.2f/op in steady state, want 0", allocs)
	}
}

// BenchmarkObserveParallel measures the accounting hot path under
// multi-goroutine write pressure — the single-mutex tracker this replaces
// serialized every insert through one lock.
func BenchmarkObserveParallel(b *testing.B) {
	c := NewController(Config{}, Steady)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		k := []byte("com.user@0000000")
		for pb.Next() {
			c.Observe(k, 8)
		}
	})
}

// ---------------------------------------------------------------------------
// Retry policy: backoff, jitter, circuit breaker, half-open probe.
// ---------------------------------------------------------------------------

// fakeClock is a settable time source for backoff arithmetic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func retryController(clk *fakeClock, breakerAfter int) *Controller {
	return NewController(Config{
		BuildAfter: 10, RetryBackoff: time.Second, RetryBackoffMax: 8 * time.Second,
		RetryJitter:  -1, // deterministic delays
		BreakerAfter: breakerAfter,
		Clock:        clk.Now,
	}, Sampling)
}

func TestRecordFailureBackoffGrowsAndCaps(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := retryController(clk, -1)
	want := []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
		8 * time.Second, // capped
	}
	for i, w := range want {
		c.RecordFailure(fmt.Errorf("fail %d", i))
		s := c.Stats()
		if got := s.NextRetryAt.Sub(clk.Now()); got != w {
			t.Fatalf("failure %d: backoff %v, want %v", i+1, got, w)
		}
		if s.ConsecutiveFailures != i+1 {
			t.Fatalf("failure %d: ConsecutiveFailures %d", i+1, s.ConsecutiveFailures)
		}
		if s.LastError == nil || s.LastError.Error() != fmt.Sprintf("fail %d", i) {
			t.Fatalf("failure %d: LastError %v", i+1, s.LastError)
		}
	}
	if c.Degraded() {
		t.Fatal("breaker disabled (negative BreakerAfter) but Degraded")
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := NewController(Config{
		RetryBackoff: time.Second, RetryBackoffMax: time.Hour,
		RetryJitter: 0.5, Clock: clk.Now, Seed: 3,
	}, Steady)
	sawOffCenter := false
	for i := 0; i < 20; i++ {
		// Reset the streak each round so the base delay stays 1s.
		if err := c.BeginBuild(); err != nil {
			t.Fatal(err)
		}
		if err := c.Cutover(2.0); err != nil {
			t.Fatal(err)
		}
		c.RecordFailure(fmt.Errorf("f"))
		d := c.Stats().NextRetryAt.Sub(clk.Now())
		if d < 500*time.Millisecond || d > 1500*time.Millisecond {
			t.Fatalf("round %d: jittered delay %v outside [0.5s, 1.5s]", i, d)
		}
		if d != time.Second {
			sawOffCenter = true
		}
	}
	if !sawOffCenter {
		t.Fatal("jitter never moved the delay off the base value")
	}
}

func TestAutoAllowedGatesSignalsUntilBackoffExpires(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := retryController(clk, -1)
	for i := 0; i < 20; i++ {
		c.Observe([]byte(fmt.Sprintf("key-%02d", i)), 7)
	}
	if c.Check() != FirstBuild {
		t.Fatal("FirstBuild did not arm")
	}
	c.RecordFailure(fmt.Errorf("build failed"))
	if c.Check() != None {
		t.Fatal("signal fired while backing off")
	}
	if c.AutoAllowed() {
		t.Fatal("AutoAllowed during backoff")
	}
	clk.Advance(time.Second)
	if c.Check() != FirstBuild {
		t.Fatal("signal did not re-arm after backoff expired")
	}
	if !c.AutoAllowed() {
		t.Fatal("AutoAllowed false after backoff expired")
	}
}

func TestBreakerOpensAndCutoverCloses(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := retryController(clk, 3)
	for i := 0; i < 3; i++ {
		if c.Degraded() {
			t.Fatalf("breaker open after %d failures, want 3", i)
		}
		c.RecordFailure(fmt.Errorf("fail"))
		clk.Advance(time.Hour)
	}
	s := c.Stats()
	if !c.Degraded() || !s.Degraded || s.ConsecutiveFailures != 3 {
		t.Fatalf("breaker did not open: %+v", s)
	}
	// Half-open: the backoff has expired (clock advanced), so exactly the
	// gate is open for a probe.
	if !c.AutoAllowed() {
		t.Fatal("half-open probe gated after backoff expiry")
	}
	// A successful rebuild closes the breaker and clears the policy state.
	if err := c.BeginBuild(); err != nil {
		t.Fatal(err)
	}
	if err := c.Cutover(2.0); err != nil {
		t.Fatal(err)
	}
	s = c.Stats()
	if s.Degraded || s.ConsecutiveFailures != 0 || s.LastError != nil || !s.NextRetryAt.IsZero() {
		t.Fatalf("cutover did not reset health: %+v", s)
	}
}

func TestResplitAllowedGates(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := NewController(Config{
		Cooldown: 4, RetryBackoff: time.Second, RetryJitter: -1, Clock: clk.Now,
	}, Sampling)
	if c.ResplitAllowed() {
		t.Fatal("resplit allowed while Sampling")
	}
	if err := c.BeginBuild(); err != nil {
		t.Fatal(err)
	}
	if err := c.Cutover(2.0); err != nil {
		t.Fatal(err)
	}
	if c.ResplitAllowed() {
		t.Fatal("resplit allowed inside the post-cutover cooldown")
	}
	for i := 0; i < 4; i++ {
		c.Observe([]byte{byte(i)}, 1)
	}
	if !c.ResplitAllowed() {
		t.Fatal("resplit gated after cooldown")
	}
	c.RecordFailure(fmt.Errorf("fail"))
	if c.ResplitAllowed() {
		t.Fatal("resplit allowed while backing off")
	}
	clk.Advance(2 * time.Second)
	if !c.ResplitAllowed() {
		t.Fatal("resplit gated after backoff expiry")
	}
}
