package prefixbtree

// minFill is the minimum slot count for non-root nodes after deletion.
const minFill = Fanout / 2

// Delete removes a key, reports whether it was present, and rebalances
// with sibling borrows and merges. Moved keys are re-truncated against
// their destination leaf's prefix, and affected separators are recomputed
// with suffix truncation, so both space optimizations survive churn.
func (t *Tree) Delete(key []byte) bool {
	if !t.del(t.root, key) {
		return false
	}
	t.size--
	if in, ok := t.root.(*innerNode); ok && in.n == 0 {
		t.root = in.child[0]
		t.height--
	}
	return true
}

func (t *Tree) del(n node, key []byte) bool {
	switch v := n.(type) {
	case *leafNode:
		i := v.lowerBound(key)
		if i >= v.n || cmpKey(key, v.prefix, v.sufs[i]) != 0 {
			return false
		}
		copy(v.sufs[i:], v.sufs[i+1:v.n])
		copy(v.vals[i:], v.vals[i+1:v.n])
		v.sufs[v.n-1] = nil
		v.n--
		v.recomputePrefix() // removal may lengthen the common prefix
		return true
	case *innerNode:
		idx := v.upperBound(key)
		if !t.del(v.child[idx], key) {
			return false
		}
		t.rebalance(v, idx)
		return true
	}
	return false
}

func fillOf(n node) int {
	switch v := n.(type) {
	case *leafNode:
		return v.n
	case *innerNode:
		return v.n
	}
	return 0
}

// shortestSep returns the shortest string s with leftMax < s <= rightMin
// (suffix truncation, as on splits).
func shortestSep(leftMax, rightMin []byte) []byte {
	return append([]byte(nil), rightMin[:lcpLen(leftMax, rightMin)+1]...)
}

// popSlot removes entry i from a leaf and returns the full key and value.
func (l *leafNode) popSlot(i int) ([]byte, uint64) {
	k := l.fullKey(nil, i)
	v := l.vals[i]
	copy(l.sufs[i:], l.sufs[i+1:l.n])
	copy(l.vals[i:], l.vals[i+1:l.n])
	l.sufs[l.n-1] = nil
	l.n--
	l.recomputePrefix()
	return k, v
}

func (t *Tree) rebalance(p *innerNode, idx int) {
	if fillOf(p.child[idx]) >= minFill {
		return
	}
	left, right := -1, -1
	if idx > 0 {
		left = idx - 1
	}
	if idx < p.n {
		right = idx + 1
	}
	switch c := p.child[idx].(type) {
	case *leafNode:
		if left >= 0 && fillOf(p.child[left]) > minFill {
			l := p.child[left].(*leafNode)
			k, v := l.popSlot(l.n - 1)
			t.leafPlace(c, k, v)
			p.keys[left] = shortestSep(l.fullKey(nil, l.n-1), c.fullKey(nil, 0))
			p.pad()
			return
		}
		if right >= 0 && fillOf(p.child[right]) > minFill {
			r := p.child[right].(*leafNode)
			k, v := r.popSlot(0)
			t.leafPlace(c, k, v)
			p.keys[idx] = shortestSep(c.fullKey(nil, c.n-1), r.fullKey(nil, 0))
			p.pad()
			return
		}
		if left >= 0 {
			mergePrefixLeaves(t, p.child[left].(*leafNode), c)
			p.removeAt(left)
		} else if right >= 0 {
			mergePrefixLeaves(t, c, p.child[right].(*leafNode))
			p.removeAt(idx)
		}
	case *innerNode:
		if left >= 0 && fillOf(p.child[left]) > minFill {
			l := p.child[left].(*innerNode)
			copy(c.keys[1:c.n+1], c.keys[:c.n])
			copy(c.child[1:c.n+2], c.child[:c.n+1])
			c.keys[0] = p.keys[left]
			c.child[0] = l.child[l.n]
			p.keys[left] = l.keys[l.n-1]
			l.child[l.n] = nil
			l.n--
			c.n++
			l.pad()
			c.pad()
			p.pad()
			return
		}
		if right >= 0 && fillOf(p.child[right]) > minFill {
			r := p.child[right].(*innerNode)
			c.keys[c.n] = p.keys[idx]
			c.child[c.n+1] = r.child[0]
			c.n++
			p.keys[idx] = r.keys[0]
			copy(r.keys[:r.n-1], r.keys[1:r.n])
			copy(r.child[:r.n], r.child[1:r.n+1])
			r.child[r.n] = nil
			r.n--
			r.pad()
			c.pad()
			p.pad()
			return
		}
		if left >= 0 {
			mergePrefixInners(p.child[left].(*innerNode), c, p.keys[left])
			p.removeAt(left)
		} else if right >= 0 {
			mergePrefixInners(c, p.child[right].(*innerNode), p.keys[idx])
			p.removeAt(idx)
		}
	}
}

// mergePrefixLeaves moves every key of r into l (re-truncating against
// l's adjusted prefix) and unlinks r. Combined occupancy fits: both nodes
// are at or below the minimum fill.
func mergePrefixLeaves(t *Tree, l, r *leafNode) {
	var buf []byte
	for i := 0; i < r.n; i++ {
		buf = r.fullKey(buf, i)
		t.leafPlace(l, buf, r.vals[i])
	}
	l.next = r.next
}

func mergePrefixInners(l, r *innerNode, sep []byte) {
	l.keys[l.n] = sep
	copy(l.keys[l.n+1:], r.keys[:r.n])
	copy(l.child[l.n+1:], r.child[:r.n+1])
	l.n += r.n + 1
	l.pad()
}

func (p *innerNode) removeAt(i int) {
	copy(p.keys[i:], p.keys[i+1:p.n])
	copy(p.child[i+1:], p.child[i+2:p.n+1])
	p.child[p.n] = nil
	p.n--
	p.pad()
}
