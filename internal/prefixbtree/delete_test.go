package prefixbtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/btree"
)

func TestDeleteBasicAndTruncationSurvives(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Insert([]byte(fmt.Sprintf("shared/prefix/%04d", i)), uint64(i))
	}
	for i := 0; i < 500; i += 3 {
		if !tr.Delete([]byte(fmt.Sprintf("shared/prefix/%04d", i))) {
			t.Fatalf("delete %d", i)
		}
	}
	for i := 0; i < 500; i++ {
		_, ok := tr.Get([]byte(fmt.Sprintf("shared/prefix/%04d", i)))
		if (i%3 == 0) == ok {
			t.Fatalf("key %d presence %v", i, ok)
		}
	}
	// Prefix truncation still effective after churn.
	s := tr.ComputeStats()
	raw := 0
	tr.Scan(nil, func(k []byte, _ uint64) bool { raw += len(k); return true })
	if s.PrefixBytes+s.SuffixBytes >= raw {
		t.Fatalf("truncation lost after deletes: stored %d raw %d",
			s.PrefixBytes+s.SuffixBytes, raw)
	}
}

// Differential churn against the plain B+tree: deletes must behave
// identically.
func TestDeleteMatchesPlainBTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pt := New()
	bt := btree.New()
	pool := randKeys(rng, 3000, 10)
	live := map[string]bool{}
	for round := 0; round < 40000; round++ {
		k := pool[rng.Intn(len(pool))]
		if live[string(k)] && rng.Intn(2) == 0 {
			d1 := pt.Delete(k)
			d2 := bt.Delete(k)
			if d1 != d2 || !d1 {
				t.Fatalf("delete divergence on %q: %v vs %v", k, d1, d2)
			}
			delete(live, string(k))
		} else {
			pt.Insert(k, uint64(round))
			bt.Insert(k, uint64(round))
			live[string(k)] = true
		}
	}
	if pt.Len() != bt.Len() || pt.Len() != len(live) {
		t.Fatalf("sizes diverge: %d vs %d vs %d", pt.Len(), bt.Len(), len(live))
	}
	checkInnerInvariants(t, pt.root)
	var a, b []string
	pt.Scan(nil, func(k []byte, _ uint64) bool { a = append(a, string(k)); return true })
	bt.Scan(nil, func(k []byte, _ uint64) bool { b = append(b, string(k)); return true })
	if len(a) != len(b) {
		t.Fatalf("scan lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan differs at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDeleteAllAndRootCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randKeys(rng, 4000, 10)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("delete %q at %d", k, i)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d after emptying", tr.Len(), tr.Height())
	}
	tr.Insert([]byte("again"), 9)
	if v, ok := tr.Get([]byte("again")); !ok || v != 9 {
		t.Fatal("unusable after emptying")
	}
}

func TestInsertDeleteQuickProperty(t *testing.T) {
	type op struct {
		Key []byte
		Del bool
		Val uint64
	}
	f := func(ops []op) bool {
		tr := New()
		ref := map[string]uint64{}
		for _, o := range ops {
			k := o.Key
			if len(k) > 8 {
				k = k[:8]
			}
			if o.Del {
				_, present := ref[string(k)]
				delete(ref, string(k))
				if tr.Delete(k) != present {
					return false
				}
			} else {
				tr.Insert(k, o.Val)
				ref[string(k)] = o.Val
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := tr.Get([]byte(k)); !ok || got != v {
				return false
			}
		}
		var prev []byte
		n, good := 0, true
		tr.Scan(nil, func(k []byte, _ uint64) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				good = false
				return false
			}
			prev = append(prev[:0], k...)
			n++
			return true
		})
		return good && n == len(ref)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
