// Package prefixbtree implements the Prefix B+tree of Bayer & Unterauer
// (the paper's fifth evaluated tree): a B+tree whose leaves store the
// common prefix of their keys exactly once (prefix truncation) and whose
// leaf splits promote the shortest possible separator (suffix truncation).
// Both techniques shrink the stored key bytes; HOPE then compresses what
// remains, which is why the paper observes smaller relative savings here
// than on a plain B+tree.
package prefixbtree

import (
	"bytes"
	"encoding/binary"
)

// Fanout is the number of key slots per node.
const Fanout = 16

// Tree is a Prefix B+tree mapping byte-string keys to uint64 values.
type Tree struct {
	root   node
	size   int
	height int
}

// New returns an empty tree.
func New() *Tree { return &Tree{root: &leafNode{}, height: 1} }

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

// Height returns the number of node levels.
func (t *Tree) Height() int { return t.height }

type node interface{ isNode() }

type leafNode struct {
	prefix []byte // common prefix of every key in this leaf, stored once
	sufs   [Fanout][]byte
	vals   [Fanout]uint64
	n      int
	next   *leafNode
}

type innerNode struct {
	// keys holds the suffix-truncated separators (owned copies); slots
	// n..Fanout-1 duplicate keys[n-1] (see pad) so upperBound can run
	// fixed-shape probes over a non-decreasing array, exactly as in the
	// plain btree package. Leaves stay packed: reprefix rewrites every
	// suffix slot on prefix changes anyway, so a gapped layout would not
	// save the shifts there.
	keys  [Fanout][]byte
	pw    [Fanout]uint64 // probe words: keys[i][pfx:] packed big-endian
	child [Fanout + 1]node
	n     int
	pfx   uint8 // shared separator prefix backing the probe words
}

// pad duplicates the last separator into the unused key slots and
// refreshes the shared prefix and probe words; inner mutations must call
// it whenever n or a separator changes. Inner mutations happen only on
// child splits and rebalances, so the full refresh is amortized across
// the leaf operations between them.
func (in *innerNode) pad() {
	if in.n == 0 {
		for i := range in.keys {
			in.keys[i] = nil
			in.pw[i] = 0
		}
		in.pfx = 0
		return
	}
	last := in.keys[in.n-1]
	for i := in.n; i < Fanout; i++ {
		in.keys[i] = last
	}
	p := lcpLen(in.keys[0], last)
	if p > 255 {
		p = 255
	}
	in.pfx = uint8(p)
	for i := range in.pw {
		in.pw[i] = be64(in.keys[i][p:])
	}
}

// be64 packs up to the first 8 bytes of b big-endian, zero-padded on the
// right, exactly as in the btree package: strict word order implies
// strict byte-string order, equal words are resolved with byte compares.
func be64(b []byte) uint64 {
	if len(b) >= 8 {
		return binary.BigEndian.Uint64(b)
	}
	var w uint64
	for _, c := range b {
		w = w<<8 | uint64(c)
	}
	return w << (8 * (8 - uint(len(b))))
}

func (*leafNode) isNode()  {}
func (*innerNode) isNode() {}

// cmpKey compares a full key against the leaf entry prefix+suf without
// materializing the concatenation.
func cmpKey(key, prefix, suf []byte) int {
	m := len(key)
	if len(prefix) < m {
		m = len(prefix)
	}
	if c := bytes.Compare(key[:m], prefix[:m]); c != 0 {
		return c
	}
	if len(key) < len(prefix) {
		return -1 // key is a proper prefix of the node prefix
	}
	return bytes.Compare(key[len(prefix):], suf)
}

func (l *leafNode) lowerBound(key []byte) int {
	lo, hi := 0, l.n
	for lo < hi {
		mid := (lo + hi) / 2
		if cmpKey(key, l.prefix, l.sufs[mid]) > 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index with key < keys[i], i.e. the child
// to descend into: one byte-compare for the shared separator prefix,
// then five fixed integer probes over the padded probe-word array
// (16 -> 8 -> 4 -> 2 -> 1), byte compares again only on equal-word runs,
// clamped to n. This mirrors innerNode.upperBound in the btree package.
func (in *innerNode) upperBound(key []byte) int {
	p := int(in.pfx)
	if p > 0 {
		pre := in.keys[0]
		if len(key) < p {
			if bytes.Compare(key, pre[:len(key)]) > 0 {
				return in.n
			}
			return 0 // below, or a proper prefix of, every separator
		}
		switch c := bytes.Compare(key[:p], pre[:p]); {
		case c < 0:
			return 0
		case c > 0:
			return in.n
		}
		key = key[p:]
	}
	kw := be64(key)
	b := 0
	if in.pw[7] < kw {
		b = 8
	}
	if in.pw[b+3] < kw {
		b += 4
	}
	if in.pw[b+1] < kw {
		b += 2
	}
	if in.pw[b] < kw {
		b++
	}
	if b < Fanout && in.pw[b] < kw {
		b++
	}
	for b < Fanout && in.pw[b] == kw && bytes.Compare(key, in.keys[b][p:]) >= 0 {
		b++
	}
	if b > in.n {
		b = in.n
	}
	return b
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	n := t.root
	for {
		switch v := n.(type) {
		case *innerNode:
			n = v.child[v.upperBound(key)]
		case *leafNode:
			i := v.lowerBound(key)
			if i < v.n && cmpKey(key, v.prefix, v.sufs[i]) == 0 {
				return v.vals[i], true
			}
			return 0, false
		}
	}
}

// fullKey reconstructs entry i into dst.
func (l *leafNode) fullKey(dst []byte, i int) []byte {
	dst = append(dst[:0], l.prefix...)
	return append(dst, l.sufs[i]...)
}

// reprefix adjusts the leaf so its prefix is exactly p (a prefix of the
// current prefix), re-expanding stored suffixes.
func (l *leafNode) reprefix(p []byte) {
	if len(p) == len(l.prefix) {
		return
	}
	tail := l.prefix[len(p):]
	for i := 0; i < l.n; i++ {
		s := make([]byte, 0, len(tail)+len(l.sufs[i]))
		s = append(append(s, tail...), l.sufs[i]...)
		l.sufs[i] = s
	}
	l.prefix = append([]byte(nil), p...)
}

// recomputePrefix grows the prefix to the LCP of the stored keys,
// trimming suffixes (called after splits).
func (l *leafNode) recomputePrefix() {
	if l.n == 0 {
		return
	}
	lcp := l.sufs[0]
	for i := 1; i < l.n; i++ {
		lcp = lcp[:lcpLen(lcp, l.sufs[i])]
	}
	if len(lcp) == 0 {
		return
	}
	l.prefix = append(append([]byte(nil), l.prefix...), lcp...)
	cut := len(lcp)
	for i := 0; i < l.n; i++ {
		l.sufs[i] = append([]byte(nil), l.sufs[i][cut:]...)
	}
}

func lcpLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Insert adds or updates a key. Key bytes are copied.
func (t *Tree) Insert(key []byte, val uint64) {
	sep, right := t.insert(t.root, key, val)
	if right != nil {
		r := &innerNode{n: 1}
		r.keys[0] = sep
		r.child[0] = t.root
		r.child[1] = right
		r.pad()
		t.root = r
		t.height++
	}
}

func (t *Tree) insert(n node, key []byte, val uint64) ([]byte, node) {
	switch v := n.(type) {
	case *innerNode:
		idx := v.upperBound(key)
		sep, right := t.insert(v.child[idx], key, val)
		if right == nil {
			return nil, nil
		}
		if v.n < Fanout {
			copy(v.keys[idx+1:v.n+1], v.keys[idx:v.n])
			copy(v.child[idx+2:v.n+2], v.child[idx+1:v.n+1])
			v.keys[idx] = sep
			v.child[idx+1] = right
			v.n++
			v.pad()
			return nil, nil
		}
		return v.splitInsert(idx, sep, right)
	case *leafNode:
		i := v.lowerBound(key)
		if i < v.n && cmpKey(key, v.prefix, v.sufs[i]) == 0 {
			v.vals[i] = val
			return nil, nil
		}
		if v.n == 0 {
			v.prefix = append([]byte(nil), key...)
			v.sufs[0] = []byte{}
			v.vals[0] = val
			v.n = 1
			t.size++
			return nil, nil
		}
		// Shrink the prefix to cover the new key, then place its suffix.
		p := key[:lcpLen(key, v.prefix)]
		v.reprefix(p)
		suf := append([]byte(nil), key[len(v.prefix):]...)
		if v.n < Fanout {
			i = v.lowerBound(key)
			copy(v.sufs[i+1:v.n+1], v.sufs[i:v.n])
			copy(v.vals[i+1:v.n+1], v.vals[i:v.n])
			v.sufs[i] = suf
			v.vals[i] = val
			v.n++
			t.size++
			return nil, nil
		}
		// Split, recompute both prefixes, insert into the proper half.
		mid := Fanout / 2
		right := &leafNode{n: Fanout - mid, next: v.next, prefix: append([]byte(nil), v.prefix...)}
		copy(right.sufs[:], v.sufs[mid:])
		copy(right.vals[:], v.vals[mid:])
		for j := mid; j < Fanout; j++ {
			v.sufs[j] = nil
		}
		v.n = mid
		v.next = right
		v.recomputePrefix()
		right.recomputePrefix()
		if cmpKey(key, right.prefix, right.sufs[0]) < 0 {
			t.leafPlace(v, key, val)
		} else {
			t.leafPlace(right, key, val)
		}
		t.size++
		// Suffix truncation: promote the shortest separator s with
		// leftMax < s <= rightMin.
		leftMax := v.fullKey(nil, v.n-1)
		rightMin := right.fullKey(nil, 0)
		sep := append([]byte(nil), rightMin[:lcpLen(leftMax, rightMin)+1]...)
		return sep, right
	}
	return nil, nil
}

// leafPlace inserts into a non-full leaf, adjusting the prefix.
func (t *Tree) leafPlace(l *leafNode, key []byte, val uint64) {
	l.reprefix(key[:lcpLen(key, l.prefix)])
	i := l.lowerBound(key)
	copy(l.sufs[i+1:l.n+1], l.sufs[i:l.n])
	copy(l.vals[i+1:l.n+1], l.vals[i:l.n])
	l.sufs[i] = append([]byte(nil), key[len(l.prefix):]...)
	l.vals[i] = val
	l.n++
}

func (v *innerNode) splitInsert(idx int, sep []byte, right node) ([]byte, node) {
	var keys [Fanout + 1][]byte
	var child [Fanout + 2]node
	copy(keys[:idx], v.keys[:idx])
	keys[idx] = sep
	copy(keys[idx+1:], v.keys[idx:v.n])
	copy(child[:idx+1], v.child[:idx+1])
	child[idx+1] = right
	copy(child[idx+2:], v.child[idx+1:v.n+1])

	total := Fanout + 1
	mid := total / 2
	up := keys[mid]
	v.n = mid
	copy(v.keys[:], keys[:mid])
	copy(v.child[:], child[:mid+1])
	for j := mid + 1; j < Fanout+1; j++ {
		v.child[j] = nil
	}
	v.pad()
	r := &innerNode{n: total - mid - 1}
	copy(r.keys[:], keys[mid+1:total])
	copy(r.child[:], child[mid+1:total+1])
	r.pad()
	return up, r
}

// Scan visits keys >= start in order until fn returns false. The key slice
// passed to fn is reused between calls; copy it to retain.
func (t *Tree) Scan(start []byte, fn func(key []byte, val uint64) bool) {
	n := t.root
	for {
		in, ok := n.(*innerNode)
		if !ok {
			break
		}
		n = in.child[in.upperBound(start)]
	}
	l := n.(*leafNode)
	i := l.lowerBound(start)
	var buf []byte
	for l != nil {
		for ; i < l.n; i++ {
			buf = l.fullKey(buf, i)
			if !fn(buf, l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

// BulkLoad builds the tree from sorted unique keys with maximal prefix
// truncation per leaf; values default to key indexes.
func BulkLoad(keys [][]byte, vals []uint64) *Tree {
	t := New()
	if len(keys) == 0 {
		return t
	}
	var leaves []node
	var mins [][]byte // full first key per leaf, for separators
	var prev *leafNode
	for i := 0; i < len(keys); i += Fanout {
		end := i + Fanout
		if end > len(keys) {
			end = len(keys)
		}
		lcp := keys[i]
		for j := i + 1; j < end; j++ {
			lcp = lcp[:lcpLen(lcp, keys[j])]
		}
		// One arena allocation holds the leaf's suffix bytes, instead of
		// one allocation per key.
		total := 0
		for j := i; j < end; j++ {
			total += len(keys[j]) - len(lcp)
		}
		arena := make([]byte, 0, total)
		l := &leafNode{prefix: append([]byte(nil), lcp...)}
		for j := i; j < end; j++ {
			off := len(arena)
			arena = append(arena, keys[j][len(lcp):]...)
			l.sufs[j-i] = arena[off:len(arena):len(arena)]
			if vals != nil {
				l.vals[j-i] = vals[j]
			} else {
				l.vals[j-i] = uint64(j)
			}
			l.n++
		}
		if prev != nil {
			prev.next = l
		}
		prev = l
		leaves = append(leaves, l)
		mins = append(mins, keys[i])
	}
	t.size = len(keys)
	// Suffix-truncated separators between adjacent leaves.
	seps := make([][]byte, len(leaves))
	for i := 1; i < len(leaves); i++ {
		leftMax := keys[minInt(i*Fanout, len(keys))-1]
		rightMin := mins[i]
		seps[i] = append([]byte(nil), rightMin[:lcpLen(leftMax, rightMin)+1]...)
	}
	level := leaves
	t.height = 1
	for len(level) > 1 {
		var up []node
		var upSeps [][]byte
		for i := 0; i < len(level); i += Fanout + 1 {
			in := &innerNode{}
			end := i + Fanout + 1
			if end > len(level) {
				end = len(level)
			}
			for j := i; j < end; j++ {
				in.child[j-i] = level[j]
				if j > i {
					in.keys[j-i-1] = seps[j]
					in.n++
				}
			}
			in.pad()
			up = append(up, in)
			upSeps = append(upSeps, seps[i])
		}
		level = up
		seps = upSeps
		t.height++
	}
	t.root = level[0]
	return t
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Stats summarizes structure and modeled memory: node headers and slot
// arrays as in the plain B+tree, but key storage counts the truncated
// bytes actually kept (leaf prefixes once, suffixes, separator copies).
type Stats struct {
	Leaves, Inners           int
	PrefixBytes, SuffixBytes int
	SeparatorBytes           int
	MemoryBytes              int
}

// ComputeStats traverses the tree. Inner nodes carry the extra 8-byte
// probe-word slot backing the branchless separator search; leaves keep
// the plain 16-byte slots.
func (t *Tree) ComputeStats() Stats {
	var s Stats
	walkStats(t.root, &s)
	s.MemoryBytes = s.Leaves*(16+Fanout*16) + s.Inners*(16+Fanout*24) +
		s.PrefixBytes + s.SuffixBytes + s.SeparatorBytes
	return s
}

func walkStats(n node, s *Stats) {
	switch v := n.(type) {
	case *leafNode:
		s.Leaves++
		s.PrefixBytes += len(v.prefix)
		for i := 0; i < v.n; i++ {
			s.SuffixBytes += len(v.sufs[i])
		}
	case *innerNode:
		s.Inners++
		for i := 0; i < v.n; i++ {
			s.SeparatorBytes += len(v.keys[i])
		}
		for i := 0; i <= v.n; i++ {
			walkStats(v.child[i], s)
		}
	}
}

// MemoryUsage returns the modeled footprint in bytes.
func (t *Tree) MemoryUsage() int { return t.ComputeStats().MemoryBytes }
