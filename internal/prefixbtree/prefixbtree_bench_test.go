package prefixbtree

import (
	"testing"

	"repro/internal/datagen"
)

func BenchmarkInsert(b *testing.B) {
	keys := datagen.Generate(datagen.URL, 50000, 1)
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i%len(keys)], uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	keys := datagen.Generate(datagen.URL, 50000, 1)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i%len(keys)])
	}
}
