package prefixbtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/btree"
	"repro/internal/datagen"
)

func randKeys(rng *rand.Rand, n, maxLen int) [][]byte {
	seen := map[string]bool{}
	var out [][]byte
	for len(out) < n {
		k := make([]byte, 1+rng.Intn(maxLen))
		for i := range k {
			k[i] = byte('a' + rng.Intn(6))
		}
		if !seen[string(k)] {
			seen[string(k)] = true
			out = append(out, k)
		}
	}
	return out
}

// checkInnerInvariants walks every inner node and verifies the padded
// separator array, the shared prefix, and the probe words that
// upperBound's fixed-shape search relies on.
func checkInnerInvariants(t *testing.T, n node) {
	t.Helper()
	in, ok := n.(*innerNode)
	if !ok {
		return
	}
	if in.n > 0 {
		last := in.keys[in.n-1]
		for i := in.n; i < Fanout; i++ {
			if !bytes.Equal(in.keys[i], last) {
				t.Fatalf("pad slot %d = %q, want %q", i, in.keys[i], last)
			}
		}
		p := lcpLen(in.keys[0], last)
		if p > 255 {
			p = 255
		}
		if int(in.pfx) != p {
			t.Fatalf("pfx = %d, want %d", in.pfx, p)
		}
		for i := range in.pw {
			if want := be64(in.keys[i][in.pfx:]); in.pw[i] != want {
				t.Fatalf("pw[%d] = %#x, want %#x (key %q pfx %d)",
					i, in.pw[i], want, in.keys[i], in.pfx)
			}
		}
	}
	for i := 0; i <= in.n; i++ {
		checkInnerInvariants(t, in.child[i])
	}
}

func TestInsertGetRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := randKeys(rng, 5000, 12)
	tr := New()
	for i, k := range keys {
		tr.Insert(k, uint64(i))
	}
	checkInnerInvariants(t, tr.root)
	if tr.Len() != len(keys) {
		t.Fatalf("Len=%d, want %d", tr.Len(), len(keys))
	}
	for i, k := range keys {
		v, ok := tr.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%q)=(%d,%v), want %d", k, v, ok, i)
		}
	}
	// Absent keys.
	for i := 0; i < 3000; i++ {
		k := randKeys(rng, 1, 14)[0]
		_, ok := tr.Get(k)
		found := false
		for _, kk := range keys {
			if bytes.Equal(k, kk) {
				found = true
				break
			}
		}
		if ok != found {
			t.Fatalf("Get(%q) presence %v, want %v", k, ok, found)
		}
	}
}

func TestMatchesPlainBTreeOnEverything(t *testing.T) {
	// Differential test: Prefix B+tree must be observationally identical
	// to the plain B+tree.
	rng := rand.New(rand.NewSource(2))
	keys := randKeys(rng, 4000, 10)
	pt := New()
	bt := btree.New()
	for i, k := range keys {
		pt.Insert(k, uint64(i))
		bt.Insert(k, uint64(i))
	}
	probes := append(randKeys(rng, 2000, 12), keys[:500]...)
	for _, k := range probes {
		pv, pok := pt.Get(k)
		bv, bok := bt.Get(k)
		if pok != bok || (pok && pv != bv) {
			t.Fatalf("Get(%q): prefix (%d,%v) vs plain (%d,%v)", k, pv, pok, bv, bok)
		}
	}
	for trial := 0; trial < 200; trial++ {
		start := randKeys(rng, 1, 12)[0]
		limit := 1 + rng.Intn(25)
		var a, b []string
		pt.Scan(start, func(k []byte, _ uint64) bool {
			a = append(a, string(k))
			return len(a) < limit
		})
		bt.Scan(start, func(k []byte, _ uint64) bool {
			b = append(b, string(k))
			return len(b) < limit
		})
		if len(a) != len(b) {
			t.Fatalf("Scan(%q): %d vs %d keys", start, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Scan(%q)[%d]: %q vs %q", start, i, a[i], b[i])
			}
		}
	}
}

func TestPrefixTruncationSavesMemoryOnSharedPrefixes(t *testing.T) {
	// URL-like keys share long prefixes; the Prefix B+tree must store
	// fewer key bytes than the plain B+tree.
	keys := datagen.Generate(datagen.URL, 3000, 7)
	pt := New()
	bt := btree.New()
	for i, k := range keys {
		pt.Insert(k, uint64(i))
		bt.Insert(k, uint64(i))
	}
	ps := pt.ComputeStats()
	bs := bt.ComputeStats()
	prefixKeyBytes := ps.PrefixBytes + ps.SuffixBytes + ps.SeparatorBytes
	if prefixKeyBytes >= bs.KeyBytes {
		t.Fatalf("prefix truncation stored %d key bytes, plain stores %d",
			prefixKeyBytes, bs.KeyBytes)
	}
	if pt.MemoryUsage() >= bt.MemoryUsage() {
		t.Fatalf("prefix tree (%d B) not smaller than plain (%d B)",
			pt.MemoryUsage(), bt.MemoryUsage())
	}
}

func TestSeparatorsAreShort(t *testing.T) {
	// Suffix truncation: separators should be much shorter than full keys.
	keys := datagen.Generate(datagen.URL, 2000, 8)
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	tr := BulkLoad(keys, nil)
	s := tr.ComputeStats()
	nSeps := 0
	// Rough count: inner nodes hold ~Fanout separators each.
	if s.Inners > 0 {
		nSeps = s.SeparatorBytes / s.Inners
	}
	avgKey := datagen.AvgLen(keys)
	if float64(nSeps) > avgKey*float64(Fanout) {
		t.Fatalf("separator bytes per inner node %d vs avg key %f: no truncation evident",
			nSeps, avgKey)
	}
}

func TestBulkLoadEquivalentToInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := randKeys(rng, 3000, 10)
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	bl := BulkLoad(keys, nil)
	ins := New()
	for i, k := range keys {
		ins.Insert(k, uint64(i))
	}
	for i, k := range keys {
		v, ok := bl.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("bulk Get(%q)=(%d,%v)", k, v, ok)
		}
	}
	var a, b []string
	bl.Scan(nil, func(k []byte, _ uint64) bool { a = append(a, string(k)); return true })
	ins.Scan(nil, func(k []byte, _ uint64) bool { b = append(b, string(k)); return true })
	if len(a) != len(b) {
		t.Fatalf("scan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan differs at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestUpdateAndPrefixKeys(t *testing.T) {
	tr := New()
	// Keys that are prefixes of each other stress cmpKey.
	keys := []string{"a", "ab", "abc", "abcd", "abcde", "b"}
	for i, k := range keys {
		tr.Insert([]byte(k), uint64(i))
	}
	for i, k := range keys {
		if v, ok := tr.Get([]byte(k)); !ok || v != uint64(i) {
			t.Fatalf("Get(%q)=(%d,%v)", k, v, ok)
		}
	}
	tr.Insert([]byte("abc"), 99)
	if v, _ := tr.Get([]byte("abc")); v != 99 {
		t.Fatal("update lost")
	}
	if tr.Len() != len(keys) {
		t.Fatal("size changed on update")
	}
}

func TestScanKeyReuseSemantics(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert([]byte(fmt.Sprintf("key%03d", i)), uint64(i))
	}
	// The callback key buffer is reused: retained copies must be explicit.
	var copies []string
	tr.Scan([]byte("key050"), func(k []byte, _ uint64) bool {
		copies = append(copies, string(k))
		return len(copies) < 5
	})
	want := []string{"key050", "key051", "key052", "key053", "key054"}
	for i := range want {
		if copies[i] != want[i] {
			t.Fatalf("scan[%d]=%q, want %q", i, copies[i], want[i])
		}
	}
}

func TestSequentialAndDescendingInserts(t *testing.T) {
	for _, desc := range []bool{false, true} {
		tr := New()
		n := 10000
		for i := 0; i < n; i++ {
			j := i
			if desc {
				j = n - 1 - i
			}
			tr.Insert([]byte(fmt.Sprintf("%08d", j)), uint64(j))
		}
		if tr.Len() != n {
			t.Fatalf("desc=%v: size %d", desc, tr.Len())
		}
		for _, i := range []int{0, 1, n / 2, n - 1} {
			if v, ok := tr.Get([]byte(fmt.Sprintf("%08d", i))); !ok || v != uint64(i) {
				t.Fatalf("desc=%v: lost key %d", desc, i)
			}
		}
		if tr.Height() > 6 {
			t.Fatalf("desc=%v: height %d", desc, tr.Height())
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("phantom")
	}
	n := 0
	tr.Scan(nil, func([]byte, uint64) bool { n++; return true })
	if n != 0 {
		t.Fatal("scan emitted on empty tree")
	}
	if BulkLoad(nil, nil).Len() != 0 {
		t.Fatal("empty bulk load")
	}
}
