package prefixbtree

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: any insert sequence leaves the tree observationally equal to a
// map, and every leaf's stored prefix is consistent with its keys.
func TestQuickModelEquivalence(t *testing.T) {
	type kv struct {
		Key []byte
		Val uint64
	}
	f := func(ops []kv) bool {
		tr := New()
		ref := map[string]uint64{}
		for _, o := range ops {
			k := o.Key
			if len(k) > 10 {
				k = k[:10]
			}
			tr.Insert(k, o.Val)
			ref[string(k)] = o.Val
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := tr.Get([]byte(k)); !ok || got != v {
				return false
			}
		}
		var prev []byte
		n := 0
		good := true
		tr.Scan(nil, func(k []byte, v uint64) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				good = false
				return false
			}
			if ref[string(k)] != v {
				good = false
				return false
			}
			prev = append(prev[:0], k...)
			n++
			return true
		})
		return good && n == len(ref)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// The prefix-truncation invariant: within every leaf, the stored prefix
// plus each suffix reconstructs a key that lies within the leaf's
// separator bounds, and the prefix is exactly the LCP of the leaf's keys
// after bulk load.
func TestLeafPrefixInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr := New()
	for i := 0; i < 20000; i++ {
		k := []byte("shared/deep/prefix/")
		for j := 0; j < 1+rng.Intn(8); j++ {
			k = append(k, byte('a'+rng.Intn(8)))
		}
		tr.Insert(k, uint64(i))
	}
	var walk func(n node)
	walk = func(n node) {
		switch v := n.(type) {
		case *leafNode:
			if v.n > 1 {
				// The prefix must be common to all stored keys.
				for i := 0; i < v.n; i++ {
					full := v.fullKey(nil, i)
					if !bytes.HasPrefix(full, v.prefix) {
						t.Fatal("reconstruction lost the prefix")
					}
				}
			}
		case *innerNode:
			for i := 0; i <= v.n; i++ {
				walk(v.child[i])
			}
		}
	}
	walk(tr.root)
	// The deep shared prefix must actually be exploited: stored suffix
	// bytes well below raw key bytes.
	s := tr.ComputeStats()
	rawBytes := 0
	tr.Scan(nil, func(k []byte, _ uint64) bool { rawBytes += len(k); return true })
	if s.SuffixBytes+s.PrefixBytes >= rawBytes {
		t.Fatalf("no truncation benefit: stored %d vs raw %d",
			s.SuffixBytes+s.PrefixBytes, rawBytes)
	}
}
