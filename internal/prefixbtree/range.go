package prefixbtree

import "bytes"

// Range visits keys in [lo, hi) — or [lo, hi] when hiIncl — in ascending
// order until fn returns false. A nil hi leaves the range unbounded above.
// It is the adapter hope.Index drives: the facade translates original-key
// bounds into encoded space and the tree cuts the iteration off at the
// upper bound instead of surfacing every key >= lo.
func (t *Tree) Range(lo, hi []byte, hiIncl bool, fn func(key []byte, val uint64) bool) {
	t.Scan(lo, func(k []byte, v uint64) bool {
		if hi != nil {
			if c := bytes.Compare(k, hi); c > 0 || (c == 0 && !hiIncl) {
				return false
			}
		}
		return fn(k, v)
	})
}
