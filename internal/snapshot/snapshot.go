// Package snapshot is the crash-consistent persistence layer under
// hope.Persistent: a versioned, checksummed, section-framed snapshot file
// format, the atomic write-temp-fsync-rename commit protocol around it,
// and generation-numbered retention with a validate-and-fall-back reader.
//
// The package is deliberately ignorant of what the sections mean — the
// hope package serializes its dictionary and per-shard encoded runs into
// opaque payloads — so the framing, checksums, and commit discipline can
// be tested (and fault-injected) in isolation.
//
// # File format
//
// One snapshot is a single file, all integers little-endian:
//
//	header:  magic "HOPESNP1" | version u32 | generation u64 | crc u32
//	section: kind u8 | shard i32 | payload-len u64 | payload | crc u32
//	footer:  a section with kind 0xFF whose payload is the u64 count of
//	         the preceding sections
//
// Every CRC is CRC-32C (Castagnoli) over the bytes of its frame (header
// or section) that precede it. The footer doubles as the torn-write
// detector: a file that ends before a complete, checksummed footer was
// interrupted mid-write (ErrTorn); a file whose bytes are present but
// inconsistent — bad magic, failed CRC, trailing garbage, a footer count
// that disagrees — was corrupted (ErrCorrupt). The distinction matters
// only for diagnostics; the reader's fallback ladder treats both as
// "this generation is unusable, try the previous one".
//
// # Commit protocol
//
// Dir.Commit writes "snap-<generation>.hope" in four ordered steps:
// write everything to a ".tmp" sibling, fsync it, rename it over the
// final name, fsync the directory. A crash between any two steps leaves
// either the previous generation intact (tmp files are ignored and
// reaped) or the new file fully durable — never a half-visible snapshot.
// The previous generation's file is retained until the new one is
// durable; Prune removes older ones after a successful commit.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Typed failure taxonomy, checked with errors.Is.
var (
	// ErrCorrupt reports a snapshot whose bytes are present but
	// inconsistent: bad magic, a failed section checksum, trailing
	// garbage, or a footer that disagrees with the sections before it.
	ErrCorrupt = errors.New("snapshot: corrupt")
	// ErrTorn reports a snapshot cut off mid-write: the file ends before
	// a complete, checksummed footer.
	ErrTorn = errors.New("snapshot: torn write")
	// ErrNoSnapshot reports a directory holding no snapshot generation at
	// all (distinct from holding only unusable ones).
	ErrNoSnapshot = errors.New("snapshot: no snapshot found")
)

const (
	magic   = "HOPESNP1"
	version = 1

	// FooterKind is the reserved section kind closing every snapshot;
	// payload kinds must stay below it.
	FooterKind = 0xFF

	headerLen = len(magic) + 4 + 8 + 4 // magic | version | generation | crc
	frameLen  = 1 + 4 + 8              // kind | shard | payload-len
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section is one framed unit of a snapshot: an opaque payload tagged with
// a caller-defined kind and the shard it concerns (-1 when whole-index).
type Section struct {
	Kind    uint8
	Shard   int
	Payload []byte
}

// Snapshot is one fully validated snapshot file.
type Snapshot struct {
	Generation uint64
	Sections   []Section
}

// Writer streams one snapshot file: header on construction, Section per
// payload, Finish for the footer. It does not own the File — the commit
// protocol around it (Dir.Commit) syncs, closes, and renames.
type Writer struct {
	f   File
	n   uint64
	buf []byte
}

// NewWriter writes the header and returns a section writer.
func NewWriter(f File, generation uint64) (*Writer, error) {
	w := &Writer{f: f}
	w.buf = append(w.buf, magic...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, version)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, generation)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.Checksum(w.buf, castagnoli))
	if _, err := f.Write(w.buf); err != nil {
		return nil, err
	}
	return w, nil
}

// Section writes one framed, checksummed section.
func (w *Writer) Section(kind uint8, shard int, payload []byte) error {
	if kind == FooterKind {
		return fmt.Errorf("snapshot: section kind %#x is reserved for the footer", FooterKind)
	}
	if err := w.section(kind, shard, payload); err != nil {
		return err
	}
	w.n++
	return nil
}

func (w *Writer) section(kind uint8, shard int, payload []byte) error {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, kind)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(int32(shard)))
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(len(payload)))
	crc := crc32.Checksum(w.buf, castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	// One Write per frame part: header, payload, crc. Separate writes keep
	// the fault VFS's torn-write simulation meaningful (a fault tears one
	// part, not a private concatenation).
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.f.Write(payload); err != nil {
			return err
		}
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf[:0], crc)
	_, err := w.f.Write(w.buf)
	return err
}

// Finish writes the footer. The caller still owns Sync and Close.
func (w *Writer) Finish() error {
	payload := binary.LittleEndian.AppendUint64(nil, w.n)
	return w.section(FooterKind, -1, payload)
}

// Decode parses and fully validates one snapshot image. Every byte is
// checksummed before any section is returned — a restore never acts on a
// partially validated file.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d-byte file, header needs %d", ErrTorn, len(data), headerLen)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(magic)])
	}
	hdr := data[:headerLen-4]
	if crc32.Checksum(hdr, castagnoli) != binary.LittleEndian.Uint32(data[headerLen-4:headerLen]) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != version {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrCorrupt, v, version)
	}
	snap := &Snapshot{Generation: binary.LittleEndian.Uint64(data[len(magic)+4:])}

	off := headerLen
	sealed := false
	for off < len(data) {
		if sealed {
			return nil, fmt.Errorf("%w: %d trailing bytes after footer", ErrCorrupt, len(data)-off)
		}
		if len(data)-off < frameLen {
			return nil, fmt.Errorf("%w: truncated section frame at offset %d", ErrTorn, off)
		}
		kind := data[off]
		shard := int(int32(binary.LittleEndian.Uint32(data[off+1:])))
		plen := binary.LittleEndian.Uint64(data[off+5:])
		body := off + frameLen
		if plen > uint64(len(data)-body) {
			return nil, fmt.Errorf("%w: section at offset %d claims %d payload bytes, %d remain", ErrTorn, off, plen, len(data)-body)
		}
		end := body + int(plen)
		if len(data)-end < 4 {
			return nil, fmt.Errorf("%w: section at offset %d missing checksum", ErrTorn, off)
		}
		want := binary.LittleEndian.Uint32(data[end:])
		if crc32.Checksum(data[off:end], castagnoli) != want {
			return nil, fmt.Errorf("%w: section checksum mismatch at offset %d", ErrCorrupt, off)
		}
		payload := data[body:end]
		off = end + 4
		if kind == FooterKind {
			if plen != 8 {
				return nil, fmt.Errorf("%w: footer payload is %d bytes, want 8", ErrCorrupt, plen)
			}
			if n := binary.LittleEndian.Uint64(payload); n != uint64(len(snap.Sections)) {
				return nil, fmt.Errorf("%w: footer counts %d sections, file has %d", ErrCorrupt, n, len(snap.Sections))
			}
			sealed = true
			continue
		}
		snap.Sections = append(snap.Sections, Section{Kind: kind, Shard: shard, Payload: payload})
	}
	if !sealed {
		return nil, fmt.Errorf("%w: no footer", ErrTorn)
	}
	return snap, nil
}

// Dir manages the generation-numbered snapshot files of one directory
// through a VFS.
type Dir struct {
	FS   VFS
	Path string
}

// fileName is the canonical name of one generation's snapshot file.
// Zero-padded hex so lexicographic directory order is generation order.
func fileName(gen uint64) string { return fmt.Sprintf("snap-%016x.hope", gen) }

// parseGen inverts fileName; ok is false for foreign files (including the
// commit protocol's .tmp intermediates).
func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".hope") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".hope")
	if len(hex) != 16 {
		return 0, false
	}
	gen, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// Generations lists the committed generation numbers, ascending. A
// missing directory is an empty list, not an error.
func (d *Dir) Generations() ([]uint64, error) {
	names, err := d.FS.ReadDir(d.Path)
	if err != nil {
		return nil, nil // no directory yet: nothing committed
	}
	var gens []uint64
	for _, n := range names {
		if g, ok := parseGen(n); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Commit durably writes generation gen: sections streams the payloads
// through a Writer; Commit wraps it in the header/footer framing and the
// write-temp-fsync-rename-dirsync protocol. On any error the temp file
// is reaped (best effort) and the directory's committed state is
// unchanged.
func (d *Dir) Commit(gen uint64, sections func(w *Writer) error) (err error) {
	if err := d.FS.MkdirAll(d.Path); err != nil {
		return err
	}
	final := filepath.Join(d.Path, fileName(gen))
	tmp := final + ".tmp"
	f, err := d.FS.Create(tmp)
	if err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			_ = d.FS.Remove(tmp) // best effort; a leftover tmp is inert
		}
	}()
	w, err := NewWriter(f, gen)
	if err != nil {
		f.Close()
		return err
	}
	if err := sections(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Finish(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := d.FS.Rename(tmp, final); err != nil {
		return err
	}
	if err := d.FS.SyncDir(d.Path); err != nil {
		return err
	}
	committed = true
	return nil
}

// Load reads and fully validates one committed generation.
func (d *Dir) Load(gen uint64) (*Snapshot, error) {
	f, err := d.FS.Open(filepath.Join(d.Path, fileName(gen)))
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("generation %d: %w", gen, err)
	}
	if snap.Generation != gen {
		return nil, fmt.Errorf("%w: file named generation %d carries %d", ErrCorrupt, gen, snap.Generation)
	}
	return snap, nil
}

// LoadNewest walks the committed generations newest-first and returns the
// first that validates — the fallback ladder. A torn or corrupt newest
// generation (a crash mid-commit, bit rot) silently falls back to the one
// before it; only when every present generation is unusable does the
// last failure surface (ErrNoSnapshot when none is present at all).
func (d *Dir) LoadNewest() (*Snapshot, error) {
	gens, err := d.Generations()
	if err != nil {
		return nil, err
	}
	if len(gens) == 0 {
		return nil, ErrNoSnapshot
	}
	var lastErr error
	for i := len(gens) - 1; i >= 0; i-- {
		snap, err := d.Load(gens[i])
		if err == nil {
			return snap, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("snapshot: all %d generations unusable: %w", len(gens), lastErr)
}

// Prune removes committed generations beyond the newest keep, plus any
// leftover tmp intermediates from interrupted commits. Remove errors are
// returned but pruning continues — a file that cannot be reaped today
// will be retried after the next commit.
func (d *Dir) Prune(keep int) error {
	names, err := d.FS.ReadDir(d.Path)
	if err != nil {
		return nil
	}
	var gens []uint64
	var firstErr error
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") && strings.HasPrefix(n, "snap-") {
			if err := d.FS.Remove(filepath.Join(d.Path, n)); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		if g, ok := parseGen(n); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	if keep < 1 {
		keep = 1
	}
	for len(gens) > keep {
		if err := d.FS.Remove(filepath.Join(d.Path, fileName(gens[0]))); err != nil && firstErr == nil {
			firstErr = err
		}
		gens = gens[1:]
	}
	return firstErr
}
