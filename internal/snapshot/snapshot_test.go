package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

func commitN(t *testing.T, d *Dir, gen uint64, payloads ...[]byte) {
	t.Helper()
	err := d.Commit(gen, func(w *Writer) error {
		for i, p := range payloads {
			if err := w.Section(1, i, p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("commit gen %d: %v", gen, err)
	}
}

func TestRoundTrip(t *testing.T) {
	d := &Dir{FS: OS(), Path: t.TempDir()}
	payloads := [][]byte{[]byte("dictionary bytes"), {}, bytes.Repeat([]byte{0xAB}, 10_000)}
	commitN(t, d, 7, payloads...)

	snap, err := d.LoadNewest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 7 {
		t.Fatalf("generation = %d, want 7", snap.Generation)
	}
	if len(snap.Sections) != len(payloads) {
		t.Fatalf("%d sections, want %d", len(snap.Sections), len(payloads))
	}
	for i, s := range snap.Sections {
		if s.Kind != 1 || s.Shard != i || !bytes.Equal(s.Payload, payloads[i]) {
			t.Fatalf("section %d = kind %d shard %d %d bytes", i, s.Kind, s.Shard, len(s.Payload))
		}
	}

	gens, err := d.Generations()
	if err != nil || len(gens) != 1 || gens[0] != 7 {
		t.Fatalf("Generations = %v, %v", gens, err)
	}
}

func TestEmptyDirIsErrNoSnapshot(t *testing.T) {
	d := &Dir{FS: OS(), Path: filepath.Join(t.TempDir(), "never-created")}
	if _, err := d.LoadNewest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("LoadNewest on missing dir = %v, want ErrNoSnapshot", err)
	}
}

// TestDecodeRejection drives Decode over every byte-level failure shape
// and pins the torn/corrupt taxonomy.
func TestDecodeRejection(t *testing.T) {
	d := &Dir{FS: OS(), Path: t.TempDir()}
	commitN(t, d, 1, []byte("payload-one"), []byte("payload-two"))
	good, err := os.ReadFile(filepath.Join(d.Path, fileName(1)))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"truncated-header", func(b []byte) []byte { return b[:10] }, ErrTorn},
		{"truncated-mid-section", func(b []byte) []byte { return b[:len(b)/2] }, ErrTorn},
		{"missing-footer-crc", func(b []byte) []byte { return b[:len(b)-2] }, ErrTorn},
		{"empty", func(b []byte) []byte { return nil }, ErrTorn},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrCorrupt},
		{"flipped-payload-bit", func(b []byte) []byte { b[headerLen+frameLen+3] ^= 0x01; return b }, ErrCorrupt},
		{"flipped-tail-bit", func(b []byte) []byte { b[len(b)-1] ^= 0x80; return b }, ErrCorrupt},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xEE) }, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mutate(append([]byte(nil), good...))
			_, err := Decode(mut)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Decode = %v, want %v", err, tc.wantErr)
			}
		})
	}

	if _, err := Decode(good); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
}

// TestFallbackLadder corrupts the newest generations one by one and
// requires LoadNewest to step down to the newest survivor.
func TestFallbackLadder(t *testing.T) {
	d := &Dir{FS: OS(), Path: t.TempDir()}
	for gen := uint64(1); gen <= 3; gen++ {
		commitN(t, d, gen, []byte(fmt.Sprintf("generation-%d", gen)))
	}

	// All three intact: newest wins.
	snap, err := d.LoadNewest()
	if err != nil || snap.Generation != 3 {
		t.Fatalf("LoadNewest = gen %v, %v", snap, err)
	}

	// Tear generation 3 (truncate), rot generation 2 (bit flip): fall all
	// the way to generation 1.
	p3 := filepath.Join(d.Path, fileName(3))
	b, _ := os.ReadFile(p3)
	if err := os.WriteFile(p3, b[:len(b)-6], 0o644); err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(d.Path, fileName(2))
	b, _ = os.ReadFile(p2)
	b[headerLen+frameLen] ^= 0x40
	if err := os.WriteFile(p2, b, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err = d.LoadNewest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 1 || string(snap.Sections[0].Payload) != "generation-1" {
		t.Fatalf("fallback landed on gen %d", snap.Generation)
	}

	// Direct loads of the damaged generations report their typed errors.
	if _, err := d.Load(3); !errors.Is(err, ErrTorn) {
		t.Fatalf("Load(3) = %v, want ErrTorn", err)
	}
	if _, err := d.Load(2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load(2) = %v, want ErrCorrupt", err)
	}

	// Rot the last survivor too: the ladder runs out with the failure, not
	// with a silent partial result.
	p1 := filepath.Join(d.Path, fileName(1))
	b, _ = os.ReadFile(p1)
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(p1, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadNewest(); err == nil || errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("LoadNewest over all-bad generations = %v", err)
	}
}

// TestCommitCrashMatrix kills a commit at every VFS checkpoint and
// requires the directory to keep serving the previous generation — the
// format-level half of the kill matrix (the index-level half lives in the
// hope package's crash suite).
func TestCommitCrashMatrix(t *testing.T) {
	writePoints := []string{PointCreate, PointWrite, PointSync, PointClose, PointRename, PointDirSync}
	for _, point := range writePoints {
		for _, nth := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/hit-%d", point, nth), func(t *testing.T) {
				dir := t.TempDir()
				base := &Dir{FS: OS(), Path: dir}
				commitN(t, base, 1, []byte("stable-generation"))

				plan := fault.NewPlan(int64(nth), fault.Rule{Point: point, Shard: -1, Kind: fault.Error, Nth: nth})
				faulty := &Dir{FS: Faulty(OS(), plan), Path: dir}
				err := faulty.Commit(2, func(w *Writer) error {
					for i := 0; i < 4; i++ {
						if err := w.Section(1, i, bytes.Repeat([]byte{byte(i)}, 512)); err != nil {
							return err
						}
					}
					return nil
				})
				var inj *fault.Injected
				if plan.Fired(fault.Error) == 0 {
					t.Skipf("point %s has fewer than %d hits in one commit", point, nth)
				}
				if point != PointDirSync && point != PointRename {
					// Before the rename lands the commit must fail loudly.
					if !errors.As(err, &inj) {
						t.Fatalf("commit survived an injected %s: %v", point, err)
					}
				}

				snap, lerr := base.LoadNewest()
				if lerr != nil {
					t.Fatalf("LoadNewest after crashed commit: %v", lerr)
				}
				switch {
				case err == nil:
					if snap.Generation != 2 {
						t.Fatalf("commit reported success but generation %d serves", snap.Generation)
					}
				case snap.Generation == 2:
					// A fault after the rename (dirsync) may leave gen 2
					// durable anyway — acceptable, it must then validate,
					// which LoadNewest just proved.
					if point != PointDirSync {
						t.Fatalf("failed commit at %s left generation 2 visible", point)
					}
				default:
					if snap.Generation != 1 || string(snap.Sections[0].Payload) != "stable-generation" {
						t.Fatalf("fallback generation %d after crash at %s", snap.Generation, point)
					}
				}

				// The machinery recovers: a clean retry commits gen 3 and
				// pruning reaps the debris.
				commitN(t, base, 3, []byte("recovered"))
				if err := base.Prune(2); err != nil {
					t.Fatalf("prune: %v", err)
				}
				snap, lerr = base.LoadNewest()
				if lerr != nil || snap.Generation != 3 {
					t.Fatalf("after recovery: gen %v, %v", snap, lerr)
				}
				names, _ := OS().ReadDir(dir)
				for _, n := range names {
					if filepath.Ext(n) == ".tmp" {
						t.Fatalf("tmp debris %s survived prune", n)
					}
				}
			})
		}
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	d := &Dir{FS: OS(), Path: t.TempDir()}
	for gen := uint64(1); gen <= 5; gen++ {
		commitN(t, d, gen, []byte{byte(gen)})
	}
	if err := d.Prune(2); err != nil {
		t.Fatal(err)
	}
	gens, err := d.Generations()
	if err != nil || len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("Generations after Prune(2) = %v, %v", gens, err)
	}
}

// TestWriterTornByFault pins the faulty VFS's torn-write behavior: an
// injected write error leaves a half-written frame that Decode classifies
// as torn, not as silently valid.
func TestWriterTornByFault(t *testing.T) {
	dir := t.TempDir()
	plan := fault.NewPlan(1, fault.Rule{Op: "snap", Point: PointWrite, Shard: -1, Kind: fault.Error, Nth: 3})
	fs := Faulty(OS(), plan)
	f, err := fs.Create(filepath.Join(dir, "torn.hope"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	var werr error
	for i := 0; i < 4 && werr == nil; i++ {
		werr = w.Section(1, i, bytes.Repeat([]byte{0xCD}, 256))
	}
	if werr == nil {
		t.Fatal("injected write fault never surfaced")
	}
	f.Close()
	data, err := os.ReadFile(filepath.Join(dir, "torn.hope"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); !errors.Is(err, ErrTorn) {
		t.Fatalf("Decode of torn file = %v, want ErrTorn", err)
	}
}
