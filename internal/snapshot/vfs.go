package snapshot

import (
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fault"
)

// File is one open snapshot file: sequential reads or writes plus the
// durability barrier. The writer side of the commit protocol needs
// exactly Write/Sync/Close; the reader side Read/Close.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	Close() error
}

// VFS is the filesystem seam every snapshot I/O goes through. Production
// uses OS(); the crash suites wrap it with Faulty so a fault.Plan can
// fire an error, stall, or panic at any filesystem checkpoint — which is
// how "the process died between write and fsync" is simulated
// deterministically.
type VFS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making a completed rename
	// durable.
	SyncDir(dir string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
}

// OS returns the real-filesystem VFS.
func OS() VFS { return osVFS{} }

type osVFS struct{}

func (osVFS) Create(name string) (File, error) { return os.Create(name) }
func (osVFS) Open(name string) (File, error)   { return os.Open(name) }
func (osVFS) Rename(o, n string) error         { return os.Rename(o, n) }
func (osVFS) Remove(name string) error         { return os.Remove(name) }
func (osVFS) MkdirAll(dir string) error        { return os.MkdirAll(dir, 0o755) }

func (osVFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osVFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some filesystems; a sync error there
	// still fails the commit (the caller falls back to the previous
	// generation), never silently passes.
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// Checkpoint names the Faulty VFS fires, all in the "snap" namespace (see
// the fault package comment) with shard -1 — filesystem operations are
// not shard-scoped. A fired Error aborts the operation; snap:write
// additionally leaves a genuinely torn file behind (half the buffer is
// written before the error returns), so an injected crash produces the
// same on-disk shapes a real one would.
const (
	PointCreate  = "snap:create"
	PointOpen    = "snap:open"
	PointWrite   = "snap:write"
	PointRead    = "snap:read"
	PointSync    = "snap:sync"
	PointClose   = "snap:close"
	PointRename  = "snap:rename"
	PointRemove  = "snap:remove"
	PointDirSync = "snap:dirsync"
)

// Points lists every Faulty checkpoint — the kill matrix the crash suite
// iterates.
var Points = []string{
	PointCreate, PointOpen, PointWrite, PointRead, PointSync,
	PointClose, PointRename, PointRemove, PointDirSync,
}

// Faulty wraps fs so inj fires before every filesystem operation. A nil
// injector returns fs unchanged.
func Faulty(fs VFS, inj fault.Injector) VFS {
	if inj == nil {
		return fs
	}
	return &faultyVFS{fs: fs, inj: inj}
}

type faultyVFS struct {
	fs  VFS
	inj fault.Injector
}

func (f *faultyVFS) Create(name string) (File, error) {
	if err := f.inj.Fire(PointCreate, -1); err != nil {
		return nil, err
	}
	file, err := f.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: file, inj: f.inj}, nil
}

func (f *faultyVFS) Open(name string) (File, error) {
	if err := f.inj.Fire(PointOpen, -1); err != nil {
		return nil, err
	}
	file, err := f.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: file, inj: f.inj}, nil
}

func (f *faultyVFS) Rename(o, n string) error {
	if err := f.inj.Fire(PointRename, -1); err != nil {
		return err
	}
	return f.fs.Rename(o, n)
}

func (f *faultyVFS) Remove(name string) error {
	if err := f.inj.Fire(PointRemove, -1); err != nil {
		return err
	}
	return f.fs.Remove(name)
}

func (f *faultyVFS) ReadDir(dir string) ([]string, error) { return f.fs.ReadDir(dir) }

func (f *faultyVFS) SyncDir(dir string) error {
	if err := f.inj.Fire(PointDirSync, -1); err != nil {
		return err
	}
	return f.fs.SyncDir(dir)
}

func (f *faultyVFS) MkdirAll(dir string) error { return f.fs.MkdirAll(dir) }

type faultyFile struct {
	f   File
	inj fault.Injector
}

func (f *faultyFile) Write(p []byte) (int, error) {
	if err := f.inj.Fire(PointWrite, -1); err != nil {
		// A crash mid-write tears the file: commit half the buffer so the
		// restore path faces a genuinely truncated frame, not a clean
		// before-the-write state.
		n, werr := f.f.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return f.f.Write(p)
}

func (f *faultyFile) Read(p []byte) (int, error) {
	if err := f.inj.Fire(PointRead, -1); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *faultyFile) Sync() error {
	if err := f.inj.Fire(PointSync, -1); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *faultyFile) Close() error {
	if err := f.inj.Fire(PointClose, -1); err != nil {
		f.f.Close() // release the descriptor either way
		return err
	}
	return f.f.Close()
}
