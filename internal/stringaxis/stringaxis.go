// Package stringaxis implements interval arithmetic on the lexicographic
// string axis, the theoretical model of Section 3.1 of the HOPE paper
// (Zhang et al., SIGMOD 2020).
//
// All possible byte strings are laid out on a single axis in lexicographic
// order. A dictionary encoding scheme divides the axis into connected,
// disjoint intervals [b_i, b_{i+1}); every interval must have a non-empty
// common prefix (its dictionary symbol) so that each encoding step consumes
// at least one source byte. This package provides the primitives the symbol
// selectors need to construct such interval sets: successor computation,
// interval common prefixes, and gap splitting.
package stringaxis

import "bytes"

// Succ returns the smallest string that is strictly greater than every
// string having s as a prefix; that is, the exclusive upper bound of the
// interval of strings prefixed by s. It reports ok=false when no such
// string exists (s is empty or consists solely of 0xFF bytes), in which
// case the interval extends to the end of the axis.
//
// Examples: Succ("abc") = "abd", Succ("a\xff") = "b", Succ("\xff") = none.
func Succ(s []byte) (succ []byte, ok bool) {
	i := len(s) - 1
	for ; i >= 0; i-- {
		if s[i] != 0xFF {
			break
		}
	}
	if i < 0 {
		return nil, false
	}
	out := make([]byte, i+1)
	copy(out, s[:i+1])
	out[i]++
	return out, true
}

// Compare orders two interval boundaries where nil means "end of axis"
// (positive infinity). Non-nil boundaries compare lexicographically.
func Compare(a, b []byte) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return 1
	case b == nil:
		return -1
	}
	return bytes.Compare(a, b)
}

// HasPrefix reports whether s begins with prefix.
func HasPrefix(s, prefix []byte) bool {
	return len(s) >= len(prefix) && bytes.Equal(s[:len(prefix)], prefix)
}

// CommonPrefix returns the longest common prefix of a and b (a view into a).
func CommonPrefix(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// IntervalCommonPrefix returns the longest string p that is a prefix of
// every string in the half-open interval [lo, hi). hi == nil denotes the
// end of the axis. The result is the dictionary symbol of the interval in
// the string axis model; it may be empty.
//
// p qualifies iff [lo, hi) ⊆ [p, Succ(p)), i.e. p is a prefix of lo and
// hi <= Succ(p) (trivially true when Succ(p) does not exist).
func IntervalCommonPrefix(lo, hi []byte) []byte {
	for k := len(lo); k >= 0; k-- {
		p := lo[:k]
		if s, ok := Succ(p); !ok || Compare(hi, s) <= 0 {
			return p
		}
	}
	return nil // unreachable: k == 0 always qualifies or returns empty
}

// SplitGap subdivides the half-open interval [lo, hi) into one or more
// consecutive intervals, each of which has a non-empty common prefix, and
// returns the left boundaries of the pieces (the first is always lo).
// hi == nil denotes the end of the axis. lo must be non-empty and, when hi
// is non-nil, lo < hi must hold.
//
// The split points are the one-byte strings strictly between lo and hi:
// a gap that crosses a first-byte border cannot have a common prefix, while
// every piece confined to a single first byte has at least that byte as its
// prefix. This realizes the paper's "fill the gaps with new intervals" step
// for the n-gram and ALM schemes.
func SplitGap(lo, hi []byte) [][]byte {
	if len(IntervalCommonPrefix(lo, hi)) > 0 {
		return [][]byte{lo}
	}
	bounds := [][]byte{lo}
	first := int(lo[0]) + 1
	last := 0xFF // inclusive upper first-byte for split points
	if hi != nil {
		last = int(hi[0])
		// If hi == [hi[0]] exactly, the piece [[hi[0]], hi) would be
		// empty; stop the split points one byte earlier.
		if len(hi) == 1 {
			last--
		}
	}
	for c := first; c <= last; c++ {
		bounds = append(bounds, []byte{byte(c)})
	}
	return bounds
}

// MinByte is the smallest one-byte boundary; the axis region below it,
// ["", "\x00"), contains only the empty string, which encodes to the empty
// code and never performs a dictionary lookup.
var MinByte = []byte{0x00}
