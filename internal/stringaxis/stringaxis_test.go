package stringaxis

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSuccBasic(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"abc", "abd", true},
		{"a", "b", true},
		{"a\xff", "b", true},
		{"a\xff\xff", "b", true},
		{"\xfe\xff", "\xff", true},
		{"\x00", "\x01", true},
		{"", "", false},
		{"\xff", "", false},
		{"\xff\xff\xff", "", false},
		{"ab\x00", "ab\x01", true},
	}
	for _, c := range cases {
		got, ok := Succ([]byte(c.in))
		if ok != c.ok {
			t.Errorf("Succ(%q): ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && string(got) != c.want {
			t.Errorf("Succ(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSuccDoesNotAliasInput(t *testing.T) {
	in := []byte("abc")
	got, _ := Succ(in)
	got[0] = 'z'
	if string(in) != "abc" {
		t.Fatalf("Succ aliased its input: %q", in)
	}
}

// Succ(s) must be the least string greater than every extension of s.
func TestSuccIsLeastUpperBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		s := randKey(rng, 6)
		succ, ok := Succ(s)
		if !ok {
			return true
		}
		// succ is strictly greater than s and s+anything "small".
		ext := append(append([]byte{}, s...), randKey(rng, 3)...)
		if bytes.Compare(succ, s) <= 0 || bytes.Compare(succ, ext) <= 0 {
			return false
		}
		// Nothing with prefix s reaches succ: succ does not have prefix s
		// unless s is empty.
		return len(s) == 0 || !HasPrefix(succ, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	if Compare(nil, nil) != 0 {
		t.Error("nil vs nil")
	}
	if Compare([]byte("z"), nil) >= 0 {
		t.Error("string vs infinity")
	}
	if Compare(nil, []byte("z")) <= 0 {
		t.Error("infinity vs string")
	}
	if Compare([]byte("a"), []byte("b")) >= 0 {
		t.Error("a vs b")
	}
}

func TestCommonPrefix(t *testing.T) {
	if got := CommonPrefix([]byte("abcd"), []byte("abxy")); string(got) != "ab" {
		t.Errorf("got %q", got)
	}
	if got := CommonPrefix([]byte("ab"), []byte("abxy")); string(got) != "ab" {
		t.Errorf("got %q", got)
	}
	if got := CommonPrefix([]byte(""), []byte("abxy")); len(got) != 0 {
		t.Errorf("got %q", got)
	}
}

func TestIntervalCommonPrefixExamples(t *testing.T) {
	cases := []struct {
		lo, hi, want string
		hiInf        bool
	}{
		// Examples straight from the paper's Figure 4.
		{"inh", "ion", "i", false},   // 3-Grams gap [inh, ion) -> symbol "i"
		{"ion", "ioo", "ion", false}, // frequent gram interval
		{"sinh", "sion", "si", false},
		{"ing", "inh", "ing", false},
		// Whole first-byte region.
		{"a", "b", "a", false},
		// Crossing a first-byte border: no common prefix.
		{"az", "ba", "", false},
		// Last interval to infinity.
		{"\xff", "", "\xff", true},
		{"zz", "", "", true},
		// Everything in [ab\xff, ac) must continue with 0xff after "ab".
		{"ab\xff", "ac", "ab\xff", false},
		{"ab\xfe", "ac", "ab", false},
	}
	for _, c := range cases {
		var hi []byte
		if !c.hiInf {
			hi = []byte(c.hi)
		}
		got := IntervalCommonPrefix([]byte(c.lo), hi)
		if string(got) != c.want {
			t.Errorf("IntervalCommonPrefix(%q, %q) = %q, want %q", c.lo, c.hi, got, c.want)
		}
	}
}

// The returned prefix must (a) prefix lo and (b) cover the interval:
// random strings in [lo, hi) all carry the prefix.
func TestIntervalCommonPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		lo := randKey(rng, 5)
		hi := randKey(rng, 5)
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		if bytes.Equal(lo, hi) {
			continue
		}
		p := IntervalCommonPrefix(lo, hi)
		if !HasPrefix(lo, p) {
			t.Fatalf("prefix %q does not prefix lo %q", p, lo)
		}
		// Sample strings in [lo, hi): lo itself and lo + random extension
		// clamped below hi.
		for j := 0; j < 8; j++ {
			s := append(append([]byte{}, lo...), randKey(rng, 3)...)
			if bytes.Compare(s, hi) >= 0 {
				continue
			}
			if !HasPrefix(s, p) {
				t.Fatalf("string %q in [%q,%q) lacks prefix %q", s, lo, hi, p)
			}
		}
	}
}

// Maximality: extending the prefix by one byte must stop covering [lo, hi).
func TestIntervalCommonPrefixMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 3000; i++ {
		lo := randKey(rng, 4)
		hi := randKey(rng, 4)
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		if bytes.Equal(lo, hi) {
			continue
		}
		p := IntervalCommonPrefix(lo, hi)
		if len(p) == len(lo) {
			continue // cannot extend further
		}
		longer := lo[:len(p)+1]
		if s, ok := Succ(longer); ok && Compare(hi, s) <= 0 {
			t.Fatalf("prefix %q not maximal for [%q,%q): %q also covers", p, lo, hi, longer)
		}
	}
}

func TestSplitGapSingleRegion(t *testing.T) {
	got := SplitGap([]byte("inh"), []byte("ion"))
	if len(got) != 1 || string(got[0]) != "inh" {
		t.Fatalf("SplitGap(inh,ion) = %q, want [inh]", got)
	}
}

func TestSplitGapCrossingBorder(t *testing.T) {
	got := SplitGap([]byte("ax"), []byte("cm"))
	want := []string{"ax", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %q, want %q", got, want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("piece %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSplitGapToInfinity(t *testing.T) {
	got := SplitGap([]byte{0xFD, 'q'}, nil)
	want := []string{"\xfdq", "\xfe", "\xff"}
	if len(got) != len(want) {
		t.Fatalf("got %d pieces, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("piece %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSplitGapHiIsSingleByte(t *testing.T) {
	// [a?, b): the split point "b" would create an empty piece [b, b).
	got := SplitGap([]byte("ax"), []byte("b"))
	if len(got) != 1 || string(got[0]) != "ax" {
		t.Fatalf("got %q, want [ax]", got)
	}
	// ["ax", "c"): split point "b" is valid, "c" is not.
	got = SplitGap([]byte("ax"), []byte("c"))
	if len(got) != 2 || string(got[1]) != "b" {
		t.Fatalf("got %q, want [ax b]", got)
	}
}

// Every piece produced by SplitGap must have a non-empty common prefix —
// the property that guarantees encoding always consumes a byte.
func TestSplitGapPiecesHaveNonEmptySymbols(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 4000; i++ {
		lo := randNonEmptyKey(rng, 4)
		var hi []byte
		if rng.Intn(4) != 0 {
			hi = randNonEmptyKey(rng, 4)
			if bytes.Compare(lo, hi) >= 0 {
				continue
			}
		}
		bounds := SplitGap(lo, hi)
		if !bytes.Equal(bounds[0], lo) {
			t.Fatalf("first bound %q != lo %q", bounds[0], lo)
		}
		for j, b := range bounds {
			var pieceHi []byte
			if j+1 < len(bounds) {
				pieceHi = bounds[j+1]
				if bytes.Compare(b, pieceHi) >= 0 {
					t.Fatalf("bounds not increasing: %q >= %q", b, pieceHi)
				}
			} else {
				pieceHi = hi
			}
			if p := IntervalCommonPrefix(b, pieceHi); len(p) == 0 {
				t.Fatalf("piece [%q,%q) of gap [%q,%q) has empty symbol", b, pieceHi, lo, hi)
			}
		}
	}
}

func randKey(rng *rand.Rand, maxLen int) []byte {
	n := rng.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		// Small alphabet plus extremes to exercise 0x00/0xFF carry paths.
		switch rng.Intn(6) {
		case 0:
			b[i] = 0x00
		case 1:
			b[i] = 0xFF
		default:
			b[i] = byte('a' + rng.Intn(4))
		}
	}
	return b
}

func randNonEmptyKey(rng *rand.Rand, maxLen int) []byte {
	for {
		if k := randKey(rng, maxLen); len(k) > 0 {
			return k
		}
	}
}
