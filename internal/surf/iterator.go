package surf

// lowerBound finds the first leaf, in trie order, whose original key could
// be >= query, and returns the stored (truncated) prefix of that leaf and
// its label position. The search is deliberately conservative: a leaf
// whose prefix is a prefix of the query is ambiguous (the original key may
// be smaller or larger), and it is included rather than skipped, so a
// stored key >= query can never be overshot — the property the range
// filter's one-sided guarantee rests on.
func (f *Filter) lowerBound(query []byte) (prefix []byte, leafPos int, ok bool) {
	if f.numKeys == 0 {
		return nil, 0, false
	}
	// path holds the label position taken at each depth.
	var path []int
	node := 0
	d := 0
	for {
		lo, hi := f.nodeRange(node)
		if d == len(query) {
			// Every key below this node extends the query: all >= it.
			return f.descendLeftmost(path, lo)
		}
		want := uint16(query[d]) + 1
		pos, exact := f.findLabel(lo, hi, want)
		if exact {
			if !f.hasChild.Get(pos) {
				// Ambiguous leaf: prefix equals query[:d+1].
				path = append(path, pos)
				return f.pathPrefix(path), pos, true
			}
			path = append(path, pos)
			node = f.childNode(pos)
			d++
			continue
		}
		if pos < hi {
			// Smallest label greater than the query byte: everything in
			// its subtree exceeds the query.
			return f.descendLeftmost(path, pos)
		}
		// No label >= query byte here: backtrack to the next sibling edge.
		for len(path) > 0 {
			p := path[len(path)-1]
			path = path[:len(path)-1]
			if p+1 < len(f.labels) && !f.louds.Get(p+1) {
				return f.descendLeftmost(path, p+1)
			}
		}
		return nil, 0, false
	}
}

// descendLeftmost extends path from label position pos, always taking the
// first edge, until a leaf edge is reached.
func (f *Filter) descendLeftmost(path []int, pos int) ([]byte, int, bool) {
	for {
		path = append(path, pos)
		if !f.hasChild.Get(pos) {
			return f.pathPrefix(path), pos, true
		}
		node := f.childNode(pos)
		pos, _ = f.louds.Select1(node + 1)
	}
}

// pathPrefix reconstructs the stored key prefix along a label path
// (terminator labels contribute no byte).
func (f *Filter) pathPrefix(path []int) []byte {
	out := make([]byte, 0, len(path))
	for _, pos := range path {
		if l := f.labels[pos]; l != terminator {
			out = append(out, byte(l-1))
		}
	}
	return out
}

// Iterator walks the filter's stored (truncated) key prefixes in order —
// the primitive an LSM-tree uses to merge filter answers across runs. Use
// Seek to position at the first prefix whose original key could be >= the
// target, then Next to advance.
type Iterator struct {
	f     *Filter
	path  []int
	valid bool
}

// NewIterator returns an unpositioned iterator; call Seek first.
func (f *Filter) NewIterator() *Iterator { return &Iterator{f: f} }

// Valid reports whether the iterator is positioned on a leaf.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the stored prefix at the current position (a truncation of
// some original key; valid until the next call).
func (it *Iterator) Key() []byte { return it.f.pathPrefix(it.path) }

// LeafPos returns the current leaf's label position (for suffix access).
func (it *Iterator) LeafPos() int { return it.path[len(it.path)-1] }

// Seek positions the iterator at the first stored prefix that could
// belong to a key >= target (conservative, like lowerBound).
func (it *Iterator) Seek(target []byte) bool {
	if it.f.numKeys == 0 {
		it.valid = false
		return false
	}
	// Reuse lowerBound's walk, retaining the path.
	it.path = it.path[:0]
	it.valid = it.seekPath(target)
	return it.valid
}

// seekPath mirrors lowerBound but records the path into it.path.
func (it *Iterator) seekPath(query []byte) bool {
	f := it.f
	node := 0
	d := 0
	for {
		lo, hi := f.nodeRange(node)
		if d == len(query) {
			return it.descendLeftmost(lo)
		}
		want := uint16(query[d]) + 1
		pos, exact := f.findLabel(lo, hi, want)
		if exact {
			if !f.hasChild.Get(pos) {
				it.path = append(it.path, pos)
				return true
			}
			it.path = append(it.path, pos)
			node = f.childNode(pos)
			d++
			continue
		}
		if pos < hi {
			return it.descendLeftmost(pos)
		}
		for len(it.path) > 0 {
			p := it.path[len(it.path)-1]
			it.path = it.path[:len(it.path)-1]
			if p+1 < len(f.labels) && !f.louds.Get(p+1) {
				return it.descendLeftmost(p + 1)
			}
		}
		return false
	}
}

func (it *Iterator) descendLeftmost(pos int) bool {
	f := it.f
	for {
		it.path = append(it.path, pos)
		if !f.hasChild.Get(pos) {
			return true
		}
		node := f.childNode(pos)
		pos, _ = f.louds.Select1(node + 1)
	}
}

// Next advances to the following stored prefix in key order.
func (it *Iterator) Next() bool {
	if !it.valid {
		return false
	}
	f := it.f
	for len(it.path) > 0 {
		p := it.path[len(it.path)-1]
		it.path = it.path[:len(it.path)-1]
		if p+1 < len(f.labels) && !f.louds.Get(p+1) {
			it.valid = it.descendLeftmost(p + 1)
			return it.valid
		}
	}
	it.valid = false
	return false
}
