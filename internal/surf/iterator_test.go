package surf

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func TestIteratorFullWalkIsSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := randKeys(rng, 3000, 10, 5)
	f := Build(keys, Base, 0)
	it := f.NewIterator()
	if !it.Seek(nil) {
		t.Fatal("seek to start failed")
	}
	count := 0
	var prev []byte
	for it.Valid() {
		k := append([]byte(nil), it.Key()...)
		// Prefixes are sorted (ties impossible: distinct leaves have
		// distinct paths, and trie order is strictly increasing).
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("iterator not strictly increasing: %q then %q", prev, k)
		}
		// Every emitted prefix must actually prefix a stored key.
		found := false
		for _, orig := range keys {
			if bytes.HasPrefix(orig, k) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("prefix %q matches no stored key", k)
		}
		prev = k
		count++
		it.Next()
	}
	if count != len(keys) {
		t.Fatalf("iterated %d leaves, want %d", count, len(keys))
	}
}

func TestIteratorSeekMatchesLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randKeys(rng, 2000, 8, 4)
	f := Build(keys, Base, 0)
	it := f.NewIterator()
	for trial := 0; trial < 3000; trial++ {
		q := randKeys(rng, 1, 10, 5)[0]
		wantPrefix, wantPos, wantOK := f.lowerBound(q)
		gotOK := it.Seek(q)
		if gotOK != wantOK {
			t.Fatalf("Seek(%q)=%v, lowerBound says %v", q, gotOK, wantOK)
		}
		if gotOK {
			if !bytes.Equal(it.Key(), wantPrefix) || it.LeafPos() != wantPos {
				t.Fatalf("Seek(%q) at (%q,%d), lowerBound at (%q,%d)",
					q, it.Key(), it.LeafPos(), wantPrefix, wantPos)
			}
		}
	}
}

func TestIteratorSeekThenScanCoversTail(t *testing.T) {
	// Seek to a stored key and iterate to the end: the count must equal
	// the number of stored keys at or after it.
	rng := rand.New(rand.NewSource(3))
	keys := randKeys(rng, 1500, 8, 4)
	f := Build(keys, Base, 0)
	asStr := make([]string, len(keys))
	for i, k := range keys {
		asStr[i] = string(k)
	}
	sort.Strings(asStr)
	it := f.NewIterator()
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(asStr))
		it.Seek([]byte(asStr[i]))
		n := 0
		for it.Valid() {
			n++
			it.Next()
		}
		// Conservative seek can land at most a few ambiguous leaves early,
		// never late (no overshoot).
		if n < len(asStr)-i {
			t.Fatalf("seek to %q overshot: saw %d, want >= %d", asStr[i], n, len(asStr)-i)
		}
	}
}

func TestIteratorEmptyFilter(t *testing.T) {
	f := Build(nil, Base, 0)
	it := f.NewIterator()
	if it.Seek([]byte("x")) || it.Valid() || it.Next() {
		t.Fatal("empty filter iterator must stay invalid")
	}
}
