package surf

import "bytes"

// MayIntersect reports whether any stored key may lie in [lo, hi) — or
// [lo, hi] when hiIncl — with a nil hi leaving the range unbounded above.
// Like MayContainRange it is one-sided: it never answers false when a
// stored key is in range. It is the adapter hope.Index's SuRF backend
// drives to short-circuit encoded range scans before touching the backing
// run.
func (f *Filter) MayIntersect(lo, hi []byte, hiIncl bool) bool {
	if f.numKeys == 0 {
		return false
	}
	if hi != nil {
		if c := bytes.Compare(lo, hi); c > 0 || (c == 0 && !hiIncl) {
			return false
		}
	}
	prefix, leafPos, ok := f.lowerBound(lo)
	if !ok {
		return false
	}
	if hi == nil {
		return true
	}
	// As in MayContainRange: cand is a string known to be <= the first
	// stored key K that could be >= lo. If cand already clears hi, then
	// K does too and the range is definitely empty; otherwise err toward
	// true (false positives are allowed).
	cand := prefix
	if f.mode == Real && f.suffixLen >= 8 {
		suffix := f.getSuffix(f.leafIndex(leafPos))
		for i := uint(0); i+8 <= f.suffixLen; i += 8 {
			b := byte(suffix >> (f.suffixLen - 8 - i))
			if b == 0 {
				break
			}
			cand = append(cand, b)
		}
	}
	if hiIncl {
		return bytes.Compare(cand, hi) <= 0
	}
	return bytes.Compare(cand, hi) < 0
}
