// Package surf implements the Succinct Range Filter (Zhang et al.,
// SIGMOD 2018), the first search tree the HOPE paper evaluates. SuRF is a
// trie truncated at each key's minimal distinguishing prefix and encoded
// succinctly, answering approximate membership queries over points and
// ranges with no false negatives.
//
// This implementation uses the LOUDS-Sparse encoding throughout (the
// published SuRF mixes a dense level-1 encoding for speed; see DESIGN.md,
// Substitutions): per trie edge one label, one has-child bit and one
// LOUDS bit marking the first edge of each node, with rank/select over the
// bit vectors providing pointer-free navigation. Three suffix modes are
// supported: Base (no suffixes), Hash (k hash bits per key) and Real (the
// k key bits following the truncation point), trading false-positive rate
// for space exactly as in the original.
package surf

import (
	"sort"

	"repro/internal/bitops"
)

// SuffixMode selects what SuRF stores per leaf to reject false positives.
type SuffixMode int

const (
	// Base stores nothing: smallest, highest false-positive rate.
	Base SuffixMode = iota
	// Hash stores k bits of a key hash: rejects point-query collisions.
	Hash
	// Real stores the k key bits after the truncation point: also prunes
	// range false positives, the paper's "SuRF-Real8" configuration.
	Real
)

// terminator is the reserved label for keys ending at an inner node; it
// sorts before every byte label (labels store byte+1).
const terminator uint16 = 0

// Filter is an immutable SuRF built from sorted unique keys.
type Filter struct {
	labels     []uint16
	hasChild   *bitops.BitVector
	louds      *bitops.BitVector
	mode       SuffixMode
	suffixLen  uint // bits per leaf
	suffixBits []uint64
	numKeys    int
	sumDepth   int // leaf-edge depths, for AvgHeight
}

// Build constructs the filter. keys must be sorted and unique; suffixLen
// is the per-key suffix bit count for Hash and Real modes (the paper's
// SuRF-Real8 uses 8).
func Build(keys [][]byte, mode SuffixMode, suffixLen uint) *Filter {
	f := &Filter{mode: mode, suffixLen: suffixLen, numKeys: len(keys)}
	if mode == Base {
		f.suffixLen = 0
	}
	var labels []uint16
	var hasChild, louds bitops.Builder
	var suffixes []suffixRec

	type span struct{ lo, hi, depth int }
	queue := []span{}
	if len(keys) > 0 {
		queue = append(queue, span{0, len(keys), 0})
	}
	for len(queue) > 0 {
		sp := queue[0]
		queue = queue[1:]
		first := true
		i := sp.lo
		// A key ending exactly at this node becomes a terminator leaf.
		if len(keys[i]) == sp.depth {
			labels = append(labels, terminator)
			hasChild.PushBit(false)
			louds.PushBit(first)
			first = false
			suffixes = append(suffixes, suffixRec{keyIdx: i, sufStart: sp.depth})
			f.sumDepth += sp.depth
			i++
		}
		for i < sp.hi {
			c := keys[i][sp.depth]
			j := i + 1
			for j < sp.hi && keys[j][sp.depth] == c {
				j++
			}
			labels = append(labels, uint16(c)+1)
			louds.PushBit(first)
			first = false
			if j-i == 1 {
				// Unique from here: truncate and store a leaf.
				hasChild.PushBit(false)
				suffixes = append(suffixes, suffixRec{keyIdx: i, sufStart: sp.depth + 1})
				f.sumDepth += sp.depth + 1
			} else {
				hasChild.PushBit(true)
				queue = append(queue, span{i, j, sp.depth + 1})
			}
			i = j
		}
	}
	f.labels = labels
	f.hasChild = hasChild.Build()
	f.louds = louds.Build()
	f.packSuffixes(keys, suffixes)
	return f
}

type suffixRec struct {
	keyIdx   int
	sufStart int
}

// packSuffixes stores per-leaf suffix bits contiguously.
func (f *Filter) packSuffixes(keys [][]byte, recs []suffixRec) {
	if f.suffixLen == 0 {
		return
	}
	total := uint(len(recs)) * f.suffixLen
	f.suffixBits = make([]uint64, (total+63)/64)
	for leafIdx, r := range recs {
		var v uint64
		switch f.mode {
		case Hash:
			v = fnv1a(keys[r.keyIdx]) & mask(f.suffixLen)
		case Real:
			v = keyBitsFrom(keys[r.keyIdx], r.sufStart, f.suffixLen)
		}
		f.putSuffix(leafIdx, v)
	}
}

func mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << n) - 1
}

// keyBitsFrom extracts n bits of key starting at byte offset start,
// zero-padded past the end.
func keyBitsFrom(key []byte, start int, n uint) uint64 {
	var v uint64
	for i := uint(0); i < n; i++ {
		bit := uint(0)
		byteIdx := start + int(i/8)
		if byteIdx < len(key) {
			bit = uint(key[byteIdx]>>(7-i%8)) & 1
		}
		v = v<<1 | uint64(bit)
	}
	return v
}

func (f *Filter) putSuffix(leafIdx int, v uint64) {
	off := uint(leafIdx) * f.suffixLen
	for i := uint(0); i < f.suffixLen; i++ {
		bit := (v >> (f.suffixLen - 1 - i)) & 1
		pos := off + i
		if bit != 0 {
			f.suffixBits[pos/64] |= 1 << (pos % 64)
		}
	}
}

func (f *Filter) getSuffix(leafIdx int) uint64 {
	var v uint64
	off := uint(leafIdx) * f.suffixLen
	for i := uint(0); i < f.suffixLen; i++ {
		pos := off + i
		bit := (f.suffixBits[pos/64] >> (pos % 64)) & 1
		v = v<<1 | bit
	}
	return v
}

func fnv1a(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// nodeRange returns the label positions [lo, hi) of a node.
func (f *Filter) nodeRange(nodeNum int) (int, int) {
	lo, _ := f.louds.Select1(nodeNum + 1)
	hi, ok := f.louds.Select1(nodeNum + 2)
	if !ok {
		hi = len(f.labels)
	}
	return lo, hi
}

// findLabel locates label l within [lo, hi); labels in a node are sorted.
func (f *Filter) findLabel(lo, hi int, l uint16) (int, bool) {
	i := lo + sort.Search(hi-lo, func(i int) bool { return f.labels[lo+i] >= l })
	return i, i < hi && f.labels[i] == l
}

// childNode returns the node reached through the has-child edge at pos.
func (f *Filter) childNode(pos int) int { return f.hasChild.Rank1(pos) }

// leafIndex returns the leaf number of the non-has-child edge at pos.
func (f *Filter) leafIndex(pos int) int { return f.hasChild.Rank0(pos) - 1 }

// checkLeaf applies the suffix filter for a point query.
func (f *Filter) checkLeaf(pos int, key []byte, sufStart int) bool {
	switch f.mode {
	case Hash:
		return f.getSuffix(f.leafIndex(pos)) == fnv1a(key)&mask(f.suffixLen)
	case Real:
		return f.getSuffix(f.leafIndex(pos)) == keyBitsFrom(key, sufStart, f.suffixLen)
	}
	return true
}

// MayContain reports whether key may be in the set (no false negatives).
func (f *Filter) MayContain(key []byte) bool {
	if f.numKeys == 0 {
		return false
	}
	node := 0
	for d := 0; ; d++ {
		lo, hi := f.nodeRange(node)
		if d == len(key) {
			// Only an exact terminator completes the key here.
			pos, ok := f.findLabel(lo, hi, terminator)
			return ok && !f.hasChild.Get(pos) && f.checkLeaf(pos, key, d)
		}
		pos, ok := f.findLabel(lo, hi, uint16(key[d])+1)
		if !ok {
			return false
		}
		if !f.hasChild.Get(pos) {
			return f.checkLeaf(pos, key, d+1)
		}
		node = f.childNode(pos)
	}
}

// NumKeys returns the number of keys the filter was built from.
func (f *Filter) NumKeys() int { return f.numKeys }

// AvgHeight returns the average trie depth of the leaves, the paper's
// Figure 10 "trie height" metric.
func (f *Filter) AvgHeight() float64 {
	if f.numKeys == 0 {
		return 0
	}
	return float64(f.sumDepth) / float64(f.numKeys)
}

// MemoryUsage returns the modeled footprint in bytes: 2 bytes per label,
// the two bit vectors with their rank indexes, and the suffix bits.
func (f *Filter) MemoryUsage() int {
	m := len(f.labels)*2 + f.hasChild.MemoryUsage() + f.louds.MemoryUsage()
	return m + len(f.suffixBits)*8
}

// FalsePositiveRate measures the point-query FPR against a set of keys
// known to be absent.
func (f *Filter) FalsePositiveRate(absent [][]byte) float64 {
	if len(absent) == 0 {
		return 0
	}
	fp := 0
	for _, k := range absent {
		if f.MayContain(k) {
			fp++
		}
	}
	return float64(fp) / float64(len(absent))
}

// MayContainRange reports whether any key in [lo, hi] may be present.
// One-sided: never false when a stored key is in range. The stored prefix
// found by lowerBound truncates some original key K with prefix <= K; if a
// candidate built from the prefix (extended by Real-suffix bytes up to the
// first ambiguous zero) already clears hi then K > hi and every later
// stored key is larger still. MayIntersect generalizes this test to
// half-open and unbounded ranges.
func (f *Filter) MayContainRange(lo, hi []byte) bool {
	return f.MayIntersect(lo, hi, true)
}
