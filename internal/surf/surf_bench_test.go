package surf

import (
	"testing"

	"repro/internal/datagen"
)

func benchFilter(b *testing.B, mode SuffixMode, bits uint) (*Filter, [][]byte) {
	b.Helper()
	keys := sortedUnique(datagen.Generate(datagen.Email, 100000, 1))
	return Build(keys, mode, bits), keys
}

func BenchmarkBuild(b *testing.B) {
	keys := sortedUnique(datagen.Generate(datagen.Email, 100000, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(keys, Real, 8)
	}
}

func BenchmarkMayContain(b *testing.B) {
	f, keys := benchFilter(b, Real, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(keys[i%len(keys)])
	}
}

func BenchmarkMayContainRange(b *testing.B) {
	f, keys := benchFilter(b, Real, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		hi := append([]byte(nil), k...)
		hi[len(hi)-1]++
		f.MayContainRange(k, hi)
	}
}
