package surf

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/datagen"
)

func sortedUnique(keys [][]byte) [][]byte {
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || !bytes.Equal(keys[i-1], k) {
			out = append(out, k)
		}
	}
	return out
}

func randKeys(rng *rand.Rand, n, maxLen, alphabet int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		k := make([]byte, 1+rng.Intn(maxLen))
		for j := range k {
			k[j] = byte('a' + rng.Intn(alphabet))
		}
		out = append(out, k)
	}
	return sortedUnique(out)
}

func modes() []SuffixMode { return []SuffixMode{Base, Hash, Real} }

// The cardinal property: no false negatives on point queries.
func TestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := randKeys(rng, 5000, 12, 6)
	for _, mode := range modes() {
		f := Build(keys, mode, 8)
		for _, k := range keys {
			if !f.MayContain(k) {
				t.Fatalf("mode %v: false negative for %q", mode, k)
			}
		}
	}
}

func TestPrefixKeysAndTerminators(t *testing.T) {
	keys := [][]byte{[]byte(""), []byte("a"), []byte("ab"), []byte("abc"), []byte("abd"), []byte("b")}
	for _, mode := range modes() {
		f := Build(keys, mode, 8)
		for _, k := range keys {
			if !f.MayContain(k) {
				t.Fatalf("mode %v: false negative for prefix key %q", mode, k)
			}
		}
		if f.NumKeys() != len(keys) {
			t.Fatal("key count")
		}
	}
}

// Truncation means some absent keys hit; but absent keys that diverge from
// every stored key within the stored trie must miss.
func TestDivergentAbsentKeysMiss(t *testing.T) {
	keys := [][]byte{[]byte("apple"), []byte("apply"), []byte("banana")}
	f := Build(keys, Base, 0)
	for _, k := range []string{"cherry", "ap", "", "b", "apric"} {
		// "apric": diverges from appl* at depth 2 ('r' vs 'p').
		if k == "b" || k == "ap" {
			continue // truncated internal paths; behavior not asserted
		}
		if f.MayContain([]byte(k)) {
			t.Fatalf("divergent absent key %q reported present", k)
		}
	}
}

func TestSuffixModesReduceFalsePositives(t *testing.T) {
	// Paper Figure 11 direction: Real suffixes cut the FPR dramatically.
	keys := datagen.Generate(datagen.Email, 8000, 1)
	keys = sortedUnique(keys)
	absent := datagen.Generate(datagen.Email, 4000, 999)
	present := map[string]bool{}
	for _, k := range keys {
		present[string(k)] = true
	}
	var probes [][]byte
	for _, k := range absent {
		if !present[string(k)] {
			probes = append(probes, k)
		}
	}
	base := Build(keys, Base, 0)
	real8 := Build(keys, Real, 8)
	hash8 := Build(keys, Hash, 8)
	fprBase := base.FalsePositiveRate(probes)
	fprReal := real8.FalsePositiveRate(probes)
	fprHash := hash8.FalsePositiveRate(probes)
	if fprReal >= fprBase && fprBase > 0 {
		t.Fatalf("Real8 FPR %.4f not below Base FPR %.4f", fprReal, fprBase)
	}
	if fprHash >= fprBase && fprBase > 0 {
		t.Fatalf("Hash8 FPR %.4f not below Base FPR %.4f", fprHash, fprBase)
	}
	// No false negatives regardless.
	for _, k := range keys[:1000] {
		if !real8.MayContain(k) || !hash8.MayContain(k) {
			t.Fatal("suffix mode introduced false negative")
		}
	}
}

// Range queries: one-sided — any range containing a stored key answers true.
func TestRangeNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randKeys(rng, 3000, 10, 5)
	for _, mode := range modes() {
		f := Build(keys, mode, 8)
		for trial := 0; trial < 3000; trial++ {
			k := keys[rng.Intn(len(keys))]
			// Build a random range straddling k.
			lo := append([]byte(nil), k...)
			hi := append([]byte(nil), k...)
			switch rng.Intn(3) {
			case 0: // exact point range
			case 1: // widen left
				if len(lo) > 0 {
					lo = lo[:rng.Intn(len(lo))]
				}
			default: // widen right
				hi = append(hi, 0xFF)
			}
			if !f.MayContainRange(lo, hi) {
				t.Fatalf("mode %v: false negative for range [%q, %q] containing %q",
					mode, lo, hi, k)
			}
		}
	}
}

func TestRangeRejectsDistantRanges(t *testing.T) {
	keys := [][]byte{[]byte("carrot"), []byte("cabbage"), []byte("celery")}
	f := Build(keys, Real, 8)
	if f.MayContainRange([]byte("x"), []byte("zzz")) {
		t.Fatal("range far beyond all keys reported true")
	}
	if f.MayContainRange([]byte("a"), []byte("b")) {
		t.Fatal("range far below all keys reported true")
	}
	if f.MayContainRange([]byte("z"), []byte("a")) {
		t.Fatal("inverted range reported true")
	}
}

// The paper's SuRF range-query shape: [key, key-with-last-byte+1].
func TestPaperStyleClosedRanges(t *testing.T) {
	keys := datagen.Generate(datagen.Email, 3000, 3)
	keys = sortedUnique(keys)
	f := Build(keys, Real, 8)
	for _, k := range keys[:500] {
		hi := append([]byte(nil), k...)
		hi[len(hi)-1]++
		if !f.MayContainRange(k, hi) {
			t.Fatalf("closed range over stored key %q reported false", k)
		}
	}
}

func TestLowerBoundAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := randKeys(rng, 2000, 8, 4)
	f := Build(keys, Base, 0)
	asStrings := make([]string, len(keys))
	for i, k := range keys {
		asStrings[i] = string(k)
	}
	for trial := 0; trial < 5000; trial++ {
		q := randKeys(rng, 1, 10, 5)[0]
		prefix, _, ok := f.lowerBound(q)
		i := sort.SearchStrings(asStrings, string(q))
		if i == len(asStrings) {
			// No stored key >= q. The conservative search may still land
			// on an ambiguous earlier leaf; it must then be a prefix of q.
			if ok && !bytes.HasPrefix(q, prefix) {
				t.Fatalf("lowerBound(%q) returned %q with no stored key >= query", q, prefix)
			}
			continue
		}
		if !ok {
			t.Fatalf("lowerBound(%q) missed; reference found %q", q, asStrings[i])
		}
		// No overshoot: prefix must not exceed the reference lower bound.
		if bytes.Compare(prefix, []byte(asStrings[i])) > 0 {
			t.Fatalf("lowerBound(%q) = %q overshoots reference %q", q, prefix, asStrings[i])
		}
	}
}

func TestAvgHeightAndMemory(t *testing.T) {
	keys := datagen.Generate(datagen.Email, 5000, 4)
	keys = sortedUnique(keys)
	base := Build(keys, Base, 0)
	real8 := Build(keys, Real, 8)
	if h := base.AvgHeight(); h < 2 || h > 30 {
		t.Fatalf("implausible avg height %v", h)
	}
	if base.MemoryUsage() <= 0 {
		t.Fatal("no memory reported")
	}
	if real8.MemoryUsage() <= base.MemoryUsage() {
		t.Fatal("real suffixes must cost memory")
	}
	// Succinctness: bits per key should be far below raw key storage.
	bitsPerKey := float64(base.MemoryUsage()*8) / float64(len(keys))
	rawBits := datagen.AvgLen(keys) * 8
	if bitsPerKey >= rawBits {
		t.Fatalf("SuRF uses %.1f bits/key, raw keys are %.1f", bitsPerKey, rawBits)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	f := Build(nil, Base, 0)
	if f.MayContain([]byte("x")) || f.MayContainRange([]byte("a"), []byte("z")) {
		t.Fatal("empty filter claims membership")
	}
	if f.AvgHeight() != 0 {
		t.Fatal("empty height")
	}
	one := Build([][]byte{[]byte("only")}, Real, 8)
	if !one.MayContain([]byte("only")) {
		t.Fatal("single key lost")
	}
	if !one.MayContainRange([]byte("a"), []byte("z")) {
		t.Fatal("single key range missed")
	}
}

func TestHashModeExactness(t *testing.T) {
	// Hash suffixes reject almost all absent keys sharing stored paths.
	keys := [][]byte{[]byte("shared-prefix-aaaa"), []byte("shared-prefix-bbbb")}
	f := Build(keys, Hash, 16)
	if !f.MayContain(keys[0]) || !f.MayContain(keys[1]) {
		t.Fatal("false negative")
	}
	fp := 0
	for c := byte('c'); c <= 'z'; c++ {
		probe := append([]byte("shared-prefix-"), c, c, c, c)
		if f.MayContain(probe) {
			fp++
		}
	}
	if fp > 2 {
		t.Fatalf("hash suffix rejected too little: %d/24 false positives", fp)
	}
}
