package symbolselect

import (
	"fmt"
	"sort"

	"repro/internal/stringaxis"
)

// DefaultMaxPatternLen caps ALM candidate pattern length. The original ALM
// counts substrings of every length, which is quadratic in key length; the
// cap bounds that cost and is far above any pattern that survives the
// frequency threshold in practice (see DESIGN.md, Substitutions).
const DefaultMaxPatternLen = 64

// ALM implements Antoshenkov's variable-length-interval selector (paper
// Section 3.3): collect the frequency of every substring up to
// maxPatternLen bytes, keep patterns whose length x frequency exceeds a
// threshold W, blend prefix-violating patterns, and fill the gaps. W is
// binary-searched so the dictionary stays within limit entries, as the
// paper prescribes ("one must binary search on W's to obtain a desired
// dictionary size").
func ALM(samples [][]byte, limit, maxPatternLen int, weightByLength bool) ([]Interval, error) {
	return almSelect(samples, limit, maxPatternLen, weightByLength, countAllSubstrings)
}

// ALMImproved is the paper's improved variant. Its published dictionary
// segments are identical to ALM's (paper Figures 4c and 4f); the
// improvements are suffix-trie-based statistics collection (an
// implementation optimization this package subsumes in the shared counting
// path) and, crucially, Hu-Tucker codes instead of fixed-length codes —
// which is the Code Assigner's concern (core.Build selects it by scheme).
func ALMImproved(samples [][]byte, limit, maxPatternLen int, weightByLength bool) ([]Interval, error) {
	return almSelect(samples, limit, maxPatternLen, weightByLength, countAllSubstrings)
}

func almSelect(samples [][]byte, limit, maxPatternLen int,
	weightByLength bool, count func([][]byte, int) map[string]int64) ([]Interval, error) {
	if limit < 300 {
		return nil, fmt.Errorf("symbolselect: ALM dictionary limit %d too small", limit)
	}
	if maxPatternLen <= 0 {
		maxPatternLen = DefaultMaxPatternLen
	}
	freqs := count(samples, maxPatternLen)
	type pat struct {
		s       string
		freq    int64
		product int64 // len(s) * freq, the ALM selection metric
	}
	pats := make([]pat, 0, len(freqs))
	for s, f := range freqs {
		// Minimum support: a multi-byte pattern seen once is an artifact
		// of the sample, not a reusable symbol — admitting such patterns
		// lets small samples flood the dictionary with one-off suffixes
		// and starves the common intervals of short codes.
		if len(s) > 1 && f < 2 {
			continue
		}
		pats = append(pats, pat{s, f, int64(len(s)) * f})
	}
	sort.Slice(pats, func(i, j int) bool { return pats[i].s < pats[j].s })

	// Distinct product values, descending: the binary-search space for W.
	prodSet := make(map[int64]bool, len(pats))
	for _, p := range pats {
		prodSet[p.product] = true
	}
	products := make([]int64, 0, len(prodSet))
	for v := range prodSet {
		products = append(products, v)
	}
	sort.Slice(products, func(i, j int) bool { return products[i] > products[j] })

	build := func(w int64) []Interval {
		var symbols [][]byte
		var counts []int64
		for _, p := range pats {
			if p.product >= w {
				symbols = append(symbols, []byte(p.s))
				counts = append(counts, p.freq)
			}
		}
		symbols = blend(symbols, counts)
		return buildFromSymbols(symbols)
	}

	// Largest selection (smallest W) whose interval count fits the limit.
	lo, hi := 0, len(products)-1 // index into descending products
	best := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		if len(build(products[mid])) <= limit {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	var intervals []Interval
	if best < 0 {
		// Even the highest threshold overflows (dense tiny alphabets):
		// fall back to no selected patterns, i.e. byte-gap coverage only.
		intervals = buildFromSymbols(nil)
	} else {
		intervals = build(products[best])
		// Guard against local non-monotonicity of the entry count.
		for len(intervals) > limit && best > 0 {
			best--
			intervals = build(products[best])
		}
	}
	testEncode(intervals, samples, weightByLength)
	return intervals, nil
}

// countAllSubstrings counts every substring of length 1..maxLen.
func countAllSubstrings(samples [][]byte, maxLen int) map[string]int64 {
	counts := make(map[string]int64)
	for _, key := range samples {
		for i := 0; i < len(key); i++ {
			end := len(key)
			if i+maxLen < end {
				end = i + maxLen
			}
			for j := i + 1; j <= end; j++ {
				counts[string(key[i:j])]++
			}
		}
	}
	return counts
}

// blend enforces the prefix property on the selected patterns: when a
// pattern is a prefix of other selected patterns, its occurrence count is
// redistributed to its longest extension and the pattern itself is dropped
// (paper Section 4.2, "blending"). Input symbols must be sorted; the
// result is sorted and prefix-free.
func blend(symbols [][]byte, counts []int64) [][]byte {
	n := len(symbols)
	drop := make([]bool, n)
	for i := 0; i < n; i++ {
		// Extensions of symbols[i] are contiguous after it.
		longest := -1
		for j := i + 1; j < n && stringaxis.HasPrefix(symbols[j], symbols[i]); j++ {
			if longest == -1 || len(symbols[j]) > len(symbols[longest]) {
				longest = j
			}
		}
		if longest >= 0 {
			counts[longest] += counts[i]
			drop[i] = true
		}
	}
	out := symbols[:0]
	for i, s := range symbols {
		if !drop[i] {
			out = append(out, s)
		}
	}
	return out
}
