package symbolselect

// SingleChar divides the axis into the 256 fixed-length intervals
// [c, c+1) with single-byte symbols (paper Figure 4a). The access weights
// are the zeroth-order byte frequencies of the samples, which is exactly
// what a test encoding would measure since every step consumes one byte.
func SingleChar(samples [][]byte) []Interval {
	var counts [256]int64
	for _, key := range samples {
		for _, b := range key {
			counts[b]++
		}
	}
	intervals := make([]Interval, 256)
	for c := 0; c < 256; c++ {
		b := []byte{byte(c)}
		intervals[c] = Interval{Boundary: b, Symbol: b, Weight: float64(counts[c])}
	}
	return intervals
}

// DoubleChar divides the axis into fixed-length two-byte intervals plus
// one terminator interval ∅ per first byte (paper Figure 4b): the
// terminator entry [c1, c1\x00) captures source strings that end after c1
// and fills the interval gaps, making the dictionary complete. With
// alphabet A (256 in production; tests shrink it) the layout has A*(A+1)
// intervals in axis order: [c1], [c1 0], [c1 1], ...
//
// Weights come from simulating the encoding walk: two bytes per step, one
// terminator hit when a single byte remains.
func DoubleChar(samples [][]byte, alphabet int) []Interval {
	counts := make([]int64, alphabet*(alphabet+1))
	for _, key := range samples {
		for pos := 0; pos < len(key); {
			c1 := int(key[pos])
			if pos+1 == len(key) {
				counts[c1*(alphabet+1)]++
				pos++
				continue
			}
			counts[c1*(alphabet+1)+1+int(key[pos+1])]++
			pos += 2
		}
	}
	intervals := make([]Interval, 0, len(counts))
	idx := 0
	for c1 := 0; c1 < alphabet; c1++ {
		b := []byte{byte(c1)}
		intervals = append(intervals, Interval{Boundary: b, Symbol: b, Weight: float64(counts[idx])})
		idx++
		for c2 := 0; c2 < alphabet; c2++ {
			b2 := []byte{byte(c1), byte(c2)}
			intervals = append(intervals, Interval{Boundary: b2, Symbol: b2, Weight: float64(counts[idx])})
			idx++
		}
	}
	return intervals
}
