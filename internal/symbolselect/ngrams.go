package symbolselect

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// NGrams implements the 3-Grams and 4-Grams selectors (paper Figures 4d,
// 4e): count every n-byte substring of the samples, keep the most frequent
// patterns (about half the dictionary budget, per the paper), and fill the
// interval gaps between them. Weights come from a test encoding, scaled by
// symbol length (VIVC schemes).
func NGrams(samples [][]byte, n, limit int, weightByLength bool) ([]Interval, error) {
	if n < 2 || n > 4 {
		return nil, fmt.Errorf("symbolselect: unsupported gram size %d", n)
	}
	if limit < 600 {
		return nil, fmt.Errorf("symbolselect: %d-gram dictionary limit %d too small (need room for the 256 single-byte gap intervals)", n, limit)
	}
	counts := countGrams(samples, n)
	type gramFreq struct {
		gram uint32
		freq int64
	}
	freqs := make([]gramFreq, 0, len(counts))
	for g, f := range counts {
		freqs = append(freqs, gramFreq{g, f})
	}
	// Most frequent first; ties by gram value for determinism.
	sort.Slice(freqs, func(i, j int) bool {
		if freqs[i].freq != freqs[j].freq {
			return freqs[i].freq > freqs[j].freq
		}
		return freqs[i].gram < freqs[j].gram
	})
	take := limit / 2
	if take > len(freqs) {
		take = len(freqs)
	}
	var intervals []Interval
	for {
		symbols := make([][]byte, take)
		for i := 0; i < take; i++ {
			symbols[i] = unpackGram(freqs[i].gram, n)
		}
		symbols = sortUniqueSymbols(symbols)
		intervals = buildFromSymbols(symbols)
		if len(intervals) <= limit || take == 0 {
			break
		}
		// Gap entries pushed the total over budget: drop the least
		// frequent grams (each removal deletes at least one interval).
		drop := len(intervals) - limit
		if drop > take {
			drop = take
		}
		take -= drop
	}
	testEncode(intervals, samples, weightByLength)
	return intervals, nil
}

// countGrams counts all n-byte substrings, packed big-endian into uint32
// so gram order matches lexicographic order.
func countGrams(samples [][]byte, n int) map[uint32]int64 {
	counts := make(map[uint32]int64)
	for _, key := range samples {
		for i := 0; i+n <= len(key); i++ {
			counts[packGram(key[i:i+n], n)]++
		}
	}
	return counts
}

func packGram(b []byte, n int) uint32 {
	var buf [4]byte
	copy(buf[4-n:], b[:n])
	return binary.BigEndian.Uint32(buf[:])
}

func unpackGram(g uint32, n int) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], g)
	out := make([]byte, n)
	copy(out, buf[4-n:])
	return out
}
