// Package symbolselect implements HOPE's Symbol Selector module (paper
// Section 4.2): for each compression scheme it counts the relevant string
// patterns in the sampled keys, divides the string axis into intervals,
// and measures each interval's access probability with a test encoding of
// the samples. The output feeds the Code Assigner and the Dictionary.
package symbolselect

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/stringaxis"
)

// Interval is one dictionary interval produced by a selector: its left
// boundary on the string axis, its symbol (the common prefix of all
// strings in the interval, always non-empty), and the code-assignment
// weight measured by test-encoding the samples.
type Interval struct {
	Boundary []byte
	Symbol   []byte
	Weight   float64
}

// buildFromSymbols turns a sorted, prefix-free, non-empty symbol list into
// a complete interval set: one interval [s, Succ(s)) per symbol plus gap
// intervals covering the rest of the axis, split so every gap piece keeps
// a non-empty symbol (paper Section 3.3, "fill the gaps with new
// intervals"). The axis is covered from "\x00"; the region below holds
// only the empty string, which encodes to the empty code.
func buildFromSymbols(symbols [][]byte) []Interval {
	var out []Interval
	addGap := func(lo, hi []byte) {
		if stringaxis.Compare(lo, hi) >= 0 {
			return
		}
		bounds := stringaxis.SplitGap(lo, hi)
		for i, b := range bounds {
			var pieceHi []byte
			if i+1 < len(bounds) {
				pieceHi = bounds[i+1]
			} else {
				pieceHi = hi
			}
			out = append(out, Interval{
				Boundary: b,
				Symbol:   stringaxis.IntervalCommonPrefix(b, pieceHi),
			})
		}
	}
	prev := stringaxis.MinByte
	for _, s := range symbols {
		addGap(prev, s)
		out = append(out, Interval{Boundary: s, Symbol: s})
		next, ok := stringaxis.Succ(s)
		if !ok {
			return out // symbol runs to the end of the axis
		}
		prev = next
	}
	addGap(prev, nil)
	return out
}

// Validate checks the structural invariants every selector must satisfy:
// boundaries strictly increasing starting at "\x00", symbols non-empty
// prefixes of their boundaries. It is exercised directly by tests and
// defensively by the core builder.
func Validate(intervals []Interval) error {
	if len(intervals) == 0 {
		return fmt.Errorf("symbolselect: no intervals")
	}
	if !bytes.Equal(intervals[0].Boundary, stringaxis.MinByte) {
		return fmt.Errorf("symbolselect: axis not covered from \\x00 (first boundary %q)",
			intervals[0].Boundary)
	}
	for i, iv := range intervals {
		if len(iv.Symbol) == 0 {
			return fmt.Errorf("symbolselect: interval %d (%q) has empty symbol", i, iv.Boundary)
		}
		if !stringaxis.HasPrefix(iv.Boundary, iv.Symbol) {
			return fmt.Errorf("symbolselect: interval %d symbol %q does not prefix boundary %q",
				i, iv.Symbol, iv.Boundary)
		}
		if i > 0 && bytes.Compare(intervals[i-1].Boundary, iv.Boundary) >= 0 {
			return fmt.Errorf("symbolselect: boundaries not increasing at %d", i)
		}
		var hi []byte
		if i+1 < len(intervals) {
			hi = intervals[i+1].Boundary
		}
		// The symbol must cover the interval: every string in [lo, hi)
		// carries it.
		if got := stringaxis.IntervalCommonPrefix(iv.Boundary, hi); !stringaxis.HasPrefix(got, iv.Symbol) {
			return fmt.Errorf("symbolselect: interval %d symbol %q is not a common prefix of [%q,%q)",
				i, iv.Symbol, iv.Boundary, hi)
		}
	}
	return nil
}

// testEncode simulates encoding every sample against the interval set and
// sets each interval's Weight to its access count, optionally multiplied
// by its symbol length. The paper weights probabilities by symbol length
// for the variable-length-interval schemes so that the Code Assigner
// optimizes bits per consumed byte rather than bits per step.
func testEncode(intervals []Interval, samples [][]byte, weightByLength bool) {
	boundaries := make([][]byte, len(intervals))
	symLens := make([]int, len(intervals))
	for i, iv := range intervals {
		boundaries[i] = iv.Boundary
		symLens[i] = len(iv.Symbol)
	}
	hits := make([]int64, len(intervals))
	for _, key := range samples {
		for pos := 0; pos < len(key); {
			idx := floorIndex(boundaries, key[pos:])
			hits[idx]++
			pos += symLens[idx]
		}
	}
	for i := range intervals {
		w := float64(hits[i])
		if weightByLength {
			w *= float64(symLens[i])
		}
		intervals[i].Weight = w
	}
}

// floorIndex returns the index of the greatest boundary <= src.
func floorIndex(boundaries [][]byte, src []byte) int {
	i := sort.Search(len(boundaries), func(i int) bool {
		return bytes.Compare(boundaries[i], src) > 0
	})
	if i == 0 {
		panic("symbolselect: source below first boundary")
	}
	return i - 1
}

// sortUniqueSymbols sorts byte-string symbols and removes duplicates.
func sortUniqueSymbols(symbols [][]byte) [][]byte {
	sort.Slice(symbols, func(i, j int) bool { return bytes.Compare(symbols[i], symbols[j]) < 0 })
	out := symbols[:0]
	for i, s := range symbols {
		if i == 0 || !bytes.Equal(symbols[i-1], s) {
			out = append(out, s)
		}
	}
	return out
}
