package symbolselect

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func keysOf(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestSingleChar(t *testing.T) {
	samples := keysOf("aab", "ba")
	ivs := SingleChar(samples)
	if len(ivs) != 256 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	if err := Validate(ivs); err != nil {
		t.Fatal(err)
	}
	if ivs['a'].Weight != 3 || ivs['b'].Weight != 2 || ivs['c'].Weight != 0 {
		t.Fatalf("weights a=%v b=%v c=%v", ivs['a'].Weight, ivs['b'].Weight, ivs['c'].Weight)
	}
}

func TestDoubleCharLayoutAndWeights(t *testing.T) {
	const alpha = 4
	samples := [][]byte{{1, 2}, {1}, {1, 2, 3}}
	ivs := DoubleChar(samples, alpha)
	if len(ivs) != alpha*(alpha+1) {
		t.Fatalf("got %d intervals", len(ivs))
	}
	// A reduced alphabet is a test-scale device: the interval set is only
	// valid for keys within the alphabet, so the axis-wide Validate is
	// exercised on the full alphabet (TestDoubleCharFullAlphabetLayout).
	for i := 1; i < len(ivs); i++ {
		if bytes.Compare(ivs[i-1].Boundary, ivs[i].Boundary) >= 0 {
			t.Fatal("boundaries not increasing")
		}
	}
	// "12" pair twice ({1,2} and the first step of {1,2,3}); terminator
	// for 1 once ({1}); terminator for 3 once (last byte of {1,2,3}).
	get := func(b []byte) float64 {
		for _, iv := range ivs {
			if bytes.Equal(iv.Boundary, b) {
				return iv.Weight
			}
		}
		t.Fatalf("boundary %v missing", b)
		return 0
	}
	if w := get([]byte{1, 2}); w != 2 {
		t.Fatalf("pair(1,2) weight %v", w)
	}
	if w := get([]byte{1}); w != 1 {
		t.Fatalf("term(1) weight %v", w)
	}
	if w := get([]byte{3}); w != 1 {
		t.Fatalf("term(3) weight %v", w)
	}
}

func TestDoubleCharFullAlphabetLayout(t *testing.T) {
	ivs := DoubleChar(keysOf("hello"), 256)
	if len(ivs) != 256*257 {
		t.Fatalf("got %d intervals, want 65792", len(ivs))
	}
	if err := Validate(ivs); err != nil {
		t.Fatal(err)
	}
}

func TestBuildFromSymbolsPaperExample(t *testing.T) {
	// Figure 4d: symbols "ing" and "ion" produce the gap [inh, ion) with
	// symbol "i" and the interval [ion, ioo) with symbol "ion".
	ivs := buildFromSymbols([][]byte{[]byte("ing"), []byte("ion")})
	if err := Validate(ivs); err != nil {
		t.Fatal(err)
	}
	var seen []string
	for _, iv := range ivs {
		seen = append(seen, string(iv.Boundary)+"="+string(iv.Symbol))
	}
	joined := strings.Join(seen, ",")
	for _, want := range []string{"ing=ing", "inh=i", "ion=ion"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing interval %q in %v", want, seen)
		}
	}
}

func TestBuildFromSymbolsEmptyGivesByteCoverage(t *testing.T) {
	ivs := buildFromSymbols(nil)
	if len(ivs) != 256 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	if err := Validate(ivs); err != nil {
		t.Fatal(err)
	}
}

func TestBuildFromSymbolsSymbolAtAxisEnd(t *testing.T) {
	// A symbol of 0xFF bytes has no successor: the interval runs to the
	// axis end and no trailing gap is created.
	ivs := buildFromSymbols([][]byte{{0xFF, 0xFF}})
	if err := Validate(ivs); err != nil {
		t.Fatal(err)
	}
	last := ivs[len(ivs)-1]
	if !bytes.Equal(last.Boundary, []byte{0xFF, 0xFF}) {
		t.Fatalf("last boundary %q", last.Boundary)
	}
}

func TestNGramsSelectsFrequentPatterns(t *testing.T) {
	var samples [][]byte
	for i := 0; i < 200; i++ {
		samples = append(samples, []byte("compression"), []byte("completion"))
	}
	ivs, err := NGrams(samples, 3, 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ivs); err != nil {
		t.Fatal(err)
	}
	if len(ivs) > 1024 {
		t.Fatalf("limit exceeded: %d", len(ivs))
	}
	found := false
	for _, iv := range ivs {
		if string(iv.Symbol) == "com" {
			found = true
		}
	}
	if !found {
		t.Fatal(`frequent gram "com" not selected`)
	}
}

func TestNGramsRespectsLimitOnDenseInput(t *testing.T) {
	// Uniform random keys create the maximum number of gap intervals.
	rng := rand.New(rand.NewSource(1))
	var samples [][]byte
	for i := 0; i < 800; i++ {
		k := make([]byte, 12)
		for j := range k {
			k[j] = byte(rng.Intn(256))
		}
		samples = append(samples, k)
	}
	for _, limit := range []int{600, 1024, 4096} {
		ivs, err := NGrams(samples, 3, limit, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(ivs) > limit {
			t.Fatalf("limit %d exceeded: %d intervals", limit, len(ivs))
		}
		if err := Validate(ivs); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNGrams4(t *testing.T) {
	var samples [][]byte
	for i := 0; i < 100; i++ {
		samples = append(samples, []byte("sigmod2020"), []byte("sigmod2019"))
	}
	ivs, err := NGrams(samples, 4, 2048, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ivs); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, iv := range ivs {
		if string(iv.Symbol) == "sigm" {
			found = true
		}
	}
	if !found {
		t.Fatal(`frequent 4-gram "sigm" not selected`)
	}
}

func TestNGramsRejectsBadParams(t *testing.T) {
	if _, err := NGrams(nil, 5, 1024, true); err == nil {
		t.Fatal("gram size 5 accepted")
	}
	if _, err := NGrams(nil, 3, 100, true); err == nil {
		t.Fatal("tiny limit accepted")
	}
}

func TestNGramsWeightsReflectTestEncoding(t *testing.T) {
	var samples [][]byte
	for i := 0; i < 50; i++ {
		samples = append(samples, []byte("aaaaaa"))
	}
	ivs, err := NGrams(samples, 3, 700, false)
	if err != nil {
		t.Fatal(err)
	}
	var aaa float64
	var total float64
	for _, iv := range ivs {
		total += iv.Weight
		if string(iv.Symbol) == "aaa" {
			aaa = iv.Weight
		}
	}
	// Every step of every sample hits "aaa": 2 steps x 50 samples.
	if aaa != 100 {
		t.Fatalf(`weight of "aaa" = %v, want 100`, aaa)
	}
	if total != 100 {
		t.Fatalf("total weight %v, want 100", total)
	}
}

func TestBlend(t *testing.T) {
	symbols := [][]byte{[]byte("si"), []byte("sig"), []byte("sigmod"), []byte("x")}
	counts := []int64{10, 5, 2, 7}
	out := blend(symbols, counts)
	if len(out) != 2 || string(out[0]) != "sigmod" || string(out[1]) != "x" {
		t.Fatalf("blend result %q", out)
	}
	// Both prefix counts redistributed to "sigmod".
	if counts[2] != 17 {
		t.Fatalf("sigmod count %d, want 17", counts[2])
	}
	if counts[3] != 7 {
		t.Fatalf("x count %d", counts[3])
	}
}

func TestBlendNoViolation(t *testing.T) {
	symbols := [][]byte{[]byte("abc"), []byte("abd"), []byte("b")}
	counts := []int64{1, 2, 3}
	out := blend(symbols, counts)
	if len(out) != 3 {
		t.Fatalf("blend dropped non-violating symbols: %q", out)
	}
}

func TestALMSelectsLongFrequentPattern(t *testing.T) {
	var samples [][]byte
	for i := 0; i < 300; i++ {
		samples = append(samples, []byte("@gmail.com"), []byte("@yahoo.com"))
	}
	ivs, err := ALM(samples, 1024, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ivs); err != nil {
		t.Fatal(err)
	}
	if len(ivs) > 1024 {
		t.Fatalf("limit exceeded: %d", len(ivs))
	}
	// A long shared pattern must survive selection.
	found := false
	for _, iv := range ivs {
		if strings.Contains(string(iv.Symbol), "mail.com") {
			found = true
		}
	}
	if !found {
		var syms []string
		for _, iv := range ivs {
			if len(iv.Symbol) > 3 {
				syms = append(syms, string(iv.Symbol))
			}
		}
		t.Fatalf("no long pattern selected; long symbols: %v", syms)
	}
}

func TestALMPrefixFreeSymbols(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var samples [][]byte
	for i := 0; i < 400; i++ {
		k := []byte("prefix-" + string(rune('a'+rng.Intn(4))) + "-suffix")
		samples = append(samples, k)
	}
	ivs, err := ALM(samples, 600, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Selected symbols (those equal to their boundary and longer than one
	// byte) must be prefix-free: check all symbol pairs.
	var syms []string
	for _, iv := range ivs {
		if bytes.Equal(iv.Boundary, iv.Symbol) && len(iv.Symbol) > 1 {
			syms = append(syms, string(iv.Symbol))
		}
	}
	sort.Strings(syms)
	for i := 1; i < len(syms); i++ {
		if strings.HasPrefix(syms[i], syms[i-1]) {
			t.Fatalf("symbols not prefix-free: %q prefixes %q", syms[i-1], syms[i])
		}
	}
}

func TestALMMinimumSupport(t *testing.T) {
	// Multi-byte patterns need frequency >= 2 before entering the ALM
	// candidate list: a corpus of unique long strings must not flood the
	// dictionary with one-off suffix patterns. The dictionary of such a
	// corpus should therefore stay small (shared fragments plus byte-gap
	// coverage), far below the requested limit.
	rng := rand.New(rand.NewSource(77))
	var samples [][]byte
	for i := 0; i < 200; i++ {
		samples = append(samples, []byte(fmt.Sprintf("unique-%016x-%016x", rng.Uint64(), rng.Uint64())))
	}
	ivs, err := ALMImproved(samples, 4096, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ivs); err != nil {
		t.Fatal(err)
	}
	if len(ivs) > 4096 {
		t.Fatalf("limit exceeded: %d", len(ivs))
	}
	// No selected symbol may be one of the corpus's unique long suffixes:
	// with minimum support 2, nothing longer than the shared fragments
	// ("unique-", hex digit runs) qualifies.
	for _, iv := range ivs {
		if len(iv.Symbol) > 10 {
			t.Fatalf("improbably long symbol %q from a support-starved corpus", iv.Symbol)
		}
	}
}

func TestCountAllSubstrings(t *testing.T) {
	counts := countAllSubstrings(keysOf("aba"), 64)
	want := map[string]int64{"a": 2, "b": 1, "ab": 1, "ba": 1, "aba": 1}
	if len(counts) != len(want) {
		t.Fatalf("got %v", counts)
	}
	for k, v := range want {
		if counts[k] != v {
			t.Fatalf("counts[%q]=%d, want %d", k, counts[k], v)
		}
	}
	// Length cap honored.
	capped := countAllSubstrings(keysOf("abcdef"), 2)
	for k := range capped {
		if len(k) > 2 {
			t.Fatalf("pattern %q exceeds cap", k)
		}
	}
}

func TestALMImprovedValidAndWithinLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	words := []string{"data", "base", "system", "index", "tree", "key"}
	var samples [][]byte
	for i := 0; i < 500; i++ {
		samples = append(samples,
			[]byte(words[rng.Intn(len(words))]+words[rng.Intn(len(words))]))
	}
	ivs, err := ALMImproved(samples, 512, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ivs); err != nil {
		t.Fatal(err)
	}
	if len(ivs) > 512 {
		t.Fatalf("limit exceeded: %d", len(ivs))
	}
}

func TestALMRejectsTinyLimit(t *testing.T) {
	if _, err := ALM(nil, 10, 0, false); err == nil {
		t.Fatal("tiny limit accepted")
	}
}

// Test-encoding weights: weighting by symbol length must scale multi-byte
// interval weights.
func TestWeightByLength(t *testing.T) {
	var samples [][]byte
	for i := 0; i < 50; i++ {
		samples = append(samples, []byte("ababab"))
	}
	unweighted, err := NGrams(samples, 3, 700, false)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := NGrams(samples, 3, 700, true)
	if err != nil {
		t.Fatal(err)
	}
	find := func(ivs []Interval, sym string) float64 {
		for _, iv := range ivs {
			if string(iv.Symbol) == sym {
				return iv.Weight
			}
		}
		return -1
	}
	u := find(unweighted, "aba")
	w := find(weighted, "aba")
	if u <= 0 || w != 3*u {
		t.Fatalf(`"aba": unweighted %v, weighted %v (want 3x)`, u, w)
	}
}

// Any interval set a selector emits must let encoding progress on
// arbitrary inputs: floor lookup succeeds and symbols are non-empty.
func TestSelectorsCoverArbitraryInput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var samples [][]byte
	for i := 0; i < 200; i++ {
		samples = append(samples, []byte("sample-key-"+string(rune('0'+rng.Intn(10)))))
	}
	sets := map[string][]Interval{}
	sets["single"] = SingleChar(samples)
	sets["double"] = DoubleChar(samples, 256)
	if ivs, err := NGrams(samples, 3, 1024, true); err == nil {
		sets["3grams"] = ivs
	} else {
		t.Fatal(err)
	}
	if ivs, err := ALMImproved(samples, 512, 0, true); err == nil {
		sets["almimp"] = ivs
	} else {
		t.Fatal(err)
	}
	for name, ivs := range sets {
		boundaries := make([][]byte, len(ivs))
		for i := range ivs {
			boundaries[i] = ivs[i].Boundary
		}
		for trial := 0; trial < 2000; trial++ {
			n := 1 + rng.Intn(10)
			src := make([]byte, n)
			for i := range src {
				src[i] = byte(rng.Intn(256))
			}
			pos := 0
			for steps := 0; pos < len(src); steps++ {
				idx := floorIndex(boundaries, src[pos:])
				symLen := len(ivs[idx].Symbol)
				if symLen == 0 {
					t.Fatalf("%s: empty symbol hit for %q", name, src)
				}
				if !bytes.HasPrefix(src[pos:], ivs[idx].Symbol) {
					t.Fatalf("%s: interval %q does not prefix remaining %q",
						name, ivs[idx].Symbol, src[pos:])
				}
				pos += symLen
				if steps > len(src) {
					t.Fatalf("%s: encoding did not progress on %q", name, src)
				}
			}
		}
	}
}
