package telemetry

import (
	"sync"
	"time"
)

func nowNs() int64 { return time.Now().UnixNano() }

// Event is one structured lifecycle occurrence: a rebuild trigger, a
// per-shard copy or flip, a cutover, an abort. Events are typed by a
// short stable string (the schema the tests and /debug/events consumers
// key on) and carry the shard they concern (-1 when whole-index), an
// optional duration, and a free-form detail.
type Event struct {
	Seq    uint64 `json:"seq"`     // monotonically increasing, gap-free per trace
	TimeNs int64  `json:"time_ns"` // wall clock, UnixNano
	Type   string `json:"type"`
	Shard  int    `json:"shard"`            // -1 when the event is not shard-scoped
	DurNs  int64  `json:"dur_ns,omitempty"` // phase duration when the event closes one
	Detail string `json:"detail,omitempty"` // reason / error / measurements
}

// EventTrace is a fixed-capacity ring buffer of Events: emitters pay one
// mutex acquisition and no allocation (the ring is preallocated), readers
// snapshot the surviving window in order. Lifecycle event rates are
// rebuild-scale — a handful per migration — so a mutex here costs nothing
// while keeping Snapshot trivially consistent.
type EventTrace struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever emitted; ring index = seq % cap
}

// DefaultTraceCap holds roughly a dozen full rebuild traces of a
// many-shard index before the window slides.
const DefaultTraceCap = 512

// NewEventTrace returns a trace retaining the most recent capacity
// events (<= 0 selects DefaultTraceCap).
func NewEventTrace(capacity int) *EventTrace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &EventTrace{ring: make([]Event, capacity)}
}

// Emit appends one event, stamping its sequence number and time.
func (t *EventTrace) Emit(typ string, shard int, durNs int64, detail string) {
	t.mu.Lock()
	seq := t.next
	t.next++
	t.ring[seq%uint64(len(t.ring))] = Event{
		Seq: seq, TimeNs: nowNs(), Type: typ, Shard: shard, DurNs: durNs, Detail: detail,
	}
	t.mu.Unlock()
}

// Len reports how many events the trace currently retains.
func (t *EventTrace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.ring)) {
		return int(t.next)
	}
	return len(t.ring)
}

// Snapshot copies the retained events oldest-first. Sequence numbers are
// gap-free within the returned slice; the first event's Seq reveals how
// many older events the ring has already dropped.
func (t *EventTrace) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	capacity := uint64(len(t.ring))
	start := uint64(0)
	if n > capacity {
		start = n - capacity
	}
	out := make([]Event, 0, n-start)
	for seq := start; seq < n; seq++ {
		out = append(out, t.ring[seq%capacity])
	}
	return out
}
