package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestEventTraceOrderAndWrap(t *testing.T) {
	tr := NewEventTrace(4)
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh trace holds %d events", len(got))
	}
	for i := 0; i < 10; i++ {
		tr.Emit("tick", i, int64(i), "")
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", tr.Len())
	}
	events := tr.Snapshot()
	if len(events) != 4 {
		t.Fatalf("snapshot holds %d events, want 4", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(6 + i) // events 0..5 slid out of the window
		if e.Seq != wantSeq || e.Shard != int(wantSeq) {
			t.Fatalf("event %d = %+v, want seq %d", i, e, wantSeq)
		}
	}
}

func TestEventTraceConcurrentEmit(t *testing.T) {
	tr := NewEventTrace(128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Emit("tick", -1, 0, "")
			}
		}()
	}
	wg.Wait()
	events := tr.Snapshot()
	if len(events) != 128 {
		t.Fatalf("retained %d, want 128", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("sequence gap at %d: %d -> %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

// TestHandlerEndpoints drives every debug endpoint the Handler mounts.
func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(0, 7)
	reg.MustRegister("handler_test_total", &c)
	tr := NewEventTrace(8)
	tr.Emit("trigger", -1, 0, "explicit")
	tr.Emit("cutover", -1, 123, "gen=1")

	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	metrics, err := Scrape(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if metrics["handler_test_total"] != 7 {
		t.Fatalf("/metrics missing counter: %v", metrics)
	}

	resp, err := http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(events) != 2 || events[0].Type != "trigger" || events[1].Type != "cutover" {
		t.Fatalf("/debug/events = %+v", events)
	}
	if events[1].DurNs != 123 || events[1].Detail != "gen=1" {
		t.Fatalf("event fields lost: %+v", events[1])
	}

	vars, err := ScrapeRaw(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vars, "handler_test_total") {
		t.Fatalf("/debug/vars missing registry snapshot: %s", vars)
	}

	prof, err := ScrapeRaw(srv.URL + "/debug/pprof/cmdline")
	if err != nil || prof == "" {
		t.Fatalf("pprof cmdline: %q err %v", prof, err)
	}

	// Nil trace: /debug/events serves an empty array, not a null or 500.
	srv2 := httptest.NewServer(Handler(reg, nil))
	defer srv2.Close()
	body, err := ScrapeRaw(srv2.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("nil-trace events = %q, want []", body)
	}
}
