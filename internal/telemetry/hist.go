// Package telemetry is the dependency-free metrics core shared by every
// layer of the repository: striped atomic counters, gauges, an HDR-style
// log-linear latency histogram (single-writer Hist, promoted from
// internal/bench, and its lock-free multi-writer twin AtomicHist), sampled
// per-op latency recorders whose hot path performs zero allocations, a
// structured lifecycle event trace, and a Registry that snapshots
// everything into a stable name → value map and renders Prometheus text
// exposition by hand. Nothing here imports anything outside the standard
// library, and the hot-path types (Counter.Inc, OpStats.Begin/End,
// AtomicHist.Record) never touch a mutex.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histSub is the number of linear sub-buckets per power-of-two octave:
// 32 bounds the relative quantization error at 1/32 ≈ 3.1%, the usual
// HDR-histogram trade-off between memory and resolution.
const histSub = 32

// histBuckets covers values up to 2^62 ns with histSub sub-buckets per
// octave: group 0 is the exact values 0..31, groups 1..58 carry octaves
// 2^5..2^62.
const histBuckets = 59 * histSub

// Hist is an HDR-style log-linear histogram of durations in nanoseconds:
// constant-time Record, ~3% relative error on any percentile, mergeable
// across connections. Latency distributions span four-plus orders of
// magnitude under load, which is exactly the regime where a fixed-width
// histogram either clips the tail or loses the body — log-linear buckets
// keep both. Hist is single-writer (the load generator's per-connection
// accounting); concurrent recorders use AtomicHist and read through its
// Snapshot.
type Hist struct {
	counts   [histBuckets]uint64
	total    uint64
	sum      int64
	min, max int64
}

// Record adds one duration (negative values clamp to zero).
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
	h.sum += v
	h.counts[histIdx(v)]++
}

func histIdx(v int64) int {
	if v < histSub {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // 2^k <= v, k >= 5
	group := k - 4
	sub := int(v>>(k-5)) & (histSub - 1)
	idx := group*histSub + sub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// histValue returns the midpoint duration a bucket represents.
func histValue(idx int) int64 {
	group := idx / histSub
	sub := idx % histSub
	if group == 0 {
		return int64(sub)
	}
	k := group + 4
	width := int64(1) << (k - 5)
	return int64(1)<<k + int64(sub)*width + width/2
}

// Count reports how many durations were recorded.
func (h *Hist) Count() uint64 { return h.total }

// Mean reports the exact (not bucketed) mean of the recorded durations.
func (h *Hist) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.total))
}

// Max reports the exact maximum recorded duration.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Min reports the exact minimum recorded duration.
func (h *Hist) Min() time.Duration { return time.Duration(h.min) }

// Percentile reports the p-th percentile (0 < p <= 100) to within the
// bucket quantization, clamped to the exact observed min/max.
func (h *Hist) Percentile(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	target := uint64(p / 100 * float64(h.total))
	if target == 0 {
		target = 1
	}
	if target > h.total {
		target = h.total
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= target {
			v := histValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge folds o's recordings into h.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.total == 0 {
		return
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
}

// AtomicHist is the multi-writer twin of Hist: the same log-linear
// buckets, every field atomic, so any number of goroutines can Record
// concurrently with no lock and no coordination beyond the cache traffic
// of the touched bucket. Percentile math happens on a Snapshot (a plain
// Hist), keeping the read-side complexity out of the hot path. Construct
// with NewAtomicHist — the zero value's min sentinel is unset.
type AtomicHist struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64 // math.MaxInt64 until the first Record
	max    atomic.Int64
}

// NewAtomicHist returns an empty concurrent histogram.
func NewAtomicHist() *AtomicHist {
	h := &AtomicHist{}
	h.min.Store(math.MaxInt64)
	return h
}

// Record adds one duration (negative values clamp to zero). Safe for any
// number of concurrent callers; allocation-free.
func (h *AtomicHist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histIdx(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count reports how many durations were recorded.
func (h *AtomicHist) Count() uint64 { return h.total.Load() }

// Snapshot copies the histogram into a plain Hist for percentile math.
// Under concurrent recorders the copy is not a single atomic cut — total
// is read first, so the bucket sums it is compared against are always at
// least as fresh and every percentile target lands in a bucket.
func (h *AtomicHist) Snapshot() Hist {
	var s Hist
	s.total = h.total.Load()
	if s.total == 0 {
		return s
	}
	s.sum = h.sum.Load()
	s.min = h.min.Load()
	s.max = h.max.Load()
	if s.min == math.MaxInt64 {
		// A racing Record bumped total before publishing min; read as 0
		// rather than the sentinel.
		s.min = 0
	}
	for i := range s.counts {
		s.counts[i] = h.counts[i].Load()
	}
	return s
}
