package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistExactSmallValues(t *testing.T) {
	var h Hist
	for v := 0; v < histSub; v++ {
		h.Record(time.Duration(v))
	}
	if h.Count() != histSub {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Percentile(100) != time.Duration(histSub-1) {
		t.Fatalf("p100 = %v, want %d", h.Percentile(100), histSub-1)
	}
	if h.Percentile(1) != 0 {
		t.Fatalf("p1 = %v, want 0", h.Percentile(1))
	}
}

// TestHistPercentileError: on a lognormal-ish latency distribution every
// reported percentile must sit within the documented ~3.1% quantization
// of the exact order statistic.
func TestHistPercentileError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Hist
	n := 200000
	vals := make([]int64, n)
	for i := range vals {
		// exp(N(11, 1.5)) ns ≈ tens of µs median with a long tail.
		v := int64(math.Exp(rng.NormFloat64()*1.5 + 11))
		vals[i] = v
		h.Record(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		exact := vals[int(p/100*float64(n))-1]
		got := int64(h.Percentile(p))
		if err := math.Abs(float64(got)-float64(exact)) / float64(exact); err > 0.04 {
			t.Errorf("p%v = %d, exact %d (err %.1f%%)", p, got, exact, err*100)
		}
	}
	if h.Max() != time.Duration(vals[n-1]) {
		t.Errorf("max = %v, want %d", h.Max(), vals[n-1])
	}
}

func TestHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole Hist
	parts := make([]Hist, 4)
	for i := 0; i < 100000; i++ {
		v := time.Duration(rng.Int63n(10_000_000))
		whole.Record(v)
		parts[i%4].Record(v)
	}
	var merged Hist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Count() != whole.Count() || merged.Mean() != whole.Mean() || merged.Max() != whole.Max() {
		t.Fatalf("merge mismatch: count %d/%d mean %v/%v max %v/%v",
			merged.Count(), whole.Count(), merged.Mean(), whole.Mean(), merged.Max(), whole.Max())
	}
	for _, p := range []float64{50, 99, 99.9} {
		if merged.Percentile(p) != whole.Percentile(p) {
			t.Fatalf("p%v: merged %v, whole %v", p, merged.Percentile(p), whole.Percentile(p))
		}
	}
}

func TestHistEmptyAndClamp(t *testing.T) {
	var h Hist
	if h.Percentile(99) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must read as zero")
	}
	h.Record(-5) // clamps to 0
	if h.Percentile(50) != 0 || h.Max() != 0 {
		t.Fatal("negative durations must clamp to zero")
	}
	h.Record(1 << 40)
	if got := h.Percentile(100); got != 1<<40 {
		t.Fatalf("p100 = %d, want exact observed max %d", got, int64(1)<<40)
	}
}

// TestAtomicHistMatchesHist: serial recording through the atomic variant
// must snapshot to exactly what the single-writer Hist records.
func TestAtomicHistMatchesHist(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var plain Hist
	ah := NewAtomicHist()
	for i := 0; i < 50000; i++ {
		v := time.Duration(rng.Int63n(5_000_000))
		plain.Record(v)
		ah.Record(v)
	}
	snap := ah.Snapshot()
	if snap.Count() != plain.Count() || snap.Mean() != plain.Mean() ||
		snap.Min() != plain.Min() || snap.Max() != plain.Max() {
		t.Fatalf("snapshot mismatch: count %d/%d mean %v/%v min %v/%v max %v/%v",
			snap.Count(), plain.Count(), snap.Mean(), plain.Mean(),
			snap.Min(), plain.Min(), snap.Max(), plain.Max())
	}
	for _, p := range []float64{50, 99, 99.9} {
		if snap.Percentile(p) != plain.Percentile(p) {
			t.Fatalf("p%v: atomic %v, plain %v", p, snap.Percentile(p), plain.Percentile(p))
		}
	}
}

// TestAtomicHistConcurrent hammers one histogram from many goroutines —
// under -race this is the lock-freedom proof — and checks the totals add
// up and the extrema survived the CAS loops.
func TestAtomicHistConcurrent(t *testing.T) {
	ah := NewAtomicHist()
	const workers, per = 8, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				ah.Record(time.Duration(1 + rng.Int63n(1_000_000)))
			}
		}(w)
	}
	wg.Wait()
	snap := ah.Snapshot()
	if snap.Count() != workers*per {
		t.Fatalf("count = %d, want %d", snap.Count(), workers*per)
	}
	if snap.Min() < 1 || snap.Max() > 1_000_000 {
		t.Fatalf("extrema out of range: min %v max %v", snap.Min(), snap.Max())
	}
	var bucketSum uint64
	for i := range snap.counts {
		bucketSum += snap.counts[i]
	}
	if bucketSum != snap.total {
		t.Fatalf("bucket sum %d != total %d", bucketSum, snap.total)
	}
}
