package telemetry

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
)

// expvarRegs backs the process-wide expvar publication: expvar.Publish
// panics on duplicate names and offers no unpublish, so the Var is
// published once per name and indirects through this map — a Handler
// rebuilt for a new registry (tests, server restarts in one process)
// just repoints the name.
var (
	expvarMu   sync.Mutex
	expvarRegs = make(map[string]*Registry)
)

// publishExpvar exposes reg's snapshot under the given expvar name
// (idempotent; later calls repoint the name at the new registry).
func publishExpvar(name string, reg *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, ok := expvarRegs[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			expvarMu.Lock()
			r := expvarRegs[name]
			expvarMu.Unlock()
			if r == nil {
				return nil
			}
			return r.Snapshot()
		}))
	}
	expvarRegs[name] = reg
}

// Handler assembles the debug surface hopeserve exposes on -debug-addr:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    expvar JSON (reg published under "hope", plus the
//	               standard cmdline/memstats vars)
//	/debug/events  the lifecycle event trace as a JSON array, oldest
//	               first (empty array when trace is nil)
//	/debug/pprof/  the standard net/http/pprof profiles
//
// The handler holds no locks across requests and is safe to serve while
// every instrument is being written at full rate.
func Handler(reg *Registry, trace *EventTrace) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	publishExpvar("hope", reg)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		events := []Event{}
		if trace != nil {
			events = trace.Snapshot()
		}
		json.NewEncoder(w).Encode(events)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ScrapeRaw fetches url and returns the response body — the raw
// Prometheus text a smoke test greps.
func ScrapeRaw(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("telemetry: scrape %s: %s", url, resp.Status)
	}
	return string(body), nil
}

// Scrape fetches a /metrics endpoint and parses the text exposition into
// a flat name → value map (labels folded into the name as rendered, e.g.
// `hope_server_get_latency_seconds{quantile="0.99"}`). It understands
// exactly the subset WritePrometheus emits plus any other simple
// name/value lines.
func Scrape(url string) (map[string]float64, error) {
	body, err := ScrapeRaw(url)
	if err != nil {
		return nil, err
	}
	return ParsePrometheus(strings.NewReader(body))
}

// ParsePrometheus parses Prometheus text exposition samples into a flat
// map; comment and malformed lines are skipped.
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		name, valStr := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out, sc.Err()
}
