package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// numStripes is the stripe count for Counter and OpStats: enough that
// callers with a natural partition (shard index, connection id) spread
// hot increments across cache lines, small enough that summing on the
// read side stays trivial. Power of two so the hint masks.
const numStripes = 8

// stripe is one cache-line-padded counter cell.
type stripe struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing striped counter. Inc takes a hint
// — any value with a stable distribution, typically a shard index or
// connection id — to pick the stripe, so unrelated hot paths do not fight
// over one cache line. The zero value is ready to use.
type Counter struct {
	stripes [numStripes]stripe
}

// Inc adds one to the stripe the hint selects. Allocation-free.
func (c *Counter) Inc(hint uint64) { c.stripes[hint&(numStripes-1)].n.Add(1) }

// Add adds delta to the stripe the hint selects.
func (c *Counter) Add(hint uint64, delta uint64) {
	c.stripes[hint&(numStripes-1)].n.Add(delta)
}

// Value sums the stripes — a moment's snapshot under concurrent writers.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value. The zero value is ready.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// OpStats instruments one operation kind: a striped invocation counter
// plus a sampled latency histogram. The hot path is two calls with no
// allocation and no defer:
//
//	t := stats.Begin(hint) // count++, maybe start the clock
//	... the operation ...
//	stats.End(t)           // record time.Since(t) when sampled
//
// Begin returns the zero time.Time for unsampled invocations, so the
// common case pays one striped atomic add and a branch; only every
// (sampleMask+1)-th invocation per stripe pays the two clock reads.
// Construct with NewOpStats.
type OpStats struct {
	stripes    [numStripes]stripe
	sampleMask uint64 // pow2-1; 0 records every invocation
	hist       *AtomicHist
}

// NewOpStats returns an OpStats sampling one latency in sampleEvery
// invocations (rounded down to a power of two; <= 1 records every one).
func NewOpStats(sampleEvery int) *OpStats {
	o := &OpStats{hist: NewAtomicHist()}
	if sampleEvery > 1 {
		p := 1
		for p*2 <= sampleEvery {
			p *= 2
		}
		o.sampleMask = uint64(p - 1)
	}
	return o
}

// Begin counts one invocation on the hint's stripe and, when this
// invocation is sampled, returns the start time; otherwise it returns the
// zero time.Time. Allocation-free.
func (o *OpStats) Begin(hint uint64) time.Time {
	n := o.stripes[hint&(numStripes-1)].n.Add(1)
	if n&o.sampleMask != 0 {
		return time.Time{}
	}
	return time.Now()
}

// End records the latency of a sampled invocation (no-op for the zero
// time Begin returned when unsampled). Allocation-free.
func (o *OpStats) End(start time.Time) {
	if start.IsZero() {
		return
	}
	o.hist.Record(time.Since(start))
}

// Count reports total invocations (sampled or not).
func (o *OpStats) Count() uint64 {
	var total uint64
	for i := range o.stripes {
		total += o.stripes[i].n.Load()
	}
	return total
}

// Hist returns a snapshot of the sampled latency distribution.
func (o *OpStats) Hist() Hist { return o.hist.Snapshot() }

// Registry names a set of instruments and reads them out two ways: a
// stable name → value snapshot (the flat map behind the server's stats
// verb and /debug/vars) and hand-rendered Prometheus text exposition
// (/metrics). Register accepts *Counter, *Gauge, *OpStats, *AtomicHist,
// and func() float64. Registration takes a mutex; reading instruments
// does not block their writers.
type Registry struct {
	mu    sync.Mutex
	names []string // sorted
	items map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: make(map[string]any)}
}

// Register adds one named instrument. Names must be unique and should be
// Prometheus-shaped ([a-z0-9_], e.g. "hope_index_get"); OpStats and
// AtomicHist expand into derived series (<name>_total, <name>_p50_us, …)
// in snapshots.
func (r *Registry) Register(name string, item any) error {
	switch item.(type) {
	case *Counter, *Gauge, *OpStats, *AtomicHist, func() float64:
	default:
		return fmt.Errorf("telemetry: unsupported instrument type %T for %q", item, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.items[name]; dup {
		return fmt.Errorf("telemetry: duplicate instrument %q", name)
	}
	r.items[name] = item
	i := sort.SearchStrings(r.names, name)
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = name
	return nil
}

// MustRegister is Register for construction-time wiring, where a
// duplicate name is a programming error.
func (r *Registry) MustRegister(name string, item any) {
	if err := r.Register(name, item); err != nil {
		panic(err)
	}
}

// GaugeFunc registers a computed gauge.
func (r *Registry) GaugeFunc(name string, fn func() float64) error {
	return r.Register(name, fn)
}

// instruments copies the (name, item) list out so snapshotting never
// holds the registry mutex while calling gauge functions.
func (r *Registry) instruments() ([]string, map[string]any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.names...)
	items := make(map[string]any, len(r.items))
	for k, v := range r.items {
		items[k] = v
	}
	return names, items
}

// histSeries appends one histogram's derived series to a snapshot map.
func histSeries(out map[string]float64, name string, count uint64, h Hist) {
	out[name+"_total"] = float64(count)
	if h.Count() == 0 {
		return
	}
	out[name+"_sampled"] = float64(h.Count())
	out[name+"_p50_us"] = float64(h.Percentile(50)) / 1e3
	out[name+"_p99_us"] = float64(h.Percentile(99)) / 1e3
	out[name+"_p999_us"] = float64(h.Percentile(99.9)) / 1e3
	out[name+"_mean_us"] = float64(h.Mean()) / 1e3
	out[name+"_max_us"] = float64(h.Max()) / 1e3
}

// Snapshot reads every instrument into a flat name → value map. OpStats
// and AtomicHist expand to <name>_total plus, once anything was sampled,
// <name>_{sampled,p50_us,p99_us,p999_us,mean_us,max_us}.
func (r *Registry) Snapshot() map[string]float64 {
	names, items := r.instruments()
	out := make(map[string]float64, len(names)*2)
	for _, name := range names {
		switch v := items[name].(type) {
		case *Counter:
			out[name] = float64(v.Value())
		case *Gauge:
			out[name] = float64(v.Value())
		case func() float64:
			out[name] = v()
		case *OpStats:
			histSeries(out, name, v.Count(), v.Hist())
		case *AtomicHist:
			h := v.Snapshot()
			histSeries(out, name, h.Count(), h)
		}
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4), hand-rolled: counters and gauges as single
// samples, OpStats/AtomicHist as summaries with p50/p99/p999 quantiles in
// seconds plus a <name>_total counter for the unsampled invocation count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	names, items := r.instruments()
	var buf []byte
	for _, name := range names {
		buf = buf[:0]
		switch v := items[name].(type) {
		case *Counter:
			buf = appendSample(buf, name, "counter", float64(v.Value()))
		case *Gauge:
			buf = appendSample(buf, name, "gauge", float64(v.Value()))
		case func() float64:
			buf = appendSample(buf, name, "gauge", v())
		case *OpStats:
			buf = appendSummary(buf, name, v.Count(), v.Hist())
		case *AtomicHist:
			h := v.Snapshot()
			buf = appendSummary(buf, name, h.Count(), h)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func appendFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

func appendSample(buf []byte, name, typ string, v float64) []byte {
	buf = append(buf, "# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = append(buf, typ...)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = appendFloat(buf, v)
	return append(buf, '\n')
}

// appendSummary renders one latency histogram as a Prometheus summary
// named <name>_latency_seconds (quantiles over the *sampled* population)
// plus a <name>_total counter carrying the full invocation count.
func appendSummary(buf []byte, name string, count uint64, h Hist) []byte {
	buf = append(buf, "# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, "_total counter\n"...)
	buf = append(buf, name...)
	buf = append(buf, "_total "...)
	buf = strconv.AppendUint(buf, count, 10)
	buf = append(buf, '\n')

	buf = append(buf, "# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, "_latency_seconds summary\n"...)
	for _, q := range [...]struct {
		label string
		p     float64
	}{{"0.5", 50}, {"0.99", 99}, {"0.999", 99.9}} {
		buf = append(buf, name...)
		buf = append(buf, "_latency_seconds{quantile=\""...)
		buf = append(buf, q.label...)
		buf = append(buf, "\"} "...)
		buf = appendFloat(buf, float64(h.Percentile(q.p))/1e9)
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, "_latency_seconds_sum "...)
	buf = appendFloat(buf, float64(h.Mean())*float64(h.Count())/1e9)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_latency_seconds_count "...)
	buf = strconv.AppendUint(buf, h.Count(), 10)
	return append(buf, '\n')
}
