package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterStripes(t *testing.T) {
	var c Counter
	for hint := uint64(0); hint < 100; hint++ {
		c.Inc(hint)
	}
	c.Add(3, 17)
	if got := c.Value(); got != 117 {
		t.Fatalf("value = %d, want 117", got)
	}
}

func TestOpStatsSampling(t *testing.T) {
	o := NewOpStats(4)
	const n = 1000
	for i := 0; i < n; i++ {
		start := o.Begin(0) // single stripe: deterministic 1-in-4 sampling
		o.End(start)
	}
	if o.Count() != n {
		t.Fatalf("count = %d, want %d", o.Count(), n)
	}
	h := o.Hist()
	if got := h.Count(); got != n/4 {
		t.Fatalf("sampled = %d, want %d", got, n/4)
	}

	all := NewOpStats(1)
	for i := 0; i < 100; i++ {
		all.End(all.Begin(uint64(i)))
	}
	ha := all.Hist()
	if got := ha.Count(); got != 100 {
		t.Fatalf("sampleEvery=1 recorded %d, want every invocation", got)
	}
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(0, 5)
	var g Gauge
	g.Set(-3)
	o := NewOpStats(1)
	o.End(o.Begin(0))
	reg.MustRegister("test_counter", &c)
	reg.MustRegister("test_gauge", &g)
	reg.MustRegister("test_op", o)
	reg.MustRegister("test_fn", func() float64 { return 2.5 })

	if err := reg.Register("test_counter", &c); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if err := reg.Register("test_bad", 42); err == nil {
		t.Fatal("unsupported instrument type must fail")
	}

	snap := reg.Snapshot()
	if snap["test_counter"] != 5 || snap["test_gauge"] != -3 || snap["test_fn"] != 2.5 {
		t.Fatalf("snapshot scalars wrong: %v", snap)
	}
	if snap["test_op_total"] != 1 || snap["test_op_sampled"] != 1 {
		t.Fatalf("op series missing: %v", snap)
	}
	for _, want := range []string{"test_op_p50_us", "test_op_p99_us", "test_op_p999_us", "test_op_mean_us", "test_op_max_us"} {
		if _, ok := snap[want]; !ok {
			t.Fatalf("snapshot missing %s: %v", want, snap)
		}
	}
}

func TestWritePrometheusAndParseRoundTrip(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(0, 42)
	reg.MustRegister("rt_requests_total", &c)
	reg.MustRegister("rt_temp", func() float64 { return 1.5 })
	o := NewOpStats(1)
	for i := 0; i < 10; i++ {
		start := o.Begin(0)
		time.Sleep(time.Microsecond)
		o.End(start)
	}
	reg.MustRegister("rt_op", o)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE rt_requests_total counter",
		"rt_requests_total 42",
		"# TYPE rt_temp gauge",
		"rt_temp 1.5",
		"# TYPE rt_op_total counter",
		"rt_op_total 10",
		"# TYPE rt_op_latency_seconds summary",
		`rt_op_latency_seconds{quantile="0.99"}`,
		"rt_op_latency_seconds_count 10",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	parsed, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if parsed["rt_requests_total"] != 42 || parsed["rt_temp"] != 1.5 || parsed["rt_op_total"] != 10 {
		t.Fatalf("parse round-trip wrong: %v", parsed)
	}
	if v := parsed[`rt_op_latency_seconds{quantile="0.99"}`]; v <= 0 {
		t.Fatalf("quantile sample missing or zero: %v", parsed)
	}
}

// TestRegistryRaceStress is the satellite's concurrency gate: many
// goroutines hammer every instrument kind while others snapshot and
// render, all under -race.
func TestRegistryRaceStress(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	var g Gauge
	o := NewOpStats(4)
	ah := NewAtomicHist()
	reg.MustRegister("stress_counter", &c)
	reg.MustRegister("stress_gauge", &g)
	reg.MustRegister("stress_op", o)
	reg.MustRegister("stress_hist", ah)
	reg.MustRegister("stress_fn", func() float64 { return float64(g.Value()) })

	const writers, iters = 4, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc(uint64(i))
				g.Set(int64(i))
				o.End(o.Begin(uint64(w)))
				ah.Record(time.Duration(i))
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				snap := reg.Snapshot()
				if snap["stress_counter"] > writers*iters {
					t.Errorf("counter overshot: %v", snap["stress_counter"])
					return
				}
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != writers*iters {
		t.Fatalf("final counter = %d, want %d", got, writers*iters)
	}
	if got := o.Count(); got != writers*iters {
		t.Fatalf("final op count = %d, want %d", got, writers*iters)
	}
}
